package bench

import (
	"testing"
	"time"

	"sae/internal/chaos"
	"sae/internal/cluster"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine"
	"sae/internal/engine/job"
)

// Sharded-kernel matrix benchmarks: one large-cluster grayfail run per
// iteration, identical at every shard count, so ShardedMatrix4 over
// ShardedMatrix1 is the intra-run parallelism speedup of the windowed
// coordinator (see DESIGN.md "Sharded simulation"). At Shards > 1 the run
// qualifies for windowed execution — no observers, no shuffle, and only
// shard-local gray failures — and the bodies assert it actually took that
// path. Concurrent shards need cores: the measured speedup scales with
// min(GOMAXPROCS, shards), so on a single-core runner these entries document
// the coordinator's overhead bound rather than a speedup.
const shardedMatrixNodes = 256

// shardedMatrixRun builds the matrix run: a 256-node scan under slowdowns on
// every 32nd node, two heartbeat-dropping partitions and transient task I/O
// faults. The control latency is raised to 10ms — the cross-shard lookahead
// bound — so each window covers a useful slice of per-node disk and CPU
// events.
func shardedMatrixRun(shards int) (engine.Options, *job.JobSpec) {
	cfg := cluster.DAS5(shardedMatrixNodes)
	cfg.Variability = device.DefaultVariability(7)
	cfg.ControlLatency = 10 * time.Millisecond
	plan := &chaos.Plan{
		Name:          "sharded-matrix",
		Seed:          7,
		TaskFaultRate: 0.02,
	}
	for ex := 1; ex < shardedMatrixNodes; ex += 32 {
		plan.Slows = append(plan.Slows, chaos.Slow{Exec: ex, At: 5 * time.Second, Factor: 3})
	}
	plan.Partitions = []chaos.Partition{
		{Exec: 2, At: 8 * time.Second, Duration: 40 * time.Second},
		{Exec: shardedMatrixNodes - 3, At: 12 * time.Second, Duration: 40 * time.Second},
	}
	opts := engine.Options{
		Cluster:   cfg,
		BlockSize: 64 * device.MiB,
		Policy:    core.Default{},
		Faults:    plan,
		Inputs:    []engine.Input{{Name: "in", Size: shardedMatrixNodes * 24 * 64 * device.MiB}},
		Shards:    shards,
	}
	spec := &job.JobSpec{
		Name: "sharded-matrix",
		Stages: []*job.StageSpec{
			{ID: 0, Name: "scan", InputFile: "in", CPUSecondsPerTask: 0.35},
		},
	}
	return opts, spec
}

func shardedMatrix(b *testing.B, shards int) {
	var events uint64
	var simSec float64
	for i := 0; i < b.N; i++ {
		// Model construction (cluster, DFS placement, executor spawn) is
		// sequential in every mode; keep it off the clock so ns/op measures
		// the event loop the shards parallelize.
		b.StopTimer()
		opts, spec := shardedMatrixRun(shards)
		e, err := engine.NewEngine(opts)
		if err != nil {
			b.Fatal(err)
		}
		h, err := e.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := e.Wait(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rep, err := h.Report()
		if err != nil {
			b.Fatal(err)
		}
		if shards > 1 && !e.Windowed() {
			b.Fatal("matrix run fell off the windowed path")
		}
		events += e.FiredEvents()
		simSec += rep.Runtime.Seconds()
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
		b.ReportMetric(simSec/s, "sim-s/wall-s")
	}
}

// ShardedMatrix1 runs the matrix on a single kernel — the serial reference
// every sharded entry's speedup is measured against.
func ShardedMatrix1(b *testing.B) { shardedMatrix(b, 1) }

// ShardedMatrix2 runs the matrix on two shard kernels in windowed mode.
func ShardedMatrix2(b *testing.B) { shardedMatrix(b, 2) }

// ShardedMatrix4 runs the matrix on four shard kernels in windowed mode —
// the headline intra-run parallelism configuration.
func ShardedMatrix4(b *testing.B) { shardedMatrix(b, 4) }
