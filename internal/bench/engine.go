package bench

import (
	"fmt"
	"testing"

	"sae/internal/core"
	"sae/internal/engine"
	"sae/internal/exp"
	"sae/internal/workloads"
)

// EngineSuite benchmarks full experiment regenerations: a paper-scale
// Terasort run (with kernel event throughput attached), the gray-failure
// and multi-tenant matrices, and a parallel sweep over several figures.
func EngineSuite() []Benchmark {
	return []Benchmark{
		{Name: "EngineTerasort", Body: EngineTerasort},
		{Name: "EngineGrayFail", Body: EngineGrayFail},
		{Name: "EngineMultiTenant", Body: EngineMultiTenant},
		{Name: "SweepParallel4", Body: SweepParallel4},
	}
}

// EngineTerasort runs paper-scale Terasort under the dynamic policy and
// reports kernel event throughput and the sim-time speedup over wall time.
func EngineTerasort(b *testing.B) {
	var events uint64
	var simSec float64
	for i := 0; i < b.N; i++ {
		var eng *engine.Engine
		rep, err := exp.Default().Run(workloads.Terasort(workloads.Paper()), core.DefaultDynamic(),
			func(e *engine.Engine) { eng = e })
		if err != nil {
			b.Fatal(err)
		}
		events += eng.Kernel().FiredEvents()
		simSec += rep.Runtime.Seconds()
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
		b.ReportMetric(simSec/s, "sim-s/wall-s")
	}
}

// EngineGrayFail regenerates the gray-failure matrix (Terasort under a slow
// node, a partition and corrupt replicas, for each policy) — the workload
// behind the `sae-exp grayfail` wall-clock acceptance number.
func EngineGrayFail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.GrayFail(exp.Default()); err != nil {
			b.Fatal(err)
		}
	}
}

// EngineMultiTenant regenerates the multi-tenancy matrix (concurrent job
// mixes under FIFO/FAIR with default and dynamic sizing).
func EngineMultiTenant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.MultiTenant(exp.Default()); err != nil {
			b.Fatal(err)
		}
	}
}

// SweepParallel4 runs four independent figure regenerations on four workers
// through the parallel sweep runner — the fan-out path of `sae-exp
// -parallel N`.
func SweepParallel4(b *testing.B) {
	tasks := []exp.Task{
		{ID: "fig2", Run: func() (fmt.Stringer, error) { return runFig2() }},
		{ID: "fig3", Run: func() (fmt.Stringer, error) { return exp.Figure3(exp.Default()) }},
		{ID: "fig5", Run: func() (fmt.Stringer, error) { return exp.Figure5(exp.Default()) }},
		{ID: "fig7", Run: func() (fmt.Stringer, error) { return exp.Figure7(exp.Default()) }},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range exp.RunParallel(4, tasks) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func runFig2() (fmt.Stringer, error) {
	ts, _, err := exp.Figure2(exp.Default())
	return ts, err
}
