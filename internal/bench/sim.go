package bench

import (
	"testing"
	"time"

	"sae/internal/arrival"
	"sae/internal/device"
	"sae/internal/psres"
	"sae/internal/sim"
)

// SimSuite benchmarks the simulation substrate: the kernel's event queue on
// its distinct hot paths (ring fast lane, 4-ary heap, reschedule-in-place
// churn, periodic ticks, cancel-heavy speculation patterns), process
// switching, the processor-sharing server under stream churn, and the
// sharded-kernel coordinator on a large-cluster matrix (sharded.go).
func SimSuite() []Benchmark {
	return []Benchmark{
		{Name: "KernelRing", Body: KernelRing},
		{Name: "KernelHeap", Body: KernelHeap},
		{Name: "KernelTimerChurn", Body: KernelTimerChurn},
		{Name: "KernelEvery", Body: KernelEvery},
		{Name: "KernelCancel", Body: KernelCancel},
		{Name: "ProcessSwitch", Body: ProcessSwitch},
		{Name: "ProcessPingPong", Body: ProcessPingPong},
		{Name: "ProcessorSharing", Body: ProcessorSharing},
		{Name: "ArrivalGen", Body: ArrivalGen},
		{Name: "ShardedMatrix1", Body: ShardedMatrix1},
		{Name: "ShardedMatrix2", Body: ShardedMatrix2},
		{Name: "ShardedMatrix4", Body: ShardedMatrix4},
	}
}

func reportKernel(b *testing.B, k *sim.Kernel) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(k.FiredEvents())/s, "events/sec")
		b.ReportMetric(k.Now().Seconds()/s, "sim-s/wall-s")
	}
}

// KernelRing fires b.N same-instant callback events — the ring fast lane
// that backs Broadcast/Notify/zero-delay sends.
func KernelRing(b *testing.B) {
	k := sim.NewKernel()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		k.After(0, fn)
	}
	b.ResetTimer()
	k.Run()
	reportKernel(b, k)
}

// KernelHeap pushes b.N events at pseudo-random future instants and fires
// them all — the 4-ary heap's ordering path.
func KernelHeap(b *testing.B) {
	k := sim.NewKernel()
	fn := func() {}
	rng := uint64(1)
	for i := 0; i < b.N; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		k.After(time.Duration(rng%1e9)+1, fn)
	}
	b.ResetTimer()
	k.Run()
	reportKernel(b, k)
}

// KernelTimerChurn reproduces the failure-detector pattern: a deadline
// event pushed back in place on every simulated heartbeat.
func KernelTimerChurn(b *testing.B) {
	k := sim.NewKernel()
	deadline := k.After(10*time.Millisecond, func() {})
	left := b.N
	var beat sim.Event
	beat = k.Every(time.Millisecond, func() {
		deadline.Reschedule(k.Now() + 10*time.Millisecond)
		if left--; left <= 0 {
			beat.Cancel()
			deadline.Cancel()
		}
	})
	b.ResetTimer()
	k.Run()
	reportKernel(b, k)
}

// KernelEvery drives one periodic event through b.N firings — the
// heartbeat/monitor-tick primitive rescheduling itself in place.
func KernelEvery(b *testing.B) {
	k := sim.NewKernel()
	left := b.N
	var tick sim.Event
	tick = k.Every(time.Millisecond, func() {
		if left--; left <= 0 {
			tick.Cancel()
		}
	})
	b.ResetTimer()
	k.Run()
	reportKernel(b, k)
}

// KernelCancel schedules b.N far-future events, cancels 15 of every 16 (the
// speculation-timer pattern) and drains the survivors, exercising lazy
// cancellation plus heap compaction.
func KernelCancel(b *testing.B) {
	k := sim.NewKernel()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := k.After(time.Duration(i)+time.Second, fn)
		if i%16 != 0 {
			e.Cancel()
		}
	}
	k.Run()
	reportKernel(b, k)
}

// ProcessSwitch measures park/resume round trips of a lone process — with
// the dispatch baton this resumes without any goroutine switch.
func ProcessSwitch(b *testing.B) {
	k := sim.NewKernel()
	k.Go("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
	reportKernel(b, k)
}

// ProcessPingPong bounces the dispatch baton between two processes via
// Park/Wake — the true cross-goroutine handoff cost.
func ProcessPingPong(b *testing.B) {
	k := sim.NewKernel()
	var pa, pb *sim.Proc
	pa = k.Go("a", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			k.Wake(pb)
			p.Park()
		}
		k.Wake(pb) // release b from its final park
	})
	pb = k.Go("b", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Park()
			k.Wake(pa)
		}
		p.Park()
	})
	b.ResetTimer()
	k.Run()
	reportKernel(b, k)
}

// ArrivalGen draws a b.N-job open-loop schedule from a bursty process
// (Lewis–Shedler thinning over a two-class tenant mix) and dispatches every
// submission through the kernel — the full traffic-generation hot path.
func ArrivalGen(b *testing.B) {
	k := sim.NewKernel()
	spec := arrival.Spec{
		Proc: arrival.Bursty{OnRate: 1000, OffRate: 100, On: time.Second, Off: time.Second},
		Classes: []arrival.Class{
			{Name: "interactive", Weight: 3, Priority: 1},
			{Name: "batch", Weight: 1},
		},
		Seed:    1,
		Horizon: time.Duration(b.N+1) * time.Second,
		MaxJobs: b.N,
	}
	b.ResetTimer()
	sched := spec.Generate()
	submitted := 0
	arrival.Pump(k, sched, func(arrival.Arrival) { submitted++ })
	k.Run()
	reportKernel(b, k)
	if submitted != len(sched) {
		b.Fatalf("pumped %d of %d arrivals", submitted, len(sched))
	}
}

// ProcessorSharing hammers one HDD-curve server with 64 churning streams —
// the disk model on its arrival/completion hot path.
func ProcessorSharing(b *testing.B) {
	k := sim.NewKernel()
	s := psres.NewServer(k, psres.Config{Name: "d", Curve: device.HDD7200().Curve(1)})
	for i := 0; i < 64; i++ {
		k.Go("w", func(p *sim.Proc) {
			for j := 0; j < b.N/64+1; j++ {
				s.Serve(p, 1<<20, 1)
			}
		})
	}
	b.ResetTimer()
	k.Run()
	reportKernel(b, k)
}
