// Package bench holds the repository's benchmark bodies as plain (non-test)
// code so the same workloads run under both `go test -bench` (the wrappers
// in bench_test.go) and the sae-bench command, which emits the machine-
// readable BENCH_*.json perf trajectory and gates CI on regressions.
//
// Bodies attach domain metrics with b.ReportMetric — events/sec (kernel
// events fired per wall second) and sim-s/wall-s (virtual seconds simulated
// per wall second) — which surface both in `go test -bench` output and in
// testing.BenchmarkResult.Extra for the JSON emitter.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
)

// Benchmark is one named benchmark body.
type Benchmark struct {
	Name string
	Body func(b *testing.B)
}

// Suite is a named list of benchmarks emitted as one BENCH_<name>.json file.
type Suite struct {
	Name   string
	Benchs []Benchmark
}

// Suites returns the registered suites: "sim" (kernel + processor-sharing
// microbenchmarks) and "engine" (end-to-end experiment regenerations).
func Suites() []Suite {
	return []Suite{
		{Name: "sim", Benchs: SimSuite()},
		{Name: "engine", Benchs: EngineSuite()},
	}
}

// Result is one benchmark measurement in the units the BENCH_*.json
// trajectory tracks.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// EventsPerSec is kernel events fired per wall second (0 when the
	// workload does not expose a kernel).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// SimSecPerWallSec is virtual seconds simulated per wall second.
	SimSecPerWallSec float64 `json:"sim_s_per_wall_s,omitempty"`
	// Baseline carries reference numbers (e.g. the pre-overhaul kernel)
	// forward across re-emissions; sae-bench preserves it when rewriting
	// an existing file.
	Baseline *Baseline `json:"baseline,omitempty"`
}

// Baseline is a frozen reference measurement for before/after comparisons.
type Baseline struct {
	Ref              string  `json:"ref"`
	NsPerOp          float64 `json:"ns_per_op"`
	EventsPerSec     float64 `json:"events_per_sec,omitempty"`
	SimSecPerWallSec float64 `json:"sim_s_per_wall_s,omitempty"`
}

// File is the BENCH_<suite>.json schema.
type File struct {
	Schema  string   `json:"schema"`
	Suite   string   `json:"suite"`
	Go      string   `json:"go"`
	Count   int      `json:"count"`
	Results []Result `json:"benchmarks"`
}

// RunSuite measures every benchmark in the suite count times and keeps, per
// benchmark, the fastest run (minimum ns/op) — the standard way to damp
// scheduler noise on shared machines.
func RunSuite(s Suite, count int, verbose func(string)) File {
	if count < 1 {
		count = 1
	}
	f := File{Schema: "sae-bench/v1", Suite: s.Name, Go: runtime.Version(), Count: count}
	for _, bm := range s.Benchs {
		var best Result
		for i := 0; i < count; i++ {
			r := testing.Benchmark(bm.Body)
			got := toResult(bm.Name, r)
			if i == 0 || got.NsPerOp < best.NsPerOp {
				best = got
			}
		}
		if verbose != nil {
			verbose(fmt.Sprintf("%s/%s\t%d iter\t%.1f ns/op\t%.0f allocs/op\t%s",
				s.Name, best.Name, best.Iterations, best.NsPerOp, best.AllocsPerOp, extras(best)))
		}
		f.Results = append(f.Results, best)
	}
	return f
}

func extras(r Result) string {
	out := ""
	if r.EventsPerSec > 0 {
		out += fmt.Sprintf("%.3g events/sec ", r.EventsPerSec)
	}
	if r.SimSecPerWallSec > 0 {
		out += fmt.Sprintf("%.3g sim-s/wall-s", r.SimSecPerWallSec)
	}
	return out
}

func toResult(name string, r testing.BenchmarkResult) Result {
	res := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
	}
	if v, ok := r.Extra["events/sec"]; ok {
		res.EventsPerSec = v
	}
	if v, ok := r.Extra["sim-s/wall-s"]; ok {
		res.SimSecPerWallSec = v
	}
	return res
}

// WriteFile writes f as indented JSON to path. If the path already holds a
// sae-bench file, per-benchmark Baseline blocks are carried over so frozen
// before/after reference numbers survive re-emission.
func WriteFile(path string, f File) error {
	if old, err := ReadFile(path); err == nil {
		byName := make(map[string]*Baseline, len(old.Results))
		for i := range old.Results {
			byName[old.Results[i].Name] = old.Results[i].Baseline
		}
		for i := range f.Results {
			if bl := byName[f.Results[i].Name]; bl != nil {
				f.Results[i].Baseline = bl
			}
		}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a BENCH_*.json file.
func ReadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Regression is one benchmark whose fresh ns/op exceeds the committed one by
// more than the tolerance.
type Regression struct {
	Name    string
	OldNs   float64
	NewNs   float64
	RatioPc float64 // (new/old - 1) * 100
}

// Compare checks fresh results against a committed file: any benchmark whose
// ns/op grew by more than tolPct percent is reported as a regression.
// Benchmarks present on only one side are ignored (additions are fine;
// removals are caught by review).
func Compare(committed, fresh File, tolPct float64) []Regression {
	byName := make(map[string]Result, len(committed.Results))
	for _, r := range committed.Results {
		byName[r.Name] = r
	}
	var regs []Regression
	for _, nr := range fresh.Results {
		or, ok := byName[nr.Name]
		if !ok || or.NsPerOp <= 0 {
			continue
		}
		pc := (nr.NsPerOp/or.NsPerOp - 1) * 100
		if pc > tolPct {
			regs = append(regs, Regression{Name: nr.Name, OldNs: or.NsPerOp, NewNs: nr.NsPerOp, RatioPc: pc})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].RatioPc > regs[j].RatioPc })
	return regs
}
