package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30*time.Millisecond, func() { got = append(got, 3) })
	k.At(10*time.Millisecond, func() { got = append(got, 1) })
	k.At(20*time.Millisecond, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", k.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(time.Second, func() { fired = true })
	k.At(500*time.Millisecond, func() { e.Cancel() })
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(0, func() {})
	})
	k.Run()
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wake time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Second)
		wake = p.Now()
	})
	k.Run()
	if wake != 42*time.Second {
		t.Fatalf("woke at %v, want 42s", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var trace []string
	k.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * time.Second)
		trace = append(trace, "a2")
	})
	k.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(1 * time.Second)
		trace = append(trace, "b1")
		p.Sleep(2 * time.Second)
		trace = append(trace, "b3")
	})
	k.Run()
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	woken := 0
	for i := 0; i < 5; i++ {
		k.Go("waiter", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	k.At(time.Second, func() { s.Broadcast() })
	k.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestSignalNotifyFIFO(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go("waiter", func(p *Proc) {
			s.Wait(p)
			order = append(order, i)
		})
	}
	k.At(time.Second, func() { s.Notify() })
	k.At(2*time.Second, func() { s.Notify() })
	k.At(3*time.Second, func() { s.Notify() })
	k.Run()
	for i := 0; i < 3; i++ {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
}

func TestShutdownKillsParkedProcs(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	reached := false
	k.Go("stuck", func(p *Proc) {
		s.Wait(p) // never signalled
		reached = true
	})
	k.Run()
	if reached {
		t.Fatal("process ran past un-signalled wait")
	}
	if len(k.procs) != 0 {
		t.Fatalf("%d procs leaked", len(k.procs))
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	var fired []int
	k.At(1*time.Second, func() { fired = append(fired, 1); k.Stop() })
	k.At(2*time.Second, func() { fired = append(fired, 2) })
	k.Run()
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	wg.Add(3)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Second
		k.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Go("joiner", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	k.Run()
	if doneAt != 3*time.Second {
		t.Fatalf("join at %v, want 3s", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	ran := false
	k.Go("joiner", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("Wait on zero counter blocked forever")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 2)
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		k.Go("user", func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(time.Second)
			active--
			sem.Release()
		})
	}
	k.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("finished at %v, want 3s", k.Now())
	}
}

func TestMailbox(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k)
	var got []int
	var at []time.Duration
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
			at = append(at, p.Now())
		}
	})
	k.At(time.Second, func() { mb.Send(time.Millisecond, 7) })
	k.At(2*time.Second, func() {
		mb.Send(0, 8)
		mb.Send(0, 9)
	})
	k.Run()
	if got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Fatalf("got %v, want [7 8 9]", got)
	}
	if at[0] != time.Second+time.Millisecond {
		t.Fatalf("first delivery at %v", at[0])
	}
}

func TestMailboxTryRecv(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[string](k)
	k.At(0, func() {
		if _, ok := mb.TryRecv(); ok {
			t.Error("TryRecv on empty mailbox returned ok")
		}
		mb.Send(0, "x")
	})
	k.At(time.Second, func() {
		v, ok := mb.TryRecv()
		if !ok || v != "x" {
			t.Errorf("TryRecv = %q, %v", v, ok)
		}
	})
	k.Run()
}

// TestDeterminism: a randomized workload of sleeps produces an identical
// trace across runs with the same seed.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		var trace []time.Duration
		for i := 0; i < 20; i++ {
			n := 1 + rng.Intn(5)
			k.Go("p", func(p *Proc) {
				for j := 0; j < n; j++ {
					p.Sleep(time.Duration(rng.Intn(1000)) * time.Millisecond)
					trace = append(trace, p.Now())
				}
			})
		}
		k.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: virtual time never decreases across an arbitrary set of events.
func TestTimeMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			k.At(time.Duration(d)*time.Millisecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a process that sleeps a sequence of delays wakes at the exact
// prefix sums.
func TestSleepPrefixSumProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		ok := true
		k.Go("p", func(p *Proc) {
			var sum time.Duration
			for _, d := range delays {
				dd := time.Duration(d) * time.Microsecond
				p.Sleep(dd)
				sum += dd
				if p.Now() != sum {
					ok = false
				}
			}
		})
		k.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNestedSpawn(t *testing.T) {
	k := NewKernel()
	depth := 0
	var spawn func(p *Proc, d int)
	spawn = func(p *Proc, d int) {
		if d > depth {
			depth = d
		}
		if d == 5 {
			return
		}
		p.Sleep(time.Second)
		k.Go("child", func(c *Proc) { spawn(c, d+1) })
	}
	k.Go("root", func(p *Proc) { spawn(p, 0) })
	k.Run()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	k := NewKernel()
	k.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("negative WaitGroup counter did not panic")
			}
		}()
		wg := NewWaitGroup(k)
		wg.Done()
	})
	k.Run()
}

func TestSemaphoreZeroPermits(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 0)
	acquired := false
	k.Go("w", func(p *Proc) {
		sem.Acquire(p)
		acquired = true
	})
	k.At(time.Second, func() { sem.Release() })
	k.Run()
	if !acquired {
		t.Fatal("release did not wake the waiter")
	}
	if sem.Available() != 0 {
		t.Fatalf("available = %d", sem.Available())
	}
}

func TestNegativeSemaphorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative semaphore size accepted")
		}
	}()
	NewSemaphore(NewKernel(), -1)
}

func TestMailboxFIFOAcrossSameInstant(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int](k)
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	k.At(time.Second, func() {
		for i := 1; i <= 4; i++ {
			mb.Send(0, i)
		}
	})
	k.Run()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestSignalPending(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) { s.Wait(p) })
	}
	k.At(time.Second, func() {
		if s.Pending() != 3 {
			t.Errorf("pending = %d, want 3", s.Pending())
		}
		s.Broadcast()
	})
	k.At(2*time.Second, func() {
		if s.Pending() != 0 {
			t.Errorf("pending after broadcast = %d", s.Pending())
		}
	})
	k.Run()
}
