package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHeapPopsInOrderProperty is the event-queue ordering property: under
// random interleavings of inserts and cancellations, survivors fire in
// exactly (time, seq) order — the order a stable sort over the schedule
// sequence would produce.
func TestHeapPopsInOrderProperty(t *testing.T) {
	type ref struct {
		at  time.Duration
		ord int // schedule order = seq order
	}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var want []ref
		var got []int
		events := make([]Event, 0, 512)
		orders := make([]int, 0, 512)
		n := 64 + rng.Intn(512)
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(1000)) * time.Microsecond
			ord := i
			events = append(events, k.At(at, func() { got = append(got, ord) }))
			orders = append(orders, ord)
			want = append(want, ref{at: at, ord: ord})
		}
		// Cancel a random subset up front (lazy-cancel + compaction path).
		alive := make(map[int]bool, n)
		for i := range want {
			alive[want[i].ord] = true
		}
		for i, ev := range events {
			if rng.Intn(3) == 0 {
				ev.Cancel()
				alive[orders[i]] = false
			}
		}
		// And cancel a few more from inside the run, exercising in-flight
		// cancellation of both already-fired and still-pending events.
		for i := 0; i < 32; i++ {
			victim := events[rng.Intn(len(events))]
			at := time.Duration(rng.Intn(1000)) * time.Microsecond
			k.At(at, func() { victim.Cancel() })
		}
		// Survivors must fire in (time, seq) order. Build the expectation
		// from the reference list, minus everything cancelled up front.
		// In-run cancellations are checked for order only, not membership:
		// whether a victim fires depends on whether its cancel event sorts
		// before it, which the reference model would have to replicate —
		// order is the property under test.
		k.Run()
		var wantAlive []ref
		for _, r := range want {
			if alive[r.ord] {
				wantAlive = append(wantAlive, r)
			}
		}
		sort.SliceStable(wantAlive, func(i, j int) bool {
			if wantAlive[i].at != wantAlive[j].at {
				return wantAlive[i].at < wantAlive[j].at
			}
			return wantAlive[i].ord < wantAlive[j].ord
		})
		// got may be missing in-run-cancelled entries; verify it is a
		// subsequence-preserving order match: filter wantAlive to the set
		// that actually fired and require exact equality.
		fired := make(map[int]bool, len(got))
		for _, o := range got {
			fired[o] = true
		}
		var wantFired []int
		for _, r := range wantAlive {
			if fired[r.ord] {
				wantFired = append(wantFired, r.ord)
			}
		}
		if len(wantFired) != len(got) {
			t.Fatalf("seed %d: fired %d events, want %d", seed, len(got), len(wantFired))
		}
		for i := range got {
			if got[i] != wantFired[i] {
				t.Fatalf("seed %d: fire order diverges at %d: got %d, want %d", seed, i, got[i], wantFired[i])
			}
		}
	}
}

// TestEvery fires a periodic event and checks period, phase, and that
// cancelling the handle ends the series.
func TestEvery(t *testing.T) {
	k := NewKernel()
	var at []time.Duration
	var tick Event
	tick = k.Every(10*time.Millisecond, func() {
		at = append(at, k.Now())
		if len(at) == 5 {
			tick.Cancel()
		}
	})
	if !tick.Active() {
		t.Fatal("fresh Every handle not active")
	}
	k.Run()
	if len(at) != 5 {
		t.Fatalf("fired %d times, want 5", len(at))
	}
	for i, got := range at {
		if want := time.Duration(i+1) * 10 * time.Millisecond; got != want {
			t.Fatalf("tick %d at %v, want %v", i, got, want)
		}
	}
	if tick.Active() {
		t.Fatal("cancelled Every handle still active")
	}
}

// TestEveryOrdersAfterSameTickWork verifies the documented ordering: work
// scheduled by the tick callback for the next tick instant fires before the
// next tick itself (the periodic event reschedules after running fn).
func TestEveryOrdersAfterSameTickWork(t *testing.T) {
	k := NewKernel()
	var order []string
	ticks := 0
	var tick Event
	tick = k.Every(time.Second, func() {
		ticks++
		order = append(order, "tick")
		if ticks == 2 {
			tick.Cancel()
			return
		}
		k.After(time.Second, func() { order = append(order, "work") })
	})
	k.Run()
	want := []string{"tick", "work", "tick"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestRescheduleMatchesCancelPlusAt runs the same deadline-pushback workload
// through Reschedule on one kernel and cancel+At on another; firing sequences
// must be identical, because Reschedule is defined as that exact ordering.
func TestRescheduleMatchesCancelPlusAt(t *testing.T) {
	type run struct {
		fired []time.Duration
	}
	workload := func(resched bool) run {
		var r run
		k := NewKernel()
		record := func() { r.fired = append(r.fired, k.Now()) }
		deadline := k.At(50*time.Millisecond, record)
		for i := 1; i <= 5; i++ {
			k.At(time.Duration(i)*10*time.Millisecond, func() {
				if resched {
					deadline.Reschedule(k.Now() + 50*time.Millisecond)
				} else {
					deadline.Cancel()
					deadline = k.At(k.Now()+50*time.Millisecond, record)
				}
				// A same-instant decoy: ordering between the deadline and
				// other events at its timestamp must match too.
				k.At(k.Now()+50*time.Millisecond, func() { r.fired = append(r.fired, -k.Now()) })
			})
		}
		k.Run()
		return r
	}
	a, b := workload(true), workload(false)
	if len(a.fired) != len(b.fired) {
		t.Fatalf("fired %d vs %d events", len(a.fired), len(b.fired))
	}
	for i := range a.fired {
		if a.fired[i] != b.fired[i] {
			t.Fatalf("sequence diverges at %d: %v vs %v", i, a.fired, b.fired)
		}
	}
}

// TestHandleInertAfterRecycle checks generation fencing: once an event fires
// and its struct is recycled into a new event, the stale handle must be
// inert — Cancel through it must not kill the new occupant.
func TestHandleInertAfterRecycle(t *testing.T) {
	k := NewKernel()
	var stale Event
	secondFired, thirdFired := false, false
	stale = k.At(time.Millisecond, func() {})
	k.At(2*time.Millisecond, func() {
		if stale.Active() {
			t.Error("fired event's handle still active")
		}
		// Both fired structs are on the free list, so these two new events
		// reuse them; the stale handle now points at one of the new events'
		// structs with an older generation. Cancelling through it must not
		// kill the new occupant.
		k.At(3*time.Millisecond, func() { secondFired = true })
		k.At(3*time.Millisecond, func() { thirdFired = true })
		stale.Cancel() // must be a no-op
	})
	k.Run()
	if !secondFired || !thirdFired {
		t.Fatalf("stale handle cancelled a recycled event (second=%v third=%v)", secondFired, thirdFired)
	}
}

// TestCompaction checks that cancelling most of a large queue compacts it:
// live events still fire in order and PendingEvents tracks the live count.
func TestCompaction(t *testing.T) {
	k := NewKernel()
	var events []Event
	var got []int
	for i := 0; i < 1024; i++ {
		i := i
		events = append(events, k.At(time.Duration(i+1)*time.Millisecond, func() { got = append(got, i) }))
	}
	for i, ev := range events {
		if i%8 != 0 {
			ev.Cancel()
		}
	}
	if want := 1024 / 8; k.PendingEvents() != want {
		t.Fatalf("PendingEvents = %d after mass cancel, want %d", k.PendingEvents(), want)
	}
	k.Run()
	if len(got) != 1024/8 {
		t.Fatalf("fired %d, want %d", len(got), 1024/8)
	}
	for j, i := range got {
		if i != j*8 {
			t.Fatalf("fire order wrong at %d: got %d", j, i)
		}
	}
}

// TestShutdownKillOrderDeterministic checks that still-parked processes are
// killed in creation order at shutdown, so shutdown-time side effects
// (deferred cleanups) can never reorder between runs.
func TestShutdownKillOrderDeterministic(t *testing.T) {
	run := func() []int {
		k := NewKernel()
		s := NewSignal(k)
		var killed []int
		for i := 0; i < 16; i++ {
			i := i
			k.Go("parked", func(p *Proc) {
				// The defer observes the kill unwinding without recovering,
				// recording the order shutdown reached this process.
				defer func() { killed = append(killed, i) }()
				s.Wait(p) // never signalled
			})
		}
		k.Run()
		return killed
	}
	first := run()
	if len(first) != 16 {
		t.Fatalf("killed %d procs, want 16", len(first))
	}
	for i, v := range first {
		if v != i {
			t.Fatalf("kill order %v is not creation order", first)
		}
	}
}

// TestParkWake checks the single-waiter fast path: Wake resumes a parked
// process at the current instant, after already-queued same-instant events.
func TestParkWake(t *testing.T) {
	k := NewKernel()
	var order []string
	var p *Proc
	p = k.Go("sleeper", func(p *Proc) {
		p.Park()
		order = append(order, "woken")
	})
	k.At(time.Second, func() {
		k.Wake(p)
		k.At(k.Now(), func() { order = append(order, "sibling") })
	})
	k.Run()
	if len(order) != 2 || order[0] != "woken" || order[1] != "sibling" {
		t.Fatalf("order = %v, want [woken sibling]", order)
	}
}

// TestFiredEvents checks the event counter excludes cancelled events.
func TestFiredEvents(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10; i++ {
		e := k.At(time.Duration(i+1)*time.Millisecond, func() {})
		if i%2 == 1 {
			e.Cancel()
		}
	}
	k.Run()
	if k.FiredEvents() != 5 {
		t.Fatalf("FiredEvents = %d, want 5", k.FiredEvents())
	}
}
