package sim

import (
	"fmt"
	"time"
)

// WaitGroup counts outstanding work in virtual time. Unlike sync.WaitGroup it
// may only be used from kernel/process context, and Wait blocks the calling
// process rather than the OS thread.
type WaitGroup struct {
	k     *Kernel
	count int
	done  *Signal
}

// NewWaitGroup returns a wait group bound to k.
func NewWaitGroup(k *Kernel) *WaitGroup {
	return &WaitGroup{k: k, done: NewSignal(k)}
}

// Add adds delta to the counter. The counter must not go negative.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic(fmt.Sprintf("sim: negative WaitGroup counter %d", wg.count))
	}
	if wg.count == 0 {
		wg.done.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks p until the counter reaches zero. Returns immediately if it is
// already zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.done.Wait(p)
	}
}

// Count returns the current counter value.
func (wg *WaitGroup) Count() int { return wg.count }

// Semaphore is a counting semaphore in virtual time. Waiters acquire in FIFO
// order.
type Semaphore struct {
	k      *Kernel
	avail  int
	signal *Signal
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative semaphore size %d", n))
	}
	return &Semaphore{k: k, avail: n, signal: NewSignal(k)}
}

// Acquire takes one permit, parking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		s.signal.Wait(p)
	}
	s.avail--
}

// Release returns one permit and wakes one waiter, if any.
func (s *Semaphore) Release() {
	s.avail++
	s.signal.Notify()
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// Mailbox is an unbounded FIFO message queue between processes. Receivers
// park until a message arrives. It models an asynchronous message channel
// (e.g. an RPC endpoint) in virtual time.
type Mailbox[T any] struct {
	k      *Kernel
	queue  []T
	arrive *Signal
}

// NewMailbox returns an empty mailbox bound to k.
func NewMailbox[T any](k *Kernel) *Mailbox[T] {
	return &Mailbox[T]{k: k, arrive: NewSignal(k)}
}

// Send enqueues msg after delay d (modelling transmission latency) and wakes
// one receiver. Send never blocks and may be called from event context.
func (m *Mailbox[T]) Send(d time.Duration, msg T) {
	m.k.After(d, func() {
		m.queue = append(m.queue, msg)
		m.arrive.Notify()
	})
}

// Put enqueues msg at the current instant — the arrival half of Send
// without the latency half. Shard coordinators use it to inject a
// cross-shard message whose transmission delay was already served on the
// sending shard's side of the lookahead barrier.
func (m *Mailbox[T]) Put(msg T) {
	m.queue = append(m.queue, msg)
	m.arrive.Notify()
}

// Recv dequeues the next message, parking p until one is available.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for len(m.queue) == 0 {
		m.arrive.Wait(p)
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg
}

// TryRecv dequeues a message if one is queued, without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	var zero T
	if len(m.queue) == 0 {
		return zero, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// Len returns the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.queue) }
