package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// buildMergedModel constructs an identical workload on ks[0..2] — procs,
// periodic timers, cross-kernel mailboxes, same-instant events, cancels —
// and returns the shared log. Passing the same kernel three times yields
// the single-kernel reference run.
func buildMergedModel(ks [3]*Kernel, log *[]string) {
	rec := func(k *Kernel, what string) {
		*log = append(*log, fmt.Sprintf("%v %s", k.Now(), what))
	}
	boxes := [3]*Mailbox[int]{}
	for i := range boxes {
		boxes[i] = NewMailbox[int](ks[i])
	}
	// A ring of processes bouncing a token across kernels with latency.
	for i := range ks {
		i := i
		ks[i].Go(fmt.Sprintf("ring-%d", i), func(p *Proc) {
			for hops := 0; hops < 5; hops++ {
				v := boxes[i].Recv(p)
				rec(ks[i], fmt.Sprintf("ring-%d got %d", i, v))
				boxes[(i+1)%3].Send(3*time.Millisecond, v+1)
			}
		})
	}
	boxes[0].Send(0, 100)
	// Periodic tickers on every kernel at the same period: same-instant
	// events on different kernels every tick.
	for i := range ks {
		i := i
		var ev Event
		n := 0
		ev = ks[i].Every(2*time.Millisecond, func() {
			rec(ks[i], fmt.Sprintf("tick-%d", i))
			if n++; n == 4 {
				ev.Cancel()
			}
		})
	}
	// A cancelled timer and a rescheduled one.
	dead := ks[1].After(5*time.Millisecond, func() { rec(ks[1], "never") })
	dead.Cancel()
	mv := ks[2].After(1*time.Millisecond, func() { rec(ks[2], "moved") })
	mv.Reschedule(7 * time.Millisecond)
	// A proc that parks forever: killed at shutdown, logging via defer so
	// the global kill order is observable.
	for i := range ks {
		i := i
		ks[i].Go(fmt.Sprintf("parked-%d", i), func(p *Proc) {
			defer rec(ks[i], fmt.Sprintf("killed-%d", i))
			p.Park()
		})
	}
}

// TestShardSetMergedIdentity: a merged shard set must produce exactly the
// event order of a single kernel running the union of the model.
func TestShardSetMergedIdentity(t *testing.T) {
	var want []string
	k := NewKernel()
	buildMergedModel([3]*Kernel{k, k, k}, &want)
	k.Run()

	var got []string
	ss := NewShardSet(3, time.Millisecond)
	buildMergedModel([3]*Kernel{ss.Shard(0), ss.Shard(1), ss.Shard(2)}, &got)
	ss.Run()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged shard run diverged from single kernel:\n got %v\nwant %v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("model produced no log entries")
	}
}

// TestShardSetMergedIdentityTwoShards re-runs the identity check at a
// different shard count mapping two model roles onto one kernel.
func TestShardSetMergedIdentityTwoShards(t *testing.T) {
	var want []string
	k := NewKernel()
	buildMergedModel([3]*Kernel{k, k, k}, &want)
	k.Run()

	var got []string
	ss := NewShardSet(2, time.Millisecond)
	buildMergedModel([3]*Kernel{ss.Shard(0), ss.Shard(1), ss.Shard(0)}, &got)
	ss.Run()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("2-shard merged run diverged from single kernel:\n got %v\nwant %v", got, want)
	}
}

// windowedModel builds an engine-shaped workload: shard-local busywork plus
// cross-shard messages routed through send (which must respect the
// lookahead). Each shard keeps its own log so concurrent windows never
// share a slice. Returns per-shard logs.
func windowedModel(ks []*Kernel, send func(from, dst int, d time.Duration, fn func())) []*[]string {
	logs := make([]*[]string, len(ks))
	for i := range logs {
		logs[i] = new([]string)
	}
	rec := func(i int, what string) {
		*logs[i] = append(*logs[i], fmt.Sprintf("%v %s", ks[i].Now(), what))
	}
	inbox := make([]*Mailbox[string], len(ks))
	for i := range ks {
		inbox[i] = NewMailbox[string](ks[i])
	}
	for i := range ks {
		i := i
		ks[i].Go(fmt.Sprintf("worker-%d", i), func(p *Proc) {
			for round := 0; round < 6; round++ {
				// Shard-local busywork: a burst of same-instant and
				// near-future events.
				for j := 0; j < 3; j++ {
					p.Sleep(time.Duration(j) * 100 * time.Microsecond)
					rec(i, fmt.Sprintf("work r%d j%d", round, j))
				}
				if i != 0 {
					// Report to shard 0 with a latency covering the
					// lookahead.
					msg := fmt.Sprintf("from-%d r%d", i, round)
					send(i, 0, 2*time.Millisecond, func() { inbox[0].Put(msg) })
				}
				p.Sleep(5 * time.Millisecond)
			}
		})
	}
	ks[0].Go("collector", func(p *Proc) {
		total := 6 * (len(ks) - 1) // every non-zero shard reports once per round
		for n := 0; n < total; n++ {
			m := inbox[0].Recv(p)
			rec(0, "recv "+m)
		}
	})
	return logs
}

// TestShardSetWindowedDeterministic: two identical windowed runs produce
// identical per-shard logs.
func TestShardSetWindowedDeterministic(t *testing.T) {
	run := func() [][]string {
		ss := NewShardSet(4, time.Millisecond)
		ks := []*Kernel{ss.Shard(0), ss.Shard(1), ss.Shard(2), ss.Shard(3)}
		logs := windowedModel(ks, ss.Send)
		ss.RunWindows()
		out := make([][]string, len(logs))
		for i, l := range logs {
			out[i] = *l
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("windowed runs diverged:\n a %v\n b %v", a, b)
	}
	if len(a[0]) == 0 || len(a[1]) == 0 {
		t.Fatalf("windowed model produced empty logs: %v", a)
	}
}

// TestShardSetWindowedMatchesMerged: when cross-shard traffic respects the
// lookahead and lands at distinct instants, the windowed run's per-shard
// logs equal the merged run's (the merged run routes the same sends by
// direct cross-kernel scheduling).
func TestShardSetWindowedMatchesMerged(t *testing.T) {
	merged := func() [][]string {
		ss := NewShardSet(3, time.Millisecond)
		ks := []*Kernel{ss.Shard(0), ss.Shard(1), ss.Shard(2)}
		send := func(from, dst int, d time.Duration, fn func()) {
			ks[dst].After(d, fn)
		}
		logs := windowedModel(ks, send)
		ss.Run()
		out := make([][]string, len(logs))
		for i, l := range logs {
			out[i] = *l
		}
		return out
	}()
	windowed := func() [][]string {
		ss := NewShardSet(3, time.Millisecond)
		ks := []*Kernel{ss.Shard(0), ss.Shard(1), ss.Shard(2)}
		logs := windowedModel(ks, ss.Send)
		ss.RunWindows()
		out := make([][]string, len(logs))
		for i, l := range logs {
			out[i] = *l
		}
		return out
	}()
	if !reflect.DeepEqual(windowed, merged) {
		t.Fatalf("windowed diverged from merged:\n windowed %v\n merged %v", windowed, merged)
	}
}

// TestShardSetSameInstantMergeOrder: messages from different shards
// arriving at the same nanosecond are delivered in (time, source shard,
// source seq) order, whatever order the sending windows ran in.
func TestShardSetSameInstantMergeOrder(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		ss := NewShardSet(3, time.Millisecond)
		var got []string
		for src := 1; src <= 2; src++ {
			src := src
			ss.Shard(src).Go(fmt.Sprintf("src-%d", src), func(p *Proc) {
				// Both shards send two messages at the same virtual
				// instant, arriving at the same nanosecond on shard 0.
				for n := 0; n < 2; n++ {
					msg := fmt.Sprintf("src%d-msg%d", src, n)
					ss.Send(src, 0, 2*time.Millisecond, func() {
						got = append(got, msg)
					})
				}
			})
		}
		ss.RunWindows()
		want := []string{"src1-msg0", "src1-msg1", "src2-msg0", "src2-msg1"}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: same-instant merge order %v, want %v", trial, got, want)
		}
	}
}

// TestRunUntilBoundary: RunUntil fires strictly-before-limit events only,
// leaves the clock at the last fired event, and resumes cleanly across
// windows.
func TestRunUntilBoundary(t *testing.T) {
	k := NewKernel()
	var got []string
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d
		k.At(d*time.Millisecond, func() {
			got = append(got, fmt.Sprintf("%d", d))
		})
	}
	k.RunUntil(3 * time.Millisecond)
	if want := []string{"1", "2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("first window fired %v, want %v", got, want)
	}
	if k.Now() != 2*time.Millisecond {
		t.Fatalf("clock at %v after first window, want 2ms", k.Now())
	}
	if !k.HasPendingEvents() {
		t.Fatal("events at/after the limit must stay queued")
	}
	k.RunUntil(noLimit)
	if want := []string{"1", "2", "3", "4"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after second window fired %v, want %v", got, want)
	}
}

// TestRunUntilParksProcesses: a process sleeping past the window limit
// stays parked between windows and resumes in a later window.
func TestRunUntilParksProcesses(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, fmt.Sprintf("%v wake %d", k.Now(), i))
			p.Sleep(10 * time.Millisecond)
		}
	})
	for w := time.Duration(1); len(got) < 3 && w < 100; w++ {
		k.RunUntil(w * 5 * time.Millisecond)
	}
	want := []string{"0s wake 0", "10ms wake 1", "20ms wake 2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Drain and shut down so the sleeper goroutine exits.
	k.Run()
}

// TestStepPrimitives: Peek/Process step through ring and heap events in
// (time, seq) order and skip cancelled corpses.
func TestStepPrimitives(t *testing.T) {
	ss := NewShardSet(1, time.Millisecond)
	k := ss.Shard(0)
	var got []string
	k.At(0, func() { got = append(got, "ring") }) // same-instant: ring lane
	k.At(2*time.Millisecond, func() { got = append(got, "heap") })
	dead := k.At(1*time.Millisecond, func() { got = append(got, "cancelled") })
	dead.Cancel()
	if !k.HasPendingEvents() {
		t.Fatal("expected pending events")
	}
	if at, ok := k.PeekNextEventTime(); !ok || at != 0 {
		t.Fatalf("peek = %v %v, want 0 true", at, ok)
	}
	if !k.ProcessNextEvent() {
		t.Fatal("expected an event to fire")
	}
	if at, ok := k.PeekNextEventTime(); !ok || at != 2*time.Millisecond {
		t.Fatalf("peek after cancel-skip = %v %v, want 2ms true", at, ok)
	}
	if !k.ProcessNextEvent() {
		t.Fatal("expected the heap event to fire")
	}
	if k.ProcessNextEvent() {
		t.Fatal("queue should be drained")
	}
	if want := []string{"ring", "heap"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

// TestShardSendGuards: Send panics outside windowed runs and on delays
// below the lookahead.
func TestShardSendGuards(t *testing.T) {
	ss := NewShardSet(2, time.Millisecond)
	mustPanic := func(what string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", what)
			}
		}()
		fn()
	}
	mustPanic("send outside windowed run", func() {
		ss.Send(0, 1, 2*time.Millisecond, func() {})
	})
	ss.Shard(0).Go("violator", func(p *Proc) {
		mustPanic("send below lookahead", func() {
			ss.Send(0, 1, time.Microsecond, func() {})
		})
	})
	ss.RunWindows()
}
