// Package sim implements a deterministic discrete-event simulation kernel
// with cooperative goroutine-based processes.
//
// The kernel owns a virtual clock and an event queue. Processes are ordinary
// goroutines that run one at a time: exactly one of {kernel, some process}
// executes at any moment, and control is handed off explicitly. A process
// blocks in virtual time by calling Proc.Sleep or by waiting on a Signal;
// while it is blocked the kernel fires the next pending event. Because only
// one goroutine ever runs at a time and ties are broken by sequence number,
// simulations are exactly reproducible.
//
// The event queue is the simulator's hottest data structure, so it avoids
// the generic container/heap: events live in an inlined 4-ary indexed
// min-heap ordered by (time, seq), fired events are recycled through a
// free list instead of being reallocated, lazily-cancelled events are
// compacted away once they outnumber the live ones, and the common
// timer patterns — a deadline pushed back on every heartbeat, a periodic
// tick — reschedule their event in place (Event.Reschedule, Kernel.Every)
// rather than churning cancel + new allocation.
package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// kstate is the ordering state a kernel draws on: the virtual clock and the
// event / process sequence counters. A standalone kernel owns its own; the
// kernels of a merged shard set (see ShardSet) share one, which makes event
// creation order — and therefore every tie-break — globally unique across
// shards, the property that keeps a merged sharded run byte-identical to a
// single-kernel run.
type kstate struct {
	now     time.Duration
	seq     uint64
	procSeq uint64
}

// noLimit disables the RunUntil horizon.
const noLimit = time.Duration(math.MaxInt64)

// Kernel is a discrete-event simulator. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	st     *kstate
	events eventQueue
	// dead counts cancelled events still sitting in the queue; once they
	// outnumber the live ones the queue is compacted in one pass.
	dead int
	// ring is the fast lane for events scheduled at the current instant —
	// process wake-ups from Broadcast/Notify/Go, Yield, zero-delay sends,
	// the kernel's most common event by far. An event appended at the
	// then-current time necessarily sorts after everything already in the
	// ring (time never decreases, seq always increases), so the slice is
	// kept sorted by construction and popping its head is O(1) instead of
	// a heap sift. ringHead is the next slot to pop; ringDead counts
	// abandoned (nil) and cancelled entries at or after ringHead.
	ring     []*event
	ringHead int
	ringDead int
	free     *event // free list of recycled event structs
	// main wakes the Run goroutine when the dispatch baton (see dispatch)
	// finds no more events to fire. Kernels in a merged shard set share one
	// main channel, so a process parking on any shard hands the baton back
	// to the coordinator stepping the set.
	main  chan struct{}
	procs map[*Proc]struct{}
	// fired counts events that actually ran (cancelled ones excluded) —
	// the numerator of the events/sec benchmark metric.
	fired   uint64
	running bool
	stopped bool
	// stepped puts the kernel under external single-step control
	// (ProcessNextEvent): a parking or exiting process hands the baton
	// straight back on main instead of dispatching further events itself,
	// because the next event to fire may belong to a different kernel of
	// the shard set.
	stepped bool
	// limit is the RunUntil horizon: dispatch refuses to fire events at or
	// past it. noLimit for a plain Run.
	limit time.Duration
}

// NewKernel returns a kernel with the clock at zero and an empty event queue.
func NewKernel() *Kernel {
	return &Kernel{
		st:    &kstate{},
		main:  make(chan struct{}, 1),
		procs: make(map[*Proc]struct{}),
		limit: noLimit,
	}
}

// Now returns the current virtual time (duration since simulation start).
func (k *Kernel) Now() time.Duration { return k.st.now }

// event is the kernel-internal representation of a scheduled callback. The
// struct is recycled through the kernel free list once fired or compacted
// away; gen is bumped on every recycle so stale Event handles become inert.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// proc, if non-nil, makes firing switch to the process directly — the
	// Sleep/Broadcast/Go resume path — without allocating a closure.
	proc *Proc
	// every > 0 marks a periodic event (Kernel.Every): after firing it is
	// rescheduled in place instead of being recycled.
	every time.Duration
	// index locates the event in a queue: >= 0 is a heap index, -1 means
	// not queued (firing, fired, or recycled), <= -2 encodes ring slot
	// -2-index.
	index     int32
	gen       uint32
	cancelled bool
	next      *event // free-list link
}

// Event is a cancellable handle to a scheduled callback. The zero value is
// an inert handle: Cancel is a no-op and Active reports false. Handles are
// generation-checked, so holding one past its event's firing is safe — it
// simply goes inert once the kernel recycles the event.
type Event struct {
	k   *Kernel
	e   *event
	gen uint32
}

// Active reports whether the event is still scheduled to fire: it has not
// fired (periodic events stay active across firings), been cancelled, or
// been discarded by shutdown.
func (ev Event) Active() bool {
	return ev.e != nil && ev.e.gen == ev.gen && !ev.e.cancelled && (ev.e.index != -1 || ev.e.every > 0)
}

// Cancel prevents the event from firing (again, for periodic events).
// Cancelling an already-fired, already-cancelled or zero-value handle is a
// no-op. Cancellation is lazy — the event stays queued until it is popped
// or compacted away — so it is O(1).
func (ev Event) Cancel() {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 {
		ev.k.dead++
		ev.k.maybeCompact()
	} else if e.index <= -2 {
		ev.k.ringDead++
	}
}

// Reschedule moves a still-active event to absolute virtual time at,
// assigning it a fresh sequence number — exactly the ordering a cancel
// followed by a new At would produce, without the allocation or the dead
// queue entry. It panics if the event is no longer active or at is in the
// past; callers guard with Active.
func (ev Event) Reschedule(at time.Duration) {
	e := ev.e
	if !ev.Active() || e.index == -1 {
		panic("sim: Reschedule of inactive event")
	}
	k := ev.k
	if at < k.st.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", at, k.st.now))
	}
	e.seq = k.st.seq
	k.st.seq++
	e.at = at
	if e.index <= -2 {
		// Leaving the ring: abandon the slot (popping skips nils) and
		// requeue wherever the new time belongs.
		k.ring[-2-e.index] = nil
		k.ringDead++
		k.enqueue(e)
		return
	}
	k.events.fix(int(e.index))
}

// newEvent takes an event struct from the free list (or allocates one) and
// schedules it.
func (k *Kernel) newEvent(at time.Duration, fn func(), proc *Proc, every time.Duration) *event {
	if at < k.st.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.st.now))
	}
	e := k.free
	if e != nil {
		k.free = e.next
		e.next = nil
	} else {
		e = &event{}
	}
	e.at = at
	e.seq = k.st.seq
	k.st.seq++
	e.fn = fn
	e.proc = proc
	e.every = every
	e.cancelled = false
	k.enqueue(e)
	return e
}

// enqueue routes an event to the ring (scheduled at the current instant,
// where its fresh seq keeps the ring sorted by construction) or the heap.
func (k *Kernel) enqueue(e *event) {
	if e.at == k.st.now {
		e.index = int32(-2 - len(k.ring))
		k.ring = append(k.ring, e)
		return
	}
	k.events.push(e)
}

// recycle returns a fired or compacted event to the free list, bumping its
// generation so outstanding handles go inert.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.proc = nil
	e.every = 0
	e.cancelled = false
	e.index = -1
	e.next = k.free
	k.free = e
}

// maybeCompact sweeps cancelled events out of the queue once they outnumber
// the live ones. Heartbeat-deadline and speculation-style timers cancel far
// more events than they fire; without compaction those corpses would sit in
// the heap for the rest of the run, taxing every push and pop.
func (k *Kernel) maybeCompact() {
	if n := len(k.events); k.dead*2 <= n || n < 64 {
		return
	}
	live := k.events[:0]
	for _, e := range k.events {
		if e.cancelled {
			k.recycle(e)
			continue
		}
		live = append(live, e)
	}
	for i := len(live); i < len(k.events); i++ {
		k.events[i] = nil
	}
	k.events = live
	k.events.heapify()
	k.dead = 0
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it would break causality.
func (k *Kernel) At(at time.Duration, fn func()) Event {
	e := k.newEvent(at, fn, nil, 0)
	return Event{k: k, e: e, gen: e.gen}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d time.Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.st.now+d, fn)
}

// Every schedules fn to run every d of virtual time, first at now+d. The
// event reschedules itself in place after each firing — one queue entry and
// one struct for the whole series, rather than a cancel + fresh allocation
// per tick (the heartbeat/monitor-tick pattern). The series runs until the
// returned handle is cancelled; the handle stays valid across firings.
func (k *Kernel) Every(d time.Duration, fn func()) Event {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", d))
	}
	e := k.newEvent(k.st.now+d, fn, nil, d)
	return Event{k: k, e: e, gen: e.gen}
}

// afterProc schedules a direct process resume d from now — the Sleep /
// Signal / Go hot path, which needs no closure.
func (k *Kernel) afterProc(d time.Duration, p *Proc) *event {
	return k.newEvent(k.st.now+d, nil, p, 0)
}

// Run fires events in timestamp order (FIFO among equal timestamps) until the
// queue is empty or Stop is called, then kills any processes that are still
// parked so their goroutines exit. Run must be called from the goroutine that
// created the kernel, and must not be called from inside a process.
func (k *Kernel) Run() {
	if k.running {
		panic("sim: Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	k.dispatch(nil, false)
	k.shutdown()
}

// dispatch runs the event loop on the calling goroutine — the "dispatch
// baton": exactly one goroutine in the simulation holds it and fires
// events. A parking process keeps firing events itself until the next
// process resume comes up; resuming self costs nothing, and resuming
// another process is one direct channel handoff. (The previous design
// bounced every switch through the kernel goroutine, doubling the channel
// handoffs on the simulator's hottest path.) Callback events run inline on
// whichever goroutine holds the baton; only one goroutine ever runs at a
// time, so they execute in kernel context either way.
//
// self is the calling process, or nil when called from Run. dispatch
// returns once self is next to run: its own resume event fired, or another
// baton holder handed back control (via self.resume, or k.main for Run).
// With exiting set the caller is a process goroutine about to exit — it
// passes the baton on and returns without ever blocking.
func (k *Kernel) dispatch(self *Proc, exiting bool) {
	for !k.stopped {
		if k.stepped {
			// Under single-step control (ProcessNextEvent) the coordinator
			// fires events; a parking or exiting process only hands the
			// baton back.
			break
		}
		var e *event
		if k.limit != noLimit {
			// RunUntil horizon: peek first so events at or past the limit
			// stay queued for the next window.
			e = k.peekLive()
			if e == nil || e.at >= k.limit {
				break
			}
			k.popPeeked(e)
		} else {
			e = k.nextEvent()
			if e == nil {
				break
			}
			if e.cancelled {
				k.recycle(e)
				continue
			}
		}
		if e.at < k.st.now {
			panic("sim: event queue went backwards")
		}
		k.st.now = e.at
		k.fired++
		switch {
		case e.proc != nil:
			q := e.proc
			k.recycle(e)
			if q == self && !exiting {
				return
			}
			q.resume <- struct{}{}
			switch {
			case exiting:
				// The dying goroutine is done; the baton lives on in q.
			case self == nil:
				// Run waits for the baton to come home when the
				// simulation runs dry.
				<-k.main
			default:
				<-self.resume
			}
			return
		case e.every > 0:
			e.fn()
			if e.cancelled {
				// fn cancelled its own series mid-fire.
				k.recycle(e)
			} else {
				// Reschedule in place with a fresh seq, after fn so
				// anything fn scheduled at the next tick fires first.
				e.at += e.every
				e.seq = k.st.seq
				k.st.seq++
				k.events.push(e)
			}
		default:
			fn := e.fn
			k.recycle(e)
			fn()
		}
	}
	// Out of events (or Stop was called): hand the baton home to Run so it
	// can shut the simulation down; parked processes then wait to be killed.
	if self == nil {
		return
	}
	k.main <- struct{}{}
	if !exiting {
		<-self.resume
	}
}

// HasPendingEvents reports whether any live (non-cancelled) event remains
// queued — the emptiness step primitive for shard coordinators.
func (k *Kernel) HasPendingEvents() bool { return k.peekLive() != nil }

// PeekNextEventTime returns the virtual time of the next event this kernel
// would fire, without firing it. The second result is false when no live
// event is queued. Shard coordinators use it to pick the globally earliest
// kernel (merged mode) and to derive the next lookahead window (windowed
// mode).
func (k *Kernel) PeekNextEventTime() (time.Duration, bool) {
	e := k.peekLive()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// ProcessNextEvent fires exactly one event — the kernel's (time, seq)
// minimum — and reports whether one fired. It is the single-step primitive
// under a shard coordinator. The kernel must be in stepped mode (ShardSet
// arranges this): a process resumed by the event hands the baton straight
// back on the shared main channel instead of dispatching further events,
// which may belong to a sibling kernel.
func (k *Kernel) ProcessNextEvent() bool {
	e := k.peekLive()
	if e == nil {
		return false
	}
	k.popPeeked(e)
	if e.at < k.st.now {
		panic("sim: event queue went backwards")
	}
	k.st.now = e.at
	k.fired++
	switch {
	case e.proc != nil:
		q := e.proc
		k.recycle(e)
		q.resume <- struct{}{}
		// The resumed process parks or exits and hands the baton back on
		// the (shared) main channel; q may belong to any kernel of the set.
		<-k.main
	case e.every > 0:
		e.fn()
		if e.cancelled {
			k.recycle(e)
		} else {
			e.at += e.every
			e.seq = k.st.seq
			k.st.seq++
			k.events.push(e)
		}
	default:
		fn := e.fn
		k.recycle(e)
		fn()
	}
	return true
}

// RunUntil fires events in (time, seq) order until no event strictly before
// limit remains, or Stop is called. Unlike Run it does not shut the kernel
// down: parked processes stay parked and the clock stays wherever the last
// event left it, ready for the next window. It is the windowed-mode shard
// primitive — the coordinator picks a horizon no shard may cross and lets
// every shard dispatch freely (full baton machinery, no per-event
// coordination) up to it.
func (k *Kernel) RunUntil(limit time.Duration) {
	if k.running {
		panic("sim: RunUntil called re-entrantly")
	}
	k.running = true
	k.limit = limit
	k.dispatch(nil, false)
	k.limit = noLimit
	k.running = false
}

// peekLive returns the next live event — the (time, seq) minimum across the
// ring fast lane and the heap — without removing it, or nil when none is
// queued. Cancelled corpses encountered at either front are popped and
// recycled along the way, so a returned event is always live and is exactly
// what nextEvent would pop next.
func (k *Kernel) peekLive() *event {
	for {
		for k.ringHead < len(k.ring) && k.ring[k.ringHead] == nil {
			k.ringHead++
			k.ringDead--
		}
		var r *event
		if k.ringHead < len(k.ring) {
			r = k.ring[k.ringHead]
		} else if k.ringHead > 0 {
			k.ring = k.ring[:0]
			k.ringHead = 0
		}
		if r != nil && r.cancelled {
			k.ringHead++
			k.ringDead--
			r.index = -1
			k.recycle(r)
			continue
		}
		for len(k.events) > 0 && k.events[0].cancelled {
			k.dead--
			k.recycle(k.events.pop())
		}
		var h *event
		if len(k.events) > 0 {
			h = k.events[0]
		}
		switch {
		case r == nil:
			return h
		case h == nil || !eventLess(h, r):
			// Ring wins ties, matching nextEvent's preference.
			return r
		default:
			return h
		}
	}
}

// popPeeked removes the event peekLive just returned — by construction the
// head of the ring or the top of the heap.
func (k *Kernel) popPeeked(e *event) {
	if e.index <= -2 {
		k.ringHead++
		e.index = -1
		return
	}
	k.events.pop()
}

// nextEvent pops the globally next event — the (time, seq) minimum across
// the ring fast lane and the heap — or nil when both are empty. Cancelled
// events are returned for the caller to recycle, with their dead-counter
// already settled.
func (k *Kernel) nextEvent() *event {
	for k.ringHead < len(k.ring) && k.ring[k.ringHead] == nil {
		k.ringHead++
		k.ringDead--
	}
	var r *event
	if k.ringHead < len(k.ring) {
		r = k.ring[k.ringHead]
	} else if k.ringHead > 0 {
		k.ring = k.ring[:0]
		k.ringHead = 0
	}
	if r != nil && (len(k.events) == 0 || !eventLess(k.events[0], r)) {
		k.ringHead++
		if r.cancelled {
			k.ringDead--
		}
		r.index = -1
		return r
	}
	if len(k.events) > 0 {
		e := k.events.pop()
		if e.cancelled {
			k.dead--
		}
		return e
	}
	return nil
}

// Stop makes Run return after the currently firing event completes. Remaining
// events are discarded and parked processes are killed.
func (k *Kernel) Stop() { k.stopped = true }

// PendingEvents returns the number of live (non-cancelled) events queued —
// introspection for tests and diagnostics.
func (k *Kernel) PendingEvents() int {
	return len(k.events) - k.dead + len(k.ring) - k.ringHead - k.ringDead
}

// FiredEvents returns the number of events that have run so far (process
// resumes, callbacks and periodic firings; cancelled events excluded).
// Benchmarks divide it by wall time for the kernel's events/sec figure.
func (k *Kernel) FiredEvents() uint64 { return k.fired }

// shutdown kills all parked processes so their goroutines exit, in process
// creation order: map iteration here would let shutdown-time side effects
// (deferred cleanups in killed processes) reorder between otherwise
// identical runs.
func (k *Kernel) shutdown() {
	parked := make([]*Proc, 0, len(k.procs))
	for p := range k.procs {
		parked = append(parked, p)
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].seq < parked[j].seq })
	for _, p := range parked {
		p.kill = true
		p.resume <- struct{}{}
		// The killed process unwinds and hands the baton back on k.main.
		<-k.main
	}
	k.events = nil
	k.free = nil
	k.dead = 0
	k.ring = nil
	k.ringHead = 0
	k.ringDead = 0
}

// Proc is a simulation process: a goroutine that advances only when the
// kernel hands it control, and blocks only in virtual time.
type Proc struct {
	k      *Kernel
	name   string
	seq    uint64
	resume chan struct{}
	kill   bool
}

// killed is the panic value used to unwind a process during shutdown.
type killed struct{}

// Go spawns a new process running fn. The process starts at the current
// virtual time, after already-scheduled events at this timestamp.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, seq: k.st.procSeq, resume: make(chan struct{}, 1)}
	k.st.procSeq++
	k.procs[p] = struct{}{}
	go func() {
		defer func() {
			delete(k.procs, p)
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					// Killed during shutdown: hand the baton back to
					// the shutdown loop.
					k.main <- struct{}{}
					return
				}
				panic(r)
			}
			// Normal exit: this goroutine still holds the baton — pass
			// it to the next event's owner without blocking.
			k.dispatch(p, true)
		}()
		<-p.resume
		if p.kill {
			panic(killed{})
		}
		fn(p)
	}()
	k.afterProc(0, p)
	return p
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.st.now }

// park blocks the process until some event resumes it. The parking
// goroutine takes over event dispatch (see dispatch), so a process that is
// the next to run again resumes without any goroutine switch at all.
func (p *Proc) park() {
	p.k.dispatch(p, false)
	if p.kill {
		panic(killed{})
	}
}

// Park parks the process until another process or event schedules it with
// Kernel.Wake. Every Park must be matched by exactly one Wake; parking
// without a guaranteed waker deadlocks the simulation at shutdown. It is
// the single-waiter fast path underlying Signal, for callers that would
// otherwise allocate a Signal per wait.
func (p *Proc) Park() { p.park() }

// Wake schedules parked process p to resume at the current virtual time,
// after already-scheduled events at this timestamp — exactly like a
// single-waiter Signal.Broadcast.
func (k *Kernel) Wake(p *Proc) { k.afterProc(0, p) }

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.k.afterProc(d, p)
	p.park()
}

// Yield reschedules the process at the current time, letting other events at
// this timestamp fire first.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a virtual-time condition variable. The zero value is invalid;
// use NewSignal. Signals are not safe for use outside kernel/process context
// (they need no locking because only one goroutine runs at a time).
type Signal struct {
	k       *Kernel
	waiters []*Proc
}

// NewSignal returns a signal bound to k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Wait parks p until Broadcast or Notify wakes it.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Broadcast wakes all waiting processes. They resume at the current virtual
// time in the order they began waiting.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.k.afterProc(0, w)
	}
}

// Notify wakes the longest-waiting process, if any. It reports whether a
// process was woken.
func (s *Signal) Notify() bool {
	if len(s.waiters) == 0 {
		return false
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.k.afterProc(0, w)
	return true
}

// Pending returns the number of processes waiting on the signal.
func (s *Signal) Pending() int { return len(s.waiters) }

// eventQueue is an inlined 4-ary indexed min-heap of events ordered by
// (at, seq). 4-ary halves the depth of the binary heap the generic
// container/heap would give and keeps three of four children on the same
// cache line pair, and the concrete element type removes every interface
// call from push/pop — together the bulk of the kernel's 2x+ event
// throughput over the container/heap implementation it replaced.
type eventQueue []*event

// less orders events by (at, seq); seq breaks ties FIFO.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e *event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	e.index = int32(i)
	h.up(i)
}

func (q *eventQueue) pop() *event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[0].index = 0
	h[n] = nil
	*q = h[:n]
	if n > 0 {
		(*q).down(0)
	}
	top.index = -1
	return top
}

// fix restores the heap property around index i after its event's key
// changed.
func (q eventQueue) fix(i int) {
	if !q.down(i) {
		q.up(i)
	}
}

// heapify rebuilds the heap property over the whole slice in O(n) — used
// after compaction.
func (q eventQueue) heapify() {
	for i := range q {
		q[i].index = int32(i)
	}
	for i := (len(q) - 2) / 4; i >= 0; i-- {
		q.down(i)
	}
}

func (q eventQueue) up(i int) {
	e := q[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := q[parent]
		if !eventLess(e, p) {
			break
		}
		q[i] = p
		p.index = int32(i)
		i = parent
	}
	q[i] = e
	e.index = int32(i)
}

// down sifts index i toward the leaves, reporting whether it moved.
func (q eventQueue) down(i int) bool {
	n := len(q)
	e := q[i]
	start := i
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(q[c], q[min]) {
				min = c
			}
		}
		if !eventLess(q[min], e) {
			break
		}
		q[i] = q[min]
		q[i].index = int32(i)
		i = min
	}
	q[i] = e
	e.index = int32(i)
	return i > start
}
