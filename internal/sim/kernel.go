// Package sim implements a deterministic discrete-event simulation kernel
// with cooperative goroutine-based processes.
//
// The kernel owns a virtual clock and an event queue. Processes are ordinary
// goroutines that run one at a time: exactly one of {kernel, some process}
// executes at any moment, and control is handed off explicitly. A process
// blocks in virtual time by calling Proc.Sleep or by waiting on a Signal;
// while it is blocked the kernel fires the next pending event. Because only
// one goroutine ever runs at a time and ties are broken by sequence number,
// simulations are exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Kernel is a discrete-event simulator. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	yield   chan struct{}
	procs   map[*Proc]struct{}
	running bool
	stopped bool
}

// NewKernel returns a kernel with the clock at zero and an empty event queue.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time (duration since simulation start).
func (k *Kernel) Now() time.Duration { return k.now }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index, -1 once fired or cancelled
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it would break causality.
func (k *Kernel) At(at time.Duration, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	e := &Event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run d from now.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Run fires events in timestamp order (FIFO among equal timestamps) until the
// queue is empty or Stop is called, then kills any processes that are still
// parked so their goroutines exit. Run must be called from the goroutine that
// created the kernel, and must not be called from inside a process.
func (k *Kernel) Run() {
	if k.running {
		panic("sim: Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for !k.stopped && len(k.events) > 0 {
		e := heap.Pop(&k.events).(*Event)
		if e.cancelled {
			continue
		}
		if e.at < k.now {
			panic("sim: event queue went backwards")
		}
		k.now = e.at
		e.fn()
	}
	k.shutdown()
}

// Stop makes Run return after the currently firing event completes. Remaining
// events are discarded and parked processes are killed.
func (k *Kernel) Stop() { k.stopped = true }

// shutdown kills all parked processes so their goroutines exit.
func (k *Kernel) shutdown() {
	for p := range k.procs {
		p.kill = true
		k.switchTo(p)
	}
	k.events = nil
}

// switchTo transfers control to p and waits until p parks again or exits.
func (k *Kernel) switchTo(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}

// Proc is a simulation process: a goroutine that advances only when the
// kernel hands it control, and blocks only in virtual time.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	kill   bool
}

// killed is the panic value used to unwind a process during shutdown.
type killed struct{}

// Go spawns a new process running fn. The process starts at the current
// virtual time, after already-scheduled events at this timestamp.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs[p] = struct{}{}
	go func() {
		defer func() {
			delete(k.procs, p)
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					k.yield <- struct{}{}
					return
				}
				panic(r)
			}
			k.yield <- struct{}{}
		}()
		<-p.resume
		if p.kill {
			panic(killed{})
		}
		fn(p)
	}()
	k.After(0, func() { k.switchTo(p) })
	return p
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// park yields control to the kernel until some event resumes this process.
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	<-p.resume
	if p.kill {
		panic(killed{})
	}
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.k.After(d, func() { p.k.switchTo(p) })
	p.park()
}

// Yield reschedules the process at the current time, letting other events at
// this timestamp fire first.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a virtual-time condition variable. The zero value is invalid;
// use NewSignal. Signals are not safe for use outside kernel/process context
// (they need no locking because only one goroutine runs at a time).
type Signal struct {
	k       *Kernel
	waiters []*Proc
}

// NewSignal returns a signal bound to k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Wait parks p until Broadcast or Notify wakes it.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Broadcast wakes all waiting processes. They resume at the current virtual
// time in the order they began waiting.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w := w
		s.k.After(0, func() { s.k.switchTo(w) })
	}
}

// Notify wakes the longest-waiting process, if any. It reports whether a
// process was woken.
func (s *Signal) Notify() bool {
	if len(s.waiters) == 0 {
		return false
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.k.After(0, func() { s.k.switchTo(w) })
	return true
}

// Pending returns the number of processes waiting on the signal.
func (s *Signal) Pending() int { return len(s.waiters) }

// eventHeap orders events by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
