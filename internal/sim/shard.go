package sim

import (
	"fmt"
	"sort"
	"time"
)

// ShardSet coordinates several kernels simulating disjoint partitions
// ("shards") of one model under a shared clock. It supports two execution
// modes, chosen by which run method is called:
//
//   - Run (merged): the coordinator repeatedly fires the globally earliest
//     event across all shards, one at a time. The kernels share a clock and
//     one (time, seq) sequence space, so the total event order — and
//     therefore every side effect, tie-break and trace byte — is identical
//     to running the whole model on a single kernel. Shards may interact
//     arbitrarily (zero-latency cross-shard reads included) because
//     execution is sequential. This is the deterministic merge path.
//
//   - RunWindows (windowed): shards advance concurrently, each on its own
//     goroutine, through conservative lookahead windows [T, T+lookahead)
//     where T is the globally earliest pending event time. Cross-shard
//     interaction must go through Send with a delay of at least the
//     lookahead, which guarantees every message lands at or after the
//     window end; deliveries are merged at the window barrier in
//     (time, source shard, source seq) order, so runs are exactly
//     reproducible. Not byte-identical to serial in general: same-instant
//     events on different shards fire in shard order rather than global
//     creation order.
//
// A ShardSet is constructed in the merged configuration (shared clock and
// sequence space); RunWindows splits the shared state into per-kernel
// copies before the first window. Construction-time model building is
// sequential either way, so everything scheduled before the run is
// identically ordered in both modes.
type ShardSet struct {
	kernels   []*Kernel
	lookahead time.Duration

	// windowed flips when RunWindows takes over; Send requires it.
	windowed bool
	// outbox and outseq hold cross-shard messages emitted during the
	// current window, per source shard; drained at every barrier.
	outbox [][]xmsg
	outseq []uint64
	// windowEnd is the current window horizon — the earliest instant a
	// cross-shard message may arrive.
	windowEnd time.Duration
	running   bool
}

// xmsg is a cross-shard message in flight: fn runs on kernel dst at time at.
// seq is the source shard's emission counter, the final tie-breaker of the
// deterministic merge order (time, source shard, source seq).
type xmsg struct {
	at  time.Duration
	seq uint64
	dst int
	fn  func()
}

// NewShardSet returns n kernels under one coordinator, sharing a clock and
// sequence space until (and unless) RunWindows splits them. lookahead is the
// windowed-mode horizon length and must be at least the minimum cross-shard
// latency of the model — every Send must cover it; pass any positive bound
// if only Run (merged mode) will be used.
func NewShardSet(n int, lookahead time.Duration) *ShardSet {
	if n < 1 {
		panic(fmt.Sprintf("sim: shard set needs at least one kernel, got %d", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive shard lookahead %v", lookahead))
	}
	st := &kstate{}
	main := make(chan struct{}, 1)
	ss := &ShardSet{
		kernels:   make([]*Kernel, n),
		lookahead: lookahead,
		outbox:    make([][]xmsg, n),
		outseq:    make([]uint64, n),
	}
	for i := range ss.kernels {
		k := NewKernel()
		k.st = st
		k.main = main
		k.stepped = true
		ss.kernels[i] = k
	}
	return ss
}

// Shard returns the i'th kernel. Model construction schedules node-local
// work directly on its owning shard's kernel.
func (ss *ShardSet) Shard(i int) *Kernel { return ss.kernels[i] }

// Shards returns the number of kernels in the set.
func (ss *ShardSet) Shards() int { return len(ss.kernels) }

// Lookahead returns the windowed-mode horizon length.
func (ss *ShardSet) Lookahead() time.Duration { return ss.lookahead }

// Stop makes the active run method return after the currently firing event
// (merged) or the current window (windowed) completes.
func (ss *ShardSet) Stop() {
	for _, k := range ss.kernels {
		k.stopped = true
	}
}

// FiredEvents returns the total number of events fired across all shards.
func (ss *ShardSet) FiredEvents() uint64 {
	var n uint64
	for _, k := range ss.kernels {
		n += k.fired
	}
	return n
}

// Run advances the set in merged mode: fire the globally earliest event,
// one at a time, until every shard drains or Stop is called, then kill
// still-parked processes across all shards in global creation order —
// exactly what a single kernel's Run would do with the union of the queues.
func (ss *ShardSet) Run() {
	if ss.running {
		panic("sim: ShardSet.Run called re-entrantly")
	}
	ss.running = true
	defer func() { ss.running = false }()
	for !ss.kernels[0].stopped {
		var best *Kernel
		var be *event
		for _, k := range ss.kernels {
			if e := k.peekLive(); e != nil && (be == nil || eventLess(e, be)) {
				be, best = e, k
			}
		}
		if be == nil {
			break
		}
		best.ProcessNextEvent()
	}
	ss.mergedShutdown()
}

// mergedShutdown kills all still-parked processes across the set in global
// creation order — the shared procSeq makes the order identical to a single
// kernel's shutdown.
func (ss *ShardSet) mergedShutdown() {
	var parked []*Proc
	for _, k := range ss.kernels {
		for p := range k.procs {
			parked = append(parked, p)
		}
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].seq < parked[j].seq })
	for _, p := range parked {
		p.kill = true
		p.resume <- struct{}{}
		// The killed process unwinds and hands the baton back on the
		// shared main channel.
		<-p.k.main
	}
	for _, k := range ss.kernels {
		k.reset()
	}
}

// reset drops the queue and free list after a run.
func (k *Kernel) reset() {
	k.events = nil
	k.free = nil
	k.dead = 0
	k.ring = nil
	k.ringHead = 0
	k.ringDead = 0
}

// split converts the set from the shared (merged) configuration to
// independent per-shard kernels for windowed execution: each kernel gets
// its own copy of the shared counters (still monotone — determinism within
// a shard is preserved), its own baton-home channel, and leaves stepped
// mode so RunUntil can dispatch at full speed.
func (ss *ShardSet) split() {
	shared := ss.kernels[0].st
	for _, k := range ss.kernels {
		st := *shared
		k.st = &st
		k.main = make(chan struct{}, 1)
		k.stepped = false
	}
}

// Send schedules fn to run on shard dst at the sending shard's now + d. It
// is the only legal cross-shard interaction in windowed mode and must be
// called from shard from's context (inside its window). d must cover the
// lookahead — that is what makes the window conservative: the message
// cannot land inside any shard's current window. Delivery happens at the
// next barrier, merged across sources in (time, source shard, source seq)
// order.
func (ss *ShardSet) Send(from, dst int, d time.Duration, fn func()) {
	if !ss.windowed {
		panic("sim: ShardSet.Send outside a windowed run; schedule directly in merged mode")
	}
	if d < ss.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send delay %v below lookahead %v", d, ss.lookahead))
	}
	at := ss.kernels[from].st.now + d
	if at < ss.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard send arriving at %v inside the current window (end %v)", at, ss.windowEnd))
	}
	ss.outbox[from] = append(ss.outbox[from], xmsg{at: at, seq: ss.outseq[from], dst: dst, fn: fn})
	ss.outseq[from]++
}

// deliver drains every shard's outbox into the target kernels, in
// (time, source shard, source seq) order so target-side sequence numbers —
// and therefore all downstream tie-breaks — are a pure function of the
// virtual timeline. Called between windows, when no shard is running.
func (ss *ShardSet) deliver() {
	var msgs []xmsg
	for src, box := range ss.outbox {
		if len(box) == 0 {
			continue
		}
		if msgs == nil {
			// Tag entries with their source shard via a stable merge:
			// sort.SliceStable keeps equal-at entries in append order,
			// which is (source shard, source seq) because outboxes are
			// appended in shard order and each is already seq-ordered.
			msgs = make([]xmsg, 0, len(box))
		}
		msgs = append(msgs, box...)
		ss.outbox[src] = box[:0]
	}
	if len(msgs) == 0 {
		return
	}
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].at < msgs[j].at })
	for _, m := range msgs {
		ss.kernels[m.dst].At(m.at, m.fn)
	}
}

// RunWindows advances the set in windowed mode until every shard drains and
// no cross-shard message is in flight, or Stop is called, then shuts the
// shards down one by one in shard order. See the type comment for the
// execution model.
func (ss *ShardSet) RunWindows() {
	if ss.running {
		panic("sim: ShardSet.RunWindows called re-entrantly")
	}
	ss.running = true
	ss.windowed = true
	defer func() { ss.running = false }()
	ss.split()
	n := len(ss.kernels)
	done := make(chan struct{}, n)
	for !ss.kernels[0].stopped {
		ss.deliver()
		// Next window starts at the globally earliest pending event.
		var start time.Duration
		found := false
		for _, k := range ss.kernels {
			if t, ok := k.PeekNextEventTime(); ok && (!found || t < start) {
				start, found = t, true
			}
		}
		if !found {
			break
		}
		end := start + ss.lookahead
		ss.windowEnd = end
		// Wake only the shards with work inside the window. A single
		// active shard runs inline on the coordinator goroutine — the
		// common case during quiet driver-only stretches — to skip the
		// handoff cost.
		var active []*Kernel
		for _, k := range ss.kernels {
			if t, ok := k.PeekNextEventTime(); ok && t < end {
				active = append(active, k)
			}
		}
		if len(active) == 1 {
			active[0].RunUntil(end)
			continue
		}
		for _, k := range active[1:] {
			go func(k *Kernel) {
				k.RunUntil(end)
				done <- struct{}{}
			}(k)
		}
		active[0].RunUntil(end)
		for range active[1:] {
			<-done
		}
	}
	for _, k := range ss.kernels {
		k.shutdown()
	}
}
