package conf

import (
	"strings"
	"testing"
)

// TestTable1Counts pins the catalogue to the paper's Table 1.
func TestTable1Counts(t *testing.T) {
	r := New()
	want := map[Category]int{
		Shuffle:      19,
		Compression:  16,
		Memory:       14,
		Execution:    14,
		Network:      13,
		Scheduling:   32,
		DynamicAlloc: 9,
	}
	got := r.CountByCategory()
	for c, n := range want {
		if got[c] != n {
			t.Errorf("%s: %d parameters, want %d", c, got[c], n)
		}
	}
	if r.Len() != 117 {
		t.Errorf("total = %d, want 117", r.Len())
	}
}

func TestUniqueKeysAndDocs(t *testing.T) {
	r := New()
	for _, k := range r.Keys() {
		par, ok := r.Lookup(k)
		if !ok {
			t.Fatalf("Keys returned unknown key %q", k)
		}
		if par.Doc == "" {
			t.Errorf("%s has no doc", k)
		}
		if par.Category == "" {
			t.Errorf("%s has no category", k)
		}
	}
	if len(r.Keys()) != r.Len() {
		t.Fatal("duplicate keys collapsed")
	}
}

func TestSetGet(t *testing.T) {
	r := New()
	if err := r.Set("executor.threads", "8"); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get("executor.threads")
	if err != nil || v != "8" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	// Default comes through without override.
	v, err = r.Get("executor.cores")
	if err != nil || v != "32" {
		t.Fatalf("default Get = %q, %v", v, err)
	}
}

func TestUnknownKeyRejected(t *testing.T) {
	r := New()
	if err := r.Set("no.such.key", "1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := r.Get("no.such.key"); err == nil {
		t.Fatal("unknown key read")
	}
}

func TestGetIntBool(t *testing.T) {
	r := New()
	n, err := r.GetInt("executor.cores")
	if err != nil || n != 32 {
		t.Fatalf("GetInt = %d, %v", n, err)
	}
	b, err := r.GetBool("shuffle.compress")
	if err != nil || !b {
		t.Fatalf("GetBool = %v, %v", b, err)
	}
	if _, err := r.GetInt("scheduler.mode"); err == nil {
		t.Fatal("non-integer parsed as int")
	}
}

func TestWiredParameters(t *testing.T) {
	r := New()
	wiredKeys := []string{
		"executor.threads", "executor.cores", "files.maxPartitionBytes",
		"shuffle.file.buffer", "executor.taskOverheadMillis",
	}
	for _, k := range wiredKeys {
		par, ok := r.Lookup(k)
		if !ok || !par.Wired {
			t.Errorf("%s should exist and be wired", k)
		}
	}
}

func TestInCategorySorted(t *testing.T) {
	r := New()
	ps := r.InCategory(Scheduling)
	if len(ps) != 32 {
		t.Fatalf("scheduling = %d params", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Key >= ps[i].Key {
			t.Fatal("not sorted")
		}
	}
}

func TestParseFlag(t *testing.T) {
	k, v, err := ParseFlag("executor.threads=4")
	if err != nil || k != "executor.threads" || v != "4" {
		t.Fatalf("ParseFlag = %q %q %v", k, v, err)
	}
	for _, bad := range []string{"", "novalue", "=x"} {
		if _, _, err := ParseFlag(bad); err == nil {
			t.Errorf("ParseFlag(%q) accepted", bad)
		}
	}
	// value containing '=' keeps the remainder intact
	_, v, err = ParseFlag("a=b=c")
	if err != nil || v != "b=c" {
		t.Fatalf("ParseFlag split wrong: %q %v", v, err)
	}
	if !strings.Contains(v, "=") {
		t.Fatal("lost remainder")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"64": 64, "32k": 32 << 10, "128m": 128 << 20, "2g": 2 << 30, "48M": 48 << 20,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "12q3m"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

func TestGetFloatAndBytes(t *testing.T) {
	r := New()
	f, err := r.GetFloat("speculation.quantile")
	if err != nil || f != 0.75 {
		t.Fatalf("GetFloat = %v, %v", f, err)
	}
	b, err := r.GetBytes("shuffle.file.buffer")
	if err != nil || b != 32<<20 {
		t.Fatalf("GetBytes = %v, %v", b, err)
	}
}
