// Package conf catalogues the engine's functional configuration surface in
// the style of Apache Spark 2.4, whose 117 functional parameters the paper
// counts in Table 1 to motivate self-tuning. Parameters are grouped into
// the paper's seven categories; a few are genuinely wired into the engine
// (marked Wired), the rest document the configuration surface a drop-in
// executor replacement must coexist with.
package conf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Category is a Table 1 parameter group.
type Category string

// The paper's Table 1 categories.
const (
	Shuffle      Category = "Shuffle"
	Compression  Category = "Compression and Serialization"
	Memory       Category = "Memory Management"
	Execution    Category = "Execution Behavior"
	Network      Category = "Network"
	Scheduling   Category = "Scheduling"
	DynamicAlloc Category = "Dynamic Allocation"
)

// Categories lists all categories in Table 1 order.
func Categories() []Category {
	return []Category{Shuffle, Compression, Memory, Execution, Network, Scheduling, DynamicAlloc}
}

// Parameter is one functional configuration parameter.
type Parameter struct {
	Key      string
	Category Category
	Default  string
	Doc      string
	// Wired marks parameters the simulation engine actually honours.
	Wired bool
}

// Registry is the full parameter catalogue with override values.
type Registry struct {
	params map[string]Parameter
	values map[string]string
}

// New returns a registry populated with the full catalogue.
func New() *Registry {
	r := &Registry{params: make(map[string]Parameter), values: make(map[string]string)}
	for _, p := range catalogue {
		if _, dup := r.params[p.Key]; dup {
			panic(fmt.Sprintf("conf: duplicate parameter %s", p.Key))
		}
		r.params[p.Key] = p
	}
	return r
}

// Lookup returns the parameter's definition.
func (r *Registry) Lookup(key string) (Parameter, bool) {
	p, ok := r.params[key]
	return p, ok
}

// Set overrides a parameter value. Unknown keys are an error, as in Spark's
// strict configuration validation.
func (r *Registry) Set(key, value string) error {
	if _, ok := r.params[key]; !ok {
		return fmt.Errorf("conf: unknown parameter %q", key)
	}
	r.values[key] = value
	return nil
}

// Get returns the effective value (override or default).
func (r *Registry) Get(key string) (string, error) {
	p, ok := r.params[key]
	if !ok {
		return "", fmt.Errorf("conf: unknown parameter %q", key)
	}
	if v, ok := r.values[key]; ok {
		return v, nil
	}
	return p.Default, nil
}

// GetInt returns the effective value parsed as an integer.
func (r *Registry) GetInt(key string) (int, error) {
	v, err := r.Get(key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("conf: %s = %q is not an integer: %w", key, v, err)
	}
	return n, nil
}

// GetBool returns the effective value parsed as a boolean.
func (r *Registry) GetBool(key string) (bool, error) {
	v, err := r.Get(key)
	if err != nil {
		return false, err
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("conf: %s = %q is not a boolean: %w", key, v, err)
	}
	return b, nil
}

// Keys returns all parameter keys, sorted.
func (r *Registry) Keys() []string {
	keys := make([]string, 0, len(r.params))
	for k := range r.params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the total number of functional parameters (Table 1: 117).
func (r *Registry) Len() int { return len(r.params) }

// CountByCategory returns the Table 1 per-category parameter counts.
func (r *Registry) CountByCategory() map[Category]int {
	out := make(map[Category]int)
	for _, p := range r.params {
		out[p.Category]++
	}
	return out
}

// InCategory returns the parameters of one category, sorted by key.
func (r *Registry) InCategory(c Category) []Parameter {
	var out []Parameter
	for _, p := range r.params {
		if p.Category == c {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ParseFlag parses a "key=value" assignment.
func ParseFlag(s string) (key, value string, err error) {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return "", "", fmt.Errorf("conf: malformed assignment %q, want key=value", s)
	}
	return k, v, nil
}

func p(key string, cat Category, def, doc string) Parameter {
	return Parameter{Key: key, Category: cat, Default: def, Doc: doc}
}

func wired(key string, cat Category, def, doc string) Parameter {
	return Parameter{Key: key, Category: cat, Default: def, Doc: doc, Wired: true}
}

// GetFloat returns the effective value parsed as a float.
func (r *Registry) GetFloat(key string) (float64, error) {
	v, err := r.Get(key)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("conf: %s = %q is not a number: %w", key, v, err)
	}
	return f, nil
}

// GetDuration returns the effective value parsed as a Go duration
// ("10s", "2m"), as Spark time properties.
func (r *Registry) GetDuration(key string) (time.Duration, error) {
	v, err := r.Get(key)
	if err != nil {
		return 0, err
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("conf: %s = %q is not a duration: %w", key, v, err)
	}
	return d, nil
}

// GetBytes returns the effective value parsed as a byte size with an
// optional k/m/g suffix (KiB/MiB/GiB), as Spark size properties.
func (r *Registry) GetBytes(key string) (int64, error) {
	v, err := r.Get(key)
	if err != nil {
		return 0, err
	}
	return ParseBytes(v)
}

// ParseBytes parses "64", "32k", "128m" or "2g" into bytes.
func ParseBytes(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("conf: empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("conf: bad size %q: %w", s, err)
	}
	return n * mult, nil
}

// IsSet reports whether the key has an explicit override.
func (r *Registry) IsSet(key string) bool {
	_, ok := r.values[key]
	return ok
}
