package device

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"sae/internal/sim"
)

func TestHDDCurvePeaksAtFewStreams(t *testing.T) {
	c := HDD7200().Curve(1)
	// Fig. 12a shape: rises from 2 to 4 streams (NCQ), then collapses.
	if c(4) <= c(2) {
		t.Fatalf("B(4)=%v should exceed B(2)=%v", c(4), c(2))
	}
	if c(32) >= c(8) {
		t.Fatalf("B(32)=%v should be below B(8)=%v", c(32), c(8))
	}
	// The NCQ rise must be steep (paper: 150→220 MB/s).
	if ratio := c(4) / c(2); ratio < 1.40 {
		t.Fatalf("B(4)/B(2) = %v, want ≥ 1.40", ratio)
	}
	// The collapse past the peak should reach ~50% at 32 streams.
	peak, at := HDD7200().Peak()
	if at != 4 {
		t.Fatalf("HDD peak at %d streams, want 4", at)
	}
	if ratio := c(32) / peak; ratio > 0.65 || ratio < 0.35 {
		t.Fatalf("B(32)/peak = %v, want within [0.35, 0.65]", ratio)
	}
	// Extrapolation beyond the table keeps collapsing.
	if c(1024) >= c(512) {
		t.Fatalf("extrapolated B(1024)=%v should fall below B(512)=%v", c(1024), c(512))
	}
}

func TestSSDCurveFlat(t *testing.T) {
	c := SSDSata().Curve(1)
	ratio := c(32) / c(4)
	if ratio < 0.90 {
		t.Fatalf("SSD bandwidth should be near-flat: B(32)/B(4) = %v", ratio)
	}
}

func TestCurveInterpolation(t *testing.T) {
	spec := HDD7200()
	// Between levels the curve must stay between the bracketing points.
	b2, b4 := spec.At(2), spec.At(4)
	b3 := spec.At(3)
	lo, hi := math.Min(b2, b4), math.Max(b2, b4)
	if b3 < lo || b3 > hi {
		t.Fatalf("At(3)=%v outside [%v,%v]", b3, lo, hi)
	}
	if spec.At(0) != spec.At(1) {
		t.Fatal("At(0) should clamp to At(1)")
	}
}

func TestOverloadSemantics(t *testing.T) {
	spec := HDD7200()
	for n := 1; n <= 4; n++ {
		if ov := spec.Overload(n); ov != 0 {
			t.Fatalf("Overload(%d) = %v, want 0 at/below best operating point", n, ov)
		}
	}
	o8, o16, o32 := spec.Overload(8), spec.Overload(16), spec.Overload(32)
	if !(o8 > 0 && o16 > o8 && o32 > o16) {
		t.Fatalf("overload must rise past the peak: %v %v %v", o8, o16, o32)
	}
	if o32 >= 1 {
		t.Fatalf("overload must stay below 1: %v", o32)
	}
	// SSD: barely contended at every realistic thread count.
	ssd := SSDSata()
	if ov := ssd.Overload(32); ov > 0.06 {
		t.Fatalf("SSD Overload(32) = %v, want ≈0", ov)
	}
	if hdd, sd := spec.Overload(32), ssd.Overload(32); sd >= hdd/3 {
		t.Fatalf("SSD overload (%v) should be far below HDD (%v)", sd, hdd)
	}
}

func TestSSDFasterThanHDDEverywhere(t *testing.T) {
	h, s := HDD7200().Curve(1), SSDSata().Curve(1)
	for n := 1; n <= 32; n++ {
		if s(n) <= h(n) {
			t.Fatalf("SSD slower than HDD at n=%d: %v vs %v", n, s(n), h(n))
		}
	}
}

func TestDiskReadWriteCounters(t *testing.T) {
	k := sim.NewKernel()
	d := NewDisk(k, HDD7200(), 1, nil)
	k.Go("io", func(p *sim.Proc) {
		d.Read(p, 10*MiB)
		d.Write(p, 5*MiB)
	})
	k.Run()
	r, w := d.Counters()
	if r != 10*MiB || w != 5*MiB {
		t.Fatalf("counters = %d/%d", r, w)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	read := func() time.Duration {
		k := sim.NewKernel()
		d := NewDisk(k, HDD7200(), 1, nil)
		k.Go("io", func(p *sim.Proc) { d.Read(p, GiB) })
		k.Run()
		return k.Now()
	}()
	write := func() time.Duration {
		k := sim.NewKernel()
		d := NewDisk(k, HDD7200(), 1, nil)
		k.Go("io", func(p *sim.Proc) { d.Write(p, GiB) })
		k.Run()
		return k.Now()
	}()
	if write <= read {
		t.Fatalf("write %v should be slower than read %v", write, read)
	}
}

func TestSlowNodeFactor(t *testing.T) {
	run := func(factor float64) time.Duration {
		k := sim.NewKernel()
		d := NewDisk(k, HDD7200(), factor, nil)
		k.Go("io", func(p *sim.Proc) { d.Read(p, GiB) })
		k.Run()
		return k.Now()
	}
	fast, slow := run(1.0), run(0.5)
	if math.Abs(float64(slow)/float64(fast)-2.0) > 1e-6 {
		t.Fatalf("half-speed disk should take 2x: %v vs %v", slow, fast)
	}
}

func TestCPUCapacitySMT(t *testing.T) {
	spec := DAS5CPU()
	if got := spec.Capacity(8); got != 8 {
		t.Fatalf("Capacity(8) = %v, want 8", got)
	}
	if got := spec.Capacity(16); got != 16 {
		t.Fatalf("Capacity(16) = %v, want 16", got)
	}
	want := 16 + 16*0.3
	if got := spec.Capacity(32); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Capacity(32) = %v, want %v", got, want)
	}
	if got := spec.Capacity(64); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Capacity(64) = %v, want %v (capped at virtual cores)", got, want)
	}
}

func TestCPUComputeSharing(t *testing.T) {
	// 16 physical cores: 16 threads of 2s each all run at full speed.
	k := sim.NewKernel()
	c := NewCPU(k, DAS5CPU(), nil)
	var last time.Duration
	for i := 0; i < 16; i++ {
		k.Go("w", func(p *sim.Proc) {
			c.Compute(p, 2)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	k.Run()
	if math.Abs(last.Seconds()-2.0) > 1e-6 {
		t.Fatalf("16 threads on 16 cores took %v, want 2s", last)
	}
}

func TestCPUSMTSlowdown(t *testing.T) {
	// 32 threads of 1 core-second each on 16+SMT cores: capacity 20.8,
	// each thread gets 0.65 cores → 1/0.65 ≈ 1.538s.
	k := sim.NewKernel()
	c := NewCPU(k, DAS5CPU(), nil)
	var last time.Duration
	for i := 0; i < 32; i++ {
		k.Go("w", func(p *sim.Proc) {
			c.Compute(p, 1)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	k.Run()
	want := 32.0 / DAS5CPU().Capacity(32)
	if math.Abs(last.Seconds()-want) > 1e-6 {
		t.Fatalf("32 SMT threads took %v, want %vs", last, want)
	}
}

func TestNICTransfer(t *testing.T) {
	k := sim.NewKernel()
	n := NewNIC(k, "eth0", 1000)
	k.Go("a", func(p *sim.Proc) { n.Transfer(p, 500) })
	k.Run()
	if math.Abs(k.Now().Seconds()-0.5) > 1e-6 {
		t.Fatalf("transfer took %v, want 0.5s", k.Now())
	}
	if n.BytesMoved() != 500 {
		t.Fatalf("moved %d", n.BytesMoved())
	}
}

func TestVariabilityDeterministic(t *testing.T) {
	v := DefaultVariability(42)
	for i := 0; i < 10; i++ {
		if v.Factor(i) != v.Factor(i) {
			t.Fatal("factor not deterministic")
		}
	}
	w := DefaultVariability(43)
	same := true
	for i := 0; i < 10; i++ {
		if v.Factor(i) != w.Factor(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical factors")
	}
}

func TestVariabilityShape(t *testing.T) {
	v := DefaultVariability(1)
	n := 500
	var slow int
	var sum float64
	for i := 0; i < n; i++ {
		f := v.Factor(i)
		if f <= 0 {
			t.Fatalf("factor %v <= 0", f)
		}
		if f < 0.6 {
			slow++
		}
		sum += f
	}
	mean := sum / float64(n)
	if mean < 0.85 || mean > 1.1 {
		t.Fatalf("mean factor = %v, want ≈1", mean)
	}
	frac := float64(slow) / float64(n)
	if frac < 0.02 || frac > 0.15 {
		t.Fatalf("straggler fraction = %v, want ≈0.07", frac)
	}
}

func TestUniformVariability(t *testing.T) {
	v := Uniform()
	for i := 0; i < 50; i++ {
		if v.Factor(i) != 1 {
			t.Fatalf("uniform factor(%d) = %v", i, v.Factor(i))
		}
	}
}

// Property: all disk curves are positive and finite for 1..64 streams.
func TestCurvePositiveProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		streams := int(n%64) + 1
		for _, spec := range []DiskSpec{HDD7200(), SSDSata()} {
			factor := DefaultVariability(seed).Factor(int(n))
			b := spec.Curve(factor)(streams)
			if b <= 0 || math.IsInf(b, 0) || math.IsNaN(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
