// Package device provides calibrated models of the hardware the paper's
// evaluation runs on: rotational disks whose aggregate bandwidth collapses
// under concurrent streams (seek thrash), SSDs with flat random-access
// throughput and a write-amplification penalty, network interfaces, and
// SMT CPUs. Each device wraps a processor-sharing server (psres) so
// contention behaviour emerges from the concurrency→bandwidth curve rather
// than being scripted.
package device

import (
	"fmt"
	"math"
	"time"

	"sae/internal/psres"
	"sae/internal/sim"
)

// MiB and friends express byte quantities in device specs.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// DiskSpec describes a storage device's concurrency behaviour as a measured
// bandwidth profile: aggregate bandwidth at power-of-two concurrent stream
// counts, interpolated log-linearly in between and extrapolated beyond the
// last point along the final segment's log-log slope.
//
// The HDD profile is calibrated against the per-executor I/O throughput the
// paper measures at 2–32 threads (Fig. 12a): a 7'200 rpm drive under NCQ
// peaks at a handful of concurrent streams (command queuing amortizes head
// movement) and collapses as further streams force seek thrash. The SSD
// profile (Fig. 12b) is essentially flat once its channel parallelism is
// covered.
type DiskSpec struct {
	Name string
	// Levels are strictly increasing stream counts, starting at 1.
	Levels []int
	// Bandwidth[i] is the aggregate bandwidth (bytes/s) at Levels[i].
	Bandwidth []float64
	// WriteWeight is the service weight of write streams relative to
	// reads (<1 means writes are slower byte-for-byte).
	WriteWeight float64
}

// At returns the aggregate bandwidth with n concurrent streams.
func (ds DiskSpec) At(n int) float64 {
	if n < 1 {
		n = 1
	}
	lv, bw := ds.Levels, ds.Bandwidth
	if len(lv) == 0 || len(lv) != len(bw) {
		panic(fmt.Sprintf("device %s: malformed bandwidth profile", ds.Name))
	}
	if n <= lv[0] {
		return bw[0]
	}
	for i := 1; i < len(lv); i++ {
		if n <= lv[i] {
			// Log-linear interpolation in the stream count.
			t := (math.Log(float64(n)) - math.Log(float64(lv[i-1]))) /
				(math.Log(float64(lv[i])) - math.Log(float64(lv[i-1])))
			return bw[i-1] * math.Pow(bw[i]/bw[i-1], t)
		}
	}
	// Extrapolate along the last segment's log-log slope.
	k := len(lv) - 1
	slope := math.Log(bw[k]/bw[k-1]) / math.Log(float64(lv[k])/float64(lv[k-1]))
	return bw[k] * math.Pow(float64(n)/float64(lv[k]), slope)
}

// Peak returns the profile's maximum aggregate bandwidth and the stream
// count achieving it — the device's best operating point.
func (ds DiskSpec) Peak() (bandwidth float64, streams int) {
	for i, b := range ds.Bandwidth {
		if b > bandwidth {
			bandwidth, streams = b, ds.Levels[i]
		}
	}
	return bandwidth, streams
}

// Overload returns the contention factor at n streams: 0 while the device
// is at or below its best operating point, rising toward 1 as aggregate
// bandwidth collapses. The monitor multiplies I/O service time by this
// factor to obtain ε: readahead and command queuing hide device service
// time from applications until the device is past saturation, so blocked
// time is the *contention-induced* share of the wait.
func (ds DiskSpec) Overload(n int) float64 {
	peak, at := ds.Peak()
	if n <= at {
		return 0
	}
	ov := 1 - ds.At(n)/peak
	if ov < 0 {
		return 0
	}
	return ov
}

// Curve returns the aggregate bandwidth curve for the spec scaled by factor.
func (ds DiskSpec) Curve(factor float64) psres.Curve {
	return func(n int) float64 { return factor * ds.At(n) }
}

// HDD7200 models the paper's 7'200 rpm SATA drives, calibrated to the
// per-executor throughput plateaus of Fig. 12a: ≈150 MB/s with 2 streams,
// peaking ≈220 MB/s at 4, collapsing to ≈110 MB/s at 32 and further under
// shuffle fan-in.
func HDD7200() DiskSpec {
	return DiskSpec{
		Name: "hdd-7200rpm",
		Levels: []int{
			1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
		},
		Bandwidth: []float64{
			120 * MiB, 150 * MiB, 220 * MiB, 185 * MiB, 142 * MiB,
			110 * MiB, 68 * MiB, 44 * MiB, 30 * MiB, 20 * MiB,
		},
		WriteWeight: 0.85,
	}
}

// SSDSata models the SATA SSDs of §6.3 (Fig. 12b): uniform random-access
// latency, aggregate read bandwidth flat in the stream count once the
// channels are covered; writes pay an erase-block penalty via WriteWeight.
func SSDSata() DiskSpec {
	return DiskSpec{
		Name: "ssd-sata",
		Levels: []int{
			1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
		},
		Bandwidth: []float64{
			390 * MiB, 440 * MiB, 490 * MiB, 515 * MiB, 520 * MiB,
			500 * MiB, 458 * MiB, 415 * MiB, 372 * MiB, 330 * MiB,
		},
		WriteWeight: 0.62,
	}
}

// Disk is a storage device instance attached to one node.
type Disk struct {
	spec   DiskSpec
	server *psres.Server

	bytesRead    int64
	bytesWritten int64
}

// NewDisk creates a disk on kernel k. factor scales bandwidth for per-node
// variability (1 = nominal). onActive, if non-nil, observes the active
// stream count (used by the node iowait meter).
func NewDisk(k *sim.Kernel, spec DiskSpec, factor float64, onActive func(int)) *Disk {
	if factor <= 0 {
		panic(fmt.Sprintf("device: non-positive disk speed factor %v", factor))
	}
	d := &Disk{spec: spec}
	d.server = psres.NewServer(k, psres.Config{
		Name:           spec.Name,
		Curve:          spec.Curve(factor),
		OnActiveChange: onActive,
	})
	return d
}

// Spec returns the device spec.
func (d *Disk) Spec() DiskSpec { return d.spec }

// Read blocks p until bytes have been read from the device.
func (d *Disk) Read(p *sim.Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	d.bytesRead += bytes
	d.server.Serve(p, float64(bytes), 1)
}

// Write blocks p until bytes have been written to the device.
func (d *Disk) Write(p *sim.Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	d.bytesWritten += bytes
	d.server.Serve(p, float64(bytes), d.spec.WriteWeight)
}

// SetThrottle degrades the disk to 1/factor of its nominal service rate
// (factor 1 restores nominal). In-flight I/O is re-planned from the current
// instant — the gray-failure hook for a degrading drive.
func (d *Disk) SetThrottle(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("device %s: non-positive throttle factor %v", d.spec.Name, factor))
	}
	d.server.SetRateScale(1 / factor)
}

// Counters returns cumulative raw bytes read and written.
func (d *Disk) Counters() (read, written int64) { return d.bytesRead, d.bytesWritten }

// OverloadAhead returns the contention factor an additional stream would
// experience if it were issued now (see DiskSpec.Overload).
func (d *Disk) OverloadAhead() float64 {
	return d.spec.Overload(d.server.Active() + 1)
}

// Snapshot returns the underlying server statistics (busy time etc.).
func (d *Disk) Snapshot() psres.Stats { return d.server.Snapshot() }

// Active returns the number of in-flight I/O streams.
func (d *Disk) Active() int { return d.server.Active() }

// NIC models a full-duplex network interface as a single shared link of
// fixed bandwidth (the paper's cluster uses FDR InfiniBand / 10G Ethernet;
// the network is never the bottleneck in these workloads, only an additive
// cost on shuffle and remote reads).
type NIC struct {
	server     *psres.Server
	bytesMoved int64
}

// NewNIC creates a NIC with the given link bandwidth in bytes/second.
func NewNIC(k *sim.Kernel, name string, bandwidth float64) *NIC {
	n := &NIC{}
	n.server = psres.NewServer(k, psres.Config{
		Name:  name,
		Curve: psres.Flat(bandwidth),
	})
	return n
}

// Transfer blocks p until bytes have crossed the link.
func (n *NIC) Transfer(p *sim.Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	n.bytesMoved += bytes
	n.server.Serve(p, float64(bytes), 1)
}

// BytesMoved returns cumulative bytes transferred.
func (n *NIC) BytesMoved() int64 { return n.bytesMoved }

// Snapshot returns the underlying server statistics.
func (n *NIC) Snapshot() psres.Stats { return n.server.Snapshot() }

// CPUSpec describes a simultaneous-multithreading CPU: PhysicalCores real
// cores exposed as 2× virtual cores, where the second hardware thread of a
// busy core contributes only SMTYield extra throughput (the paper's nodes:
// 16 physical, 32 virtual).
type CPUSpec struct {
	PhysicalCores int
	VirtualCores  int
	// SMTYield is the fractional extra throughput of the second hardware
	// thread (0.3 ≈ typical for Xeon-era SMT).
	SMTYield float64
}

// DAS5CPU returns the paper's node CPU configuration.
func DAS5CPU() CPUSpec {
	return CPUSpec{PhysicalCores: 16, VirtualCores: 32, SMTYield: 0.3}
}

// Capacity returns the effective core capacity with n runnable threads.
func (c CPUSpec) Capacity(n int) float64 {
	p := float64(c.PhysicalCores)
	fn := float64(n)
	if fn <= p {
		return fn
	}
	extra := math.Min(fn, float64(c.VirtualCores)) - p
	return p + extra*c.SMTYield
}

// CPU is a shared compute device measured in core-seconds.
type CPU struct {
	spec   CPUSpec
	server *psres.Server
}

// NewCPU creates a CPU device. onActive observes the runnable thread count.
func NewCPU(k *sim.Kernel, spec CPUSpec, onActive func(int)) *CPU {
	if spec.VirtualCores <= 0 || spec.PhysicalCores <= 0 {
		panic("device: CPU spec must have positive core counts")
	}
	c := &CPU{spec: spec}
	c.server = psres.NewServer(k, psres.Config{
		Name:           "cpu",
		Curve:          func(n int) float64 { return spec.Capacity(n) },
		PerStreamCap:   1,
		OnActiveChange: onActive,
	})
	return c
}

// Spec returns the CPU spec.
func (c *CPU) Spec() CPUSpec { return c.spec }

// Compute blocks p until seconds of single-core work have been executed,
// sharing capacity with all other runnable threads.
func (c *CPU) Compute(p *sim.Proc, seconds float64) {
	if seconds <= 0 {
		return
	}
	c.server.Serve(p, seconds, 1)
}

// SetThrottle degrades the CPU to 1/factor of its nominal capacity (factor 1
// restores nominal) — thermal throttling or a noisy neighbour stealing
// cycles. Runnable threads are re-planned from the current instant.
func (c *CPU) SetThrottle(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("device cpu: non-positive throttle factor %v", factor))
	}
	c.server.SetRateScale(1 / factor)
}

// Snapshot returns the underlying server statistics; ActiveIntegral is busy
// core-seconds (thread-seconds, each capped at one core).
func (c *CPU) Snapshot() psres.Stats { return c.server.Snapshot() }

// Active returns the number of runnable threads.
func (c *CPU) Active() int { return c.server.Active() }

// VariabilityModel produces deterministic per-node speed factors reproducing
// the spread measured on DAS-5 (Fig. 3): most nodes within ±10% of nominal,
// with a heavy tail of slow outliers.
type VariabilityModel struct {
	// Sigma is the log-normal sigma of the common-case spread.
	Sigma float64
	// StragglerFrac is the fraction of nodes that are stragglers.
	StragglerFrac float64
	// StragglerSlowdown is the extra slowdown factor for stragglers.
	StragglerSlowdown float64
	// Seed makes the assignment deterministic.
	Seed int64
}

// DefaultVariability matches the read/write spread of Fig. 3.
func DefaultVariability(seed int64) VariabilityModel {
	return VariabilityModel{Sigma: 0.08, StragglerFrac: 0.07, StragglerSlowdown: 2.6, Seed: seed}
}

// Uniform returns a model where every node is exactly nominal.
func Uniform() VariabilityModel { return VariabilityModel{} }

// Factor returns the speed factor for node index i (deterministic in
// (Seed, i)). Factors multiply device bandwidth, so slow nodes have
// factor < 1.
func (v VariabilityModel) Factor(i int) float64 {
	if v.Sigma == 0 && v.StragglerFrac == 0 {
		return 1
	}
	// splitmix64-style hash for per-node determinism independent of
	// call order.
	h := uint64(v.Seed)*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	u1 := float64(h>>11) / float64(1<<53) // uniform (0,1)
	u2 := float64((h*0x2545f4914f6cdd1d)>>11) / float64(1<<53)
	// Box-Muller for the log-normal body.
	z := math.Sqrt(-2*math.Log(math.Max(u1, 1e-12))) * math.Cos(2*math.Pi*u2)
	f := math.Exp(-v.Sigma*v.Sigma/2 + v.Sigma*z)
	if u2 < v.StragglerFrac {
		f /= v.StragglerSlowdown
	}
	return f
}

// Span is a convenience for expressing durations in float seconds.
func Span(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}
