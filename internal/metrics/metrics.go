// Package metrics defines the measurement vocabulary of the paper's MAPE-K
// monitor: per-interval epoll-wait time (ε), I/O throughput (µ), the
// congestion index ζ = ε/µ used by the analyzer, and simple time series for
// throughput plots.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Interval aggregates the monitor's measurements over one tuning interval
// (in the paper: the completion of j tasks while the pool size is j).
type Interval struct {
	// Start and End bound the interval in virtual time.
	Start, End time.Duration
	// BlockedIO is ε: total time tasks spent blocked waiting for I/O
	// completions (the strace epoll-wait analogue).
	BlockedIO time.Duration
	// Bytes is the total data moved by tasks (disk and shuffle, read and
	// write), the numerator of µ.
	Bytes int64
	// Tasks is the number of task completions attributed to the interval.
	Tasks int
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Throughput returns µ in bytes/second. Zero-length intervals yield 0.
func (iv Interval) Throughput() float64 {
	d := iv.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(iv.Bytes) / d
}

// Congestion returns ζ = ε/µ, the paper's I/O congestion index (eq. 1).
// Intervals that moved no data have no meaningful congestion; they report 0
// so that CPU-bound stages read as uncongested.
func (iv Interval) Congestion() float64 {
	mu := iv.Throughput()
	if mu <= 0 {
		return 0
	}
	return iv.BlockedIO.Seconds() / mu
}

// Merge combines two measurement windows.
func (iv Interval) Merge(other Interval) Interval {
	out := iv
	if other.Start < out.Start || out.Tasks == 0 {
		out.Start = other.Start
	}
	if other.End > out.End {
		out.End = other.End
	}
	out.BlockedIO += other.BlockedIO
	out.Bytes += other.Bytes
	out.Tasks += other.Tasks
	return out
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%v,%v] ε=%v µ=%.1fMB/s ζ=%.4g (%d tasks)",
		iv.Start, iv.End, iv.BlockedIO, iv.Throughput()/1e6, iv.Congestion(), iv.Tasks)
}

// Quantiles returns nearest-rank quantiles of vals: for each p in ps the
// smallest element v such that at least ⌈p·n⌉ values are ≤ v (p clamped to
// (0, 1]; p = 0.5 is the lower median, p = 1 the maximum). vals is not
// modified. An empty input yields zeros — callers render "no data" rather
// than a fabricated percentile. This is the single percentile helper every
// report uses (stage task durations, per-tenant job latency, queueing
// delay), so all reported percentiles share one set of semantics.
func Quantiles(vals []time.Duration, ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(vals) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	for i, p := range ps {
		if p > 1 {
			p = 1
		}
		rank := int(math.Ceil(p * float64(n)))
		if rank < 1 {
			rank = 1
		}
		out[i] = sorted[rank-1]
	}
	return out
}

// Point is one sample of a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only time series (e.g. per-second I/O throughput).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// Mean returns the average value, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Max returns the maximum value, or 0 for an empty series.
func (s *Series) Max() float64 {
	var m float64
	for i, p := range s.Points {
		if i == 0 || p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Rate converts a series of cumulative counters into a series of per-sample
// rates (units/second). Duplicate timestamps merge last-wins before rates
// are computed: re-sampling the same instant is a correction of that
// sample (e.g. a final end-of-run capture landing on a sampler tick), not
// a zero-length interval — so the later value replaces the earlier one
// instead of being dropped silently. Samples whose timestamp goes
// backwards carry no usable interval and are discarded.
func Rate(cum Series) Series {
	merged := make([]Point, 0, len(cum.Points))
	for _, p := range cum.Points {
		switch n := len(merged); {
		case n > 0 && p.At == merged[n-1].At:
			merged[n-1].Value = p.Value
		case n > 0 && p.At < merged[n-1].At:
			// out-of-order sample: dropped
		default:
			merged = append(merged, p)
		}
	}
	out := Series{Name: cum.Name}
	for i := 1; i < len(merged); i++ {
		dt := (merged[i].At - merged[i-1].At).Seconds()
		out.Add(merged[i].At, (merged[i].Value-merged[i-1].Value)/dt)
	}
	return out
}
