package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestIntervalThroughput(t *testing.T) {
	iv := Interval{Start: 0, End: 2 * time.Second, Bytes: 100 << 20, Tasks: 4}
	if got, want := iv.Throughput(), float64(100<<20)/2; math.Abs(got-want) > 1e-6 {
		t.Fatalf("throughput = %v, want %v", got, want)
	}
}

func TestIntervalZeroDuration(t *testing.T) {
	iv := Interval{Start: time.Second, End: time.Second, Bytes: 1 << 20}
	if iv.Throughput() != 0 {
		t.Fatal("zero-duration interval should have zero throughput")
	}
	if iv.Congestion() != 0 {
		t.Fatal("zero-duration interval should have zero congestion")
	}
}

func TestCongestionFormula(t *testing.T) {
	iv := Interval{
		Start:     0,
		End:       10 * time.Second,
		BlockedIO: 5 * time.Second,
		Bytes:     200 << 20,
		Tasks:     2,
	}
	mu := iv.Throughput()
	want := 5.0 / mu
	if got := iv.Congestion(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ζ = %v, want ε/µ = %v", got, want)
	}
}

func TestCongestionNoIO(t *testing.T) {
	iv := Interval{Start: 0, End: time.Second, BlockedIO: time.Second, Bytes: 0, Tasks: 1}
	if iv.Congestion() != 0 {
		t.Fatal("no-data interval must report zero congestion")
	}
}

func TestMerge(t *testing.T) {
	a := Interval{Start: time.Second, End: 3 * time.Second, BlockedIO: time.Second, Bytes: 10, Tasks: 1}
	b := Interval{Start: 2 * time.Second, End: 5 * time.Second, BlockedIO: 2 * time.Second, Bytes: 20, Tasks: 1}
	m := a.Merge(b)
	if m.Start != time.Second || m.End != 5*time.Second {
		t.Fatalf("window = [%v,%v]", m.Start, m.End)
	}
	if m.BlockedIO != 3*time.Second || m.Bytes != 30 || m.Tasks != 2 {
		t.Fatalf("merge = %+v", m)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var acc Interval
	b := Interval{Start: 7 * time.Second, End: 9 * time.Second, Bytes: 5, Tasks: 1}
	acc = acc.Merge(b)
	if acc.Start != 7*time.Second || acc.End != 9*time.Second || acc.Tasks != 1 {
		t.Fatalf("merge into empty = %+v", acc)
	}
}

// Property: Merge is commutative in all aggregate fields.
func TestMergeCommutativeProperty(t *testing.T) {
	f := func(s1, e1, s2, e2 uint16, b1, b2 uint32) bool {
		a := Interval{Start: time.Duration(s1), End: time.Duration(s1) + time.Duration(e1), Bytes: int64(b1), Tasks: 1, BlockedIO: time.Duration(b1)}
		b := Interval{Start: time.Duration(s2), End: time.Duration(s2) + time.Duration(e2), Bytes: int64(b2), Tasks: 1, BlockedIO: time.Duration(b2)}
		ab, ba := a.Merge(b), b.Merge(a)
		return ab.Start == ba.Start && ab.End == ba.End && ab.Bytes == ba.Bytes &&
			ab.Tasks == ba.Tasks && ab.BlockedIO == ba.BlockedIO
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	got := Quantiles(nil, 0.5, 0.95, 0.99)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("q[%d] = %v, want 0 for empty input", i, v)
		}
	}
}

func TestQuantilesSingle(t *testing.T) {
	got := Quantiles([]time.Duration{7 * time.Second}, 0.01, 0.5, 0.99, 1)
	for i, v := range got {
		if v != 7*time.Second {
			t.Fatalf("q[%d] = %v, want 7s: every quantile of a singleton is its value", i, v)
		}
	}
}

func TestQuantilesDuplicates(t *testing.T) {
	vals := []time.Duration{
		3 * time.Second, 3 * time.Second, 3 * time.Second,
		3 * time.Second, 9 * time.Second,
	}
	got := Quantiles(vals, 0.5, 0.8, 0.95, 1)
	if got[0] != 3*time.Second || got[1] != 3*time.Second {
		t.Fatalf("p50/p80 = %v/%v, want 3s/3s", got[0], got[1])
	}
	if got[2] != 9*time.Second || got[3] != 9*time.Second {
		t.Fatalf("p95/max = %v/%v, want 9s/9s", got[2], got[3])
	}
}

func TestQuantilesNearestRank(t *testing.T) {
	// 1s..10s: nearest-rank p50 = ⌈0.5·10⌉ = 5th value, p95 = 10th, p99 = 10th.
	var vals []time.Duration
	for i := 10; i >= 1; i-- { // unsorted input: helper must sort a copy
		vals = append(vals, time.Duration(i)*time.Second)
	}
	got := Quantiles(vals, 0.5, 0.95, 0.99, 1)
	want := []time.Duration{5 * time.Second, 10 * time.Second, 10 * time.Second, 10 * time.Second}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("q[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if vals[0] != 10*time.Second {
		t.Fatal("Quantiles must not reorder its input")
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty series stats should be zero")
	}
	s.Add(0, 10)
	s.Add(time.Second, 20)
	s.Add(2*time.Second, 30)
	if s.Mean() != 20 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 30 {
		t.Fatalf("max = %v", s.Max())
	}
}

func TestRate(t *testing.T) {
	var cum Series
	cum.Add(0, 0)
	cum.Add(time.Second, 100)
	cum.Add(3*time.Second, 500)
	r := Rate(cum)
	if len(r.Points) != 2 {
		t.Fatalf("rate points = %d", len(r.Points))
	}
	if r.Points[0].Value != 100 {
		t.Fatalf("first rate = %v", r.Points[0].Value)
	}
	if r.Points[1].Value != 200 {
		t.Fatalf("second rate = %v", r.Points[1].Value)
	}
}

func TestRateDuplicateTimestampMergesLastWins(t *testing.T) {
	var cum Series
	cum.Add(time.Second, 1)
	cum.Add(time.Second, 2) // correction of the 1s sample: last wins
	cum.Add(2*time.Second, 3)
	r := Rate(cum)
	if len(r.Points) != 1 {
		t.Fatalf("rate points = %d, want 1 (duplicate timestamp merged)", len(r.Points))
	}
	if r.Points[0].At != 2*time.Second || r.Points[0].Value != 1 {
		t.Fatalf("rate = %+v, want (2s, (3-2)/1s)", r.Points[0])
	}
	// A trailing duplicate replaces the final sample.
	cum.Add(2*time.Second, 5)
	r = Rate(cum)
	if len(r.Points) != 1 || r.Points[0].Value != 3 {
		t.Fatalf("rate after trailing correction = %+v, want value 3", r.Points)
	}
}

func TestRateDropsBackwardsSamples(t *testing.T) {
	var cum Series
	cum.Add(2*time.Second, 10)
	cum.Add(time.Second, 0) // time went backwards: no usable interval
	cum.Add(4*time.Second, 14)
	r := Rate(cum)
	if len(r.Points) != 1 {
		t.Fatalf("rate points = %d, want 1", len(r.Points))
	}
	if r.Points[0].Value != 2 {
		t.Fatalf("rate = %v, want (14-10)/2s = 2", r.Points[0].Value)
	}
}

func TestRateEmptyAndSingle(t *testing.T) {
	if r := Rate(Series{}); len(r.Points) != 0 {
		t.Fatalf("empty series rate = %+v", r.Points)
	}
	var one Series
	one.Add(time.Second, 5)
	if r := Rate(one); len(r.Points) != 0 {
		t.Fatalf("single-sample rate = %+v", r.Points)
	}
}

func TestQuantilesClampAndEdges(t *testing.T) {
	vals := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	// p <= 0 clamps to the minimum (rank 1); p > 1 clamps to the maximum.
	got := Quantiles(vals, -0.5, 0, 1.7)
	if got[0] != time.Second || got[1] != time.Second {
		t.Fatalf("p<=0 should clamp to the minimum: got %v", got[:2])
	}
	if got[2] != 3*time.Second {
		t.Fatalf("p>1 should clamp to the maximum: got %v", got[2])
	}
	if vals[0] != 3*time.Second {
		t.Fatal("Quantiles must not reorder its input")
	}
}

func TestQuantilesDuplicateValues(t *testing.T) {
	vals := []time.Duration{time.Second, time.Second, time.Second, 5 * time.Second}
	got := Quantiles(vals, 0.5, 0.75, 1)
	if got[0] != time.Second || got[1] != time.Second {
		t.Fatalf("duplicate-heavy quantiles = %v", got)
	}
	if got[2] != 5*time.Second {
		t.Fatalf("max = %v, want 5s", got[2])
	}
}

func TestQuantilesSingleElement(t *testing.T) {
	vals := []time.Duration{7 * time.Second}
	got := Quantiles(vals, 0.01, 0.5, 1)
	for i, q := range got {
		if q != 7*time.Second {
			t.Fatalf("quantile %d = %v, want 7s for a single element", i, q)
		}
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Start: 0, End: time.Second, BlockedIO: 100 * time.Millisecond, Bytes: 1 << 20, Tasks: 2}
	s := iv.String()
	if s == "" {
		t.Fatal("empty string")
	}
}
