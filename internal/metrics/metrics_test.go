package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestIntervalThroughput(t *testing.T) {
	iv := Interval{Start: 0, End: 2 * time.Second, Bytes: 100 << 20, Tasks: 4}
	if got, want := iv.Throughput(), float64(100<<20)/2; math.Abs(got-want) > 1e-6 {
		t.Fatalf("throughput = %v, want %v", got, want)
	}
}

func TestIntervalZeroDuration(t *testing.T) {
	iv := Interval{Start: time.Second, End: time.Second, Bytes: 1 << 20}
	if iv.Throughput() != 0 {
		t.Fatal("zero-duration interval should have zero throughput")
	}
	if iv.Congestion() != 0 {
		t.Fatal("zero-duration interval should have zero congestion")
	}
}

func TestCongestionFormula(t *testing.T) {
	iv := Interval{
		Start:     0,
		End:       10 * time.Second,
		BlockedIO: 5 * time.Second,
		Bytes:     200 << 20,
		Tasks:     2,
	}
	mu := iv.Throughput()
	want := 5.0 / mu
	if got := iv.Congestion(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ζ = %v, want ε/µ = %v", got, want)
	}
}

func TestCongestionNoIO(t *testing.T) {
	iv := Interval{Start: 0, End: time.Second, BlockedIO: time.Second, Bytes: 0, Tasks: 1}
	if iv.Congestion() != 0 {
		t.Fatal("no-data interval must report zero congestion")
	}
}

func TestMerge(t *testing.T) {
	a := Interval{Start: time.Second, End: 3 * time.Second, BlockedIO: time.Second, Bytes: 10, Tasks: 1}
	b := Interval{Start: 2 * time.Second, End: 5 * time.Second, BlockedIO: 2 * time.Second, Bytes: 20, Tasks: 1}
	m := a.Merge(b)
	if m.Start != time.Second || m.End != 5*time.Second {
		t.Fatalf("window = [%v,%v]", m.Start, m.End)
	}
	if m.BlockedIO != 3*time.Second || m.Bytes != 30 || m.Tasks != 2 {
		t.Fatalf("merge = %+v", m)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var acc Interval
	b := Interval{Start: 7 * time.Second, End: 9 * time.Second, Bytes: 5, Tasks: 1}
	acc = acc.Merge(b)
	if acc.Start != 7*time.Second || acc.End != 9*time.Second || acc.Tasks != 1 {
		t.Fatalf("merge into empty = %+v", acc)
	}
}

// Property: Merge is commutative in all aggregate fields.
func TestMergeCommutativeProperty(t *testing.T) {
	f := func(s1, e1, s2, e2 uint16, b1, b2 uint32) bool {
		a := Interval{Start: time.Duration(s1), End: time.Duration(s1) + time.Duration(e1), Bytes: int64(b1), Tasks: 1, BlockedIO: time.Duration(b1)}
		b := Interval{Start: time.Duration(s2), End: time.Duration(s2) + time.Duration(e2), Bytes: int64(b2), Tasks: 1, BlockedIO: time.Duration(b2)}
		ab, ba := a.Merge(b), b.Merge(a)
		return ab.Start == ba.Start && ab.End == ba.End && ab.Bytes == ba.Bytes &&
			ab.Tasks == ba.Tasks && ab.BlockedIO == ba.BlockedIO
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty series stats should be zero")
	}
	s.Add(0, 10)
	s.Add(time.Second, 20)
	s.Add(2*time.Second, 30)
	if s.Mean() != 20 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 30 {
		t.Fatalf("max = %v", s.Max())
	}
}

func TestRate(t *testing.T) {
	var cum Series
	cum.Add(0, 0)
	cum.Add(time.Second, 100)
	cum.Add(3*time.Second, 500)
	r := Rate(cum)
	if len(r.Points) != 2 {
		t.Fatalf("rate points = %d", len(r.Points))
	}
	if r.Points[0].Value != 100 {
		t.Fatalf("first rate = %v", r.Points[0].Value)
	}
	if r.Points[1].Value != 200 {
		t.Fatalf("second rate = %v", r.Points[1].Value)
	}
}

func TestRateSkipsZeroDt(t *testing.T) {
	var cum Series
	cum.Add(time.Second, 1)
	cum.Add(time.Second, 2)
	cum.Add(2*time.Second, 3)
	r := Rate(cum)
	if len(r.Points) != 1 {
		t.Fatalf("rate points = %d, want 1 (zero-dt sample dropped)", len(r.Points))
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Start: 0, End: time.Second, BlockedIO: 100 * time.Millisecond, Bytes: 1 << 20, Tasks: 2}
	s := iv.String()
	if s == "" {
		t.Fatal("empty string")
	}
}
