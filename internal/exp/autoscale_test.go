package exp

import (
	"testing"
)

func TestAutoscaleMatrix(t *testing.T) {
	res, err := Autoscale(Default().WithScale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	// 2 arrival scenarios × 4 provisioning configs.
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	for _, arrivals := range []string{"poisson", "bursty"} {
		for _, config := range []string{"static-small", "static-large", "reactive", "adaptive"} {
			row, ok := res.Get(arrivals, config)
			if !ok {
				t.Fatalf("missing row %s/%s", arrivals, config)
			}
			if row.Jobs <= 0 || row.P99Sec <= 0 || row.NodeHours <= 0 {
				t.Fatalf("%s/%s: degenerate row %+v", arrivals, config, row)
			}
			var classJobs int
			for _, c := range row.Classes {
				if c.Jobs <= 0 || c.P99Sec < c.P50Sec {
					t.Fatalf("%s/%s: bad class row %+v", arrivals, config, c)
				}
				classJobs += c.Jobs
			}
			if classJobs != row.Jobs {
				t.Fatalf("%s/%s: class jobs sum %d != %d", arrivals, config, classJobs, row.Jobs)
			}
		}
		// The large static fleet is its own SLO baseline, so it always meets it.
		large, _ := res.Get(arrivals, "static-large")
		if !large.SLOMet {
			t.Fatalf("%s/static-large misses its own SLO baseline", arrivals)
		}
		// Elastic configs must cost less than permanently running the full fleet.
		for _, config := range []string{"reactive", "adaptive"} {
			row, _ := res.Get(arrivals, config)
			if row.NodeHours >= large.NodeHours {
				t.Fatalf("%s/%s node-hours %.3f not below static-large %.3f",
					arrivals, config, row.NodeHours, large.NodeHours)
			}
		}
	}
	if _, ok := res.CSVTables()["autoscale"]; !ok {
		t.Fatal("CSVTables missing autoscale table")
	}
}
