package exp

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Tabular is implemented by experiment results that can export their data
// series as CSV tables (name → header+rows), for external plotting.
type Tabular interface {
	CSVTables() map[string][][]string
}

// WriteCSV writes each of a result's tables to dir/<name>.csv.
func WriteCSV(dir string, result Tabular) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("exp: create csv dir: %w", err)
	}
	for name, rows := range result.CSVTables() {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return fmt.Errorf("exp: create csv: %w", err)
		}
		w := csv.NewWriter(f)
		if err := w.WriteAll(rows); err != nil {
			f.Close()
			return fmt.Errorf("exp: write csv %s: %w", name, err)
		}
		w.Flush()
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func itoa(v int) string     { return strconv.Itoa(v) }

// CSVTables implements Tabular.
func (r *Table1Result) CSVTables() map[string][][]string {
	rows := [][]string{{"category", "parameters"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{string(row.Category), itoa(row.Count)})
	}
	rows = append(rows, []string{"Total", itoa(r.Total)})
	return map[string][][]string{"table1_parameters": rows}
}

// CSVTables implements Tabular.
func (r *Table2Result) CSVTables() map[string][][]string {
	rows := [][]string{{"application", "input_gib", "io_gib", "diff_pct"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.App, ftoa(row.InputGiB), ftoa(row.IOGiB), ftoa(row.DiffPct)})
	}
	return map[string][][]string{"table2_io_activity": rows}
}

// CSVTables implements Tabular.
func (r *Figure1Result) CSVTables() map[string][][]string {
	rows := [][]string{{"application", "stage", "name", "seconds", "cpu_pct", "iowait_pct"}}
	for _, app := range r.Apps {
		for _, st := range app.Stages {
			rows = append(rows, []string{app.App, itoa(st.Stage), st.Name,
				ftoa(st.Seconds), ftoa(st.CPUPct), ftoa(st.IowaitPct)})
		}
	}
	return map[string][][]string{"fig1_stage_usage": rows}
}

// CSVTables implements Tabular.
func (r *SweepResult) CSVTables() map[string][][]string {
	rows := [][]string{{"threads", "stage", "seconds", "disk_util_pct"}}
	for i, th := range r.Threads {
		for _, st := range r.Runs[i].Stages {
			rows = append(rows, []string{itoa(th), itoa(st.Stage), ftoa(st.Seconds), ftoa(st.DiskUtilPct)})
		}
	}
	for _, st := range r.BestFit.Stages {
		rows = append(rows, []string{"bestfit", itoa(st.Stage), ftoa(st.Seconds), ftoa(st.DiskUtilPct)})
	}
	return map[string][][]string{"sweep_" + r.App: rows}
}

// CSVTables implements Tabular.
func (r *Figure3Result) CSVTables() map[string][][]string {
	rows := [][]string{{"node", "speed_factor", "read_sec", "write_sec"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Node, ftoa(row.Factor), ftoa(row.ReadSec), ftoa(row.WriteSec)})
	}
	return map[string][][]string{"fig3_node_variability": rows}
}

// CSVTables implements Tabular.
func (r *Figure5Result) CSVTables() map[string][][]string {
	rows := [][]string{{"application", "stage", "threads", "disk_util_pct", "best"}}
	for _, p := range r.Panels {
		for i, th := range p.Threads {
			rows = append(rows, []string{p.App, itoa(p.Stage), itoa(th), ftoa(p.UtilPct[i]),
				strconv.FormatBool(th == p.Best)})
		}
	}
	return map[string][][]string{"fig5_disk_utilization": rows}
}

// CSVTables implements Tabular.
func (r *Figure6Result) CSVTables() map[string][][]string {
	rows := [][]string{{"executor", "stage", "threads"}}
	for e, perStage := range r.Threads {
		for s, th := range perStage {
			rows = append(rows, []string{itoa(e), itoa(s), itoa(th)})
		}
	}
	return map[string][][]string{"fig6_thread_selection": rows}
}

// CSVTables implements Tabular.
func (r *Figure7Result) CSVTables() map[string][][]string {
	rows := [][]string{{"stage", "threads", "epsilon_sec", "mu_mbps", "zeta", "selected"}}
	for _, fs := range r.Stages {
		for i, th := range fs.Threads {
			rows = append(rows, []string{itoa(fs.Stage), itoa(th), ftoa(fs.EpsSec[i]),
				ftoa(fs.MuMBps[i]), ftoa(fs.Zeta[i]), strconv.FormatBool(th == fs.Selected)})
		}
	}
	return map[string][][]string{"fig7_congestion": rows}
}

// CSVTables implements Tabular.
func (r *Figure8Result) CSVTables() map[string][][]string {
	rows := [][]string{{"application", "policy", "stage", "seconds", "threads_label"}}
	for _, app := range r.Apps {
		for _, run := range []RunStat{app.Default, app.BestFit, app.Dynamic} {
			for _, st := range run.Stages {
				rows = append(rows, []string{app.App, run.Policy, itoa(st.Stage), ftoa(st.Seconds), st.ThreadsLabel})
			}
		}
	}
	totals := [][]string{{"application", "default_sec", "bestfit_sec", "bestfit_red_pct", "dynamic_sec", "dynamic_red_pct"}}
	for _, app := range r.Apps {
		totals = append(totals, []string{app.App, ftoa(app.Default.Seconds),
			ftoa(app.BestFit.Seconds), ftoa(app.BestFitRed),
			ftoa(app.Dynamic.Seconds), ftoa(app.DynamicRed)})
	}
	return map[string][][]string{"fig8_stages": rows, "fig8_totals": totals}
}

// CSVTables implements Tabular.
func (r *Figure9Result) CSVTables() map[string][][]string {
	rows := [][]string{{"nodes", "policy", "seconds"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{itoa(row.Nodes), row.Policy, ftoa(row.Seconds)})
	}
	return map[string][][]string{"fig9_scalability": rows}
}

// CSVTables implements Tabular.
func (r *Figure11Result) CSVTables() map[string][][]string {
	rows := [][]string{{"policy", "seconds", "red_pct"}}
	rows = append(rows,
		[]string{"default", ftoa(r.App.Default.Seconds), "0"},
		[]string{"static-bestfit", ftoa(r.App.BestFit.Seconds), ftoa(r.App.BestFitRed)},
		[]string{"dynamic", ftoa(r.App.Dynamic.Seconds), ftoa(r.App.DynamicRed)})
	return map[string][][]string{"fig11_ssd": rows}
}

// CSVTables implements Tabular.
func (r *Figure12Result) CSVTables() map[string][][]string {
	rows := [][]string{{"disk", "stage", "threads", "t_sec", "throughput_mbps"}}
	means := [][]string{{"disk", "stage", "threads", "mean_mbps"}}
	for _, p := range r.Panels {
		for th, series := range p.Series {
			for _, pt := range series.Points {
				rows = append(rows, []string{p.Disk, itoa(p.Stage), itoa(th),
					ftoa(pt.At.Seconds()), ftoa(pt.Value)})
			}
			means = append(means, []string{p.Disk, itoa(p.Stage), itoa(th), ftoa(p.Mean[th])})
		}
	}
	return map[string][][]string{"fig12_series": rows, "fig12_means": means}
}

// CSVTables implements Tabular.
func (r *AblationResult) CSVTables() map[string][][]string {
	rows := [][]string{{"application", "variant", "seconds", "red_vs_default_pct"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.App, row.Variant, ftoa(row.Seconds), ftoa(row.RedVsDefault)})
	}
	return map[string][][]string{"ablation": rows}
}

// CSVTables implements Tabular.
func (r *InterferenceResult) CSVTables() map[string][][]string {
	rows := [][]string{{"policy", "interference", "seconds"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Policy, strconv.FormatBool(row.Interference), ftoa(row.Seconds)})
	}
	return map[string][][]string{"interference": rows}
}
