package exp

import (
	"strings"
	"testing"
)

func TestGrayFailMatrix(t *testing.T) {
	res, err := GrayFail(Default().WithScale(0.04))
	if err != nil {
		t.Fatal(err)
	}
	// 3 policies × 4 schedules.
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Seconds <= 0 {
			t.Fatalf("row %+v has non-positive runtime", row)
		}
		switch {
		case row.Schedule == "quiet":
			if row.DegradedPct != 0 || row.Suspected != 0 || row.Fenced != 0 ||
				row.LostExecutors != 0 || row.ChecksumFailovers != 0 {
				t.Fatalf("quiet row degraded: %+v", row)
			}
		case strings.HasPrefix(row.Schedule, "slow"):
			// A slow node keeps heart-beating: degraded, never lost.
			if row.LostExecutors != 0 {
				t.Fatalf("slow row lost %d executors: %+v", row.LostExecutors, row)
			}
			if row.DegradedPct <= 0 {
				t.Fatalf("4x slowdown did not degrade the run: %+v", row)
			}
		case strings.HasPrefix(row.Schedule, "partition"):
			// At test scale the partition may or may not outlive the
			// heartbeat timeout; either way every loss that heals must
			// have been fenced, never double-admitted.
			if row.Fenced > row.LostExecutors {
				t.Fatalf("more fences than losses: %+v", row)
			}
		case strings.HasPrefix(row.Schedule, "corrupt"):
			if row.LostExecutors != 0 {
				t.Fatalf("corrupt replicas cost an executor: %+v", row)
			}
		}
	}
	// Which blocks land on a rotten replica depends on each policy's task
	// placement, so assert failovers in aggregate rather than per row.
	var failovers int
	for _, row := range res.Rows {
		failovers += row.ChecksumFailovers
	}
	if failovers == 0 {
		t.Fatal("no corrupt schedule produced a checksum failover")
	}
	// The acceptance row: the dynamic policy completes under a degraded
	// (slow, not dead) node.
	found := false
	for _, row := range res.Rows {
		if row.Policy == "dynamic" && strings.HasPrefix(row.Schedule, "slow") {
			found = true
			if row.Seconds <= 0 {
				t.Fatalf("dynamic slow-node row did not complete: %+v", row)
			}
		}
	}
	if !found {
		t.Fatal("no dynamic slow-node row")
	}
	if !strings.Contains(res.String(), "schedule") {
		t.Fatal("String() missing header")
	}
	if _, ok := res.CSVTables()["grayfail"]; !ok {
		t.Fatal("CSVTables missing grayfail table")
	}
}
