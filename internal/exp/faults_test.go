package exp

import (
	"strings"
	"testing"
)

func TestFaultsMatrix(t *testing.T) {
	res, err := Faults(Default().WithScale(0.04))
	if err != nil {
		t.Fatal(err)
	}
	// 3 policies × 4 schedules.
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Seconds <= 0 {
			t.Fatalf("row %+v has non-positive runtime", row)
		}
		switch {
		case row.Schedule == "quiet":
			if row.LostExecutors != 0 || row.DegradedPct != 0 {
				t.Fatalf("quiet row degraded: %+v", row)
			}
		case strings.HasPrefix(row.Schedule, "crash"):
			if row.LostExecutors != 1 {
				t.Fatalf("crash row lost %d executors: %+v", row.LostExecutors, row)
			}
			if row.Requeued == 0 {
				t.Fatalf("crash row requeued nothing: %+v", row)
			}
		}
	}
	// The acceptance row: the dynamic policy completes a crash-and-restart
	// Terasort with exactly one loss.
	found := false
	for _, row := range res.Rows {
		if row.Policy == "dynamic" && strings.Contains(row.Schedule, "+") {
			found = true
			if row.LostExecutors != 1 {
				t.Fatalf("dynamic crash-restart lost %d executors", row.LostExecutors)
			}
		}
	}
	if !found {
		t.Fatal("no dynamic crash-restart row")
	}
	if !strings.Contains(res.String(), "schedule") {
		t.Fatal("String() missing header")
	}
	if _, ok := res.CSVTables()["faults"]; !ok {
		t.Fatal("CSVTables missing faults table")
	}
}
