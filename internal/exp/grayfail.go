package exp

import (
	"fmt"
	"strings"

	"sae/internal/chaos"
	"sae/internal/core"
	"sae/internal/engine/job"
	"sae/internal/workloads"
)

// GrayFailRow is one (policy, schedule) cell of the gray-failure matrix.
type GrayFailRow struct {
	Policy   string
	Schedule string
	Seconds  float64
	// DegradedPct is the runtime increase over the same policy's quiet
	// run.
	DegradedPct float64
	// Suspected counts heartbeat suspicions raised by the driver's
	// failure detector, including ones that later cleared.
	Suspected int
	// Fenced counts declared-lost incarnations ordered onto a fresh
	// epoch after a late heartbeat (detector false positives).
	Fenced            int
	LostExecutors     int
	FetchRetries      int
	ChecksumFailovers int
}

// GrayFailResult is the gray-failure experiment: Terasort under failure
// modes that degrade rather than kill — a node running slow, a network
// partition that drops heartbeats while tasks keep running, and silently
// corrupted DFS replicas. Where the faults experiment asks whether the
// sizing policies survive fail-stop crashes, this one asks whether they
// survive the murkier half of the failure spectrum: does the heartbeat
// detector's false positive stay fenced, do bounded fetch retries absorb
// the partition, and does checksum failover route around rot.
type GrayFailResult struct {
	Rows []GrayFailRow
}

// GrayFail runs Terasort under each policy × gray-failure schedule. Per
// policy, a quiet calibration run fixes the fault times: the slowdown and
// the partition both land at 25% of that policy's own quiet runtime
// (mid-map, with the shuffle still ahead), and the partition lasts 20% of
// it — long enough to outlive the heartbeat timeout at paper scale, so
// the detector's false-positive path is exercised, not just its timers.
func GrayFail(s Setup) (*GrayFailResult, error) {
	policies := []job.Policy{
		core.Default{},
		core.Static{IOThreads: 8},
		core.DefaultDynamic(),
	}
	res := &GrayFailResult{}
	w := workloads.Terasort(s.workloadConfig())
	for _, pol := range policies {
		quiet, err := s.WithFaults(nil).Run(w, pol, nil)
		if err != nil {
			return nil, fmt.Errorf("grayfail %s quiet: %w", pol.Name(), err)
		}
		at := quiet.Runtime / 4
		partDur := quiet.Runtime * 20 / 100
		schedules := []*chaos.Plan{
			nil,
			chaos.SlowAt(1, at, 4),
			chaos.PartitionAt(1, at, partDur),
			chaos.Corrupt(0.05, s.Seed),
		}
		for _, plan := range schedules {
			rep := quiet
			if !plan.Empty() {
				rep, err = s.WithFaults(plan).Run(w, pol, nil)
				if err != nil {
					return nil, fmt.Errorf("grayfail %s %s: %w", pol.Name(), plan, err)
				}
			}
			row := GrayFailRow{
				Policy:            pol.Name(),
				Schedule:          plan.String(),
				Seconds:           rep.Runtime.Seconds(),
				Suspected:         rep.Suspected,
				Fenced:            rep.Fenced,
				LostExecutors:     rep.LostExecutors,
				FetchRetries:      rep.FetchRetries,
				ChecksumFailovers: rep.ChecksumFailovers,
			}
			if quiet.Runtime > 0 {
				row.DegradedPct = 100 * (rep.Runtime.Seconds() - quiet.Runtime.Seconds()) / quiet.Runtime.Seconds()
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Get returns the row for (policy, schedule).
func (r *GrayFailResult) Get(policy, schedule string) (GrayFailRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == policy && row.Schedule == schedule {
			return row, true
		}
	}
	return GrayFailRow{}, false
}

func (r *GrayFailResult) String() string {
	var b strings.Builder
	b.WriteString("GrayFail — Terasort under gray failures (slow node, partition, corrupt replicas)\n")
	fmt.Fprintf(&b, "  %-16s %-22s %9s %9s %7s %6s %5s %7s %9s\n",
		"policy", "schedule", "runtime", "degraded", "suspect", "fenced", "lost", "fetchRT", "ckFailovr")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %-22s %8.1fs %+8.1f%% %7d %6d %5d %7d %9d\n",
			row.Policy, row.Schedule, row.Seconds, row.DegradedPct,
			row.Suspected, row.Fenced, row.LostExecutors, row.FetchRetries, row.ChecksumFailovers)
	}
	return b.String()
}

// CSVTables implements Tabular.
func (r *GrayFailResult) CSVTables() map[string][][]string {
	rows := [][]string{{"policy", "schedule", "seconds", "degraded_pct",
		"suspected", "fenced", "lost_executors", "fetch_retries", "checksum_failovers"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy, row.Schedule, ftoa(row.Seconds), ftoa(row.DegradedPct),
			itoa(row.Suspected), itoa(row.Fenced), itoa(row.LostExecutors),
			itoa(row.FetchRetries), itoa(row.ChecksumFailovers),
		})
	}
	return map[string][][]string{"grayfail": rows}
}
