package exp

import (
	"time"

	"sae/internal/chaos"
	"sae/internal/workloads"
)

// GrayFailRow is one (policy, schedule) cell of the gray-failure matrix.
type GrayFailRow struct {
	Policy   string
	Schedule string
	Seconds  float64
	// DegradedPct is the runtime increase over the same policy's quiet
	// run.
	DegradedPct float64
	// Suspected counts heartbeat suspicions raised by the driver's
	// failure detector, including ones that later cleared.
	Suspected int
	// Fenced counts declared-lost incarnations ordered onto a fresh
	// epoch after a late heartbeat (detector false positives).
	Fenced            int
	LostExecutors     int
	FetchRetries      int
	ChecksumFailovers int
}

// GrayFailResult is the gray-failure experiment: Terasort under failure
// modes that degrade rather than kill — a node running slow, a network
// partition that drops heartbeats while tasks keep running, and silently
// corrupted DFS replicas. Where the faults experiment asks whether the
// sizing policies survive fail-stop crashes, this one asks whether they
// survive the murkier half of the failure spectrum: does the heartbeat
// detector's false positive stay fenced, do bounded fetch retries absorb
// the partition, and does checksum failover route around rot.
type GrayFailResult struct {
	Rows []GrayFailRow
}

// GrayFailSchedules returns the gray-failure schedule generator: the
// slowdown and the partition both land at 25% of the policy's quiet runtime
// (mid-map, with the shuffle still ahead), and the partition lasts 20% of
// it — long enough to outlive the heartbeat timeout at paper scale, so the
// detector's false-positive path is exercised, not just its timers.
func GrayFailSchedules(seed int64) func(quiet time.Duration) []*chaos.Plan {
	return func(quiet time.Duration) []*chaos.Plan {
		at := quiet / 4
		partDur := quiet * 20 / 100
		return []*chaos.Plan{
			nil,
			chaos.SlowAt(1, at, 4),
			chaos.PartitionAt(1, at, partDur),
			chaos.Corrupt(0.05, seed),
		}
	}
}

// GrayFail runs Terasort under each policy × gray-failure schedule. Per
// policy, a quiet calibration run fixes the fault times (see
// GrayFailSchedules).
func GrayFail(s Setup) (*GrayFailResult, error) {
	cells, err := Runner{Setup: s, Label: "grayfail"}.ChaosMatrix(
		workloads.Terasort(s.workloadConfig()), ChaosMatrixPolicies(), GrayFailSchedules(s.Seed))
	if err != nil {
		return nil, err
	}
	return NewGrayFailResult(cells), nil
}

// NewGrayFailResult assembles the gray-failure rows from chaos-matrix
// cells (shared by the Go experiment and compiled scenario specs).
func NewGrayFailResult(cells []ChaosCell) *GrayFailResult {
	res := &GrayFailResult{}
	for _, c := range cells {
		res.Rows = append(res.Rows, GrayFailRow{
			Policy:            c.Policy,
			Schedule:          c.Schedule,
			Seconds:           c.Report.Runtime.Seconds(),
			DegradedPct:       c.DegradedPct,
			Suspected:         c.Report.Suspected,
			Fenced:            c.Report.Fenced,
			LostExecutors:     c.Report.LostExecutors,
			FetchRetries:      c.Report.FetchRetries,
			ChecksumFailovers: c.Report.ChecksumFailovers,
		})
	}
	return res
}

// Get returns the row for (policy, schedule).
func (r *GrayFailResult) Get(policy, schedule string) (GrayFailRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == policy && row.Schedule == schedule {
			return row, true
		}
	}
	return GrayFailRow{}, false
}

func (r *GrayFailResult) table() *Table {
	t := &Table{
		Title: "GrayFail — Terasort under gray failures (slow node, partition, corrupt replicas)",
		Name:  "grayfail",
		Columns: []Column{
			{Key: "policy", Head: "policy", HeadFmt: "%-16s", CellFmt: "%-16s"},
			{Key: "schedule", Head: "schedule", HeadFmt: "%-22s", CellFmt: "%-22s"},
			{Key: "seconds", Head: "runtime", HeadFmt: "%9s", CellFmt: "%8.1fs"},
			{Key: "degraded_pct", Head: "degraded", HeadFmt: "%9s", CellFmt: "%+8.1f%%"},
			{Key: "suspected", Head: "suspect", HeadFmt: "%7s", CellFmt: "%7d"},
			{Key: "fenced", Head: "fenced", HeadFmt: "%6s", CellFmt: "%6d"},
			{Key: "lost_executors", Head: "lost", HeadFmt: "%5s", CellFmt: "%5d"},
			{Key: "fetch_retries", Head: "fetchRT", HeadFmt: "%7s", CellFmt: "%7d"},
			{Key: "checksum_failovers", Head: "ckFailovr", HeadFmt: "%9s", CellFmt: "%9d"},
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []any{
			row.Policy, row.Schedule, row.Seconds, row.DegradedPct,
			row.Suspected, row.Fenced, row.LostExecutors,
			row.FetchRetries, row.ChecksumFailovers,
		})
	}
	return t
}

func (r *GrayFailResult) String() string { return r.table().String() }

// CSVTables implements Tabular.
func (r *GrayFailResult) CSVTables() map[string][][]string { return r.table().CSVTables() }
