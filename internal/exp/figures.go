package exp

import (
	"fmt"
	"strings"
	"time"

	"sae/internal/cluster"
	"sae/internal/conf"
	"sae/internal/core"
	"sae/internal/metrics"
	"sae/internal/sim"
	"sae/internal/telemetry"
	"sae/internal/workloads"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one category count.
type Table1Row struct {
	Category conf.Category
	Count    int
}

// Table1Result reproduces Table 1: functional parameters per category.
type Table1Result struct {
	Rows  []Table1Row
	Total int
}

// Table1 counts the configuration catalogue.
func Table1() *Table1Result {
	r := conf.New()
	counts := r.CountByCategory()
	res := &Table1Result{Total: r.Len()}
	for _, c := range conf.Categories() {
		res.Rows = append(res.Rows, Table1Row{Category: c, Count: counts[c]})
	}
	return res
}

func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1 — functional parameters by category\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-32s %3d\n", row.Category, row.Count)
	}
	fmt.Fprintf(&b, "  %-32s %3d\n", "Total", r.Total)
	return b.String()
}

// ---------------------------------------------------------------- Figure 1

// AppStages is one application's per-stage usage under the default policy.
type AppStages struct {
	App    string
	Stages []StageStat
}

// Figure1Result reproduces Fig. 1: per-stage CPU usage and disk iowait of
// the four evaluation applications at the default thread count.
type Figure1Result struct {
	Apps []AppStages
}

// Figure1 runs the four applications with stock executors and reports
// per-stage utilization.
func Figure1(s Setup) (*Figure1Result, error) {
	res := &Figure1Result{}
	for _, mk := range fourApps() {
		w := mk(s.workloadConfig())
		rep, err := s.Run(w, core.Default{}, nil)
		if err != nil {
			return nil, fmt.Errorf("figure1 %s: %w", w.Name, err)
		}
		res.Apps = append(res.Apps, AppStages{App: w.Name, Stages: summarize(rep).Stages})
	}
	return res, nil
}

func (r *Figure1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1 — per-stage CPU usage and disk I/O wait (default executors)\n")
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "  %s\n", app.App)
		for _, st := range app.Stages {
			fmt.Fprintf(&b, "    stage %d %-14s %8.1fs  cpu %5.1f%%  iowait %5.1f%%\n",
				st.Stage, st.Name, st.Seconds, st.CPUPct, st.IowaitPct)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one application's I/O amplification.
type Table2Row struct {
	App      string
	InputGiB float64
	IOGiB    float64
	DiffPct  float64
}

// Table2Result reproduces Table 2: I/O activity relative to input size for
// the nine HiBench applications.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs all nine applications with stock executors and accounts their
// task-level I/O activity (input + shuffle + output bytes, as reported by
// the engine's task metrics).
func Table2(s Setup) (*Table2Result, error) {
	res := &Table2Result{}
	for _, w := range workloads.All(s.workloadConfig()) {
		rep, err := s.Run(w, core.Default{}, nil)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", w.Name, err)
		}
		var io int64
		for _, st := range rep.Stages {
			io += st.Bytes()
		}
		in := float64(w.InputBytes)
		res.Rows = append(res.Rows, Table2Row{
			App:      w.Name,
			InputGiB: workloads.GiB(w.InputBytes),
			IOGiB:    workloads.GiB(io),
			DiffPct:  100 * (float64(io) - in) / in,
		})
	}
	return res, nil
}

func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2 — I/O activity relative to input size\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s %10s\n", "Application", "Input (GiB)", "I/O (GiB)", "Diff")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %12.2f %12.2f %+9.0f%%\n", row.App, row.InputGiB, row.IOGiB, row.DiffPct)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figures 2 and 4

// Figure2 sweeps the static solution over Terasort and PageRank (Fig. 2).
func Figure2(s Setup) (terasort, pagerank *SweepResult, err error) {
	if terasort, err = StaticSweep(s, workloads.Terasort); err != nil {
		return nil, nil, err
	}
	if pagerank, err = StaticSweep(s, workloads.PageRank); err != nil {
		return nil, nil, err
	}
	return terasort, pagerank, nil
}

// Figure4 sweeps the static solution over the SQL applications (Fig. 4),
// where the default thread count wins.
func Figure4(s Setup) (aggregation, join *SweepResult, err error) {
	if aggregation, err = StaticSweep(s, workloads.Aggregation); err != nil {
		return nil, nil, err
	}
	if join, err = StaticSweep(s, workloads.Join); err != nil {
		return nil, nil, err
	}
	return aggregation, join, nil
}

// ---------------------------------------------------------------- Figure 3

// Figure3Row is one node's sequential I/O timing.
type Figure3Row struct {
	Node     string
	Factor   float64
	ReadSec  float64
	WriteSec float64
}

// Figure3Result reproduces Fig. 3: per-node variability of reading and
// writing 30 GB on the DAS-5 cluster.
type Figure3Result struct {
	Rows          []Figure3Row
	MeanReadSec   float64
	MeanWriteSec  float64
	MaxOverMinRd  float64
	MaxOverMinWrt float64
}

// Figure3 measures 30 GB sequential writes and reads on every node of a
// DAS-5-sized (44-node) cluster with the default variability model.
func Figure3(s Setup) (*Figure3Result, error) {
	const nodes = 44
	const bytes = 30 * 1000 * 1000 * 1000 // 30 GB as in the paper
	k := sim.NewKernel()
	cfg := s.clusterConfig()
	cfg.Nodes = nodes
	c := cluster.New(k, cfg)
	res := &Figure3Result{Rows: make([]Figure3Row, nodes)}
	for i := 0; i < nodes; i++ {
		i := i
		node := c.Node(i)
		k.Go(node.Name, func(p *sim.Proc) {
			t0 := p.Now()
			node.Disk.Write(p, bytes)
			t1 := p.Now()
			node.Disk.Read(p, bytes)
			t2 := p.Now()
			res.Rows[i] = Figure3Row{
				Node:     node.Name,
				Factor:   node.SpeedFactor,
				WriteSec: (t1 - t0).Seconds(),
				ReadSec:  (t2 - t1).Seconds(),
			}
		})
	}
	k.Run()
	minR, maxR := res.Rows[0].ReadSec, res.Rows[0].ReadSec
	minW, maxW := res.Rows[0].WriteSec, res.Rows[0].WriteSec
	for _, row := range res.Rows {
		res.MeanReadSec += row.ReadSec / nodes
		res.MeanWriteSec += row.WriteSec / nodes
		minR, maxR = min(minR, row.ReadSec), max(maxR, row.ReadSec)
		minW, maxW = min(minW, row.WriteSec), max(maxW, row.WriteSec)
	}
	res.MaxOverMinRd = maxR / minR
	res.MaxOverMinWrt = maxW / minW
	return res, nil
}

func (r *Figure3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3 — per-node 30 GB read/write time variability\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s read %6.1fs  write %6.1fs\n", row.Node, row.ReadSec, row.WriteSec)
	}
	fmt.Fprintf(&b, "  mean read %.1fs, mean write %.1fs, max/min read %.2fx, write %.2fx\n",
		r.MeanReadSec, r.MeanWriteSec, r.MaxOverMinRd, r.MaxOverMinWrt)
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// UtilPanel is one subplot of Fig. 5: disk utilization vs. thread count for
// one I/O stage of one application.
type UtilPanel struct {
	App     string
	Stage   int
	Threads []int
	UtilPct []float64
	// Best is the thread count with the highest utilization (the red
	// bar of Fig. 5).
	Best int
}

// Figure5Result reproduces Fig. 5: average disk utilization in the I/O
// stages of the four applications under the static sweep.
type Figure5Result struct {
	Panels []UtilPanel
}

// Figure5 derives the utilization panels from static sweeps.
func Figure5(s Setup) (*Figure5Result, error) {
	res := &Figure5Result{}
	panels := []struct {
		mk     func(workloads.Config) *workloads.Spec
		stages []int
	}{
		{workloads.Terasort, []int{0, 1, 2}},
		{workloads.PageRank, []int{0}},
		{workloads.Aggregation, []int{0}},
		{workloads.Join, []int{0}},
	}
	for _, pn := range panels {
		sweep, err := StaticSweep(s, pn.mk)
		if err != nil {
			return nil, fmt.Errorf("figure5: %w", err)
		}
		for _, stage := range pn.stages {
			panel := UtilPanel{App: sweep.App, Stage: stage}
			bestUtil := -1.0
			for i, th := range sweep.Threads {
				util := sweep.Runs[i].Stages[stage].DiskUtilPct
				panel.Threads = append(panel.Threads, th)
				panel.UtilPct = append(panel.UtilPct, util)
				if util > bestUtil {
					bestUtil, panel.Best = util, th
				}
			}
			res.Panels = append(res.Panels, panel)
		}
	}
	return res, nil
}

func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — average disk utilization in I/O stages (static sweep)\n")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "  %s stage %d:", p.App, p.Stage)
		for i, th := range p.Threads {
			mark := " "
			if th == p.Best {
				mark = "*" // the red bar
			}
			fmt.Fprintf(&b, "  %d→%5.1f%%%s", th, p.UtilPct[i], mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 6

// Figure6Result reproduces Fig. 6: the thread count the dynamic solution
// selects per stage, for every executor.
type Figure6Result struct {
	App string
	// Threads[e][s] is executor e's final pool size in stage s.
	Threads [][]int
	Stages  []string
}

// Figure6 runs Terasort with self-adaptive executors.
func Figure6(s Setup) (*Figure6Result, error) {
	w := workloads.Terasort(s.workloadConfig())
	rep, err := s.Run(w, core.DefaultDynamic(), nil)
	if err != nil {
		return nil, fmt.Errorf("figure6: %w", err)
	}
	res := &Figure6Result{App: w.Name}
	for _, st := range rep.Stages {
		res.Stages = append(res.Stages, st.Name)
	}
	perStage := rep.FinalThreads()
	if len(perStage) > 0 {
		execs := len(perStage[0])
		res.Threads = make([][]int, execs)
		for e := 0; e < execs; e++ {
			for s := range perStage {
				res.Threads[e] = append(res.Threads[e], perStage[s][e])
			}
		}
	}
	return res, nil
}

func (r *Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — dynamic thread selection per stage and executor (%s)\n", r.App)
	fmt.Fprintf(&b, "  %-10s", "")
	for s := range r.Stages {
		fmt.Fprintf(&b, "  stage%-2d", s)
	}
	b.WriteString("\n")
	for e, row := range r.Threads {
		fmt.Fprintf(&b, "  executor%-2d", e)
		for _, th := range row {
			fmt.Fprintf(&b, " %7d", th)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Stage is one subplot: ε, µ and ζ against the thread count for one
// Terasort stage on executor 0.
type Fig7Stage struct {
	Stage   int
	Threads []int
	EpsSec  []float64
	MuMBps  []float64
	Zeta    []float64
	// Selected is the thread count the dynamic solution chose for this
	// stage on executor 0.
	Selected int
}

// Figure7Result reproduces Fig. 7.
type Figure7Result struct {
	Stages []Fig7Stage
}

// Figure7 measures ε, µ and ζ per static thread setting (ascending order,
// as plotted) for each Terasort stage, and marks the dynamic selection.
func Figure7(s Setup) (*Figure7Result, error) {
	sweep, err := StaticSweep(s, workloads.Terasort)
	if err != nil {
		return nil, fmt.Errorf("figure7: %w", err)
	}
	dyn, err := s.Run(workloads.Terasort(s.workloadConfig()), core.DefaultDynamic(), nil)
	if err != nil {
		return nil, fmt.Errorf("figure7 dynamic: %w", err)
	}
	res := &Figure7Result{}
	for si := range sweep.Default.Stages {
		fs := Fig7Stage{Stage: si, Selected: dyn.Stages[si].Execs[0].FinalThreads}
		for i := len(sweep.Threads) - 1; i >= 0; i-- { // ascending 2..32
			st := sweep.Runs[i].Stages[si]
			eps := st.ExecBlockedIO[0].Seconds()
			mu := float64(st.ExecBytes[0]) / st.Seconds
			zeta := 0.0
			if mu > 0 {
				zeta = eps / mu * 1e6 // ε/µ, scaled to s per MB/s
			}
			fs.Threads = append(fs.Threads, sweep.Threads[i])
			fs.EpsSec = append(fs.EpsSec, eps)
			fs.MuMBps = append(fs.MuMBps, mu/1e6)
			fs.Zeta = append(fs.Zeta, zeta)
		}
		res.Stages = append(res.Stages, fs)
	}
	return res, nil
}

func (r *Figure7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 — ε, µ and ζ vs thread count (Terasort, executor 0)\n")
	for _, fs := range r.Stages {
		fmt.Fprintf(&b, "  stage %d (dynamic selected %d threads)\n", fs.Stage, fs.Selected)
		for i, th := range fs.Threads {
			sel := " "
			if th == fs.Selected {
				sel = "←"
			}
			fmt.Fprintf(&b, "    %2d threads: ε %8.1fs  µ %7.1f MB/s  ζ %8.4f %s\n",
				th, fs.EpsSec[i], fs.MuMBps[i], fs.Zeta[i], sel)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 8

// Fig8App compares the three solutions on one application.
type Fig8App struct {
	App     string
	Default RunStat
	BestFit RunStat
	Dynamic RunStat
	// Reduction percentages relative to Default.
	BestFitRed float64
	DynamicRed float64
}

// Figure8Result reproduces Fig. 8: default vs static-BestFit vs dynamic.
type Figure8Result struct {
	Apps []Fig8App
}

// Figure8 runs the full comparison for the four applications.
func Figure8(s Setup) (*Figure8Result, error) {
	res := &Figure8Result{}
	for _, mk := range fourApps() {
		app, err := compare(s, mk)
		if err != nil {
			return nil, fmt.Errorf("figure8: %w", err)
		}
		res.Apps = append(res.Apps, app)
	}
	return res, nil
}

// compare produces one Fig. 8 panel.
func compare(s Setup, mk func(workloads.Config) *workloads.Spec) (Fig8App, error) {
	sweep, err := StaticSweep(s, mk)
	if err != nil {
		return Fig8App{}, err
	}
	rep, err := s.Run(mk(s.workloadConfig()), core.DefaultDynamic(), nil)
	if err != nil {
		return Fig8App{}, err
	}
	dyn := summarize(rep)
	return Fig8App{
		App:        sweep.App,
		Default:    sweep.Default,
		BestFit:    sweep.BestFit,
		Dynamic:    dyn,
		BestFitRed: Reduction(sweep.Default, sweep.BestFit),
		DynamicRed: Reduction(sweep.Default, dyn),
	}, nil
}

func (r *Figure8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8 — default vs static-BestFit vs dynamic\n")
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "  %s: default %.1fs | bestfit %.1fs (red %+.1f%%) | dynamic %.1fs (red %+.1f%%)\n",
			app.App, app.Default.Seconds, app.BestFit.Seconds, app.BestFitRed,
			app.Dynamic.Seconds, app.DynamicRed)
		for si := range app.Default.Stages {
			fmt.Fprintf(&b, "    stage %d %-14s default %8.1fs %-8s  bestfit %8.1fs %-8s  dynamic %8.1fs %-8s\n",
				si, app.Default.Stages[si].Name,
				app.Default.Stages[si].Seconds, app.Default.Stages[si].ThreadsLabel,
				app.BestFit.Stages[si].Seconds, app.BestFit.Stages[si].ThreadsLabel,
				app.Dynamic.Stages[si].Seconds, app.Dynamic.Stages[si].ThreadsLabel)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Row is one bar of Fig. 9.
type Fig9Row struct {
	Nodes   int
	Policy  string
	Seconds float64
	Stages  []StageStat
}

// Figure9Result reproduces Fig. 9: Terasort scalability, 4 vs 16 nodes with
// proportionally scaled input.
type Figure9Result struct {
	Rows []Fig9Row
}

// Figure9 runs Terasort under the three policies on the base cluster and on
// a 16-node cluster (input scales with the cluster, as in the paper).
func Figure9(s Setup) (*Figure9Result, error) {
	res := &Figure9Result{}
	for _, nodes := range []int{s.Nodes, 16} {
		sn := s.WithNodes(nodes)
		app, err := compare(sn, workloads.Terasort)
		if err != nil {
			return nil, fmt.Errorf("figure9 %d nodes: %w", nodes, err)
		}
		res.Rows = append(res.Rows,
			Fig9Row{Nodes: nodes, Policy: "default", Seconds: app.Default.Seconds, Stages: app.Default.Stages},
			Fig9Row{Nodes: nodes, Policy: "static-bestfit", Seconds: app.BestFit.Seconds, Stages: app.BestFit.Stages},
			Fig9Row{Nodes: nodes, Policy: "dynamic", Seconds: app.Dynamic.Seconds, Stages: app.Dynamic.Stages},
		)
	}
	return res, nil
}

func (r *Figure9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9 — Terasort scalability (input scaled with cluster size)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %2d nodes %-16s %8.1fs  [", row.Nodes, row.Policy, row.Seconds)
		for i, st := range row.Stages {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s", st.ThreadsLabel)
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Figures 10 and 11

// Figure10 sweeps the static solution over Terasort on HDDs and SSDs.
func Figure10(s Setup) (hdd, ssd *SweepResult, err error) {
	if hdd, err = StaticSweep(s, workloads.Terasort); err != nil {
		return nil, nil, err
	}
	if ssd, err = StaticSweep(s.WithSSD(), workloads.Terasort); err != nil {
		return nil, nil, err
	}
	return hdd, ssd, nil
}

// Figure11Result reproduces Fig. 11: the three solutions on SSDs.
type Figure11Result struct {
	App Fig8App
}

// Figure11 compares the solutions for Terasort on SSD storage.
func Figure11(s Setup) (*Figure11Result, error) {
	app, err := compare(s.WithSSD(), workloads.Terasort)
	if err != nil {
		return nil, fmt.Errorf("figure11: %w", err)
	}
	return &Figure11Result{App: app}, nil
}

func (r *Figure11Result) String() string {
	app := r.App
	var b strings.Builder
	b.WriteString("Figure 11 — Terasort on SSDs\n")
	fmt.Fprintf(&b, "  default %.1fs | bestfit %.1fs (red %+.1f%%) | dynamic %.1fs (red %+.1f%%)\n",
		app.Default.Seconds, app.BestFit.Seconds, app.BestFitRed, app.Dynamic.Seconds, app.DynamicRed)
	for si := range app.Default.Stages {
		fmt.Fprintf(&b, "    stage %d: default %-8s bestfit %-8s dynamic %-8s\n", si,
			app.Default.Stages[si].ThreadsLabel, app.BestFit.Stages[si].ThreadsLabel,
			app.Dynamic.Stages[si].ThreadsLabel)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 12

// ThroughputPanel is one subplot of Fig. 12: per-second I/O throughput of
// executor 0 during one Terasort stage, one series per thread count.
type ThroughputPanel struct {
	Disk  string
	Stage int
	// Series maps thread count → throughput samples (MB/s), with time
	// rebased to the stage start.
	Series map[int]metrics.Series
	// Mean maps thread count → mean stage throughput (the dashed mean
	// lines of Fig. 12).
	Mean map[int]float64
}

// Figure12Result reproduces Fig. 12.
type Figure12Result struct {
	Panels []ThroughputPanel
}

// Figure12 samples executor 0's I/O throughput once per (virtual) second
// during Terasort's first two stages, per thread count, on HDDs and SSDs.
func Figure12(s Setup) (*Figure12Result, error) {
	res := &Figure12Result{}
	for _, disk := range []struct {
		name  string
		setup Setup
	}{{"HDD", s}, {"SSD", s.WithSSD()}} {
		panels := map[int]*ThroughputPanel{}
		for _, stage := range []int{0, 1} {
			panels[stage] = &ThroughputPanel{
				Disk:   disk.name,
				Stage:  stage,
				Series: map[int]metrics.Series{},
				Mean:   map[int]float64{},
			}
		}
		for _, th := range SweepThreads {
			// The telemetry plane replaces the old ad-hoc sampler process:
			// the engine's registry samples executor 0's cumulative byte
			// counter once per virtual second (t=0 baseline included), and
			// the registry series differentiates into the Fig. 12 rate.
			run := disk.setup
			run.Metrics = telemetry.NewRegistry()
			run.MetricsInterval = time.Second
			rep, err := run.Run(
				workloads.Terasort(run.workloadConfig()),
				core.Static{IOThreads: th}, nil)
			if err != nil {
				return nil, fmt.Errorf("figure12 %s %d threads: %w", disk.name, th, err)
			}
			cum, _ := run.Metrics.Series("sae_executor_bytes_total", "exec", "0")
			cum.Name = fmt.Sprintf("%s-%d", disk.name, th)
			rate := metrics.Rate(cum)
			for _, stage := range []int{0, 1} {
				st := rep.Stages[stage]
				var series metrics.Series
				var sum float64
				for _, pt := range rate.Points {
					if pt.At >= st.Start && pt.At <= st.End {
						series.Add(pt.At-st.Start, pt.Value/1e6)
						sum += pt.Value / 1e6
					}
				}
				panels[stage].Series[th] = series
				panels[stage].Mean[th] = series.Mean()
			}
		}
		res.Panels = append(res.Panels, *panels[0], *panels[1])
	}
	return res, nil
}

func (r *Figure12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12 — Terasort I/O throughput time series (executor 0)\n")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "  stage %d, %s (mean MB/s by threads):", p.Stage, p.Disk)
		for _, th := range SweepThreads {
			fmt.Fprintf(&b, "  %d→%6.1f", th, p.Mean[th])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// fourApps returns the Table 3 applications in Fig. 1/8 order.
func fourApps() []func(workloads.Config) *workloads.Spec {
	return []func(workloads.Config) *workloads.Spec{
		workloads.Terasort, workloads.PageRank, workloads.Aggregation, workloads.Join,
	}
}
