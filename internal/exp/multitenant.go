package exp

import (
	"fmt"
	"strings"

	"sae/internal/core"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/workloads"
)

// RunMulti executes several workloads concurrently on one engine under the
// given inter-job policy and returns their reports in submission order.
// Inputs shared between workloads (same file name) are created once; the
// first workload's block size wins, as the engine has one DFS.
func (s Setup) RunMulti(ws []*workloads.Spec, policy job.Policy, jobPolicy engine.InterJobPolicy) ([]*engine.JobReport, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("exp: no workloads")
	}
	var inputs []engine.Input
	seen := map[string]bool{}
	for _, w := range ws {
		for _, in := range w.Inputs {
			if !seen[in.Name] {
				seen[in.Name] = true
				inputs = append(inputs, in)
			}
		}
	}
	opts := engine.Options{
		Cluster:         s.clusterConfig(),
		BlockSize:       ws[0].BlockSize,
		Policy:          policy,
		JobPolicy:       jobPolicy,
		Faults:          s.Faults,
		Inputs:          inputs,
		Trace:           s.Trace,
		TraceFormat:     s.TraceFormat,
		Metrics:         s.Metrics,
		MetricsInterval: s.MetricsInterval,
	}
	if s.Config != nil {
		if err := engine.ApplyConfig(&opts, s.Config); err != nil {
			return nil, err
		}
		if ws[0].BlockSize != 0 && !s.Config.IsSet("files.maxPartitionBytes") {
			opts.BlockSize = ws[0].BlockSize
		}
	}
	e, err := engine.NewEngine(opts)
	if err != nil {
		return nil, err
	}
	var handles []*engine.JobHandle
	for _, w := range ws {
		h, err := e.Submit(w.Job)
		if err != nil {
			return nil, fmt.Errorf("exp: submit %s: %w", w.Name, err)
		}
		handles = append(handles, h)
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	reps := make([]*engine.JobReport, len(handles))
	for i, h := range handles {
		if reps[i], err = h.Report(); err != nil {
			return nil, fmt.Errorf("exp: job %s: %w", ws[i].Name, err)
		}
	}
	return reps, nil
}

// MultiTenantRow is one (mix, scheduler, policy) cell of the multi-tenant
// matrix.
type MultiTenantRow struct {
	Mix    string
	Sched  string
	Policy string
	// MakespanSec is when the last job of the mix finished.
	MakespanSec float64
	// MeanJobSec is the mean per-job runtime (each measured from its own
	// submission).
	MeanJobSec float64
	// JobSecs are the individual job runtimes in submission order.
	JobSecs []float64
}

// MultiTenantResult is the multi-tenancy experiment: mixes of concurrent
// Terasort and PageRank jobs under each inter-job scheduler × executor
// sizing policy. It extends the paper's single-tenant evaluation to the
// shared-cluster setting the DAG scheduler enables: does self-adaptive
// sizing still pay off when jobs compete for the same executors, and what
// does fair sharing cost or buy on top of it?
type MultiTenantResult struct {
	Rows []MultiTenantRow
}

// MultiTenant runs each workload mix under {FIFO, FAIR} × {default,
// dynamic}.
func MultiTenant(s Setup) (*MultiTenantResult, error) {
	cfg := s.workloadConfig()
	mixes := []struct {
		name string
		ws   func() []*workloads.Spec
	}{
		{"2xterasort", func() []*workloads.Spec {
			return []*workloads.Spec{workloads.Terasort(cfg), workloads.Terasort(cfg)}
		}},
		{"2xpagerank", func() []*workloads.Spec {
			return []*workloads.Spec{workloads.PageRank(cfg), workloads.PageRank(cfg)}
		}},
		{"terasort+pagerank", func() []*workloads.Spec {
			return []*workloads.Spec{workloads.Terasort(cfg), workloads.PageRank(cfg)}
		}},
		{"2xterasort+2xpagerank", func() []*workloads.Spec {
			return []*workloads.Spec{
				workloads.Terasort(cfg), workloads.PageRank(cfg),
				workloads.Terasort(cfg), workloads.PageRank(cfg),
			}
		}},
	}
	schedulers := []engine.InterJobPolicy{engine.FIFO{}, engine.Fair{}}
	policies := []job.Policy{core.Default{}, core.DefaultDynamic()}
	res := &MultiTenantResult{}
	for _, mix := range mixes {
		for _, sched := range schedulers {
			for _, pol := range policies {
				reps, err := s.RunMulti(mix.ws(), pol, sched)
				if err != nil {
					return nil, fmt.Errorf("multitenant %s/%s/%s: %w",
						mix.name, sched.Name(), pol.Name(), err)
				}
				row := MultiTenantRow{Mix: mix.name, Sched: sched.Name(), Policy: pol.Name()}
				var sum, makespan float64
				for _, rep := range reps {
					sec := rep.Runtime.Seconds()
					row.JobSecs = append(row.JobSecs, sec)
					sum += sec
					// All jobs are submitted at t=0, so the makespan is
					// the slowest job's runtime.
					if sec > makespan {
						makespan = sec
					}
				}
				row.MakespanSec = makespan
				row.MeanJobSec = sum / float64(len(reps))
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// Get returns the row for (mix, sched, policy).
func (r *MultiTenantResult) Get(mix, sched, policy string) (MultiTenantRow, bool) {
	for _, row := range r.Rows {
		if row.Mix == mix && row.Sched == sched && row.Policy == policy {
			return row, true
		}
	}
	return MultiTenantRow{}, false
}

func (r *MultiTenantResult) String() string {
	var b strings.Builder
	b.WriteString("Multi-tenant — concurrent job mixes × inter-job scheduler × sizing policy\n")
	fmt.Fprintf(&b, "  %-22s %-5s %-16s %9s %9s  %s\n",
		"mix", "sched", "policy", "makespan", "mean-job", "per-job")
	for _, row := range r.Rows {
		var jobs []string
		for _, s := range row.JobSecs {
			jobs = append(jobs, fmt.Sprintf("%.1f", s))
		}
		fmt.Fprintf(&b, "  %-22s %-5s %-16s %8.1fs %8.1fs  [%s]\n",
			row.Mix, row.Sched, row.Policy, row.MakespanSec, row.MeanJobSec,
			strings.Join(jobs, " "))
	}
	return b.String()
}

// CSVTables implements Tabular.
func (r *MultiTenantResult) CSVTables() map[string][][]string {
	rows := [][]string{{"mix", "sched", "policy", "makespan_sec", "mean_job_sec", "job_secs"}}
	for _, row := range r.Rows {
		var jobs []string
		for _, s := range row.JobSecs {
			jobs = append(jobs, ftoa(s))
		}
		rows = append(rows, []string{
			row.Mix, row.Sched, row.Policy,
			ftoa(row.MakespanSec), ftoa(row.MeanJobSec), strings.Join(jobs, ";"),
		})
	}
	return map[string][][]string{"multitenant": rows}
}
