package exp

import (
	"fmt"
	"strings"

	"sae/internal/core"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/workloads"
)

// RunMulti executes several workloads concurrently on one engine under the
// given inter-job policy and returns their reports in submission order.
// Inputs shared between workloads (same file name) are created once; the
// first workload's block size wins, as the engine has one DFS.
func (s Setup) RunMulti(ws []*workloads.Spec, policy job.Policy, jobPolicy engine.InterJobPolicy) ([]*engine.JobReport, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("exp: no workloads")
	}
	var inputs []engine.Input
	seen := map[string]bool{}
	for _, w := range ws {
		for _, in := range w.Inputs {
			if !seen[in.Name] {
				seen[in.Name] = true
				inputs = append(inputs, in)
			}
		}
	}
	opts := engine.Options{
		Cluster:         s.clusterConfig(),
		BlockSize:       ws[0].BlockSize,
		Policy:          policy,
		JobPolicy:       jobPolicy,
		Faults:          s.Faults,
		Inputs:          inputs,
		Trace:           s.Trace,
		TraceFormat:     s.TraceFormat,
		Metrics:         s.Metrics,
		MetricsInterval: s.MetricsInterval,
		Audit:           s.Audit,
		Shards:          s.Shards,
	}
	if s.Config != nil {
		if err := engine.ApplyConfig(&opts, s.Config); err != nil {
			return nil, err
		}
		if ws[0].BlockSize != 0 && !s.Config.IsSet("files.maxPartitionBytes") {
			opts.BlockSize = ws[0].BlockSize
		}
	}
	e, err := engine.NewEngine(opts)
	if err != nil {
		return nil, err
	}
	var handles []*engine.JobHandle
	for _, w := range ws {
		h, err := e.Submit(w.Job)
		if err != nil {
			return nil, fmt.Errorf("exp: submit %s: %w", w.Name, err)
		}
		handles = append(handles, h)
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	reps := make([]*engine.JobReport, len(handles))
	for i, h := range handles {
		if reps[i], err = h.Report(); err != nil {
			return nil, fmt.Errorf("exp: job %s: %w", ws[i].Name, err)
		}
	}
	return reps, nil
}

// MultiTenantRow is one (mix, scheduler, policy) cell of the multi-tenant
// matrix.
type MultiTenantRow struct {
	Mix    string
	Sched  string
	Policy string
	// MakespanSec is when the last job of the mix finished.
	MakespanSec float64
	// MeanJobSec is the mean per-job runtime (each measured from its own
	// submission).
	MeanJobSec float64
	// JobSecs are the individual job runtimes in submission order.
	JobSecs []float64
}

// MultiTenantResult is the multi-tenancy experiment: mixes of concurrent
// Terasort and PageRank jobs under each inter-job scheduler × executor
// sizing policy. It extends the paper's single-tenant evaluation to the
// shared-cluster setting the DAG scheduler enables: does self-adaptive
// sizing still pay off when jobs compete for the same executors, and what
// does fair sharing cost or buy on top of it?
type MultiTenantResult struct {
	Rows []MultiTenantRow
}

// MultiTenantMixes is the experiment's workload-mix set, built against one
// workload config.
func MultiTenantMixes(cfg workloads.Config) []Mix {
	return []Mix{
		{Name: "2xterasort", Make: func() []*workloads.Spec {
			return []*workloads.Spec{workloads.Terasort(cfg), workloads.Terasort(cfg)}
		}},
		{Name: "2xpagerank", Make: func() []*workloads.Spec {
			return []*workloads.Spec{workloads.PageRank(cfg), workloads.PageRank(cfg)}
		}},
		{Name: "terasort+pagerank", Make: func() []*workloads.Spec {
			return []*workloads.Spec{workloads.Terasort(cfg), workloads.PageRank(cfg)}
		}},
		{Name: "2xterasort+2xpagerank", Make: func() []*workloads.Spec {
			return []*workloads.Spec{
				workloads.Terasort(cfg), workloads.PageRank(cfg),
				workloads.Terasort(cfg), workloads.PageRank(cfg),
			}
		}},
	}
}

// MultiTenant runs each workload mix under {FIFO, FAIR} × {default,
// dynamic}.
func MultiTenant(s Setup) (*MultiTenantResult, error) {
	cells, err := Runner{Setup: s, Label: "multitenant"}.TenantMatrix(
		MultiTenantMixes(s.workloadConfig()),
		[]engine.InterJobPolicy{engine.FIFO{}, engine.Fair{}},
		[]job.Policy{core.Default{}, core.DefaultDynamic()})
	if err != nil {
		return nil, err
	}
	return NewMultiTenantResult(cells), nil
}

// NewMultiTenantResult assembles the multi-tenant rows from tenant-matrix
// cells (shared by the Go experiment and compiled scenario specs).
func NewMultiTenantResult(cells []TenantCell) *MultiTenantResult {
	res := &MultiTenantResult{}
	for _, c := range cells {
		row := MultiTenantRow{Mix: c.Mix, Sched: c.Sched, Policy: c.Policy}
		var sum, makespan float64
		for _, rep := range c.Reports {
			sec := rep.Runtime.Seconds()
			row.JobSecs = append(row.JobSecs, sec)
			sum += sec
			// All jobs are submitted at t=0, so the makespan is the
			// slowest job's runtime.
			if sec > makespan {
				makespan = sec
			}
		}
		row.MakespanSec = makespan
		row.MeanJobSec = sum / float64(len(c.Reports))
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Get returns the row for (mix, sched, policy).
func (r *MultiTenantResult) Get(mix, sched, policy string) (MultiTenantRow, bool) {
	for _, row := range r.Rows {
		if row.Mix == mix && row.Sched == sched && row.Policy == policy {
			return row, true
		}
	}
	return MultiTenantRow{}, false
}

func (r *MultiTenantResult) table() *Table {
	t := &Table{
		Title: "Multi-tenant — concurrent job mixes × inter-job scheduler × sizing policy",
		Name:  "multitenant",
		Columns: []Column{
			{Key: "mix", Head: "mix", HeadFmt: "%-22s", CellFmt: "%-22s"},
			{Key: "sched", Head: "sched", HeadFmt: "%-5s", CellFmt: "%-5s"},
			{Key: "policy", Head: "policy", HeadFmt: "%-16s", CellFmt: "%-16s"},
			{Key: "makespan_sec", Head: "makespan", HeadFmt: "%9s", CellFmt: "%8.1fs"},
			{Key: "mean_job_sec", Head: "mean-job", HeadFmt: "%9s", CellFmt: "%8.1fs"},
			{Key: "job_secs", Head: "per-job", HeadFmt: " %s", CellFmt: " [%s]",
				Text: func(v any) string {
					var jobs []string
					for _, s := range v.([]float64) {
						jobs = append(jobs, fmt.Sprintf("%.1f", s))
					}
					return strings.Join(jobs, " ")
				},
				CSV: func(v any) string {
					var jobs []string
					for _, s := range v.([]float64) {
						jobs = append(jobs, ftoa(s))
					}
					return strings.Join(jobs, ";")
				}},
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []any{
			row.Mix, row.Sched, row.Policy, row.MakespanSec, row.MeanJobSec, row.JobSecs,
		})
	}
	return t
}

func (r *MultiTenantResult) String() string { return r.table().String() }

// CSVTables implements Tabular.
func (r *MultiTenantResult) CSVTables() map[string][][]string { return r.table().CSVTables() }
