package exp

import (
	"fmt"
	"strings"

	"sae/internal/core"
	"sae/internal/engine/job"
	"sae/internal/workloads"
)

// AblationRow is one (workload, variant) result.
type AblationRow struct {
	App     string
	Variant string
	Seconds float64
	// RedVsDefault is the runtime reduction relative to stock executors.
	RedVsDefault float64
}

// AblationResult quantifies the §5.2 design choices of the dynamic
// solution: ascending vs descending hill climb, the rollback step, the
// cmin=2 choice, and ζ = ε/µ vs disk utilization as the analyzer signal.
type AblationResult struct {
	Rows []AblationRow
}

// Ablation runs Terasort and PageRank under the dynamic controller and its
// ablated variants.
func Ablation(s Setup) (*AblationResult, error) {
	variants := []job.Policy{
		core.Default{},
		core.DefaultDynamic(),
		core.Dynamic{Cmin: 1},
		core.Descending{},
		core.NoRollback{},
		core.UtilizationDriven{},
		core.AIMD{},
	}
	res := &AblationResult{}
	for _, mk := range []func(workloads.Config) *workloads.Spec{workloads.Terasort, workloads.PageRank} {
		var defaultSec float64
		for _, pol := range variants {
			w := mk(s.workloadConfig())
			rep, err := s.Run(w, pol, nil)
			if err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", w.Name, pol.Name(), err)
			}
			sec := rep.Runtime.Seconds()
			if pol.Name() == "default" {
				defaultSec = sec
			}
			res.Rows = append(res.Rows, AblationRow{
				App:          w.Name,
				Variant:      pol.Name(),
				Seconds:      sec,
				RedVsDefault: 100 * (defaultSec - sec) / defaultSec,
			})
		}
	}
	return res, nil
}

// Get returns the row for (app, variant).
func (r *AblationResult) Get(app, variant string) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.App == app && row.Variant == variant {
			return row, true
		}
	}
	return AblationRow{}, false
}

func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — dynamic-controller design choices (§5.2)\n")
	app := ""
	for _, row := range r.Rows {
		if row.App != app {
			app = row.App
			fmt.Fprintf(&b, "  %s\n", app)
		}
		fmt.Fprintf(&b, "    %-22s %8.1fs  (red %+5.1f%% vs default)\n", row.Variant, row.Seconds, row.RedVsDefault)
	}
	return b.String()
}
