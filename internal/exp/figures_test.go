package exp

// These tests pin the *shape* of every reproduced table and figure to the
// paper's qualitative results: who wins, by roughly what factor, and where
// the crossovers fall. Absolute seconds are simulator-specific and not
// asserted.

import (
	"os"
	"strings"
	"testing"

	"sae/internal/workloads"
)

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1()
	if r.Total != 117 {
		t.Fatalf("total parameters = %d, want 117", r.Total)
	}
	want := map[string]int{
		"Shuffle": 19, "Compression and Serialization": 16, "Memory Management": 14,
		"Execution Behavior": 14, "Network": 13, "Scheduling": 32, "Dynamic Allocation": 9,
	}
	for _, row := range r.Rows {
		if want[string(row.Category)] != row.Count {
			t.Errorf("%s = %d, want %d", row.Category, row.Count, want[string(row.Category)])
		}
	}
}

func TestFigure1Shapes(t *testing.T) {
	r, err := Figure1(Default())
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]AppStages{}
	for _, a := range r.Apps {
		byApp[a.App] = a
	}
	// Terasort: CPU never saturated (paper: 6/15/9%), iowait dominant.
	for _, st := range byApp["terasort"].Stages {
		if st.CPUPct > 35 {
			t.Errorf("terasort stage %d CPU%% = %.1f, want low", st.Stage, st.CPUPct)
		}
		if st.IowaitPct < 30 {
			t.Errorf("terasort stage %d iowait%% = %.1f, want I/O-dominated", st.Stage, st.IowaitPct)
		}
	}
	// SQL scans are compute-heavy (paper: Join 68%, Aggregation 46%).
	if cpu := byApp["join"].Stages[0].CPUPct; cpu < 45 {
		t.Errorf("join scan CPU%% = %.1f, want heavy (paper 68%%)", cpu)
	}
	if cpu := byApp["aggregation"].Stages[0].CPUPct; cpu < 35 {
		t.Errorf("aggregation scan CPU%% = %.1f, want heavy (paper 46%%)", cpu)
	}
	// In no app is the CPU fully utilized (paper's observation 1).
	for _, a := range r.Apps {
		for _, st := range a.Stages {
			if st.CPUPct > 90 {
				t.Errorf("%s stage %d CPU%% = %.1f — the paper observes CPUs are never saturated", a.App, st.Stage, st.CPUPct)
			}
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	r, err := Table2(Default())
	if err != nil {
		t.Fatal(err)
	}
	diff := map[string]float64{}
	for _, row := range r.Rows {
		if row.IOGiB <= 0 {
			t.Errorf("%s has no I/O activity", row.App)
		}
		diff[row.App] = row.DiffPct
	}
	if len(r.Rows) != 9 {
		t.Fatalf("%d applications, want 9", len(r.Rows))
	}
	// Paper's ordering extremes: NWeight has by far the largest
	// amplification (+3553%), Join the smallest (+18%).
	for app, d := range diff {
		if app == "nweight" {
			continue
		}
		if d >= diff["nweight"] {
			t.Errorf("nweight should have the largest I/O amplification; %s has %+.0f%% vs %+.0f%%", app, d, diff["nweight"])
		}
		if app != "join" && d <= diff["join"] {
			t.Errorf("join should have the smallest amplification; %s has %+.0f%%", app, d)
		}
	}
	// Terasort: paper +284%.
	if d := diff["terasort"]; d < 200 || d > 380 {
		t.Errorf("terasort I/O diff = %+.0f%%, want ≈ +284%%", d)
	}
	// Everything at least exceeds its input (paper: 2x–30x).
	for app, d := range diff {
		if d < 15 {
			t.Errorf("%s amplification %+.0f%%, want clearly positive", app, d)
		}
	}
}

func TestFigure2TerasortShape(t *testing.T) {
	ts, pr, err := Figure2(Default())
	if err != nil {
		t.Fatal(err)
	}
	// Interior optimum: both extremes of the sweep lose to the middle.
	best := ts.Runs[0].Seconds
	bestTh := ts.Threads[0]
	for i := range ts.Threads {
		if ts.Runs[i].Seconds < best {
			best, bestTh = ts.Runs[i].Seconds, ts.Threads[i]
		}
	}
	if bestTh == 32 || bestTh == 2 {
		t.Errorf("terasort sweep optimum at %d threads, want interior (paper: 8)", bestTh)
	}
	// Paper: best static setting reduces Terasort runtime by ~39%.
	red := 100 * (ts.Default.Seconds - best) / ts.Default.Seconds
	if red < 25 || red > 55 {
		t.Errorf("terasort best static reduction = %.1f%%, want ≈39%%", red)
	}
	// BestFit (per-stage composition) is at least as good as any single
	// setting (the L1 argument).
	if ts.BestFit.Seconds > best*1.02 {
		t.Errorf("bestfit %.1fs worse than best single setting %.1fs", ts.BestFit.Seconds, best)
	}
	// PageRank static gains are much smaller (paper: 19% vs 39%): shuffle
	// stages are untouched by the static solution (L2).
	prBest := pr.Runs[0].Seconds
	for i := range pr.Threads {
		if pr.Runs[i].Seconds < prBest {
			prBest = pr.Runs[i].Seconds
		}
	}
	prRed := 100 * (pr.Default.Seconds - prBest) / pr.Default.Seconds
	if prRed >= red {
		t.Errorf("PageRank static reduction %.1f%% should be below Terasort's %.1f%%", prRed, red)
	}
	// Shuffle stages are identical across the sweep (static cannot mark
	// them — L2): compare stage 2 (iteration) across settings.
	s2 := pr.Runs[0].Stages[2].Seconds
	for i := range pr.Runs {
		if d := pr.Runs[i].Stages[2].Seconds - s2; d > 1 || d < -1 {
			t.Errorf("PageRank shuffle stage responded to the static knob: %.1f vs %.1f", pr.Runs[i].Stages[2].Seconds, s2)
		}
	}
}

func TestFigure4SQLDefaultWins(t *testing.T) {
	agg, join, err := Figure4(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range []*SweepResult{agg, join} {
		best := sw.Runs[0].Seconds
		for i := range sw.Runs {
			if sw.Runs[i].Seconds < best {
				best = sw.Runs[i].Seconds
			}
		}
		// Paper: for SQL apps the default performs best (L3) — the
		// static sweep buys (almost) nothing.
		red := 100 * (sw.Default.Seconds - best) / sw.Default.Seconds
		if red > 8 {
			t.Errorf("%s static sweep reduction = %.1f%%, paper finds none", sw.App, red)
		}
		// The scan stage outright degrades with few threads.
		last := sw.Runs[len(sw.Runs)-1] // 2 threads
		if last.Stages[0].Seconds < 1.5*sw.Default.Stages[0].Seconds {
			t.Errorf("%s scan stage at 2 threads should be much slower than default", sw.App)
		}
	}
}

func TestFigure3Variability(t *testing.T) {
	r, err := Figure3(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 44 {
		t.Fatalf("nodes = %d, want 44 (DAS-5)", len(r.Rows))
	}
	// Identical hardware, significant spread (the paper's point).
	if r.MaxOverMinRd < 1.3 {
		t.Errorf("read max/min = %.2f, want visible variability", r.MaxOverMinRd)
	}
	if r.MaxOverMinWrt < 1.3 {
		t.Errorf("write max/min = %.2f, want visible variability", r.MaxOverMinWrt)
	}
	for _, row := range r.Rows {
		if row.WriteSec <= row.ReadSec {
			t.Errorf("%s: write (%.1fs) should be slower than read (%.1fs)", row.Node, row.WriteSec, row.ReadSec)
		}
	}
}

func TestFigure5UtilizationShape(t *testing.T) {
	r, err := Figure5(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 6 {
		t.Fatalf("panels = %d, want 6", len(r.Panels))
	}
	for _, p := range r.Panels {
		if p.App == "terasort" && p.Stage == 0 {
			// Paper fig 5a: the pure-read stage keeps the disk busy
			// at every setting (≥91% on DAS-5) with the top settings
			// within a few percent of each other — which is exactly
			// why utilization is too blunt a signal for the tuner
			// (§5.2's argument for ε/µ).
			var hi, second float64
			for i, th := range p.Threads {
				if p.UtilPct[i] < 60 {
					t.Errorf("terasort stage 0 at %d threads: util %.1f%%, want uniformly high", th, p.UtilPct[i])
				}
				if p.UtilPct[i] > hi {
					second, hi = hi, p.UtilPct[i]
				} else if p.UtilPct[i] > second {
					second = p.UtilPct[i]
				}
			}
			if hi-second > 10 {
				t.Errorf("terasort stage 0: top utilizations spread %.1fpp, want indistinguishable", hi-second)
			}
		}
		if p.App == "join" || p.App == "aggregation" {
			// SQL scans: utilization *drops* with fewer threads
			// (compute-starved disk — the paper's L3 explanation).
			two, def := p.UtilPct[len(p.UtilPct)-1], p.UtilPct[0]
			if two >= def {
				t.Errorf("%s: utilization at 2 threads (%.1f) should be below default (%.1f)", p.App, two, def)
			}
		}
	}
}

func TestFigure6PerExecutorChoices(t *testing.T) {
	r, err := Figure6(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Threads) != 4 {
		t.Fatalf("executors = %d, want 4", len(r.Threads))
	}
	ladder := map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true}
	distinct := map[int]bool{}
	for e, row := range r.Threads {
		if len(row) != 3 {
			t.Fatalf("executor %d has %d stages, want 3", e, len(row))
		}
		for _, th := range row {
			if !ladder[th] {
				t.Errorf("executor %d chose %d threads — off the doubling ladder", e, th)
			}
			distinct[th] = true
		}
	}
	// The dynamic solution picks different counts for different stages /
	// executors (the paper's L1/L4 point) — at least two distinct values.
	if len(distinct) < 2 {
		t.Errorf("dynamic made uniform choices %v — expected differentiation", r.Threads)
	}
	// And never the stock default of 32 everywhere.
	all32 := true
	for _, row := range r.Threads {
		for _, th := range row {
			if th != 32 {
				all32 = false
			}
		}
	}
	if all32 {
		t.Error("dynamic kept the default thread count everywhere on an I/O-bound workload")
	}
}

func TestFigure7Shape(t *testing.T) {
	r, err := Figure7(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 3 {
		t.Fatalf("stages = %d", len(r.Stages))
	}
	for _, fs := range r.Stages {
		n := len(fs.Threads)
		// ε grows with the thread count (paper: "expectedly grows").
		if fs.EpsSec[n-1] <= fs.EpsSec[1] {
			t.Errorf("stage %d: ε at 32 threads (%.1f) should exceed ε at 4 (%.1f)", fs.Stage, fs.EpsSec[n-1], fs.EpsSec[1])
		}
		// µ peaks at an interior thread count on HDDs.
		peak, peakIdx := fs.MuMBps[0], 0
		for i, mu := range fs.MuMBps {
			if mu > peak {
				peak, peakIdx = mu, i
			}
		}
		if fs.Threads[peakIdx] == 32 {
			t.Errorf("stage %d: µ peaks at 32 threads; paper shows an interior peak", fs.Stage)
		}
		// The dynamic selection is a small count, near the µ peak.
		if fs.Selected > 16 {
			t.Errorf("stage %d: dynamic selected %d threads on contended HDD", fs.Stage, fs.Selected)
		}
	}
}

func TestFigure8Headline(t *testing.T) {
	r, err := Figure8(Default())
	if err != nil {
		t.Fatal(err)
	}
	apps := map[string]Fig8App{}
	for _, a := range r.Apps {
		apps[a.App] = a
	}
	ts := apps["terasort"]
	// Paper: −47.5% bestfit, −34.4% dynamic; bestfit beats dynamic
	// because all three stages are I/O-marked and skip exploration.
	if ts.BestFitRed < 38 || ts.BestFitRed > 58 {
		t.Errorf("terasort bestfit reduction = %.1f%%, want ≈47.5%%", ts.BestFitRed)
	}
	if ts.DynamicRed < 24 || ts.DynamicRed > 48 {
		t.Errorf("terasort dynamic reduction = %.1f%%, want ≈34.4%%", ts.DynamicRed)
	}
	if ts.BestFitRed <= ts.DynamicRed {
		t.Errorf("terasort: bestfit (%.1f%%) should beat dynamic (%.1f%%)", ts.BestFitRed, ts.DynamicRed)
	}
	pr := apps["pagerank"]
	// Paper: dynamic −54.1% ≫ bestfit −16.3% (shuffle stages, L2).
	if pr.DynamicRed < 45 {
		t.Errorf("pagerank dynamic reduction = %.1f%%, want >50%%", pr.DynamicRed)
	}
	if pr.DynamicRed <= pr.BestFitRed {
		t.Errorf("pagerank: dynamic (%.1f%%) should beat bestfit (%.1f%%)", pr.DynamicRed, pr.BestFitRed)
	}
	if pr.BestFitRed > 25 {
		t.Errorf("pagerank bestfit reduction = %.1f%%, want modest (paper 16.3%%)", pr.BestFitRed)
	}
	// SQL apps: small effects either way (paper: +6.8%, +2.5%).
	for _, name := range []string{"aggregation", "join"} {
		a := apps[name]
		if a.DynamicRed < -10 || a.DynamicRed > 18 {
			t.Errorf("%s dynamic reduction = %.1f%%, want small", name, a.DynamicRed)
		}
		if a.BestFitRed > 10 {
			t.Errorf("%s bestfit reduction = %.1f%%, want ≈0", name, a.BestFitRed)
		}
	}
	// Cross-app ordering: PageRank benefits most from dynamic, SQL least.
	if !(pr.DynamicRed > ts.DynamicRed && ts.DynamicRed > apps["aggregation"].DynamicRed) {
		t.Errorf("dynamic reduction ordering violated: pr=%.1f ts=%.1f agg=%.1f",
			pr.DynamicRed, ts.DynamicRed, apps["aggregation"].DynamicRed)
	}
}

func TestFigure9Scalability(t *testing.T) {
	r, err := Figure9(Default())
	if err != nil {
		t.Fatal(err)
	}
	sec := map[string]float64{}
	for _, row := range r.Rows {
		sec[row.Policy+string(rune('0'+row.Nodes/10))+string(rune('0'+row.Nodes%10))] = row.Seconds
	}
	d4, d16 := sec["default04"], sec["default16"]
	s4, s16 := sec["static-bestfit04"], sec["static-bestfit16"]
	y4, y16 := sec["dynamic04"], sec["dynamic16"]
	// Paper: default does NOT scale (16-node run much slower despite
	// constant data-to-resources ratio); static and dynamic hold.
	if d16 < d4*1.15 {
		t.Errorf("default should degrade at 16 nodes: %.1f vs %.1f", d16, d4)
	}
	if s16 > s4*1.15 || s16 < s4*0.7 {
		t.Errorf("static-bestfit should scale: %.1f vs %.1f", s16, s4)
	}
	if y16 > y4*1.2 || y16 < y4*0.65 {
		t.Errorf("dynamic should scale: %.1f vs %.1f", y16, y4)
	}
}

func TestFigure10SSDvsHDD(t *testing.T) {
	hdd, ssd, err := Figure10(Default())
	if err != nil {
		t.Fatal(err)
	}
	// SSDs are faster outright.
	if ssd.Default.Seconds >= hdd.Default.Seconds {
		t.Errorf("SSD default (%.1fs) should beat HDD default (%.1fs)", ssd.Default.Seconds, hdd.Default.Seconds)
	}
	// Paper: static gains shrink on SSD (20.2% vs 47.5%).
	hddRed := 100 * (hdd.Default.Seconds - hdd.BestFit.Seconds) / hdd.Default.Seconds
	ssdRed := 100 * (ssd.Default.Seconds - ssd.BestFit.Seconds) / ssd.Default.Seconds
	if ssdRed >= hddRed {
		t.Errorf("SSD static reduction (%.1f%%) should be below HDD's (%.1f%%)", ssdRed, hddRed)
	}
	if ssdRed < 2 || ssdRed > 30 {
		t.Errorf("SSD static reduction = %.1f%%, want ≈20%%", ssdRed)
	}
	// SSD read stage: 2 threads no longer competitive, and the extreme
	// low end of the sweep is the worst case (uniform latency).
	if ssd.Runs[len(ssd.Runs)-1].Seconds < ssd.Default.Seconds {
		t.Error("2 threads should not win on SSD")
	}
}

func TestFigure11SSDDynamic(t *testing.T) {
	r, err := Figure11(Default())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: both solutions still help on SSD, to a lesser extent
	// (static 20.2%, dynamic 16.7%). Exploration makes dynamic land
	// below bestfit; assert it stays within a sane band.
	if r.App.BestFitRed < 2 {
		t.Errorf("SSD bestfit reduction = %.1f%%, want positive", r.App.BestFitRed)
	}
	if r.App.DynamicRed < -5 || r.App.DynamicRed > 25 {
		t.Errorf("SSD dynamic reduction = %.1f%%, want small-positive band", r.App.DynamicRed)
	}
	if r.App.BestFitRed <= r.App.DynamicRed {
		t.Errorf("SSD: bestfit (%.1f%%) should beat dynamic (%.1f%%)", r.App.BestFitRed, r.App.DynamicRed)
	}
}

func TestFigure12ThroughputShapes(t *testing.T) {
	r, err := Figure12(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 4 {
		t.Fatalf("panels = %d, want 4 (2 stages × 2 devices)", len(r.Panels))
	}
	for _, p := range r.Panels {
		if p.Disk == "HDD" && p.Stage == 0 {
			// Paper fig 12a: mean throughput varies strongly with
			// threads, max at 4.
			if !(p.Mean[4] > p.Mean[32] && p.Mean[4] > p.Mean[2]) {
				t.Errorf("HDD stage 0: mean µ should peak at 4 threads: %v", p.Mean)
			}
		}
		if p.Stage == 0 {
			// Paper fig 12: in the saturated regime (8+ threads)
			// HDD throughput varies strongly with the thread count
			// while SSD throughput is near-uniform.
			spread := func(m map[int]float64) float64 {
				lo, hi := m[8], m[8]
				for _, th := range []int{16, 32} {
					if m[th] < lo {
						lo = m[th]
					}
					if m[th] > hi {
						hi = m[th]
					}
				}
				return hi / lo
			}
			sp := spread(p.Mean)
			if p.Disk == "SSD" && sp > 1.35 {
				t.Errorf("SSD stage 0: saturated-regime µ spread %.2fx, want near-uniform", sp)
			}
			if p.Disk == "HDD" && sp < 1.4 {
				t.Errorf("HDD stage 0: saturated-regime µ spread %.2fx, want strong variation", sp)
			}
		}
		for th, series := range p.Series {
			if len(series.Points) == 0 {
				t.Errorf("%s stage %d, %d threads: empty series", p.Disk, p.Stage, th)
			}
		}
	}
	// SSD throughput exceeds HDD's at saturation.
	var hddMean, ssdMean float64
	for _, p := range r.Panels {
		if p.Stage == 0 {
			if p.Disk == "HDD" {
				hddMean = p.Mean[32]
			} else {
				ssdMean = p.Mean[32]
			}
		}
	}
	if ssdMean <= hddMean {
		t.Errorf("SSD mean (%.1f) should exceed HDD mean (%.1f) at 32 threads", ssdMean, hddMean)
	}
}

// TestWorkloadSpecsValid ensures all nine workloads produce valid jobs at
// several scales and cluster sizes.
func TestWorkloadSpecsValid(t *testing.T) {
	for _, cfg := range []workloads.Config{
		{Nodes: 4, Scale: 1}, {Nodes: 4, Scale: 0.05}, {Nodes: 16, Scale: 1}, {Nodes: 2, Scale: 0.5},
	} {
		for _, w := range workloads.All(cfg) {
			if err := w.Job.Validate(); err != nil {
				t.Errorf("%s at %+v: %v", w.Name, cfg, err)
			}
			if len(w.Inputs) == 0 {
				t.Errorf("%s has no inputs", w.Name)
			}
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	r, err := Ablation(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"terasort", "pagerank"} {
		dyn, ok1 := r.Get(app, "dynamic")
		desc, ok2 := r.Get(app, "dynamic-descending")
		norb, ok3 := r.Get(app, "dynamic-no-rollback")
		util, ok4 := r.Get(app, "utilization-driven")
		def, ok5 := r.Get(app, "default")
		if !(ok1 && ok2 && ok3 && ok4 && ok5) {
			t.Fatalf("%s: missing variants", app)
		}
		// §5.2: ascending beats descending ("starting from the bottom
		// gives us a quicker route to the optimal thread count").
		if dyn.Seconds >= desc.Seconds {
			t.Errorf("%s: ascending (%.1fs) should beat descending (%.1fs)", app, dyn.Seconds, desc.Seconds)
		}
		// The rollback step pays.
		if dyn.Seconds >= norb.Seconds {
			t.Errorf("%s: rollback (%.1fs) should beat no-rollback (%.1fs)", app, dyn.Seconds, norb.Seconds)
		}
		// §5.2: ζ=ε/µ beats disk utilization as the analyzer signal.
		if dyn.Seconds >= util.Seconds {
			t.Errorf("%s: ζ-driven (%.1fs) should beat utilization-driven (%.1fs)", app, dyn.Seconds, util.Seconds)
		}
		// Every variant still beats stock executors on these workloads.
		for _, row := range []AblationRow{dyn, desc, norb, util} {
			if row.Seconds >= def.Seconds {
				t.Errorf("%s: %s (%.1fs) worse than default (%.1fs)", app, row.Variant, row.Seconds, def.Seconds)
			}
		}
	}
}

func TestInterferenceShapes(t *testing.T) {
	r, err := Interference(Default())
	if err != nil {
		t.Fatal(err)
	}
	get := func(policy string, noisy bool) InterferenceRow {
		row, ok := r.Get(policy, noisy)
		if !ok {
			t.Fatalf("missing row %s/%v", policy, noisy)
		}
		return row
	}
	for _, noisy := range []bool{false, true} {
		def, dyn := get("default", noisy), get("dynamic", noisy)
		if dyn.Seconds >= def.Seconds {
			t.Errorf("noisy=%v: dynamic (%.1fs) should beat default (%.1fs)", noisy, dyn.Seconds, def.Seconds)
		}
	}
	// The tenant hurts every policy.
	for _, pol := range []string{"default", "dynamic", "dynamic-reprobe"} {
		if get(pol, true).Seconds <= get(pol, false).Seconds {
			t.Errorf("%s: interference should cost runtime", pol)
		}
	}
	// Honest negative result for the re-probing extension: the frozen
	// choice remains near-optimal under the tenant, so periodic
	// re-exploration buys nothing and costs a bounded overhead (<12%).
	dyn, rep := get("dynamic", true), get("dynamic-reprobe", true)
	if rep.Seconds > dyn.Seconds*1.12 {
		t.Errorf("re-probe overhead too large: %.1fs vs %.1fs", rep.Seconds, dyn.Seconds)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	r := Table1()
	if err := WriteCSV(dir, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/table1_parameters.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Shuffle,19") {
		t.Fatalf("csv content: %s", data)
	}
	// A sweep result exports per-stage series.
	sw, err := StaticSweep(Default().WithScale(0.05), workloads.Terasort)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(dir, sw); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(dir + "/sweep_terasort.csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// 5 settings × 3 stages + 3 bestfit rows + header.
	if lines != 5*3+3+1 {
		t.Fatalf("sweep csv rows = %d", lines)
	}
}
