package exp

import (
	"testing"
)

func TestMultiTenantMatrix(t *testing.T) {
	res, err := MultiTenant(Default().WithScale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	// 4 mixes × 2 schedulers × 2 policies.
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(res.Rows))
	}
	jobsPerMix := map[string]int{
		"2xterasort": 2, "2xpagerank": 2, "terasort+pagerank": 2,
		"2xterasort+2xpagerank": 4,
	}
	for _, row := range res.Rows {
		if row.MakespanSec <= 0 || row.MeanJobSec <= 0 {
			t.Fatalf("row %+v has non-positive runtime", row)
		}
		if want := jobsPerMix[row.Mix]; len(row.JobSecs) != want {
			t.Fatalf("%s has %d job runtimes, want %d", row.Mix, len(row.JobSecs), want)
		}
		if row.MeanJobSec > row.MakespanSec {
			t.Fatalf("%s/%s/%s: mean %f exceeds makespan %f",
				row.Mix, row.Sched, row.Policy, row.MeanJobSec, row.MakespanSec)
		}
	}
	// Schedulers reorder work but never lose it: every cell exists.
	for _, mix := range []string{"2xterasort", "2xpagerank", "terasort+pagerank", "2xterasort+2xpagerank"} {
		for _, sched := range []string{"FIFO", "FAIR"} {
			for _, pol := range []string{"default", "dynamic"} {
				if _, ok := res.Get(mix, sched, pol); !ok {
					t.Fatalf("missing row %s/%s/%s", mix, sched, pol)
				}
			}
		}
	}
	if _, ok := res.CSVTables()["multitenant"]; !ok {
		t.Fatal("CSVTables missing multitenant table")
	}
}
