package exp

import (
	"fmt"
	"strings"

	"sae/internal/core"
	"sae/internal/workloads"
)

// SweepThreads is the static solution's parameter grid (Figs. 2, 4, 10).
var SweepThreads = []int{32, 16, 8, 4, 2}

// SweepResult holds a static thread-count sweep over one workload: one run
// per grid point plus the composed BestFit run.
type SweepResult struct {
	App string
	// Threads[i] corresponds to Runs[i].
	Threads []int
	Runs    []RunStat
	// Default is the stock-Spark run (all cores, also for non-I/O
	// stages; identical to the 32-thread static run on a 32-core node).
	Default RunStat
	// BestFitThreads is the per-stage winner of the sweep (I/O-marked
	// stages only — the static solution cannot touch the others).
	BestFitThreads map[int]int
	// BestFit is the composed run using BestFitThreads.
	BestFit RunStat
}

// StaticSweep runs workload w with each static thread setting, derives the
// hypothetical per-stage BestFit combination, and runs it.
func StaticSweep(s Setup, make func(workloads.Config) *workloads.Spec) (*SweepResult, error) {
	cfg := s.workloadConfig()
	res := &SweepResult{App: make(cfg).Name}
	for _, th := range SweepThreads {
		rep, err := s.Run(make(cfg), core.Static{IOThreads: th}, nil)
		if err != nil {
			return nil, fmt.Errorf("sweep %s threads=%d: %w", res.App, th, err)
		}
		res.Threads = append(res.Threads, th)
		res.Runs = append(res.Runs, summarize(rep))
	}
	res.Default = res.Runs[0] // static-32 == default on 32-core nodes

	// Compose BestFit: for each I/O-marked stage pick the sweep winner.
	res.BestFitThreads = map[int]int{}
	for si, st := range res.Default.Stages {
		spec := make(cfg).Job.Stages[si]
		if !spec.IOMarked() {
			continue
		}
		best, bestSec := SweepThreads[0], res.Runs[0].Stages[si].Seconds
		for i, th := range res.Threads {
			if sec := res.Runs[i].Stages[si].Seconds; sec < bestSec {
				best, bestSec = th, sec
			}
		}
		_ = st
		res.BestFitThreads[si] = best
	}
	rep, err := s.Run(make(cfg), core.BestFit{Threads: res.BestFitThreads}, nil)
	if err != nil {
		return nil, fmt.Errorf("sweep %s bestfit: %w", res.App, err)
	}
	res.BestFit = summarize(rep)
	return res, nil
}

// StageSeconds returns the per-stage runtimes of the run at grid point i.
func (r *SweepResult) StageSeconds(i int) []float64 {
	out := make([]float64, len(r.Runs[i].Stages))
	for si, st := range r.Runs[i].Stages {
		out[si] = st.Seconds
	}
	return out
}

// String renders the sweep as a per-stage runtime table (the bars of
// Figs. 2/4/10).
func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — static sweep (per-stage runtime, seconds)\n", r.App)
	fmt.Fprintf(&b, "%-10s", "threads")
	for si := range r.Default.Stages {
		fmt.Fprintf(&b, "  stage%-2d", si)
	}
	fmt.Fprintf(&b, "  %8s\n", "total")
	for i, th := range r.Threads {
		fmt.Fprintf(&b, "%-10d", th)
		for _, st := range r.Runs[i].Stages {
			fmt.Fprintf(&b, " %8.1f", st.Seconds)
		}
		fmt.Fprintf(&b, "  %8.1f\n", r.Runs[i].Seconds)
	}
	fmt.Fprintf(&b, "%-10s", "bestfit")
	for _, st := range r.BestFit.Stages {
		fmt.Fprintf(&b, " %8.1f", st.Seconds)
	}
	fmt.Fprintf(&b, "  %8.1f  (I/O stages at %v)\n", r.BestFit.Seconds, r.BestFitThreads)
	return b.String()
}
