package exp

import (
	"time"

	"sae/internal/chaos"
	"sae/internal/core"
	"sae/internal/engine/job"
	"sae/internal/workloads"
)

// FaultsRow is one (policy, schedule) cell of the fault-tolerance matrix.
type FaultsRow struct {
	Policy   string
	Schedule string
	Seconds  float64
	// DegradedPct is the runtime increase over the same policy's quiet
	// run.
	DegradedPct       float64
	LostExecutors     int
	ResubmittedStages int
	Requeued          int
	Retries           int
	RecoveredGiB      float64
}

// FaultsResult is the fault-tolerance experiment: Terasort under
// deterministic chaos schedules, for each executor-sizing policy. It
// answers two questions the paper leaves open: does the adaptive sizing
// machinery survive the failure modes a real cluster throws at it
// (crashes, crash-restarts, transient I/O faults), and how much of the
// policy's advantage survives a degraded run.
type FaultsResult struct {
	Rows []FaultsRow
}

// ChaosMatrixPolicies is the sizing-policy set every chaos matrix sweeps:
// the stock default, the paper's 8-thread static solution, and the MAPE-K
// dynamic executor.
func ChaosMatrixPolicies() []job.Policy {
	return []job.Policy{
		core.Default{},
		core.Static{IOThreads: 8},
		core.DefaultDynamic(),
	}
}

// FaultsSchedules returns the fault-tolerance schedule generator: given a
// policy's quiet runtime, the crash lands at 45% of it (mid-sort — map
// outputs exist and the shuffle is in flight), the restart 20% later.
func FaultsSchedules(seed int64) func(quiet time.Duration) []*chaos.Plan {
	return func(quiet time.Duration) []*chaos.Plan {
		crashAt := quiet * 45 / 100
		restartAfter := quiet * 20 / 100
		return []*chaos.Plan{
			nil,
			chaos.CrashAt(1, crashAt),
			chaos.CrashRestart(1, crashAt, restartAfter),
			chaos.Flaky(0.02, seed),
		}
	}
}

// Faults runs Terasort under each policy × chaos schedule. Per policy, a
// quiet calibration run fixes the fault times (see FaultsSchedules).
func Faults(s Setup) (*FaultsResult, error) {
	cells, err := Runner{Setup: s, Label: "faults"}.ChaosMatrix(
		workloads.Terasort(s.workloadConfig()), ChaosMatrixPolicies(), FaultsSchedules(s.Seed))
	if err != nil {
		return nil, err
	}
	return NewFaultsResult(cells), nil
}

// NewFaultsResult assembles the fault-tolerance rows from chaos-matrix
// cells (shared by the Go experiment and compiled scenario specs).
func NewFaultsResult(cells []ChaosCell) *FaultsResult {
	res := &FaultsResult{}
	for _, c := range cells {
		row := FaultsRow{
			Policy:            c.Policy,
			Schedule:          c.Schedule,
			Seconds:           c.Report.Runtime.Seconds(),
			DegradedPct:       c.DegradedPct,
			LostExecutors:     c.Report.LostExecutors,
			ResubmittedStages: c.Report.ResubmittedStages,
			RecoveredGiB:      workloads.GiB(c.Report.RecoveredBytes),
		}
		for _, st := range c.Report.Stages {
			row.Requeued += st.Requeued
			row.Retries += st.Retries
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Get returns the row for (policy, schedule).
func (r *FaultsResult) Get(policy, schedule string) (FaultsRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == policy && row.Schedule == schedule {
			return row, true
		}
	}
	return FaultsRow{}, false
}

func (r *FaultsResult) table() *Table {
	t := &Table{
		Title: "Faults — Terasort under deterministic chaos schedules",
		Name:  "faults",
		Columns: []Column{
			{Key: "policy", Head: "policy", HeadFmt: "%-16s", CellFmt: "%-16s"},
			{Key: "schedule", Head: "schedule", HeadFmt: "%-22s", CellFmt: "%-22s"},
			{Key: "seconds", Head: "runtime", HeadFmt: "%9s", CellFmt: "%8.1fs"},
			{Key: "degraded_pct", Head: "degraded", HeadFmt: "%9s", CellFmt: "%+8.1f%%"},
			{Key: "lost_executors", Head: "lost", HeadFmt: "%5s", CellFmt: "%5d"},
			{Key: "resubmitted_stages", Head: "resub", HeadFmt: "%7s", CellFmt: "%7d"},
			{Key: "requeued", Head: "requeue", HeadFmt: "%7s", CellFmt: "%7d"},
			{Key: "retries", Head: "retries", HeadFmt: "%7s", CellFmt: "%7d"},
			{Key: "recovered_gib", Head: "recovered", HeadFmt: "%9s", CellFmt: "%8.2fG"},
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []any{
			row.Policy, row.Schedule, row.Seconds, row.DegradedPct,
			row.LostExecutors, row.ResubmittedStages, row.Requeued,
			row.Retries, row.RecoveredGiB,
		})
	}
	return t
}

func (r *FaultsResult) String() string { return r.table().String() }

// CSVTables implements Tabular.
func (r *FaultsResult) CSVTables() map[string][][]string { return r.table().CSVTables() }
