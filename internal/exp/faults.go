package exp

import (
	"fmt"
	"strings"

	"sae/internal/chaos"
	"sae/internal/core"
	"sae/internal/engine/job"
	"sae/internal/workloads"
)

// FaultsRow is one (policy, schedule) cell of the fault-tolerance matrix.
type FaultsRow struct {
	Policy   string
	Schedule string
	Seconds  float64
	// DegradedPct is the runtime increase over the same policy's quiet
	// run.
	DegradedPct       float64
	LostExecutors     int
	ResubmittedStages int
	Requeued          int
	Retries           int
	RecoveredGiB      float64
}

// FaultsResult is the fault-tolerance experiment: Terasort under
// deterministic chaos schedules, for each executor-sizing policy. It
// answers two questions the paper leaves open: does the adaptive sizing
// machinery survive the failure modes a real cluster throws at it
// (crashes, crash-restarts, transient I/O faults), and how much of the
// policy's advantage survives a degraded run.
type FaultsResult struct {
	Rows []FaultsRow
}

// Faults runs Terasort under each policy × chaos schedule. Per policy, a
// quiet calibration run fixes the fault times: the crash lands at 45% of
// that policy's own quiet runtime (mid-sort — map outputs exist and the
// shuffle is in flight), the restart 20% later.
func Faults(s Setup) (*FaultsResult, error) {
	policies := []job.Policy{
		core.Default{},
		core.Static{IOThreads: 8},
		core.DefaultDynamic(),
	}
	res := &FaultsResult{}
	w := workloads.Terasort(s.workloadConfig())
	for _, pol := range policies {
		quiet, err := s.WithFaults(nil).Run(w, pol, nil)
		if err != nil {
			return nil, fmt.Errorf("faults %s quiet: %w", pol.Name(), err)
		}
		crashAt := quiet.Runtime * 45 / 100
		restartAfter := quiet.Runtime * 20 / 100
		schedules := []*chaos.Plan{
			nil,
			chaos.CrashAt(1, crashAt),
			chaos.CrashRestart(1, crashAt, restartAfter),
			chaos.Flaky(0.02, s.Seed),
		}
		for _, plan := range schedules {
			rep := quiet
			if !plan.Empty() {
				rep, err = s.WithFaults(plan).Run(w, pol, nil)
				if err != nil {
					return nil, fmt.Errorf("faults %s %s: %w", pol.Name(), plan, err)
				}
			}
			row := FaultsRow{
				Policy:            pol.Name(),
				Schedule:          plan.String(),
				Seconds:           rep.Runtime.Seconds(),
				LostExecutors:     rep.LostExecutors,
				ResubmittedStages: rep.ResubmittedStages,
				RecoveredGiB:      workloads.GiB(rep.RecoveredBytes),
			}
			for _, st := range rep.Stages {
				row.Requeued += st.Requeued
				row.Retries += st.Retries
			}
			if quiet.Runtime > 0 {
				row.DegradedPct = 100 * (rep.Runtime.Seconds() - quiet.Runtime.Seconds()) / quiet.Runtime.Seconds()
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Get returns the row for (policy, schedule).
func (r *FaultsResult) Get(policy, schedule string) (FaultsRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == policy && row.Schedule == schedule {
			return row, true
		}
	}
	return FaultsRow{}, false
}

func (r *FaultsResult) String() string {
	var b strings.Builder
	b.WriteString("Faults — Terasort under deterministic chaos schedules\n")
	fmt.Fprintf(&b, "  %-16s %-22s %9s %9s %5s %7s %7s %7s %9s\n",
		"policy", "schedule", "runtime", "degraded", "lost", "resub", "requeue", "retries", "recovered")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %-22s %8.1fs %+8.1f%% %5d %7d %7d %7d %8.2fG\n",
			row.Policy, row.Schedule, row.Seconds, row.DegradedPct,
			row.LostExecutors, row.ResubmittedStages, row.Requeued, row.Retries, row.RecoveredGiB)
	}
	return b.String()
}

// CSVTables implements Tabular.
func (r *FaultsResult) CSVTables() map[string][][]string {
	rows := [][]string{{"policy", "schedule", "seconds", "degraded_pct",
		"lost_executors", "resubmitted_stages", "requeued", "retries", "recovered_gib"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy, row.Schedule, ftoa(row.Seconds), ftoa(row.DegradedPct),
			itoa(row.LostExecutors), itoa(row.ResubmittedStages),
			itoa(row.Requeued), itoa(row.Retries), ftoa(row.RecoveredGiB),
		})
	}
	return map[string][][]string{"faults": rows}
}
