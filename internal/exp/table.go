package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Column describes one column of a matrix result: a CSV header key, the
// fixed-width printf verbs of the text table, and optional per-medium
// formatters for cells whose text and CSV renderings differ.
type Column struct {
	// Key is the CSV header; Head the text-table header label.
	Key, Head string
	// HeadFmt/CellFmt are the printf verbs of the header and data cells
	// ("%9s", "%8.1fs").
	HeadFmt, CellFmt string
	// Text, if set, pre-renders the cell value to the string CellFmt
	// formats (for compound cells like a per-job runtime list).
	Text func(v any) string
	// CSV, if set, overrides the default CSV rendering (floats with three
	// decimals, ints, strings and bools verbatim).
	CSV func(v any) string
}

// Table is the shared renderer behind every flat matrix result: one title
// line, one aligned header, one line per row — and the same rows again as a
// CSV table. Both Go experiments and compiled scenario runs render through
// it, so the two paths cannot drift apart.
type Table struct {
	// Title is the first line of String(), without the trailing newline.
	Title string
	// Name keys the CSV table.
	Name    string
	Columns []Column
	Rows    [][]any
}

func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n ")
	for _, c := range t.Columns {
		b.WriteString(" ")
		fmt.Fprintf(&b, c.HeadFmt, c.Head)
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(" ")
		for i, c := range t.Columns {
			b.WriteString(" ")
			v := row[i]
			if c.Text != nil {
				fmt.Fprintf(&b, c.CellFmt, c.Text(v))
			} else {
				fmt.Fprintf(&b, c.CellFmt, v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSVTables implements Tabular.
func (t *Table) CSVTables() map[string][][]string {
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Key
	}
	rows := [][]string{header}
	for _, row := range t.Rows {
		out := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			if c.CSV != nil {
				out[i] = c.CSV(row[i])
			} else {
				out[i] = csvCell(row[i])
			}
		}
		rows = append(rows, out)
	}
	return map[string][][]string{t.Name: rows}
}

// csvCell renders one cell value for CSV export.
func csvCell(v any) string {
	switch x := v.(type) {
	case float64:
		return ftoa(x)
	case int:
		return itoa(x)
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprint(x)
	}
}
