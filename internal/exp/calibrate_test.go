package exp

import (
	"fmt"
	"os"
	"testing"

	"sae/internal/core"
	"sae/internal/workloads"
)

// TestCalibrationReport prints full-scale sweep and policy-comparison
// numbers for manual calibration against the paper's figures. It only runs
// when SAE_CALIBRATE=1 to keep normal test runs fast.
func TestCalibrationReport(t *testing.T) {
	if os.Getenv("SAE_CALIBRATE") != "1" {
		t.Skip("set SAE_CALIBRATE=1 to print the calibration report")
	}
	s := Default()
	if os.Getenv("SAE_CALIBRATE_SSD") == "1" {
		s = s.WithSSD()
	}
	if os.Getenv("SAE_CALIBRATE_ORACLE") == "1" {
		// Oracle sweep: pin EVERY stage (including shuffle stages the
		// static solution cannot touch) to one thread count.
		for _, mk := range []func(workloads.Config) *workloads.Spec{
			workloads.Terasort, workloads.PageRank, workloads.Aggregation, workloads.Join,
		} {
			w := mk(s.workloadConfig())
			fmt.Printf("%s — oracle all-stage sweep\n", w.Name)
			for _, th := range SweepThreads {
				pins := map[int]int{}
				for i := range w.Job.Stages {
					pins[i] = th
				}
				rep, err := s.Run(mk(s.workloadConfig()), core.BestFit{Threads: pins, Label: "oracle"}, nil)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Printf("  %2d:", th)
				for _, st := range rep.Stages {
					fmt.Printf(" %8.1f", st.Duration().Seconds())
				}
				fmt.Printf("  total %8.1f\n", rep.Runtime.Seconds())
			}
		}
		return
	}
	for _, mk := range []func(workloads.Config) *workloads.Spec{
		workloads.Terasort, workloads.PageRank, workloads.Aggregation, workloads.Join,
	} {
		sweep, err := StaticSweep(s, mk)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Println(sweep)
		dynPolicy := core.DefaultDynamic()
		if v := os.Getenv("SAE_TOL"); v != "" {
			fmt.Sscanf(v, "%f", &dynPolicy.Tolerance)
		}
		rep, err := s.Run(mk(s.workloadConfig()), dynPolicy, nil)
		if err != nil {
			t.Fatal(err)
		}
		dyn := summarize(rep)
		fmt.Print(dyn)
		if os.Getenv("SAE_CALIBRATE_DECISIONS") == "1" {
			for exec, ds := range rep.Decisions {
				for _, d := range ds {
					fmt.Printf("    exec%d s%d @%6.1fs → %2d threads: %s {%s}\n",
						exec, d.Stage, d.At.Seconds(), d.Threads, d.Reason, d.Interval)
				}
			}
		}
		fmt.Printf("  reductions: bestfit %.1f%%  dynamic %.1f%%\n\n",
			Reduction(sweep.Default, sweep.BestFit), Reduction(sweep.Default, dyn))
		fmt.Printf("  fig1 (default): ")
		for _, st := range sweep.Default.Stages {
			fmt.Printf("[s%d cpu=%.0f%% iowait=%.0f%%] ", st.Stage, st.CPUPct, st.IowaitPct)
		}
		fmt.Println()
		fmt.Println()
	}
}
