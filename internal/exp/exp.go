// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation, each returning a structured result that
// renders the same rows/series the paper reports.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"sae/internal/chaos"
	"sae/internal/cluster"
	"sae/internal/conf"
	"sae/internal/device"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/telemetry"
	"sae/internal/workloads"
)

// Setup fixes the simulated environment for an experiment.
type Setup struct {
	// Nodes is the cluster size (paper: 4, Fig. 9 also 16, Fig. 3: 44).
	Nodes int
	// Scale multiplies data volumes (1 = paper size).
	Scale float64
	// Disk selects the storage device (HDD by default, SSD for §6.3).
	Disk device.DiskSpec
	// Seed drives per-node variability.
	Seed int64
	// Config, if set, applies a Spark-style configuration registry to
	// every run (wired parameters only; see engine.ApplyConfig).
	Config *conf.Registry
	// Faults, if set, applies a deterministic chaos schedule to every run
	// (see package chaos and the faults experiment).
	Faults *chaos.Plan
	// Trace, if set, receives the engine event log of every run.
	Trace io.Writer
	// TraceFormat selects the event-log encoding (see
	// engine.Options.TraceFormat; 2 adds the versioned header and spans).
	TraceFormat int
	// Metrics, if set, attaches the telemetry registry to every run. A
	// registry accumulates one run's series, so sweeps that build many
	// engines from one Setup should leave it nil and single-run callers
	// (sae-run, tests) set it; a non-nil registry forces sequential
	// experiment execution, like Trace.
	Metrics *telemetry.Registry
	// MetricsInterval is the telemetry sampler period (0 selects 5s).
	MetricsInterval time.Duration
	// Audit, if set, attaches the invariant audit plane to every engine
	// the setup builds (see engine.Options.Audit). An auditor accumulates
	// sequential per-run state, so like Trace and Metrics it forces
	// sequential experiment execution.
	Audit engine.Audit
	// Shards partitions each run's cluster into per-node-group kernels
	// under a shared clock (0 or 1 = single kernel; see
	// engine.Options.Shards). Traced, audited and quiet runs take the
	// deterministic merge path, so results stay byte-identical at any
	// shard count.
	Shards int
}

// Default returns the paper's 4-node HDD environment.
func Default() Setup {
	return Setup{Nodes: 4, Scale: 1, Disk: device.HDD7200(), Seed: 1}
}

// WithScale returns a copy with the given data scale (for fast tests).
func (s Setup) WithScale(scale float64) Setup {
	s.Scale = scale
	return s
}

// WithSSD returns a copy using the SSD device model.
func (s Setup) WithSSD() Setup {
	s.Disk = device.SSDSata()
	return s
}

// WithNodes returns a copy with the given cluster size.
func (s Setup) WithNodes(n int) Setup {
	s.Nodes = n
	return s
}

// WithFaults returns a copy applying the given chaos schedule to every run.
func (s Setup) WithFaults(plan *chaos.Plan) Setup {
	s.Faults = plan
	return s
}

func (s Setup) workloadConfig() workloads.Config {
	return workloads.Config{Nodes: s.Nodes, Scale: s.Scale}
}

func (s Setup) clusterConfig() cluster.Config {
	cfg := cluster.DAS5(s.Nodes)
	cfg.Disk = s.Disk
	cfg.Variability = device.DefaultVariability(s.Seed)
	return cfg
}

// Run executes one workload under one policy and returns the engine report.
func (s Setup) Run(w *workloads.Spec, policy job.Policy, onSetup func(*engine.Engine)) (*engine.JobReport, error) {
	opts := engine.Options{
		Cluster:         s.clusterConfig(),
		BlockSize:       w.BlockSize,
		Policy:          policy,
		Faults:          s.Faults,
		Inputs:          w.Inputs,
		OnSetup:         onSetup,
		Trace:           s.Trace,
		TraceFormat:     s.TraceFormat,
		Metrics:         s.Metrics,
		MetricsInterval: s.MetricsInterval,
		Audit:           s.Audit,
		Shards:          s.Shards,
	}
	if s.Config != nil {
		if err := engine.ApplyConfig(&opts, s.Config); err != nil {
			return nil, err
		}
		// The workload's split size wins unless the operator set one.
		if w.BlockSize != 0 && !s.Config.IsSet("files.maxPartitionBytes") {
			opts.BlockSize = w.BlockSize
		}
	}
	return engine.Run(opts, w.Job)
}

// StageStat is one stage row of a run summary.
type StageStat struct {
	Stage         int
	Name          string
	Seconds       float64
	CPUPct        float64
	IowaitPct     float64
	DiskUtilPct   float64
	ThreadsLabel  string
	ThreadsTotal  int
	BlockedIOSec  float64
	Bytes         int64
	DiskReadGiB   float64
	DiskWriteGiB  float64
	ExecThreads   []int
	ExecBlockedIO []time.Duration
	ExecBytes     []int64
}

// RunStat summarizes one run for rendering.
type RunStat struct {
	Policy  string
	Seconds float64
	Stages  []StageStat
}

func summarize(rep *engine.JobReport) RunStat {
	rs := RunStat{Policy: rep.Policy, Seconds: rep.Runtime.Seconds()}
	for _, st := range rep.Stages {
		ss := StageStat{
			Stage:        st.ID,
			Name:         st.Name,
			Seconds:      st.Duration().Seconds(),
			CPUPct:       st.CPUPercent,
			IowaitPct:    st.IowaitPercent,
			DiskUtilPct:  st.DiskUtilPercent,
			ThreadsLabel: st.ThreadsLabel(),
			ThreadsTotal: st.ThreadsTotal,
			BlockedIOSec: st.BlockedIO().Seconds(),
			Bytes:        st.Bytes(),
			DiskReadGiB:  workloads.GiB(st.DiskReadBytes),
			DiskWriteGiB: workloads.GiB(st.DiskWriteBytes),
		}
		for _, e := range st.Execs {
			ss.ExecThreads = append(ss.ExecThreads, e.FinalThreads)
			ss.ExecBlockedIO = append(ss.ExecBlockedIO, e.BlockedIO)
			ss.ExecBytes = append(ss.ExecBytes, e.Bytes)
		}
		rs.Stages = append(rs.Stages, ss)
	}
	return rs
}

// Reduction returns the percentage runtime reduction of b relative to a.
func Reduction(a, b RunStat) float64 {
	if a.Seconds <= 0 {
		return 0
	}
	return 100 * (a.Seconds - b.Seconds) / a.Seconds
}

func (rs RunStat) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8.1fs\n", rs.Policy, rs.Seconds)
	for _, st := range rs.Stages {
		fmt.Fprintf(&b, "    stage %d %-14s %8.1fs  %-8s cpu %5.1f%%  iowait %5.1f%%  disk %5.1f%%\n",
			st.Stage, st.Name, st.Seconds, st.ThreadsLabel, st.CPUPct, st.IowaitPct, st.DiskUtilPct)
	}
	return b.String()
}
