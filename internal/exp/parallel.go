package exp

import (
	"fmt"
	"sync"
	"time"
)

// Task is one independent unit of an experiment sweep: an ID for reporting
// and a closure that produces the printable result. The closure must build
// its entire simulated world itself (kernel, cluster, engine) — tasks run
// concurrently, and determinism of a parallel sweep rests on each run owning
// all of its mutable state.
type Task struct {
	ID  string
	Run func() (fmt.Stringer, error)
}

// TaskResult is the outcome of one Task.
type TaskResult struct {
	ID     string
	Result fmt.Stringer
	Err    error
	// Wall is the host wall-clock time the task took.
	Wall time.Duration
}

// RunParallel executes tasks on up to workers goroutines and returns their
// results indexed exactly like tasks — submission order, independent of
// completion order — so the rendered output of a parallel sweep is
// byte-identical to a sequential one. workers < 1 is treated as 1; tasks
// never observe each other, so any interleaving yields the same results.
func RunParallel(workers int, tasks []Task) []TaskResult {
	results := make([]TaskResult, len(tasks))
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for i, t := range tasks {
			results[i] = runTask(t)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runTask(tasks[i])
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

func runTask(t Task) TaskResult {
	start := time.Now()
	res, err := t.Run()
	return TaskResult{ID: t.ID, Result: res, Err: err, Wall: time.Since(start)}
}
