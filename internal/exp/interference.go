package exp

import (
	"fmt"
	"strings"
	"time"

	"sae/internal/core"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/workloads"
)

// InterferenceRow is one (policy, environment) cell.
type InterferenceRow struct {
	Policy       string
	Interference bool
	Seconds      float64
	// VictimThreads is the final per-stage thread choice on the executor
	// whose node suffers the background load.
	VictimThreads []int
}

// InterferenceResult is the dynamic-environment extension experiment: a
// co-located tenant starts hammering one node's disk mid-run (the cloud
// scenario of limitation L4 and the paper's outlook). The paper's
// per-stage-frozen controller cannot react after its freeze; the re-probing
// variant re-opens the hill climb and adapts.
type InterferenceResult struct {
	Rows []InterferenceRow
}

// Interference runs a long single-stage ingest job (where the paper's
// freeze-until-stage-end actually goes stale — multi-stage jobs re-adapt at
// every stage boundary anyway) under the stock, dynamic, and re-probing
// dynamic policies, with and without mid-run background disk load on node 0.
func Interference(s Setup) (*InterferenceResult, error) {
	policies := []job.Policy{
		core.Default{},
		core.DefaultDynamic(),
		core.Dynamic{Cmin: 2, ReprobeTasks: 20},
	}
	res := &InterferenceResult{}
	for _, noisy := range []bool{false, true} {
		for _, pol := range policies {
			var onSetup func(*engine.Engine)
			if noisy {
				onSetup = func(e *engine.Engine) {
					// The tenant arrives two (virtual) minutes in
					// and keeps 12 read streams on node 0's disk.
					e.InjectDiskInterference(0, 2*time.Minute, 12, 0)
				}
			}
			rep, err := s.Run(longIngest(s.workloadConfig()), pol, onSetup)
			if err != nil {
				return nil, fmt.Errorf("interference %s: %w", pol.Name(), err)
			}
			row := InterferenceRow{
				Policy:       pol.Name(),
				Interference: noisy,
				Seconds:      rep.Runtime.Seconds(),
			}
			for _, st := range rep.Stages {
				row.VictimThreads = append(row.VictimThreads, st.Execs[0].FinalThreads)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// longIngest is a single-stage 150 GiB scan: long enough that a mid-stage
// environment change makes the frozen choice stale.
func longIngest(cfg workloads.Config) *workloads.Spec {
	scan := workloads.Scan(cfg)
	stage := scan.Job.Stages[0]
	stage.ShuffleWriteBytes = 0
	stage.Name = "long-ingest"
	return &workloads.Spec{
		Name:       "long-ingest",
		InputBytes: scan.InputBytes * 16,
		Inputs:     []engine.Input{{Name: stage.InputFile, Size: scan.Inputs[0].Size * 16}},
		BlockSize:  scan.BlockSize * 4,
		Job:        &job.JobSpec{Name: "long-ingest", Stages: []*job.StageSpec{stage}},
	}
}

// Get returns the row for (policy, interference).
func (r *InterferenceResult) Get(policy string, interference bool) (InterferenceRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == policy && row.Interference == interference {
			return row, true
		}
	}
	return InterferenceRow{}, false
}

func (r *InterferenceResult) String() string {
	var b strings.Builder
	b.WriteString("Interference — co-located tenant on node 0's disk (L4 / outlook extension)\n")
	for _, row := range r.Rows {
		env := "quiet cluster"
		if row.Interference {
			env = "noisy node 0 "
		}
		fmt.Fprintf(&b, "  %-16s %s %9.1fs  victim threads/stage %v\n",
			row.Policy, env, row.Seconds, row.VictimThreads)
	}
	return b.String()
}
