package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sae/internal/arrival"
	"sae/internal/autoscale"
)

// autoscaleSLOFactor sets the per-scenario p99 latency target relative to
// the static-large baseline: an elastic config "meets SLO" when its overall
// p99 job latency stays within this factor of always-on full capacity.
const autoscaleSLOFactor = 1.5

// AutoscaleClassRow is one tenant class's latency summary under one
// (arrival process, cluster config) cell.
type AutoscaleClassRow struct {
	Class string
	Jobs  int
	// P50/P95/P99 are job sojourn-time percentiles in seconds (submission
	// to completion — the per-tenant SLO latency).
	P50Sec, P95Sec, P99Sec float64
	// MeanQueueSec is the mean delay before a job's first task launched.
	MeanQueueSec float64
}

// AutoscaleRow is one (arrival process, cluster config) cell.
type AutoscaleRow struct {
	Arrivals string
	Config   string
	Jobs     int
	// NodeHours is the run's provisioned cost (integral of live nodes).
	NodeHours float64
	// PeakNodes/FinalNodes bracket the fleet; ScaleUps/Drains count actions.
	PeakNodes, FinalNodes int
	ScaleUps, Drains      int
	// P99Sec is the overall p99 job latency; SLOMet is whether it stayed
	// within the SLO factor of the baseline config's p99 for the same
	// arrivals.
	P99Sec float64
	SLOMet bool
	// Classes breaks latency down per tenant class.
	Classes []AutoscaleClassRow
}

// AutoscaleResult compares static and elastic provisioning under open-loop
// traffic: the same seeded arrival schedule is replayed against a small
// static fleet, a large static fleet, a threshold autoscaler, and the
// MAPE-K adaptive autoscaler, reporting per-tenant latency percentiles and
// node-hours. The question mirrors the paper's, one level up: can a
// self-adaptive capacity estimate deliver near-static-large p99 latency at
// a fraction of its cost, where a static small fleet drowns in bursts?
type AutoscaleResult struct {
	Rows []AutoscaleRow
	// SLOFactor is the p99 tolerance the verdicts were computed against
	// (0 renders as the experiment default); Baseline names the config the
	// tolerance is relative to (empty renders as "static-large").
	SLOFactor float64
	Baseline  string
}

// ScaleCount scales an integer design point by the setup's data scale,
// never below min (shared by the Go experiments and compiled scenarios).
func ScaleCount(n int, scale float64, min int) int {
	v := int(math.Round(float64(n) * scale))
	if v < min {
		v = min
	}
	return v
}

// Autoscale runs the elastic-provisioning comparison. The cluster has
// 2×Setup.Nodes machines; static-small/reactive/adaptive start with roughly
// a third of them, static-large with all of them.
func Autoscale(s Setup) (*AutoscaleResult, error) {
	capacity := 2 * s.Nodes
	small := (capacity + 2) / 3
	if small < 2 {
		small = 2
	}
	m := ArrivalMatrix{
		Tenants: []ArrivalTenant{
			{Class: arrival.Class{Name: "interactive", Weight: 3, Priority: 1},
				Blocks: ScaleCount(8, s.Scale, 1)},
			{Class: arrival.Class{Name: "batch", Weight: 1, Priority: 0},
				Blocks: ScaleCount(32, s.Scale, 2)},
		},
		Scenarios: []ArrivalScenario{
			{Name: "poisson", Proc: arrival.Poisson{RatePerSec: 0.08}},
			{Name: "bursty", Proc: arrival.Bursty{OnRate: 0.30, OffRate: 0.02,
				On: 45 * time.Second, Off: 105 * time.Second}},
		},
		Configs: []ArrivalConfig{
			{Name: "static-small", Policy: func() autoscale.Policy { return autoscale.Static{} }, Initial: small},
			{Name: "static-large", Policy: func() autoscale.Policy { return autoscale.Static{} }, Initial: capacity},
			{Name: "reactive", Policy: func() autoscale.Policy { return autoscale.DefaultReactive() }, Initial: small},
			// The adaptive planner drains backlog faster than the default
			// (30s vs 2min) with extra headroom: open-loop bursts punish a
			// planner that provisions for the mean.
			{Name: "adaptive", Policy: func() autoscale.Policy {
				return &autoscale.Adaptive{
					Alpha:           0.3,
					DrainTarget:     30 * time.Second,
					Headroom:        1.5,
					MinSamplePeriod: 5 * time.Second,
				}
			}, Initial: small},
		},
		Capacity:  capacity,
		Horizon:   6 * time.Minute,
		MaxJobs:   ScaleCount(28, s.Scale, 4),
		SLOFactor: autoscaleSLOFactor,
		Baseline:  "static-large",
	}
	return Runner{Setup: s, Label: "autoscale"}.ArrivalMatrix(m)
}

// Get returns the row for (arrivals, config).
func (r *AutoscaleResult) Get(arrivals, config string) (AutoscaleRow, bool) {
	for _, row := range r.Rows {
		if row.Arrivals == arrivals && row.Config == config {
			return row, true
		}
	}
	return AutoscaleRow{}, false
}

func (r *AutoscaleResult) sloFactor() float64 {
	if r.SLOFactor > 0 {
		return r.SLOFactor
	}
	return autoscaleSLOFactor
}

func (r *AutoscaleResult) String() string {
	baseline := r.Baseline
	if baseline == "" {
		baseline = "static-large"
	}
	var b strings.Builder
	b.WriteString("Autoscale — open-loop arrivals × provisioning config (p99 SLO = ")
	fmt.Fprintf(&b, "%.1f× %s)\n", r.sloFactor(), baseline)
	fmt.Fprintf(&b, "  %-8s %-13s %5s %10s %5s %9s %7s %8s %5s\n",
		"arrivals", "config", "jobs", "node-hours", "peak", "scale-ups", "drains", "p99", "SLO")
	for _, row := range r.Rows {
		verdict := "met"
		if !row.SLOMet {
			verdict = "miss"
		}
		fmt.Fprintf(&b, "  %-8s %-13s %5d %10.2f %5d %9d %7d %7.1fs %5s\n",
			row.Arrivals, row.Config, row.Jobs, row.NodeHours, row.PeakNodes,
			row.ScaleUps, row.Drains, row.P99Sec, verdict)
		for _, c := range row.Classes {
			fmt.Fprintf(&b, "    %-11s %3d job(s)  p50 %6.1fs  p95 %6.1fs  p99 %6.1fs  queue %6.1fs\n",
				c.Class, c.Jobs, c.P50Sec, c.P95Sec, c.P99Sec, c.MeanQueueSec)
		}
	}
	return b.String()
}

// CSVTables implements Tabular.
func (r *AutoscaleResult) CSVTables() map[string][][]string {
	rows := [][]string{{"arrivals", "config", "class", "jobs",
		"p50_sec", "p95_sec", "p99_sec", "mean_queue_sec",
		"node_hours", "peak_nodes", "scale_ups", "drains", "slo_met"}}
	for _, row := range r.Rows {
		met := "0"
		if row.SLOMet {
			met = "1"
		}
		for _, c := range row.Classes {
			rows = append(rows, []string{
				row.Arrivals, row.Config, c.Class, fmt.Sprintf("%d", c.Jobs),
				ftoa(c.P50Sec), ftoa(c.P95Sec), ftoa(c.P99Sec), ftoa(c.MeanQueueSec),
				ftoa(row.NodeHours), fmt.Sprintf("%d", row.PeakNodes),
				fmt.Sprintf("%d", row.ScaleUps), fmt.Sprintf("%d", row.Drains), met,
			})
		}
	}
	return map[string][][]string{"autoscale": rows}
}
