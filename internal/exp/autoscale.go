package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sae/internal/arrival"
	"sae/internal/autoscale"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/metrics"
)

// autoscaleSLOFactor sets the per-scenario p99 latency target relative to
// the static-large baseline: an elastic config "meets SLO" when its overall
// p99 job latency stays within this factor of always-on full capacity.
const autoscaleSLOFactor = 1.5

// AutoscaleClassRow is one tenant class's latency summary under one
// (arrival process, cluster config) cell.
type AutoscaleClassRow struct {
	Class string
	Jobs  int
	// P50/P95/P99 are job sojourn-time percentiles in seconds (submission
	// to completion — the per-tenant SLO latency).
	P50Sec, P95Sec, P99Sec float64
	// MeanQueueSec is the mean delay before a job's first task launched.
	MeanQueueSec float64
}

// AutoscaleRow is one (arrival process, cluster config) cell.
type AutoscaleRow struct {
	Arrivals string
	Config   string
	Jobs     int
	// NodeHours is the run's provisioned cost (integral of live nodes).
	NodeHours float64
	// PeakNodes/FinalNodes bracket the fleet; ScaleUps/Drains count actions.
	PeakNodes, FinalNodes int
	ScaleUps, Drains      int
	// P99Sec is the overall p99 job latency; SLOMet is whether it stayed
	// within autoscaleSLOFactor of static-large's p99 for the same arrivals.
	P99Sec float64
	SLOMet bool
	// Classes breaks latency down per tenant class.
	Classes []AutoscaleClassRow
}

// AutoscaleResult compares static and elastic provisioning under open-loop
// traffic: the same seeded arrival schedule is replayed against a small
// static fleet, a large static fleet, a threshold autoscaler, and the
// MAPE-K adaptive autoscaler, reporting per-tenant latency percentiles and
// node-hours. The question mirrors the paper's, one level up: can a
// self-adaptive capacity estimate deliver near-static-large p99 latency at
// a fraction of its cost, where a static small fleet drowns in bursts?
type AutoscaleResult struct {
	Rows []AutoscaleRow
}

// autoscaleTenant maps one arrival class to a concrete workload shape.
type autoscaleTenant struct {
	class  arrival.Class
	blocks int
}

// job builds the seq-th submission of this tenant class. Inputs are shared
// per class (read-only); outputs are per-job so concurrent runs never
// collide in the DFS namespace.
func (t autoscaleTenant) job(seq int) *job.JobSpec {
	in := int64(t.blocks) * 64 * device.MiB
	name := fmt.Sprintf("%s-%d", t.class.Name, seq)
	return &job.JobSpec{
		Name:     name,
		Tenant:   t.class.Name,
		Priority: t.class.Priority,
		Stages: []*job.StageSpec{
			{ID: 0, Name: "map", InputFile: t.class.Name + "/in",
				CPUSecondsPerTask: 0.15, ShuffleWriteBytes: in / 2},
			{ID: 1, Name: "reduce", NumTasks: 2 * t.blocks, ShuffleFrom: []int{0},
				CPUSecondsPerTask: 0.1, OutputFile: name + "/out", OutputBytes: in / 4},
		},
	}
}

func (t autoscaleTenant) input() engine.Input {
	return engine.Input{Name: t.class.Name + "/in", Size: int64(t.blocks) * 64 * device.MiB}
}

// scaleCount scales an integer design point by the setup's data scale,
// never below min.
func scaleCount(n int, scale float64, min int) int {
	v := int(math.Round(float64(n) * scale))
	if v < min {
		v = min
	}
	return v
}

// Autoscale runs the elastic-provisioning comparison. The cluster has
// 2×Setup.Nodes machines; static-small/reactive/adaptive start with roughly
// a third of them, static-large with all of them.
func Autoscale(s Setup) (*AutoscaleResult, error) {
	capacity := 2 * s.Nodes
	small := (capacity + 2) / 3
	if small < 2 {
		small = 2
	}

	tenants := []autoscaleTenant{
		{class: arrival.Class{Name: "interactive", Weight: 3, Priority: 1},
			blocks: scaleCount(8, s.Scale, 1)},
		{class: arrival.Class{Name: "batch", Weight: 1, Priority: 0},
			blocks: scaleCount(32, s.Scale, 2)},
	}
	classes := make([]arrival.Class, len(tenants))
	byClass := make(map[string]autoscaleTenant, len(tenants))
	for i, t := range tenants {
		classes[i] = t.class
		byClass[t.class.Name] = t
	}
	maxJobs := scaleCount(28, s.Scale, 4)

	scenarios := []struct {
		name string
		proc arrival.Process
	}{
		{"poisson", arrival.Poisson{RatePerSec: 0.08}},
		{"bursty", arrival.Bursty{OnRate: 0.30, OffRate: 0.02,
			On: 45 * time.Second, Off: 105 * time.Second}},
	}
	configs := []struct {
		name    string
		policy  func() autoscale.Policy
		initial int
	}{
		// Policies carry planner state (EWMAs, cooldown history), so every
		// run gets a fresh instance.
		{"static-small", func() autoscale.Policy { return autoscale.Static{} }, small},
		{"static-large", func() autoscale.Policy { return autoscale.Static{} }, capacity},
		{"reactive", func() autoscale.Policy { return autoscale.DefaultReactive() }, small},
		// The adaptive planner drains backlog faster than the default (30s
		// vs 2min) with extra headroom: open-loop bursts punish a planner
		// that provisions for the mean.
		{"adaptive", func() autoscale.Policy {
			return &autoscale.Adaptive{
				Alpha:           0.3,
				DrainTarget:     30 * time.Second,
				Headroom:        1.5,
				MinSamplePeriod: 5 * time.Second,
			}
		}, small},
	}

	res := &AutoscaleResult{}
	for _, sc := range scenarios {
		// One schedule per scenario, replayed against every config — the
		// comparison isolates provisioning, not traffic noise.
		sched := arrival.Spec{
			Proc:    sc.proc,
			Classes: classes,
			Seed:    s.Seed,
			Horizon: 6 * time.Minute,
			MaxJobs: maxJobs,
		}.Generate()
		if len(sched) == 0 {
			return nil, fmt.Errorf("autoscale: %s generated no arrivals", sc.name)
		}
		var rows []AutoscaleRow
		for _, cfg := range configs {
			row, err := s.runAutoscale(sc.name, cfg.name, cfg.policy(), cfg.initial, capacity, sched, byClass)
			if err != nil {
				return nil, fmt.Errorf("autoscale %s/%s: %w", sc.name, cfg.name, err)
			}
			rows = append(rows, row)
		}
		// SLO verdicts are relative to static-large on the same arrivals.
		baseline := rows[1].P99Sec
		for i := range rows {
			rows[i].SLOMet = rows[i].P99Sec <= autoscaleSLOFactor*baseline
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// runAutoscale replays one arrival schedule against one cluster config.
func (s Setup) runAutoscale(scenario, config string, policy autoscale.Policy,
	initial, capacity int, sched []arrival.Arrival,
	byClass map[string]autoscaleTenant) (AutoscaleRow, error) {

	big := s
	big.Nodes = capacity
	var inputs []engine.Input
	for _, t := range byClass {
		inputs = append(inputs, t.input())
	}
	// Map iteration order is random; keep the DFS layout deterministic.
	for i := 1; i < len(inputs); i++ {
		for j := i; j > 0 && inputs[j].Name < inputs[j-1].Name; j-- {
			inputs[j], inputs[j-1] = inputs[j-1], inputs[j]
		}
	}
	opts := engine.Options{
		Cluster:         big.clusterConfig(),
		BlockSize:       64 * device.MiB,
		Policy:          core.Default{},
		JobPolicy:       engine.Fair{},
		Inputs:          inputs,
		Trace:           s.Trace,
		TraceFormat:     s.TraceFormat,
		Metrics:         s.Metrics,
		MetricsInterval: s.MetricsInterval,
		Autoscale: &engine.AutoscaleConfig{
			Policy:            policy,
			Interval:          10 * time.Second,
			InitialNodes:      initial,
			MinNodes:          2,
			MaxNodes:          capacity,
			ProvisionDelay:    15 * time.Second,
			ScaleDownCooldown: time.Minute,
		},
	}
	e, err := engine.NewEngine(opts)
	if err != nil {
		return AutoscaleRow{}, err
	}
	handles := make([]*engine.JobHandle, len(sched))
	for i, a := range sched {
		t, ok := byClass[a.Class.Name]
		if !ok {
			return AutoscaleRow{}, fmt.Errorf("unknown tenant class %q", a.Class.Name)
		}
		if handles[i], err = e.SubmitAt(a.At, t.job(a.Seq)); err != nil {
			return AutoscaleRow{}, err
		}
	}
	if err := e.Wait(); err != nil {
		return AutoscaleRow{}, err
	}

	byName := map[string][]*engine.JobReport{}
	var all []time.Duration
	for _, h := range handles {
		rep, err := h.Report()
		if err != nil {
			return AutoscaleRow{}, err
		}
		byName[rep.Tenant] = append(byName[rep.Tenant], rep)
		all = append(all, rep.Runtime)
	}
	ar := e.AutoscaleReport()
	row := AutoscaleRow{
		Arrivals:   scenario,
		Config:     config,
		Jobs:       len(sched),
		NodeHours:  ar.NodeSeconds / 3600,
		PeakNodes:  ar.PeakNodes,
		FinalNodes: ar.FinalNodes,
		ScaleUps:   ar.Activations,
		Drains:     ar.Drains,
		P99Sec:     metrics.Quantiles(all, 0.99)[0].Seconds(),
	}
	// Class rows in a fixed order (interactive before batch) for stable
	// rendering and goldens.
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		reps := byName[name]
		var lat []time.Duration
		var queue time.Duration
		for _, rep := range reps {
			lat = append(lat, rep.Runtime)
			queue += rep.QueueDelay
		}
		q := metrics.Quantiles(lat, 0.5, 0.95, 0.99)
		row.Classes = append(row.Classes, AutoscaleClassRow{
			Class:        name,
			Jobs:         len(reps),
			P50Sec:       q[0].Seconds(),
			P95Sec:       q[1].Seconds(),
			P99Sec:       q[2].Seconds(),
			MeanQueueSec: (queue / time.Duration(len(reps))).Seconds(),
		})
	}
	return row, nil
}

// Get returns the row for (arrivals, config).
func (r *AutoscaleResult) Get(arrivals, config string) (AutoscaleRow, bool) {
	for _, row := range r.Rows {
		if row.Arrivals == arrivals && row.Config == config {
			return row, true
		}
	}
	return AutoscaleRow{}, false
}

func (r *AutoscaleResult) String() string {
	var b strings.Builder
	b.WriteString("Autoscale — open-loop arrivals × provisioning config (p99 SLO = ")
	fmt.Fprintf(&b, "%.1f× static-large)\n", autoscaleSLOFactor)
	fmt.Fprintf(&b, "  %-8s %-13s %5s %10s %5s %9s %7s %8s %5s\n",
		"arrivals", "config", "jobs", "node-hours", "peak", "scale-ups", "drains", "p99", "SLO")
	for _, row := range r.Rows {
		verdict := "met"
		if !row.SLOMet {
			verdict = "miss"
		}
		fmt.Fprintf(&b, "  %-8s %-13s %5d %10.2f %5d %9d %7d %7.1fs %5s\n",
			row.Arrivals, row.Config, row.Jobs, row.NodeHours, row.PeakNodes,
			row.ScaleUps, row.Drains, row.P99Sec, verdict)
		for _, c := range row.Classes {
			fmt.Fprintf(&b, "    %-11s %3d job(s)  p50 %6.1fs  p95 %6.1fs  p99 %6.1fs  queue %6.1fs\n",
				c.Class, c.Jobs, c.P50Sec, c.P95Sec, c.P99Sec, c.MeanQueueSec)
		}
	}
	return b.String()
}

// CSVTables implements Tabular.
func (r *AutoscaleResult) CSVTables() map[string][][]string {
	rows := [][]string{{"arrivals", "config", "class", "jobs",
		"p50_sec", "p95_sec", "p99_sec", "mean_queue_sec",
		"node_hours", "peak_nodes", "scale_ups", "drains", "slo_met"}}
	for _, row := range r.Rows {
		met := "0"
		if row.SLOMet {
			met = "1"
		}
		for _, c := range row.Classes {
			rows = append(rows, []string{
				row.Arrivals, row.Config, c.Class, fmt.Sprintf("%d", c.Jobs),
				ftoa(c.P50Sec), ftoa(c.P95Sec), ftoa(c.P99Sec), ftoa(c.MeanQueueSec),
				ftoa(row.NodeHours), fmt.Sprintf("%d", row.PeakNodes),
				fmt.Sprintf("%d", row.ScaleUps), fmt.Sprintf("%d", row.Drains), met,
			})
		}
	}
	return map[string][][]string{"autoscale": rows}
}
