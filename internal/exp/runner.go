package exp

import (
	"fmt"
	"time"

	"sae/internal/arrival"
	"sae/internal/autoscale"
	"sae/internal/chaos"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/metrics"
	"sae/internal/workloads"
)

// Runner is the shared execution core behind the experiment harness: every
// hand-coded experiment and every compiled scenario spec goes through the
// same matrix primitives, so a scenario run is byte-identical to the Go
// experiment it describes. The primitives own the repeated plumbing the
// per-experiment files used to copy — quiet calibration runs, per-cell
// engine setup, degraded-percentage accounting, arrival-schedule replay —
// and return plain cells for the result types to render.
type Runner struct {
	Setup Setup
	// Label prefixes error messages ("faults", "grayfail", a scenario name).
	Label string
}

// PolicyByName builds an executor sizing policy from its spec name:
// "default", "dynamic", or "static" / "static:N" (N I/O threads, default 8).
func PolicyByName(name string) (job.Policy, error) {
	switch {
	case name == "default":
		return core.Default{}, nil
	case name == "dynamic":
		return core.DefaultDynamic(), nil
	case name == "static":
		return core.Static{IOThreads: 8}, nil
	case len(name) > len("static:") && name[:len("static:")] == "static:":
		var n int
		if _, err := fmt.Sscanf(name[len("static:"):], "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("exp: bad static thread count in policy %q", name)
		}
		return core.Static{IOThreads: n}, nil
	default:
		return nil, fmt.Errorf("exp: unknown policy %q (want default, static[:N] or dynamic)", name)
	}
}

// SchedulerByName builds an inter-job policy from its spec name.
func SchedulerByName(name string) (engine.InterJobPolicy, error) {
	switch name {
	case "fifo", "FIFO":
		return engine.FIFO{}, nil
	case "fair", "FAIR":
		return engine.Fair{}, nil
	default:
		return nil, fmt.Errorf("exp: unknown scheduler %q (want fifo or fair)", name)
	}
}

// ChaosCell is one (policy, schedule) cell of a chaos matrix.
type ChaosCell struct {
	Policy   string
	Schedule string
	// Quiet is the policy's calibration run; Report the run under the
	// schedule (the same report for the quiet cell).
	Quiet, Report *engine.JobReport
	// DegradedPct is the runtime increase over the policy's quiet run.
	DegradedPct float64
}

// ChaosMatrix runs one workload under each policy × chaos schedule. Per
// policy a quiet calibration run executes first and fixes the schedule
// times: schedules receives that policy's quiet runtime and returns the
// plans to replay (nil plans reuse the quiet run without re-executing).
func (r Runner) ChaosMatrix(w *workloads.Spec, policies []job.Policy,
	schedules func(quiet time.Duration) []*chaos.Plan) ([]ChaosCell, error) {

	s := r.Setup
	var cells []ChaosCell
	for _, pol := range policies {
		quiet, err := s.WithFaults(nil).Run(w, pol, nil)
		if err != nil {
			return nil, fmt.Errorf("%s %s quiet: %w", r.Label, pol.Name(), err)
		}
		for _, plan := range schedules(quiet.Runtime) {
			rep := quiet
			if !plan.Empty() {
				rep, err = s.WithFaults(plan).Run(w, pol, nil)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", r.Label, pol.Name(), plan, err)
				}
			}
			cell := ChaosCell{
				Policy:   pol.Name(),
				Schedule: plan.String(),
				Quiet:    quiet,
				Report:   rep,
			}
			if quiet.Runtime > 0 {
				cell.DegradedPct = 100 * (rep.Runtime.Seconds() - quiet.Runtime.Seconds()) / quiet.Runtime.Seconds()
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// Mix is one named workload mix of a tenant matrix. Make builds fresh
// workload specs per run, so concurrent cells never share mutable state.
type Mix struct {
	Name string
	Make func() []*workloads.Spec
}

// TenantCell is one (mix, scheduler, policy) cell of a tenant matrix.
type TenantCell struct {
	Mix, Sched, Policy string
	// Reports are the per-job reports in submission order.
	Reports []*engine.JobReport
}

// TenantMatrix runs each workload mix under every inter-job scheduler ×
// sizing policy on one shared engine per cell.
func (r Runner) TenantMatrix(mixes []Mix, scheds []engine.InterJobPolicy,
	policies []job.Policy) ([]TenantCell, error) {

	var cells []TenantCell
	for _, mix := range mixes {
		for _, sched := range scheds {
			for _, pol := range policies {
				reps, err := r.Setup.RunMulti(mix.Make(), pol, sched)
				if err != nil {
					return nil, fmt.Errorf("%s %s/%s/%s: %w",
						r.Label, mix.Name, sched.Name(), pol.Name(), err)
				}
				cells = append(cells, TenantCell{
					Mix: mix.Name, Sched: sched.Name(), Policy: pol.Name(),
					Reports: reps,
				})
			}
		}
	}
	return cells, nil
}

// ArrivalTenant maps one tenant class to a concrete workload shape: a
// two-stage map/reduce job over Blocks input blocks of 64 MiB.
type ArrivalTenant struct {
	Class arrival.Class
	// Blocks is the per-job input size in 64 MiB blocks, already scaled.
	Blocks int
}

// job builds the seq-th submission of this tenant class. Inputs are shared
// per class (read-only); outputs are per-job so concurrent runs never
// collide in the DFS namespace.
func (t ArrivalTenant) job(seq int) *job.JobSpec {
	in := int64(t.Blocks) * 64 * device.MiB
	name := fmt.Sprintf("%s-%d", t.Class.Name, seq)
	return &job.JobSpec{
		Name:     name,
		Tenant:   t.Class.Name,
		Priority: t.Class.Priority,
		Stages: []*job.StageSpec{
			{ID: 0, Name: "map", InputFile: t.Class.Name + "/in",
				CPUSecondsPerTask: 0.15, ShuffleWriteBytes: in / 2},
			{ID: 1, Name: "reduce", NumTasks: 2 * t.Blocks, ShuffleFrom: []int{0},
				CPUSecondsPerTask: 0.1, OutputFile: name + "/out", OutputBytes: in / 4},
		},
	}
}

func (t ArrivalTenant) input() engine.Input {
	return engine.Input{Name: t.Class.Name + "/in", Size: int64(t.Blocks) * 64 * device.MiB}
}

// ArrivalScenario is one named arrival process of an arrival matrix.
type ArrivalScenario struct {
	Name string
	Proc arrival.Process
}

// ArrivalConfig is one provisioning configuration of an arrival matrix.
// Policies carry planner state (EWMAs, cooldown history), so Policy is a
// factory and every run gets a fresh instance.
type ArrivalConfig struct {
	Name    string
	Policy  func() autoscale.Policy
	Initial int
}

// ArrivalMatrix drives the open-loop elasticity comparison: one seeded
// arrival schedule per scenario, replayed against every provisioning
// config.
type ArrivalMatrix struct {
	Tenants   []ArrivalTenant
	Scenarios []ArrivalScenario
	Configs   []ArrivalConfig
	// Capacity is the physical fleet size (MaxNodes for every config).
	Capacity int
	// Horizon and MaxJobs bound each scenario's generated schedule.
	Horizon time.Duration
	MaxJobs int
	// SLOFactor is the p99 tolerance relative to the Baseline config's p99
	// on the same arrivals (0 selects 1.5); Baseline names that config.
	SLOFactor float64
	Baseline  string
	// Actuation knobs, 0 selecting the experiment defaults: a 10s planning
	// interval, floor of 2 nodes, 15s provision delay, 1m scale-down
	// cooldown.
	Interval          time.Duration
	MinNodes          int
	ProvisionDelay    time.Duration
	ScaleDownCooldown time.Duration
}

func (m *ArrivalMatrix) defaults() {
	if m.SLOFactor == 0 {
		m.SLOFactor = autoscaleSLOFactor
	}
	if m.Interval == 0 {
		m.Interval = 10 * time.Second
	}
	if m.MinNodes == 0 {
		m.MinNodes = 2
	}
	if m.ProvisionDelay == 0 {
		m.ProvisionDelay = 15 * time.Second
	}
	if m.ScaleDownCooldown == 0 {
		m.ScaleDownCooldown = time.Minute
	}
}

// ArrivalMatrix replays each scenario's seeded schedule against every
// provisioning config and assembles the per-tenant latency result.
func (r Runner) ArrivalMatrix(m ArrivalMatrix) (*AutoscaleResult, error) {
	m.defaults()
	classes := make([]arrival.Class, len(m.Tenants))
	byClass := make(map[string]ArrivalTenant, len(m.Tenants))
	for i, t := range m.Tenants {
		classes[i] = t.Class
		byClass[t.Class.Name] = t
	}
	baseline := -1
	for i, cfg := range m.Configs {
		if cfg.Name == m.Baseline {
			baseline = i
		}
	}
	if baseline < 0 {
		return nil, fmt.Errorf("%s: SLO baseline config %q not in the config list", r.Label, m.Baseline)
	}

	res := &AutoscaleResult{SLOFactor: m.SLOFactor, Baseline: m.Baseline}
	for _, sc := range m.Scenarios {
		// One schedule per scenario, replayed against every config — the
		// comparison isolates provisioning, not traffic noise.
		sched := arrival.Spec{
			Proc:    sc.Proc,
			Classes: classes,
			Seed:    r.Setup.Seed,
			Horizon: m.Horizon,
			MaxJobs: m.MaxJobs,
		}.Generate()
		if len(sched) == 0 {
			return nil, fmt.Errorf("%s: %s generated no arrivals", r.Label, sc.Name)
		}
		var rows []AutoscaleRow
		for _, cfg := range m.Configs {
			row, err := r.replayArrivals(sc.Name, cfg, m, sched, byClass)
			if err != nil {
				return nil, fmt.Errorf("%s %s/%s: %w", r.Label, sc.Name, cfg.Name, err)
			}
			rows = append(rows, row)
		}
		// SLO verdicts are relative to the baseline config on the same
		// arrivals.
		base := rows[baseline].P99Sec
		for i := range rows {
			rows[i].SLOMet = rows[i].P99Sec <= m.SLOFactor*base
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// replayArrivals replays one arrival schedule against one cluster config.
func (r Runner) replayArrivals(scenario string, cfg ArrivalConfig, m ArrivalMatrix,
	sched []arrival.Arrival, byClass map[string]ArrivalTenant) (AutoscaleRow, error) {

	s := r.Setup
	big := s
	big.Nodes = m.Capacity
	var inputs []engine.Input
	for _, t := range byClass {
		inputs = append(inputs, t.input())
	}
	// Map iteration order is random; keep the DFS layout deterministic.
	for i := 1; i < len(inputs); i++ {
		for j := i; j > 0 && inputs[j].Name < inputs[j-1].Name; j-- {
			inputs[j], inputs[j-1] = inputs[j-1], inputs[j]
		}
	}
	opts := engine.Options{
		Cluster:         big.clusterConfig(),
		BlockSize:       64 * device.MiB,
		Policy:          core.Default{},
		JobPolicy:       engine.Fair{},
		Inputs:          inputs,
		Trace:           s.Trace,
		TraceFormat:     s.TraceFormat,
		Metrics:         s.Metrics,
		MetricsInterval: s.MetricsInterval,
		Audit:           s.Audit,
		Shards:          s.Shards,
		Autoscale: &engine.AutoscaleConfig{
			Policy:            cfg.Policy(),
			Interval:          m.Interval,
			InitialNodes:      cfg.Initial,
			MinNodes:          m.MinNodes,
			MaxNodes:          m.Capacity,
			ProvisionDelay:    m.ProvisionDelay,
			ScaleDownCooldown: m.ScaleDownCooldown,
		},
	}
	e, err := engine.NewEngine(opts)
	if err != nil {
		return AutoscaleRow{}, err
	}
	handles := make([]*engine.JobHandle, len(sched))
	for i, a := range sched {
		t, ok := byClass[a.Class.Name]
		if !ok {
			return AutoscaleRow{}, fmt.Errorf("unknown tenant class %q", a.Class.Name)
		}
		if handles[i], err = e.SubmitAt(a.At, t.job(a.Seq)); err != nil {
			return AutoscaleRow{}, err
		}
	}
	if err := e.Wait(); err != nil {
		return AutoscaleRow{}, err
	}

	byName := map[string][]*engine.JobReport{}
	var all []time.Duration
	for _, h := range handles {
		rep, err := h.Report()
		if err != nil {
			return AutoscaleRow{}, err
		}
		byName[rep.Tenant] = append(byName[rep.Tenant], rep)
		all = append(all, rep.Runtime)
	}
	ar := e.AutoscaleReport()
	row := AutoscaleRow{
		Arrivals:   scenario,
		Config:     cfg.Name,
		Jobs:       len(sched),
		NodeHours:  ar.NodeSeconds / 3600,
		PeakNodes:  ar.PeakNodes,
		FinalNodes: ar.FinalNodes,
		ScaleUps:   ar.Activations,
		Drains:     ar.Drains,
		P99Sec:     metrics.Quantiles(all, 0.99)[0].Seconds(),
	}
	// Class rows in a fixed order (interactive before batch) for stable
	// rendering and goldens.
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		reps := byName[name]
		var lat []time.Duration
		var queue time.Duration
		for _, rep := range reps {
			lat = append(lat, rep.Runtime)
			queue += rep.QueueDelay
		}
		q := metrics.Quantiles(lat, 0.5, 0.95, 0.99)
		row.Classes = append(row.Classes, AutoscaleClassRow{
			Class:        name,
			Jobs:         len(reps),
			P50Sec:       q[0].Seconds(),
			P95Sec:       q[1].Seconds(),
			P99Sec:       q[2].Seconds(),
			MeanQueueSec: (queue / time.Duration(len(reps))).Seconds(),
		})
	}
	return row, nil
}
