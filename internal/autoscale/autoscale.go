// Package autoscale plans cluster sizes. It is the paper's MAPE-K loop
// lifted one level: where self-adaptive executors tune thread pools inside a
// node, the autoscaler tunes the number of nodes — monitor cluster signals,
// analyze demand against estimated per-node capacity, plan a target size,
// and leave actuation (provision delays, cooldowns, draining) to the engine.
//
// The package is a pure leaf: policies map a Snapshot of plain numbers to a
// target node count. Nothing here touches the simulator, so policies unit
// test with hand-built snapshots and stay deterministic by construction.
package autoscale

import (
	"fmt"
	"math"
	"time"
)

// Snapshot is the monitor's view of the cluster at one planning tick.
type Snapshot struct {
	// Now is the sim time of the tick.
	Now time.Duration
	// ActiveNodes counts nodes accepting work; DrainingNodes counts nodes
	// finishing their last tasks. Pending scale-ups are in PendingNodes.
	ActiveNodes, DrainingNodes, PendingNodes int
	// QueuedTasks is the number of runnable-but-unassigned tasks across all
	// jobs; RunningTasks the in-flight attempts.
	QueuedTasks, RunningTasks int
	// TotalSlots and BusySlots describe the active nodes' thread capacity.
	TotalSlots, BusySlots int
	// CompletedTasks is the cumulative task-completion counter (monotone);
	// the adaptive policy differentiates it into throughput.
	CompletedTasks int
	// QueuedJobs counts submitted-but-unstarted jobs (admission backlog).
	QueuedJobs int
}

// Utilization is the busy fraction of active slots (0 with no slots).
func (s Snapshot) Utilization() float64 {
	if s.TotalSlots <= 0 {
		return 0
	}
	return float64(s.BusySlots) / float64(s.TotalSlots)
}

// Policy plans a target node count from a snapshot. Target returns the
// desired total of active+pending nodes and a short reason for the trace;
// the engine clamps to [min,max] and applies cooldowns, so policies encode
// only the demand logic.
type Policy interface {
	Name() string
	Target(s Snapshot) (int, string)
}

// Static never changes the cluster: the target is whatever is provisioned.
// It is the experiment's baseline, not a real policy.
type Static struct{}

func (Static) Name() string { return "static" }
func (Static) Target(s Snapshot) (int, string) {
	return s.ActiveNodes + s.PendingNodes, "static"
}

// Reactive is the classic threshold rule: scale up when slot utilization or
// per-node queue backlog crosses the high watermark, down when both sit
// below the low watermark. It reacts to the symptom (a full queue) rather
// than the cause (demand vs. capacity), so it is prone to lagging bursts and
// oscillating on noise — exactly the behaviours the adaptive policy is
// meant to beat.
type Reactive struct {
	// HighUtil/LowUtil are slot-utilization watermarks (e.g. 0.85/0.30).
	HighUtil, LowUtil float64
	// HighQueue is the queued-tasks-per-node backlog that also triggers
	// scale-up, catching bursts that arrive faster than slots report busy.
	HighQueue float64
	// Step is how many nodes to add/remove per trigger (≥ 1).
	Step int
}

// DefaultReactive returns the watermark settings used by the experiments.
func DefaultReactive() *Reactive {
	return &Reactive{HighUtil: 0.85, LowUtil: 0.30, HighQueue: 8, Step: 1}
}

func (r *Reactive) Name() string { return "reactive" }

func (r *Reactive) Target(s Snapshot) (int, string) {
	step := r.Step
	if step < 1 {
		step = 1
	}
	cur := s.ActiveNodes + s.PendingNodes
	util := s.Utilization()
	perNode := math.Inf(1)
	if cur > 0 {
		perNode = float64(s.QueuedTasks) / float64(cur)
	}
	switch {
	case util > r.HighUtil || perNode > r.HighQueue:
		return cur + step, fmt.Sprintf("util %.2f queue/node %.1f above high watermark", util, perNode)
	case util < r.LowUtil && perNode < r.HighQueue/2 && s.QueuedJobs == 0:
		return cur - step, fmt.Sprintf("util %.2f below low watermark", util)
	default:
		return cur, "within watermarks"
	}
}

// Adaptive is the Daedalus-style self-adaptive planner. Monitor: differentiate
// the cumulative task-completion counter into a throughput estimate and keep
// an EWMA of per-node task-processing capacity µ (tasks/s/node). Analyze:
// demand is the observed completion rate plus the rate needed to drain the
// current backlog within DrainTarget. Plan: target = ⌈demand·headroom ⁄ µ⌉.
// The capacity estimate replaces the reactive policy's fixed watermarks —
// the plan scales with *how fast nodes actually process tasks*, so one
// configuration tracks both light and heavy task mixes.
type Adaptive struct {
	// Alpha is the EWMA weight for new capacity samples (0..1].
	Alpha float64
	// DrainTarget is how quickly the planner wants the current backlog
	// cleared; smaller values provision more aggressively.
	DrainTarget time.Duration
	// Headroom multiplies planned demand (e.g. 1.2 = 20% slack) so the
	// plan absorbs arrival noise without tripping every tick.
	Headroom float64
	// MinSamplePeriod guards the differentiator against noisy short ticks.
	MinSamplePeriod time.Duration

	// perNode is the EWMA of µ in tasks/s per node; 0 until the first
	// sample with observed completions.
	perNode float64
	// lastCompleted/lastAt is the previous tick's counter reading.
	lastCompleted int
	lastAt        time.Duration
	primed        bool
}

// DefaultAdaptive returns the planner settings used by the experiments.
func DefaultAdaptive() *Adaptive {
	return &Adaptive{
		Alpha:           0.3,
		DrainTarget:     2 * time.Minute,
		Headroom:        1.2,
		MinSamplePeriod: 5 * time.Second,
	}
}

func (a *Adaptive) Name() string { return "adaptive" }

// Capacity exposes the current µ estimate (tasks/s/node) for reports.
func (a *Adaptive) Capacity() float64 { return a.perNode }

func (a *Adaptive) Target(s Snapshot) (int, string) {
	cur := s.ActiveNodes + s.PendingNodes
	dt := s.Now - a.lastAt
	if !a.primed {
		a.primed = true
		a.lastCompleted, a.lastAt = s.CompletedTasks, s.Now
		return cur, "priming capacity estimate"
	}
	if dt < a.MinSamplePeriod {
		return cur, "sample period too short"
	}

	// Monitor: throughput over the tick, capacity per serving node.
	done := s.CompletedTasks - a.lastCompleted
	a.lastCompleted, a.lastAt = s.CompletedTasks, s.Now
	rate := float64(done) / dt.Seconds()
	serving := s.ActiveNodes + s.DrainingNodes
	if done > 0 && serving > 0 {
		sample := rate / float64(serving)
		if a.perNode == 0 {
			a.perNode = sample
		} else {
			a.perNode += a.Alpha * (sample - a.perNode)
		}
	}
	if a.perNode <= 0 {
		// No capacity estimate yet. If work is visibly waiting, grow —
		// otherwise we can deadlock a cold cluster at size zero demand.
		if s.QueuedTasks > 0 || s.QueuedJobs > 0 {
			return cur + 1, "no capacity estimate, backlog present"
		}
		return cur, "no capacity estimate"
	}

	// Analyze: sustaining demand = the rate work arrived at the cluster
	// over the tick (completions keep the queue level; backlog growth is
	// queue delta) plus draining the standing backlog within DrainTarget.
	backlog := float64(s.QueuedTasks)
	drain := a.DrainTarget.Seconds()
	if drain <= 0 {
		drain = 60
	}
	demand := rate + backlog/drain

	// Plan: nodes = demand / per-node capacity, with headroom.
	head := a.Headroom
	if head < 1 {
		head = 1
	}
	target := int(math.Ceil(demand * head / a.perNode))
	if target < 1 {
		target = 1
	}
	return target, fmt.Sprintf("µ=%.3f tasks/s/node demand=%.3f tasks/s backlog=%d",
		a.perNode, demand, s.QueuedTasks)
}
