package autoscale

import (
	"testing"
	"time"
)

func TestStatic(t *testing.T) {
	got, _ := Static{}.Target(Snapshot{ActiveNodes: 4, PendingNodes: 2, QueuedTasks: 1000})
	if got != 6 {
		t.Fatalf("static target = %d, want 6", got)
	}
}

func TestReactiveScaleUpOnUtilization(t *testing.T) {
	r := DefaultReactive()
	s := Snapshot{ActiveNodes: 4, TotalSlots: 16, BusySlots: 16}
	got, reason := r.Target(s)
	if got != 5 {
		t.Fatalf("target = %d (%s), want 5", got, reason)
	}
}

func TestReactiveScaleUpOnQueueBacklog(t *testing.T) {
	r := DefaultReactive()
	// Low utilization but a deep queue (tasks arrived faster than slots
	// could report busy): the backlog watermark must still trigger.
	s := Snapshot{ActiveNodes: 4, TotalSlots: 16, BusySlots: 4, QueuedTasks: 100}
	got, _ := r.Target(s)
	if got != 5 {
		t.Fatalf("target = %d, want 5", got)
	}
}

func TestReactiveScaleDown(t *testing.T) {
	r := DefaultReactive()
	s := Snapshot{ActiveNodes: 4, TotalSlots: 16, BusySlots: 2}
	got, _ := r.Target(s)
	if got != 3 {
		t.Fatalf("target = %d, want 3", got)
	}
}

func TestReactiveHoldsWithQueuedJobs(t *testing.T) {
	r := DefaultReactive()
	// Idle slots but jobs waiting for admission: do not shrink into a
	// backlog that has not materialized as tasks yet.
	s := Snapshot{ActiveNodes: 4, TotalSlots: 16, BusySlots: 1, QueuedJobs: 3}
	got, _ := r.Target(s)
	if got != 4 {
		t.Fatalf("target = %d, want 4 (hold)", got)
	}
}

func TestReactiveCountsPending(t *testing.T) {
	r := DefaultReactive()
	s := Snapshot{ActiveNodes: 4, PendingNodes: 2, TotalSlots: 16, BusySlots: 16}
	got, _ := r.Target(s)
	if got != 7 {
		t.Fatalf("target = %d, want 7 (pending nodes count toward current)", got)
	}
}

// feed advances the adaptive planner through one tick.
func feed(a *Adaptive, at time.Duration, s Snapshot) (int, string) {
	s.Now = at
	return a.Target(s)
}

func TestAdaptiveEstimatesCapacityAndPlans(t *testing.T) {
	a := DefaultAdaptive()
	// Priming tick.
	if got, _ := feed(a, 0, Snapshot{ActiveNodes: 2}); got != 2 {
		t.Fatalf("priming target = %d, want 2", got)
	}
	// 60 tasks complete in 30s on 2 nodes → µ = 1 task/s/node.
	got, _ := feed(a, 30*time.Second, Snapshot{ActiveNodes: 2, CompletedTasks: 60})
	if a.Capacity() != 1 {
		t.Fatalf("µ = %v, want 1", a.Capacity())
	}
	// Demand = 2 tasks/s (no backlog) × 1.2 headroom ÷ 1 = ⌈2.4⌉ = 3.
	if got != 3 {
		t.Fatalf("target = %d, want 3", got)
	}
	// Same throughput plus a 240-task backlog: +240/120s = 2 tasks/s more
	// demand → ⌈(2+2)·1.2⌉ = 5.
	got, _ = feed(a, 60*time.Second, Snapshot{ActiveNodes: 2, CompletedTasks: 120, QueuedTasks: 240})
	if got != 5 {
		t.Fatalf("target with backlog = %d, want 5", got)
	}
}

func TestAdaptiveScaleDownWhenIdle(t *testing.T) {
	a := DefaultAdaptive()
	feed(a, 0, Snapshot{ActiveNodes: 8})
	feed(a, 30*time.Second, Snapshot{ActiveNodes: 8, CompletedTasks: 240}) // µ = 1
	// Load drops to 0.5 tasks/s total with no backlog: ⌈0.5·1.2⌉ = 1.
	got, _ := feed(a, 90*time.Second, Snapshot{ActiveNodes: 8, CompletedTasks: 270})
	if got != 1 {
		t.Fatalf("idle target = %d, want 1", got)
	}
}

func TestAdaptiveGrowsWithoutEstimateWhenBacklogged(t *testing.T) {
	a := DefaultAdaptive()
	feed(a, 0, Snapshot{ActiveNodes: 1})
	// No completions yet but tasks queued: must grow rather than hold at a
	// size that may never complete anything.
	got, reason := feed(a, 30*time.Second, Snapshot{ActiveNodes: 1, QueuedTasks: 50})
	if got != 2 {
		t.Fatalf("target = %d (%s), want 2", got, reason)
	}
}

func TestAdaptiveShortTickHolds(t *testing.T) {
	a := DefaultAdaptive()
	feed(a, 0, Snapshot{ActiveNodes: 4})
	got, _ := feed(a, time.Second, Snapshot{ActiveNodes: 4, CompletedTasks: 1000})
	if got != 4 {
		t.Fatalf("short-tick target = %d, want 4 (hold)", got)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	run := func() []int {
		a := DefaultAdaptive()
		var out []int
		snaps := []Snapshot{
			{ActiveNodes: 2},
			{ActiveNodes: 2, CompletedTasks: 40, QueuedTasks: 10},
			{ActiveNodes: 3, CompletedTasks: 100, QueuedTasks: 80},
			{ActiveNodes: 5, CompletedTasks: 300},
		}
		for i, s := range snaps {
			got, _ := feed(a, time.Duration(i)*30*time.Second, s)
			out = append(out, got)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestUtilizationEmpty(t *testing.T) {
	if (Snapshot{}).Utilization() != 0 {
		t.Fatal("zero-slot snapshot should have zero utilization")
	}
}
