// Package cluster assembles simulated nodes — CPU, disk and NIC devices plus
// node-level accounting (CPU busy and iowait meters, mirroring what the
// paper collects with mpstat) — into a cluster with a control-plane latency
// between driver and executors.
package cluster

import (
	"fmt"
	"time"

	"sae/internal/device"
	"sae/internal/psres"
	"sae/internal/sim"
)

// Config describes a homogeneous cluster (per-node heterogeneity comes from
// the variability model, as on the real DAS-5).
type Config struct {
	// Nodes is the number of worker nodes.
	Nodes int
	// CPU is the per-node CPU spec.
	CPU device.CPUSpec
	// Disk is the per-node storage device spec.
	Disk device.DiskSpec
	// NetBandwidth is the per-node NIC bandwidth in bytes/second.
	NetBandwidth float64
	// Variability assigns per-node disk speed factors.
	Variability device.VariabilityModel
	// ControlLatency is the one-way latency of control-plane messages
	// (task launch, completion, thread-count updates).
	ControlLatency time.Duration
}

// DAS5 returns the paper's evaluation setup: nodes with 32 virtual cores,
// 7'200 rpm HDDs and a fast (never-bottleneck) network.
func DAS5(nodes int) Config {
	return Config{
		Nodes:          nodes,
		CPU:            device.DAS5CPU(),
		Disk:           device.HDD7200(),
		NetBandwidth:   1.2 * float64(device.GiB),
		Variability:    device.DefaultVariability(1),
		ControlLatency: time.Millisecond,
	}
}

// Cluster is a set of simulated nodes sharing one kernel.
type Cluster struct {
	k     *sim.Kernel
	cfg   Config
	nodes []*Node
}

// New builds the cluster's nodes and devices on kernel k.
func New(k *sim.Kernel, cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("cluster: need at least one node, got %d", cfg.Nodes))
	}
	c := &Cluster{k: k, cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, newNode(k, i, cfg))
	}
	return c
}

// NewSharded builds the cluster's nodes across several kernels: node i and
// all its devices live on ks[shardOf(i)], so node-local work (disk and CPU
// events, usage metering) advances on the owning shard. ks[0] hosts the
// control plane and is what Kernel() returns.
func NewSharded(ks []*sim.Kernel, shardOf func(int) int, cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("cluster: need at least one node, got %d", cfg.Nodes))
	}
	if len(ks) == 0 {
		panic("cluster: sharded cluster needs at least one kernel")
	}
	c := &Cluster{k: ks[0], cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		s := shardOf(i)
		if s < 0 || s >= len(ks) {
			panic(fmt.Sprintf("cluster: node %d assigned to shard %d of %d", i, s, len(ks)))
		}
		c.nodes = append(c.nodes, newNode(ks[s], i, cfg))
	}
	return c
}

// Kernel returns the simulation kernel hosting the control plane.
func (c *Cluster) Kernel() *sim.Kernel { return c.k }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// ControlLatency returns the configured control-plane message latency.
func (c *Cluster) ControlLatency() time.Duration { return c.cfg.ControlLatency }

// Transfer moves bytes from node src to node dst over the network, blocking
// p until done. Same-node transfers are free. The link cost is charged on
// the receiver NIC (the simplification is safe because shuffle volumes never
// saturate the paper's 10G+ fabric).
func (c *Cluster) Transfer(p *sim.Proc, src, dst int, bytes int64) {
	if src == dst || bytes <= 0 {
		return
	}
	c.nodes[dst].NIC.Transfer(p, bytes)
}

// Node is one simulated worker machine.
type Node struct {
	ID          int
	Name        string
	SpeedFactor float64
	CPU         *device.CPU
	Disk        *device.Disk
	NIC         *device.NIC

	meter *usageMeter
}

func newNode(k *sim.Kernel, id int, cfg Config) *Node {
	n := &Node{
		ID:          id,
		Name:        fmt.Sprintf("node%03d", 303+id), // DAS-5 naming, as in Fig. 3
		SpeedFactor: cfg.Variability.Factor(id),
	}
	n.meter = newUsageMeter(k, cfg.CPU.VirtualCores)
	n.CPU = device.NewCPU(k, cfg.CPU, n.meter.setCPUActive)
	n.Disk = device.NewDisk(k, cfg.Disk, n.SpeedFactor, n.meter.setDiskActive)
	n.NIC = device.NewNIC(k, n.Name+"/nic", cfg.NetBandwidth)
	return n
}

// Usage is a snapshot of cumulative node usage integrals. Differences of two
// snapshots over a window yield mpstat-style percentages.
type Usage struct {
	At time.Duration
	// BusyCoreSec is ∫ min(runnable threads, vcores) dt.
	BusyCoreSec float64
	// IowaitCoreSec is ∫ idle-cores-while-disk-busy dt — the mpstat
	// %iowait analogue.
	IowaitCoreSec float64
}

// Usage returns the node's cumulative usage integrals.
func (n *Node) Usage() Usage { return n.meter.snapshot() }

// SetThrottle degrades the node's disk and CPU to 1/factor of their nominal
// service rates (factor 1 restores nominal). The gray-failure hook: the node
// stays alive and reachable, it just serves slowly.
func (n *Node) SetThrottle(factor float64) {
	n.Disk.SetThrottle(factor)
	n.CPU.SetThrottle(factor)
}

// CPUPercent returns the average CPU utilization (0-100) between snapshots.
func CPUPercent(a, b Usage, vcores int) float64 {
	w := (b.At - a.At).Seconds()
	if w <= 0 {
		return 0
	}
	return 100 * (b.BusyCoreSec - a.BusyCoreSec) / (w * float64(vcores))
}

// IowaitPercent returns the average iowait (0-100) between snapshots.
func IowaitPercent(a, b Usage, vcores int) float64 {
	w := (b.At - a.At).Seconds()
	if w <= 0 {
		return 0
	}
	return 100 * (b.IowaitCoreSec - a.IowaitCoreSec) / (w * float64(vcores))
}

// DiskUtilization returns the fraction of time (0-100) the node's disk was
// busy between two device snapshots.
func DiskUtilization(a, b psres.Stats) float64 {
	return 100 * psres.UtilizationBetween(a, b)
}

// usageMeter integrates node-level CPU-busy and iowait time, updated
// event-exactly via device active-count callbacks.
type usageMeter struct {
	k          *sim.Kernel
	vcores     int
	cpuActive  int
	diskActive int
	last       time.Duration
	busy       float64
	iowait     float64
}

func newUsageMeter(k *sim.Kernel, vcores int) *usageMeter {
	return &usageMeter{k: k, vcores: vcores}
}

func (m *usageMeter) advance() {
	now := m.k.Now()
	dt := (now - m.last).Seconds()
	if dt <= 0 {
		m.last = now
		return
	}
	busyCores := m.cpuActive
	if busyCores > m.vcores {
		busyCores = m.vcores
	}
	m.busy += dt * float64(busyCores)
	if m.diskActive > 0 {
		m.iowait += dt * float64(m.vcores-busyCores)
	}
	m.last = now
}

func (m *usageMeter) setCPUActive(n int) {
	m.advance()
	m.cpuActive = n
}

func (m *usageMeter) setDiskActive(n int) {
	m.advance()
	m.diskActive = n
}

func (m *usageMeter) snapshot() Usage {
	m.advance()
	return Usage{At: m.k.Now(), BusyCoreSec: m.busy, IowaitCoreSec: m.iowait}
}
