package cluster

import (
	"math"
	"testing"
	"time"

	"sae/internal/device"
	"sae/internal/sim"
)

func testConfig(nodes int) Config {
	cfg := DAS5(nodes)
	cfg.Variability = device.Uniform()
	return cfg
}

func TestNewClusterNodes(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig(4))
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.Node(0).Name != "node303" || c.Node(3).Name != "node306" {
		t.Fatalf("unexpected node names %q %q", c.Node(0).Name, c.Node(3).Name)
	}
	for _, n := range c.Nodes() {
		if n.SpeedFactor != 1 {
			t.Fatalf("uniform variability gave factor %v", n.SpeedFactor)
		}
	}
}

func TestTransferLocalIsFree(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig(2))
	k.Go("t", func(p *sim.Proc) {
		c.Transfer(p, 0, 0, 1<<30)
	})
	k.Run()
	if k.Now() != 0 {
		t.Fatalf("local transfer took %v", k.Now())
	}
}

func TestTransferRemoteChargesReceiverNIC(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig(2)
	cfg.NetBandwidth = 1000
	c := New(k, cfg)
	k.Go("t", func(p *sim.Proc) { c.Transfer(p, 0, 1, 500) })
	k.Run()
	if math.Abs(k.Now().Seconds()-0.5) > 1e-6 {
		t.Fatalf("remote transfer took %v, want 0.5s", k.Now())
	}
	if c.Node(1).NIC.BytesMoved() != 500 {
		t.Fatalf("receiver NIC moved %d", c.Node(1).NIC.BytesMoved())
	}
	if c.Node(0).NIC.BytesMoved() != 0 {
		t.Fatalf("sender NIC charged %d", c.Node(0).NIC.BytesMoved())
	}
}

func TestCPUPercent(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig(1))
	n := c.Node(0)
	start := n.Usage()
	// 8 threads computing 10s each on 32 vcores: 25% busy for 10s.
	for i := 0; i < 8; i++ {
		k.Go("w", func(p *sim.Proc) { n.CPU.Compute(p, 10) })
	}
	k.Run()
	end := n.Usage()
	got := CPUPercent(start, end, 32)
	if math.Abs(got-25) > 0.01 {
		t.Fatalf("CPU%% = %v, want 25", got)
	}
}

func TestIowaitPercent(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig(1))
	n := c.Node(0)
	start := n.Usage()
	// One thread reads from disk while the CPU is otherwise idle: iowait
	// should cover (vcores-0)/vcores of the read window.
	k.Go("io", func(p *sim.Proc) { n.Disk.Read(p, 100*device.MiB) })
	k.Run()
	end := n.Usage()
	got := IowaitPercent(start, end, 32)
	if math.Abs(got-100) > 0.01 {
		t.Fatalf("iowait%% = %v, want 100 (all cores idle, disk busy)", got)
	}
}

func TestIowaitZeroWhenCPUFull(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig(1))
	n := c.Node(0)
	start := n.Usage()
	// Saturate all 32 vcores for the whole disk-read window.
	for i := 0; i < 32; i++ {
		k.Go("cpu", func(p *sim.Proc) { n.CPU.Compute(p, 100) })
	}
	k.Go("io", func(p *sim.Proc) { n.Disk.Read(p, 10*device.MiB) })
	k.Run()
	end := n.Usage()
	if got := IowaitPercent(start, end, 32); got > 0.01 {
		t.Fatalf("iowait%% = %v, want 0 when CPU saturated", got)
	}
}

func TestDiskUtilizationWindow(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig(1))
	n := c.Node(0)
	a := n.Disk.Snapshot()
	var b, cSnap = a, a
	k.Go("io", func(p *sim.Proc) {
		n.Disk.Read(p, 115*device.MiB) // ~0.5s on the HDD model
		b = n.Disk.Snapshot()
		p.Sleep(time.Duration(b.At)) // idle as long as we were busy
		cSnap = n.Disk.Snapshot()
	})
	k.Run()
	if got := DiskUtilization(a, b); math.Abs(got-100) > 0.01 {
		t.Fatalf("busy window utilization = %v, want 100", got)
	}
	if got := DiskUtilization(b, cSnap); got > 0.01 {
		t.Fatalf("idle window utilization = %v, want 0", got)
	}
}

func TestVariabilityAppliesToDisk(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig(8)
	cfg.Variability = device.DefaultVariability(3)
	c := New(k, cfg)
	distinct := map[float64]bool{}
	for _, n := range c.Nodes() {
		distinct[n.SpeedFactor] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("expected varied speed factors, got %d distinct", len(distinct))
	}
}
