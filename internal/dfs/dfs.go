// Package dfs is an HDFS-like distributed file system model: files are split
// into fixed-size blocks, each replicated on a set of nodes. The engine uses
// it for data ingestion (with locality-aware reads) and output writing. As
// in the paper's setup, running with replication equal to the cluster size
// makes every read node-local.
package dfs

import (
	"fmt"
	"hash/crc32"
	"sort"

	"sae/internal/cluster"
	"sae/internal/sim"
)

// DefaultBlockSize matches HDFS 2.x (128 MiB).
const DefaultBlockSize = 128 << 20

// FS is a distributed file system namespace over a cluster.
type FS struct {
	cluster   *cluster.Cluster
	blockSize int64
	files     map[string]*File
	fault     FaultModel
}

// FaultModel lets the engine inject gray failures into block reads without
// the file system knowing anything about chaos plans. Both hooks may be nil
// (no faults). They must be pure functions of their arguments for the run to
// stay deterministic.
type FaultModel struct {
	// Unreachable reports whether a node cannot serve remote reads right
	// now (dead, or network-partitioned).
	Unreachable func(node int) bool
	// Rotten reports whether the replica of the block with checksum sum
	// stored on node is bit-rotten: its data will fail verification. Rot
	// is permanent per (block, node) — re-reads fail identically.
	Rotten func(sum uint32, node int) bool
}

// SetFaultModel installs the gray-failure hooks consulted by replica
// selection and checksum verification.
func (fs *FS) SetFaultModel(m FaultModel) { fs.fault = m }

func (fs *FS) unreachable(node int) bool {
	return fs.fault.Unreachable != nil && fs.fault.Unreachable(node)
}

func (fs *FS) rotten(sum uint32, node int) bool {
	return fs.fault.Rotten != nil && fs.fault.Rotten(sum, node)
}

// New creates an empty file system with the given block size (0 selects
// DefaultBlockSize).
func New(c *cluster.Cluster, blockSize int64) *FS {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 0 {
		panic(fmt.Sprintf("dfs: negative block size %d", blockSize))
	}
	return &FS{cluster: c, blockSize: blockSize, files: make(map[string]*File)}
}

// BlockSize returns the file system block size.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// File is a stored file with its block layout.
type File struct {
	Name   string
	Size   int64
	Blocks []Block
}

// Block is one replicated chunk of a file.
type Block struct {
	Index    int
	Size     int64
	Replicas []int // node IDs holding a copy
	// Sum is the block's CRC32 (IEEE) checksum, recorded at creation.
	// Readers verify the data they fetch against it and fail over to
	// another replica on mismatch, as HDFS does.
	Sum uint32
}

// blockSum derives a block's CRC32 from its identity. Block payloads are not
// materialized in the simulation, so the checksum covers the metadata that
// uniquely names the data; what matters for the protocol is that it is a
// stable per-block value that a rotten replica fails to reproduce.
func blockSum(name string, index int, size int64) uint32 {
	return crc32.ChecksumIEEE([]byte(fmt.Sprintf("%s#%d#%d", name, index, size)))
}

// LocalTo reports whether the block has a replica on node.
func (b Block) LocalTo(node int) bool {
	for _, r := range b.Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// ReplicasByDistance returns the block's replicas ordered by preference for
// the given reader: a local replica first, then ascending node-ID distance
// (the flat-topology stand-in for rack locality), ties broken by lower ID.
func (b Block) ReplicasByDistance(reader int) []int {
	out := append([]int(nil), b.Replicas...)
	dist := func(n int) int {
		if n >= reader {
			return n - reader
		}
		return reader - n
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := dist(out[i]), dist(out[j])
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

// Create materializes a file's metadata: size split into blocks, each
// replicated on `replication` nodes chosen round-robin (HDFS default
// placement approximated deterministically). It does not charge any I/O —
// use it for pre-loaded input data.
func (fs *FS) Create(name string, size int64, replication int) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if size < 0 {
		return nil, fmt.Errorf("dfs: negative size %d for %q", size, name)
	}
	n := fs.cluster.Size()
	if replication <= 0 || replication > n {
		replication = n
	}
	f := &File{Name: name, Size: size}
	for off, idx := int64(0), 0; off < size; off, idx = off+fs.blockSize, idx+1 {
		bs := fs.blockSize
		if rem := size - off; rem < bs {
			bs = rem
		}
		replicas := make([]int, 0, replication)
		for r := 0; r < replication; r++ {
			replicas = append(replicas, (idx+r)%n)
		}
		sort.Ints(replicas)
		f.Blocks = append(f.Blocks, Block{
			Index: idx, Size: bs, Replicas: replicas,
			Sum: blockSum(name, idx, bs),
		})
	}
	fs.files[name] = f
	return f, nil
}

// Open returns the file's metadata.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	return f, nil
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Remove deletes a file's metadata.
func (fs *FS) Remove(name string) {
	delete(fs.files, name)
}

// Files returns the names of all files, sorted.
func (fs *FS) Files() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PickReplica returns the reader's preferred live replica of b: the nearest
// replica (local first, then ascending node-ID distance) that is not in the
// bad set and, for remote replicas, not unreachable under the fault model.
// A local replica is always tried — its disk needs no network. ok is false
// when every replica is bad or unreachable.
func (fs *FS) PickReplica(b Block, reader int, bad map[int]bool) (src int, ok bool) {
	for _, r := range b.ReplicasByDistance(reader) {
		if bad[r] {
			continue
		}
		if r != reader && fs.unreachable(r) {
			continue
		}
		return r, true
	}
	return -1, false
}

// ReadSum returns the checksum the replica on node actually serves for b:
// the block's recorded Sum, or a corrupted value if the replica is rotten.
// Callers compare against b.Sum to detect corruption.
func (fs *FS) ReadSum(b Block, node int) uint32 {
	if fs.rotten(b.Sum, node) {
		return b.Sum ^ 0xdeadbeef
	}
	return b.Sum
}

// ReadBlock reads one block from node `reader`, blocking p until verified
// bytes are available. It tries replicas nearest-first (local replica, then
// ascending node-ID distance), skipping unreachable nodes; each attempt
// charges the source disk (and the network, for remote replicas) before the
// checksum is verified, so corrupted reads cost real I/O, exactly as in
// HDFS. It reports whether the winning read was node-local, and fails only
// when every replica is unreachable or rotten.
func (fs *FS) ReadBlock(p *sim.Proc, reader int, b Block) (local bool, err error) {
	bad := make(map[int]bool, len(b.Replicas))
	for {
		src, ok := fs.PickReplica(b, reader, bad)
		if !ok {
			return false, fmt.Errorf("dfs: block %d: all %d replicas unreachable or corrupt", b.Index, len(b.Replicas))
		}
		fs.cluster.Node(src).Disk.Read(p, b.Size)
		fs.cluster.Transfer(p, src, reader, b.Size)
		if fs.ReadSum(b, src) == b.Sum {
			return src == reader, nil
		}
		bad[src] = true
	}
}

// Write appends bytes to (or creates) an output file from node writer,
// blocking p for the local disk write. Block metadata is recorded with the
// writer as primary replica. Replication traffic is not charged: the paper's
// I/O accounting (Spark task metrics) counts task-level bytes, not HDFS
// pipeline copies.
func (fs *FS) Write(p *sim.Proc, writer int, name string, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("dfs: negative write %d", bytes))
	}
	f, ok := fs.files[name]
	if !ok {
		f = &File{Name: name}
		fs.files[name] = f
	}
	fs.cluster.Node(writer).Disk.Write(p, bytes)
	f.Blocks = append(f.Blocks, Block{
		Index: len(f.Blocks), Size: bytes, Replicas: []int{writer},
		Sum: blockSum(name, len(f.Blocks), bytes),
	})
	f.Size += bytes
}

// Splits partitions a file's blocks into n contiguous input splits of
// near-equal block count, one per task, in block order. If the file has
// fewer blocks than n, some splits are empty.
func Splits(f *File, n int) [][]Block {
	if n <= 0 {
		panic(fmt.Sprintf("dfs: non-positive split count %d", n))
	}
	out := make([][]Block, n)
	for i, b := range f.Blocks {
		s := i * n / len(f.Blocks)
		out[s] = append(out[s], b)
	}
	return out
}
