// Package dfs is an HDFS-like distributed file system model: files are split
// into fixed-size blocks, each replicated on a set of nodes. The engine uses
// it for data ingestion (with locality-aware reads) and output writing. As
// in the paper's setup, running with replication equal to the cluster size
// makes every read node-local.
package dfs

import (
	"fmt"
	"sort"

	"sae/internal/cluster"
	"sae/internal/sim"
)

// DefaultBlockSize matches HDFS 2.x (128 MiB).
const DefaultBlockSize = 128 << 20

// FS is a distributed file system namespace over a cluster.
type FS struct {
	cluster   *cluster.Cluster
	blockSize int64
	files     map[string]*File
}

// New creates an empty file system with the given block size (0 selects
// DefaultBlockSize).
func New(c *cluster.Cluster, blockSize int64) *FS {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 0 {
		panic(fmt.Sprintf("dfs: negative block size %d", blockSize))
	}
	return &FS{cluster: c, blockSize: blockSize, files: make(map[string]*File)}
}

// BlockSize returns the file system block size.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// File is a stored file with its block layout.
type File struct {
	Name   string
	Size   int64
	Blocks []Block
}

// Block is one replicated chunk of a file.
type Block struct {
	Index    int
	Size     int64
	Replicas []int // node IDs holding a copy
}

// LocalTo reports whether the block has a replica on node.
func (b Block) LocalTo(node int) bool {
	for _, r := range b.Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// Create materializes a file's metadata: size split into blocks, each
// replicated on `replication` nodes chosen round-robin (HDFS default
// placement approximated deterministically). It does not charge any I/O —
// use it for pre-loaded input data.
func (fs *FS) Create(name string, size int64, replication int) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if size < 0 {
		return nil, fmt.Errorf("dfs: negative size %d for %q", size, name)
	}
	n := fs.cluster.Size()
	if replication <= 0 || replication > n {
		replication = n
	}
	f := &File{Name: name, Size: size}
	for off, idx := int64(0), 0; off < size; off, idx = off+fs.blockSize, idx+1 {
		bs := fs.blockSize
		if rem := size - off; rem < bs {
			bs = rem
		}
		replicas := make([]int, 0, replication)
		for r := 0; r < replication; r++ {
			replicas = append(replicas, (idx+r)%n)
		}
		sort.Ints(replicas)
		f.Blocks = append(f.Blocks, Block{Index: idx, Size: bs, Replicas: replicas})
	}
	fs.files[name] = f
	return f, nil
}

// Open returns the file's metadata.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	return f, nil
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Remove deletes a file's metadata.
func (fs *FS) Remove(name string) {
	delete(fs.files, name)
}

// Files returns the names of all files, sorted.
func (fs *FS) Files() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ReadBlock reads one block from node `reader`, blocking p until the bytes
// are available. A local replica is served from the node's own disk;
// otherwise the closest replica's disk is read and the data crosses the
// network. It reports whether the read was node-local.
func (fs *FS) ReadBlock(p *sim.Proc, reader int, b Block) (local bool) {
	if b.LocalTo(reader) {
		fs.cluster.Node(reader).Disk.Read(p, b.Size)
		return true
	}
	src := b.Replicas[reader%len(b.Replicas)]
	fs.cluster.Node(src).Disk.Read(p, b.Size)
	fs.cluster.Transfer(p, src, reader, b.Size)
	return false
}

// Write appends bytes to (or creates) an output file from node writer,
// blocking p for the local disk write. Block metadata is recorded with the
// writer as primary replica. Replication traffic is not charged: the paper's
// I/O accounting (Spark task metrics) counts task-level bytes, not HDFS
// pipeline copies.
func (fs *FS) Write(p *sim.Proc, writer int, name string, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("dfs: negative write %d", bytes))
	}
	f, ok := fs.files[name]
	if !ok {
		f = &File{Name: name}
		fs.files[name] = f
	}
	fs.cluster.Node(writer).Disk.Write(p, bytes)
	f.Blocks = append(f.Blocks, Block{Index: len(f.Blocks), Size: bytes, Replicas: []int{writer}})
	f.Size += bytes
}

// Splits partitions a file's blocks into n contiguous input splits of
// near-equal block count, one per task, in block order. If the file has
// fewer blocks than n, some splits are empty.
func Splits(f *File, n int) [][]Block {
	if n <= 0 {
		panic(fmt.Sprintf("dfs: non-positive split count %d", n))
	}
	out := make([][]Block, n)
	for i, b := range f.Blocks {
		s := i * n / len(f.Blocks)
		out[s] = append(out[s], b)
	}
	return out
}
