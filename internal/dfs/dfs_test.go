package dfs

import (
	"testing"
	"testing/quick"

	"sae/internal/cluster"
	"sae/internal/device"
	"sae/internal/sim"
)

func testCluster(k *sim.Kernel, nodes int) *cluster.Cluster {
	cfg := cluster.DAS5(nodes)
	cfg.Variability = device.Uniform()
	return cluster.New(k, cfg)
}

func TestCreateBlocks(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k, 4)
	fs := New(c, 100)
	f, err := fs.Create("in", 250, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	if f.Blocks[2].Size != 50 {
		t.Fatalf("last block size = %d, want 50", f.Blocks[2].Size)
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 4 {
			t.Fatalf("replicas = %d, want 4", len(b.Replicas))
		}
	}
}

func TestCreateDuplicate(t *testing.T) {
	k := sim.NewKernel()
	fs := New(testCluster(k, 2), 0)
	if _, err := fs.Create("x", 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("x", 10, 1); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestOpenMissing(t *testing.T) {
	k := sim.NewKernel()
	fs := New(testCluster(k, 2), 0)
	if _, err := fs.Open("nope"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestFullReplicationIsAlwaysLocal(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k, 4)
	fs := New(c, device.MiB)
	f, _ := fs.Create("in", 16*device.MiB, 4)
	for node := 0; node < 4; node++ {
		for _, b := range f.Blocks {
			if !b.LocalTo(node) {
				t.Fatalf("block %d not local to node %d with full replication", b.Index, node)
			}
		}
	}
}

func TestReadBlockLocalVsRemote(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k, 4)
	fs := New(c, device.MiB)
	f, _ := fs.Create("in", 2*device.MiB, 1) // replication 1
	var local0, local1 bool
	k.Go("r", func(p *sim.Proc) {
		local0, _ = fs.ReadBlock(p, f.Blocks[0].Replicas[0], f.Blocks[0])
		other := (f.Blocks[0].Replicas[0] + 1) % 4
		local1, _ = fs.ReadBlock(p, other, f.Blocks[0])
	})
	k.Run()
	if !local0 {
		t.Fatal("read on replica node was not local")
	}
	if local1 {
		t.Fatal("read on non-replica node claimed local")
	}
}

func TestRemoteReadChargesNetwork(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k, 2)
	fs := New(c, device.MiB)
	f, _ := fs.Create("in", device.MiB, 1)
	src := f.Blocks[0].Replicas[0]
	dst := 1 - src
	k.Go("r", func(p *sim.Proc) { fs.ReadBlock(p, dst, f.Blocks[0]) })
	k.Run()
	if c.Node(dst).NIC.BytesMoved() != device.MiB {
		t.Fatalf("NIC moved %d, want %d", c.Node(dst).NIC.BytesMoved(), device.MiB)
	}
	r, _ := c.Node(src).Disk.Counters()
	if r != device.MiB {
		t.Fatalf("source disk read %d", r)
	}
}

func TestReplicasByDistancePrefersLocalThenClosest(t *testing.T) {
	b := Block{Replicas: []int{0, 2, 5}}
	got := b.ReplicasByDistance(2)
	if got[0] != 2 || got[1] != 0 || got[2] != 5 {
		t.Fatalf("order from node 2 = %v, want [2 0 5]", got)
	}
	got = b.ReplicasByDistance(4)
	if got[0] != 5 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("order from node 4 = %v, want [5 2 0]", got)
	}
	// Equidistant replicas break ties by lower ID.
	got = Block{Replicas: []int{3, 1}}.ReplicasByDistance(2)
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("tie order = %v, want [1 3]", got)
	}
}

func TestReadBlockSkipsUnreachableReplica(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k, 4)
	fs := New(c, device.MiB)
	f, _ := fs.Create("in", device.MiB, 2)
	b := f.Blocks[0]
	reader := 3 // no local replica: block 0 lives on nodes 0 and 1
	if b.LocalTo(reader) {
		t.Fatal("test setup: reader should be remote")
	}
	near := b.ReplicasByDistance(reader)[0]
	fs.SetFaultModel(FaultModel{Unreachable: func(n int) bool { return n == near }})
	var local bool
	var err error
	k.Go("r", func(p *sim.Proc) { local, err = fs.ReadBlock(p, reader, b) })
	k.Run()
	if err != nil || local {
		t.Fatalf("local=%v err=%v", local, err)
	}
	far := b.ReplicasByDistance(reader)[1]
	if r, _ := c.Node(far).Disk.Counters(); r != b.Size {
		t.Fatalf("fallback replica read %d bytes, want %d", r, b.Size)
	}
	if r, _ := c.Node(near).Disk.Counters(); r != 0 {
		t.Fatalf("unreachable replica served %d bytes", r)
	}
}

func TestReadBlockChecksumFailover(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k, 3)
	fs := New(c, device.MiB)
	f, _ := fs.Create("in", device.MiB, 3)
	b := f.Blocks[0]
	// The local replica is rotten: the read must charge the wasted local
	// I/O, then fail over to the next-closest replica.
	fs.SetFaultModel(FaultModel{Rotten: func(sum uint32, n int) bool { return n == 0 }})
	var local bool
	var err error
	k.Go("r", func(p *sim.Proc) { local, err = fs.ReadBlock(p, 0, b) })
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if local {
		t.Fatal("rotten local replica still counted as local read")
	}
	if r, _ := c.Node(0).Disk.Counters(); r != b.Size {
		t.Fatalf("rotten replica charged %d bytes, want %d", r, b.Size)
	}
	if r, _ := c.Node(1).Disk.Counters(); r != b.Size {
		t.Fatalf("failover replica read %d bytes, want %d", r, b.Size)
	}
}

func TestReadBlockAllReplicasRottenFails(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k, 2)
	fs := New(c, device.MiB)
	f, _ := fs.Create("in", device.MiB, 2)
	fs.SetFaultModel(FaultModel{Rotten: func(uint32, int) bool { return true }})
	var err error
	k.Go("r", func(p *sim.Proc) { _, err = fs.ReadBlock(p, 0, f.Blocks[0]) })
	k.Run()
	if err == nil {
		t.Fatal("read of fully-rotten block succeeded")
	}
}

func TestBlockSumsStableAndDistinct(t *testing.T) {
	k := sim.NewKernel()
	fs := New(testCluster(k, 2), 100)
	f, _ := fs.Create("in", 250, 1)
	k2 := sim.NewKernel()
	fs2 := New(testCluster(k2, 2), 100)
	f2, _ := fs2.Create("in", 250, 1)
	for i := range f.Blocks {
		if f.Blocks[i].Sum == 0 {
			t.Fatalf("block %d has zero checksum", i)
		}
		if f.Blocks[i].Sum != f2.Blocks[i].Sum {
			t.Fatalf("block %d checksum not deterministic", i)
		}
	}
	if f.Blocks[0].Sum == f.Blocks[1].Sum {
		t.Fatal("distinct blocks share a checksum")
	}
}

func TestWriteCreatesAndAppends(t *testing.T) {
	k := sim.NewKernel()
	c := testCluster(k, 2)
	fs := New(c, device.MiB)
	k.Go("w", func(p *sim.Proc) {
		fs.Write(p, 0, "out", 100)
		fs.Write(p, 1, "out", 200)
	})
	k.Run()
	f, err := fs.Open("out")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size != 300 || len(f.Blocks) != 2 {
		t.Fatalf("size=%d blocks=%d", f.Size, len(f.Blocks))
	}
	_, w := c.Node(0).Disk.Counters()
	if w != 100 {
		t.Fatalf("node0 wrote %d", w)
	}
}

func TestSplitsCoverAllBlocksInOrder(t *testing.T) {
	k := sim.NewKernel()
	fs := New(testCluster(k, 4), 10)
	f, _ := fs.Create("in", 95, 4) // 10 blocks
	splits := Splits(f, 4)
	if len(splits) != 4 {
		t.Fatalf("splits = %d", len(splits))
	}
	var seen []int
	for _, s := range splits {
		for _, b := range s {
			seen = append(seen, b.Index)
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d blocks, want 10", len(seen))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("blocks out of order: %v", seen)
		}
	}
}

// Property: splits always partition the file regardless of block count and
// split count, with near-even sizes (max-min ≤ 1 blocks).
func TestSplitsPartitionProperty(t *testing.T) {
	f := func(sizeKB uint16, n uint8) bool {
		k := sim.NewKernel()
		fs := New(testCluster(k, 3), 4<<10)
		size := int64(sizeKB)*1024 + 1
		file, err := fs.Create("f", size, 3)
		if err != nil {
			return false
		}
		splits := Splits(file, int(n%32)+1)
		total := 0
		minLen, maxLen := len(file.Blocks), 0
		for _, s := range splits {
			total += len(s)
			if len(s) < minLen {
				minLen = len(s)
			}
			if len(s) > maxLen {
				maxLen = len(s)
			}
		}
		if total != len(file.Blocks) {
			return false
		}
		if len(splits) <= len(file.Blocks) && maxLen-minLen > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveExistsFiles(t *testing.T) {
	k := sim.NewKernel()
	fs := New(testCluster(k, 2), 0)
	if fs.Exists("a") {
		t.Fatal("phantom file")
	}
	if _, err := fs.Create("a", 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("b", 10, 1); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("a") {
		t.Fatal("a missing")
	}
	names := fs.Files()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("files = %v", names)
	}
	fs.Remove("a")
	if fs.Exists("a") {
		t.Fatal("a survived Remove")
	}
	if len(fs.Files()) != 1 {
		t.Fatal("Files out of date")
	}
}

func TestBlockSizeDefault(t *testing.T) {
	k := sim.NewKernel()
	fs := New(testCluster(k, 2), 0)
	if fs.BlockSize() != DefaultBlockSize {
		t.Fatalf("block size = %d", fs.BlockSize())
	}
}
