package rdd

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sae/internal/chaos"
	"sae/internal/cluster"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine"
)

// terasort runs the mini-Terasort pipeline (sample → range bounds →
// repartition → collect) over keys and returns the collected output plus
// the collect job's report.
func terasort(t *testing.T, keys []string, faults *chaos.Plan) ([]string, *engine.JobReport) {
	t.Helper()
	cfg := cluster.DAS5(4)
	cfg.Variability = device.Uniform()
	c, err := NewContext(Options{Cluster: cfg, Policy: core.DefaultDynamic(), Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	d := Parallelize(c, keys, 16)
	less := func(a, b string) bool { return a < b }
	sample, _, err := Sample(d, 200)
	if err != nil {
		t.Fatal(err)
	}
	bounds := Bounds(sample, 8, less)
	sorted := RepartitionByRange(d, bounds, less)
	out, rep, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

// TestSortRecoversFromExecutorCrash is the RDD-level acceptance test:
// killing an executor mid-sort must recover through task requeue plus
// parent map-stage resubmission, and the collected output must still be
// complete and globally sorted.
func TestSortRecoversFromExecutorCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var keys []string
	for i := 0; i < 4000; i++ {
		keys = append(keys, fmt.Sprintf("%08x", rng.Uint32()))
	}

	quietOut, quietRep := terasort(t, keys, nil)
	if quietRep.LostExecutors != 0 {
		t.Fatalf("quiet run lost %d executors", quietRep.LostExecutors)
	}
	// Crash executor 1 at 40% of the reduce stage's quiet window: its map
	// outputs are already registered and reduce tasks are fetching them.
	red := quietRep.Stages[len(quietRep.Stages)-1]
	crashAt := red.Start + (red.End-red.Start)*2/5

	out, rep := terasort(t, keys, chaos.CrashAt(1, crashAt))
	if rep.LostExecutors != 1 {
		t.Fatalf("LostExecutors = %d, want 1", rep.LostExecutors)
	}
	if rep.ResubmittedStages < 1 {
		t.Fatalf("ResubmittedStages = %d, want >= 1 (lineage recovery)", rep.ResubmittedStages)
	}
	if len(out) != len(keys) {
		t.Fatalf("crashy sort returned %d records, want %d", len(out), len(keys))
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("output not globally sorted at %d: %q < %q", i, out[i], out[i-1])
		}
	}
	// Same multiset as the quiet run: recovery neither drops nor
	// duplicates records.
	a := append([]string(nil), quietOut...)
	sort.Strings(a)
	for i := range a {
		if a[i] != out[i] {
			t.Fatalf("crashy output diverges from quiet output at %d: %q vs %q", i, out[i], a[i])
		}
	}
	if rep.Runtime <= quietRep.Runtime {
		t.Fatalf("crashy run (%v) not slower than quiet run (%v)", rep.Runtime, quietRep.Runtime)
	}
}

// TestFlakyTasksDoNotDuplicateShuffleRecords checks the emitted guard:
// injected transient faults replay map closures, which must not append
// their records to the shuffle buckets twice.
func TestFlakyTasksDoNotDuplicateShuffleRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var keys []string
	for i := 0; i < 2000; i++ {
		keys = append(keys, fmt.Sprintf("%08x", rng.Uint32()))
	}
	quietOut, _ := terasort(t, keys, nil)
	out, rep := terasort(t, keys, chaos.Flaky(0.3, 5))
	if len(out) != len(keys) {
		t.Fatalf("flaky sort returned %d records, want %d", len(out), len(keys))
	}
	var retries int
	for _, st := range rep.Stages {
		retries += st.Retries
	}
	if retries == 0 {
		t.Skip("no injected faults struck this configuration")
	}
	a := append([]string(nil), quietOut...)
	sort.Strings(a)
	for i := range a {
		if a[i] != out[i] {
			t.Fatalf("flaky output diverges at %d: %q vs %q", i, out[i], a[i])
		}
	}
}
