package rdd

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sae/internal/cluster"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine"
)

func testContext(t *testing.T) *Context {
	t.Helper()
	cfg := cluster.DAS5(4)
	cfg.Variability = device.Uniform()
	c, err := NewContext(Options{Cluster: cfg, Policy: core.Default{}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParallelizeCollect(t *testing.T) {
	c := testContext(t)
	in := []int{5, 1, 4, 2, 3}
	d := Parallelize(c, in, 3)
	out, rep, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("collected %d records", len(out))
	}
	sort.Ints(out)
	for i, v := range []int{1, 2, 3, 4, 5} {
		if out[i] != v {
			t.Fatalf("out = %v", out)
		}
	}
	if rep.Runtime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestMapFilterChain(t *testing.T) {
	c := testContext(t)
	d := Parallelize(c, []int{1, 2, 3, 4, 5, 6}, 2)
	evens := Filter(d, func(v int) bool { return v%2 == 0 })
	squares := Map(evens, func(v int) int { return v * v })
	out, _, err := Collect(squares)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(out)
	want := []int{4, 16, 36}
	if fmt.Sprint(out) != fmt.Sprint(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestWordCount(t *testing.T) {
	c := testContext(t)
	lines := []string{"the quick brown fox", "the lazy dog", "the fox"}
	text := TextFile(c, "wc/in", lines, 2)
	words := FlatMap(text, func(l string) []string { return strings.Fields(l) })
	pairs := Map(words, func(w string) Pair[string, int] { return Pair[string, int]{Key: w, Value: 1} })
	counts := ReduceByKey(pairs, func(a, b int) int { return a + b }, 4)
	out, rep, err := Collect(counts)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range out {
		got[p.Key] = p.Value
	}
	want := map[string]int{"the": 3, "quick": 1, "brown": 1, "fox": 2, "lazy": 1, "dog": 1}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d distinct words, want %d", len(got), len(want))
	}
	// Two stages: map (textFile read) and reduce (collect).
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(rep.Stages))
	}
	if !rep.Stages[0].IOMarked {
		t.Error("textFile stage should be IO-marked")
	}
	if rep.Stages[0].DiskReadBytes == 0 {
		t.Error("textFile read charged no disk I/O")
	}
}

func TestCount(t *testing.T) {
	c := testContext(t)
	d := Parallelize(c, make([]float64, 1234), 8)
	n, _, err := Count(d)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1234 {
		t.Fatalf("count = %d", n)
	}
}

func TestReduce(t *testing.T) {
	c := testContext(t)
	d := Parallelize(c, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 4)
	sum, _, err := Reduce(d, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 55 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestGroupByKey(t *testing.T) {
	c := testContext(t)
	var pairs []Pair[string, int]
	for i := 0; i < 20; i++ {
		pairs = append(pairs, Pair[string, int]{Key: fmt.Sprintf("k%d", i%4), Value: i})
	}
	d := Parallelize(c, pairs, 4)
	grouped := GroupByKey(d, 3)
	out, _, err := Collect(grouped)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("groups = %d, want 4", len(out))
	}
	for _, g := range out {
		if len(g.Value) != 5 {
			t.Errorf("group %s has %d values, want 5", g.Key, len(g.Value))
		}
	}
}

func TestJoin(t *testing.T) {
	c := testContext(t)
	users := Parallelize(c, []Pair[int, string]{
		{1, "ann"}, {2, "bob"}, {3, "cat"}, {4, "dan"},
	}, 2)
	orders := Parallelize(c, []Pair[int, float64]{
		{1, 9.5}, {1, 1.5}, {3, 4.0}, {9, 7.0},
	}, 2)
	joined := Join(users, orders, 4)
	out, rep, err := Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, p := range out {
		got[p.Value.Left] += p.Value.Right
	}
	if len(out) != 3 {
		t.Fatalf("join produced %d rows, want 3 (keys 1,1,3)", len(out))
	}
	if got["ann"] != 11.0 || got["cat"] != 4.0 {
		t.Fatalf("join values = %v", got)
	}
	// Join compiles to two map stages + one reduce stage.
	if len(rep.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(rep.Stages))
	}
}

func TestRangePartitionedSort(t *testing.T) {
	c := testContext(t)
	rng := rand.New(rand.NewSource(7))
	var keys []string
	for i := 0; i < 2000; i++ {
		keys = append(keys, fmt.Sprintf("%08x", rng.Uint32()))
	}
	d := Parallelize(c, keys, 8)
	less := func(a, b string) bool { return a < b }
	sample, _, err := Sample(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	bounds := Bounds(sample, 6, less)
	if len(bounds) != 5 {
		t.Fatalf("bounds = %d, want 5", len(bounds))
	}
	sorted := RepartitionByRange(d, bounds, less)
	out, _, err := Collect(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(keys) {
		t.Fatalf("sorted %d records, want %d", len(out), len(keys))
	}
	// Collect returns partitions in order; range partitioning makes the
	// concatenation globally sorted.
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("output not globally sorted at %d: %q < %q", i, out[i], out[i-1])
		}
	}
}

func TestSortWithinPartitions(t *testing.T) {
	c := testContext(t)
	d := Parallelize(c, []int{9, 3, 7, 1, 8, 2, 6, 4}, 2)
	s := SortWithinPartitions(d, func(a, b int) bool { return a < b })
	out, _, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("len = %d", len(out))
	}
	// First half and second half each sorted.
	for i := 1; i < 4; i++ {
		if out[i] < out[i-1] || out[i+4] < out[i+3] {
			t.Fatalf("partitions not sorted: %v", out)
		}
	}
}

func TestSaveAsTextFile(t *testing.T) {
	c := testContext(t)
	d := Parallelize(c, []int{1, 2, 3}, 2)
	rep, err := SaveAsTextFile(d, "out/nums", func(v int) string { return fmt.Sprint(v) })
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Stages[len(rep.Stages)-1]
	if !last.IOMarked {
		t.Error("save stage should be IO-marked")
	}
	if last.DiskWriteBytes == 0 {
		t.Error("save charged no disk writes")
	}
}

func TestShuffleChargesIO(t *testing.T) {
	c := testContext(t)
	var pairs []Pair[int, string]
	for i := 0; i < 5000; i++ {
		pairs = append(pairs, Pair[int, string]{Key: i % 64, Value: strings.Repeat("x", 100)})
	}
	d := Parallelize(c, pairs, 8)
	g := GroupByKey(d, 8)
	_, rep, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].DiskWriteBytes < 5000*100 {
		t.Errorf("map stage spilled %d bytes, want ≥ payload", rep.Stages[0].DiskWriteBytes)
	}
	if rep.Stages[1].DiskReadBytes < 5000*100 {
		t.Errorf("reduce stage read %d bytes, want ≥ payload", rep.Stages[1].DiskReadBytes)
	}
}

func TestChainedShuffles(t *testing.T) {
	// source → reduceByKey → map → groupByKey → collect: three stages.
	c := testContext(t)
	var pairs []Pair[int, int]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair[int, int]{Key: i % 10, Value: 1})
	}
	d := Parallelize(c, pairs, 4)
	counts := ReduceByKey(d, func(a, b int) int { return a + b }, 4)
	flipped := Map(counts, func(p Pair[int, int]) Pair[int, int] { return Pair[int, int]{Key: p.Value, Value: p.Key} })
	grouped := GroupByKey(flipped, 2)
	out, rep, err := Collect(grouped)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(rep.Stages))
	}
	if len(out) != 1 || out[0].Key != 10 || len(out[0].Value) != 10 {
		t.Fatalf("out = %v, want one group of the 10 keys that each counted 10", out)
	}
}

func TestAdaptivePolicyRunsRDD(t *testing.T) {
	cfg := cluster.DAS5(4)
	cfg.Variability = device.Uniform()
	c, err := NewContext(Options{Cluster: cfg, Policy: core.DefaultDynamic()})
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 20000)
	for i := range lines {
		lines[i] = fmt.Sprintf("line-%d some words here", i)
	}
	text := TextFile(c, "big/in", lines, 64)
	words := FlatMap(text, func(l string) []string { return strings.Fields(l) })
	pairs := Map(words, func(w string) Pair[string, int] { return Pair[string, int]{Key: w, Value: 1} })
	counts := ReduceByKey(pairs, func(a, b int) int { return a + b }, 32)
	out, rep, err := Collect(counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty result")
	}
	if rep.Policy != "dynamic" {
		t.Fatalf("policy = %s", rep.Policy)
	}
	// The dynamic controller must have produced decisions.
	total := 0
	for _, ds := range rep.Decisions {
		total += len(ds)
	}
	if total == 0 {
		t.Error("dynamic policy made no decisions on an RDD job")
	}
}

func TestContextRequiresPolicy(t *testing.T) {
	if _, err := NewContext(Options{}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

// Property: wordcount totals equal input word count for arbitrary line
// shapes.
func TestWordCountTotalProperty(t *testing.T) {
	c := testContext(t)
	f := func(words []uint8) bool {
		var lines []string
		total := 0
		var cur []string
		for i, w := range words {
			cur = append(cur, fmt.Sprintf("w%d", w%7))
			total++
			if i%5 == 4 {
				lines = append(lines, strings.Join(cur, " "))
				cur = nil
			}
		}
		if len(cur) > 0 {
			lines = append(lines, strings.Join(cur, " "))
		}
		if len(lines) == 0 {
			return true
		}
		text := TextFile(c, fmt.Sprintf("prop/in-%d", len(lines)*1000+total), lines, 3)
		ws := FlatMap(text, func(l string) []string { return strings.Fields(l) })
		pairs := Map(ws, func(w string) Pair[string, int] { return Pair[string, int]{Key: w, Value: 1} })
		counts := ReduceByKey(pairs, func(a, b int) int { return a + b }, 4)
		out, _, err := Collect(counts)
		if err != nil {
			return false
		}
		sum := 0
		for _, p := range out {
			sum += p.Value
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Filter ∘ Collect is equivalent to native filtering.
func TestFilterEquivalenceProperty(t *testing.T) {
	f := func(data []int16, parts uint8) bool {
		c := testContext(t)
		in := make([]int, len(data))
		for i, v := range data {
			in[i] = int(v)
		}
		d := Parallelize(c, in, int(parts%8)+1)
		pos := Filter(d, func(v int) bool { return v > 0 })
		out, _, err := Collect(pos)
		if err != nil {
			return false
		}
		var want []int
		for _, v := range in {
			if v > 0 {
				want = append(want, v)
			}
		}
		sort.Ints(out)
		sort.Ints(want)
		return fmt.Sprint(out) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMapValuesKeysValues(t *testing.T) {
	c := testContext(t)
	d := Parallelize(c, []Pair[string, int]{{"a", 1}, {"b", 2}}, 2)
	doubled := MapValues(d, func(v int) int { return v * 2 })
	out, _, err := Collect(doubled)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range out {
		got[p.Key] = p.Value
	}
	if got["a"] != 2 || got["b"] != 4 {
		t.Fatalf("mapValues = %v", got)
	}
	ks, _, err := Collect(Keys(d))
	if err != nil || len(ks) != 2 {
		t.Fatalf("keys = %v, %v", ks, err)
	}
	vs, _, err := Collect(Values(d))
	if err != nil || len(vs) != 2 {
		t.Fatalf("values = %v, %v", vs, err)
	}
}

func TestUnion(t *testing.T) {
	c := testContext(t)
	a := Parallelize(c, []int{1, 2, 3}, 2)
	b := Parallelize(c, []int{4, 5}, 2)
	u := Union(a, b, 3)
	out, rep, err := Collect(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("union size = %d, want 5", len(out))
	}
	sort.Ints(out)
	if fmt.Sprint(out) != "[1 2 3 4 5]" {
		t.Fatalf("union = %v", out)
	}
	// Two map stages (one per side) + the collect stage.
	if len(rep.Stages) != 3 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
}

func TestDistinct(t *testing.T) {
	c := testContext(t)
	d := Parallelize(c, []int{3, 1, 3, 2, 1, 1, 2}, 3)
	u := Distinct(d, 2)
	out, _, err := Collect(u)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(out)
	if fmt.Sprint(out) != "[1 2 3]" {
		t.Fatalf("distinct = %v", out)
	}
}

func TestTake(t *testing.T) {
	c := testContext(t)
	d := Parallelize(c, []int{10, 20, 30, 40}, 2)
	got, _, err := Take(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("take = %v", got)
	}
	all, _, err := Take(d, 100)
	if err != nil || len(all) != 4 {
		t.Fatalf("take(100) = %v, %v", all, err)
	}
}

func TestCacheAvoidsRecomputationIO(t *testing.T) {
	c := testContext(t)
	lines := make([]string, 4000)
	for i := range lines {
		lines[i] = fmt.Sprintf("%06d %s", i, strings.Repeat("z", 120))
	}
	// Control: the uncached pipeline reads the text file from DFS.
	plain := Map(TextFile(c, "cache/in", lines, 8), func(l string) string { return l[:6] })
	_, repPlain, err := Count(Filter(plain, func(s string) bool { return s < "000100" }))
	if err != nil {
		t.Fatal(err)
	}
	if repPlain.DiskReadBytes == 0 {
		t.Fatal("uncached control read nothing")
	}

	// Cached: materialization happens in a hidden sub-job; every action
	// job afterwards reads only memory.
	base := TextFile(c, "cache/in2", lines, 8)
	parsed := Cache(Map(base, func(l string) string { return l[:6] }))
	_, rep1, err := Collect(Filter(parsed, func(s string) bool { return s < "000100" }))
	if err != nil {
		t.Fatal(err)
	}
	out2, rep2, err := Count(Filter(parsed, func(s string) bool { return s >= "000100" }))
	if err != nil {
		t.Fatal(err)
	}
	if out2 != 3900 {
		t.Fatalf("count = %d", out2)
	}
	for i, rep := range []*engine.JobReport{rep1, rep2} {
		if rep.DiskReadBytes != 0 {
			t.Fatalf("cached action %d read %d bytes, want 0", i+1, rep.DiskReadBytes)
		}
	}
}

func TestCachedWideNode(t *testing.T) {
	c := testContext(t)
	var pairs []Pair[int, int]
	for i := 0; i < 200; i++ {
		pairs = append(pairs, Pair[int, int]{Key: i % 5, Value: 1})
	}
	counts := Cache(ReduceByKey(Parallelize(c, pairs, 4), func(a, b int) int { return a + b }, 4))
	// Materialize, then reuse twice: the reuse jobs have a single stage.
	if _, _, err := Collect(counts); err != nil {
		t.Fatal(err)
	}
	doubled := MapValues(counts, func(v int) int { return v * 2 })
	out, rep, err := Collect(doubled)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 1 {
		t.Fatalf("cached reuse stages = %d, want 1", len(rep.Stages))
	}
	total := 0
	for _, p := range out {
		total += p.Value
	}
	if total != 400 {
		t.Fatalf("total = %d, want 400", total)
	}
}

// Property: ReduceByKey equals a native map-based aggregation for arbitrary
// key/value sets and partition counts.
func TestReduceByKeyEquivalenceProperty(t *testing.T) {
	f := func(keys []uint8, parts uint8) bool {
		c := testContext(t)
		var pairs []Pair[int, int]
		want := map[int]int{}
		for i, k := range keys {
			pairs = append(pairs, Pair[int, int]{Key: int(k % 16), Value: i})
			want[int(k%16)] += i
		}
		if len(pairs) == 0 {
			return true
		}
		d := Parallelize(c, pairs, int(parts%6)+1)
		r := ReduceByKey(d, func(a, b int) int { return a + b }, int(parts%4)+1)
		out, _, err := Collect(r)
		if err != nil {
			return false
		}
		got := map[int]int{}
		for _, p := range out {
			got[p.Key] = p.Value
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Join equals a native nested-loop join.
func TestJoinEquivalenceProperty(t *testing.T) {
	f := func(ls, rs []uint8) bool {
		c := testContext(t)
		var left []Pair[int, int]
		var right []Pair[int, int]
		for i, k := range ls {
			left = append(left, Pair[int, int]{Key: int(k % 8), Value: i})
		}
		for i, k := range rs {
			right = append(right, Pair[int, int]{Key: int(k % 8), Value: i * 10})
		}
		if len(left) == 0 || len(right) == 0 {
			return true
		}
		want := 0
		for _, l := range left {
			for _, r := range right {
				if l.Key == r.Key {
					want++
				}
			}
		}
		j := Join(Parallelize(c, left, 2), Parallelize(c, right, 3), 4)
		out, _, err := Collect(j)
		if err != nil {
			return false
		}
		return len(out) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
