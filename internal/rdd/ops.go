package rdd

import "sae/internal/engine"

// MapValues transforms the values of a keyed dataset, keeping keys and
// partitioning intent.
func MapValues[K comparable, V, W any](d *Dataset[Pair[K, V]], f func(V) W) *Dataset[Pair[K, W]] {
	return Map(d, func(p Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{Key: p.Key, Value: f(p.Value)}
	})
}

// Keys projects the keys of a keyed dataset.
func Keys[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[K] {
	return Map(d, func(p Pair[K, V]) K { return p.Key })
}

// Values projects the values of a keyed dataset.
func Values[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[V] {
	return Map(d, func(p Pair[K, V]) V { return p.Value })
}

// Union concatenates two datasets of the same type. Like Spark's union it
// does not deduplicate; unlike Spark's (narrow) union, records flow through
// a shuffle that interleaves both parents' partitions, because every stage
// in this engine reads exactly one upstream.
func Union[T any](a, b *Dataset[T], partitions int) *Dataset[T] {
	c := a.ctx
	if partitions <= 0 {
		partitions = a.node.partitions + b.node.partitions
	}
	n := c.newNode(kindWide, partitions, a.node, b.node)
	cnt := 0
	n.route = func(mapPart int, _ any) int {
		cnt++
		return (mapPart + cnt) % partitions
	}
	n.gather = func(in []any) []any { return in }
	return &Dataset[T]{ctx: c, node: n}
}

// Distinct removes duplicate records via a shuffle on the record value.
func Distinct[T comparable](d *Dataset[T], partitions int) *Dataset[T] {
	keyed := Map(d, func(v T) Pair[T, struct{}] { return Pair[T, struct{}]{Key: v} })
	reduced := ReduceByKey(keyed, func(a, _ struct{}) struct{} { return a }, partitions)
	return Keys(reduced)
}

// Take materializes the first n records (in partition order). It runs a
// full job, like Spark's take on a computed lineage.
func Take[T any](d *Dataset[T], n int) ([]T, *engine.JobReport, error) {
	all, rep, err := Collect(d)
	if err != nil {
		return nil, rep, err
	}
	if n < len(all) {
		all = all[:n]
	}
	return all, rep, nil
}

// Cache marks the dataset for materialization: the first action that uses
// it computes its partitions once (paying the full lineage cost) and pins
// them in (driver) memory; later actions read them as an in-memory source,
// like Spark's MEMORY_ONLY persistence.
func Cache[T any](d *Dataset[T]) *Dataset[T] {
	d.node.wantCache = true
	return d
}

// ensureCached materializes any cache-marked nodes the target depends on,
// deepest first, by running sub-jobs.
func (c *Context) ensureCached(target *node) error {
	var walk func(n *node) error
	seen := map[int]bool{}
	walk = func(n *node) error {
		if seen[n.id] {
			return nil
		}
		seen[n.id] = true
		for _, p := range n.parents {
			if err := walk(p); err != nil {
				return err
			}
		}
		if n.wantCache && n.cached == nil && n != target {
			parts, _, err := runJobNoCache(c, n, "cache", "")
			if err != nil {
				return err
			}
			n.cached = parts
		}
		return nil
	}
	return walk(target)
}
