// Package rdd is a typed, lineage-based dataset layer in the style of
// Spark's RDD API, compiled onto the simulation engine: transformations
// build a logical plan; actions cut the plan into stages at shuffle
// boundaries and execute them with *real data* flowing through real task
// closures, while every byte read, shuffled or written is charged to the
// simulated devices. This gives end-to-end correctness testing (the sort
// really sorts, the join really joins) under exactly the executor/scheduler
// mechanics the adaptive policies control.
//
// Because the simulation kernel serializes all task goroutines, the
// in-memory source, shuffle and result stores need no locking and runs are
// deterministic.
package rdd

import (
	"fmt"
	"sort"

	"sae/internal/chaos"
	"sae/internal/cluster"
	"sae/internal/engine"
	"sae/internal/engine/job"
)

// Options configures a Context.
type Options struct {
	// Cluster is the simulated hardware (defaults to 4-node DAS-5).
	Cluster cluster.Config
	// Policy sizes the executor pools (required).
	Policy job.Policy
	// BlockSize is the DFS block size for text inputs (0 = 128 MiB).
	BlockSize int64
	// RecordCPUSeconds is the single-core cost of processing one record
	// through one operator (0 selects 1.5µs).
	RecordCPUSeconds float64
	// Faults is an optional deterministic chaos schedule applied to every
	// action's engine run (see package chaos).
	Faults *chaos.Plan
}

// Context owns a logical plan and executes actions on fresh simulated
// clusters.
type Context struct {
	opts   Options
	nextID int
}

// NewContext returns a context. The zero Options value (except Policy,
// which is required) selects the paper's 4-node cluster.
func NewContext(opts Options) (*Context, error) {
	if opts.Policy == nil {
		return nil, fmt.Errorf("rdd: Options.Policy is required")
	}
	if opts.Cluster.Nodes == 0 {
		opts.Cluster = cluster.DAS5(4)
	}
	if opts.RecordCPUSeconds == 0 {
		opts.RecordCPUSeconds = 1.5e-6
	}
	return &Context{opts: opts}, nil
}

// Pair is a key/value record for wide (shuffled) transformations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Dataset is a typed handle to a plan node.
type Dataset[T any] struct {
	ctx  *Context
	node *node
}

// Partitions returns the dataset's partition count.
func (d *Dataset[T]) Partitions() int { return d.node.partitions }

// node kinds.
type nodeKind int

const (
	kindSource nodeKind = iota + 1
	kindNarrow
	kindWide
)

// node is an untyped plan node. Values flow as `any`; the typed API wrappers
// guarantee the dynamic types line up.
type node struct {
	id         int
	kind       nodeKind
	partitions int
	parents    []*node

	// source
	file    string  // DFS file name ("" = in-memory parallelize)
	content [][]any // per-partition records
	bytes   int64   // total on-DFS bytes (file sources)

	// narrow: one input record → zero or more output records.
	narrow func(any) []any

	// cache state (see Cache): wantCache marks the node; cached holds
	// its materialized partitions after the first action.
	wantCache bool
	cached    [][]any

	// wide: route a map-side record (from the given map partition) to a
	// reduce partition...
	route func(mapPart int, v any) int
	// ...and post-process one reduce partition's gathered records
	// (group, merge, sort, join).
	gather func([]any) []any
}

func (c *Context) newNode(kind nodeKind, partitions int, parents ...*node) *node {
	c.nextID++
	return &node{id: c.nextID, kind: kind, partitions: partitions, parents: parents}
}

// Parallelize distributes an in-memory slice over partitions.
func Parallelize[T any](c *Context, data []T, partitions int) *Dataset[T] {
	if partitions <= 0 {
		partitions = c.opts.Cluster.Nodes
	}
	n := c.newNode(kindSource, partitions)
	n.content = make([][]any, partitions)
	for i, v := range data {
		p := i * partitions / max(len(data), 1)
		n.content[p] = append(n.content[p], v)
	}
	return &Dataset[T]{ctx: c, node: n}
}

// TextFile registers lines as a DFS-backed text file split over partitions:
// tasks reading it are charged real disk I/O for the real byte volume.
func TextFile(c *Context, name string, lines []string, partitions int) *Dataset[string] {
	if partitions <= 0 {
		partitions = c.opts.Cluster.Nodes
	}
	n := c.newNode(kindSource, partitions)
	n.file = name
	n.content = make([][]any, partitions)
	for i, l := range lines {
		p := i * partitions / max(len(lines), 1)
		n.content[p] = append(n.content[p], l)
		n.bytes += int64(len(l)) + 1
	}
	return &Dataset[string]{ctx: c, node: n}
}

// Map applies f to every record.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	n := d.ctx.newNode(kindNarrow, d.node.partitions, d.node)
	n.narrow = func(v any) []any { return []any{f(v.(T))} }
	return &Dataset[U]{ctx: d.ctx, node: n}
}

// Filter keeps records satisfying pred.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	n := d.ctx.newNode(kindNarrow, d.node.partitions, d.node)
	n.narrow = func(v any) []any {
		if pred(v.(T)) {
			return []any{v}
		}
		return nil
	}
	return &Dataset[T]{ctx: d.ctx, node: n}
}

// FlatMap expands every record into zero or more records.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	n := d.ctx.newNode(kindNarrow, d.node.partitions, d.node)
	n.narrow = func(v any) []any {
		us := f(v.(T))
		out := make([]any, len(us))
		for i, u := range us {
			out[i] = u
		}
		return out
	}
	return &Dataset[U]{ctx: d.ctx, node: n}
}

// KeyBy turns records into pairs keyed by f.
func KeyBy[K comparable, T any](d *Dataset[T], f func(T) K) *Dataset[Pair[K, T]] {
	return Map(d, func(v T) Pair[K, T] { return Pair[K, T]{Key: f(v), Value: v} })
}

// ReduceByKey merges all values of each key with merge (associative and
// commutative), shuffling into `partitions` reduce partitions.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], merge func(V, V) V, partitions int) *Dataset[Pair[K, V]] {
	n := wideByKey[K, V](d, partitions)
	n.gather = func(in []any) []any {
		acc := make(map[K]V)
		var order []K
		for _, r := range in {
			p := r.(Pair[K, V])
			if cur, ok := acc[p.Key]; ok {
				acc[p.Key] = merge(cur, p.Value)
			} else {
				acc[p.Key] = p.Value
				order = append(order, p.Key)
			}
		}
		out := make([]any, 0, len(order))
		for _, k := range order {
			out = append(out, Pair[K, V]{Key: k, Value: acc[k]})
		}
		return out
	}
	return &Dataset[Pair[K, V]]{ctx: d.ctx, node: n}
}

// GroupByKey gathers all values of each key into a slice.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]], partitions int) *Dataset[Pair[K, []V]] {
	n := wideByKey[K, V](d, partitions)
	n.gather = func(in []any) []any {
		groups := make(map[K][]V)
		var order []K
		for _, r := range in {
			p := r.(Pair[K, V])
			if _, ok := groups[p.Key]; !ok {
				order = append(order, p.Key)
			}
			groups[p.Key] = append(groups[p.Key], p.Value)
		}
		out := make([]any, 0, len(order))
		for _, k := range order {
			out = append(out, Pair[K, []V]{Key: k, Value: groups[k]})
		}
		return out
	}
	return &Dataset[Pair[K, []V]]{ctx: d.ctx, node: n}
}

// JoinedRow is one inner-join match.
type JoinedRow[A, B any] struct {
	Left  A
	Right B
}

// joinTag wraps records of either join side through the shuffle.
type joinTag struct {
	side  int
	key   any
	value any
}

// Join inner-joins two keyed datasets.
func Join[K comparable, A, B any](left *Dataset[Pair[K, A]], right *Dataset[Pair[K, B]], partitions int) *Dataset[Pair[K, JoinedRow[A, B]]] {
	c := left.ctx
	if partitions <= 0 {
		partitions = max(left.node.partitions, right.node.partitions)
	}
	lt := Map(left, func(p Pair[K, A]) joinTag { return joinTag{side: 0, key: p.Key, value: p.Value} })
	rt := Map(right, func(p Pair[K, B]) joinTag { return joinTag{side: 1, key: p.Key, value: p.Value} })
	n := c.newNode(kindWide, partitions, lt.node, rt.node)
	n.route = func(_ int, v any) int { return hashAny(v.(joinTag).key, partitions) }
	n.gather = func(in []any) []any {
		ls := make(map[K][]A)
		rs := make(map[K][]B)
		var order []K
		for _, r := range in {
			t := r.(joinTag)
			k := t.key.(K)
			if t.side == 0 {
				if _, seen := ls[k]; !seen {
					if _, also := rs[k]; !also {
						order = append(order, k)
					}
				}
				ls[k] = append(ls[k], t.value.(A))
			} else {
				if _, seen := rs[k]; !seen {
					if _, also := ls[k]; !also {
						order = append(order, k)
					}
				}
				rs[k] = append(rs[k], t.value.(B))
			}
		}
		var out []any
		for _, k := range order {
			for _, a := range ls[k] {
				for _, b := range rs[k] {
					out = append(out, Pair[K, JoinedRow[A, B]]{Key: k, Value: JoinedRow[A, B]{Left: a, Right: b}})
				}
			}
		}
		return out
	}
	return &Dataset[Pair[K, JoinedRow[A, B]]]{ctx: c, node: n}
}

// RepartitionByRange shuffles records into partitions by upper bounds:
// partition i receives records with key ≤ bounds[i] (the last partition is
// unbounded), then sorts each partition — Spark's range-partitioned sort.
// len(bounds) must be partitions−1; obtain bounds from Sample.
func RepartitionByRange[T any](d *Dataset[T], bounds []T, less func(a, b T) bool) *Dataset[T] {
	c := d.ctx
	partitions := len(bounds) + 1
	n := c.newNode(kindWide, partitions, d.node)
	n.route = func(_ int, v any) int {
		t := v.(T)
		// Binary search the first bound not less than t.
		lo, hi := 0, len(bounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if less(bounds[mid], t) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	n.gather = func(in []any) []any {
		sort.SliceStable(in, func(i, j int) bool { return less(in[i].(T), in[j].(T)) })
		return in
	}
	return &Dataset[T]{ctx: c, node: n}
}

// SortWithinPartitions sorts each partition locally without shuffling.
func SortWithinPartitions[T any](d *Dataset[T], less func(a, b T) bool) *Dataset[T] {
	n := d.ctx.newNode(kindWide, d.node.partitions, d.node)
	// Identity routing keeps every record in its own partition; the data
	// still flows through the shuffle machinery (local spill and fetch),
	// as a Spark repartition(identity)+sort would.
	n.route = func(mapPart int, _ any) int { return mapPart }
	n.gather = func(in []any) []any {
		sort.SliceStable(in, func(i, j int) bool { return less(in[i].(T), in[j].(T)) })
		return in
	}
	return &Dataset[T]{ctx: d.ctx, node: n}
}

// wideByKey builds a hash-partitioned wide node for Pair datasets.
func wideByKey[K comparable, V any](d *Dataset[Pair[K, V]], partitions int) *node {
	if partitions <= 0 {
		partitions = d.node.partitions
	}
	n := d.ctx.newNode(kindWide, partitions, d.node)
	n.route = func(_ int, v any) int { return hashAny(v.(Pair[K, V]).Key, partitions) }
	return n
}

// hashAny routes a key to a partition with FNV-1a over its formatted value.
// Formatting is slow but type-agnostic; the simulated CPU cost of shuffle
// partitioning is charged separately, so only determinism matters here.
func hashAny(key any, partitions int) int {
	var h uint64 = 14695981039346656037
	s := fmt.Sprintf("%v", key)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int(h % uint64(partitions))
}

// Collect materializes the dataset on the driver, in partition order.
func Collect[T any](d *Dataset[T]) ([]T, *engine.JobReport, error) {
	parts, rep, err := runJob(d.ctx, d.node, "collect", "")
	if err != nil {
		return nil, nil, err
	}
	var out []T
	for _, part := range parts {
		for _, r := range part {
			out = append(out, r.(T))
		}
	}
	return out, rep, nil
}

// Count returns the number of records.
func Count[T any](d *Dataset[T]) (int64, *engine.JobReport, error) {
	parts, rep, err := runJob(d.ctx, d.node, "count", "")
	if err != nil {
		return 0, nil, err
	}
	var n int64
	for _, part := range parts {
		n += int64(len(part))
	}
	return n, rep, nil
}

// Reduce folds all records with merge (associative, commutative).
func Reduce[T any](d *Dataset[T], merge func(T, T) T) (T, *engine.JobReport, error) {
	var zero T
	all, rep, err := Collect(d)
	if err != nil || len(all) == 0 {
		return zero, rep, err
	}
	acc := all[0]
	for _, v := range all[1:] {
		acc = merge(acc, v)
	}
	return acc, rep, nil
}

// Sample returns ~n records drawn deterministically (by stride) from the
// dataset — Spark's sample pass used to derive range-partition bounds.
func Sample[T any](d *Dataset[T], n int) ([]T, *engine.JobReport, error) {
	all, rep, err := Collect(d)
	if err != nil {
		return nil, rep, err
	}
	if n <= 0 || n >= len(all) {
		return all, rep, nil
	}
	stride := len(all) / n
	out := make([]T, 0, n)
	for i := 0; i < len(all) && len(out) < n; i += stride {
		out = append(out, all[i])
	}
	return out, rep, nil
}

// Bounds derives range-partition upper bounds for `partitions` partitions
// from a sample.
func Bounds[T any](sample []T, partitions int, less func(a, b T) bool) []T {
	sorted := append([]T(nil), sample...)
	sort.SliceStable(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	var bounds []T
	for i := 1; i < partitions; i++ {
		idx := i * len(sorted) / partitions
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		bounds = append(bounds, sorted[idx])
	}
	return bounds
}

// SaveAsTextFile writes the dataset to a DFS output file (marking the final
// stage as I/O for the static solution, like Spark's saveAsTextFile) and
// returns the run report.
func SaveAsTextFile[T any](d *Dataset[T], name string, format func(T) string) (*engine.JobReport, error) {
	wrapped := Map(d, func(v T) string { return format(v) })
	_, rep, err := runJob(wrapped.ctx, wrapped.node, "save", name)
	return rep, err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
