package rdd

import (
	"fmt"

	"sae/internal/engine"
	"sae/internal/engine/job"
)

// stagePlan is one compiled stage: read base (source or shuffle), apply the
// narrow chain, then either feed a downstream wide node's shuffle or
// materialize the action result.
type stagePlan struct {
	id    int
	name  string
	base  *node   // source or wide node whose output this stage consumes
	chain []*node // narrow nodes applied in order
	// sink: exactly one of the two.
	sinkWide *node  // route output into this wide node's shuffle
	saveFile string // "" unless the action is a save
	isAction bool
}

// runState carries the real data between stages of one run.
type runState struct {
	// shuffle[wideID][reduce] accumulates records routed to each reduce
	// partition.
	shuffle map[int][][]any
	// results[task] is the final stage's output.
	results [][]any
	// emitted[{stage, task}] marks map tasks whose records are already in
	// the shuffle buckets. Task attempts replayed after an injected fault
	// or executor loss re-run the whole closure (the sim only no-ops the
	// device charges), so without this guard a retry would append its
	// records twice. Sibling map stages run concurrently under the DAG
	// scheduler, but the sim is single-threaded and deterministic, so
	// bucket append order — hence any order-sensitive gather — replays
	// identically.
	emitted map[[2]int]bool
}

// runJob materializes any cached dependencies, then compiles the plan
// rooted at target and executes it on a fresh simulated cluster.
func runJob(c *Context, target *node, action, outputFile string) ([][]any, *engine.JobReport, error) {
	if err := c.ensureCached(target); err != nil {
		return nil, nil, err
	}
	return runJobNoCache(c, target, action, outputFile)
}

// runJobNoCache assumes cached dependencies are already materialized.
func runJobNoCache(c *Context, target *node, action, outputFile string) ([][]any, *engine.JobReport, error) {
	plans, err := compile(c, target, action, outputFile)
	if err != nil {
		return nil, nil, err
	}
	state := &runState{shuffle: make(map[int][][]any), emitted: make(map[[2]int]bool)}
	var inputs []engine.Input
	seenFiles := map[string]bool{}
	spec := &job.JobSpec{Name: action}
	// wideMapStages[wideID] lists the engine stage IDs feeding that
	// wide node's shuffle.
	wideMapStages := map[int][]int{}

	for _, pl := range plans {
		st := &job.StageSpec{
			ID:       pl.id,
			Name:     pl.name,
			NumTasks: stageTasks(pl),
		}
		if pl.base.kind == kindSource && pl.base.file != "" && pl.base.cached == nil {
			st.InputFile = pl.base.file
			if !seenFiles[pl.base.file] {
				seenFiles[pl.base.file] = true
				inputs = append(inputs, engine.Input{Name: pl.base.file, Size: pl.base.bytes})
			}
		}
		if pl.base.kind == kindWide && pl.base.cached == nil {
			st.ShuffleFrom = append(st.ShuffleFrom, wideMapStages[pl.base.id]...)
			if len(st.ShuffleFrom) == 0 {
				return nil, nil, fmt.Errorf("rdd: wide node %d has no map stages", pl.base.id)
			}
		}
		if pl.sinkWide != nil {
			wideMapStages[pl.sinkWide.id] = append(wideMapStages[pl.sinkWide.id], pl.id)
			if state.shuffle[pl.sinkWide.id] == nil {
				state.shuffle[pl.sinkWide.id] = make([][]any, pl.sinkWide.partitions)
			}
		}
		if pl.isAction {
			state.results = make([][]any, st.NumTasks)
			st.OutputFile = pl.saveFile
		}
		st.Work = c.stageWork(pl, state)
		spec.Stages = append(spec.Stages, st)
	}

	opts := engine.Options{
		Cluster:   c.opts.Cluster,
		BlockSize: c.opts.BlockSize,
		Policy:    c.opts.Policy,
		Faults:    c.opts.Faults,
		Inputs:    inputs,
	}
	rep, err := engine.Run(opts, spec)
	if err != nil {
		return nil, nil, err
	}
	return state.results, rep, nil
}

func stageTasks(pl *stagePlan) int {
	if pl.base.kind == kindWide {
		return pl.base.partitions
	}
	return pl.base.partitions
}

// compile cuts the plan into stages in dependency order. The emitted
// ShuffleFrom lists are the job's real DAG edges: the engine's stage-DAG
// scheduler runs stages with no path between them concurrently, so the
// sibling map stages feeding a multi-parent wide node (both sides of a
// join, the parents of a union's shuffle) overlap on the cluster, while
// each reduce stage still waits for all of its map stages.
func compile(c *Context, target *node, action, outputFile string) ([]*stagePlan, error) {
	var plans []*stagePlan
	// compiled[wideID] guards against emitting a wide node's map stages
	// twice when its output is consumed via several paths.
	compiled := map[int]bool{}

	// emitWide recursively emits, for wide node w, the map stages of all
	// its parents (after their own dependencies).
	var emitWide func(w *node) error
	emitWide = func(w *node) error {
		if compiled[w.id] {
			return nil
		}
		compiled[w.id] = true
		for _, parent := range w.parents {
			base, chain, err := splitChain(parent)
			if err != nil {
				return err
			}
			if base.kind == kindWide && base.cached == nil {
				if err := emitWide(base); err != nil {
					return err
				}
			}
			plans = append(plans, &stagePlan{
				id:       len(plans),
				name:     fmt.Sprintf("map-%d", w.id),
				base:     base,
				chain:    chain,
				sinkWide: w,
			})
		}
		return nil
	}

	base, chain, err := splitChain(target)
	if err != nil {
		return nil, err
	}
	if base.kind == kindWide && base.cached == nil {
		if err := emitWide(base); err != nil {
			return nil, err
		}
	}
	plans = append(plans, &stagePlan{
		id:       len(plans),
		name:     action,
		base:     base,
		chain:    chain,
		saveFile: outputFile,
		isAction: true,
	})
	// Fix stage IDs to be contiguous and re-check ordering invariants.
	for i, pl := range plans {
		pl.id = i
	}
	return plans, nil
}

// splitChain walks up from n through narrow nodes to the stage base,
// returning the base and the narrow chain in application order.
func splitChain(n *node) (*node, []*node, error) {
	var rev []*node
	cur := n
	for cur.kind == kindNarrow && cur.cached == nil {
		rev = append(rev, cur)
		if len(cur.parents) != 1 {
			return nil, nil, fmt.Errorf("rdd: narrow node %d has %d parents", cur.id, len(cur.parents))
		}
		cur = cur.parents[0]
	}
	chain := make([]*node, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		chain = append(chain, rev[i])
	}
	return cur, chain, nil
}

// stageWork builds the per-task closure for one stage.
func (c *Context) stageWork(pl *stagePlan, state *runState) func(int) job.Work {
	recCPU := c.opts.RecordCPUSeconds
	return func(task int) job.Work {
		return job.WorkFunc(func(tc job.TaskContext) error {
			// 1. Acquire the stage input (charging devices) and the
			// real records.
			var records []any
			switch {
			case pl.base.cached != nil:
				// Materialized by Cache: an in-memory read, no
				// device charges beyond deserialization.
				if task < len(pl.base.cached) {
					records = pl.base.cached[task]
				}
				tc.Compute(float64(len(records)) * recCPU * 0.1)
			case pl.base.kind == kindSource:
				if task < len(pl.base.content) {
					records = pl.base.content[task]
				}
				drainInput(tc, recCPU, len(records))
			case pl.base.kind == kindWide:
				buckets := state.shuffle[pl.base.id]
				if task < len(buckets) {
					records = buckets[task]
				}
				drainInput(tc, recCPU, len(records))
				tc.Compute(float64(len(records)) * recCPU)
				records = pl.base.gather(records)
			default:
				return fmt.Errorf("rdd: stage %d has invalid base kind %d", pl.id, pl.base.kind)
			}

			// 2. Apply the narrow chain.
			for _, nn := range pl.chain {
				tc.Compute(float64(len(records)) * recCPU)
				var next []any
				for _, r := range records {
					next = append(next, nn.narrow(r)...)
				}
				records = next
			}

			// 3. Emit.
			switch {
			case pl.sinkWide != nil:
				tc.Compute(float64(len(records)) * recCPU)
				var bytes int64
				buckets := state.shuffle[pl.sinkWide.id]
				key := [2]int{pl.id, task}
				first := !state.emitted[key]
				for _, r := range records {
					p := pl.sinkWide.route(task, r)
					if p < 0 || p >= len(buckets) {
						return fmt.Errorf("rdd: route sent record to partition %d of %d", p, len(buckets))
					}
					if first {
						buckets[p] = append(buckets[p], r)
					}
					bytes += sizeOf(r)
				}
				// The append loop has no sim yields, so it is atomic in
				// virtual time: exactly one attempt emits, replays only
				// re-charge the device work.
				state.emitted[key] = true
				tc.WriteShuffle(bytes)
			case pl.isAction:
				if pl.saveFile != "" {
					var bytes int64
					for _, r := range records {
						bytes += sizeOf(r)
					}
					tc.WriteOutput(bytes)
				}
				state.results[task] = records
			}
			return nil
		})
	}
}

// drainInput consumes the task's assigned input bytes chunk by chunk, then
// charges the deserialization CPU share for the real records.
func drainInput(tc job.TaskContext, recCPU float64, records int) {
	for tc.ReadInput(job.ChunkBytes) > 0 {
	}
	tc.Compute(float64(records) * recCPU * 0.5)
}
