package rdd

import "fmt"

// sizeOf estimates the serialized size of a record for I/O charging —
// a coarse analogue of Spark's SizeEstimator. Estimates only need to be
// stable and roughly proportional to real volume; they never affect
// computed values.
func sizeOf(v any) int64 {
	const overhead = 8 // per-record framing
	switch t := v.(type) {
	case nil:
		return overhead
	case string:
		return overhead + int64(len(t))
	case []byte:
		return overhead + int64(len(t))
	case bool, int8, uint8:
		return overhead + 1
	case int, int64, uint64, float64, uint, int32, uint32, float32, int16, uint16:
		return overhead + 8
	case sizer:
		return overhead + t.SizeBytes()
	case joinTag:
		return overhead + sizeOf(t.key) + sizeOf(t.value)
	case []string:
		var n int64
		for _, s := range t {
			n += sizeOf(s)
		}
		return overhead + n
	case []int:
		return overhead + 8*int64(len(t))
	case []float64:
		return overhead + 8*int64(len(t))
	case []any:
		var n int64
		for _, e := range t {
			n += sizeOf(e)
		}
		return overhead + n
	default:
		// Pairs and structs fall back to their formatted length — slow
		// but type-agnostic, and only run at small example scale.
		return overhead + int64(len(fmt.Sprintf("%v", v)))
	}
}

// sizer lets user record types report their serialized size exactly.
type sizer interface {
	SizeBytes() int64
}
