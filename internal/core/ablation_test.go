package core

import (
	"testing"

	"sae/internal/engine/job"
)

func TestDescendingStartsAtCmax(t *testing.T) {
	p := Descending{}
	c := p.NewController(testExec)
	if got := c.StageStart(meta(0, 100, true)); got != 32 {
		t.Fatalf("initial threads = %d, want cmax 32", got)
	}
	if p.InitialThreads(testExec, meta(0, 100, true)) != 32 {
		t.Fatal("InitialThreads mismatch")
	}
}

func TestDescendingHalvesWhileImproving(t *testing.T) {
	c := Descending{}.NewController(testExec)
	c.StageStart(meta(0, 10000, true))
	seq := 0
	// First interval (32 tasks): halve unconditionally.
	if got := feed(c, 0, 32, 900, 1<<20, &seq); got != 16 {
		t.Fatalf("after first interval threads = %d, want 16", got)
	}
	// Better congestion → halve again.
	if got := feed(c, 0, 16, 300, 4<<20, &seq); got != 8 {
		t.Fatalf("threads = %d, want 8", got)
	}
	// Worse → roll back up and freeze.
	if got := feed(c, 0, 8, 900, 1<<19, &seq); got != 16 {
		t.Fatalf("threads = %d, want rollback to 16", got)
	}
	if got := feed(c, 0, 50, 1, 100<<20, &seq); got != 16 {
		t.Fatalf("frozen controller moved to %d", got)
	}
}

func TestDescendingStopsAtCmin(t *testing.T) {
	c := Descending{}.NewController(job.ExecutorInfo{MaxThreads: 4})
	c.StageStart(meta(0, 10000, true))
	seq := 0
	feed(c, 0, 4, 900, 1<<20, &seq) // 4 → 2
	got := feed(c, 0, 2, 100, 8<<20, &seq)
	if got != 2 {
		t.Fatalf("threads = %d, want floor at cmin 2", got)
	}
}

func TestNoRollbackFreezesInPlace(t *testing.T) {
	c := NoRollback{}.NewController(testExec)
	c.StageStart(meta(0, 10000, true))
	seq := 0
	feed(c, 0, 2, 300, 4<<20, &seq) // → 4
	// Worse interval: freeze AT 4, not back to 2.
	if got := feed(c, 0, 4, 900, 1<<19, &seq); got != 4 {
		t.Fatalf("threads = %d, want frozen at 4", got)
	}
	if got := feed(c, 0, 20, 1, 100<<20, &seq); got != 4 {
		t.Fatalf("moved after freeze: %d", got)
	}
}

func TestUtilizationDrivenGrowsOnUtilization(t *testing.T) {
	c := UtilizationDriven{}.NewController(testExec)
	c.StageStart(meta(0, 10000, true))
	seq := 0
	mk := func(util float64) job.TaskMetrics {
		m := tm(0, seq, 100, 1<<20)
		m.DiskBusyFrac = util
		seq++
		return m
	}
	// Rising utilization: grow.
	var threads int
	for i := 0; i < 2; i++ {
		threads, _ = c.TaskDone(mk(0.40))
	}
	if threads != 4 {
		t.Fatalf("threads = %d, want 4", threads)
	}
	for i := 0; i < 4; i++ {
		threads, _ = c.TaskDone(mk(0.70))
	}
	if threads != 8 {
		t.Fatalf("threads = %d, want 8", threads)
	}
	// Plateaued utilization (the paper's indistinguishable top): stop.
	for i := 0; i < 8; i++ {
		threads, _ = c.TaskDone(mk(0.705))
	}
	if threads != 4 {
		t.Fatalf("threads = %d, want halved to 4 on plateau", threads)
	}
}

func TestAblationPolicyNames(t *testing.T) {
	if (Descending{}).Name() != "dynamic-descending" {
		t.Error("descending name")
	}
	if (NoRollback{}).Name() != "dynamic-no-rollback" {
		t.Error("no-rollback name")
	}
	if (UtilizationDriven{}).Name() != "utilization-driven" {
		t.Error("utilization name")
	}
	if (Dynamic{Cmin: 1}).Name() != "dynamic-cmin1" {
		t.Error("cmin1 name")
	}
	if (Dynamic{Cmin: 2}).Name() != "dynamic" {
		t.Error("cmin2 should be plain dynamic")
	}
}

func TestAIMDAdditiveIncrease(t *testing.T) {
	c := AIMD{}.NewController(testExec)
	c.StageStart(meta(0, 100000, true))
	seq := 0
	// Improving: +2 per interval.
	if got := feed(c, 0, 2, 100, 4<<20, &seq); got != 4 {
		t.Fatalf("threads = %d, want 4", got)
	}
	if got := feed(c, 0, 4, 90, 4<<20, &seq); got != 6 {
		t.Fatalf("threads = %d, want additive 6", got)
	}
	if got := feed(c, 0, 6, 80, 4<<20, &seq); got != 8 {
		t.Fatalf("threads = %d, want 8", got)
	}
}

func TestAIMDMultiplicativeDecrease(t *testing.T) {
	c := AIMD{}.NewController(testExec)
	c.StageStart(meta(0, 100000, true))
	seq := 0
	feed(c, 0, 2, 100, 4<<20, &seq) // → 4
	feed(c, 0, 4, 90, 4<<20, &seq)  // → 6
	// Much worse: halve to 3.
	if got := feed(c, 0, 6, 900, 1<<19, &seq); got != 3 {
		t.Fatalf("threads = %d, want halved 3", got)
	}
	// AIMD never freezes — it grows again on improvement.
	if got := feed(c, 0, 3, 50, 8<<20, &seq); got != 5 {
		t.Fatalf("threads = %d, want 5 (no freeze)", got)
	}
}

func TestAIMDBounds(t *testing.T) {
	c := AIMD{Step: 16}.NewController(job.ExecutorInfo{MaxThreads: 8})
	c.StageStart(meta(0, 100000, true))
	seq := 0
	if got := feed(c, 0, 2, 1, 1<<20, &seq); got != 8 {
		t.Fatalf("threads = %d, want capped at cmax 8", got)
	}
}
