// Package core implements the paper's contribution: thread-pool sizing
// policies for big-data executors.
//
//   - Default reproduces stock Spark: one worker thread per virtual core,
//     fixed for the whole application.
//   - Static is §4's solution: stages structurally marked as I/O (they read
//     from or write to the DFS) run with a user-chosen thread count, all
//     other stages with the default.
//   - BestFit fixes a per-stage thread count, used to realize the paper's
//     hypothetical "static BestFit" composed from per-stage sweep optima.
//   - Dynamic is §5's self-adaptive executor: a MAPE-K feedback loop per
//     executor that monitors epoll-wait time (ε) and I/O throughput (µ),
//     analyzes the congestion index ζ = ε/µ, and hill-climbs the pool size
//     from cmin upward by doubling, rolling back one step the moment
//     congestion worsens.
package core

import (
	"fmt"

	"sae/internal/engine/job"
)

// Default is stock Spark behaviour: the pool always has MaxThreads (= one
// thread per virtual core) threads.
type Default struct{}

// Name implements job.Policy.
func (Default) Name() string { return "default" }

// InitialThreads implements job.Policy.
func (Default) InitialThreads(exec job.ExecutorInfo, _ job.StageMeta) int {
	return exec.MaxThreads
}

// NewController implements job.Policy.
func (Default) NewController(exec job.ExecutorInfo) job.Controller {
	return &fixedController{pick: func(job.StageMeta) int { return exec.MaxThreads }}
}

var _ job.Policy = Default{}

// Static is the paper's §4 solution: a single operator-chosen thread count
// for all structurally I/O-marked stages; the default everywhere else. Its
// five limitations (L1–L5) motivate Dynamic.
type Static struct {
	// IOThreads is the user-supplied thread count for I/O stages.
	IOThreads int
}

// Name implements job.Policy.
func (s Static) Name() string { return fmt.Sprintf("static-%d", s.IOThreads) }

// InitialThreads implements job.Policy.
func (s Static) InitialThreads(exec job.ExecutorInfo, meta job.StageMeta) int {
	return s.pick(exec, meta)
}

func (s Static) pick(exec job.ExecutorInfo, meta job.StageMeta) int {
	if meta.IOMarked && s.IOThreads > 0 {
		return clamp(s.IOThreads, 1, exec.MaxThreads)
	}
	return exec.MaxThreads
}

// NewController implements job.Policy.
func (s Static) NewController(exec job.ExecutorInfo) job.Controller {
	return &fixedController{pick: func(meta job.StageMeta) int { return s.pick(exec, meta) }}
}

var _ job.Policy = Static{}

// BestFit pins an explicit thread count per stage ID (stages absent from the
// map use the default). The experiment harness composes it from the
// per-stage optima of a static sweep, realizing the paper's "static BestFit"
// comparison bars.
type BestFit struct {
	// Threads maps stage ID to thread count.
	Threads map[int]int
	// Label overrides the policy name (defaults to "static-bestfit").
	Label string
}

// Name implements job.Policy.
func (b BestFit) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return "static-bestfit"
}

// InitialThreads implements job.Policy.
func (b BestFit) InitialThreads(exec job.ExecutorInfo, meta job.StageMeta) int {
	if t, ok := b.Threads[meta.ID]; ok && t > 0 {
		return clamp(t, 1, exec.MaxThreads)
	}
	return exec.MaxThreads
}

// NewController implements job.Policy.
func (b BestFit) NewController(exec job.ExecutorInfo) job.Controller {
	return &fixedController{pick: func(meta job.StageMeta) int { return b.InitialThreads(exec, meta) }}
}

var _ job.Policy = BestFit{}

// fixedController applies a per-stage function and never adapts.
type fixedController struct {
	pick      func(job.StageMeta) int
	threads   int
	decisions []job.Decision
}

func (c *fixedController) StageStart(meta job.StageMeta) int {
	c.threads = c.pick(meta)
	return c.threads
}

func (c *fixedController) TaskDone(job.TaskMetrics) (int, bool) { return c.threads, false }

func (c *fixedController) Decisions() []job.Decision { return c.decisions }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
