package core

import (
	"fmt"

	"sae/internal/engine/job"
	"sae/internal/metrics"
)

// AIMD is a TCP-style alternative to the paper's doubling hill climb:
// additive increase (+Step threads) while the congestion index improves or
// holds, multiplicative decrease (halve) when it worsens — and, unlike the
// paper's controller, it never freezes: it keeps oscillating around the
// optimum for the whole stage. Included as an ablation of the paper's
// freeze-after-rollback design: AIMD tracks environment drift but pays a
// permanent oscillation cost and converges far more slowly from cmin
// (+Step per interval instead of ×2).
type AIMD struct {
	// Cmin is the starting pool size (0 selects 2).
	Cmin int
	// Step is the additive increase (0 selects 2).
	Step int
	// Tolerance is the relative ζ degradation tolerated before a
	// multiplicative decrease (0 selects 0.10).
	Tolerance float64
}

// Name implements job.Policy.
func (AIMD) Name() string { return "aimd" }

// InitialThreads implements job.Policy.
func (a AIMD) InitialThreads(exec job.ExecutorInfo, _ job.StageMeta) int {
	return clamp(a.cmin(), 1, exec.MaxThreads)
}

func (a AIMD) cmin() int {
	if a.Cmin <= 0 {
		return 2
	}
	return a.Cmin
}

func (a AIMD) step() int {
	if a.Step <= 0 {
		return 2
	}
	return a.Step
}

func (a AIMD) tolerance() float64 {
	if a.Tolerance <= 0 {
		return 0.10
	}
	return a.Tolerance
}

// NewController implements job.Policy.
func (a AIMD) NewController(exec job.ExecutorInfo) job.Controller {
	return &aimdController{cfg: a, cmax: exec.MaxThreads}
}

var _ job.Policy = AIMD{}

type aimdController struct {
	cfg  AIMD
	cmax int

	stage       job.StageMeta
	threads     int
	first       bool
	sinceResize int64

	acc      metrics.Interval
	prevZeta float64

	decisions []job.Decision
}

// StageStart implements job.Controller.
func (c *aimdController) StageStart(meta job.StageMeta) int {
	c.stage = meta
	c.threads = clamp(c.cfg.cmin(), 1, c.cmax)
	c.first = true
	c.sinceResize = 0
	c.acc = metrics.Interval{}
	c.prevZeta = 0
	return c.threads
}

// TaskDone implements job.Controller.
func (c *aimdController) TaskDone(tm job.TaskMetrics) (int, bool) {
	if tm.Stage != c.stage.ID || int64(tm.Start) < c.sinceResize {
		return c.threads, false
	}
	c.acc = c.acc.Merge(metrics.Interval{
		Start:     tm.Start,
		End:       tm.End,
		BlockedIO: tm.BlockedIO,
		Bytes:     tm.BytesMoved,
		Tasks:     1,
	})
	if c.acc.Tasks < c.threads {
		return c.threads, false
	}
	zeta := congestion(c.acc)
	interval := c.acc
	c.acc = metrics.Interval{}
	c.sinceResize = int64(interval.End)

	prev := c.threads
	improved := c.first || interval.Bytes == 0 || zeta < c.prevZeta*(1+c.cfg.tolerance())
	c.first = false
	c.prevZeta = zeta
	if improved {
		c.threads = clamp(c.threads+c.cfg.step(), c.cfg.cmin(), c.cmax)
	} else {
		c.threads = clamp(c.threads/2, c.cfg.cmin(), c.cmax)
	}
	c.decisions = append(c.decisions, job.Decision{
		At: interval.End, Stage: c.stage.ID, Threads: c.threads, Interval: interval,
		Reason: fmt.Sprintf("AIMD %d→%d (ζ=%.4g)", prev, c.threads, zeta),
	})
	return c.threads, c.threads != prev
}

// Decisions implements job.Controller.
func (c *aimdController) Decisions() []job.Decision { return c.decisions }
