package core

import (
	"fmt"
	"time"

	"sae/internal/engine/job"
	"sae/internal/metrics"
)

// Dynamic is the paper's self-adaptive executor (§5): a MAPE-K control loop
// per executor and stage.
//
// [M]onitor  — every completed task reports its blocked-on-I/O time (the
// epoll-wait analogue, ε) and bytes moved; the controller accumulates them
// over an interval I_j, defined as the completion of j tasks while the pool
// size is j.
//
// [A]nalyze  — at interval end the analyzer computes the congestion index
// ζ_j = ε_j/µ_j (normalized per task, since ε sums over the j concurrent
// tasks of the interval) and compares it against the previous interval's
// ζ_{j/2}. Lower congestion means the extra threads paid off.
//
// [P]lan     — hill-climbing over pool sizes: start at Cmin and double while
// congestion keeps falling, capped at cmax (the executor's virtual cores).
// On the first worsening, roll back to the previous size and freeze until
// the stage ends — if j threads lose to j/2, 2j would only contend more.
//
// [E]xecute  — the executor applies the returned size to its pool and
// notifies the driver's scheduler so slot accounting stays consistent (the
// engine's ThreadCountUpdate message, mirroring the paper's protocol
// extension).
type Dynamic struct {
	// Cmin is the hill-climb starting point (paper: 2 — a single thread
	// almost never wins).
	Cmin int
	// Tolerance is the relative ζ degradation tolerated before rolling
	// back: growth continues while ζ_j < ζ_{j/2}·(1+Tolerance). A small
	// positive tolerance keeps CPU-dominated stages (whose ζ is flat in
	// the thread count) climbing toward the core count instead of
	// freezing on measurement noise. The zero value selects 0.10.
	Tolerance float64
	// ReprobeTasks re-opens the hill climb after this many completions
	// in the frozen state (0 = never, the paper's behaviour). This is
	// the extension the paper's outlook motivates: in dynamic
	// environments (cloud co-location, background interference) "an
	// ideal state at one time is not guaranteed to be the same at
	// another" (L4), so the controller periodically re-explores from
	// cmin within a stage.
	ReprobeTasks int
}

// DefaultDynamic returns the paper's configuration.
func DefaultDynamic() Dynamic { return Dynamic{Cmin: 2} }

// Name implements job.Policy.
func (d Dynamic) Name() string {
	name := "dynamic"
	if d.Cmin > 0 && d.Cmin != 2 {
		name = fmt.Sprintf("dynamic-cmin%d", d.Cmin)
	}
	if d.ReprobeTasks > 0 {
		name += "-reprobe"
	}
	return name
}

// InitialThreads implements job.Policy.
func (d Dynamic) InitialThreads(exec job.ExecutorInfo, _ job.StageMeta) int {
	return clamp(d.cmin(), 1, exec.MaxThreads)
}

func (d Dynamic) cmin() int {
	if d.Cmin <= 0 {
		return 2
	}
	return d.Cmin
}

func (d Dynamic) tolerance() float64 {
	if d.Tolerance <= 0 {
		return 0.10
	}
	return d.Tolerance
}

// NewController implements job.Policy.
func (d Dynamic) NewController(exec job.ExecutorInfo) job.Controller {
	return &dynamicController{
		cfg:  d,
		exec: exec,
		cmax: exec.MaxThreads,
	}
}

var _ job.Policy = Dynamic{}

type dynamicController struct {
	cfg  Dynamic
	exec job.ExecutorInfo
	cmax int

	stage   job.StageMeta
	threads int
	locked  bool
	first   bool
	// sinceResize is the time of the last pool resize; only tasks that
	// started after it are attributed to the current interval, so each
	// rung measures steady state at its own pool size rather than a
	// smear across regimes.
	sinceResize time.Duration

	acc metrics.Interval

	prev     metrics.Interval
	prevZeta float64

	// lockedDone counts completions since the freeze, for re-probing.
	lockedDone int

	decisions []job.Decision
}

// StageStart implements job.Controller: reset the loop and descend to cmin.
func (c *dynamicController) StageStart(meta job.StageMeta) int {
	c.stage = meta
	c.threads = clamp(c.cfg.cmin(), 1, c.cmax)
	c.locked = false
	c.first = true
	c.sinceResize = 0
	c.acc = metrics.Interval{}
	c.prev = metrics.Interval{}
	c.prevZeta = 0
	c.lockedDone = 0
	return c.threads
}

// TaskDone implements job.Controller.
func (c *dynamicController) TaskDone(tm job.TaskMetrics) (int, bool) {
	if tm.Stage != c.stage.ID {
		return c.threads, false
	}
	if c.locked {
		if c.cfg.ReprobeTasks <= 0 {
			return c.threads, false
		}
		c.lockedDone++
		if c.lockedDone < c.cfg.ReprobeTasks {
			return c.threads, false
		}
		// Re-open the climb: the environment may have changed (L4).
		c.locked = false
		c.first = true
		c.lockedDone = 0
		c.acc = metrics.Interval{}
		c.prev = metrics.Interval{}
		c.prevZeta = 0
		c.sinceResize = tm.End
		c.threads = clamp(c.cfg.cmin(), 1, c.cmax)
		c.decisions = append(c.decisions, job.Decision{
			At: tm.End, Stage: c.stage.ID, Threads: c.threads,
			Reason: "re-probe: restarting hill climb",
		})
		return c.threads, true
	}
	if tm.Start < c.sinceResize {
		return c.threads, false
	}
	c.acc = c.acc.Merge(metrics.Interval{
		Start:     tm.Start,
		End:       tm.End,
		BlockedIO: tm.BlockedIO,
		Bytes:     tm.BytesMoved,
		Tasks:     1,
	})
	if c.acc.Tasks < c.threads {
		return c.threads, false
	}
	return c.analyze()
}

// analyze closes the current interval and plans the next pool size.
func (c *dynamicController) analyze() (int, bool) {
	zeta := congestion(c.acc)
	interval := c.acc
	c.acc = metrics.Interval{}

	prevZeta := c.prevZeta
	switch {
	case c.first:
		c.first = false
		c.commit(interval, zeta)
		if c.threads >= c.cmax {
			c.lock(interval, "started at cmax")
			return c.threads, false
		}
		c.sinceResize = interval.End
		return c.grow(interval, fmt.Sprintf("first interval, ζ=%.4g", zeta)), true

	case c.better(zeta, interval):
		c.commit(interval, zeta)
		if c.threads >= c.cmax {
			c.lock(interval, "reached cmax with improving congestion")
			return c.threads, false
		}
		c.sinceResize = interval.End
		return c.grow(interval, fmt.Sprintf("ζ improved %.4g → %.4g", prevZeta, zeta)), true

	default:
		// Roll back: if j threads lose to j/2, 2j would only make
		// the contention worse (§5.2).
		c.threads = clamp(c.threads/2, c.cfg.cmin(), c.cmax)
		c.locked = true
		c.log(interval, fmt.Sprintf("ζ worsened %.4g → %.4g; rollback and freeze", c.prevZeta, zeta))
		return c.threads, true
	}
}

// better reports whether the closed interval shows less I/O congestion than
// the previous one. Intervals that moved no data at all carry no congestion
// signal; treat them as improvements so pure-CPU stages climb to the full
// core count, matching stock Spark's CPU-bound assumption. (Stages with any
// I/O are judged by ζ directly: on CPU-dominated stages throughput scales
// with the pool, so ζ falls and the climb continues anyway — e.g. the
// paper's Aggregation scan stage ends at 128/128.)
func (c *dynamicController) better(zeta float64, iv metrics.Interval) bool {
	if iv.Bytes == 0 && c.prev.Bytes == 0 {
		return true
	}
	return zeta < c.prevZeta*(1+c.cfg.tolerance())
}

func (c *dynamicController) commit(iv metrics.Interval, zeta float64) {
	c.prev = iv
	c.prevZeta = zeta
}

func (c *dynamicController) grow(iv metrics.Interval, reason string) int {
	c.threads = clamp(c.threads*2, c.cfg.cmin(), c.cmax)
	c.log(iv, reason)
	return c.threads
}

func (c *dynamicController) lock(iv metrics.Interval, reason string) {
	c.locked = true
	c.log(iv, reason)
}

func (c *dynamicController) log(iv metrics.Interval, reason string) {
	c.decisions = append(c.decisions, job.Decision{
		At:       iv.End,
		Stage:    c.stage.ID,
		Threads:  c.threads,
		Interval: iv,
		Reason:   reason,
	})
}

// Decisions implements job.Controller.
func (c *dynamicController) Decisions() []job.Decision { return c.decisions }

// congestion returns the congestion index ζ = ε/µ the analyzer minimizes.
//
// The paper measures ε with strace as the executor process's epoll-wait
// time: the wait of the JVM's small, fixed set of I/O event-loop threads,
// which park whenever I/O is outstanding. Over an interval in which I/O is
// in flight essentially continuously, that quantity is proportional to the
// interval's *duration*, not to the number of worker threads — so
// ζ = ε/µ ≈ κ·D/µ. We normalize by the interval's task count (an interval
// I_j contains j tasks by construction) to keep ζ comparable across rungs
// of the doubling ladder:
//
//	ζ_j = D_j / (tasks_j · µ_j)
//
// Minimizing this ζ is exactly congestion-avoidance: it falls while doubling
// the pool still improves executor goodput and rises as soon as added
// threads saturate the device.
func congestion(iv metrics.Interval) float64 {
	if iv.Tasks == 0 {
		return 0
	}
	mu := iv.Throughput()
	if mu <= 0 {
		return 0
	}
	return iv.Duration().Seconds() / float64(iv.Tasks) / mu
}
