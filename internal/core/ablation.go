package core

// Ablation variants of the self-adaptive executor, quantifying the design
// choices the paper argues for in §5.2:
//
//   - Descending: start the hill climb at cmax and halve, instead of
//     ascending from cmin. The paper rejects this because the scheduler has
//     already filled cmax slots (halving queues tasks) and a bad cmax start
//     is very expensive — this variant lets the claim be measured.
//   - NoRollback: keep the worsened pool size instead of rolling back one
//     rung, isolating the value of the rollback step.
//   - UtilizationDriven: analyze disk utilization (iostat %util) instead of
//     ζ = ε/µ. The paper argues utilization cannot discriminate between
//     near-saturated settings (Fig. 5a: all ≥91%); this controller
//     demonstrates the consequence.

import (
	"fmt"

	"sae/internal/engine/job"
	"sae/internal/metrics"
)

// Descending is the top-down ablation of Dynamic: start at cmax, halve
// while the congestion index improves, roll back (double) and freeze once
// it worsens.
type Descending struct {
	// Cmin bounds the descent (0 selects 2, as in Dynamic).
	Cmin int
	// Tolerance is the relative ζ degradation tolerated before the
	// rollback, as in Dynamic (0 selects 0.10).
	Tolerance float64
}

// Name implements job.Policy.
func (Descending) Name() string { return "dynamic-descending" }

// InitialThreads implements job.Policy.
func (d Descending) InitialThreads(exec job.ExecutorInfo, _ job.StageMeta) int {
	return exec.MaxThreads
}

// NewController implements job.Policy.
func (d Descending) NewController(exec job.ExecutorInfo) job.Controller {
	dd := Dynamic{Cmin: d.Cmin, Tolerance: d.Tolerance}
	return &descendingController{
		dynamicController: dynamicController{cfg: dd, exec: exec, cmax: exec.MaxThreads},
	}
}

var _ job.Policy = Descending{}

type descendingController struct {
	dynamicController
}

// StageStart implements job.Controller: reset and start from cmax.
func (c *descendingController) StageStart(meta job.StageMeta) int {
	c.dynamicController.StageStart(meta)
	c.threads = c.cmax
	return c.threads
}

// TaskDone implements job.Controller with inverted stepping.
func (c *descendingController) TaskDone(tm job.TaskMetrics) (int, bool) {
	if c.locked || tm.Stage != c.stage.ID || tm.Start < c.sinceResize {
		return c.threads, false
	}
	c.acc = c.acc.Merge(metrics.Interval{
		Start:     tm.Start,
		End:       tm.End,
		BlockedIO: tm.BlockedIO,
		Bytes:     tm.BytesMoved,
		Tasks:     1,
	})
	if c.acc.Tasks < c.threads {
		return c.threads, false
	}
	zeta := congestion(c.acc)
	interval := c.acc
	c.acc = metrics.Interval{}

	prevZeta := c.prevZeta
	cmin := c.cfg.cmin()
	switch {
	case c.first:
		c.first = false
		c.commit(interval, zeta)
		if c.threads <= cmin {
			c.lock(interval, "started at cmin")
			return c.threads, false
		}
		c.threads = clamp(c.threads/2, cmin, c.cmax)
		c.sinceResize = interval.End
		c.log(interval, fmt.Sprintf("first interval, ζ=%.4g", zeta))
		return c.threads, true

	case c.better(zeta, interval):
		c.commit(interval, zeta)
		if c.threads <= cmin {
			c.lock(interval, "reached cmin with improving congestion")
			return c.threads, false
		}
		c.threads = clamp(c.threads/2, cmin, c.cmax)
		c.sinceResize = interval.End
		c.log(interval, fmt.Sprintf("ζ improved %.4g → %.4g", prevZeta, zeta))
		return c.threads, true

	default:
		c.threads = clamp(c.threads*2, cmin, c.cmax)
		c.locked = true
		c.log(interval, fmt.Sprintf("ζ worsened %.4g → %.4g; rollback and freeze", prevZeta, zeta))
		return c.threads, true
	}
}

// NoRollback ablates the rollback step: on a worsened interval the
// controller freezes at the worsened size instead of stepping back.
type NoRollback struct {
	Cmin      int
	Tolerance float64
}

// Name implements job.Policy.
func (NoRollback) Name() string { return "dynamic-no-rollback" }

// InitialThreads implements job.Policy.
func (n NoRollback) InitialThreads(exec job.ExecutorInfo, _ job.StageMeta) int {
	return clamp(Dynamic{Cmin: n.Cmin}.cmin(), 1, exec.MaxThreads)
}

// NewController implements job.Policy.
func (n NoRollback) NewController(exec job.ExecutorInfo) job.Controller {
	dd := Dynamic{Cmin: n.Cmin, Tolerance: n.Tolerance}
	return &noRollbackController{
		dynamicController: dynamicController{cfg: dd, exec: exec, cmax: exec.MaxThreads},
	}
}

var _ job.Policy = NoRollback{}

type noRollbackController struct {
	dynamicController
}

// TaskDone implements job.Controller: like Dynamic, but a worsened interval
// freezes in place.
func (c *noRollbackController) TaskDone(tm job.TaskMetrics) (int, bool) {
	if c.locked || tm.Stage != c.stage.ID || tm.Start < c.sinceResize {
		return c.threads, false
	}
	c.acc = c.acc.Merge(metrics.Interval{
		Start:     tm.Start,
		End:       tm.End,
		BlockedIO: tm.BlockedIO,
		Bytes:     tm.BytesMoved,
		Tasks:     1,
	})
	if c.acc.Tasks < c.threads {
		return c.threads, false
	}
	zeta := congestion(c.acc)
	interval := c.acc
	c.acc = metrics.Interval{}
	prevZeta := c.prevZeta
	switch {
	case c.first, c.better(zeta, interval):
		c.first = false
		c.commit(interval, zeta)
		if c.threads >= c.cmax {
			c.lock(interval, "reached cmax")
			return c.threads, false
		}
		c.threads = clamp(c.threads*2, c.cfg.cmin(), c.cmax)
		c.sinceResize = interval.End
		c.log(interval, fmt.Sprintf("grow, ζ %.4g → %.4g", prevZeta, zeta))
		return c.threads, true
	default:
		c.locked = true
		c.log(interval, fmt.Sprintf("ζ worsened %.4g → %.4g; freeze WITHOUT rollback", prevZeta, zeta))
		return c.threads, false
	}
}

// UtilizationDriven hill-climbs on average disk utilization instead of the
// congestion index: grow while utilization keeps rising meaningfully.
type UtilizationDriven struct {
	Cmin int
	// MinGain is the utilization improvement (in percentage points /
	// 100) required to keep growing; 0 selects 0.01.
	MinGain float64
}

// Name implements job.Policy.
func (UtilizationDriven) Name() string { return "utilization-driven" }

// InitialThreads implements job.Policy.
func (u UtilizationDriven) InitialThreads(exec job.ExecutorInfo, _ job.StageMeta) int {
	return clamp(Dynamic{Cmin: u.Cmin}.cmin(), 1, exec.MaxThreads)
}

// NewController implements job.Policy.
func (u UtilizationDriven) NewController(exec job.ExecutorInfo) job.Controller {
	gain := u.MinGain
	if gain <= 0 {
		gain = 0.01
	}
	return &utilController{
		cmin: Dynamic{Cmin: u.Cmin}.cmin(),
		cmax: exec.MaxThreads,
		gain: gain,
	}
}

var _ job.Policy = UtilizationDriven{}

type utilController struct {
	cmin, cmax int
	gain       float64

	stage       job.StageMeta
	threads     int
	locked      bool
	first       bool
	sinceResize int64 // ns

	count    int
	utilSum  float64
	prevUtil float64

	decisions []job.Decision
}

// StageStart implements job.Controller.
func (c *utilController) StageStart(meta job.StageMeta) int {
	c.stage = meta
	c.threads = clamp(c.cmin, 1, c.cmax)
	c.locked = false
	c.first = true
	c.sinceResize = 0
	c.count = 0
	c.utilSum = 0
	c.prevUtil = 0
	return c.threads
}

// TaskDone implements job.Controller.
func (c *utilController) TaskDone(tm job.TaskMetrics) (int, bool) {
	if c.locked || tm.Stage != c.stage.ID || int64(tm.Start) < c.sinceResize {
		return c.threads, false
	}
	c.count++
	c.utilSum += tm.DiskBusyFrac
	if c.count < c.threads {
		return c.threads, false
	}
	util := c.utilSum / float64(c.count)
	c.count = 0
	c.utilSum = 0
	c.sinceResize = int64(tm.End)

	c.decisions = append(c.decisions, job.Decision{
		At: tm.End, Stage: c.stage.ID, Threads: c.threads,
		Reason: fmt.Sprintf("disk utilization %.1f%%", 100*util),
	})
	switch {
	case c.first:
		c.first = false
	case util < c.prevUtil+c.gain:
		// Utilization stopped improving — §5.2's point: near the
		// saturation plateau this cannot tell good from bad.
		c.locked = true
		c.threads = clamp(c.threads/2, c.cmin, c.cmax)
		return c.threads, true
	}
	c.prevUtil = util
	if c.threads >= c.cmax {
		c.locked = true
		return c.threads, false
	}
	c.threads = clamp(c.threads*2, c.cmin, c.cmax)
	return c.threads, true
}

// Decisions implements job.Controller.
func (c *utilController) Decisions() []job.Decision { return c.decisions }
