package core

import (
	"testing"
	"time"

	"sae/internal/engine/job"
)

var testExec = job.ExecutorInfo{ID: 0, Node: 0, MaxThreads: 32}

func meta(id int, tasks int, io bool) job.StageMeta {
	return job.StageMeta{ID: id, Name: "s", NumTasks: tasks, IOMarked: io}
}

// tm builds a task completion with the given blocked fraction of a 1-second
// task that moved the given bytes.
func tm(stage int, seq int, blockedMS int, bytes int64) job.TaskMetrics {
	start := time.Duration(seq) * time.Second
	return job.TaskMetrics{
		Stage:      stage,
		Index:      seq,
		Start:      start,
		End:        start + time.Second,
		BlockedIO:  time.Duration(blockedMS) * time.Millisecond,
		BytesMoved: bytes,
	}
}

// feed completes n tasks with identical characteristics and returns the
// last returned thread count.
func feed(c job.Controller, stage, n int, blockedMS int, bytes int64, seq *int) int {
	threads := 0
	for i := 0; i < n; i++ {
		threads, _ = c.TaskDone(tm(stage, *seq, blockedMS, bytes))
		*seq++
	}
	return threads
}

func TestDynamicStartsAtCmin(t *testing.T) {
	c := DefaultDynamic().NewController(testExec)
	if got := c.StageStart(meta(0, 100, true)); got != 2 {
		t.Fatalf("initial threads = %d, want 2", got)
	}
}

func TestDynamicDoublesAfterFirstInterval(t *testing.T) {
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 100, true))
	seq := 0
	// First interval: 2 tasks complete → double to 4 unconditionally.
	if got := feed(c, 0, 2, 500, 1<<20, &seq); got != 4 {
		t.Fatalf("after first interval threads = %d, want 4", got)
	}
}

func TestDynamicGrowsWhileCongestionImproves(t *testing.T) {
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 1000, true))
	seq := 0
	feed(c, 0, 2, 500, 1<<20, &seq) // I2 → 4
	// I4: 4 tasks with much lower per-task congestion → 8.
	if got := feed(c, 0, 4, 300, 2<<20, &seq); got != 8 {
		t.Fatalf("threads = %d, want 8", got)
	}
	// I8: still better → 16.
	if got := feed(c, 0, 8, 200, 3<<20, &seq); got != 16 {
		t.Fatalf("threads = %d, want 16", got)
	}
}

func TestDynamicRollsBackOnWorseCongestion(t *testing.T) {
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 1000, true))
	seq := 0
	feed(c, 0, 2, 300, 4<<20, &seq) // I2 → 4
	// I4: per-task blocked way up, bytes down → congestion worsened →
	// rollback to 2 and freeze.
	if got := feed(c, 0, 4, 900, 1<<20, &seq); got != 2 {
		t.Fatalf("threads after worse interval = %d, want rollback to 2", got)
	}
	// Frozen: further completions change nothing.
	if got := feed(c, 0, 20, 1, 100<<20, &seq); got != 2 {
		t.Fatalf("frozen controller moved to %d", got)
	}
}

func TestDynamicCapsAtCmax(t *testing.T) {
	c := DefaultDynamic().NewController(job.ExecutorInfo{MaxThreads: 8})
	c.StageStart(meta(0, 1000, true))
	seq := 0
	feed(c, 0, 2, 500, 1<<20, &seq)        // → 4
	feed(c, 0, 4, 300, 2<<20, &seq)        // → 8
	got := feed(c, 0, 8, 100, 4<<20, &seq) // improving at cmax → stay
	if got != 8 {
		t.Fatalf("threads = %d, want capped 8", got)
	}
	if got := feed(c, 0, 8, 1, 100<<20, &seq); got != 8 {
		t.Fatalf("locked at cmax but moved to %d", got)
	}
}

func TestDynamicCPUBoundClimbsToMax(t *testing.T) {
	// Tasks that move bytes but barely block: no congestion signal, so
	// the controller should keep climbing to cmax like stock Spark.
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 10000, false))
	seq := 0
	threads := 2
	for threads < 32 {
		got := feed(c, 0, threads, 1, 1<<20, &seq)
		if got <= threads {
			t.Fatalf("CPU-bound stage stuck at %d threads", got)
		}
		threads = got
	}
}

func TestDynamicZeroByteTasksClimb(t *testing.T) {
	// Pure-CPU tasks (no I/O at all) must also climb.
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 10000, false))
	seq := 0
	feed(c, 0, 2, 0, 0, &seq)
	got := feed(c, 0, 4, 0, 0, &seq)
	if got != 8 {
		t.Fatalf("threads = %d, want 8", got)
	}
}

func TestDynamicResetsPerStage(t *testing.T) {
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 1000, true))
	seq := 0
	feed(c, 0, 2, 300, 4<<20, &seq)
	feed(c, 0, 4, 900, 1<<20, &seq) // rollback + freeze at 2
	// New stage: descend to cmin again and re-adapt.
	if got := c.StageStart(meta(1, 1000, false)); got != 2 {
		t.Fatalf("stage restart threads = %d, want 2", got)
	}
	if got := feed(c, 1, 2, 500, 1<<20, &seq); got != 4 {
		t.Fatalf("threads after new stage first interval = %d, want 4", got)
	}
}

func TestDynamicIgnoresStaleStageCompletions(t *testing.T) {
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 1000, true))
	seq := 0
	feed(c, 0, 1, 500, 1<<20, &seq)
	c.StageStart(meta(1, 1000, true))
	// A straggler from stage 0 completes during stage 1.
	threads, changed := c.TaskDone(tm(0, seq, 500, 1<<20))
	if changed || threads != 2 {
		t.Fatalf("stale completion changed threads to %d", threads)
	}
}

func TestDynamicDecisionLog(t *testing.T) {
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 1000, true))
	seq := 0
	feed(c, 0, 2, 300, 4<<20, &seq)
	feed(c, 0, 4, 900, 1<<20, &seq)
	ds := c.Decisions()
	if len(ds) != 2 {
		t.Fatalf("decisions = %d, want 2", len(ds))
	}
	if ds[0].Threads != 4 || ds[1].Threads != 2 {
		t.Fatalf("decision threads = %d,%d want 4,2", ds[0].Threads, ds[1].Threads)
	}
	if ds[1].Interval.Tasks != 4 {
		t.Fatalf("second interval tasks = %d, want 4", ds[1].Interval.Tasks)
	}
}

func TestDynamicShortStageNeverCompletesInterval(t *testing.T) {
	// A stage with a single task can never close the 2-task interval;
	// the controller must simply stay at cmin without misbehaving.
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 1, true))
	threads, changed := c.TaskDone(tm(0, 0, 500, 1<<20))
	if changed || threads != 2 {
		t.Fatalf("single-task stage moved threads to %d", threads)
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := Default{}
	c := p.NewController(testExec)
	if got := c.StageStart(meta(0, 10, true)); got != 32 {
		t.Fatalf("default threads = %d, want 32", got)
	}
	if got, changed := c.TaskDone(tm(0, 0, 900, 1)); changed || got != 32 {
		t.Fatalf("default adapted to %d", got)
	}
	if p.InitialThreads(testExec, meta(0, 10, true)) != 32 {
		t.Fatal("InitialThreads mismatch")
	}
}

func TestStaticPolicyMarkedVsUnmarked(t *testing.T) {
	p := Static{IOThreads: 8}
	c := p.NewController(testExec)
	if got := c.StageStart(meta(0, 10, true)); got != 8 {
		t.Fatalf("I/O stage threads = %d, want 8", got)
	}
	if got := c.StageStart(meta(1, 10, false)); got != 32 {
		t.Fatalf("compute stage threads = %d, want 32", got)
	}
	if p.InitialThreads(testExec, meta(0, 10, true)) != 8 {
		t.Fatal("InitialThreads mismatch for I/O stage")
	}
}

func TestStaticClampsToCores(t *testing.T) {
	p := Static{IOThreads: 64}
	if got := p.InitialThreads(job.ExecutorInfo{MaxThreads: 32}, meta(0, 1, true)); got != 32 {
		t.Fatalf("threads = %d, want clamped 32", got)
	}
}

func TestBestFitPerStage(t *testing.T) {
	p := BestFit{Threads: map[int]int{0: 4, 2: 8}}
	c := p.NewController(testExec)
	if got := c.StageStart(meta(0, 10, true)); got != 4 {
		t.Fatalf("stage 0 threads = %d, want 4", got)
	}
	if got := c.StageStart(meta(1, 10, false)); got != 32 {
		t.Fatalf("stage 1 threads = %d, want default 32", got)
	}
	if got := c.StageStart(meta(2, 10, true)); got != 8 {
		t.Fatalf("stage 2 threads = %d, want 8", got)
	}
	if p.Name() != "static-bestfit" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestPolicyNames(t *testing.T) {
	if (Default{}).Name() != "default" {
		t.Fatal("default name")
	}
	if (Static{IOThreads: 8}).Name() != "static-8" {
		t.Fatal("static name")
	}
	if (Dynamic{}).Name() != "dynamic" {
		t.Fatal("dynamic name")
	}
	if (BestFit{Label: "x"}).Name() != "x" {
		t.Fatal("bestfit label")
	}
}

// Property-ish check: thread counts stay within [cmin, cmax] and on the
// doubling ladder under arbitrary measurement sequences.
func TestDynamicLadderInvariant(t *testing.T) {
	c := DefaultDynamic().NewController(testExec)
	c.StageStart(meta(0, 100000, true))
	seq := 0
	valid := map[int]bool{2: true, 4: true, 8: true, 16: true, 32: true}
	for i := 0; i < 5000; i++ {
		blocked := (i * 37) % 1000
		bytes := int64((i*13)%50) << 20
		threads, _ := c.TaskDone(tm(0, seq, blocked, bytes))
		seq++
		if !valid[threads] {
			t.Fatalf("threads %d off the doubling ladder", threads)
		}
	}
}
