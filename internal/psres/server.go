// Package psres implements a processor-sharing server in virtual time.
//
// A Server models a contended resource (disk, NIC, CPU) whose aggregate
// service rate depends on the number of concurrent streams: rate = Curve(n).
// Capacity is divided equally among active streams (optionally capped per
// stream, and scaled by per-stream weights for asymmetric operations such as
// writes that cost more than reads). This is the standard fluid approximation
// of time-sliced devices and is what makes I/O-contention effects — the
// subject of the paper — emerge from first principles: an HDD whose Curve
// falls with n serves *less total work* the more threads hammer it.
package psres

import (
	"fmt"
	"math"
	"time"

	"sae/internal/sim"
)

// Curve maps the number of concurrent streams to the aggregate service rate
// in units/second. It must be strictly positive for n >= 1, and must be a
// pure function of n: the server memoizes it per stream count, because
// device curves interpolate on a log scale and the transcendental math would
// otherwise dominate every arrival and departure.
type Curve func(n int) float64

// Flat returns a curve with constant aggregate rate regardless of
// concurrency (e.g. a network link).
func Flat(rate float64) Curve {
	return func(int) float64 { return rate }
}

// Config configures a Server.
type Config struct {
	// Name identifies the server in diagnostics.
	Name string
	// Curve gives the aggregate rate for n concurrent streams. Required.
	Curve Curve
	// PerStreamCap limits the rate of any single stream (0 = unlimited).
	// A CPU uses cap=1 core so one thread can never use two cores.
	PerStreamCap float64
	// OnActiveChange, if set, is called whenever the number of active
	// streams changes, with the new count. Used for joint integrators
	// such as the node-level iowait meter.
	OnActiveChange func(n int)
}

// Server is a processor-sharing resource. It must only be used from
// simulation (kernel or process) context; it needs no locking because the
// kernel serializes execution.
type Server struct {
	k   *sim.Kernel
	cfg Config

	streams []*stream
	last    time.Duration
	next    sim.Event
	// nextAt is the absolute time s.next is scheduled for, valid while
	// s.next is active. When a recompute lands on the same nanosecond —
	// an arrival that provably doesn't move the next completion, e.g. a
	// cap-bound CPU stream joining idle cores — the reschedule is skipped
	// outright.
	nextAt time.Duration
	// onComp caches the completion callback so rescheduling the next
	// completion never reallocates the closure.
	onComp func()
	// freeStream recycles stream structs (one per Serve call) and woken is
	// the completion pass's reusable scratch; together they make the
	// Serve/complete cycle allocation-free in steady state.
	freeStream *stream
	woken      []*stream
	scale      float64 // multiplies the curve (gray-failure throttling); 1 = nominal
	// curveMemo caches cfg.Curve(n) by n (unscaled); curves are pure, so a
	// cached value is bit-identical to recomputing it.
	curveMemo []float64

	busy           time.Duration // total time with >=1 active stream
	served         float64       // total units served
	activeIntegral float64       // ∫ n dt, in stream-seconds
}

type stream struct {
	remaining float64
	weight    float64
	rate      float64
	// proc is the single process blocked in Serve on this stream; it is
	// woken directly (Kernel.Wake) rather than through a per-stream Signal
	// allocation.
	proc *sim.Proc
	next *stream // free-list link
}

// NewServer returns a server bound to kernel k.
func NewServer(k *sim.Kernel, cfg Config) *Server {
	if cfg.Curve == nil {
		panic("psres: Config.Curve is required")
	}
	s := &Server{k: k, cfg: cfg, last: k.Now(), scale: 1}
	s.onComp = s.onCompletion
	return s
}

// curveAt returns cfg.Curve(n), memoized.
func (s *Server) curveAt(n int) float64 {
	if n < len(s.curveMemo) {
		if v := s.curveMemo[n]; v != 0 {
			return v
		}
	} else {
		memo := make([]float64, n+n/2+8)
		copy(memo, s.curveMemo)
		s.curveMemo = memo
	}
	v := s.cfg.Curve(n)
	s.curveMemo[n] = v
	return v
}

// SetRateScale rescales the server's aggregate service rate (and per-stream
// cap) to scale × nominal, re-planning any in-flight streams from the current
// instant. Gray-failure injection uses this to degrade a device mid-run;
// scale 1 restores nominal service.
func (s *Server) SetRateScale(scale float64) {
	if scale <= 0 || math.IsNaN(scale) {
		panic(fmt.Sprintf("psres %s: non-positive rate scale %v", s.cfg.Name, scale))
	}
	if scale == s.scale {
		return
	}
	s.advance()
	s.scale = scale
	s.recompute()
}

// RateScale returns the current service-rate scale (1 = nominal).
func (s *Server) RateScale() float64 { return s.scale }

// Serve blocks p until demand units have been served. Weight scales this
// stream's share of capacity (1 = normal; 0.5 = progresses at half the fair
// share, modelling e.g. writes that cost twice as much as reads).
func (s *Server) Serve(p *sim.Proc, demand, weight float64) {
	if demand <= 0 {
		return
	}
	if weight <= 0 {
		panic(fmt.Sprintf("psres %s: non-positive weight %v", s.cfg.Name, weight))
	}
	s.advance()
	st := s.freeStream
	if st != nil {
		s.freeStream = st.next
		st.next = nil
	} else {
		st = &stream{}
	}
	st.remaining, st.weight, st.proc = demand, weight, p
	s.streams = append(s.streams, st)
	s.notifyActive()
	s.recompute()
	p.Park()
}

// Active returns the number of streams currently in service.
func (s *Server) Active() int { return len(s.streams) }

// Stats is a snapshot of cumulative server statistics. Differences between
// two snapshots give windowed measurements.
type Stats struct {
	// Busy is the total virtual time the server had at least one stream.
	Busy time.Duration
	// Served is the total units (e.g. bytes) served.
	Served float64
	// ActiveIntegral is ∫ n(t) dt in stream-seconds; divided by a window
	// it gives the average queue depth.
	ActiveIntegral float64
	// At is the time of the snapshot.
	At time.Duration
}

// Snapshot advances internal integrals to the current time and returns them.
func (s *Server) Snapshot() Stats {
	s.advance()
	return Stats{Busy: s.busy, Served: s.served, ActiveIntegral: s.activeIntegral, At: s.k.Now()}
}

// UtilizationBetween returns the fraction of time the server was busy
// between two snapshots.
func UtilizationBetween(a, b Stats) float64 {
	w := (b.At - a.At).Seconds()
	if w <= 0 {
		return 0
	}
	return (b.Busy - a.Busy).Seconds() / w
}

func (s *Server) notifyActive() {
	if s.cfg.OnActiveChange != nil {
		s.cfg.OnActiveChange(len(s.streams))
	}
}

// advance integrates stream progress from s.last to now.
func (s *Server) advance() {
	now := s.k.Now()
	dt := (now - s.last).Seconds()
	if dt <= 0 {
		s.last = now
		return
	}
	if n := len(s.streams); n > 0 {
		s.busy += now - s.last
		s.activeIntegral += float64(n) * dt
		for _, st := range s.streams {
			delta := st.rate * dt
			if delta > st.remaining {
				delta = st.remaining
			}
			st.remaining -= delta
			s.served += delta
		}
	}
	s.last = now
}

// recompute reassigns rates after an arrival or departure and schedules the
// next completion. The pending completion event is rescheduled in place
// (same queue entry, fresh sequence number) rather than cancelled and
// reallocated — under stream churn the cancel-and-reschedule pattern left
// the kernel queue full of dead timers and allocated a new event per
// arrival.
func (s *Server) recompute() {
	n := len(s.streams)
	if n == 0 {
		s.next.Cancel()
		s.next = sim.Event{}
		return
	}
	total := s.scale * s.curveAt(n)
	if total <= 0 || math.IsNaN(total) {
		panic(fmt.Sprintf("psres %s: curve(%d) = %v", s.cfg.Name, n, total))
	}
	share := total / float64(n)
	if lim := s.scale * s.cfg.PerStreamCap; s.cfg.PerStreamCap > 0 && share > lim {
		share = lim
	}
	minT := math.Inf(1)
	for _, st := range s.streams {
		st.rate = share * st.weight
		if t := st.remaining / st.rate; t < minT {
			minT = t
		}
	}
	// Ceil to the next nanosecond so the completing stream is guaranteed
	// to have drained when the event fires.
	d := time.Duration(math.Ceil(minT * 1e9))
	if d < 0 {
		d = 0
	}
	at := s.k.Now() + d
	if s.next.Active() {
		if at == s.nextAt {
			// The arrival/departure provably didn't change the next
			// completion instant; the queued event is already right.
			return
		}
		s.next.Reschedule(at)
	} else {
		s.next = s.k.After(d, s.onComp)
	}
	s.nextAt = at
}

// onCompletion removes drained streams, wakes their waiters and recomputes.
// Progress integration and drain classification run in one pass, and the
// waiters are woken from the freshly compacted stream set *before* the next
// completion is scheduled: if another stream drains at this same timestamp,
// its completion event then fires after these wakeups, so waiters always
// observe Active() as of their own completion and wake in completion order.
func (s *Server) onCompletion() {
	s.next = sim.Event{}
	now := s.k.Now()
	elapsed := now - s.last
	dt := elapsed.Seconds()
	s.last = now
	if n := len(s.streams); n > 0 && dt > 0 {
		s.busy += elapsed
		s.activeIntegral += float64(n) * dt
	}
	kept := s.streams[:0]
	woken := s.woken[:0]
	for _, st := range s.streams {
		if dt > 0 {
			delta := st.rate * dt
			if delta > st.remaining {
				delta = st.remaining
			}
			st.remaining -= delta
			s.served += delta
		}
		// A stream is done when its residual work is below what it
		// would serve in 2ns — i.e. float noise.
		if st.remaining <= st.rate*2e-9+1e-12 {
			woken = append(woken, st)
		} else {
			kept = append(kept, st)
		}
	}
	for _, st := range woken {
		s.served += st.remaining
		st.remaining = 0
	}
	for i := len(kept); i < len(s.streams); i++ {
		s.streams[i] = nil
	}
	s.streams = kept
	if len(woken) > 0 {
		s.notifyActive()
	}
	for _, st := range woken {
		s.k.Wake(st.proc)
		st.proc = nil
		st.next = s.freeStream
		s.freeStream = st
	}
	s.woken = woken[:0]
	s.recompute()
}
