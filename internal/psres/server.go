// Package psres implements a processor-sharing server in virtual time.
//
// A Server models a contended resource (disk, NIC, CPU) whose aggregate
// service rate depends on the number of concurrent streams: rate = Curve(n).
// Capacity is divided equally among active streams (optionally capped per
// stream, and scaled by per-stream weights for asymmetric operations such as
// writes that cost more than reads). This is the standard fluid approximation
// of time-sliced devices and is what makes I/O-contention effects — the
// subject of the paper — emerge from first principles: an HDD whose Curve
// falls with n serves *less total work* the more threads hammer it.
package psres

import (
	"fmt"
	"math"
	"time"

	"sae/internal/sim"
)

// Curve maps the number of concurrent streams to the aggregate service rate
// in units/second. It must be strictly positive for n >= 1.
type Curve func(n int) float64

// Flat returns a curve with constant aggregate rate regardless of
// concurrency (e.g. a network link).
func Flat(rate float64) Curve {
	return func(int) float64 { return rate }
}

// Config configures a Server.
type Config struct {
	// Name identifies the server in diagnostics.
	Name string
	// Curve gives the aggregate rate for n concurrent streams. Required.
	Curve Curve
	// PerStreamCap limits the rate of any single stream (0 = unlimited).
	// A CPU uses cap=1 core so one thread can never use two cores.
	PerStreamCap float64
	// OnActiveChange, if set, is called whenever the number of active
	// streams changes, with the new count. Used for joint integrators
	// such as the node-level iowait meter.
	OnActiveChange func(n int)
}

// Server is a processor-sharing resource. It must only be used from
// simulation (kernel or process) context; it needs no locking because the
// kernel serializes execution.
type Server struct {
	k   *sim.Kernel
	cfg Config

	streams []*stream
	last    time.Duration
	next    *sim.Event
	scale   float64 // multiplies the curve (gray-failure throttling); 1 = nominal

	busy           time.Duration // total time with >=1 active stream
	served         float64       // total units served
	activeIntegral float64       // ∫ n dt, in stream-seconds
}

type stream struct {
	remaining float64
	weight    float64
	rate      float64
	done      *sim.Signal
}

// NewServer returns a server bound to kernel k.
func NewServer(k *sim.Kernel, cfg Config) *Server {
	if cfg.Curve == nil {
		panic("psres: Config.Curve is required")
	}
	return &Server{k: k, cfg: cfg, last: k.Now(), scale: 1}
}

// SetRateScale rescales the server's aggregate service rate (and per-stream
// cap) to scale × nominal, re-planning any in-flight streams from the current
// instant. Gray-failure injection uses this to degrade a device mid-run;
// scale 1 restores nominal service.
func (s *Server) SetRateScale(scale float64) {
	if scale <= 0 || math.IsNaN(scale) {
		panic(fmt.Sprintf("psres %s: non-positive rate scale %v", s.cfg.Name, scale))
	}
	if scale == s.scale {
		return
	}
	s.advance()
	s.scale = scale
	s.recompute()
}

// RateScale returns the current service-rate scale (1 = nominal).
func (s *Server) RateScale() float64 { return s.scale }

// Serve blocks p until demand units have been served. Weight scales this
// stream's share of capacity (1 = normal; 0.5 = progresses at half the fair
// share, modelling e.g. writes that cost twice as much as reads).
func (s *Server) Serve(p *sim.Proc, demand, weight float64) {
	if demand <= 0 {
		return
	}
	if weight <= 0 {
		panic(fmt.Sprintf("psres %s: non-positive weight %v", s.cfg.Name, weight))
	}
	s.advance()
	st := &stream{remaining: demand, weight: weight, done: sim.NewSignal(s.k)}
	s.streams = append(s.streams, st)
	s.notifyActive()
	s.recompute()
	st.done.Wait(p)
}

// Active returns the number of streams currently in service.
func (s *Server) Active() int { return len(s.streams) }

// Stats is a snapshot of cumulative server statistics. Differences between
// two snapshots give windowed measurements.
type Stats struct {
	// Busy is the total virtual time the server had at least one stream.
	Busy time.Duration
	// Served is the total units (e.g. bytes) served.
	Served float64
	// ActiveIntegral is ∫ n(t) dt in stream-seconds; divided by a window
	// it gives the average queue depth.
	ActiveIntegral float64
	// At is the time of the snapshot.
	At time.Duration
}

// Snapshot advances internal integrals to the current time and returns them.
func (s *Server) Snapshot() Stats {
	s.advance()
	return Stats{Busy: s.busy, Served: s.served, ActiveIntegral: s.activeIntegral, At: s.k.Now()}
}

// UtilizationBetween returns the fraction of time the server was busy
// between two snapshots.
func UtilizationBetween(a, b Stats) float64 {
	w := (b.At - a.At).Seconds()
	if w <= 0 {
		return 0
	}
	return (b.Busy - a.Busy).Seconds() / w
}

func (s *Server) notifyActive() {
	if s.cfg.OnActiveChange != nil {
		s.cfg.OnActiveChange(len(s.streams))
	}
}

// advance integrates stream progress from s.last to now.
func (s *Server) advance() {
	now := s.k.Now()
	dt := (now - s.last).Seconds()
	if dt <= 0 {
		s.last = now
		return
	}
	if n := len(s.streams); n > 0 {
		s.busy += now - s.last
		s.activeIntegral += float64(n) * dt
		for _, st := range s.streams {
			delta := st.rate * dt
			if delta > st.remaining {
				delta = st.remaining
			}
			st.remaining -= delta
			s.served += delta
		}
	}
	s.last = now
}

// recompute reassigns rates after an arrival or departure and schedules the
// next completion.
func (s *Server) recompute() {
	if s.next != nil {
		s.next.Cancel()
		s.next = nil
	}
	n := len(s.streams)
	if n == 0 {
		return
	}
	total := s.scale * s.cfg.Curve(n)
	if total <= 0 || math.IsNaN(total) {
		panic(fmt.Sprintf("psres %s: curve(%d) = %v", s.cfg.Name, n, total))
	}
	share := total / float64(n)
	if lim := s.scale * s.cfg.PerStreamCap; s.cfg.PerStreamCap > 0 && share > lim {
		share = lim
	}
	minT := math.Inf(1)
	for _, st := range s.streams {
		st.rate = share * st.weight
		if t := st.remaining / st.rate; t < minT {
			minT = t
		}
	}
	// Ceil to the next nanosecond so the completing stream is guaranteed
	// to have drained when the event fires.
	d := time.Duration(math.Ceil(minT * 1e9))
	if d < 0 {
		d = 0
	}
	s.next = s.k.After(d, s.onCompletion)
}

// onCompletion removes drained streams, wakes their waiters and recomputes.
func (s *Server) onCompletion() {
	s.next = nil
	s.advance()
	kept := s.streams[:0]
	var woken []*stream
	for _, st := range s.streams {
		// A stream is done when its residual work is below what it
		// would serve in 2ns — i.e. float noise.
		if st.remaining <= st.rate*2e-9+1e-12 {
			s.served += st.remaining
			st.remaining = 0
			woken = append(woken, st)
		} else {
			kept = append(kept, st)
		}
	}
	for i := len(kept); i < len(s.streams); i++ {
		s.streams[i] = nil
	}
	s.streams = kept
	if len(woken) > 0 {
		s.notifyActive()
	}
	s.recompute()
	for _, st := range woken {
		st.done.Broadcast()
	}
}
