package psres

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"sae/internal/sim"
)

func sec(d float64) time.Duration { return time.Duration(d * float64(time.Second)) }

func TestSingleStreamFullRate(t *testing.T) {
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "disk", Curve: Flat(100)})
	var done time.Duration
	k.Go("c", func(p *sim.Proc) {
		s.Serve(p, 500, 1)
		done = p.Now()
	})
	k.Run()
	if got, want := done.Seconds(), 5.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("done at %vs, want %vs", got, want)
	}
}

func TestFairSharing(t *testing.T) {
	// Two equal streams on a flat 100 u/s server: each gets 50 u/s.
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "disk", Curve: Flat(100)})
	var t1, t2 time.Duration
	k.Go("a", func(p *sim.Proc) { s.Serve(p, 100, 1); t1 = p.Now() })
	k.Go("b", func(p *sim.Proc) { s.Serve(p, 100, 1); t2 = p.Now() })
	k.Run()
	if math.Abs(t1.Seconds()-2.0) > 1e-6 || math.Abs(t2.Seconds()-2.0) > 1e-6 {
		t.Fatalf("completions %v %v, want 2s both", t1, t2)
	}
}

func TestDepartureSpeedsUpRemaining(t *testing.T) {
	// Stream A: 50 units, stream B: 150 units, flat 100 u/s.
	// Phase 1: both at 50 u/s until A finishes at t=1 (B has 100 left).
	// Phase 2: B alone at 100 u/s, finishes at t=2.
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "disk", Curve: Flat(100)})
	var ta, tb time.Duration
	k.Go("a", func(p *sim.Proc) { s.Serve(p, 50, 1); ta = p.Now() })
	k.Go("b", func(p *sim.Proc) { s.Serve(p, 150, 1); tb = p.Now() })
	k.Run()
	if math.Abs(ta.Seconds()-1.0) > 1e-6 {
		t.Fatalf("A done at %v, want 1s", ta)
	}
	if math.Abs(tb.Seconds()-2.0) > 1e-6 {
		t.Fatalf("B done at %v, want 2s", tb)
	}
}

func TestLateArrivalSlowsDown(t *testing.T) {
	// A starts alone (100 u/s). At t=1, B arrives; both at 50 u/s.
	// A has 100 left at t=1, finishes at t=3.
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "disk", Curve: Flat(100)})
	var ta time.Duration
	k.Go("a", func(p *sim.Proc) { s.Serve(p, 200, 1); ta = p.Now() })
	k.Go("b", func(p *sim.Proc) {
		p.Sleep(time.Second)
		s.Serve(p, 500, 1)
	})
	k.Run()
	if math.Abs(ta.Seconds()-3.0) > 1e-6 {
		t.Fatalf("A done at %v, want 3s", ta)
	}
}

func TestDegradingCurve(t *testing.T) {
	// Curve: 100 for n=1, 60 for n=2: two 60-unit streams take
	// 2 seconds together (30 u/s each).
	curve := func(n int) float64 {
		if n == 1 {
			return 100
		}
		return 60
	}
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "hdd", Curve: curve})
	var ta time.Duration
	k.Go("a", func(p *sim.Proc) { s.Serve(p, 60, 1); ta = p.Now() })
	k.Go("b", func(p *sim.Proc) { s.Serve(p, 60, 1) })
	k.Run()
	if math.Abs(ta.Seconds()-2.0) > 1e-6 {
		t.Fatalf("done at %v, want 2s", ta)
	}
}

func TestPerStreamCap(t *testing.T) {
	// CPU-like: 4 cores, cap 1 core per stream. A single stream takes
	// demand seconds, not demand/4.
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "cpu", Curve: func(n int) float64 { return math.Min(float64(n), 4) }, PerStreamCap: 1})
	var ta time.Duration
	k.Go("a", func(p *sim.Proc) { s.Serve(p, 3, 1); ta = p.Now() })
	k.Run()
	if math.Abs(ta.Seconds()-3.0) > 1e-6 {
		t.Fatalf("done at %v, want 3s", ta)
	}
}

func TestCPUOversubscription(t *testing.T) {
	// 2 cores, 4 equal streams of 1 second each: each runs at 0.5 cores,
	// all finish at t=2.
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "cpu", Curve: func(n int) float64 { return math.Min(float64(n), 2) }, PerStreamCap: 1})
	var last time.Duration
	for i := 0; i < 4; i++ {
		k.Go("w", func(p *sim.Proc) {
			s.Serve(p, 1, 1)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	k.Run()
	if math.Abs(last.Seconds()-2.0) > 1e-6 {
		t.Fatalf("last done at %v, want 2s", last)
	}
}

func TestWeightedStreams(t *testing.T) {
	// Flat 100, two streams, write weight 0.5: write progresses at 25 u/s
	// while the read does 50 u/s.
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "disk", Curve: Flat(100)})
	var tr, tw time.Duration
	k.Go("r", func(p *sim.Proc) { s.Serve(p, 50, 1); tr = p.Now() })
	k.Go("w", func(p *sim.Proc) { s.Serve(p, 50, 0.5); tw = p.Now() })
	k.Run()
	if math.Abs(tr.Seconds()-1.0) > 1e-6 {
		t.Fatalf("read done at %v, want 1s", tr)
	}
	// After the read leaves at t=1 the write has 25 left and runs at
	// 0.5*100 = 50 u/s alone: done at 1.5s.
	if math.Abs(tw.Seconds()-1.5) > 1e-6 {
		t.Fatalf("write done at %v, want 1.5s", tw)
	}
}

func TestZeroDemandReturnsImmediately(t *testing.T) {
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "disk", Curve: Flat(100)})
	var done time.Duration
	k.Go("a", func(p *sim.Proc) {
		s.Serve(p, 0, 1)
		done = p.Now()
	})
	k.Run()
	if done != 0 {
		t.Fatalf("zero demand took %v", done)
	}
}

func TestBusyAndUtilization(t *testing.T) {
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "disk", Curve: Flat(100)})
	var mid, end Stats
	k.Go("a", func(p *sim.Proc) {
		s.Serve(p, 100, 1) // busy [0,1]
		p.Sleep(time.Second)
		s.Serve(p, 100, 1) // busy [2,3]
		end = s.Snapshot()
	})
	k.At(sec(1.5), func() { mid = s.Snapshot() })
	k.Run()
	if got := mid.Busy; got != time.Second {
		t.Fatalf("busy at 1.5s = %v, want 1s", got)
	}
	if got := UtilizationBetween(mid, end); math.Abs(got-(1.0/1.5)) > 1e-6 {
		t.Fatalf("utilization = %v, want %v", got, 1.0/1.5)
	}
	if math.Abs(end.Served-200) > 1e-6 {
		t.Fatalf("served = %v, want 200", end.Served)
	}
}

func TestOnActiveChange(t *testing.T) {
	k := sim.NewKernel()
	var counts []int
	var s *Server
	s = NewServer(k, Config{Name: "disk", Curve: Flat(100),
		OnActiveChange: func(n int) { counts = append(counts, n) }})
	k.Go("a", func(p *sim.Proc) { s.Serve(p, 100, 1) })
	k.Go("b", func(p *sim.Proc) { s.Serve(p, 200, 1) })
	k.Run()
	want := []int{1, 2, 1, 0}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

// Property: work conservation — with a flat curve and no idling, total
// completion time of any batch equals total demand / rate.
func TestWorkConservationProperty(t *testing.T) {
	f := func(demands []uint16) bool {
		var total float64
		var ds []float64
		for _, d := range demands {
			if d == 0 {
				continue
			}
			ds = append(ds, float64(d))
			total += float64(d)
		}
		if len(ds) == 0 {
			return true
		}
		k := sim.NewKernel()
		s := NewServer(k, Config{Name: "disk", Curve: Flat(100)})
		var last time.Duration
		for _, d := range ds {
			d := d
			k.Go("w", func(p *sim.Proc) {
				s.Serve(p, d, 1)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		k.Run()
		want := total / 100
		return math.Abs(last.Seconds()-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: served units equal the sum of demands once everything drains.
func TestServedEqualsDemandProperty(t *testing.T) {
	f := func(demands []uint16, degrade bool) bool {
		curve := Flat(50)
		if degrade {
			curve = func(n int) float64 { return 50 / (1 + 0.2*float64(n-1)) }
		}
		k := sim.NewKernel()
		s := NewServer(k, Config{Name: "disk", Curve: curve})
		var total float64
		for _, d := range demands {
			if d == 0 {
				continue
			}
			d := float64(d)
			total += d
			k.Go("w", func(p *sim.Proc) { s.Serve(p, d, 1) })
		}
		k.Run()
		st := s.Snapshot()
		return math.Abs(st.Served-total) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with any positive curve and equal demands, equal-weight streams
// that start together finish together (processor sharing is fair).
func TestFairnessProperty(t *testing.T) {
	f := func(demandKB uint16, n uint8, peak uint16, alpha uint8) bool {
		streams := int(n%6) + 2
		demand := float64(demandKB%5000) + 1
		p := float64(peak%500) + 50
		a := float64(alpha%50) / 100
		curve := func(n int) float64 { return p / (1 + a*float64(n-1)) }
		k := sim.NewKernel()
		s := NewServer(k, Config{Name: "x", Curve: curve})
		var ends []time.Duration
		for i := 0; i < streams; i++ {
			k.Go("w", func(pr *sim.Proc) {
				s.Serve(pr, demand, 1)
				ends = append(ends, pr.Now())
			})
		}
		k.Run()
		if len(ends) != streams {
			return false
		}
		for _, e := range ends {
			if d := (e - ends[0]).Seconds(); d > 1e-6 || d < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSameInstantCompletionsWakeCompacted is the regression test for the
// onCompletion wake ordering: when several streams drain at the same
// timestamp, every waiter must wake *after* the server's stream set has been
// compacted, so Active() observed on wake-up reflects the waiter's own
// completion (historically the broadcast ran before state settled, so a
// waiter woken into a zero-stream server could still read a stale count).
func TestSameInstantCompletionsWakeCompacted(t *testing.T) {
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "d", Curve: Flat(10), PerStreamCap: 1})
	var activeAtWake []int
	var wakeOrder []int
	// Cap-bound streams progress independently at rate 1; demands are tuned
	// so all three drain at exactly t=1s in one completion pass.
	starts := []struct {
		at     time.Duration
		demand float64
	}{
		{0, 1.0},
		{200 * time.Millisecond, 0.8},
		{600 * time.Millisecond, 0.4},
	}
	for i, st := range starts {
		i, st := i, st
		k.At(st.at, func() {
			k.Go("w", func(p *sim.Proc) {
				s.Serve(p, st.demand, 1)
				activeAtWake = append(activeAtWake, s.Active())
				wakeOrder = append(wakeOrder, i)
				if p.Now() != time.Second {
					t.Errorf("stream %d completed at %v, want 1s", i, p.Now())
				}
			})
		})
	}
	k.Run()
	if len(activeAtWake) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(activeAtWake))
	}
	for i, n := range activeAtWake {
		if n != 0 {
			t.Fatalf("waiter %d woke with Active() = %d, want 0 (stale stream set)", wakeOrder[i], n)
		}
	}
	for i, v := range wakeOrder {
		if v != i {
			t.Fatalf("wake order %v, want completion (arrival) order", wakeOrder)
		}
	}
}

// TestBackToBackCompletions drains two cap-bound streams one nanosecond
// apart: the first completion must wake only its own stream, reschedule the
// survivor, and leave Active() consistent at each wake.
func TestBackToBackCompletions(t *testing.T) {
	k := sim.NewKernel()
	s := NewServer(k, Config{Name: "d", Curve: Flat(10), PerStreamCap: 1})
	type wake struct {
		at     time.Duration
		active int
	}
	var wakes []wake
	serve := func(demand float64) {
		k.Go("w", func(p *sim.Proc) {
			s.Serve(p, demand, 1)
			wakes = append(wakes, wake{p.Now(), s.Active()})
		})
	}
	serve(1.0)
	serve(1.0 + 100e-9) // drains 100ns after the first, via a separate event
	k.Run()
	if len(wakes) != 2 {
		t.Fatalf("woke %d waiters, want 2", len(wakes))
	}
	if wakes[0].active != 1 {
		t.Fatalf("first waiter woke with Active() = %d, want 1 (second stream still in service)", wakes[0].active)
	}
	if wakes[1].active != 0 {
		t.Fatalf("second waiter woke with Active() = %d, want 0", wakes[1].active)
	}
	if d := wakes[1].at - wakes[0].at; d <= 0 || d > time.Microsecond {
		t.Fatalf("completions %v apart, want back-to-back within 1µs", d)
	}
	// A re-serve issued immediately on wake-up must observe a fresh server.
	reserved := false
	k2 := sim.NewKernel()
	s2 := NewServer(k2, Config{Name: "d2", Curve: Flat(1)})
	k2.Go("w", func(p *sim.Proc) {
		s2.Serve(p, 1, 1)
		if s2.Active() != 0 {
			t.Errorf("Active() = %d on wake, want 0", s2.Active())
		}
		s2.Serve(p, 1, 1) // same-instant re-arrival
		reserved = true
		if p.Now() != 2*time.Second {
			t.Errorf("re-serve completed at %v, want 2s", p.Now())
		}
	})
	k2.Run()
	if !reserved {
		t.Fatal("same-instant re-serve never completed")
	}
}
