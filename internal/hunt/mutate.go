package hunt

import (
	"fmt"
	"math/rand"

	"sae/internal/conf"
	"sae/internal/scenario"
)

// mutate derives one candidate from parent: clone, apply a random
// applicable operator (two with some probability), and validate the result
// by a Marshal∘Parse round trip so every candidate the hunt runs is also a
// spec the canonical writer can re-emit and replay. Invalid mutants are
// discarded, not repaired.
func mutate(parent *scenario.Spec, rng *rand.Rand) (*scenario.Spec, bool) {
	m, err := clone(parent)
	if err != nil {
		return nil, false
	}
	applied := 0
	want := 1 + rng.Intn(2)
	for try := 0; try < 12 && applied < want; try++ {
		if ops[rng.Intn(len(ops))](m, rng) {
			applied++
		}
	}
	if applied == 0 {
		mutSeed(m, rng)
	}
	out, err := clone(m)
	if err != nil {
		return nil, false
	}
	return out, true
}

// ops are the mutation operators. Each reports whether it applied (an
// operator that does not fit the spec's kind declines). Order is fixed:
// the hunt must be a deterministic function of the seed.
var ops = []func(*scenario.Spec, *rand.Rand) bool{
	mutSeed,
	mutNodes,
	mutConf,
	mutChaosSingle,
	mutSchedule,
	mutAddSchedule,
	mutDropSchedule,
	mutPolicy,
	mutWorkload,
	mutScheduler,
	mutArrival,
}

var (
	workloadNames = []string{"terasort", "pagerank", "aggregation", "join", "scan", "bayes", "lda", "nweight", "svm"}
	policyNames   = []string{"default", "dynamic", "static:4", "static:8", "static:16"}
	slowFactors   = []string{"1.5", "2", "3", "4", "6"}
	faultRates    = []string{"0.02", "0.05", "0.1", "0.2"}
)

// confMuts are catalogue knobs worth perturbing, each with values inside
// its validated range. A slice (not a map) keeps draw order deterministic.
var confMuts = []struct {
	key  string
	vals []string
}{
	{"speculation", []string{"true", "false"}},
	{"speculation.multiplier", []string{"1.2", "1.5", "2"}},
	{"speculation.quantile", []string{"0.5", "0.75", "0.9"}},
	{"task.maxFailures", []string{"2", "3", "4", "6"}},
	{"blacklist.stage.maxFailedTasksPerExecutor", []string{"1", "2", "3"}},
	{"shuffle.io.maxRetries", []string{"0", "1", "3", "6"}},
	{"shuffle.io.retryWait", []string{"1s", "2s", "5s"}},
	{"executor.heartbeatInterval", []string{"2s", "5s", "10s"}},
	{"scheduler.mode", []string{"FIFO", "FAIR"}},
	{"executor.taskOverheadMillis", []string{"0", "20", "50"}},
}

func pick(rng *rand.Rand, vals []string) string { return vals[rng.Intn(len(vals))] }

func mutSeed(sp *scenario.Spec, rng *rand.Rand) bool {
	sp.Cluster.Seed = 1 + rng.Int63n(1_000_000)
	return true
}

func mutNodes(sp *scenario.Spec, rng *rand.Rand) bool {
	sp.Cluster.Nodes = 2 + rng.Intn(7)
	return true
}

func mutConf(sp *scenario.Spec, rng *rand.Rand) bool {
	m := confMuts[rng.Intn(len(confMuts))]
	v := pick(rng, m.vals)
	// Defensive: only emit values the catalogue actually accepts, so the
	// mutant fails here (declined) rather than at compile (wasted run).
	if err := conf.New().Set(m.key, v); err != nil {
		return false
	}
	if sp.Conf == nil {
		sp.Conf = map[string]string{}
	}
	sp.Conf[m.key] = v
	return true
}

// nodeCount is the effective cluster size for choosing chaos targets.
func nodeCount(sp *scenario.Spec) int {
	if sp.Cluster.Nodes > 0 {
		return sp.Cluster.Nodes
	}
	return 4
}

// randTarget picks a victim executor, sparing executor 0 so a single-node
// mutation cannot trivially kill the whole cluster.
func randTarget(sp *scenario.Spec, rng *rand.Rand) int {
	n := nodeCount(sp)
	if n < 3 {
		return 1
	}
	return 1 + rng.Intn(n-1)
}

// randAbsClause builds a single-run chaos clause with absolute times
// (percentage times are a matrix-only construct).
func randAbsClause(sp *scenario.Spec, rng *rand.Rand) string {
	exec := randTarget(sp, rng)
	at := 3 + rng.Intn(88) // 3s..90s, inside small-scale runtimes
	switch rng.Intn(6) {
	case 0:
		return fmt.Sprintf("crash%d@%ds", exec, at)
	case 1:
		return fmt.Sprintf("crash%d@%ds+%ds", exec, at, 10+rng.Intn(51))
	case 2:
		return fmt.Sprintf("slow%d@%dsx%s", exec, at, pick(rng, slowFactors))
	case 3:
		return fmt.Sprintf("partition%d@%ds+%ds", exec, at, 5+rng.Intn(46))
	case 4:
		return pick(rng, []string{"flaky", "fetch"}) + ":" + pick(rng, faultRates)
	default:
		return "corrupt:" + pick(rng, []string{"0.005", "0.01", "0.02"})
	}
}

// randPctClause builds a chaos-matrix schedule clause with percentage
// times resolved against each policy's quiet runtime.
func randPctClause(sp *scenario.Spec, rng *rand.Rand) string {
	exec := randTarget(sp, rng)
	at := 5 + rng.Intn(91) // 5%..95%
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("crash%d@%d%%", exec, at)
	case 1:
		return fmt.Sprintf("crash%d@%d%%+%d%%", exec, at, 5+rng.Intn(91))
	case 2:
		return fmt.Sprintf("slow%d@%d%%x%s", exec, at, pick(rng, slowFactors))
	case 3:
		return fmt.Sprintf("partition%d@%d%%+%d%%", exec, at, 5+rng.Intn(min(91, 101-at)))
	case 4:
		return pick(rng, []string{"flaky", "fetch"}) + ":" + pick(rng, faultRates)
	case 5:
		return "corrupt:" + pick(rng, []string{"0.005", "0.01", "0.02"})
	case 6:
		return fmt.Sprintf("mayhem@%d%%", 50+rng.Intn(51))
	default:
		return "quiet"
	}
}

func mutChaosSingle(sp *scenario.Spec, rng *rand.Rand) bool {
	if sp.Kind != scenario.KindSingle {
		return false
	}
	c := randAbsClause(sp, rng)
	if rng.Intn(4) == 0 {
		c += "," + randAbsClause(sp, rng)
	}
	sp.Chaos = c
	return true
}

func mutSchedule(sp *scenario.Spec, rng *rand.Rand) bool {
	if sp.Kind != scenario.KindChaosMatrix || len(sp.Schedules) == 0 {
		return false
	}
	sp.Schedules[rng.Intn(len(sp.Schedules))] = randPctClause(sp, rng)
	return true
}

func mutAddSchedule(sp *scenario.Spec, rng *rand.Rand) bool {
	if sp.Kind != scenario.KindChaosMatrix || len(sp.Schedules) >= 6 {
		return false
	}
	sp.Schedules = append(sp.Schedules, randPctClause(sp, rng))
	return true
}

func mutDropSchedule(sp *scenario.Spec, rng *rand.Rand) bool {
	if sp.Kind != scenario.KindChaosMatrix || len(sp.Schedules) < 2 {
		return false
	}
	i := rng.Intn(len(sp.Schedules))
	sp.Schedules = append(sp.Schedules[:i], sp.Schedules[i+1:]...)
	return true
}

func mutPolicy(sp *scenario.Spec, rng *rand.Rand) bool {
	p := pick(rng, policyNames)
	switch sp.Kind {
	case scenario.KindSingle:
		sp.Policy = p
	case scenario.KindChaosMatrix, scenario.KindTenantMatrix:
		if len(sp.Policies) == 0 {
			return false
		}
		sp.Policies[rng.Intn(len(sp.Policies))] = p
	default:
		return false
	}
	return true
}

func mutWorkload(sp *scenario.Spec, rng *rand.Rand) bool {
	w := pick(rng, workloadNames)
	switch sp.Kind {
	case scenario.KindSingle, scenario.KindChaosMatrix:
		sp.Workload = w
	case scenario.KindTenantMatrix:
		if len(sp.Mixes) == 0 {
			return false
		}
		mix := &sp.Mixes[rng.Intn(len(sp.Mixes))]
		if len(mix.Workloads) == 0 {
			return false
		}
		mix.Workloads[rng.Intn(len(mix.Workloads))] = w
	default:
		return false
	}
	return true
}

func mutScheduler(sp *scenario.Spec, rng *rand.Rand) bool {
	if sp.Kind != scenario.KindTenantMatrix || len(sp.Schedulers) == 0 {
		return false
	}
	sp.Schedulers[rng.Intn(len(sp.Schedulers))] = pick(rng, []string{"fifo", "fair"})
	return true
}

func mutArrival(sp *scenario.Spec, rng *rand.Rand) bool {
	if sp.Kind != scenario.KindArrivalMatrix || sp.Arrival == nil {
		return false
	}
	m := sp.Arrival
	switch rng.Intn(4) {
	case 0:
		if len(m.Arrivals) == 0 {
			return false
		}
		p := &m.Arrivals[rng.Intn(len(m.Arrivals))]
		f := []float64{0.5, 0.75, 1.5, 2}[rng.Intn(4)]
		p.Rate *= f
		p.OnRate *= f
		p.OffRate *= f
	case 1:
		m.MaxJobs = 8 + rng.Intn(25)
	case 2:
		m.Capacity = pick(rng, []string{"4", "6", "8", "2x", "3x"})
	case 3:
		if len(m.Configs) == 0 {
			return false
		}
		c := &m.Configs[rng.Intn(len(m.Configs))]
		if c.Policy != "adaptive" {
			return false
		}
		c.Headroom = []float64{1, 2, 3}[rng.Intn(3)]
	}
	return true
}
