// Package hunt is a seeded, deterministic, coverage-guided fuzzer over
// scenario specs. It mutates the spec surface — chaos clause times,
// factors and targets, arrival mixes, conf knobs within the catalogue,
// cluster shape — runs each candidate under the invariant audit plane
// (internal/invariant), and uses the auditor's coverage signal (reached
// trace-event types plus audit state transitions) to decide which mutants
// join the corpus. A candidate that violates an invariant is shrunk to a
// minimal reproducer and emitted through the canonical scenario.Marshal,
// so `sae-run -scenario <finding>.yaml` replays the violation exactly.
//
// Everything is driven by one seeded PRNG and the engines themselves are
// deterministic, so a hunt is fully reproducible from (seed, corpus,
// options): same findings, same shrunk YAML, byte for byte.
package hunt

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"sae/internal/invariant"
	"sae/internal/scenario"
)

// Options configures one hunt.
type Options struct {
	// Seed drives the mutation PRNG; the whole hunt is a deterministic
	// function of it (and the corpus and options).
	Seed int64
	// Runs bounds the number of scenario executions in the search loop,
	// corpus seeds included (0 selects 16). Shrinking spends extra runs
	// on top, bounded per finding by ShrinkRuns.
	Runs int
	// ShrinkRuns bounds the extra executions spent minimizing each
	// violating spec (0 selects 24).
	ShrinkRuns int
	// Scale overrides every spec's cluster scale so hunts stay cheap
	// (0 keeps the specs' own scales). When it rewrites a spec's scale,
	// the spec's expect block is dropped: its thresholds were calibrated
	// for the original scale and would misfire as false findings.
	Scale float64
	// Corpus seeds the search, typically the committed scenarios/*.yaml.
	// Every seed is executed first, so a hunt doubles as the check that
	// the committed specs pass all invariants.
	Corpus []*scenario.Spec
	// Log, if set, receives progress lines.
	Log func(format string, args ...any)
}

// Finding is one minimized invariant violation.
type Finding struct {
	// Rule is the violated invariant's name.
	Rule string
	// Violation is the first violation of Rule from the shrunk spec's run.
	Violation invariant.Violation
	// Spec is the shrunk reproducer; YAML is its canonical marshaling.
	Spec *scenario.Spec
	YAML []byte
	// FoundAt is the 1-based search run that first hit the rule.
	FoundAt int
	// ShrinkRuns counts the executions the minimizer spent.
	ShrinkRuns int
	// Replayed reports that YAML was re-parsed and re-run from scratch
	// and reproduced the same rule.
	Replayed bool
}

// Result summarizes a hunt.
type Result struct {
	// Runs counts search-loop executions; ShrinkRuns the extra
	// minimization executions.
	Runs       int
	ShrinkRuns int
	// CorpusIn and CorpusOut are the corpus sizes before and after
	// coverage-guided additions.
	CorpusIn, CorpusOut int
	// Coverage is the sorted union of behavior signals reached.
	Coverage []string
	// Findings are the minimized violations, one per rule, in discovery
	// order.
	Findings []Finding
}

type hunter struct {
	opts    Options
	rng     *rand.Rand
	logf    func(string, ...any)
	corpus  []*scenario.Spec
	covered map[string]struct{}
	seen    map[string]bool // rules already reported
	res     *Result
}

// Run executes one hunt.
func Run(opts Options) (*Result, error) {
	if len(opts.Corpus) == 0 {
		return nil, errors.New("hunt: empty corpus")
	}
	if opts.Runs <= 0 {
		opts.Runs = 16
	}
	if opts.ShrinkRuns <= 0 {
		opts.ShrinkRuns = 24
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h := &hunter{
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		logf:    logf,
		covered: map[string]struct{}{},
		seen:    map[string]bool{},
		res:     &Result{CorpusIn: len(opts.Corpus)},
	}
	for _, sp := range opts.Corpus {
		n, err := h.normalize(sp)
		if err != nil {
			return nil, fmt.Errorf("hunt: corpus spec %s: %w", sp.Name, err)
		}
		h.corpus = append(h.corpus, n)
	}
	// Phase 1: the corpus itself. Violations here mean a committed golden
	// scenario breaks an invariant — exactly what hunt-smoke gates on.
	for _, sp := range h.corpus {
		if h.res.Runs >= opts.Runs {
			break
		}
		h.execute(sp, false)
	}
	// Phase 2: coverage-guided mutation.
	for h.res.Runs < opts.Runs {
		parent := h.corpus[h.rng.Intn(len(h.corpus))]
		m, ok := mutate(parent, h.rng)
		if !ok {
			continue
		}
		h.execute(m, true)
	}
	h.res.CorpusOut = len(h.corpus)
	h.res.Coverage = make([]string, 0, len(h.covered))
	for sig := range h.covered {
		h.res.Coverage = append(h.res.Coverage, sig)
	}
	sort.Strings(h.res.Coverage)
	return h.res, nil
}

// normalize canonicalizes one corpus seed: a Marshal∘Parse round trip (a
// deep copy that also proves the spec survives re-emission), the hunt's
// scale override, and — only when the scale was rewritten — dropping the
// expect block whose thresholds no longer apply.
func (h *hunter) normalize(sp *scenario.Spec) (*scenario.Spec, error) {
	n, err := clone(sp)
	if err != nil {
		return nil, err
	}
	if h.opts.Scale > 0 && h.opts.Scale != n.Cluster.Scale {
		n.Cluster.Scale = h.opts.Scale
		n.Expect = nil
	}
	return n, nil
}

// execute runs one candidate and folds its coverage, corpus and violation
// consequences into the hunt state.
func (h *hunter) execute(sp *scenario.Spec, mutant bool) {
	h.res.Runs++
	run := h.res.Runs
	aud, runErr := runSpec(sp)
	if aud == nil {
		h.logf("run %d (%s): discarded, does not compile: %v", run, sp.Name, runErr)
		return
	}
	fresh := 0
	for _, sig := range aud.Coverage() {
		if _, ok := h.covered[sig]; !ok {
			h.covered[sig] = struct{}{}
			fresh++
		}
	}
	vs := aud.Violations()
	if len(vs) == 0 {
		if runErr != nil {
			// The engine refused the run (e.g. the whole cluster died);
			// no invariant broke, so the candidate is just uninteresting.
			h.logf("run %d (%s): discarded, engine error: %v", run, sp.Name, runErr)
			return
		}
		if mutant && fresh > 0 {
			h.corpus = append(h.corpus, sp)
			h.logf("run %d (%s): clean, %d new signals, corpus %d", run, sp.Name, fresh, len(h.corpus))
		} else {
			h.logf("run %d (%s): clean", run, sp.Name)
		}
		return
	}
	rule := vs[0].Rule
	if h.seen[rule] {
		h.logf("run %d (%s): %d violation(s) of already-reported rule %s", run, sp.Name, len(vs), rule)
		return
	}
	h.seen[rule] = true
	h.logf("run %d (%s): VIOLATION %s — shrinking", run, sp.Name, vs[0])
	shrunk, spent := h.shrink(sp, rule)
	h.res.ShrinkRuns += spent
	f := Finding{
		Rule:       rule,
		Spec:       shrunk,
		YAML:       scenario.Marshal(shrunk),
		FoundAt:    run,
		ShrinkRuns: spent,
	}
	// Replay from the emitted bytes alone: the YAML is the artifact a
	// human commits, so it — not the in-memory spec — must reproduce.
	if replayed, err := scenario.Parse(shrunk.Name+".yaml", f.YAML); err == nil {
		if raud, _ := runSpec(replayed); raud != nil {
			if v, ok := firstOfRule(raud, rule); ok {
				f.Violation = v
				f.Replayed = true
			}
		}
	}
	if !f.Replayed {
		f.Violation = vs[0]
	}
	h.res.Findings = append(h.res.Findings, f)
}

// runSpec executes one spec under a fresh auditor. A nil auditor means the
// spec did not compile; a non-nil auditor may carry violations even when
// the run itself erred (the invariant broke before the engine gave up).
func runSpec(sp *scenario.Spec) (*invariant.Auditor, error) {
	aud := invariant.New()
	s := sp.BaseSetup()
	s.Audit = aud
	c, err := sp.Compile(s)
	if err != nil {
		return nil, err
	}
	_, runErr := c.Run()
	return aud, runErr
}

func firstOfRule(aud *invariant.Auditor, rule string) (invariant.Violation, bool) {
	for _, v := range aud.Violations() {
		if v.Rule == rule {
			return v, true
		}
	}
	return invariant.Violation{}, false
}

// clone deep-copies a spec through the canonical writer, guaranteeing the
// result both round-trips and replays from its own marshaling.
func clone(sp *scenario.Spec) (*scenario.Spec, error) {
	return scenario.Parse(sp.Name+".yaml", scenario.Marshal(sp))
}
