package hunt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"sae/internal/engine"
	"sae/internal/scenario"
)

// crashSeed is the corpus seed used by the mutation test: a tight failure
// detector and an early crash, so executor 1 is declared lost mid-run
// with tasks in flight.
const crashSeed = `version: 1
kind: single
name: crash-seed
description: crash declared mid-run under a tight failure detector
workload: terasort
policy: dynamic
chaos: crash1@8s
conf:
  executor.heartbeatInterval: 2s
cluster:
  nodes: 4
  scale: 0.02
  seed: 1
`

func parseSeed(t *testing.T) *scenario.Spec {
	t.Helper()
	sp, err := scenario.Parse("crash-seed.yaml", []byte(crashSeed))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestHuntCleanOnSeed proves a bounded hunt over the healthy engine finds
// nothing: the corpus seed passes all invariants and a few mutants stay
// clean too.
func TestHuntCleanOnSeed(t *testing.T) {
	res, err := Run(Options{Seed: 3, Runs: 3, ShrinkRuns: 4, Corpus: []*scenario.Spec{parseSeed(t)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("hunt over the healthy engine found: %v", res.Findings)
	}
	if res.Runs != 3 {
		t.Fatalf("executed %d runs, want 3", res.Runs)
	}
	if len(res.Coverage) == 0 {
		t.Fatal("no coverage signals recorded")
	}
}

// TestHuntCatchesInjectedSlotLeak is the hunter's mutation test: with the
// slot-reclaim bug injected into the engine, the corpus seed alone must
// surface a slot-conservation finding, shrink it, and replay it from the
// emitted YAML bytes.
func TestHuntCatchesInjectedSlotLeak(t *testing.T) {
	restore := engine.EnableTestBug("skip-slot-reclaim")
	defer restore()
	res, err := Run(Options{Seed: 3, Runs: 2, ShrinkRuns: 8, Corpus: []*scenario.Spec{parseSeed(t)}})
	if err != nil {
		t.Fatal(err)
	}
	var f *Finding
	for i := range res.Findings {
		if res.Findings[i].Rule == "slot-conservation" {
			f = &res.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("slot-conservation not found; findings: %v", res.Findings)
	}
	if !f.Replayed {
		t.Fatal("shrunk reproducer did not replay from its YAML bytes")
	}
	if f.Violation.Rule != "slot-conservation" {
		t.Fatalf("finding carries violation of %s", f.Violation.Rule)
	}
	// The reproducer must be a valid, canonical spec: parsing its YAML and
	// re-marshaling round-trips byte-identically.
	sp, err := scenario.Parse("repro.yaml", f.YAML)
	if err != nil {
		t.Fatalf("emitted reproducer does not parse: %v", err)
	}
	if rt := scenario.Marshal(sp); !bytes.Equal(rt, f.YAML) {
		t.Fatalf("reproducer YAML is not canonical:\n%s\nvs\n%s", f.YAML, rt)
	}
	// Shrinking is effective: the spec keeps the chaos clause and the
	// detector knob (both load-bearing) but sheds the description.
	if sp.Chaos == "" {
		t.Fatal("shrink dropped the chaos clause the violation needs")
	}
	if sp.Description != "" {
		t.Fatalf("shrink kept the cosmetic description %q", sp.Description)
	}
}

// TestHuntDeterministic runs the same hunt twice and compares everything:
// same findings, same YAML bytes, same coverage, same corpus growth.
func TestHuntDeterministic(t *testing.T) {
	opts := func() Options {
		return Options{Seed: 11, Runs: 4, ShrinkRuns: 4, Corpus: []*scenario.Spec{parseSeed(t)}}
	}
	a, err := Run(opts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same options, different results:\n%+v\nvs\n%+v", a, b)
	}
}

// TestMutateDeterministicAndValid checks the mutator is a pure function
// of (parent, rng state) and only ever emits specs that survive the
// canonical Marshal/Parse round trip.
func TestMutateDeterministicAndValid(t *testing.T) {
	parent := parseSeed(t)
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		m1, ok1 := mutate(parent, r1)
		m2, ok2 := mutate(parent, r2)
		if ok1 != ok2 {
			t.Fatalf("step %d: divergent validity %v vs %v", i, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		y1, y2 := scenario.Marshal(m1), scenario.Marshal(m2)
		if !bytes.Equal(y1, y2) {
			t.Fatalf("step %d: same rng state, different mutants:\n%s\nvs\n%s", i, y1, y2)
		}
		if _, err := scenario.Parse("mutant.yaml", y1); err != nil {
			t.Fatalf("step %d: mutant does not re-parse: %v\n%s", i, err, y1)
		}
	}
}

// TestNormalizeScaleStripsExpect checks the false-positive guard: a scale
// override drops the spec's expect block (its thresholds were calibrated
// for the original scale), while no override keeps spec and expectations
// untouched.
func TestNormalizeScaleStripsExpect(t *testing.T) {
	src := []byte(`version: 1
kind: single
name: with-expect
workload: terasort
policy: dynamic
cluster:
  scale: 0.05
expect:
  max_runtime_sec: 100
`)
	sp, err := scenario.Parse("with-expect.yaml", src)
	if err != nil {
		t.Fatal(err)
	}
	h := &hunter{opts: Options{Scale: 0.02}}
	n, err := h.normalize(sp)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cluster.Scale != 0.02 || n.Expect != nil {
		t.Fatalf("normalize kept scale %v / expect %v", n.Cluster.Scale, n.Expect)
	}
	if sp.Expect == nil {
		t.Fatal("normalize mutated the input spec")
	}
	h = &hunter{opts: Options{}}
	n, err = h.normalize(sp)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cluster.Scale != 0.05 || n.Expect == nil {
		t.Fatal("normalize without a scale override should keep the spec as-is")
	}
}
