package hunt

import (
	"sort"

	"sae/internal/scenario"
)

// shrink greedily minimizes a violating spec while the same rule keeps
// firing, spending at most Options.ShrinkRuns extra executions. Each pass
// proposes the deterministic reduction list (drop a matrix dimension
// entry, drop a conf key, shed the description); the first candidate that
// still violates the rule replaces the spec and restarts the pass, so the
// result is a local minimum: no single remaining reduction preserves the
// violation.
func (h *hunter) shrink(sp *scenario.Spec, rule string) (*scenario.Spec, int) {
	spent := 0
	for spent < h.opts.ShrinkRuns {
		improved := false
		for _, cand := range reductions(sp) {
			if spent >= h.opts.ShrinkRuns {
				break
			}
			spent++
			aud, _ := runSpec(cand)
			if aud == nil {
				continue
			}
			if _, ok := firstOfRule(aud, rule); ok {
				sp = cand
				improved = true
				h.logf("shrink: kept %s reduction (%d run(s) spent)", rule, spent)
				break
			}
		}
		if !improved {
			break
		}
	}
	return sp, spent
}

// reductions proposes every single-step simplification of sp, cloned so
// candidates are independent. Order is deterministic: structural
// dimensions first (each dropped entry removes whole engine runs), then
// conf keys, then cosmetics.
func reductions(sp *scenario.Spec) []*scenario.Spec {
	var out []*scenario.Spec
	add := func(edit func(*scenario.Spec)) {
		c, err := clone(sp)
		if err != nil {
			return
		}
		edit(c)
		if rt, err := clone(c); err == nil {
			out = append(out, rt)
		}
	}
	dropStr := func(s []string, i int) []string {
		return append(append([]string{}, s[:i]...), s[i+1:]...)
	}
	switch sp.Kind {
	case scenario.KindChaosMatrix:
		for i := range sp.Schedules {
			if len(sp.Schedules) > 1 {
				i := i
				add(func(c *scenario.Spec) { c.Schedules = dropStr(c.Schedules, i) })
			}
		}
		for i := range sp.Policies {
			if len(sp.Policies) > 1 {
				i := i
				add(func(c *scenario.Spec) { c.Policies = dropStr(c.Policies, i) })
			}
		}
	case scenario.KindTenantMatrix:
		for i := range sp.Mixes {
			if len(sp.Mixes) > 1 {
				i := i
				add(func(c *scenario.Spec) {
					c.Mixes = append(append([]scenario.MixSpec{}, c.Mixes[:i]...), c.Mixes[i+1:]...)
				})
			}
		}
		for i := range sp.Schedulers {
			if len(sp.Schedulers) > 1 {
				i := i
				add(func(c *scenario.Spec) { c.Schedulers = dropStr(c.Schedulers, i) })
			}
		}
		for i := range sp.Policies {
			if len(sp.Policies) > 1 {
				i := i
				add(func(c *scenario.Spec) { c.Policies = dropStr(c.Policies, i) })
			}
		}
	case scenario.KindArrivalMatrix:
		if m := sp.Arrival; m != nil {
			for i := range m.Configs {
				if len(m.Configs) > 1 {
					i := i
					add(func(c *scenario.Spec) {
						c.Arrival.Configs = append(append([]scenario.ProvisionSpec{}, c.Arrival.Configs[:i]...), c.Arrival.Configs[i+1:]...)
					})
				}
			}
			for i := range m.Arrivals {
				if len(m.Arrivals) > 1 {
					i := i
					add(func(c *scenario.Spec) {
						c.Arrival.Arrivals = append(append([]scenario.ArrivalProcSpec{}, c.Arrival.Arrivals[:i]...), c.Arrival.Arrivals[i+1:]...)
					})
				}
			}
		}
	case scenario.KindSingle:
		if sp.Expect != nil {
			add(func(c *scenario.Spec) { c.Expect = nil })
		}
	}
	for _, k := range confKeys(sp.Conf) {
		k := k
		add(func(c *scenario.Spec) { delete(c.Conf, k) })
	}
	if sp.Description != "" {
		add(func(c *scenario.Spec) { c.Description = "" })
	}
	return out
}

func confKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Deterministic order; the shrink loop's outcome must not depend on
	// map iteration.
	sort.Strings(keys)
	return keys
}
