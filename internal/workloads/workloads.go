// Package workloads models the HiBench applications of the paper's
// evaluation (Tables 2 and 3) as stage/task profiles for the engine: input
// sizes, per-stage CPU intensity, shuffle volumes and output sizes are
// calibrated so that I/O activity ratios (Table 2), per-stage CPU and iowait
// percentages (Fig. 1) and the thread-count sensitivity of the runtime
// (Figs. 2, 4, 8) reproduce the paper's shapes.
//
// Sizes scale with Config.Scale (1 = paper size) and with the cluster size
// relative to the paper's 4 nodes, which is exactly how the paper scales
// input for the 16-node experiment (Fig. 9).
package workloads

import (
	"fmt"
	"math"

	"sae/internal/device"
	"sae/internal/engine"
	"sae/internal/engine/job"
)

// Config scales a workload.
type Config struct {
	// Nodes is the cluster size the job will run on (paper: 4).
	Nodes int
	// Scale multiplies all data volumes (1 = paper size). Use small
	// values (e.g. 0.02) for fast tests.
	Scale float64
}

// Paper returns the paper's 4-node full-size configuration.
func Paper() Config { return Config{Nodes: 4, Scale: 1} }

// factor is the total data multiplier: Scale × Nodes/4.
func (c Config) factor() float64 {
	n := c.Nodes
	if n <= 0 {
		n = 4
	}
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	return s * float64(n) / 4
}

// bytes converts paper-scale GiB to scaled bytes.
func (c Config) bytes(gib float64) int64 {
	return int64(gib * c.factor() * float64(device.GiB))
}

// shuffleTasks is the reduce-side parallelism: three waves over all cores,
// enough headroom for the dynamic hill-climb to complete its exploration.
func (c Config) shuffleTasks() int {
	n := c.Nodes
	if n <= 0 {
		n = 4
	}
	t := n * 32 * 3
	return t
}

// Spec bundles a workload's inputs and job for the engine.
type Spec struct {
	// Name is the HiBench application name.
	Name string
	// Class is the HiBench category ("micro", "sql", "websearch", "ml",
	// "graph").
	Class string
	// ProblemSize is the HiBench profile name from Table 3.
	ProblemSize string
	// InputBytes is the scaled input volume (Table 2's "Input Size").
	InputBytes int64
	// Inputs are the DFS files to pre-load.
	Inputs []engine.Input
	// BlockSize is the DFS block size the workload uses (0 = 128 MiB).
	// Splittable text/SQL inputs use smaller splits, as HiBench does.
	BlockSize int64
	// Job is the stage graph.
	Job *job.JobSpec
}

// builder accumulates stages with less repetition.
type builder struct {
	cfg       Config
	name      string
	blockSize int64
	inputs    []engine.Input
	stages    []*job.StageSpec
}

func newBuilder(cfg Config, name string) *builder {
	return &builder{cfg: cfg, name: name, blockSize: dfsBlock}
}

func (b *builder) input(file string, gib float64) {
	b.inputs = append(b.inputs, engine.Input{Name: file, Size: b.cfg.bytes(gib)})
}

// stageParams describes one stage in paper-scale units.
type stageParams struct {
	name string
	// read names a DFS input file for ingestion stages.
	read string
	// shuffleFrom lists upstream stage indices to fetch from.
	shuffleFrom []int
	// dependsOn lists control-dependency stage indices: stages the
	// scheduler must finish first even without a shuffle edge (e.g. a
	// broadcast of sampled partitioner boundaries).
	dependsOn []int
	// cpuSecPerMiB is single-core compute per MiB of task input.
	cpuSecPerMiB float64
	// cpuSecFixed is additional per-task compute independent of input.
	cpuSecFixed float64
	// memPressure is the concurrency CPU-inflation factor (see
	// job.StageSpec.MemPressure).
	memPressure float64
	// spillPressure is the concurrency spill-I/O factor (see
	// job.StageSpec.SpillPressure).
	spillPressure float64
	// shuffleGiB is the stage's total map-output volume (paper scale).
	shuffleGiB float64
	// outGiB writes output to file out (paper scale).
	outGiB float64
	out    string
	// sqlSink marks the output as written through a SQL sink, invisible
	// to the static solution's structural marking.
	sqlSink bool
	// tasks overrides the task count (0 = blocks for read stages,
	// shuffleTasks() otherwise).
	tasks int
}

func (b *builder) stage(p stageParams) {
	id := len(b.stages)
	s := &job.StageSpec{
		ID:                id,
		Name:              p.name,
		InputFile:         p.read,
		ShuffleFrom:       p.shuffleFrom,
		DependsOn:         p.dependsOn,
		ShuffleWriteBytes: b.cfg.bytes(p.shuffleGiB),
		OutputBytes:       b.cfg.bytes(p.outGiB),
		OutputFile:        p.out,
		SQLSink:           p.sqlSink,
		NumTasks:          p.tasks,
		MemPressure:       p.memPressure,
		SpillPressure:     p.spillPressure,
	}
	if s.InputFile == "" && s.NumTasks == 0 {
		s.NumTasks = b.cfg.shuffleTasks()
	}
	// Convert per-MiB compute into per-task seconds using the stage's
	// expected per-task input volume.
	var inputBytes int64
	if p.read != "" {
		for _, in := range b.inputs {
			if in.Name == p.read {
				inputBytes = in.Size
			}
		}
	}
	for _, from := range p.shuffleFrom {
		inputBytes += b.stages[from].ShuffleWriteBytes
	}
	tasks := s.NumTasks
	if tasks == 0 && p.read != "" {
		// Read stages default to one task per DFS block.
		tasks = int((inputBytes + b.blockSize - 1) / b.blockSize)
		if tasks == 0 {
			tasks = 1
		}
	}
	perTaskMiB := float64(inputBytes) / float64(tasks) / float64(device.MiB)
	s.CPUSecondsPerTask = p.cpuSecPerMiB*perTaskMiB + p.cpuSecFixed
	b.stages = append(b.stages, s)
}

const dfsBlock = 128 * device.MiB

func (b *builder) build(class, problemSize string, inputGiB float64) *Spec {
	return &Spec{
		Name:        b.name,
		Class:       class,
		ProblemSize: problemSize,
		InputBytes:  b.cfg.bytes(inputGiB),
		Inputs:      b.inputs,
		BlockSize:   b.blockSize,
		Job:         &job.JobSpec{Name: b.name, Stages: b.stages},
	}
}

// Terasort is the 120 GiB (111.75 GiB effective) sort benchmark: three
// stages, all I/O-marked — sample/partition read, map read + shuffle spill,
// and reduce fetch + sorted output write. Per-stage CPU is tiny (Fig. 1:
// 6%, 15%, 9%), which is what makes it the paper's best case for thread
// tuning.
func Terasort(cfg Config) *Spec {
	b := newBuilder(cfg, "terasort")
	b.input("terasort/in", 111.75)
	b.stage(stageParams{
		name: "sample", read: "terasort/in",
		cpuSecPerMiB: 0.005, spillPressure: 0.12,
	})
	b.stage(stageParams{
		// The map tasks range-partition records with the boundaries the
		// sample stage broadcast, so they cannot start before it ends —
		// a control dependency with no shuffle edge.
		name: "map", read: "terasort/in", dependsOn: []int{0},
		cpuSecPerMiB: 0.050, spillPressure: 0.35,
		shuffleGiB: 48,
	})
	b.stage(stageParams{
		name: "reduce", shuffleFrom: []int{1},
		cpuSecPerMiB: 0.055, spillPressure: 0.25,
		out: "terasort/out", outGiB: 111.75,
	})
	return b.build("micro", "120 GiB", 111.75)
}

// PageRank is the HiBench "gigantic" web-graph ranking job: ingestion, four
// shuffle-only iteration stages (which the static solution cannot mark —
// limitation L2), and a final ranks write. Early iterations are CPU-heavy,
// later ones I/O-heavy (Fig. 1: 61, 54, 73, 15, 6, 3% CPU).
func PageRank(cfg Config) *Spec {
	b := newBuilder(cfg, "pagerank")
	b.blockSize = 32 * device.MiB
	b.input("pagerank/edges", 18.56)
	b.stage(stageParams{
		name: "ingest", read: "pagerank/edges",
		cpuSecPerMiB: 0.30, memPressure: 0.8, spillPressure: 1.6,
		shuffleGiB: 10,
	})
	b.stage(stageParams{
		name: "iter-1", shuffleFrom: []int{0},
		cpuSecPerMiB: 0.22, memPressure: 1.2, spillPressure: 3.2,
		shuffleGiB: 14,
	})
	b.stage(stageParams{
		name: "iter-2", shuffleFrom: []int{1},
		cpuSecPerMiB: 0.35, memPressure: 1.6, spillPressure: 3.6,
		shuffleGiB: 13,
	})
	b.stage(stageParams{
		name: "iter-3", shuffleFrom: []int{2},
		cpuSecPerMiB: 0.075, memPressure: 0.5, spillPressure: 1.6,
		shuffleGiB: 12,
	})
	b.stage(stageParams{
		name: "iter-4", shuffleFrom: []int{3},
		cpuSecPerMiB: 0.025, memPressure: 0.2, spillPressure: 1.0,
		shuffleGiB: 10,
	})
	b.stage(stageParams{
		name: "write-ranks", shuffleFrom: []int{4},
		cpuSecPerMiB: 0.012,
		out:          "pagerank/ranks", outGiB: 9,
	})
	return b.build("websearch", "gigantic", 18.56)
}

// Aggregation is the HiBench SQL GROUP BY over uservisits: a compute-heavy
// scan stage (46% CPU) whose disk utilization stays low at small thread
// counts — the reason the static solution cannot beat the default here
// (limitation L3) — followed by an aggregate+write stage.
func Aggregation(cfg Config) *Spec {
	b := newBuilder(cfg, "aggregation")
	b.blockSize = 16 * device.MiB
	b.input("sql/uservisits", 17.87)
	b.stage(stageParams{
		name: "scan-group", read: "sql/uservisits",
		cpuSecPerMiB: 0.34, spillPressure: 0.15,
		shuffleGiB: 5.5,
	})
	b.stage(stageParams{
		name: "aggregate", shuffleFrom: []int{0},
		cpuSecPerMiB: 0.26,
		out:          "sql/agg-out", sqlSink: true, outGiB: 3.6,
	})
	return b.build("sql", "bigdata", 17.87)
}

// Join is the HiBench SQL join of uservisits with rankings: two scan stages
// (the big one at 68% CPU) and a join+write stage. Its shuffle volumes are
// tiny relative to input (Table 2: +18%), so thread tuning buys little
// (Fig. 8d: −2.5%).
func Join(cfg Config) *Spec {
	b := newBuilder(cfg, "join")
	b.blockSize = 8 * device.MiB
	b.input("sql/uservisits", 16.9)
	b.input("sql/rankings", 0.97)
	b.stage(stageParams{
		name: "scan-uservisits", read: "sql/uservisits",
		cpuSecPerMiB: 0.62,
		shuffleGiB:   1.6,
	})
	b.stage(stageParams{
		// Spark's SQL planner serializes the two scans: the small
		// rankings side is scanned only after the big probe-side scan,
		// when the broadcast-threshold decision is settled. The edge
		// also keeps the calibrated Fig. 8d profile (each scan gets the
		// full cluster, as measured on real Spark).
		name: "scan-rankings", read: "sql/rankings", dependsOn: []int{0},
		cpuSecPerMiB: 0.45,
		shuffleGiB:   0.5,
		tasks:        0,
	})
	b.stage(stageParams{
		name: "join-write", shuffleFrom: []int{0, 1},
		cpuSecPerMiB: 0.35,
		out:          "sql/join-out", sqlSink: true, outGiB: 0.5,
	})
	return b.build("sql", "bigdata", 17.87)
}

// Scan is the HiBench SQL full-table scan, rewriting the table through a
// heavy intermediate spill (Table 2: 17.87 GiB in, 112.56 GiB of I/O).
func Scan(cfg Config) *Spec {
	b := newBuilder(cfg, "scan")
	b.input("sql/uservisits", 17.87)
	b.stage(stageParams{
		name: "scan", read: "sql/uservisits",
		cpuSecPerMiB: 0.06,
		shuffleGiB:   38,
	})
	b.stage(stageParams{
		name: "write", shuffleFrom: []int{0},
		cpuSecPerMiB: 0.02,
		out:          "sql/scan-out", sqlSink: true, outGiB: 18.7,
	})
	return b.build("sql", "bigdata", 17.87)
}

// Bayes is HiBench's naive-Bayes trainer: tokenize, aggregate term counts,
// write the model (Table 2: 3.5 GiB in, 9.8 GiB I/O).
func Bayes(cfg Config) *Spec {
	b := newBuilder(cfg, "bayes")
	b.blockSize = 32 * device.MiB
	b.input("bayes/docs", 3.5)
	b.stage(stageParams{
		name: "tokenize", read: "bayes/docs",
		cpuSecPerMiB: 0.55,
		shuffleGiB:   1.5,
	})
	b.stage(stageParams{
		name: "count", shuffleFrom: []int{0},
		cpuSecPerMiB: 0.40,
		shuffleGiB:   1.3,
	})
	b.stage(stageParams{
		name: "model", shuffleFrom: []int{1},
		cpuSecPerMiB: 0.15,
		out:          "bayes/model", outGiB: 0.7,
	})
	return b.build("ml", "bigdata", 3.5)
}

// LDA is HiBench's topic-model trainer: small input, several Gibbs-style
// iterations with shuffle volumes close to the corpus size (Table 2: +508%).
func LDA(cfg Config) *Spec {
	b := newBuilder(cfg, "lda")
	b.blockSize = 32 * device.MiB
	b.input("lda/corpus", 0.63)
	b.stage(stageParams{
		name: "ingest", read: "lda/corpus",
		cpuSecPerMiB: 1.1,
		shuffleGiB:   0.5,
	})
	b.stage(stageParams{
		name: "iter-1", shuffleFrom: []int{0},
		cpuSecPerMiB: 1.3,
		shuffleGiB:   0.45,
	})
	b.stage(stageParams{
		name: "iter-2", shuffleFrom: []int{1},
		cpuSecPerMiB: 1.3,
		shuffleGiB:   0.4,
	})
	b.stage(stageParams{
		name: "topics", shuffleFrom: []int{2},
		cpuSecPerMiB: 0.5,
		out:          "lda/topics", outGiB: 0.5,
	})
	return b.build("ml", "small", 0.63)
}

// NWeight is HiBench's graph n-hop weight propagation: a tiny edge list
// explodes into shuffle traffic 36× the input (Table 2: +3553%).
func NWeight(cfg Config) *Spec {
	b := newBuilder(cfg, "nweight")
	b.blockSize = 32 * device.MiB
	b.input("nweight/edges", 0.28)
	b.stage(stageParams{
		name: "load", read: "nweight/edges",
		cpuSecPerMiB: 0.9,
		shuffleGiB:   1.6,
	})
	b.stage(stageParams{
		name: "hop-2", shuffleFrom: []int{0},
		cpuSecPerMiB: 0.7,
		shuffleGiB:   2.2,
	})
	b.stage(stageParams{
		name: "hop-3", shuffleFrom: []int{1},
		cpuSecPerMiB: 0.7,
		shuffleGiB:   1.1,
	})
	b.stage(stageParams{
		name: "weights", shuffleFrom: []int{2},
		cpuSecPerMiB: 0.3,
		out:          "nweight/out", outGiB: 0.15,
	})
	return b.build("graph", "large", 0.28)
}

// SVM is HiBench's support-vector-machine trainer: a huge ingestion (the
// cached training set) plus compute-dominated iterations with modest
// gradients shuffles (Table 2: 107.29 GiB in, +90%).
func SVM(cfg Config) *Spec {
	b := newBuilder(cfg, "svm")
	b.blockSize = 32 * device.MiB
	b.input("svm/train", 107.29)
	b.stage(stageParams{
		name: "ingest-cache", read: "svm/train",
		cpuSecPerMiB: 0.25,
		shuffleGiB:   45,
	})
	b.stage(stageParams{
		name: "train", shuffleFrom: []int{0},
		cpuSecPerMiB: 0.30,
		out:          "svm/model", outGiB: 6.6,
	})
	return b.build("ml", "huge", 107.29)
}

// All returns the nine Table 2 applications at the given configuration.
func All(cfg Config) []*Spec {
	return []*Spec{
		Aggregation(cfg),
		Bayes(cfg),
		Join(cfg),
		LDA(cfg),
		NWeight(cfg),
		PageRank(cfg),
		Scan(cfg),
		Terasort(cfg),
		SVM(cfg),
	}
}

// ByName returns the named workload, or an error listing valid names.
func ByName(name string, cfg Config) (*Spec, error) {
	ctors := map[string]func(Config) *Spec{
		"terasort":    Terasort,
		"pagerank":    PageRank,
		"aggregation": Aggregation,
		"join":        Join,
		"scan":        Scan,
		"bayes":       Bayes,
		"lda":         LDA,
		"nweight":     NWeight,
		"svm":         SVM,
	}
	ctor, ok := ctors[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return ctor(cfg), nil
}

// FourBench returns the four applications of the performance evaluation
// (Table 3 / Fig. 8): Terasort, Join, Aggregation, PageRank.
func FourBench(cfg Config) []*Spec {
	return []*Spec{Terasort(cfg), PageRank(cfg), Aggregation(cfg), Join(cfg)}
}

// GiB converts bytes to GiB for display.
func GiB(b int64) float64 { return float64(b) / float64(device.GiB) }

// Round2 rounds to two decimals (for table rendering).
func Round2(v float64) float64 { return math.Round(v*100) / 100 }
