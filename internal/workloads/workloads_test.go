package workloads

import (
	"math"
	"testing"
	"testing/quick"

	"sae/internal/device"
)

func TestAllNineApplications(t *testing.T) {
	all := All(Paper())
	if len(all) != 9 {
		t.Fatalf("applications = %d, want 9 (Table 2)", len(all))
	}
	names := map[string]bool{}
	for _, w := range all {
		if names[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
		if err := w.Job.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
	for _, want := range []string{"terasort", "pagerank", "aggregation", "join", "scan", "bayes", "lda", "nweight", "svm"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("terasort", Paper())
	if err != nil || w.Name != "terasort" {
		t.Fatalf("ByName = %v, %v", w, err)
	}
	if _, err := ByName("sortbench", Paper()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestInputSizesMatchTable3(t *testing.T) {
	cfg := Paper()
	cases := map[string]float64{
		"terasort":    111.75,
		"pagerank":    18.56,
		"aggregation": 17.87,
		"join":        17.87,
		"scan":        17.87,
		"bayes":       3.50,
		"lda":         0.63,
		"nweight":     0.28,
		"svm":         107.29,
	}
	for name, gib := range cases {
		w, err := ByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := GiB(w.InputBytes); math.Abs(got-gib) > 0.02 {
			t.Errorf("%s input = %.2f GiB, want %.2f (Table 2)", name, got, gib)
		}
	}
}

func TestScalingProportional(t *testing.T) {
	full := Terasort(Config{Nodes: 4, Scale: 1})
	half := Terasort(Config{Nodes: 4, Scale: 0.5})
	if got, want := half.InputBytes*2, full.InputBytes; abs64(got-want) > 2 {
		t.Fatalf("half scale input %d, full %d", half.InputBytes, full.InputBytes)
	}
	// Cluster scaling multiplies data too (Fig. 9's methodology).
	big := Terasort(Config{Nodes: 16, Scale: 1})
	if got, want := big.InputBytes, full.InputBytes*4; abs64(got-want) > 4 {
		t.Fatalf("16-node input %d, want 4x %d", big.InputBytes, full.InputBytes)
	}
}

func TestStageStructure(t *testing.T) {
	cfg := Paper()
	if n := len(Terasort(cfg).Job.Stages); n != 3 {
		t.Errorf("terasort stages = %d, want 3 (§4)", n)
	}
	if n := len(PageRank(cfg).Job.Stages); n != 6 {
		t.Errorf("pagerank stages = %d, want 6 (Fig. 8b)", n)
	}
	if n := len(Aggregation(cfg).Job.Stages); n != 2 {
		t.Errorf("aggregation stages = %d, want 2 (Fig. 8c)", n)
	}
	if n := len(Join(cfg).Job.Stages); n != 3 {
		t.Errorf("join stages = %d, want 3 (Fig. 8d)", n)
	}
}

func TestIOMarking(t *testing.T) {
	cfg := Paper()
	// Terasort: all three stages I/O-marked (§4: "all of which are
	// considered to be I/O intensive").
	for _, st := range Terasort(cfg).Job.Stages {
		if !st.IOMarked() {
			t.Errorf("terasort stage %d not IO-marked", st.ID)
		}
	}
	// PageRank: only first (read) and last (write) marked (§4).
	pr := PageRank(cfg).Job.Stages
	for i, st := range pr {
		want := i == 0 || i == len(pr)-1
		if st.IOMarked() != want {
			t.Errorf("pagerank stage %d IOMarked = %v, want %v", i, st.IOMarked(), want)
		}
	}
	// SQL sinks are unmarked (L2): only the scans are I/O-marked.
	agg := Aggregation(cfg).Job.Stages
	if !agg[0].IOMarked() || agg[1].IOMarked() {
		t.Errorf("aggregation marking = %v/%v, want true/false", agg[0].IOMarked(), agg[1].IOMarked())
	}
}

func TestNominalIOVolumes(t *testing.T) {
	// Task-level I/O (input + shuffle both ways + output) should land in
	// the neighbourhood of Table 2 for the headline entries.
	cases := map[string]struct{ lo, hi float64 }{
		"terasort": {380, 480}, // paper 429.35
		"scan":     {95, 130},  // paper 112.56
		"bayes":    {8.5, 11},  // paper 9.80
		"lda":      {3.2, 4.4}, // paper 3.83
		"nweight":  {9, 11.5},  // paper 10.23
		"svm":      {180, 225}, // paper 203.92
	}
	for name, band := range cases {
		w, err := ByName(name, Paper())
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, st := range w.Job.Stages {
			if st.InputFile != "" {
				for _, in := range w.Inputs {
					if in.Name == st.InputFile {
						total += in.Size
					}
				}
			}
			for _, from := range st.ShuffleFrom {
				total += w.Job.Stages[from].ShuffleWriteBytes // shuffle read
			}
			total += st.ShuffleWriteBytes + st.OutputBytes
		}
		gib := GiB(total)
		if gib < band.lo || gib > band.hi {
			t.Errorf("%s nominal I/O = %.2f GiB, want within [%.0f, %.0f] (Table 2)", name, gib, band.lo, band.hi)
		}
	}
}

// Property: all workloads remain valid with positive task counts under
// arbitrary scales and cluster sizes.
func TestWorkloadScalingProperty(t *testing.T) {
	f := func(scaleMil uint16, nodes uint8) bool {
		cfg := Config{
			Nodes: int(nodes%32) + 1,
			Scale: float64(scaleMil%2000+10) / 1000,
		}
		for _, w := range All(cfg) {
			if err := w.Job.Validate(); err != nil {
				return false
			}
			for _, st := range w.Job.Stages {
				if st.CPUSecondsPerTask < 0 {
					return false
				}
				if st.NumTasks < 0 {
					return false
				}
			}
			if w.InputBytes <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSizes(t *testing.T) {
	cfg := Paper()
	if Terasort(cfg).BlockSize != 128*device.MiB {
		t.Errorf("terasort block size = %d", Terasort(cfg).BlockSize)
	}
	if PageRank(cfg).BlockSize != 32*device.MiB {
		t.Errorf("pagerank block size = %d", PageRank(cfg).BlockSize)
	}
	if Join(cfg).BlockSize != 8*device.MiB {
		t.Errorf("join block size = %d", Join(cfg).BlockSize)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
