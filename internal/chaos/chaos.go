// Package chaos provides deterministic, seeded fault schedules for the
// simulated cluster: executor crashes at a virtual time (optionally followed
// by a restart), transient task I/O faults, and shuffle-fetch failures. A
// Plan is pure data plus pure hash functions — it holds no clock and no
// RNG state, so the same plan injects exactly the same faults into the same
// run every time, preserving the repo's determinism guarantee. The engine
// consults the plan from the sim clock (crash events) and from task
// attempts (fault rolls); the chaos package itself knows nothing about the
// engine.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Crash schedules the loss of one executor at a virtual time.
type Crash struct {
	// Exec is the executor ID to kill.
	Exec int
	// At is the virtual time of the crash, measured from job start.
	At time.Duration
	// RestartAfter, if positive, brings the executor back that long
	// after the crash with a fresh controller (restart at cmin).
	RestartAfter time.Duration
}

// Slow schedules a gray failure: from At onward, one node's disk and CPU
// serve at 1/Factor of their nominal rate (a degrading drive, thermal
// throttling, a noisy neighbour stealing cycles). The executor stays alive
// and keeps heartbeating — nothing crashes, everything just gets slower.
type Slow struct {
	// Exec is the executor/node ID to degrade.
	Exec int
	// At is the virtual time the degradation sets in.
	At time.Duration
	// Factor divides the node's device service rates (2 = half speed).
	Factor float64
}

// Partition cuts one executor's network for a window: its heartbeats and
// shuffle fetches to/from it are dropped while tasks already on the node
// keep running — the classic gray failure that turns a failure detector's
// timeout into a false positive.
type Partition struct {
	// Exec is the executor/node ID to isolate.
	Exec int
	// At is the virtual time the partition starts.
	At time.Duration
	// Duration is how long the partition lasts.
	Duration time.Duration
}

// Plan is a named, seeded fault schedule.
type Plan struct {
	// Name labels the plan in reports ("quiet", "crash@2m", …).
	Name string
	// Seed drives the per-(stage,task,attempt) fault hashes.
	Seed int64
	// Crashes lists scheduled executor losses, in no particular order.
	Crashes []Crash
	// Slows lists scheduled node degradations (gray failures).
	Slows []Slow
	// Partitions lists scheduled network partitions (gray failures).
	Partitions []Partition
	// TaskFaultRate is the probability that a task attempt suffers a
	// transient I/O fault partway through its input.
	TaskFaultRate float64
	// FetchFaultRate is the probability that a reduce task attempt's
	// shuffle fetch fails transiently.
	FetchFaultRate float64
	// CorruptRate is the probability that one DFS block replica is
	// bit-rotten: reads of it return data whose CRC32 does not match the
	// block's stored checksum. Rot is a property of the (block, node)
	// pair — re-reading the same replica fails the same way; failover to
	// another replica is the only way out.
	CorruptRate float64
	// MaxInjected caps how many attempts of one task may receive
	// injected faults (0 selects 2), so injected transients can never
	// exhaust the engine's task.maxFailures budget on their own.
	MaxInjected int
}

// Quiet returns the empty schedule: no faults.
func Quiet() *Plan { return &Plan{Name: "quiet"} }

// CrashAt returns a plan that permanently kills executor exec at t.
func CrashAt(exec int, at time.Duration) *Plan {
	return &Plan{
		Name:    fmt.Sprintf("crash%d@%s", exec, at),
		Crashes: []Crash{{Exec: exec, At: at}},
	}
}

// CrashRestart returns a plan that kills executor exec at t and restarts it
// after the given delay.
func CrashRestart(exec int, at, after time.Duration) *Plan {
	return &Plan{
		Name:    fmt.Sprintf("crash%d@%s+%s", exec, at, after),
		Crashes: []Crash{{Exec: exec, At: at, RestartAfter: after}},
	}
}

// Flaky returns a plan injecting transient task I/O faults at the given
// rate.
func Flaky(rate float64, seed int64) *Plan {
	return &Plan{Name: fmt.Sprintf("flaky:%g", rate), Seed: seed, TaskFaultRate: rate}
}

// FetchStorm returns a plan injecting transient shuffle-fetch failures at
// the given rate.
func FetchStorm(rate float64, seed int64) *Plan {
	return &Plan{Name: fmt.Sprintf("fetch:%g", rate), Seed: seed, FetchFaultRate: rate}
}

// Mayhem returns a plan combining a mid-horizon crash-and-restart with
// transient task and fetch faults.
func Mayhem(horizon time.Duration, seed int64) *Plan {
	return &Plan{
		Name:           fmt.Sprintf("mayhem@%s", horizon),
		Seed:           seed,
		Crashes:        []Crash{{Exec: 1, At: horizon * 2 / 5, RestartAfter: horizon / 5}},
		TaskFaultRate:  0.02,
		FetchFaultRate: 0.03,
	}
}

// SlowAt returns a plan degrading executor exec's devices by factor from t.
func SlowAt(exec int, at time.Duration, factor float64) *Plan {
	return &Plan{
		Name:  fmt.Sprintf("slow%d@%sx%g", exec, at, factor),
		Slows: []Slow{{Exec: exec, At: at, Factor: factor}},
	}
}

// PartitionAt returns a plan isolating executor exec's network for dur
// starting at t.
func PartitionAt(exec int, at, dur time.Duration) *Plan {
	return &Plan{
		Name:       fmt.Sprintf("partition%d@%s+%s", exec, at, dur),
		Partitions: []Partition{{Exec: exec, At: at, Duration: dur}},
	}
}

// Corrupt returns a plan bit-rotting the given fraction of block replicas.
func Corrupt(rate float64, seed int64) *Plan {
	return &Plan{Name: fmt.Sprintf("corrupt:%g", rate), Seed: seed, CorruptRate: rate}
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Slows) == 0 && len(p.Partitions) == 0 &&
		p.TaskFaultRate <= 0 && p.FetchFaultRate <= 0 && p.CorruptRate <= 0)
}

// String returns the plan's name.
func (p *Plan) String() string {
	if p == nil {
		return "quiet"
	}
	return p.Name
}

func (p *Plan) maxInjected() int {
	if p.MaxInjected <= 0 {
		return 2
	}
	return p.MaxInjected
}

// TaskFault reports whether the given attempt of task (stage, task) suffers
// an injected transient I/O fault, and at which fraction of its input the
// fault strikes. attemptBudget is the engine's surviving-attempt budget
// (task.maxFailures − 1): injection stops below both caps so an injected
// fault can never abort a job by itself.
func (p *Plan) TaskFault(stage, task, attempt, attemptBudget int) (bool, float64) {
	if p == nil || p.TaskFaultRate <= 0 {
		return false, 0
	}
	if lim := p.maxInjected(); attemptBudget > lim {
		attemptBudget = lim
	}
	if attempt >= attemptBudget {
		return false, 0
	}
	if !p.roll(1, stage, task, attempt, p.TaskFaultRate) {
		return false, 0
	}
	// Strike somewhere in the middle of the input: [0.1, 0.9).
	return true, 0.1 + 0.8*p.frac(2, stage, task, attempt)
}

// FetchFault reports whether the given attempt's shuffle fetch fails
// transiently, under the same attempt budget as TaskFault.
func (p *Plan) FetchFault(stage, task, attempt, attemptBudget int) bool {
	if p == nil || p.FetchFaultRate <= 0 {
		return false
	}
	if lim := p.maxInjected(); attemptBudget > lim {
		attemptBudget = lim
	}
	if attempt >= attemptBudget {
		return false
	}
	return p.roll(3, stage, task, attempt, p.FetchFaultRate)
}

// FetchFaultTry reports whether the given retry (try 0 = the first fetch
// attempt) of a reduce attempt's shuffle fetch fails transiently. Try 0
// delegates to FetchFault so plans written before bounded fetch retries keep
// rolling the same coordinates; later tries roll fresh coordinates under the
// same per-task attempt budget, so a retry loop can observe a fault clear.
func (p *Plan) FetchFaultTry(stage, task, attempt, try, attemptBudget int) bool {
	if try == 0 {
		return p.FetchFault(stage, task, attempt, attemptBudget)
	}
	if p == nil || p.FetchFaultRate <= 0 {
		return false
	}
	if lim := p.maxInjected(); attemptBudget > lim {
		attemptBudget = lim
	}
	if attempt >= attemptBudget {
		return false
	}
	return p.roll(5, stage, task, attempt*64+try, p.FetchFaultRate)
}

// CorruptReplica reports whether the replica of the block with checksum sum
// stored on the given node is bit-rotten. The roll is keyed by (sum, node)
// only — no attempt coordinate — so re-reads of the same replica fail
// identically and failover to another replica is the only way out.
func (p *Plan) CorruptReplica(sum uint32, node int) bool {
	if p == nil || p.CorruptRate <= 0 {
		return false
	}
	return p.roll(4, int(sum), node, 0, p.CorruptRate)
}

// Partitioned reports whether executor exec is inside a partition window at
// virtual time now. Windows are half-open: [At, At+Duration).
func (p *Plan) Partitioned(exec int, now time.Duration) bool {
	if p == nil {
		return false
	}
	for _, w := range p.Partitions {
		if w.Exec == exec && now >= w.At && now < w.At+w.Duration {
			return true
		}
	}
	return false
}

// SortedCrashes returns the crash schedule ordered by time then executor.
func (p *Plan) SortedCrashes() []Crash {
	if p == nil {
		return nil
	}
	out := append([]Crash(nil), p.Crashes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Exec < out[j].Exec
	})
	return out
}

// SortedSlows returns the degradation schedule ordered by time then executor.
func (p *Plan) SortedSlows() []Slow {
	if p == nil {
		return nil
	}
	out := append([]Slow(nil), p.Slows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Exec < out[j].Exec
	})
	return out
}

// SortedPartitions returns the partition schedule ordered by start time then
// executor.
func (p *Plan) SortedPartitions() []Partition {
	if p == nil {
		return nil
	}
	out := append([]Partition(nil), p.Partitions...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Exec < out[j].Exec
	})
	return out
}

// roll draws a deterministic Bernoulli from the plan's seed and the fault
// coordinates.
func (p *Plan) roll(kind, stage, task, attempt int, rate float64) bool {
	if rate >= 1 {
		return true
	}
	return p.frac(kind, stage, task, attempt) < rate
}

// frac hashes the fault coordinates to a uniform float64 in [0, 1).
func (p *Plan) frac(kind, stage, task, attempt int) float64 {
	h := splitmix(uint64(p.Seed) ^ 0x9e3779b97f4a7c15)
	h = splitmix(h ^ uint64(kind))
	h = splitmix(h ^ uint64(stage))
	h = splitmix(h ^ uint64(task))
	h = splitmix(h ^ uint64(attempt))
	return float64(h>>11) / (1 << 53)
}

// splitmix is the SplitMix64 finalizer — the same stateless hashing idiom
// the device variability model uses for deterministic per-node factors.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Parse builds a plan from a compact spec string: a comma-separated list of
// clauses. Supported clauses:
//
//	quiet | none          no faults (alone)
//	crash@T               executor 1 crashes at virtual time T (e.g. 90s)
//	crash@T+R             … and restarts R after the crash
//	crashN@T[+R]          same for executor N
//	flaky[:RATE]          transient task I/O faults (default rate 0.05)
//	fetch[:RATE]          transient shuffle-fetch failures (default 0.1)
//	slow:N@TxF            executor N's disk and CPU degrade to 1/F of their
//	                      nominal rate from T onward (gray failure)
//	partition:N@T+D       executor N's network drops (heartbeats and shuffle
//	                      fetches) for the window [T, T+D); running tasks
//	                      keep computing
//	corrupt[:RATE]        each DFS block replica is bit-rotten with the
//	                      given probability (default 0.01); reads fail the
//	                      CRC32 check until failover
//	mayhem@T              crash-restart of executor 1 mid-horizon T plus
//	                      low-rate task and fetch faults
//	seed:N                hash seed (default 1)
//
// Example: "crash1@2m+30s,flaky:0.02,seed:7" or
// "slow:1@60sx4,partition:2@90s+45s,corrupt:0.02". Parse returns nil for
// the quiet plan.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "quiet" || spec == "none" {
		return nil, nil
	}
	p := &Plan{Name: spec, Seed: 1}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		switch {
		case strings.HasPrefix(clause, "crash"):
			c, err := parseCrash(clause)
			if err != nil {
				return nil, err
			}
			p.Crashes = append(p.Crashes, c)
		case strings.HasPrefix(clause, "slow"):
			s, err := parseSlow(clause)
			if err != nil {
				return nil, err
			}
			p.Slows = append(p.Slows, s)
		case strings.HasPrefix(clause, "partition"):
			w, err := parsePartition(clause)
			if err != nil {
				return nil, err
			}
			p.Partitions = append(p.Partitions, w)
		case strings.HasPrefix(clause, "corrupt"):
			rate, err := parseRate(clause, "corrupt", 0.01)
			if err != nil {
				return nil, err
			}
			p.CorruptRate = rate
		case strings.HasPrefix(clause, "flaky"):
			rate, err := parseRate(clause, "flaky", 0.05)
			if err != nil {
				return nil, err
			}
			p.TaskFaultRate = rate
		case strings.HasPrefix(clause, "fetch"):
			rate, err := parseRate(clause, "fetch", 0.1)
			if err != nil {
				return nil, err
			}
			p.FetchFaultRate = rate
		case strings.HasPrefix(clause, "mayhem@"):
			horizon, err := time.ParseDuration(clause[len("mayhem@"):])
			if err != nil {
				return nil, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			m := Mayhem(horizon, p.Seed)
			p.Crashes = append(p.Crashes, m.Crashes...)
			p.TaskFaultRate = m.TaskFaultRate
			p.FetchFaultRate = m.FetchFaultRate
		case strings.HasPrefix(clause, "seed:"):
			n, err := strconv.ParseInt(clause[len("seed:"):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: clause %q: %w", clause, err)
			}
			p.Seed = n
		default:
			return nil, fmt.Errorf("chaos: unknown clause %q", clause)
		}
	}
	return p, nil
}

// parseCrash parses "crash[N]@T[+R]".
func parseCrash(clause string) (Crash, error) {
	rest := clause[len("crash"):]
	at := strings.IndexByte(rest, '@')
	if at < 0 {
		return Crash{}, fmt.Errorf("chaos: clause %q: want crash[N]@T[+R]", clause)
	}
	c := Crash{Exec: 1}
	if at > 0 {
		n, err := strconv.Atoi(rest[:at])
		if err != nil {
			return Crash{}, fmt.Errorf("chaos: clause %q: bad executor: %w", clause, err)
		}
		c.Exec = n
	}
	times := rest[at+1:]
	if plus := strings.IndexByte(times, '+'); plus >= 0 {
		d, err := time.ParseDuration(times[plus+1:])
		if err != nil {
			return Crash{}, fmt.Errorf("chaos: clause %q: bad restart delay: %w", clause, err)
		}
		c.RestartAfter = d
		times = times[:plus]
	}
	d, err := time.ParseDuration(times)
	if err != nil {
		return Crash{}, fmt.Errorf("chaos: clause %q: bad crash time: %w", clause, err)
	}
	c.At = d
	return c, nil
}

// parseSlow parses "slow[:N]@TxF" (executor defaults to 1, factor to 2).
func parseSlow(clause string) (Slow, error) {
	rest := strings.TrimPrefix(clause, "slow")
	rest = strings.TrimPrefix(rest, ":")
	at := strings.IndexByte(rest, '@')
	if at < 0 {
		return Slow{}, fmt.Errorf("chaos: clause %q: want slow:N@TxF", clause)
	}
	s := Slow{Exec: 1, Factor: 2}
	if at > 0 {
		n, err := strconv.Atoi(rest[:at])
		if err != nil {
			return Slow{}, fmt.Errorf("chaos: clause %q: bad executor: %w", clause, err)
		}
		s.Exec = n
	}
	times := rest[at+1:]
	if x := strings.IndexByte(times, 'x'); x >= 0 {
		f, err := strconv.ParseFloat(times[x+1:], 64)
		if err != nil {
			return Slow{}, fmt.Errorf("chaos: clause %q: bad factor: %w", clause, err)
		}
		if f <= 0 {
			return Slow{}, fmt.Errorf("chaos: clause %q: factor must be positive", clause)
		}
		s.Factor = f
		times = times[:x]
	}
	d, err := time.ParseDuration(times)
	if err != nil {
		return Slow{}, fmt.Errorf("chaos: clause %q: bad time: %w", clause, err)
	}
	s.At = d
	return s, nil
}

// parsePartition parses "partition[:N]@T+D" (executor defaults to 1; the
// window duration D is required — a permanent partition is spelled crash).
func parsePartition(clause string) (Partition, error) {
	rest := strings.TrimPrefix(clause, "partition")
	rest = strings.TrimPrefix(rest, ":")
	at := strings.IndexByte(rest, '@')
	if at < 0 {
		return Partition{}, fmt.Errorf("chaos: clause %q: want partition:N@T+D", clause)
	}
	w := Partition{Exec: 1}
	if at > 0 {
		n, err := strconv.Atoi(rest[:at])
		if err != nil {
			return Partition{}, fmt.Errorf("chaos: clause %q: bad executor: %w", clause, err)
		}
		w.Exec = n
	}
	times := rest[at+1:]
	plus := strings.IndexByte(times, '+')
	if plus < 0 {
		return Partition{}, fmt.Errorf("chaos: clause %q: want partition:N@T+D", clause)
	}
	dur, err := time.ParseDuration(times[plus+1:])
	if err != nil {
		return Partition{}, fmt.Errorf("chaos: clause %q: bad duration: %w", clause, err)
	}
	if dur <= 0 {
		return Partition{}, fmt.Errorf("chaos: clause %q: duration must be positive", clause)
	}
	w.Duration = dur
	d, err := time.ParseDuration(times[:plus])
	if err != nil {
		return Partition{}, fmt.Errorf("chaos: clause %q: bad start time: %w", clause, err)
	}
	w.At = d
	return w, nil
}

// parseRate parses "name" or "name:RATE".
func parseRate(clause, name string, def float64) (float64, error) {
	rest := clause[len(name):]
	if rest == "" {
		return def, nil
	}
	if !strings.HasPrefix(rest, ":") {
		return 0, fmt.Errorf("chaos: unknown clause %q", clause)
	}
	rate, err := strconv.ParseFloat(rest[1:], 64)
	if err != nil {
		return 0, fmt.Errorf("chaos: clause %q: %w", clause, err)
	}
	if rate < 0 || rate > 1 {
		return 0, fmt.Errorf("chaos: clause %q: rate out of [0,1]", clause)
	}
	return rate, nil
}
