package chaos

import (
	"testing"
	"time"
)

func TestParseQuiet(t *testing.T) {
	for _, spec := range []string{"", "quiet", "none", "  quiet  "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p != nil {
			t.Fatalf("Parse(%q) = %+v, want nil", spec, p)
		}
	}
}

func TestParseCrash(t *testing.T) {
	p, err := Parse("crash@90s")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 {
		t.Fatalf("crashes = %d, want 1", len(p.Crashes))
	}
	c := p.Crashes[0]
	if c.Exec != 1 || c.At != 90*time.Second || c.RestartAfter != 0 {
		t.Fatalf("crash = %+v", c)
	}

	p, err = Parse("crash2@2m+30s")
	if err != nil {
		t.Fatal(err)
	}
	c = p.Crashes[0]
	if c.Exec != 2 || c.At != 2*time.Minute || c.RestartAfter != 30*time.Second {
		t.Fatalf("crash = %+v", c)
	}
}

func TestParseCombined(t *testing.T) {
	p, err := Parse("crash@1m+10s,flaky:0.02,fetch:0.04,seed:7")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 || p.TaskFaultRate != 0.02 || p.FetchFaultRate != 0.04 || p.Seed != 7 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Name != "crash@1m+10s,flaky:0.02,fetch:0.04,seed:7" {
		t.Fatalf("name = %q", p.Name)
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("flaky,fetch")
	if err != nil {
		t.Fatal(err)
	}
	if p.TaskFaultRate != 0.05 || p.FetchFaultRate != 0.1 {
		t.Fatalf("default rates = %g/%g", p.TaskFaultRate, p.FetchFaultRate)
	}
}

func TestParseMayhem(t *testing.T) {
	p, err := Parse("mayhem@100s")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 || p.Crashes[0].At != 40*time.Second || p.Crashes[0].RestartAfter != 20*time.Second {
		t.Fatalf("mayhem crashes = %+v", p.Crashes)
	}
	if p.TaskFaultRate <= 0 || p.FetchFaultRate <= 0 {
		t.Fatalf("mayhem rates = %g/%g", p.TaskFaultRate, p.FetchFaultRate)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"crash", "crash@", "crashx@1m", "flaky:2", "bogus", "seed:x", "crash@1m+x"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestTaskFaultDeterministic(t *testing.T) {
	a := &Plan{Seed: 3, TaskFaultRate: 0.3}
	b := &Plan{Seed: 3, TaskFaultRate: 0.3}
	for stage := 0; stage < 3; stage++ {
		for task := 0; task < 50; task++ {
			f1, at1 := a.TaskFault(stage, task, 0, 3)
			f2, at2 := b.TaskFault(stage, task, 0, 3)
			if f1 != f2 || at1 != at2 {
				t.Fatalf("stage %d task %d: (%v,%g) vs (%v,%g)", stage, task, f1, at1, f2, at2)
			}
		}
	}
}

func TestTaskFaultRate(t *testing.T) {
	p := &Plan{Seed: 1, TaskFaultRate: 0.2}
	hits := 0
	const n = 5000
	for task := 0; task < n; task++ {
		if ok, frac := p.TaskFault(0, task, 0, 3); ok {
			hits++
			if frac < 0.1 || frac >= 0.9 {
				t.Fatalf("fault fraction %g out of [0.1, 0.9)", frac)
			}
		}
	}
	got := float64(hits) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("fault rate = %.3f, want ≈0.2", got)
	}
}

func TestInjectionRespectsAttemptBudget(t *testing.T) {
	p := &Plan{Seed: 1, TaskFaultRate: 1, FetchFaultRate: 1}
	// Default MaxInjected is 2: attempts 0 and 1 fault, attempt 2 does not.
	for attempt := 0; attempt < 5; attempt++ {
		want := attempt < 2
		if ok, _ := p.TaskFault(0, 0, attempt, 3); ok != want {
			t.Fatalf("TaskFault attempt %d = %v, want %v", attempt, ok, want)
		}
		if ok := p.FetchFault(0, 0, attempt, 3); ok != want {
			t.Fatalf("FetchFault attempt %d = %v, want %v", attempt, ok, want)
		}
	}
	// A tighter engine budget (task.maxFailures = 2 ⇒ budget 1) wins.
	if ok, _ := p.TaskFault(0, 0, 1, 1); ok {
		t.Fatal("TaskFault ignored the engine attempt budget")
	}
}

func TestSeedChangesFaults(t *testing.T) {
	a := &Plan{Seed: 1, TaskFaultRate: 0.2}
	b := &Plan{Seed: 2, TaskFaultRate: 0.2}
	same := true
	for task := 0; task < 200; task++ {
		fa, _ := a.TaskFault(0, task, 0, 3)
		fb, _ := b.TaskFault(0, task, 0, 3)
		if fa != fb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault sets")
	}
}

func TestEmptyAndString(t *testing.T) {
	var p *Plan
	if !p.Empty() || p.String() != "quiet" {
		t.Fatal("nil plan should be quiet/empty")
	}
	if !Quiet().Empty() {
		t.Fatal("Quiet() not empty")
	}
	if CrashAt(1, time.Minute).Empty() {
		t.Fatal("crash plan reported empty")
	}
	if got := CrashRestart(2, time.Minute, 10*time.Second).String(); got != "crash2@1m0s+10s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSortedCrashes(t *testing.T) {
	p := &Plan{Crashes: []Crash{
		{Exec: 2, At: 30 * time.Second},
		{Exec: 1, At: 10 * time.Second},
		{Exec: 0, At: 30 * time.Second},
	}}
	got := p.SortedCrashes()
	if got[0].Exec != 1 || got[1].Exec != 0 || got[2].Exec != 2 {
		t.Fatalf("sorted = %+v", got)
	}
}

func TestParseGrayClauses(t *testing.T) {
	p, err := Parse("slow:1@60sx4,partition:2@90s+45s,corrupt:0.02")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Slows) != 1 || p.Slows[0] != (Slow{Exec: 1, At: time.Minute, Factor: 4}) {
		t.Fatalf("slows = %+v", p.Slows)
	}
	if len(p.Partitions) != 1 ||
		p.Partitions[0] != (Partition{Exec: 2, At: 90 * time.Second, Duration: 45 * time.Second}) {
		t.Fatalf("partitions = %+v", p.Partitions)
	}
	if p.CorruptRate != 0.02 {
		t.Fatalf("corrupt rate = %g", p.CorruptRate)
	}

	// Defaults: executor 1, factor 2, corrupt rate 0.01.
	p, err = Parse("slow@10s,corrupt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Slows[0] != (Slow{Exec: 1, At: 10 * time.Second, Factor: 2}) {
		t.Fatalf("default slow = %+v", p.Slows[0])
	}
	if p.CorruptRate != 0.01 {
		t.Fatalf("default corrupt rate = %g", p.CorruptRate)
	}

	for _, bad := range []string{
		"slow", "slow@", "slow:x@10s", "slow@10sx0", "slow@10sx-1",
		"partition@10s", "partition:1@10s", "partition@10s+0s", "partition@10s+x",
		"corrupt:2", "corrupt:x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestPartitionedWindows(t *testing.T) {
	p := &Plan{Partitions: []Partition{{Exec: 1, At: 10 * time.Second, Duration: 5 * time.Second}}}
	cases := []struct {
		exec int
		at   time.Duration
		want bool
	}{
		{1, 9 * time.Second, false},
		{1, 10 * time.Second, true}, // window start inclusive
		{1, 14 * time.Second, true},
		{1, 15 * time.Second, false}, // window end exclusive
		{2, 12 * time.Second, false}, // other executor
	}
	for _, c := range cases {
		if got := p.Partitioned(c.exec, c.at); got != c.want {
			t.Errorf("Partitioned(%d, %v) = %v, want %v", c.exec, c.at, got, c.want)
		}
	}
	var nilPlan *Plan
	if nilPlan.Partitioned(1, time.Second) {
		t.Error("nil plan reported a partition")
	}
}

// FuzzParsePlan fuzzes the chaos spec parser: Parse must never panic, and
// accepted specs must describe internally consistent plans that re-parse
// identically (the spec string is the plan's name).
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"", "quiet", "none",
		"crash@90s", "crash2@2m+30s", "mayhem@100s",
		"flaky", "flaky:0.02", "fetch:0.04", "seed:7",
		"slow:1@60sx4", "slow@10s", "partition:2@90s+45s", "corrupt:0.02", "corrupt",
		"crash@1m+10s,flaky:0.02,fetch:0.04,seed:7",
		"slow:1@60sx4,partition:2@90s+45s,corrupt:0.02",
		"crash", "slow@10sx0", "partition@10s", "corrupt:2", "bogus", "seed:x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		if p == nil {
			return // quiet
		}
		for _, s := range p.Slows {
			if s.Factor <= 0 {
				t.Fatalf("Parse(%q) accepted non-positive slow factor %g", spec, s.Factor)
			}
		}
		for _, w := range p.Partitions {
			if w.Duration <= 0 {
				t.Fatalf("Parse(%q) accepted non-positive partition duration %v", spec, w.Duration)
			}
		}
		for _, rate := range []float64{p.TaskFaultRate, p.FetchFaultRate, p.CorruptRate} {
			if rate < 0 || rate > 1 {
				t.Fatalf("Parse(%q) accepted rate %g outside [0,1]", spec, rate)
			}
		}
		q, err := Parse(p.Name)
		if err != nil {
			t.Fatalf("accepted spec %q does not re-parse: %v", spec, err)
		}
		if q.String() != p.String() {
			t.Fatalf("re-parse of %q changed the plan: %q vs %q", spec, q, p)
		}
	})
}
