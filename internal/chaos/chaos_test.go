package chaos

import (
	"testing"
	"time"
)

func TestParseQuiet(t *testing.T) {
	for _, spec := range []string{"", "quiet", "none", "  quiet  "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p != nil {
			t.Fatalf("Parse(%q) = %+v, want nil", spec, p)
		}
	}
}

func TestParseCrash(t *testing.T) {
	p, err := Parse("crash@90s")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 {
		t.Fatalf("crashes = %d, want 1", len(p.Crashes))
	}
	c := p.Crashes[0]
	if c.Exec != 1 || c.At != 90*time.Second || c.RestartAfter != 0 {
		t.Fatalf("crash = %+v", c)
	}

	p, err = Parse("crash2@2m+30s")
	if err != nil {
		t.Fatal(err)
	}
	c = p.Crashes[0]
	if c.Exec != 2 || c.At != 2*time.Minute || c.RestartAfter != 30*time.Second {
		t.Fatalf("crash = %+v", c)
	}
}

func TestParseCombined(t *testing.T) {
	p, err := Parse("crash@1m+10s,flaky:0.02,fetch:0.04,seed:7")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 || p.TaskFaultRate != 0.02 || p.FetchFaultRate != 0.04 || p.Seed != 7 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Name != "crash@1m+10s,flaky:0.02,fetch:0.04,seed:7" {
		t.Fatalf("name = %q", p.Name)
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("flaky,fetch")
	if err != nil {
		t.Fatal(err)
	}
	if p.TaskFaultRate != 0.05 || p.FetchFaultRate != 0.1 {
		t.Fatalf("default rates = %g/%g", p.TaskFaultRate, p.FetchFaultRate)
	}
}

func TestParseMayhem(t *testing.T) {
	p, err := Parse("mayhem@100s")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 1 || p.Crashes[0].At != 40*time.Second || p.Crashes[0].RestartAfter != 20*time.Second {
		t.Fatalf("mayhem crashes = %+v", p.Crashes)
	}
	if p.TaskFaultRate <= 0 || p.FetchFaultRate <= 0 {
		t.Fatalf("mayhem rates = %g/%g", p.TaskFaultRate, p.FetchFaultRate)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"crash", "crash@", "crashx@1m", "flaky:2", "bogus", "seed:x", "crash@1m+x"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestTaskFaultDeterministic(t *testing.T) {
	a := &Plan{Seed: 3, TaskFaultRate: 0.3}
	b := &Plan{Seed: 3, TaskFaultRate: 0.3}
	for stage := 0; stage < 3; stage++ {
		for task := 0; task < 50; task++ {
			f1, at1 := a.TaskFault(stage, task, 0, 3)
			f2, at2 := b.TaskFault(stage, task, 0, 3)
			if f1 != f2 || at1 != at2 {
				t.Fatalf("stage %d task %d: (%v,%g) vs (%v,%g)", stage, task, f1, at1, f2, at2)
			}
		}
	}
}

func TestTaskFaultRate(t *testing.T) {
	p := &Plan{Seed: 1, TaskFaultRate: 0.2}
	hits := 0
	const n = 5000
	for task := 0; task < n; task++ {
		if ok, frac := p.TaskFault(0, task, 0, 3); ok {
			hits++
			if frac < 0.1 || frac >= 0.9 {
				t.Fatalf("fault fraction %g out of [0.1, 0.9)", frac)
			}
		}
	}
	got := float64(hits) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("fault rate = %.3f, want ≈0.2", got)
	}
}

func TestInjectionRespectsAttemptBudget(t *testing.T) {
	p := &Plan{Seed: 1, TaskFaultRate: 1, FetchFaultRate: 1}
	// Default MaxInjected is 2: attempts 0 and 1 fault, attempt 2 does not.
	for attempt := 0; attempt < 5; attempt++ {
		want := attempt < 2
		if ok, _ := p.TaskFault(0, 0, attempt, 3); ok != want {
			t.Fatalf("TaskFault attempt %d = %v, want %v", attempt, ok, want)
		}
		if ok := p.FetchFault(0, 0, attempt, 3); ok != want {
			t.Fatalf("FetchFault attempt %d = %v, want %v", attempt, ok, want)
		}
	}
	// A tighter engine budget (task.maxFailures = 2 ⇒ budget 1) wins.
	if ok, _ := p.TaskFault(0, 0, 1, 1); ok {
		t.Fatal("TaskFault ignored the engine attempt budget")
	}
}

func TestSeedChangesFaults(t *testing.T) {
	a := &Plan{Seed: 1, TaskFaultRate: 0.2}
	b := &Plan{Seed: 2, TaskFaultRate: 0.2}
	same := true
	for task := 0; task < 200; task++ {
		fa, _ := a.TaskFault(0, task, 0, 3)
		fb, _ := b.TaskFault(0, task, 0, 3)
		if fa != fb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault sets")
	}
}

func TestEmptyAndString(t *testing.T) {
	var p *Plan
	if !p.Empty() || p.String() != "quiet" {
		t.Fatal("nil plan should be quiet/empty")
	}
	if !Quiet().Empty() {
		t.Fatal("Quiet() not empty")
	}
	if CrashAt(1, time.Minute).Empty() {
		t.Fatal("crash plan reported empty")
	}
	if got := CrashRestart(2, time.Minute, 10*time.Second).String(); got != "crash2@1m0s+10s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSortedCrashes(t *testing.T) {
	p := &Plan{Crashes: []Crash{
		{Exec: 2, At: 30 * time.Second},
		{Exec: 1, At: 10 * time.Second},
		{Exec: 0, At: 30 * time.Second},
	}}
	got := p.SortedCrashes()
	if got[0].Exec != 1 || got[1].Exec != 0 || got[2].Exec != 2 {
		t.Fatalf("sorted = %+v", got)
	}
}
