package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// formatValue renders a float in its shortest round-trip form — the one
// formatting every exporter shares, so dumps are byte-stable across runs
// and platforms.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry's current values in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, series
// sorted by label set, histograms expanded into cumulative _bucket/_sum/
// _count lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range r.sortedNames() {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.typ)
		for _, ls := range f.sortedKeys() {
			in := f.insts[ls]
			if f.typ == TypeHistogram {
				writePromHistogram(bw, name, in)
				continue
			}
			writePromLine(bw, name, ls, in.scalar())
		}
	}
	return bw.Flush()
}

func writePromLine(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

func writePromHistogram(w io.Writer, name string, in *instrument) {
	bucketLabels := func(le string) string {
		if in.labels == "" {
			return fmt.Sprintf("le=%q", le)
		}
		return fmt.Sprintf("%s,le=%q", in.labels, le)
	}
	var cum uint64
	for i, ub := range in.buckets {
		cum += in.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, bucketLabels(formatValue(ub)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, bucketLabels("+Inf"), in.count)
	writePromLine(w, name+"_sum", in.labels, in.sum)
	if in.labels == "" {
		fmt.Fprintf(w, "%s_count %d\n", name, in.count)
	} else {
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, in.labels, in.count)
	}
}

// jsonSample fixes the JSONL field order; struct-driven marshalling keeps
// the encoding deterministic.
type jsonSample struct {
	T      float64 `json:"t"`
	Metric string  `json:"metric"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// WriteJSONL writes every collected sample as one JSON object per line, in
// recording order (time-major, then sorted metric/label order within each
// tick).
func (r *Registry) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range r.samples {
		if err := enc.Encode(jsonSample{
			T:      sp.At.Seconds(),
			Metric: sp.Metric,
			Labels: sp.Labels,
			Value:  sp.Value,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV writes the collected samples as a four-column CSV
// (t_seconds, metric, labels, value) in recording order.
func (r *Registry) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds", "metric", "labels", "value"}); err != nil {
		return err
	}
	for _, sp := range r.samples {
		rec := []string{
			formatValue(sp.At.Seconds()),
			sp.Metric,
			sp.Labels,
			formatValue(sp.Value),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJSONL decodes a dump produced by WriteJSONL back into sample points
// (times are rounded to the nanosecond the Duration held).
func ReadJSONL(rd io.Reader) ([]SamplePoint, error) {
	dec := json.NewDecoder(rd)
	var out []SamplePoint
	for dec.More() {
		var js jsonSample
		if err := dec.Decode(&js); err != nil {
			return out, fmt.Errorf("telemetry: decode metrics dump: %w", err)
		}
		out = append(out, SamplePoint{
			At:     secondsToDuration(js.T),
			Metric: js.Metric,
			Labels: js.Labels,
			Value:  js.Value,
		})
	}
	return out, nil
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(math.Round(s * 1e9))
}
