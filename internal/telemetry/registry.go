// Package telemetry is the simulator's deterministic metrics plane: a
// registry of counters, gauges and histograms sampled on the virtual clock
// and exported as Prometheus text exposition or JSONL/CSV time series.
//
// Determinism is the design constraint everything else follows from. The
// sampler runs on the sim clock (the engine drives Registry.Sample from a
// kernel timer), instruments are iterated in sorted (name, labels) order,
// and floats are formatted with strconv's shortest round-trip form — so two
// same-seed runs export byte-identical dumps, and a parallel sweep exports
// the same bytes as a sequential one. The registry is not safe for
// concurrent use; one engine owns one registry, exactly like its kernel.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sae/internal/metrics"
)

// MetricType distinguishes the exposition families.
type MetricType int

// Metric families, matching the Prometheus exposition TYPE names.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// SamplePoint is one exported time-series sample: the value of one
// instrument at one sampler tick.
type SamplePoint struct {
	At     time.Duration
	Metric string
	// Labels is the instrument's rendered label set (`exec="0"`), empty
	// for unlabelled instruments.
	Labels string
	Value  float64
}

// family is one metric name: its metadata plus one instrument per label set.
type family struct {
	name, help string
	typ        MetricType
	insts      map[string]*instrument
}

func (f *family) sortedKeys() []string {
	keys := make([]string, 0, len(f.insts))
	for k := range f.insts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// instrument is the shared state behind Counter/Gauge/Histogram handles.
type instrument struct {
	labels string
	val    float64
	fn     func() float64
	// histogram state: counts[i] observes bucket (buckets[i-1], buckets[i]];
	// the last slot is the +Inf overflow bucket.
	buckets []float64
	counts  []uint64
	sum     float64
	count   uint64
}

// scalar returns the instrument's current value (function-backed
// instruments are evaluated on each call).
func (in *instrument) scalar() float64 {
	if in.fn != nil {
		return in.fn()
	}
	return in.val
}

// Counter is a monotonically increasing value.
type Counter struct{ in *instrument }

// Inc adds one.
func (c *Counter) Inc() { c.in.val++ }

// Add adds v (callers keep counters monotone; Add does not check).
func (c *Counter) Add(v float64) { c.in.val += v }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.in.scalar() }

// Gauge is a value that can go up and down.
type Gauge struct{ in *instrument }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.in.val = v }

// Add shifts the gauge value by v.
func (g *Gauge) Add(v float64) { g.in.val += v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.in.scalar() }

// Histogram accumulates observations into fixed buckets.
type Histogram struct{ in *instrument }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	in := h.in
	idx := sort.SearchFloat64s(in.buckets, v)
	in.counts[idx]++
	in.sum += v
	in.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.in.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.in.sum }

// Registry holds every instrument of one run plus the samples the periodic
// sampler collected. Instruments register lazily and idempotently:
// re-registering the same (name, labels) returns the existing instrument,
// so call sites do not need to coordinate.
type Registry struct {
	families map[string]*family
	hooks    []func(at time.Duration)
	samples  []SamplePoint
	// lastAt/lastStart implement merge-last-wins for duplicate sampler
	// ticks (matching metrics.Rate): re-sampling the same instant
	// replaces that tick's rows instead of duplicating them.
	lastAt    time.Duration
	lastStart int
	sampled   bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelString renders key-value pairs as a canonical `k1="v1",k2="v2"`
// string with keys sorted, so the same label set always maps to the same
// instrument and export position.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

func (r *Registry) instrument(name, help string, typ MetricType, labels []string) *instrument {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, insts: map[string]*instrument{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.typ, typ))
	}
	ls := labelString(labels)
	in, ok := f.insts[ls]
	if !ok {
		in = &instrument{labels: ls}
		f.insts[ls] = in
	}
	return in
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{r.instrument(name, help, TypeCounter, labels)}
}

// CounterFunc registers a counter whose value is read from fn at sample and
// export time — for cumulative totals the engine already tracks.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.instrument(name, help, TypeCounter, labels).fn = fn
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{r.instrument(name, help, TypeGauge, labels)}
}

// GaugeFunc registers a gauge whose value is read from fn at sample and
// export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.instrument(name, help, TypeGauge, labels).fn = fn
}

// Histogram registers (or returns the existing) histogram with the given
// upper bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	in := r.instrument(name, help, TypeHistogram, labels)
	if in.counts == nil {
		in.buckets = append([]float64(nil), buckets...)
		in.counts = make([]uint64, len(buckets)+1)
	}
	return &Histogram{in}
}

// OnSample registers a hook invoked at the start of every Sample tick —
// used for derived gauges that need windowed deltas (e.g. ζ over the last
// sampling interval). Hooks run in registration order.
func (r *Registry) OnSample(fn func(at time.Duration)) {
	r.hooks = append(r.hooks, fn)
}

func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sample records one SamplePoint per scalar series (histograms contribute
// their _count and _sum) at the given virtual time. Sampling the same
// instant twice merges last-wins: the second tick replaces the first's
// rows, mirroring metrics.Rate's duplicate-timestamp rule.
func (r *Registry) Sample(at time.Duration) {
	for _, h := range r.hooks {
		h(at)
	}
	if r.sampled && at == r.lastAt {
		r.samples = r.samples[:r.lastStart]
	}
	r.lastAt = at
	r.lastStart = len(r.samples)
	r.sampled = true
	for _, name := range r.sortedNames() {
		f := r.families[name]
		for _, ls := range f.sortedKeys() {
			in := f.insts[ls]
			if f.typ == TypeHistogram {
				r.samples = append(r.samples,
					SamplePoint{At: at, Metric: name + "_count", Labels: ls, Value: float64(in.count)},
					SamplePoint{At: at, Metric: name + "_sum", Labels: ls, Value: in.sum})
				continue
			}
			r.samples = append(r.samples, SamplePoint{At: at, Metric: name, Labels: ls, Value: in.scalar()})
		}
	}
}

// Samples returns every collected sample in recording order.
func (r *Registry) Samples() []SamplePoint { return r.samples }

// Series extracts one instrument's sampled values as a metrics.Series
// (named after the metric), reporting whether any samples exist.
func (r *Registry) Series(name string, labels ...string) (metrics.Series, bool) {
	ls := labelString(labels)
	out := metrics.Series{Name: name}
	for _, sp := range r.samples {
		if sp.Metric == name && sp.Labels == ls {
			out.Add(sp.At, sp.Value)
		}
	}
	return out, len(out.Points) > 0
}

// Value returns an instrument's current scalar value, reporting whether
// the (name, labels) pair is registered. Histograms report their count.
func (r *Registry) Value(name string, labels ...string) (float64, bool) {
	f, ok := r.families[name]
	if !ok {
		return 0, false
	}
	in, ok := f.insts[labelString(labels)]
	if !ok {
		return 0, false
	}
	if f.typ == TypeHistogram {
		return float64(in.count), true
	}
	return in.scalar(), true
}
