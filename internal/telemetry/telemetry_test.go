package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sae_tasks_total", "tasks")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %v, want 3", c.Value())
	}
	g := r.Gauge("sae_pool_size", "pool", "exec", "0")
	g.Set(8)
	g.Add(-2)
	if g.Value() != 6 {
		t.Fatalf("gauge = %v, want 6", g.Value())
	}
	h := r.Histogram("sae_delay_seconds", "delay", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	if h.Count() != 3 || h.Sum() != 105.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("sae_x", "x").Inc()
	r.Counter("sae_x", "x").Inc()
	if v, ok := r.Value("sae_x"); !ok || v != 2 {
		t.Fatalf("value = %v,%v, want 2,true", v, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type should panic")
		}
	}()
	r.Gauge("sae_x", "x")
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	r.Counter("sae_y", "y", "b", "2", "a", "1").Inc()
	r.Counter("sae_y", "y", "a", "1", "b", "2").Inc()
	if v, _ := r.Value("sae_y", "b", "2", "a", "1"); v != 2 {
		t.Fatalf("label order should not split instruments: got %v", v)
	}
}

func TestSampleMergeLastWins(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sae_n", "n")
	c.Inc()
	r.Sample(time.Second)
	c.Inc()
	r.Sample(2 * time.Second)
	c.Inc()
	r.Sample(2 * time.Second) // duplicate tick replaces the previous one
	s, ok := r.Series("sae_n")
	if !ok || len(s.Points) != 2 {
		t.Fatalf("series = %+v, want 2 points", s.Points)
	}
	if s.Points[1].At != 2*time.Second || s.Points[1].Value != 3 {
		t.Fatalf("last point = %+v, want (2s, 3)", s.Points[1])
	}
}

func TestOnSampleHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sae_window", "w")
	var ticks []time.Duration
	r.OnSample(func(at time.Duration) {
		ticks = append(ticks, at)
		g.Set(at.Seconds())
	})
	r.Sample(time.Second)
	r.Sample(3 * time.Second)
	if len(ticks) != 2 || ticks[1] != 3*time.Second {
		t.Fatalf("hook ticks = %v", ticks)
	}
	if v, _ := r.Value("sae_window"); v != 3 {
		t.Fatalf("hook should run before sampling: got %v", v)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sae_b_total", "b help", "exec", "1").Add(4)
	r.Gauge("sae_a", "a help").Set(1.5)
	h := r.Histogram("sae_h_seconds", "h help", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sae_a a help
# TYPE sae_a gauge
sae_a 1.5
# HELP sae_b_total b help
# TYPE sae_b_total counter
sae_b_total{exec="1"} 4
# HELP sae_h_seconds h help
# TYPE sae_h_seconds histogram
sae_h_seconds_bucket{le="1"} 1
sae_h_seconds_bucket{le="10"} 2
sae_h_seconds_bucket{le="+Inf"} 3
sae_h_seconds_sum 105.5
sae_h_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Fatalf("prometheus dump:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sae_n", "n", "exec", "0")
	c.Inc()
	r.Sample(1500 * time.Millisecond)
	c.Add(2)
	r.Sample(3 * time.Second)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":1.5,"metric":"sae_n","labels":"exec=\"0\"","value":1}
{"t":3,"metric":"sae_n","labels":"exec=\"0\"","value":3}
`
	if buf.String() != want {
		t.Fatalf("jsonl dump:\n%s\nwant:\n%s", buf.String(), want)
	}
	pts, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0] != r.Samples()[0] || pts[1] != r.Samples()[1] {
		t.Fatalf("round trip = %+v, want %+v", pts, r.Samples())
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Gauge("sae_g", "g", "state", "active").Set(2)
	r.Sample(time.Second)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t_seconds,metric,labels,value\n" +
		"1,sae_g,\"state=\"\"active\"\"\",2\n"
	if buf.String() != want {
		t.Fatalf("csv dump:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestSeriesMissing(t *testing.T) {
	r := NewRegistry()
	r.Counter("sae_n", "n").Inc()
	if _, ok := r.Series("sae_n"); ok {
		t.Fatal("unsampled instrument should have no series")
	}
	if _, ok := r.Value("sae_missing"); ok {
		t.Fatal("unknown metric should not resolve")
	}
}

func TestHistogramSampling(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sae_h", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	r.Sample(time.Second)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"metric":"sae_h_count","value":2`) &&
		!strings.Contains(out, `{"t":1,"metric":"sae_h_count","value":2}`) {
		t.Fatalf("histogram count sample missing:\n%s", out)
	}
	if !strings.Contains(out, `"metric":"sae_h_sum"`) {
		t.Fatalf("histogram sum sample missing:\n%s", out)
	}
}
