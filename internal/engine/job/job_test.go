package job

import (
	"testing"
	"testing/quick"
)

// fakeContext records the calls AnalyticWork makes.
type fakeContext struct {
	stage       *StageSpec
	index       int
	input       int64
	consumed    int64
	cpu         float64
	shuffle     int64
	output      int64
	spilled     int64
	concurrency int
	vcores      int
}

var _ TaskContext = (*fakeContext)(nil)

func (f *fakeContext) Node() int            { return 0 }
func (f *fakeContext) Executor() int        { return 0 }
func (f *fakeContext) Stage() *StageSpec    { return f.stage }
func (f *fakeContext) Index() int           { return f.index }
func (f *fakeContext) InputBytes() int64    { return f.input }
func (f *fakeContext) Compute(sec float64)  { f.cpu += sec }
func (f *fakeContext) WriteShuffle(b int64) { f.shuffle += b }
func (f *fakeContext) WriteOutput(b int64)  { f.output += b }
func (f *fakeContext) Spill(b int64)        { f.spilled += b }
func (f *fakeContext) Concurrency() int     { return f.concurrency }
func (f *fakeContext) VirtualCores() int    { return f.vcores }
func (f *fakeContext) ReadInput(m int64) int64 {
	n := f.input - f.consumed
	if n > m {
		n = m
	}
	f.consumed += n
	return n
}

func runAnalytic(t *testing.T, s *StageSpec, idx int, input int64, conc, vcores int) *fakeContext {
	t.Helper()
	fc := &fakeContext{stage: s, index: idx, input: input, concurrency: conc, vcores: vcores}
	if err := (AnalyticWork{}).Execute(fc); err != nil {
		t.Fatal(err)
	}
	return fc
}

func TestAnalyticWorkConservation(t *testing.T) {
	s := &StageSpec{
		ID: 0, Name: "x", NumTasks: 4,
		CPUSecondsPerTask: 2.5,
		ShuffleWriteBytes: 100 << 20,
		OutputFile:        "out",
		OutputBytes:       64 << 20,
	}
	fc := runAnalytic(t, s, 0, 200<<20, 1, 32)
	if fc.consumed != 200<<20 {
		t.Fatalf("consumed %d, want full input", fc.consumed)
	}
	if fc.cpu < 2.49 || fc.cpu > 2.51 {
		t.Fatalf("cpu = %v, want 2.5", fc.cpu)
	}
	// Task 0 of 4 gets exactly total/4 (remainders go to low indices).
	if fc.shuffle != 25<<20 {
		t.Fatalf("shuffle = %d, want %d", fc.shuffle, 25<<20)
	}
	if fc.output != 16<<20 {
		t.Fatalf("output = %d, want %d", fc.output, 16<<20)
	}
	if fc.spilled != 0 {
		t.Fatalf("spilled %d without pressure", fc.spilled)
	}
}

func TestAnalyticSpillScalesWithConcurrency(t *testing.T) {
	s := &StageSpec{ID: 0, NumTasks: 1, SpillPressure: 2, ShuffleWriteBytes: 0}
	lo := runAnalytic(t, s, 0, 128<<20, 2, 32)
	hi := runAnalytic(t, s, 0, 128<<20, 32, 32)
	if lo.spilled >= hi.spilled {
		t.Fatalf("spill should grow with concurrency: %d vs %d", lo.spilled, hi.spilled)
	}
	// Quadratic: at full width the spill equals pressure × volume.
	want := int64(2 * 128 << 20)
	if diff := hi.spilled - want; diff > 1<<20 || diff < -1<<20 {
		t.Fatalf("full-width spill = %d, want ≈%d", hi.spilled, want)
	}
	if solo := runAnalytic(t, s, 0, 128<<20, 1, 32); solo.spilled != 0 {
		t.Fatalf("solo task spilled %d", solo.spilled)
	}
}

// Property: per-task shares sum exactly to the stage total for any split.
func TestPerTaskExactPartition(t *testing.T) {
	f := func(total uint32, tasks uint8) bool {
		n := int(tasks%64) + 1
		var sum int64
		for i := 0; i < n; i++ {
			sum += perTask(int64(total), n, i)
		}
		return sum == int64(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: chunk shares also partition exactly and are near-even.
func TestChunkShareExactPartition(t *testing.T) {
	f := func(total uint32, chunks uint8) bool {
		n := int(chunks%32) + 1
		var sum int64
		var lo, hi int64 = int64(total), 0
		for i := 0; i < n; i++ {
			c := chunkShare(int64(total), n, i)
			sum += c
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return sum == int64(total) && hi-lo <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesShapeErrors(t *testing.T) {
	good := &JobSpec{Name: "ok", Stages: []*StageSpec{
		{ID: 0, Name: "a", NumTasks: 2, ShuffleWriteBytes: 10},
		{ID: 1, Name: "b", NumTasks: 2, ShuffleFrom: []int{0}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []*JobSpec{
		{Name: "neg-cpu", Stages: []*StageSpec{{ID: 0, NumTasks: 1, CPUSecondsPerTask: -1}}},
		{Name: "neg-tasks", Stages: []*StageSpec{{ID: 0, NumTasks: -2, InputFile: "x"}}},
		{Name: "self-shuffle", Stages: []*StageSpec{{ID: 0, NumTasks: 1, ShuffleFrom: []int{0}}}},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s accepted", spec.Name)
		}
	}
}

func TestIOMarkedSemantics(t *testing.T) {
	cases := []struct {
		s    StageSpec
		want bool
	}{
		{StageSpec{InputFile: "f"}, true},
		{StageSpec{OutputFile: "o"}, true},
		{StageSpec{OutputFile: "o", SQLSink: true}, false},
		{StageSpec{ShuffleFrom: []int{0}}, false},
		{StageSpec{}, false},
	}
	for i, c := range cases {
		if got := c.s.IOMarked(); got != c.want {
			t.Errorf("case %d: IOMarked = %v, want %v", i, got, c.want)
		}
	}
}

func TestTaskMetricsDuration(t *testing.T) {
	tm := TaskMetrics{Start: 5e9, End: 7e9}
	if tm.Duration() != 2e9 {
		t.Fatalf("duration = %v", tm.Duration())
	}
}

func TestWorkFuncAdapter(t *testing.T) {
	called := false
	w := WorkFunc(func(TaskContext) error { called = true; return nil })
	if err := w.Execute(nil); err != nil || !called {
		t.Fatal("WorkFunc did not delegate")
	}
}
