// Package job defines the engine's logical job model — stages, task work and
// the sizing-policy contract between executors and the adaptive core. A job
// is a linear-or-DAG sequence of stages; each stage fans out into tasks that
// read input (DFS splits or upstream shuffle output), compute, and write
// (shuffle or DFS output). Task work is either *analytic* (cost-bearing byte
// and CPU budgets, used for paper-scale experiments) or a real closure
// supplied by the RDD layer.
package job

import (
	"errors"
	"fmt"
	"time"

	"sae/internal/metrics"
)

// StageSpec describes one stage of a job.
type StageSpec struct {
	// ID is the stage's index within the job. Edges (ShuffleFrom and
	// DependsOn) may only point backwards; stages whose dependencies are
	// all satisfied become runnable, and independent stages run
	// concurrently.
	ID int
	// Name labels the stage in reports (e.g. "ingest", "shuffle-1").
	Name string
	// NumTasks is the stage's task count. If zero and InputFile is set,
	// the engine uses one task per DFS block.
	NumTasks int

	// InputFile names a DFS file the stage reads, split across tasks.
	InputFile string
	// ShuffleFrom lists earlier stage IDs whose shuffle output this
	// stage fetches (all partitions destined for each reduce task).
	ShuffleFrom []int
	// DependsOn lists earlier stage IDs this stage must wait for even
	// though it fetches no shuffle data from them — a control dependency,
	// like Terasort's map stage needing the sample stage's partitioner
	// boundaries. Together with ShuffleFrom it defines the stage DAG:
	// stages with no path between them may run concurrently.
	DependsOn []int

	// CPUSecondsPerTask is the single-core compute demand of each task,
	// interleaved with its I/O.
	CPUSecondsPerTask float64
	// MemPressure inflates per-task CPU demand with executor
	// concurrency: a task computing while n pool threads are running
	// costs ×(1 + MemPressure·(n−1)/(vcores−1)). It models the
	// super-linear JVM costs of wide executors — GC pressure, memory
	// bandwidth contention, cache thrash — that make memory-hungry
	// stages (e.g. PageRank iterations over a cached graph) genuinely
	// cheaper per task at smaller pool sizes.
	MemPressure float64
	// SpillPressure adds concurrency-dependent spill I/O: with n pool
	// threads running, each processed chunk spills an extra
	// SpillPressure·((n−1)/(vcores−1))² of its volume to local disk and
	// merges it back. It models Spark's buffer spilling when per-task
	// memory shrinks with pool width — §3's observation that
	// transformations spill "to reduce memory pressure" is a large part
	// of Table 2's I/O amplification. The quadratic shape reflects
	// multi-pass spilling: half the buffer budget doubles the number of
	// spill files AND the merge fan-in.
	SpillPressure float64

	// ShuffleWriteBytes is the stage's total map-output volume, spilled
	// to local disk and registered for downstream fetch.
	ShuffleWriteBytes int64
	// OutputFile, if set, receives OutputBytes of DFS output.
	OutputFile  string
	OutputBytes int64
	// SQLSink marks output written through a SQL-style sink (e.g. an
	// INSERT) rather than an explicit save action; such stages write to
	// the DFS but carry no structural I/O marker the static solution
	// could see (limitation L2, observed on the paper's SQL workloads).
	SQLSink bool

	// Work, if non-nil, supplies real task work (RDD layer); otherwise
	// the executor runs the analytic cost model above.
	Work func(task int) Work
}

// IOMarked reports whether the static solution considers this stage
// I/O-intensive: it explicitly reads from or writes to the DFS (the paper's
// textFile/saveAsTextFile marking). Shuffle-only stages are NOT marked —
// that is exactly limitation L2 of the static approach.
func (s *StageSpec) IOMarked() bool {
	return s.InputFile != "" || (s.OutputFile != "" && !s.SQLSink)
}

// Meta returns the stage's policy-visible metadata.
func (s *StageSpec) Meta() StageMeta {
	return StageMeta{ID: s.ID, Name: s.Name, NumTasks: s.NumTasks, IOMarked: s.IOMarked()}
}

// JobSpec is an ordered set of stages.
type JobSpec struct {
	Name   string
	Stages []*StageSpec
	// Tenant labels the submitting tenant class for per-class SLO
	// reporting ("" for single-tenant runs).
	Tenant string
	// Priority orders the job under priority-aware inter-job policies
	// (higher is more urgent; ignored by FIFO/FAIR).
	Priority int
}

// Validate checks structural invariants: contiguous IDs, positive task
// counts (or DFS-derived), and shuffle edges that point backwards only.
func (j *JobSpec) Validate() error {
	if len(j.Stages) == 0 {
		return errors.New("job: no stages")
	}
	for i, s := range j.Stages {
		if s.ID != i {
			return fmt.Errorf("job %s: stage %d has ID %d, want contiguous IDs", j.Name, i, s.ID)
		}
		if s.NumTasks <= 0 && s.InputFile == "" {
			return fmt.Errorf("job %s: stage %d has no tasks and no input file", j.Name, i)
		}
		if s.NumTasks < 0 {
			return fmt.Errorf("job %s: stage %d has negative task count", j.Name, i)
		}
		for _, from := range s.ShuffleFrom {
			if from < 0 || from >= i {
				return fmt.Errorf("job %s: stage %d shuffles from invalid stage %d", j.Name, i, from)
			}
			if j.Stages[from].ShuffleWriteBytes <= 0 && j.Stages[from].Work == nil {
				return fmt.Errorf("job %s: stage %d shuffles from stage %d which writes no shuffle data", j.Name, i, from)
			}
		}
		for _, dep := range s.DependsOn {
			if dep < 0 || dep >= i {
				return fmt.Errorf("job %s: stage %d depends on invalid stage %d", j.Name, i, dep)
			}
		}
		if s.CPUSecondsPerTask < 0 || s.ShuffleWriteBytes < 0 || s.OutputBytes < 0 {
			return fmt.Errorf("job %s: stage %d has negative demands", j.Name, i)
		}
		if s.OutputBytes > 0 && s.OutputFile == "" {
			return fmt.Errorf("job %s: stage %d writes output bytes without an output file", j.Name, i)
		}
	}
	return nil
}

// TaskContext is the executor-provided environment a task's Work runs in.
// All methods charge the owning node's simulated devices and account ε/µ.
type TaskContext interface {
	// Node returns the ID of the node the task runs on.
	Node() int
	// Executor returns the ID of the owning executor.
	Executor() int
	// Stage returns the stage being executed.
	Stage() *StageSpec
	// Index returns the task index within the stage.
	Index() int
	// InputBytes returns the total input volume assigned to this task
	// (DFS split size plus pending shuffle fetch).
	InputBytes() int64
	// ReadInput consumes up to max bytes of the task's remaining input,
	// blocking for disk/network time. It returns the bytes actually
	// read; 0 means the input is exhausted.
	ReadInput(max int64) int64
	// Compute burns seconds of single-core CPU time.
	Compute(seconds float64)
	// WriteShuffle spills bytes of map output to the local disk.
	WriteShuffle(bytes int64)
	// WriteOutput writes bytes to the stage's DFS output file.
	WriteOutput(bytes int64)
	// Spill writes bytes of temporary data to the local disk and merges
	// them back (write + read), modelling buffer spills.
	Spill(bytes int64)
	// Concurrency returns the number of tasks currently running on the
	// owning executor (including this one).
	Concurrency() int
	// VirtualCores returns the node's virtual core count (cmax).
	VirtualCores() int
}

// Work is a unit of task execution.
type Work interface {
	Execute(tc TaskContext) error
}

// WorkFunc adapts a function to Work.
type WorkFunc func(tc TaskContext) error

// Execute implements Work.
func (f WorkFunc) Execute(tc TaskContext) error { return f(tc) }

// ChunkBytes is the granularity at which the analytic cost model interleaves
// I/O and compute — roughly a Spark task's buffer/spill unit.
const ChunkBytes = 32 << 20

// AnalyticWork runs a task from its stage's cost parameters: input is read
// in chunks with compute interleaved proportionally, and shuffle/DFS output
// written likewise. This reproduces the alternating CPU↔I/O pattern that
// makes thread-count tuning matter: too few threads leave the disk idle
// during compute phases, too many thrash it.
type AnalyticWork struct{}

// Execute implements Work.
func (AnalyticWork) Execute(tc TaskContext) error {
	s := tc.Stage()
	in := tc.InputBytes()
	shuffleOut := perTask(s.ShuffleWriteBytes, s.NumTasks, tc.Index())
	fileOut := perTask(s.OutputBytes, s.NumTasks, tc.Index())
	total := in
	if shuffleOut+fileOut > total {
		total = shuffleOut + fileOut
	}
	chunks := int((total + ChunkBytes - 1) / ChunkBytes)
	if chunks < 1 {
		chunks = 1
	}
	cpuPer := s.CPUSecondsPerTask / float64(chunks)
	for i := 0; i < chunks; i++ {
		got := tc.ReadInput(chunkShare(in, chunks, i))
		tc.Compute(cpuPer)
		if s.SpillPressure > 0 && tc.VirtualCores() > 1 {
			x := float64(tc.Concurrency()-1) / float64(tc.VirtualCores()-1)
			tc.Spill(int64(float64(got+chunkShare(shuffleOut, chunks, i)) * s.SpillPressure * x * x))
		}
		tc.WriteShuffle(chunkShare(shuffleOut, chunks, i))
		tc.WriteOutput(chunkShare(fileOut, chunks, i))
	}
	return nil
}

// perTask divides a stage-total volume evenly across tasks, giving earlier
// tasks the remainder so totals are exact.
func perTask(total int64, numTasks, idx int) int64 {
	if numTasks <= 0 {
		return 0
	}
	base := total / int64(numTasks)
	if int64(idx) < total%int64(numTasks) {
		base++
	}
	return base
}

// chunkShare divides a task-total volume across chunks exactly.
func chunkShare(total int64, chunks, idx int) int64 {
	base := total / int64(chunks)
	if int64(idx) < total%int64(chunks) {
		base++
	}
	return base
}

// StageMeta is the policy-visible description of a stage.
type StageMeta struct {
	ID       int
	Name     string
	NumTasks int
	// IOMarked is the static solution's structural I/O signal.
	IOMarked bool
}

// TaskMetrics reports one completed task to the sizing policy and driver.
type TaskMetrics struct {
	Stage, Index int
	Start, End   time.Duration
	// BlockedIO is the task's ε contribution: virtual time spent waiting
	// on disk or network completions.
	BlockedIO time.Duration
	// BytesMoved is the task's µ contribution: all bytes it read or
	// wrote on any device.
	BytesMoved int64
	// DiskReadBytes/DiskWriteBytes/NetBytes break the task's device
	// traffic down per medium for per-job I/O attribution. Unlike
	// BytesMoved they include spill amplification (spills occupy the
	// disk even though they are not goodput), so per-job totals match
	// what the devices actually served.
	DiskReadBytes  int64
	DiskWriteBytes int64
	NetBytes       int64
	// DiskBusyFrac is the node disk's busy fraction over the task's
	// lifetime (the iostat %util analogue, used by the utilization-
	// driven ablation controller).
	DiskBusyFrac float64
	// Local reports whether all DFS reads were node-local.
	Local bool
	// FetchRetries counts shuffle-fetch attempts that backed off and
	// retried (transient fetch faults or network partitions).
	FetchRetries int
	// ChecksumFailovers counts DFS block reads that failed verification
	// on one replica and fell back to another.
	ChecksumFailovers int
}

// Duration returns the task's wall time.
func (tm TaskMetrics) Duration() time.Duration { return tm.End - tm.Start }

// ExecutorInfo describes an executor to a sizing policy.
type ExecutorInfo struct {
	ID int
	// Node is the node the executor runs on.
	Node int
	// MaxThreads is cmax: the number of virtual cores.
	MaxThreads int
}

// Decision records one thread-count choice for analysis and reporting.
type Decision struct {
	At       time.Duration
	Stage    int
	Threads  int
	Interval metrics.Interval
	Reason   string
}

// Controller sizes one executor's thread pool. Methods are invoked from
// simulation context in deterministic order.
type Controller interface {
	// StageStart resets per-stage state and returns the initial thread
	// count for the stage.
	StageStart(meta StageMeta) int
	// TaskDone feeds one completed task's measurements to the
	// controller; it returns the (possibly new) thread count and whether
	// it changed.
	TaskDone(tm TaskMetrics) (threads int, changed bool)
	// Decisions returns the decision log.
	Decisions() []Decision
}

// Policy creates per-executor controllers. Implementations live in
// internal/core (the paper's contribution).
type Policy interface {
	// Name identifies the policy in reports ("default", "static",
	// "static-bestfit", "dynamic").
	Name() string
	// NewController returns a controller for one executor.
	NewController(exec ExecutorInfo) Controller
	// InitialThreads mirrors the controller's StageStart value so the
	// driver can size its slot table before the executor reacts; it must
	// be consistent with the controller.
	InitialThreads(exec ExecutorInfo, meta StageMeta) int
}
