package engine

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"sae/internal/cluster"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine/job"
)

func testOptions(nodes int, policy job.Policy) Options {
	cfg := cluster.DAS5(nodes)
	cfg.Variability = device.Uniform()
	return Options{
		Cluster:   cfg,
		BlockSize: 64 * device.MiB,
		Policy:    policy,
	}
}

func readJob(name string, size int64) *job.JobSpec {
	return &job.JobSpec{
		Name: name,
		Stages: []*job.StageSpec{{
			ID:                0,
			Name:              "read",
			InputFile:         "in",
			CPUSecondsPerTask: 0.1,
		}},
	}
}

func TestRunSingleReadStage(t *testing.T) {
	opts := testOptions(4, core.Default{})
	size := int64(16 * 64 * device.MiB)
	opts.Inputs = []Input{{Name: "in", Size: size}}
	rep, err := Run(opts, readJob("read", size))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runtime <= 0 {
		t.Fatal("zero runtime")
	}
	if len(rep.Stages) != 1 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
	st := rep.Stages[0]
	if got := st.DiskReadBytes; got != size {
		t.Fatalf("disk read %d, want %d", got, size)
	}
	var tasks, local int
	for _, e := range st.Execs {
		tasks += e.Tasks
		local += e.LocalTasks
	}
	if tasks != 16 {
		t.Fatalf("tasks = %d, want 16 (one per block)", tasks)
	}
	if local != tasks {
		t.Fatalf("with full replication all tasks must be local: %d/%d", local, tasks)
	}
	if st.ThreadsTotal != 4*32 {
		t.Fatalf("default threads total = %d, want 128", st.ThreadsTotal)
	}
}

func TestRunShufflePipeline(t *testing.T) {
	opts := testOptions(4, core.Default{})
	in := int64(8 * 64 * device.MiB)
	shuffleBytes := int64(6 * 64 * device.MiB)
	out := int64(4 * 64 * device.MiB)
	opts.Inputs = []Input{{Name: "in", Size: in}}
	spec := &job.JobSpec{
		Name: "two-stage",
		Stages: []*job.StageSpec{
			{
				ID: 0, Name: "map", InputFile: "in",
				CPUSecondsPerTask: 0.1,
				ShuffleWriteBytes: shuffleBytes,
			},
			{
				ID: 1, Name: "reduce", NumTasks: 16,
				ShuffleFrom:       []int{0},
				CPUSecondsPerTask: 0.1,
				OutputFile:        "out", OutputBytes: out,
			},
		},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
	// Stage 1 reads exactly the shuffle bytes stage 0 wrote.
	if got := rep.Stages[1].DiskReadBytes; got != shuffleBytes {
		t.Fatalf("reduce disk read = %d, want %d", got, shuffleBytes)
	}
	// Totals: reads = input + shuffle, writes = shuffle + output.
	if got := rep.DiskReadBytes; got != in+shuffleBytes {
		t.Fatalf("total read = %d, want %d", got, in+shuffleBytes)
	}
	if got := rep.DiskWriteBytes; got != shuffleBytes+out {
		t.Fatalf("total write = %d, want %d", got, shuffleBytes+out)
	}
	// Output file materialized with the right size.
	k := rep.Stages[1]
	if !k.IOMarked {
		t.Fatal("output stage should be IO-marked")
	}
	if rep.Stages[1].End <= rep.Stages[0].End {
		t.Fatal("stage 1 must run after stage 0")
	}
}

func TestRunOutputFileCreated(t *testing.T) {
	opts := testOptions(2, core.Default{})
	opts.Inputs = []Input{{Name: "in", Size: 4 * 64 * device.MiB}}
	spec := &job.JobSpec{
		Name: "write",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "w", InputFile: "in",
			OutputFile: "out", OutputBytes: 100 * device.MiB,
		}},
	}
	var e2 *Engine
	opts.OnSetup = func(e *Engine) { e2 = e }
	if _, err := Run(opts, spec); err != nil {
		t.Fatal(err)
	}
	f, err := e2.FS().Open("out")
	if err != nil {
		t.Fatal(err)
	}
	gotSize := f.Size
	if gotSize != 100*device.MiB {
		t.Fatalf("output size = %d, want %d", gotSize, 100*device.MiB)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() time.Duration {
		opts := testOptions(4, core.DefaultDynamic())
		opts.Inputs = []Input{{Name: "in", Size: 32 * 64 * device.MiB}}
		spec := &job.JobSpec{
			Name: "det",
			Stages: []*job.StageSpec{
				{ID: 0, Name: "map", InputFile: "in", CPUSecondsPerTask: 0.2, ShuffleWriteBytes: device.GiB},
				{ID: 1, Name: "red", NumTasks: 32, ShuffleFrom: []int{0}, CPUSecondsPerTask: 0.2, OutputFile: "o", OutputBytes: device.GiB},
			},
		}
		rep, err := Run(opts, spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Runtime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic runtimes: %v vs %v", a, b)
	}
}

func TestStaticPolicyLimitsIOStages(t *testing.T) {
	opts := testOptions(2, core.Static{IOThreads: 4})
	opts.Inputs = []Input{{Name: "in", Size: 32 * 64 * device.MiB}}
	spec := &job.JobSpec{
		Name: "static",
		Stages: []*job.StageSpec{
			{ID: 0, Name: "read", InputFile: "in", ShuffleWriteBytes: 512 * device.MiB},
			{ID: 1, Name: "shuffle", NumTasks: 16, ShuffleFrom: []int{0}, CPUSecondsPerTask: 0.1, ShuffleWriteBytes: 256 * device.MiB},
			{ID: 2, Name: "write", NumTasks: 16, ShuffleFrom: []int{1}, OutputFile: "out", OutputBytes: 512 * device.MiB},
		},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Stages[0].Execs {
		if e.InitialThreads != 4 || e.FinalThreads != 4 {
			t.Fatalf("I/O stage executor threads = %d/%d, want 4/4", e.InitialThreads, e.FinalThreads)
		}
	}
	for _, e := range rep.Stages[1].Execs {
		if e.FinalThreads != 32 {
			t.Fatalf("shuffle stage (unmarked) threads = %d, want 32 — L2!", e.FinalThreads)
		}
	}
	for _, e := range rep.Stages[2].Execs {
		if e.FinalThreads != 4 {
			t.Fatalf("write stage threads = %d, want 4", e.FinalThreads)
		}
	}
}

func TestDynamicPolicyAdaptsWithinRun(t *testing.T) {
	opts := testOptions(4, core.DefaultDynamic())
	opts.Inputs = []Input{{Name: "in", Size: 20 * device.GiB}}
	spec := &job.JobSpec{
		Name: "dyn",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "read", InputFile: "in", CPUSecondsPerTask: 0.3,
		}},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ThreadLogs) != 4 {
		t.Fatalf("thread logs = %d", len(rep.ThreadLogs))
	}
	for exec, log := range rep.ThreadLogs {
		if len(log) < 2 {
			t.Fatalf("executor %d never adapted: %v", exec, log)
		}
		if log[0].Threads != 2 {
			t.Fatalf("executor %d started at %d threads, want cmin 2", exec, log[0].Threads)
		}
	}
	for _, e := range rep.Stages[0].Execs {
		if e.FinalThreads < 2 || e.FinalThreads > 32 {
			t.Fatalf("final threads %d out of range", e.FinalThreads)
		}
	}
	if len(rep.Decisions[0]) == 0 {
		t.Fatal("no decisions logged")
	}
}

func TestValidationErrors(t *testing.T) {
	opts := testOptions(2, core.Default{})
	cases := []*job.JobSpec{
		{Name: "empty"},
		{Name: "no-input", Stages: []*job.StageSpec{{ID: 0, Name: "x"}}},
		{Name: "bad-ids", Stages: []*job.StageSpec{{ID: 1, Name: "x", NumTasks: 1}}},
		{Name: "fwd-shuffle", Stages: []*job.StageSpec{{ID: 0, Name: "x", NumTasks: 1, ShuffleFrom: []int{0}}}},
		{Name: "no-outfile", Stages: []*job.StageSpec{{ID: 0, Name: "x", NumTasks: 1, OutputBytes: 5}}},
	}
	for _, spec := range cases {
		if _, err := Run(opts, spec); err == nil {
			t.Errorf("spec %q validated but should not", spec.Name)
		}
	}
}

func TestMissingPolicy(t *testing.T) {
	opts := testOptions(2, nil)
	if _, err := Run(opts, readJob("x", 1)); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestMissingInputFile(t *testing.T) {
	opts := testOptions(2, core.Default{})
	spec := readJob("missing", 1)
	_, err := Run(opts, spec)
	if err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestWorkError(t *testing.T) {
	opts := testOptions(2, core.Default{})
	boom := errors.New("boom")
	spec := &job.JobSpec{
		Name: "err",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "x", NumTasks: 4,
			Work: func(task int) job.Work {
				return job.WorkFunc(func(tc job.TaskContext) error {
					if task == 2 {
						return boom
					}
					tc.Compute(0.1)
					return nil
				})
			},
		}},
	}
	_, err := Run(opts, spec)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestCustomWorkClosure(t *testing.T) {
	opts := testOptions(2, core.Default{})
	opts.Inputs = []Input{{Name: "in", Size: 4 * 64 * device.MiB}}
	var mu int
	spec := &job.JobSpec{
		Name: "closure",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "custom", InputFile: "in",
			Work: func(task int) job.Work {
				return job.WorkFunc(func(tc job.TaskContext) error {
					for tc.ReadInput(16*device.MiB) > 0 {
						tc.Compute(0.05)
					}
					mu++
					return nil
				})
			},
		}},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if mu != 4 {
		t.Fatalf("closure ran %d times, want 4", mu)
	}
	if rep.DiskReadBytes != 4*64*device.MiB {
		t.Fatalf("closure read %d bytes", rep.DiskReadBytes)
	}
}

func TestMoreThreadsHurtOnHDDStreaming(t *testing.T) {
	// The paper's core observation: for a streaming read stage on HDDs,
	// running with all 32 threads is slower than a small thread count.
	run := func(threads int) time.Duration {
		opts := testOptions(4, core.BestFit{Threads: map[int]int{0: threads}, Label: fmt.Sprintf("fix%d", threads)})
		opts.Inputs = []Input{{Name: "in", Size: 30 * device.GiB}}
		rep, err := Run(opts, &job.JobSpec{
			Name: "stream",
			Stages: []*job.StageSpec{{
				ID: 0, Name: "read", InputFile: "in", CPUSecondsPerTask: 0.2,
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Runtime
	}
	t4, t32 := run(4), run(32)
	if t4 >= t32 {
		t.Fatalf("4 threads (%v) should beat 32 threads (%v) on HDD streaming", t4, t32)
	}
}

func TestZeroTaskShuffleSourceRejected(t *testing.T) {
	opts := testOptions(2, core.Default{})
	spec := &job.JobSpec{
		Name: "zero-shuffle",
		Stages: []*job.StageSpec{
			{ID: 0, Name: "a", NumTasks: 2, CPUSecondsPerTask: 0.1},
			{ID: 1, Name: "b", NumTasks: 2, ShuffleFrom: []int{0}},
		},
	}
	if _, err := Run(opts, spec); err == nil {
		t.Fatal("shuffle from stage with no shuffle output accepted")
	}
}

func TestTaskRetrySucceeds(t *testing.T) {
	opts := testOptions(2, core.Default{})
	failures := map[int]int{}
	spec := &job.JobSpec{
		Name: "flaky",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "x", NumTasks: 8,
			Work: func(task int) job.Work {
				return job.WorkFunc(func(tc job.TaskContext) error {
					tc.Compute(0.1)
					// Every odd task fails on its first two attempts.
					if task%2 == 1 && failures[task] < 2 {
						failures[task]++
						return errors.New("transient")
					}
					return nil
				})
			},
		}},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Stages[0].Retries; got != 8 {
		t.Fatalf("retries = %d, want 8 (4 odd tasks × 2 failures)", got)
	}
	var tasks int
	for _, e := range rep.Stages[0].Execs {
		tasks += e.Tasks
	}
	if tasks != 8 {
		t.Fatalf("successful tasks = %d, want 8", tasks)
	}
}

func TestTaskRetryExhausted(t *testing.T) {
	opts := testOptions(2, core.Default{})
	opts.TaskMaxFailures = 3
	spec := &job.JobSpec{
		Name: "doomed",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "x", NumTasks: 4,
			Work: func(task int) job.Work {
				return job.WorkFunc(func(tc job.TaskContext) error {
					tc.Compute(0.01)
					if task == 2 {
						return errors.New("permanent")
					}
					return nil
				})
			},
		}},
	}
	_, err := Run(opts, spec)
	if err == nil {
		t.Fatal("permanently failing task did not abort the job")
	}
	if !strings.Contains(err.Error(), "failed 3 times") {
		t.Fatalf("error should mention the attempt count: %v", err)
	}
}

func TestFailedAttemptsDoNotFeedController(t *testing.T) {
	// A controller that panics on any TaskDone with zero duration would
	// catch accounting of failed attempts; instead verify the dynamic
	// controller's decision count only reflects successes.
	opts := testOptions(2, core.DefaultDynamic())
	tries := 0
	spec := &job.JobSpec{
		Name: "flaky-dyn",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "x", NumTasks: 40,
			Work: func(task int) job.Work {
				return job.WorkFunc(func(tc job.TaskContext) error {
					tc.Compute(0.05)
					tc.WriteShuffle(1 << 20)
					if task == 0 && tries < 1 {
						tries++
						return errors.New("once")
					}
					return nil
				})
			},
			ShuffleWriteBytes: 40 << 20,
		}},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].Retries != 1 {
		t.Fatalf("retries = %d, want 1", rep.Stages[0].Retries)
	}
}

func TestSpeculationCutsStragglerTail(t *testing.T) {
	// One node's disk is 4x slower; speculation re-runs its stragglers
	// elsewhere and should shorten the stage.
	run := func(speculate bool) (*JobReport, error) {
		cfg := cluster.DAS5(4)
		cfg.Variability = device.VariabilityModel{} // uniform...
		opts := Options{
			Cluster:     cfg,
			BlockSize:   32 * device.MiB,
			Policy:      core.Default{},
			Speculation: speculate,
			Inputs:      []Input{{Name: "in", Size: 16 * device.GiB}},
		}
		// ...except node 3, made a hard straggler via interference on
		// its disk from the start.
		opts.OnSetup = func(e *Engine) {
			e.InjectDiskInterference(3, 0, 96, 0)
		}
		spec := &job.JobSpec{
			Name: "straggle",
			Stages: []*job.StageSpec{{
				ID: 0, Name: "read", InputFile: "in", CPUSecondsPerTask: 0.05,
			}},
		}
		return Run(opts, spec)
	}
	plain, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Stages[0].Speculative == 0 {
		t.Fatal("no speculative copies launched despite a hard straggler")
	}
	if spec.Runtime >= plain.Runtime {
		t.Fatalf("speculation (%v) should beat no-speculation (%v)", spec.Runtime, plain.Runtime)
	}
	// All tasks completed exactly once in the report.
	var tasks int
	for _, e := range spec.Stages[0].Execs {
		tasks += e.Tasks
	}
	if tasks != 512 {
		t.Fatalf("winning completions = %d, want one per task (512)", tasks)
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	opts := testOptions(2, core.Default{})
	opts.Inputs = []Input{{Name: "in", Size: device.GiB}}
	rep, err := Run(opts, readJob("x", device.GiB))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].Speculative != 0 {
		t.Fatalf("speculative = %d without opting in", rep.Stages[0].Speculative)
	}
}

func TestTraceLog(t *testing.T) {
	var buf bytes.Buffer
	opts := testOptions(2, core.DefaultDynamic())
	opts.Trace = &buf
	opts.Inputs = []Input{{Name: "in", Size: 2 * device.GiB}}
	spec := &job.JobSpec{
		Name: "traced",
		Stages: []*job.StageSpec{
			{ID: 0, Name: "map", InputFile: "in", CPUSecondsPerTask: 0.1, ShuffleWriteBytes: 256 * device.MiB},
			{ID: 1, Name: "red", NumTasks: 16, ShuffleFrom: []int{0}, CPUSecondsPerTask: 0.1},
		},
	}
	if _, err := Run(opts, spec); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Type]++
	}
	if counts[TraceStageStart] != 2 || counts[TraceStageEnd] != 2 {
		t.Fatalf("stage events = %d/%d, want 2/2", counts[TraceStageStart], counts[TraceStageEnd])
	}
	wantTasks := 2*device.GiB/(64*device.MiB) + 16
	if counts[TraceTaskLaunch] != int(wantTasks) || counts[TraceTaskEnd] != int(wantTasks) {
		t.Fatalf("task events = %d/%d, want %d each", counts[TraceTaskLaunch], counts[TraceTaskEnd], wantTasks)
	}
	if counts[TraceResize] == 0 {
		t.Fatal("dynamic policy produced no resize events")
	}
	// Monotonic timestamps.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("trace not time-ordered at %d", i)
		}
	}
	// Stage 0 starts before stage 1.
	firstOf := map[string]int{}
	for i, ev := range events {
		key := fmt.Sprintf("%s-%d", ev.Type, ev.Stage)
		if _, ok := firstOf[key]; !ok {
			firstOf[key] = i
		}
	}
	if firstOf["stage_start-1"] < firstOf["stage_end-0"] {
		t.Fatal("stage 1 started before stage 0 ended")
	}
}

func TestReplicationOneMixesLocality(t *testing.T) {
	opts := testOptions(4, core.Default{})
	opts.Replication = 1
	opts.Inputs = []Input{{Name: "in", Size: 32 * 64 * device.MiB}}
	rep, err := Run(opts, readJob("remote", 32*64*device.MiB))
	if err != nil {
		t.Fatal(err)
	}
	var tasks, local int
	for _, e := range rep.Stages[0].Execs {
		tasks += e.Tasks
		local += e.LocalTasks
	}
	if local == 0 {
		t.Fatal("no local tasks despite locality-preferring assignment")
	}
	if local == tasks {
		t.Fatalf("all %d tasks local with replication=1 across 4 nodes — remote path untested", tasks)
	}
	if rep.NetBytes == 0 {
		t.Fatal("remote reads moved no network bytes")
	}
}

func TestEmptyInputFile(t *testing.T) {
	opts := testOptions(2, core.Default{})
	opts.Inputs = []Input{{Name: "in", Size: 0}}
	rep, err := Run(opts, readJob("empty", 0))
	if err != nil {
		t.Fatal(err)
	}
	var tasks int
	for _, e := range rep.Stages[0].Execs {
		tasks += e.Tasks
	}
	if tasks != 1 {
		t.Fatalf("empty file ran %d tasks, want the single placeholder task", tasks)
	}
}

func TestTaskDurationPercentiles(t *testing.T) {
	opts := testOptions(2, core.Default{})
	opts.Inputs = []Input{{Name: "in", Size: 16 * 64 * device.MiB}}
	rep, err := Run(opts, readJob("pct", 16*64*device.MiB))
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stages[0]
	if st.TaskP50 <= 0 || st.TaskP95 < st.TaskP50 || st.TaskMax < st.TaskP95 {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v max=%v", st.TaskP50, st.TaskP95, st.TaskMax)
	}
	if st.TaskMax > st.Duration() {
		t.Fatalf("max task duration %v exceeds stage duration %v", st.TaskMax, st.Duration())
	}
}

// TestPoolShrinkQueuesLocally pins §5.3's integrity behaviour: tasks already
// assigned when the pool shrinks are queued by the executor and run as slots
// free, never dropped.
func TestPoolShrinkQueuesLocally(t *testing.T) {
	// A policy that slams the pool from 8 to 1 after the first completion.
	shrink := &shrinkPolicy{}
	opts := testOptions(1, shrink)
	spec := &job.JobSpec{
		Name: "shrink",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "x", NumTasks: 24,
			Work: func(task int) job.Work {
				return job.WorkFunc(func(tc job.TaskContext) error {
					tc.Compute(1)
					return nil
				})
			},
		}},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	var tasks int
	for _, e := range rep.Stages[0].Execs {
		tasks += e.Tasks
	}
	if tasks != 24 {
		t.Fatalf("tasks = %d, want all 24 despite the shrink", tasks)
	}
	if rep.Stages[0].Execs[0].FinalThreads != 1 {
		t.Fatalf("final threads = %d, want 1", rep.Stages[0].Execs[0].FinalThreads)
	}
}

// shrinkPolicy starts at 8 threads and drops to 1 after the first task.
type shrinkPolicy struct{}

func (*shrinkPolicy) Name() string { return "shrink" }
func (*shrinkPolicy) InitialThreads(job.ExecutorInfo, job.StageMeta) int {
	return 8
}
func (*shrinkPolicy) NewController(job.ExecutorInfo) job.Controller {
	return &shrinkController{threads: 8}
}

type shrinkController struct {
	threads int
	fired   bool
}

func (c *shrinkController) StageStart(job.StageMeta) int { return c.threads }
func (c *shrinkController) TaskDone(job.TaskMetrics) (int, bool) {
	if !c.fired {
		c.fired = true
		c.threads = 1
		return 1, true
	}
	return c.threads, false
}
func (c *shrinkController) Decisions() []job.Decision { return nil }

func TestReportRendering(t *testing.T) {
	opts := testOptions(2, core.Static{IOThreads: 4})
	opts.Inputs = []Input{{Name: "in", Size: 4 * 64 * device.MiB}}
	rep, err := Run(opts, readJob("render", 4*64*device.MiB))
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"render", "static-4", "stage 0", "8/64"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
	if got := rep.Stages[0].ThreadsLabel(); got != "8/64" {
		t.Errorf("ThreadsLabel = %q, want 8/64 (4 threads × 2 executors of 32)", got)
	}
	if rep.TotalIOBytes() != rep.DiskReadBytes+rep.DiskWriteBytes {
		t.Error("TotalIOBytes mismatch")
	}
	ft := rep.FinalThreads()
	if len(ft) != 1 || len(ft[0]) != 2 || ft[0][0] != 4 {
		t.Errorf("FinalThreads = %v", ft)
	}
}
