package engine

// Deliberately reintroducible defects used to mutation-test the invariant
// audit plane: a test enables one, runs the oracle (directly or via
// sae-hunt), and asserts the defect is caught. Production code never sets
// testBug; the gates compile to a single string comparison on paths that
// are already off the per-event hot path.
const (
	// bugSkipSlotReclaim makes markLost leak the dead executor's
	// in-flight slot accounting instead of reclaiming it — the class of
	// bug the PR 3 exactly-once slot-reclaim work fixed.
	bugSkipSlotReclaim = "skip-slot-reclaim"
)

// testBug names the currently enabled defect ("" = none).
var testBug string

// EnableTestBug turns on a named defect and returns a restore func. It
// panics on unknown names so a typo cannot silently test nothing.
func EnableTestBug(name string) (restore func()) {
	switch name {
	case bugSkipSlotReclaim:
	default:
		panic("engine: unknown test bug " + name)
	}
	prev := testBug
	testBug = name
	return func() { testBug = prev }
}
