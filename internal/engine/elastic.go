package engine

import (
	"errors"
	"fmt"
	"time"

	"sae/internal/autoscale"
	"sae/internal/sim"
)

// AutoscaleConfig enables elastic cluster sizing: the engine starts with
// InitialNodes active executors and grows or shrinks the active set on a
// planning interval. Scale-up activates a pre-provisioned (decommissioned)
// node after ProvisionDelay — the cloud VM boot analogue — and joins it
// through the same path a restarted executor uses. Scale-down drains: the
// node stops receiving assignments, finishes its in-flight tasks, keeps
// serving any map output a running job still references, and is then
// decommissioned — the failure detector never fires. Only a node dying
// mid-drain falls back to the requeue/lineage machinery.
type AutoscaleConfig struct {
	// Policy plans target node counts. Required.
	Policy autoscale.Policy
	// Interval is the planning tick (0 selects 15s).
	Interval time.Duration
	// InitialNodes is how many executors start active (0 selects all).
	InitialNodes int
	// MinNodes/MaxNodes clamp every plan (0 selects 1 and the cluster
	// size respectively).
	MinNodes, MaxNodes int
	// ProvisionDelay is how long a scale-up takes to come online (0
	// selects 30s).
	ProvisionDelay time.Duration
	// ScaleUpCooldown/ScaleDownCooldown are the minimum gaps between
	// successive scale-ups/scale-downs (0 selects Interval and 4×Interval:
	// growing is cheap to undo, shrinking churns shuffle state).
	ScaleUpCooldown, ScaleDownCooldown time.Duration
}

// adminState is the autoscaler's administrative view of one executor,
// orthogonal to liveness: Active nodes accept work, Draining nodes finish
// what they have, Down nodes are decommissioned capacity awaiting scale-up.
// Admin transitions are owned by the autoscale controller alone — a
// fence-and-rejoin never un-drains a node.
type adminState int

const (
	adminActive adminState = iota
	adminDraining
	adminDown
)

// autoCtl actuates the autoscale policy on a live engine: it is the
// execute (and part of the monitor) step of the cluster-level MAPE-K loop,
// with cooldowns, provision delays and drain tracking. All of its state
// changes happen on the sim clock, so runs stay deterministic.
type autoCtl struct {
	eng *Engine
	cfg AutoscaleConfig

	// pendingNode marks executors between scale-up decision and join.
	pendingNode []bool
	pending     int

	// lastUp/lastDown gate the cooldowns; -1 means "never".
	lastUp, lastDown time.Duration

	// Node-seconds accounting: nodeSec integrates the em.alive count over
	// sim time (provisioning nodes bill only once joined).
	lastAt  time.Duration
	nodeSec float64
	peak    int

	activations, drains, decommissions int

	tickEv sim.Event
}

// AutoscaleReport summarizes one run's elasticity activity.
type AutoscaleReport struct {
	// Policy is the planning policy's name.
	Policy string
	// NodeSeconds is the integral of live node count over the run — the
	// run's node-hours cost in seconds.
	NodeSeconds float64
	// PeakNodes is the largest live node count observed.
	PeakNodes int
	// FinalNodes is the live node count when the run ended.
	FinalNodes int
	// Activations/Drains/Decommissions count scale events.
	Activations, Drains, Decommissions int
}

func (r *AutoscaleReport) String() string {
	return fmt.Sprintf("%s: %.1f node-hours (peak %d, final %d), %d scale-up(s), %d drain(s), %d decommission(s)",
		r.Policy, r.NodeSeconds/3600, r.PeakNodes, r.FinalNodes,
		r.Activations, r.Drains, r.Decommissions)
}

// AutoscaleReport returns the run's elasticity summary, or nil when the
// engine has no autoscaler. Valid after Wait returns.
func (e *Engine) AutoscaleReport() *AutoscaleReport {
	if e.auto == nil {
		return nil
	}
	c := e.auto
	return &AutoscaleReport{
		Policy:        c.cfg.Policy.Name(),
		NodeSeconds:   c.nodeSec,
		PeakNodes:     c.peak,
		FinalNodes:    c.serving(),
		Activations:   c.activations,
		Drains:        c.drains,
		Decommissions: c.decommissions,
	}
}

// newAutoCtl validates and applies defaults, marks the executors beyond
// InitialNodes decommissioned, and arms the planning tick.
func newAutoCtl(e *Engine, cfg AutoscaleConfig) (*autoCtl, error) {
	if cfg.Policy == nil {
		return nil, errors.New("engine: Autoscale.Policy is required")
	}
	n := len(e.executors)
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	if cfg.InitialNodes <= 0 || cfg.InitialNodes > n {
		cfg.InitialNodes = n
	}
	if cfg.MinNodes <= 0 {
		cfg.MinNodes = 1
	}
	if cfg.MaxNodes <= 0 || cfg.MaxNodes > n {
		cfg.MaxNodes = n
	}
	if cfg.MinNodes > cfg.MaxNodes {
		return nil, fmt.Errorf("engine: Autoscale.MinNodes %d > MaxNodes %d", cfg.MinNodes, cfg.MaxNodes)
	}
	if cfg.ProvisionDelay <= 0 {
		cfg.ProvisionDelay = 30 * time.Second
	}
	if cfg.ScaleUpCooldown <= 0 {
		cfg.ScaleUpCooldown = cfg.Interval
	}
	if cfg.ScaleDownCooldown <= 0 {
		cfg.ScaleDownCooldown = 4 * cfg.Interval
	}
	c := &autoCtl{
		eng:         e,
		cfg:         cfg,
		pendingNode: make([]bool, n),
		lastUp:      -1,
		lastDown:    -1,
	}
	// Executors beyond the initial set start decommissioned: process down,
	// no heartbeats, detector unarmed (NewEngine skips dead executors), no
	// loss declared. Their DFS datanodes hold replicas that the fault model
	// reports unreachable until activation.
	for i := cfg.InitialNodes; i < n; i++ {
		e.executors[i].alive = false
		e.em.alive[i] = false
		e.em.admin[i] = adminDown
		e.em.limits[i] = 0
	}
	var tick sim.Event
	tick = e.k.Every(cfg.Interval, func() {
		if e.done.Load() {
			tick.Cancel()
			return
		}
		c.tick()
	})
	c.tickEv = tick
	return c, nil
}

// serving counts the live executors (active or draining) — the billed set.
func (c *autoCtl) serving() int {
	n := 0
	for _, up := range c.eng.em.alive {
		if up {
			n++
		}
	}
	return n
}

// account integrates node-seconds up to now at the current live count. It
// must run BEFORE any transition that changes the count; markLost and
// markJoined call it, so crash/restart paths stay billed correctly too.
func (c *autoCtl) account() {
	now := c.eng.k.Now()
	s := c.serving()
	c.nodeSec += float64(s) * (now - c.lastAt).Seconds()
	c.lastAt = now
	if s > c.peak {
		c.peak = s
	}
}

// snapshot builds the policy's monitor view.
func (c *autoCtl) snapshot() autoscale.Snapshot {
	e := c.eng
	em := e.em
	snap := autoscale.Snapshot{
		Now:            e.k.Now(),
		PendingNodes:   c.pending,
		CompletedTasks: e.tasksDone,
	}
	for i := range em.alive {
		if !em.alive[i] {
			continue
		}
		switch em.admin[i] {
		case adminActive:
			snap.ActiveNodes++
			snap.TotalSlots += em.limits[i]
			snap.BusySlots += em.inflight[i]
		case adminDraining:
			snap.DrainingNodes++
		}
		snap.RunningTasks += em.inflight[i]
	}
	for _, ts := range e.sched.sets {
		snap.QueuedTasks += len(ts.pending)
	}
	for _, js := range e.jobs {
		if js.started && !js.done && js.running == 0 {
			snap.QueuedJobs++
		}
	}
	return snap
}

// tick is one MAPE-K iteration: monitor (snapshot), analyze+plan (the
// policy), execute (clamp, cooldown, activate or drain). It also sweeps
// draining nodes so none linger after a racing join or loss.
func (c *autoCtl) tick() {
	e := c.eng
	c.account()
	c.sweepDrains()
	target, reason := c.cfg.Policy.Target(c.snapshot())
	if target < c.cfg.MinNodes {
		target = c.cfg.MinNodes
	}
	if target > c.cfg.MaxNodes {
		target = c.cfg.MaxNodes
	}
	cur := c.activeAndPending()
	now := e.k.Now()
	switch {
	case target > cur:
		if c.lastUp >= 0 && now-c.lastUp < c.cfg.ScaleUpCooldown {
			return
		}
		if c.scaleUp(target-cur, reason) > 0 {
			c.lastUp = now
		}
	case target < cur:
		if c.lastDown >= 0 && now-c.lastDown < c.cfg.ScaleDownCooldown {
			return
		}
		if c.scaleDown(cur-target, reason) > 0 {
			c.lastDown = now
		}
	}
}

// activeAndPending is the policy-visible current size: admin-active live
// nodes plus provisions in flight. Draining nodes are already leaving.
func (c *autoCtl) activeAndPending() int {
	em := c.eng.em
	n := c.pending
	for i := range em.alive {
		if em.alive[i] && em.admin[i] == adminActive {
			n++
		}
	}
	return n
}

// scaleUp provisions up to want decommissioned nodes (ascending index, for
// determinism) and returns how many it started.
func (c *autoCtl) scaleUp(want int, reason string) int {
	e := c.eng
	em := e.em
	started := 0
	for i := 0; i < len(em.alive) && started < want; i++ {
		if em.admin[i] != adminDown || c.pendingNode[i] || em.alive[i] {
			continue
		}
		c.pendingNode[i] = true
		c.pending++
		c.activations++
		started++
		e.trace(TraceEvent{Type: TraceScaleUp, Job: -1, Stage: -1, Task: -1, Exec: i,
			Detail: fmt.Sprintf("provisioning (%s), online in %s", reason, c.cfg.ProvisionDelay)})
		i := i
		e.k.After(c.cfg.ProvisionDelay, func() { c.activate(i) })
	}
	return started
}

// activate brings a provisioned node online: admin-active, process up under
// a fresh epoch, joining through the same execJoin path a restarted
// executor uses (the driver re-sends active stages and arms the detector).
func (c *autoCtl) activate(i int) {
	e := c.eng
	if e.done.Load() {
		return
	}
	c.pendingNode[i] = false
	c.pending--
	em := e.em
	if em.admin[i] != adminDown || em.alive[i] {
		return
	}
	em.admin[i] = adminActive
	ex := e.executors[i]
	ex.alive = true
	ex.epoch++
	e.toDriver.Send(e.cluster.ControlLatency(), driverMsg{
		execJoin: &execJoinMsg{exec: i, epoch: ex.epoch},
	})
}

// scaleDown drains up to want active nodes (descending index, so low-index
// nodes — where static experiments put their data — stay longest) and
// returns how many it started.
func (c *autoCtl) scaleDown(want int, reason string) int {
	e := c.eng
	em := e.em
	stopped := 0
	for i := len(em.alive) - 1; i >= 0 && stopped < want; i-- {
		if !em.alive[i] || em.admin[i] != adminActive {
			continue
		}
		em.admin[i] = adminDraining
		c.drains++
		stopped++
		e.trace(TraceEvent{Type: TraceDrain, Job: -1, Stage: -1, Task: -1, Exec: i,
			Detail: fmt.Sprintf("draining %d in-flight task(s) (%s)", em.inflight[i], reason)})
		if c.drainComplete(i) {
			c.scheduleDecommission(i)
		}
	}
	return stopped
}

// drainComplete reports whether draining node i has fully quiesced: no
// in-flight tasks AND no registered map output an unfinished job still
// references. A graceful drain must not destroy shuffle data a reduce is
// about to fetch — the node idles as a pure shuffle server until its
// consumers finish (finishJob flushes such waiters when it drops the job's
// registrations).
func (c *autoCtl) drainComplete(i int) bool {
	e := c.eng
	return e.em.inflight[i] == 0 && !e.shuffle.hasOutput(e.executors[i].node.ID)
}

// drainQuiesced is the drain-completion hook, called by execManager when a
// draining node's in-flight count hits zero. The decommission itself is
// deferred to a same-instant kernel event so it never runs in the middle of
// the completion handler that is still registering the final task's output.
func (c *autoCtl) drainQuiesced(i int) {
	if c.eng.em.admin[i] == adminDraining {
		c.scheduleDecommission(i)
	}
}

// flushDrains synchronously decommissions every draining node whose last
// obligation just lapsed. finishJob calls it after dropping the finished
// job's shuffle registrations — by then nothing on the node is mid-flight,
// so the deferral dance is unnecessary (and for the final job it would come
// too late: the driver loop exits before a same-instant event could fire).
func (c *autoCtl) flushDrains() {
	if c == nil {
		return
	}
	em := c.eng.em
	for i := range em.alive {
		if em.admin[i] == adminDraining && em.alive[i] && c.drainComplete(i) {
			c.decommission(i)
		}
	}
}

func (c *autoCtl) scheduleDecommission(i int) {
	c.eng.k.At(c.eng.k.Now(), func() { c.decommission(i) })
}

// sweepDrains finishes any drain the event hooks missed: nodes that died
// mid-drain move straight to Down (their loss was already processed by the
// failure detector), and quiesced live drains decommission.
func (c *autoCtl) sweepDrains() {
	em := c.eng.em
	for i := range em.alive {
		if em.admin[i] != adminDraining {
			continue
		}
		if !em.alive[i] {
			em.admin[i] = adminDown
			continue
		}
		if c.drainComplete(i) {
			c.scheduleDecommission(i)
		}
	}
}

// decommission retires a quiesced draining node without tripping the
// failure detector: the executor process shuts down under a fresh epoch
// (in-flight control messages go stale) and the driver books it out exactly
// as markLost does — but with no loss declared, so LostExecutors and
// Suspected never tick. drainComplete guarantees the node's shuffle files
// are no longer referenced, so the removeNode below invalidates nothing a
// running stage would miss.
func (c *autoCtl) decommission(i int) {
	e := c.eng
	em := e.em
	// The process itself must be up too: a node that crashed mid-drain
	// before the driver declared it lost is the failure detector's to book
	// out, not a decommission.
	if e.done.Load() || !em.alive[i] || !e.executors[i].alive || em.admin[i] != adminDraining || !c.drainComplete(i) {
		return
	}
	ex := e.executors[i]
	c.account()
	em.admin[i] = adminDown
	ex.shutdown()
	em.markLost(i, ex.epoch)
	e.removeShuffleNode(ex.node.ID)
	e.trace(TraceEvent{Type: TraceDecommission, Job: -1, Stage: -1, Task: -1, Exec: i})
	c.decommissions++
	e.sched.reclaimNode(i)
	e.sched.assignAll()
}

// capacityPending reports whether the autoscaler can still add capacity —
// provisions in flight, or decommissioned nodes it may activate on a later
// tick. A fully-dark cluster with an autoscaler attached waits for it
// rather than declaring the run fatal.
func (c *autoCtl) capacityPending() bool {
	if c == nil {
		return false
	}
	if c.pending > 0 {
		return true
	}
	if c.activeAndPending() >= c.cfg.MaxNodes {
		return false
	}
	em := c.eng.em
	for i := range em.alive {
		if em.admin[i] == adminDown && !em.alive[i] && !c.pendingNode[i] {
			return true
		}
	}
	return false
}
