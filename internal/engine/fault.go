package engine

import (
	"errors"
	"fmt"

	"sae/internal/chaos"
)

// Fault-path errors. Injected transients go through the normal retry path
// (they count against task.maxFailures, which the chaos plan's attempt
// budget keeps below the abort threshold); a fetchFailedError means real
// map output died with a node and triggers lineage recovery instead.
var (
	// errExecutorLost aborts a zombie task's remaining work after its
	// executor crashed. It never reaches the driver — zombie completions
	// are filtered at the executor.
	errExecutorLost = errors.New("executor lost")
	// errInjectedIO is a chaos-injected transient task I/O fault.
	errInjectedIO = errors.New("injected I/O fault")
	// errInjectedFetch is a chaos-injected transient shuffle-fetch
	// failure.
	errInjectedFetch = errors.New("injected fetch failure")
)

// fetchFailedError reports a shuffle fetch against map output that no
// longer exists: the plan's source node lost its shuffle files after the
// plan was computed (Spark's FetchFailedException).
type fetchFailedError struct {
	node int
}

func (e *fetchFailedError) Error() string {
	return fmt.Sprintf("fetch failed: map output on node %d was lost", e.node)
}

// scheduleFaults arms the chaos plan's crash, slowdown and partition
// schedules on the sim clock. All handlers run in event context: they only
// flip state and post mailbox messages, never park.
func (e *Engine) scheduleFaults(plan *chaos.Plan) {
	for _, c := range plan.SortedCrashes() {
		if c.Exec < 0 || c.Exec >= len(e.executors) {
			continue
		}
		c := c
		e.k.At(c.At, func() { e.crashExecutor(c.Exec) })
		if c.RestartAfter > 0 {
			e.k.At(c.At+c.RestartAfter, func() { e.restartExecutor(c.Exec) })
		}
	}
	for _, s := range plan.SortedSlows() {
		if s.Exec < 0 || s.Exec >= len(e.executors) {
			continue
		}
		s := s
		// The slowdown throttles node-local devices, so it fires on the
		// node's shard kernel.
		e.kernelOf(s.Exec).At(s.At, func() {
			if e.done.Load() {
				return
			}
			node := e.executors[s.Exec].node
			node.SetThrottle(s.Factor)
			e.trace(TraceEvent{Type: TraceExecSlow, Job: -1, Stage: -1, Task: -1, Exec: s.Exec,
				Detail: fmt.Sprintf("devices throttled %gx", s.Factor)})
		})
	}
	// Partitions take effect through pure-function lookups of the plan
	// (Partitioned at heartbeat/fetch time); the timers below only mark the
	// window edges in the trace.
	for _, pt := range plan.SortedPartitions() {
		if pt.Exec < 0 || pt.Exec >= len(e.executors) {
			continue
		}
		pt := pt
		e.k.At(pt.At, func() {
			if e.done.Load() {
				return
			}
			e.trace(TraceEvent{Type: TracePartition, Job: -1, Stage: -1, Task: -1, Exec: pt.Exec,
				Detail: fmt.Sprintf("start, heals after %s", pt.Duration)})
		})
		e.k.At(pt.At+pt.Duration, func() {
			if e.done.Load() {
				return
			}
			e.trace(TraceEvent{Type: TracePartition, Job: -1, Stage: -1, Task: -1, Exec: pt.Exec,
				Detail: "healed"})
		})
	}
}

// crashExecutor kills executor i at the current virtual time: its local
// queue and shuffle files are gone and running tasks become zombies. The
// driver is NOT notified — it has no loss oracle. Its failure detector
// notices the heartbeat silence, suspects, and declares the executor lost
// at the heartbeat timeout.
func (e *Engine) crashExecutor(i int) {
	if e.done.Load() {
		return
	}
	ex := e.executors[i]
	if !ex.alive {
		return
	}
	ex.shutdown()
	// The node's local shuffle files die with the executor process; DFS
	// blocks survive (the datanode is a separate process).
	e.removeShuffleNode(ex.node.ID)
	e.trace(TraceEvent{Type: TraceExecCrash, Job: -1, Stage: ex.curStage, Task: -1, Exec: i, Detail: "crash"})
}

// restartExecutor brings executor i back: the driver re-establishes the
// ThreadCountUpdate flow by re-sending the active stages, whose fresh
// controllers bootstrap the MAPE-K loop again from cmin.
func (e *Engine) restartExecutor(i int) {
	if e.done.Load() {
		return
	}
	ex := e.executors[i]
	if ex.alive {
		return
	}
	if e.em.admin[i] == adminDown {
		// The autoscaler decommissioned (or never activated) this node; a
		// chaos restart must not resurrect capacity the scaler handed back.
		return
	}
	ex.alive = true
	ex.restarts++
	e.trace(TraceEvent{Type: TraceExecRestart, Job: -1, Stage: ex.curStage, Task: -1, Exec: i})
	e.toDriver.Send(e.cluster.ControlLatency(), driverMsg{
		execJoin: &execJoinMsg{exec: i, epoch: ex.epoch},
	})
}

// restartPending reports whether an executor the driver counts as lost is
// still due back — either the fault schedule owes a restart for a dead
// process, or the process is in fact alive (a false-positive declaration)
// and will be fenced back in on its next heartbeat. If so, a fully-dark
// cluster should wait rather than abort.
func (e *Engine) restartPending() bool {
	for i, ex := range e.executors {
		if !e.em.alive[i] && ex.alive {
			return true
		}
	}
	if e.auto.capacityPending() {
		return true
	}
	plan := e.opts.Faults
	if plan == nil {
		return false
	}
	now := e.k.Now()
	for _, c := range plan.Crashes {
		if c.RestartAfter <= 0 || c.Exec < 0 || c.Exec >= len(e.executors) {
			continue
		}
		if !e.executors[c.Exec].alive && c.At+c.RestartAfter > now {
			return true
		}
	}
	return false
}
