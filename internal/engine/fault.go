package engine

import (
	"errors"
	"fmt"

	"sae/internal/chaos"
	"sae/internal/engine/job"
)

// Fault-path errors. Injected transients go through the normal retry path
// (they count against task.maxFailures, which the chaos plan's attempt
// budget keeps below the abort threshold); a fetchFailedError means real
// map output died with a node and triggers lineage recovery instead.
var (
	// errExecutorLost aborts a zombie task's remaining work after its
	// executor crashed. It never reaches the driver — zombie completions
	// are filtered at the executor.
	errExecutorLost = errors.New("executor lost")
	// errInjectedIO is a chaos-injected transient task I/O fault.
	errInjectedIO = errors.New("injected I/O fault")
	// errInjectedFetch is a chaos-injected transient shuffle-fetch
	// failure.
	errInjectedFetch = errors.New("injected fetch failure")
)

// fetchFailedError reports a shuffle fetch against map output that no
// longer exists: the plan's source node lost its shuffle files after the
// plan was computed (Spark's FetchFailedException).
type fetchFailedError struct {
	node int
}

func (e *fetchFailedError) Error() string {
	return fmt.Sprintf("fetch failed: map output on node %d was lost", e.node)
}

// scheduleFaults arms the chaos plan's crash schedule on the sim clock.
// Crashes and restarts run in event context: they only flip state and post
// mailbox messages, never park.
func (e *Engine) scheduleFaults(plan *chaos.Plan) {
	for _, c := range plan.SortedCrashes() {
		if c.Exec < 0 || c.Exec >= len(e.executors) {
			continue
		}
		c := c
		e.k.At(c.At, func() { e.crashExecutor(c.Exec) })
		if c.RestartAfter > 0 {
			e.k.At(c.At+c.RestartAfter, func() { e.restartExecutor(c.Exec) })
		}
	}
}

// crashExecutor kills executor i at the current virtual time: its local
// queue and shuffle files are gone, running tasks become zombies, and the
// driver is notified with control-plane latency (loss detection delay).
func (e *Engine) crashExecutor(i int) {
	if e.done {
		return
	}
	ex := e.executors[i]
	if !ex.alive {
		return
	}
	ex.alive = false
	ex.epoch++
	ex.queue = nil
	// Retire every active controller, archiving their decision logs per
	// job; the restart's re-sent stages will install fresh ones.
	for _, key := range ex.activeKeys {
		ex.decisionsByJob[key.job] = append(ex.decisionsByJob[key.job], ex.ctrls[key].Decisions()...)
	}
	ex.ctrls = make(map[setKey]job.Controller)
	ex.choice = make(map[setKey]int)
	ex.stages = make(map[setKey]*job.StageSpec)
	ex.activeKeys = nil
	ex.threadLog = append(ex.threadLog, ThreadChange{At: e.k.Now(), Stage: ex.curStage, Threads: 0})
	// The node's local shuffle files die with the executor process; DFS
	// blocks survive (the datanode is a separate process).
	e.shuffle.removeNode(ex.node.ID)
	e.trace(TraceEvent{Type: TraceExecLost, Job: -1, Stage: ex.curStage, Task: -1, Exec: i, Detail: "crash"})
	e.toDriver.Send(e.cluster.ControlLatency(), driverMsg{
		execLost: &execLostMsg{exec: i, epoch: ex.epoch},
	})
}

// restartExecutor brings executor i back: the driver re-establishes the
// ThreadCountUpdate flow by re-sending the active stages, whose fresh
// controllers bootstrap the MAPE-K loop again from cmin.
func (e *Engine) restartExecutor(i int) {
	if e.done {
		return
	}
	ex := e.executors[i]
	if ex.alive {
		return
	}
	ex.alive = true
	ex.restarts++
	e.trace(TraceEvent{Type: TraceExecRestart, Job: -1, Stage: ex.curStage, Task: -1, Exec: i})
	e.toDriver.Send(e.cluster.ControlLatency(), driverMsg{
		execJoin: &execJoinMsg{exec: i, epoch: ex.epoch},
	})
}

// restartPending reports whether the fault schedule still owes a restart
// for a currently-dead executor — if so, a fully-dark cluster should wait
// rather than abort.
func (e *Engine) restartPending() bool {
	plan := e.opts.Faults
	if plan == nil {
		return false
	}
	now := e.k.Now()
	for _, c := range plan.Crashes {
		if c.RestartAfter <= 0 || c.Exec < 0 || c.Exec >= len(e.executors) {
			continue
		}
		if !e.executors[c.Exec].alive && c.At+c.RestartAfter > now {
			return true
		}
	}
	return false
}
