package engine

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"sae/internal/chaos"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine/job"
)

// twoStageJob is a map+reduce pipeline sized so both stages run long enough
// to crash into.
func twoStageJob() (*job.JobSpec, []Input) {
	in := int64(32 * 64 * device.MiB)
	spec := &job.JobSpec{
		Name: "faulty",
		Stages: []*job.StageSpec{
			{ID: 0, Name: "map", InputFile: "in", CPUSecondsPerTask: 0.2, ShuffleWriteBytes: device.GiB},
			{ID: 1, Name: "reduce", NumTasks: 32, ShuffleFrom: []int{0}, CPUSecondsPerTask: 0.2,
				OutputFile: "out", OutputBytes: device.GiB},
		},
	}
	return spec, []Input{{Name: "in", Size: in}}
}

// calibrate runs the job quietly and returns its stage windows.
func calibrate(t *testing.T, policy job.Policy) *JobReport {
	t.Helper()
	spec, inputs := twoStageJob()
	opts := testOptions(4, policy)
	opts.Inputs = inputs
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCrashRecoveryDuringMapStage(t *testing.T) {
	// Static{4} caps each executor at 4 slots, so the 32-task waves spread
	// over all four executors and the crash victim has work in flight.
	quiet := calibrate(t, core.Static{IOThreads: 4})
	crashAt := quiet.Stages[0].End * 2 / 5

	spec, inputs := twoStageJob()
	opts := testOptions(4, core.Static{IOThreads: 4})
	opts.Inputs = inputs
	opts.Faults = chaos.CrashAt(1, crashAt)
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatalf("job did not recover from executor crash: %v", err)
	}
	if rep.LostExecutors != 1 {
		t.Fatalf("LostExecutors = %d, want 1", rep.LostExecutors)
	}
	if rep.Stages[0].Requeued == 0 {
		t.Fatal("no tasks requeued despite a mid-stage crash")
	}
	if rep.Runtime <= quiet.Runtime {
		t.Fatalf("crashy run (%v) not slower than quiet run (%v)", rep.Runtime, quiet.Runtime)
	}
	// All 32 map and 32 reduce tasks still completed exactly once on the
	// surviving executors.
	for _, st := range rep.Stages {
		var tasks int
		for _, e := range st.Execs {
			tasks += e.Tasks
		}
		if tasks != 32 {
			t.Fatalf("stage %d completed tasks = %d, want 32", st.ID, tasks)
		}
		for _, e := range st.Execs {
			if e.Executor == 1 && st.ID == 1 && e.Tasks != 0 {
				t.Fatalf("dead executor completed %d reduce tasks", e.Tasks)
			}
		}
	}
}

func TestCrashDuringReduceResubmitsMapStage(t *testing.T) {
	quiet := calibrate(t, core.Static{IOThreads: 4})
	red := quiet.Stages[1]
	crashAt := red.Start + (red.End-red.Start)*2/5

	spec, inputs := twoStageJob()
	opts := testOptions(4, core.Static{IOThreads: 4})
	opts.Inputs = inputs
	opts.Faults = chaos.CrashAt(2, crashAt)
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatalf("job did not recover from reduce-phase crash: %v", err)
	}
	if rep.LostExecutors != 1 {
		t.Fatalf("LostExecutors = %d, want 1", rep.LostExecutors)
	}
	// The crash took node 2's map outputs with it: the reduce stage must
	// have resubmitted the parent map tasks (lineage recovery) and
	// re-registered their shuffle output.
	if rep.ResubmittedStages < 1 {
		t.Fatalf("ResubmittedStages = %d, want >= 1", rep.ResubmittedStages)
	}
	if rep.RecoveredBytes <= 0 {
		t.Fatal("no shuffle bytes recovered despite lost map outputs")
	}
	if got := rep.Stages[1].ResubmittedStages; got < 1 {
		t.Fatalf("reduce StageReport.ResubmittedStages = %d, want >= 1", got)
	}
}

func TestRestartReclimbsFromCmin(t *testing.T) {
	quiet := calibrate(t, core.DefaultDynamic())
	crashAt := quiet.Runtime * 2 / 5
	restartAfter := quiet.Runtime / 5

	spec, inputs := twoStageJob()
	opts := testOptions(4, core.DefaultDynamic())
	opts.Inputs = inputs
	opts.Faults = chaos.CrashRestart(1, crashAt, restartAfter)
	var eng *Engine
	opts.OnSetup = func(e *Engine) { eng = e }
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatalf("job did not survive crash+restart: %v", err)
	}
	ex := eng.Executors()[1]
	if ex.Restarts() != 1 {
		t.Fatalf("Restarts() = %d, want 1", ex.Restarts())
	}
	if !ex.Alive() {
		t.Fatal("restarted executor not alive at job end")
	}
	// The thread log must show the crash (0) followed by the restarted
	// controller's fresh hill climb bootstrapping at cmin = 2.
	log := rep.ThreadLogs[1]
	zero := -1
	for i, ch := range log {
		if ch.Threads == 0 {
			zero = i
			break
		}
	}
	if zero < 0 {
		t.Fatalf("crash did not log a 0-thread change: %+v", log)
	}
	if zero+1 >= len(log) {
		t.Fatal("no thread changes after restart")
	}
	if got := log[zero+1].Threads; got != 2 {
		t.Fatalf("first post-restart pool size = %d, want cmin = 2", got)
	}
	if log[zero+1].At < crashAt+restartAfter {
		t.Fatalf("post-restart change at %v predates the restart (%v)",
			log[zero+1].At, crashAt+restartAfter)
	}
	// The restarted incarnation's controller made fresh decisions.
	post := 0
	for _, d := range ex.Decisions() {
		if d.At > crashAt+restartAfter {
			post++
		}
	}
	if post == 0 {
		t.Fatal("restarted controller logged no decisions")
	}
}

func TestTransientFaultsRetryNotAbort(t *testing.T) {
	spec, inputs := twoStageJob()
	opts := testOptions(4, core.Default{})
	opts.Inputs = inputs
	opts.Faults = &chaos.Plan{Name: "storm", Seed: 3, TaskFaultRate: 0.3, FetchFaultRate: 0.3}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatalf("transient faults aborted the job: %v", err)
	}
	var retries int
	for _, st := range rep.Stages {
		retries += st.Retries
	}
	if retries == 0 {
		t.Fatal("30% fault rates produced no retries")
	}
	if rep.LostExecutors != 0 || rep.ResubmittedStages != 0 {
		t.Fatalf("transient faults must not look like executor loss: %d lost, %d resubmitted",
			rep.LostExecutors, rep.ResubmittedStages)
	}
}

func TestBlacklistAfterRepeatedFailures(t *testing.T) {
	var trace bytes.Buffer
	opts := testOptions(2, core.Default{})
	opts.Trace = &trace
	opts.TaskMaxFailures = 10
	spec := &job.JobSpec{
		Name: "badexec",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "x", NumTasks: 16,
			Work: func(task int) job.Work {
				return job.WorkFunc(func(tc job.TaskContext) error {
					tc.Compute(0.05)
					if tc.Executor() == 0 {
						return errTestBroken
					}
					return nil
				})
			},
		}},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatalf("job did not route around the broken executor: %v", err)
	}
	events, err := ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	blacklisted := false
	for _, ev := range events {
		if ev.Type == TraceBlacklist && ev.Exec == 0 {
			blacklisted = true
		}
	}
	if !blacklisted {
		t.Fatal("executor 0 was never blacklisted despite failing every task")
	}
	if got := rep.Stages[0].Execs[0].Tasks; got != 0 {
		t.Fatalf("broken executor completed %d tasks", got)
	}
	var tasks int
	for _, e := range rep.Stages[0].Execs {
		tasks += e.Tasks
	}
	if tasks != 16 {
		t.Fatalf("completed tasks = %d, want 16", tasks)
	}
}

var errTestBroken = errBroken{}

type errBroken struct{}

func (errBroken) Error() string { return "broken executor" }

// TestFaultDeterminism is the regression test for scheduler determinism:
// the same job with speculation AND a chaos schedule (crash+restart plus
// transient fault rates) must produce byte-identical reports and traces on
// repeated runs.
func TestFaultDeterminism(t *testing.T) {
	quiet := calibrate(t, core.DefaultDynamic())
	run := func() (*JobReport, []byte) {
		var trace bytes.Buffer
		spec, inputs := twoStageJob()
		opts := testOptions(4, core.DefaultDynamic())
		opts.Inputs = inputs
		opts.Speculation = true
		opts.Trace = &trace
		opts.Faults = &chaos.Plan{
			Name: "mixed",
			Seed: 7,
			Crashes: []chaos.Crash{
				{Exec: 1, At: quiet.Runtime * 2 / 5, RestartAfter: quiet.Runtime / 5},
			},
			TaskFaultRate:  0.05,
			FetchFaultRate: 0.05,
		}
		rep, err := Run(opts, spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep, trace.Bytes()
	}
	repA, traceA := run()
	repB, traceB := run()
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("JobReports differ across identical runs:\nA: %+v\nB: %+v", repA, repB)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("trace streams differ across identical runs")
	}
	if repA.LostExecutors != 1 {
		t.Fatalf("LostExecutors = %d, want 1", repA.LostExecutors)
	}
	_ = time.Duration(0)
}
