package engine

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sae/internal/chaos"
	"sae/internal/cluster"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine/job"
)

// shardedRun executes one faulted, traced run at the given shard count and
// returns the full trace bytes plus the rendered report — every byte the
// determinism contract covers.
func shardedRun(t *testing.T, shards int, plan *chaos.Plan) (string, string) {
	t.Helper()
	cfg := cluster.DAS5(8)
	cfg.Variability = device.DefaultVariability(7)
	var trace bytes.Buffer
	opts := Options{
		Cluster:   cfg,
		BlockSize: 64 * device.MiB,
		Policy:    core.Default{},
		Faults:    plan,
		Inputs:    []Input{{Name: "in", Size: 32 * 64 * device.MiB}},
		Trace:     &trace,
		Shards:    shards,
	}
	spec := &job.JobSpec{
		Name: "sharded-golden",
		Stages: []*job.StageSpec{
			{ID: 0, Name: "map", InputFile: "in", CPUSecondsPerTask: 0.2, ShuffleWriteBytes: 8 * 64 * device.MiB},
			{ID: 1, Name: "reduce", NumTasks: 16, ShuffleFrom: []int{0}, CPUSecondsPerTask: 0.3, DependsOn: []int{0}},
		},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return trace.String(), fmt.Sprintf("%+v", rep)
}

// TestShardedMergedByteIdentical is the same-instant cross-shard merge test:
// all eight executors heartbeat at the same nanosecond every interval, and
// the chaos schedule lands slowdowns and a crash/restart across shard
// boundaries, so shards 2 and 4 constantly emit driver-bound events at
// identical instants. The merged path must serialize them in global creation
// order — trace and report byte-identical across -shards 1/2/4 and across
// repeated runs.
func TestShardedMergedByteIdentical(t *testing.T) {
	plan := &chaos.Plan{
		Name:  "sharded-mix",
		Seed:  42,
		Slows: []chaos.Slow{{Exec: 2, At: 5 * time.Second, Factor: 4}},
		Crashes: []chaos.Crash{
			{Exec: 5, At: 20 * time.Second, RestartAfter: 30 * time.Second},
		},
		Partitions:    []chaos.Partition{{Exec: 6, At: 10 * time.Second, Duration: 25 * time.Second}},
		TaskFaultRate: 0.02,
	}
	baseTrace, baseRep := shardedRun(t, 1, plan)
	if baseTrace == "" {
		t.Fatal("empty trace")
	}
	for _, shards := range []int{1, 2, 4} {
		for rep := 0; rep < 2; rep++ {
			tr, r := shardedRun(t, shards, plan)
			if tr != baseTrace {
				t.Fatalf("shards=%d rep=%d: trace differs from shards=1", shards, rep)
			}
			if r != baseRep {
				t.Fatalf("shards=%d rep=%d: report differs from shards=1", shards, rep)
			}
		}
	}
}

// windowedOptions builds a run that qualifies for concurrent (windowed)
// shard execution: map-only job, local DFS reads, slowdown + partition +
// transient-fault chaos, no observers.
func windowedOptions(nodes, shards int) (Options, *job.JobSpec) {
	cfg := cluster.DAS5(nodes)
	cfg.Variability = device.DefaultVariability(11)
	plan := &chaos.Plan{
		Name: "gray",
		Seed: 9,
		Slows: []chaos.Slow{
			{Exec: 1, At: 2 * time.Second, Factor: 3},
			{Exec: nodes - 1, At: 6 * time.Second, Factor: 2},
		},
		Partitions:    []chaos.Partition{{Exec: 2, At: 4 * time.Second, Duration: 30 * time.Second}},
		TaskFaultRate: 0.05,
	}
	opts := Options{
		Cluster:   cfg,
		BlockSize: 64 * device.MiB,
		Policy:    core.Default{},
		Faults:    plan,
		Inputs:    []Input{{Name: "in", Size: int64(nodes) * 8 * 64 * device.MiB}},
		Shards:    shards,
	}
	spec := &job.JobSpec{
		Name: "windowed-scan",
		Stages: []*job.StageSpec{
			{ID: 0, Name: "scan", InputFile: "in", CPUSecondsPerTask: 0.25},
		},
	}
	return opts, spec
}

// TestShardedWindowedEngages asserts the eligibility rule actually selects
// the concurrent path for a qualifying grayfail run — and refuses it the
// moment an observer attaches.
func TestShardedWindowedEngages(t *testing.T) {
	opts, spec := windowedOptions(8, 4)
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if !e.windowed {
		t.Fatal("qualifying grayfail run did not take the windowed path")
	}
	if _, err := h.Report(); err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	opts2, spec2 := windowedOptions(8, 4)
	opts2.Trace = &trace
	e2, err := NewEngine(opts2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Submit(spec2); err != nil {
		t.Fatal(err)
	}
	if err := e2.Wait(); err != nil {
		t.Fatal(err)
	}
	if e2.windowed {
		t.Fatal("traced run must take the merged path")
	}
}

// TestShardedWindowedDeterministic runs the qualifying grayfail scenario
// repeatedly at each shard count: every repeat must render the identical
// report, and the single-shard and merged runs bound the result — the
// windowed schedule may reorder same-instant cross-shard arrivals but must
// still complete every task exactly once.
func TestShardedWindowedDeterministic(t *testing.T) {
	reports := make(map[int]string)
	for _, shards := range []int{1, 2, 4} {
		var first string
		for rep := 0; rep < 3; rep++ {
			opts, spec := windowedOptions(8, shards)
			e, err := NewEngine(opts)
			if err != nil {
				t.Fatal(err)
			}
			h, err := e.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Wait(); err != nil {
				t.Fatalf("shards=%d rep=%d: %v", shards, rep, err)
			}
			r, err := h.Report()
			if err != nil {
				t.Fatal(err)
			}
			s := fmt.Sprintf("%+v", r)
			if rep == 0 {
				first = s
				reports[shards] = s
				var tasks int
				for _, st := range r.Stages {
					for _, ex := range st.Execs {
						tasks += ex.Tasks
					}
				}
				if tasks < 64 {
					t.Fatalf("shards=%d: %d tasks completed, want >= 64", shards, tasks)
				}
			} else if s != first {
				t.Fatalf("shards=%d rep=%d: report differs across repeats", shards, rep)
			}
		}
	}
	// The windowed schedule is conservative: no cross-shard interaction
	// below the control latency exists in this plan, so the reports agree
	// with the serial run exactly, not just statistically.
	if reports[2] != reports[1] || reports[4] != reports[1] {
		t.Logf("windowed reports differ from serial (allowed, but worth knowing):\nshards1 == shards2: %v\nshards1 == shards4: %v",
			reports[2] == reports[1], reports[4] == reports[1])
	}
}
