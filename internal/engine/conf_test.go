package engine

import (
	"testing"

	"sae/internal/cluster"
	"sae/internal/conf"
	"sae/internal/core"
	"sae/internal/device"
)

func TestApplyConfigDefaults(t *testing.T) {
	opts := testOptions(2, core.Default{})
	if err := ApplyConfig(&opts, conf.New()); err != nil {
		t.Fatal(err)
	}
	if opts.Cluster.CPU.VirtualCores != 32 {
		t.Fatalf("vcores = %d", opts.Cluster.CPU.VirtualCores)
	}
	if opts.BlockSize != 128<<20 {
		t.Fatalf("block size = %d", opts.BlockSize)
	}
	if opts.TaskOverheadCPUSeconds != 0.02 {
		t.Fatalf("overhead = %v", opts.TaskOverheadCPUSeconds)
	}
	if opts.TaskMaxFailures != 4 {
		t.Fatalf("maxFailures = %d", opts.TaskMaxFailures)
	}
	if opts.Speculation {
		t.Fatal("speculation should default off")
	}
	if opts.JobPolicy == nil || opts.JobPolicy.Name() != "FIFO" {
		t.Fatalf("job policy = %v, want FIFO", opts.JobPolicy)
	}
	if opts.BlacklistAfter != 3 {
		t.Fatalf("blacklist streak = %d, want 3", opts.BlacklistAfter)
	}
}

func TestApplyConfigOverrides(t *testing.T) {
	reg := conf.New()
	for k, v := range map[string]string{
		"executor.cores":                            "16",
		"files.maxPartitionBytes":                   "32m",
		"task.maxFailures":                          "2",
		"speculation":                               "true",
		"speculation.quantile":                      "0.9",
		"speculation.multiplier":                    "2.0",
		"scheduler.mode":                            "FAIR",
		"blacklist.stage.maxFailedTasksPerExecutor": "0",
	} {
		if err := reg.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	opts := testOptions(2, core.Default{})
	if err := ApplyConfig(&opts, reg); err != nil {
		t.Fatal(err)
	}
	if opts.Cluster.CPU.VirtualCores != 16 || opts.Cluster.CPU.PhysicalCores != 8 {
		t.Fatalf("cores = %d/%d", opts.Cluster.CPU.VirtualCores, opts.Cluster.CPU.PhysicalCores)
	}
	if opts.BlockSize != 32<<20 {
		t.Fatalf("block = %d", opts.BlockSize)
	}
	if !opts.Speculation || opts.SpeculationQuantile != 0.9 || opts.SpeculationMultiplier != 2.0 {
		t.Fatalf("speculation = %+v", opts)
	}
	if opts.JobPolicy.Name() != "FAIR" {
		t.Fatalf("job policy = %q, want FAIR", opts.JobPolicy.Name())
	}
	if opts.BlacklistAfter != -1 {
		t.Fatalf("blacklist streak = %d, want -1 (disabled)", opts.BlacklistAfter)
	}
	// And the configured engine actually runs with the reduced cores.
	opts.Inputs = []Input{{Name: "in", Size: device.GiB}}
	rep, err := Run(opts, readJob("conf", device.GiB))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].MaxThreadsTotal != 2*16 {
		t.Fatalf("cmax total = %d, want 32", rep.Stages[0].MaxThreadsTotal)
	}
}

func TestApplyConfigBadValues(t *testing.T) {
	reg := conf.New()
	if err := reg.Set("speculation.multiplier", "0.5"); err != nil {
		t.Fatal(err)
	}
	opts := Options{Cluster: cluster.DAS5(2), Policy: core.Default{}}
	if err := ApplyConfig(&opts, reg); err == nil {
		t.Fatal("multiplier ≤ 1 accepted")
	}
	reg2 := conf.New()
	if err := reg2.Set("files.maxPartitionBytes", "banana"); err != nil {
		t.Fatal(err)
	}
	if err := ApplyConfig(&opts, reg2); err == nil {
		t.Fatal("bad size accepted")
	}
	reg3 := conf.New()
	if err := reg3.Set("scheduler.mode", "LIFO"); err != nil {
		t.Fatal(err)
	}
	if err := ApplyConfig(&opts, reg3); err == nil {
		t.Fatal("unknown scheduler mode accepted")
	}
}
