package engine

import (
	"fmt"
	"sort"
	"time"

	"sae/internal/cluster"
	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/psres"
	"sae/internal/sim"
)

// runJob is the driver process: it executes stages in order, assigning
// tasks to executors with locality preference and keeping a slot table
// (limit − inflight per executor) that follows the executors' thread-count
// update messages.
func (e *Engine) runJob(p *sim.Proc, spec *job.JobSpec) (*JobReport, error) {
	report := &JobReport{
		Job:    spec.Name,
		Policy: e.opts.Policy.Name(),
	}
	var startRead, startWrite int64
	for _, n := range e.cluster.Nodes() {
		r, w := n.Disk.Counters()
		startRead += r
		startWrite += w
	}

	for _, stage := range spec.Stages {
		sr, err := e.runStage(p, stage)
		if err != nil {
			return nil, fmt.Errorf("job %s stage %d: %w", spec.Name, stage.ID, err)
		}
		report.Stages = append(report.Stages, sr)
	}

	report.Runtime = p.Now()
	for _, n := range e.cluster.Nodes() {
		r, w := n.Disk.Counters()
		report.DiskReadBytes += r
		report.DiskWriteBytes += w
		report.NetBytes += n.NIC.BytesMoved()
	}
	report.DiskReadBytes -= startRead
	report.DiskWriteBytes -= startWrite
	for _, ex := range e.executors {
		report.Decisions = append(report.Decisions, ex.Decisions())
		report.ThreadLogs = append(report.ThreadLogs, ex.ThreadLog())
	}
	return report, nil
}

// stageState tracks a running stage at the driver.
type stageState struct {
	stage    *job.StageSpec
	pending  []int // task indices not yet assigned
	splits   [][]dfs.Block
	limits   []int
	inflight []int
	done     int

	// Speculation bookkeeping.
	taskDone   []bool
	launchAt   map[int]time.Duration // first launch per task
	lastExec   map[int]int           // latest executor per task
	noExec     map[int]int           // executor to avoid (speculative copies)
	speculated map[int]bool
	durations  []time.Duration
}

func (e *Engine) runStage(p *sim.Proc, stage *job.StageSpec) (StageReport, error) {
	if err := e.resolveTasks(stage); err != nil {
		return StageReport{}, err
	}
	meta := stage.Meta()

	st := &stageState{
		stage:      stage,
		limits:     make([]int, len(e.executors)),
		inflight:   make([]int, len(e.executors)),
		taskDone:   make([]bool, stage.NumTasks),
		launchAt:   make(map[int]time.Duration),
		lastExec:   make(map[int]int),
		noExec:     make(map[int]int),
		speculated: make(map[int]bool),
	}
	if stage.InputFile != "" {
		f, err := e.fs.Open(stage.InputFile)
		if err != nil {
			return StageReport{}, err
		}
		st.splits = dfs.Splits(f, stage.NumTasks)
	}
	for i := 0; i < stage.NumTasks; i++ {
		st.pending = append(st.pending, i)
	}
	for i, ex := range e.executors {
		st.limits[i] = e.opts.Policy.InitialThreads(ex.info, meta)
		ex.inbox.Send(e.cluster.ControlLatency(), execMsg{stageStart: &stageStartMsg{stage: stage}})
	}

	// Stage-boundary snapshots for utilization metrics.
	start := p.Now()
	usage0 := make([]cluster.Usage, e.cluster.Size())
	disk0 := make([]psres.Stats, e.cluster.Size())
	var read0, write0, net0 int64
	for i, n := range e.cluster.Nodes() {
		usage0[i] = n.Usage()
		disk0[i] = n.Disk.Snapshot()
		r, w := n.Disk.Counters()
		read0 += r
		write0 += w
		net0 += n.NIC.BytesMoved()
	}

	stats := make([]ExecutorStageStats, len(e.executors))
	for i, ex := range e.executors {
		stats[i] = ExecutorStageStats{
			Executor:       i,
			Node:           ex.node.ID,
			InitialThreads: st.limits[i],
		}
	}

	e.trace(TraceEvent{Type: TraceStageStart, Stage: stage.ID, Task: -1, Exec: -1,
		Detail: fmt.Sprintf("%s (%d tasks)", stage.Name, stage.NumTasks)})
	for i := range e.executors {
		e.assign(st, i)
	}

	// Event loop: drain completions and thread updates until all tasks
	// are done. Stages with zero tasks complete immediately. Failed
	// attempts are rescheduled up to TaskMaxFailures times (Spark's
	// task.maxFailures), preferably on a different executor via the
	// normal assignment path.
	attempts := make(map[int]int)
	var retries, speculative int
	for st.done < stage.NumTasks {
		msg := e.toDriver.Recv(p)
		switch {
		case msg.taskDone != nil:
			m := msg.taskDone
			if m.metrics.Stage != stage.ID {
				if m.metrics.Stage < stage.ID {
					// A zombie speculative copy from an earlier
					// stage finished; its executor slot frees now.
					continue
				}
				return StageReport{}, fmt.Errorf("completion from future stage %d during stage %d", m.metrics.Stage, stage.ID)
			}
			if m.err != nil {
				e.trace(TraceEvent{Type: TraceTaskFail, Stage: stage.ID, Task: m.metrics.Index, Exec: m.exec, Detail: m.err.Error()})
				attempts[m.metrics.Index]++
				if attempts[m.metrics.Index] >= e.opts.TaskMaxFailures {
					return StageReport{}, fmt.Errorf("task %d failed %d times, last on executor %d: %w",
						m.metrics.Index, attempts[m.metrics.Index], m.exec, m.err)
				}
				retries++
				st.inflight[m.exec]--
				st.pending = append(st.pending, m.metrics.Index)
				for i := range e.executors {
					e.assign(st, (m.exec+1+i)%len(e.executors))
				}
				continue
			}
			st.inflight[m.exec]--
			if st.taskDone[m.metrics.Index] {
				// The other attempt already won the race.
				e.assign(st, m.exec)
				continue
			}
			st.taskDone[m.metrics.Index] = true
			st.done++
			e.trace(TraceEvent{Type: TraceTaskEnd, Stage: stage.ID, Task: m.metrics.Index, Exec: m.exec})
			st.durations = append(st.durations, m.metrics.Duration())
			s := &stats[m.exec]
			s.Tasks++
			if m.metrics.Local {
				s.LocalTasks++
			}
			s.BlockedIO += m.metrics.BlockedIO
			s.Bytes += m.metrics.BytesMoved
			speculative += e.speculate(p, st)
			e.assign(st, m.exec)
		case msg.threads != nil:
			e.trace(TraceEvent{Type: TraceResize, Stage: stage.ID, Task: -1,
				Exec: msg.threads.exec, Threads: msg.threads.threads})
			st.limits[msg.threads.exec] = msg.threads.threads
			e.assign(st, msg.threads.exec)
		}
	}

	e.trace(TraceEvent{Type: TraceStageEnd, Stage: stage.ID, Task: -1, Exec: -1})
	sort.Slice(st.durations, func(i, j int) bool { return st.durations[i] < st.durations[j] })
	sr := StageReport{
		ID:       stage.ID,
		Name:     stage.Name,
		IOMarked: stage.IOMarked(),
		Start:    start,
		End:      p.Now(),
		Retries:  retries,
	}
	sr.Speculative = speculative
	if n := len(st.durations); n > 0 {
		sr.TaskP50 = st.durations[n/2]
		sr.TaskP95 = st.durations[n*95/100]
		sr.TaskMax = st.durations[n-1]
	}
	vcores := e.opts.Cluster.CPU.VirtualCores
	for i, n := range e.cluster.Nodes() {
		u := n.Usage()
		d := n.Disk.Snapshot()
		sr.CPUPercent += cluster.CPUPercent(usage0[i], u, vcores)
		sr.IowaitPercent += cluster.IowaitPercent(usage0[i], u, vcores)
		sr.DiskUtilPercent += cluster.DiskUtilization(disk0[i], d)
		r, w := n.Disk.Counters()
		sr.DiskReadBytes += r
		sr.DiskWriteBytes += w
		sr.NetBytes += n.NIC.BytesMoved()
	}
	nn := float64(e.cluster.Size())
	sr.CPUPercent /= nn
	sr.IowaitPercent /= nn
	sr.DiskUtilPercent /= nn
	sr.DiskReadBytes -= read0
	sr.DiskWriteBytes -= write0
	sr.NetBytes -= net0
	for i, ex := range e.executors {
		stats[i].FinalThreads = ex.limit
		sr.ThreadsTotal += ex.limit
		sr.MaxThreadsTotal += ex.info.MaxThreads
	}
	sr.Execs = stats
	return sr, nil
}

// resolveTasks fills in the stage's task count from its input layout.
func (e *Engine) resolveTasks(stage *job.StageSpec) error {
	if stage.NumTasks > 0 {
		return nil
	}
	if stage.InputFile == "" {
		return fmt.Errorf("stage %d has neither tasks nor input", stage.ID)
	}
	f, err := e.fs.Open(stage.InputFile)
	if err != nil {
		return err
	}
	stage.NumTasks = len(f.Blocks)
	if stage.NumTasks == 0 {
		stage.NumTasks = 1
	}
	return nil
}

// speculate launches backup copies of stragglers once the stage is mostly
// done (Spark's speculation): tasks still running past Multiplier× the
// median completed duration are re-queued for a different executor. Each
// task is speculated at most once. It returns the number of copies queued.
func (e *Engine) speculate(p *sim.Proc, st *stageState) int {
	if !e.opts.Speculation || len(st.durations) == 0 {
		return 0
	}
	if float64(st.done) < e.opts.SpeculationQuantile*float64(st.stage.NumTasks) {
		return 0
	}
	sorted := append([]time.Duration(nil), st.durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	threshold := time.Duration(float64(median) * e.opts.SpeculationMultiplier)
	launched := 0
	for task, at := range st.launchAt {
		if st.taskDone[task] || st.speculated[task] {
			continue
		}
		if p.Now()-at <= threshold {
			continue
		}
		st.speculated[task] = true
		st.noExec[task] = st.lastExec[task]
		st.pending = append(st.pending, task)
		e.trace(TraceEvent{Type: TraceSpeculate, Stage: st.stage.ID, Task: task, Exec: st.lastExec[task]})
		launched++
	}
	if launched > 0 {
		for i := range e.executors {
			e.assign(st, i)
		}
	}
	return launched
}

// assign hands pending tasks to executor i while it has free slots,
// preferring tasks whose DFS split is local to the executor's node and
// honouring speculative-copy executor exclusions.
func (e *Engine) assign(st *stageState, i int) {
	ex := e.executors[i]
	for st.inflight[i] < st.limits[i] && len(st.pending) > 0 {
		pick := -1
		// First pass: local tasks without an exclusion against i.
		for j, t := range st.pending {
			if excl, ok := st.noExec[t]; ok && excl == i {
				continue
			}
			if st.splits != nil {
				blocks := st.splits[t]
				if len(blocks) > 0 && !blocks[0].LocalTo(ex.node.ID) {
					continue
				}
			}
			pick = j
			break
		}
		if pick < 0 {
			// Second pass: any task not excluded from i.
			for j, t := range st.pending {
				if excl, ok := st.noExec[t]; ok && excl == i {
					continue
				}
				pick = j
				break
			}
		}
		if pick < 0 {
			return // everything pending is excluded from this executor
		}
		task := st.pending[pick]
		st.pending = append(st.pending[:pick], st.pending[pick+1:]...)
		st.inflight[i]++
		if _, seen := st.launchAt[task]; !seen {
			st.launchAt[task] = e.k.Now()
		}
		st.lastExec[task] = i
		e.trace(TraceEvent{Type: TraceTaskLaunch, Stage: st.stage.ID, Task: task, Exec: i})

		lm := &launchMsg{stage: st.stage, index: task}
		if st.splits != nil {
			lm.blocks = st.splits[task]
			for _, b := range lm.blocks {
				lm.inputTotal += b.Size
			}
		}
		if len(st.stage.ShuffleFrom) > 0 {
			lm.segments = e.shuffle.reducePlan(st.stage.ShuffleFrom, st.stage.NumTasks, task)
			for _, s := range lm.segments {
				lm.inputTotal += s.bytes
			}
		}
		ex.inbox.Send(e.cluster.ControlLatency(), execMsg{launch: lm})
	}
}
