package engine

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sae/internal/cluster"
	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/psres"
	"sae/internal/sim"
)

// blacklistAfter is how many consecutive task failures on one executor get
// it blacklisted (Spark's spark.blacklist analogue). A success resets the
// streak; a crash/restart clears the blacklist.
const blacklistAfter = 3

// runJob is the driver process: it executes stages in order, assigning
// tasks to executors with locality preference and keeping a slot table
// (limit − inflight per executor) that follows the executors' thread-count
// update messages. The slot table is job-scoped (a scheduler): it tracks
// executor liveness across stages, so an executor lost in stage 2 is still
// gone in stage 3, and lineage-recovery task sets for earlier stages can
// run concurrently with the current stage's.
func (e *Engine) runJob(p *sim.Proc, spec *job.JobSpec) (*JobReport, error) {
	report := &JobReport{
		Job:    spec.Name,
		Policy: e.opts.Policy.Name(),
	}
	var startRead, startWrite int64
	for _, n := range e.cluster.Nodes() {
		r, w := n.Disk.Counters()
		startRead += r
		startWrite += w
	}

	s := &scheduler{
		eng:         e,
		specs:       make(map[int]*job.StageSpec, len(spec.Stages)),
		limits:      make([]int, len(e.executors)),
		inflight:    make([]int, len(e.executors)),
		epochs:      make([]int, len(e.executors)),
		failStreak:  make([]int, len(e.executors)),
		alive:       make([]bool, len(e.executors)),
		blacklisted: make([]bool, len(e.executors)),
		active:      make(map[int]*taskSet),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	for _, stage := range spec.Stages {
		s.specs[stage.ID] = stage
	}
	e.sched = s

	for _, stage := range spec.Stages {
		sr, err := e.runStage(p, stage)
		if err != nil {
			return nil, fmt.Errorf("job %s stage %d: %w", spec.Name, stage.ID, err)
		}
		report.Stages = append(report.Stages, sr)
	}

	report.Runtime = p.Now()
	for _, n := range e.cluster.Nodes() {
		r, w := n.Disk.Counters()
		report.DiskReadBytes += r
		report.DiskWriteBytes += w
		report.NetBytes += n.NIC.BytesMoved()
	}
	report.DiskReadBytes -= startRead
	report.DiskWriteBytes -= startWrite
	report.LostExecutors = s.lostExecs
	report.ResubmittedStages = s.resubmissions
	report.RecoveredBytes = e.shuffle.recoveredBytes()
	for _, ex := range e.executors {
		report.Decisions = append(report.Decisions, ex.Decisions())
		report.ThreadLogs = append(report.ThreadLogs, ex.ThreadLog())
	}
	return report, nil
}

// taskSet tracks one set of runnable tasks at the driver: the current
// stage's full task wave, or a lineage-recovery subset regenerating lost
// map outputs of an earlier stage.
type taskSet struct {
	stage *job.StageSpec
	// recovery marks a resubmitted parent map stage; recovery sets skip
	// speculation and stage statistics, and their executors keep the
	// current stage's controller settings.
	recovery bool
	// only restricts a recovery set to specific task indices.
	only map[int]bool

	pending []int // task indices not yet assigned
	splits  [][]dfs.Block
	total   int
	done    int

	taskDone map[int]bool
	attempts map[int]int // failed attempts per task (abort threshold)
	launches map[int]int // total launches per task (chaos attempt index)
	// copies[task] lists executors currently running an attempt.
	copies map[int][]int

	// Speculation bookkeeping (primary sets only).
	launchAt   map[int]time.Duration // first launch per task
	lastExec   map[int]int           // latest executor per task
	noExec     map[int]int           // executor to avoid (retries, speculative copies)
	speculated map[int]bool
	durations  []time.Duration

	retries     int
	speculative int
}

func newTaskSet(stage *job.StageSpec, recovery bool, only []int) *taskSet {
	ts := &taskSet{
		stage:      stage,
		recovery:   recovery,
		taskDone:   make(map[int]bool),
		attempts:   make(map[int]int),
		launches:   make(map[int]int),
		copies:     make(map[int][]int),
		launchAt:   make(map[int]time.Duration),
		lastExec:   make(map[int]int),
		noExec:     make(map[int]int),
		speculated: make(map[int]bool),
	}
	if recovery {
		ts.only = make(map[int]bool, len(only))
		for _, t := range only {
			ts.only[t] = true
			ts.pending = append(ts.pending, t)
		}
		ts.total = len(only)
	} else {
		for i := 0; i < stage.NumTasks; i++ {
			ts.pending = append(ts.pending, i)
		}
		ts.total = stage.NumTasks
	}
	return ts
}

// contains reports whether task belongs to this set's domain.
func (ts *taskSet) contains(task int) bool {
	if ts.only != nil {
		return ts.only[task]
	}
	return task >= 0 && task < ts.stage.NumTasks
}

// addTask extends a recovery set with another lost task.
func (ts *taskSet) addTask(task int) {
	if ts.only[task] {
		return
	}
	ts.only[task] = true
	ts.pending = append(ts.pending, task)
	ts.total++
}

// inFlight reports whether any attempt of task is currently running.
func (ts *taskSet) inFlight(task int) bool { return len(ts.copies[task]) > 0 }

// isPending reports whether task is queued for assignment.
func (ts *taskSet) isPending(task int) bool {
	for _, t := range ts.pending {
		if t == task {
			return true
		}
	}
	return false
}

// dropCopy removes one running attempt of task on exec.
func (ts *taskSet) dropCopy(task, exec int) {
	execs := ts.copies[task]
	for i, e := range execs {
		if e == exec {
			ts.copies[task] = append(execs[:i], execs[i+1:]...)
			return
		}
	}
}

// tasksOn returns the sorted task indices with a running attempt on exec.
func (ts *taskSet) tasksOn(exec int) []int {
	var tasks []int
	for task, execs := range ts.copies {
		for _, e := range execs {
			if e == exec {
				tasks = append(tasks, task)
				break
			}
		}
	}
	sort.Ints(tasks)
	return tasks
}

// scheduler is the driver's job-scoped state: the per-executor slot table,
// liveness and blacklist tracking, and all currently-running task sets.
type scheduler struct {
	eng   *Engine
	specs map[int]*job.StageSpec

	limits      []int
	inflight    []int
	epochs      []int
	failStreak  []int
	alive       []bool
	blacklisted []bool

	// active maps stage ID → running task set (the current stage's
	// primary set plus any lineage-recovery sets).
	active map[int]*taskSet
	// cur is the current stage's primary set.
	cur *taskSet
	// stats collects the current stage's per-executor statistics.
	stats []ExecutorStageStats

	lostExecs     int
	resubmissions int
	requeues      int
}

func (e *Engine) runStage(p *sim.Proc, stage *job.StageSpec) (StageReport, error) {
	if err := e.resolveTasks(stage); err != nil {
		return StageReport{}, err
	}
	meta := stage.Meta()
	s := e.sched

	ts := newTaskSet(stage, false, nil)
	if stage.InputFile != "" {
		f, err := e.fs.Open(stage.InputFile)
		if err != nil {
			return StageReport{}, err
		}
		ts.splits = dfs.Splits(f, stage.NumTasks)
	}
	s.active[stage.ID] = ts
	s.cur = ts
	for i, ex := range e.executors {
		if !s.alive[i] {
			s.limits[i] = 0
			continue
		}
		s.limits[i] = e.opts.Policy.InitialThreads(ex.info, meta)
		ex.inbox.Send(e.cluster.ControlLatency(), execMsg{stageStart: &stageStartMsg{stage: stage}})
	}

	// Stage-boundary snapshots for utilization metrics.
	start := p.Now()
	usage0 := make([]cluster.Usage, e.cluster.Size())
	disk0 := make([]psres.Stats, e.cluster.Size())
	var read0, write0, net0 int64
	for i, n := range e.cluster.Nodes() {
		usage0[i] = n.Usage()
		disk0[i] = n.Disk.Snapshot()
		r, w := n.Disk.Counters()
		read0 += r
		write0 += w
		net0 += n.NIC.BytesMoved()
	}
	lost0, resub0, requeue0 := s.lostExecs, s.resubmissions, s.requeues
	recovered0 := e.shuffle.recoveredBytes()

	s.stats = make([]ExecutorStageStats, len(e.executors))
	for i, ex := range e.executors {
		s.stats[i] = ExecutorStageStats{
			Executor:       i,
			Node:           ex.node.ID,
			InitialThreads: s.limits[i],
		}
	}

	e.trace(TraceEvent{Type: TraceStageStart, Stage: stage.ID, Task: -1, Exec: -1,
		Detail: fmt.Sprintf("%s (%d tasks)", stage.Name, stage.NumTasks)})
	// Map outputs lost to crashes during earlier stages must be
	// regenerated before this stage's reduce tasks can fetch.
	s.ensureParents(ts)
	s.assignAll()

	// Event loop: drain completions, thread updates and liveness events
	// until the primary wave is done. Stages with zero tasks complete
	// immediately. Failed attempts are rescheduled up to TaskMaxFailures
	// times (Spark's task.maxFailures) on a different executor.
	for ts.done < ts.total {
		msg := e.toDriver.Recv(p)
		var err error
		switch {
		case msg.taskDone != nil:
			err = s.handleTaskDone(p, msg.taskDone)
		case msg.threads != nil:
			s.handleThreads(msg.threads)
		case msg.execLost != nil:
			err = s.handleExecLost(msg.execLost)
		case msg.execJoin != nil:
			s.handleExecJoin(msg.execJoin)
		}
		if err != nil {
			return StageReport{}, err
		}
	}
	delete(s.active, stage.ID)

	e.trace(TraceEvent{Type: TraceStageEnd, Stage: stage.ID, Task: -1, Exec: -1})
	sort.Slice(ts.durations, func(i, j int) bool { return ts.durations[i] < ts.durations[j] })
	sr := StageReport{
		ID:                stage.ID,
		Name:              stage.Name,
		IOMarked:          stage.IOMarked(),
		Start:             start,
		End:               p.Now(),
		Retries:           ts.retries,
		Speculative:       ts.speculative,
		LostExecutors:     s.lostExecs - lost0,
		ResubmittedStages: s.resubmissions - resub0,
		Requeued:          s.requeues - requeue0,
		RecoveredBytes:    e.shuffle.recoveredBytes() - recovered0,
	}
	if n := len(ts.durations); n > 0 {
		sr.TaskP50 = ts.durations[n/2]
		sr.TaskP95 = ts.durations[n*95/100]
		sr.TaskMax = ts.durations[n-1]
	}
	vcores := e.opts.Cluster.CPU.VirtualCores
	for i, n := range e.cluster.Nodes() {
		u := n.Usage()
		d := n.Disk.Snapshot()
		sr.CPUPercent += cluster.CPUPercent(usage0[i], u, vcores)
		sr.IowaitPercent += cluster.IowaitPercent(usage0[i], u, vcores)
		sr.DiskUtilPercent += cluster.DiskUtilization(disk0[i], d)
		r, w := n.Disk.Counters()
		sr.DiskReadBytes += r
		sr.DiskWriteBytes += w
		sr.NetBytes += n.NIC.BytesMoved()
	}
	nn := float64(e.cluster.Size())
	sr.CPUPercent /= nn
	sr.IowaitPercent /= nn
	sr.DiskUtilPercent /= nn
	sr.DiskReadBytes -= read0
	sr.DiskWriteBytes -= write0
	sr.NetBytes -= net0
	for i, ex := range e.executors {
		s.stats[i].FinalThreads = ex.limit
		sr.ThreadsTotal += ex.limit
		sr.MaxThreadsTotal += ex.info.MaxThreads
	}
	sr.Execs = s.stats
	return sr, nil
}

// handleTaskDone routes a completion to its task set by stage ID.
func (s *scheduler) handleTaskDone(p *sim.Proc, m *taskDoneMsg) error {
	e := s.eng
	if m.epoch != s.epochs[m.exec] {
		// A stale incarnation's message; its slots were reclaimed when
		// the loss was detected.
		return nil
	}
	s.inflight[m.exec]--
	ts := s.active[m.metrics.Stage]
	if ts == nil {
		// A zombie from a finished stage (e.g. a losing speculative
		// copy); its executor slot frees now.
		s.assign(m.exec)
		return nil
	}
	idx := m.metrics.Index
	ts.dropCopy(idx, m.exec)

	if m.err != nil {
		e.trace(TraceEvent{Type: TraceTaskFail, Stage: ts.stage.ID, Task: idx, Exec: m.exec, Detail: m.err.Error()})
		if ts.taskDone[idx] {
			// The other attempt already won; nothing to redo.
			s.assign(m.exec)
			return nil
		}
		var ff *fetchFailedError
		if errors.As(m.err, &ff) {
			// Real map output died with a node. Not the task's
			// fault: requeue without charging an attempt, and
			// resubmit the lost parent map tasks (lineage).
			ts.pending = append(ts.pending, idx)
			s.requeues++
			s.ensureParents(ts)
			s.assignAll()
			return nil
		}
		ts.attempts[idx]++
		if ts.attempts[idx] >= e.opts.TaskMaxFailures {
			return fmt.Errorf("task %d failed %d times, last on executor %d: %w",
				idx, ts.attempts[idx], m.exec, m.err)
		}
		ts.retries++
		// Retry genuinely avoids the executor that just failed it.
		ts.noExec[idx] = m.exec
		s.noteFailure(m.exec, ts.stage.ID)
		ts.pending = append(ts.pending, idx)
		for i := range e.executors {
			s.assign((m.exec + 1 + i) % len(e.executors))
		}
		return nil
	}

	s.failStreak[m.exec] = 0
	if ts.taskDone[idx] {
		// The other attempt already won the race.
		s.assign(m.exec)
		return nil
	}
	ts.taskDone[idx] = true
	ts.done++
	e.trace(TraceEvent{Type: TraceTaskEnd, Stage: ts.stage.ID, Task: idx, Exec: m.exec})
	if ts == s.cur {
		ts.durations = append(ts.durations, m.metrics.Duration())
		st := &s.stats[m.exec]
		st.Tasks++
		if m.metrics.Local {
			st.LocalTasks++
		}
		st.BlockedIO += m.metrics.BlockedIO
		st.Bytes += m.metrics.BytesMoved
		ts.speculative += e.speculate(p, ts)
	}
	if ts.recovery && ts.done >= ts.total {
		// The lost map outputs are regenerated; dependents unblock.
		delete(s.active, ts.stage.ID)
		e.trace(TraceEvent{Type: TraceStageEnd, Stage: ts.stage.ID, Task: -1, Exec: -1, Detail: "recovery complete"})
		s.assignAll()
		return nil
	}
	s.assign(m.exec)
	return nil
}

// handleThreads applies a ThreadCountUpdate to the slot table.
func (s *scheduler) handleThreads(m *threadsMsg) {
	if !s.alive[m.exec] || m.epoch != s.epochs[m.exec] {
		return
	}
	stage := -1
	if s.cur != nil {
		stage = s.cur.stage.ID
	}
	s.eng.trace(TraceEvent{Type: TraceResize, Stage: stage, Task: -1, Exec: m.exec, Threads: m.threads})
	s.limits[m.exec] = m.threads
	s.assign(m.exec)
}

// handleExecLost reacts to a crash: reclaim the executor's slots, requeue
// its in-flight attempts, un-complete tasks whose registered map output
// died with the node, and resubmit lost parent outputs other sets depend
// on.
func (s *scheduler) handleExecLost(m *execLostMsg) error {
	e := s.eng
	if !s.alive[m.exec] && s.epochs[m.exec] >= m.epoch {
		return nil
	}
	s.alive[m.exec] = false
	s.epochs[m.exec] = m.epoch
	s.limits[m.exec] = 0
	s.inflight[m.exec] = 0
	s.failStreak[m.exec] = 0
	s.blacklisted[m.exec] = false
	s.lostExecs++

	for _, id := range s.activeIDs() {
		ts := s.active[id]
		// Requeue attempts that were running on the dead executor.
		for _, task := range ts.tasksOn(m.exec) {
			ts.dropCopy(task, m.exec)
			if !ts.taskDone[task] && !ts.inFlight(task) && !ts.isPending(task) {
				ts.pending = append(ts.pending, task)
				s.requeues++
			}
		}
		// Un-complete tasks whose shuffle output lived on the dead
		// node: their results are gone even though they finished.
		for _, task := range e.shuffle.lostTasks(id) {
			if ts.contains(task) && ts.taskDone[task] {
				ts.taskDone[task] = false
				ts.done--
				if !ts.inFlight(task) && !ts.isPending(task) {
					ts.pending = append(ts.pending, task)
				}
				s.requeues++
			}
		}
	}
	// Dependencies of running sets may now have holes in earlier stages.
	for _, id := range s.activeIDs() {
		s.ensureParents(s.active[id])
	}
	if !s.anyAssignable() && !e.restartPending() {
		return fmt.Errorf("all executors lost at %s", e.k.Now())
	}
	s.assignAll()
	return nil
}

// handleExecJoin re-admits a restarted executor: fresh slot count from the
// policy's initial threads (cmin for the dynamic policy) and the current
// stage re-sent so its fresh controller starts a new hill climb.
func (s *scheduler) handleExecJoin(m *execJoinMsg) {
	if s.alive[m.exec] {
		return
	}
	s.alive[m.exec] = true
	s.epochs[m.exec] = m.epoch
	s.failStreak[m.exec] = 0
	s.blacklisted[m.exec] = false
	ex := s.eng.executors[m.exec]
	if s.cur != nil {
		s.limits[m.exec] = s.eng.opts.Policy.InitialThreads(ex.info, s.cur.stage.Meta())
		ex.inbox.Send(s.eng.cluster.ControlLatency(), execMsg{stageStart: &stageStartMsg{stage: s.cur.stage}})
	}
	s.assign(m.exec)
}

// noteFailure advances the executor's failure streak and blacklists it
// after blacklistAfter consecutive failures — provided at least one other
// executor remains assignable.
func (s *scheduler) noteFailure(exec, stage int) {
	s.failStreak[exec]++
	if s.blacklisted[exec] || s.failStreak[exec] < blacklistAfter {
		return
	}
	for i := range s.alive {
		if i != exec && s.alive[i] && !s.blacklisted[i] {
			s.blacklisted[exec] = true
			s.eng.trace(TraceEvent{Type: TraceBlacklist, Stage: stage, Task: -1, Exec: exec,
				Detail: fmt.Sprintf("%d consecutive failures", s.failStreak[exec])})
			return
		}
	}
}

// ensureParents resubmits lost map outputs of every upstream stage ts
// fetches from (recursively — a recovery set can itself depend on an even
// earlier stage). Already-running recovery sets are extended in place.
func (s *scheduler) ensureParents(ts *taskSet) {
	e := s.eng
	for _, parent := range ts.stage.ShuffleFrom {
		lost := e.shuffle.lostTasks(parent)
		if len(lost) == 0 {
			continue
		}
		if ps := s.active[parent]; ps != nil {
			if ps.recovery {
				for _, task := range lost {
					if !ps.contains(task) {
						ps.addTask(task)
					}
				}
			}
			// A non-recovery active parent is the current stage
			// itself; handleExecLost already requeued its lost
			// tasks.
			continue
		}
		spec := s.specs[parent]
		rs := newTaskSet(spec, true, lost)
		if spec.InputFile != "" {
			if f, err := e.fs.Open(spec.InputFile); err == nil {
				rs.splits = dfs.Splits(f, spec.NumTasks)
			}
		}
		s.active[parent] = rs
		s.resubmissions++
		e.trace(TraceEvent{Type: TraceStageResubmit, Stage: parent, Task: -1, Exec: -1,
			Detail: fmt.Sprintf("%d lost map outputs, wanted by stage %d", len(lost), ts.stage.ID)})
		s.ensureParents(rs)
	}
}

// activeIDs returns the running task sets' stage IDs in ascending order,
// so recovery sets (earlier stages) are served before the current wave.
func (s *scheduler) activeIDs() []int {
	ids := make([]int, 0, len(s.active))
	for id := range s.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// blocked reports whether ts must wait for upstream recovery: launching its
// reduce tasks now would plan around the lost outputs and under-fetch.
func (s *scheduler) blocked(ts *taskSet) bool {
	return len(ts.stage.ShuffleFrom) > 0 && s.eng.shuffle.missing(ts.stage.ShuffleFrom)
}

// anyAssignable reports whether any executor can still receive tasks.
func (s *scheduler) anyAssignable() bool {
	for i := range s.alive {
		if s.alive[i] && !s.blacklisted[i] {
			return true
		}
	}
	return false
}

// otherFree reports whether any executor besides i has a free slot.
func (s *scheduler) otherFree(i int) bool {
	for j := range s.alive {
		if j != i && s.alive[j] && !s.blacklisted[j] && s.inflight[j] < s.limits[j] {
			return true
		}
	}
	return false
}

func (s *scheduler) assignAll() {
	for i := range s.eng.executors {
		s.assign(i)
	}
}

// assign hands pending tasks to executor i while it has free slots,
// serving recovery sets before the current wave, preferring tasks whose
// DFS split is local to the executor's node and honouring per-task
// executor exclusions.
func (s *scheduler) assign(i int) {
	if !s.alive[i] || s.blacklisted[i] {
		return
	}
	for s.inflight[i] < s.limits[i] {
		ts, pick := s.pickTask(i)
		if ts == nil {
			return
		}
		s.launch(ts, pick, i)
	}
}

// pickTask selects the next pending task executor i should run: first a
// local non-excluded task, then any non-excluded task, scanning task sets
// in stage order. If no other executor has free slots, exclusions against
// i are cleared rather than letting work stall.
func (s *scheduler) pickTask(i int) (*taskSet, int) {
	ex := s.eng.executors[i]
	for _, id := range s.activeIDs() {
		ts := s.active[id]
		if len(ts.pending) == 0 || s.blocked(ts) {
			continue
		}
		// First pass: local tasks without an exclusion against i.
		for j, t := range ts.pending {
			if excl, ok := ts.noExec[t]; ok && excl == i {
				continue
			}
			if ts.splits != nil {
				blocks := ts.splits[t]
				if len(blocks) > 0 && !blocks[0].LocalTo(ex.node.ID) {
					continue
				}
			}
			return ts, j
		}
		// Second pass: any task not excluded from i.
		for j, t := range ts.pending {
			if excl, ok := ts.noExec[t]; ok && excl == i {
				continue
			}
			return ts, j
		}
	}
	if !s.otherFree(i) {
		// Everything pending is excluded from i, but i is the only
		// executor with free slots: drop the exclusions.
		for _, id := range s.activeIDs() {
			ts := s.active[id]
			if len(ts.pending) == 0 || s.blocked(ts) {
				continue
			}
			for j, t := range ts.pending {
				if excl, ok := ts.noExec[t]; ok && excl == i {
					delete(ts.noExec, t)
					return ts, j
				}
			}
		}
	}
	return nil, -1
}

// launch sends ts.pending[pick] to executor i with a freshly-computed
// input plan.
func (s *scheduler) launch(ts *taskSet, pick, i int) {
	e := s.eng
	ex := e.executors[i]
	task := ts.pending[pick]
	ts.pending = append(ts.pending[:pick], ts.pending[pick+1:]...)
	s.inflight[i]++
	ts.copies[task] = append(ts.copies[task], i)
	if _, seen := ts.launchAt[task]; !seen {
		ts.launchAt[task] = e.k.Now()
	}
	ts.lastExec[task] = i
	detail := ""
	if ts.recovery {
		detail = "recovery"
	}
	e.trace(TraceEvent{Type: TraceTaskLaunch, Stage: ts.stage.ID, Task: task, Exec: i, Detail: detail})

	lm := &launchMsg{stage: ts.stage, index: task, attempt: ts.launches[task], epoch: s.epochs[i]}
	ts.launches[task]++
	if ts.splits != nil {
		lm.blocks = ts.splits[task]
		for _, b := range lm.blocks {
			lm.inputTotal += b.Size
		}
	}
	if len(ts.stage.ShuffleFrom) > 0 {
		lm.segments = e.shuffle.reducePlan(ts.stage.ShuffleFrom, ts.stage.NumTasks, task)
		for _, seg := range lm.segments {
			lm.inputTotal += seg.bytes
		}
	}
	ex.inbox.Send(e.cluster.ControlLatency(), execMsg{launch: lm})
}

// resolveTasks fills in the stage's task count from its input layout.
func (e *Engine) resolveTasks(stage *job.StageSpec) error {
	if stage.NumTasks > 0 {
		return nil
	}
	if stage.InputFile == "" {
		return fmt.Errorf("stage %d has neither tasks nor input", stage.ID)
	}
	f, err := e.fs.Open(stage.InputFile)
	if err != nil {
		return err
	}
	stage.NumTasks = len(f.Blocks)
	if stage.NumTasks == 0 {
		stage.NumTasks = 1
	}
	return nil
}

// speculate launches backup copies of stragglers once the stage is mostly
// done (Spark's speculation): tasks still running past Multiplier× the
// median completed duration are re-queued for a different executor. Each
// task is speculated at most once. It returns the number of copies queued.
// Tasks are scanned in sorted index order — launchAt is a map, and Go's
// random map order would otherwise queue simultaneous stragglers in a
// different order every run, breaking determinism.
func (e *Engine) speculate(p *sim.Proc, ts *taskSet) int {
	if !e.opts.Speculation || len(ts.durations) == 0 {
		return 0
	}
	if float64(ts.done) < e.opts.SpeculationQuantile*float64(ts.stage.NumTasks) {
		return 0
	}
	sorted := append([]time.Duration(nil), ts.durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	threshold := time.Duration(float64(median) * e.opts.SpeculationMultiplier)
	tasks := make([]int, 0, len(ts.launchAt))
	for task := range ts.launchAt {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	launched := 0
	for _, task := range tasks {
		if ts.taskDone[task] || ts.speculated[task] || !ts.inFlight(task) {
			continue
		}
		if p.Now()-ts.launchAt[task] <= threshold {
			continue
		}
		ts.speculated[task] = true
		ts.noExec[task] = ts.lastExec[task]
		ts.pending = append(ts.pending, task)
		e.trace(TraceEvent{Type: TraceSpeculate, Stage: ts.stage.ID, Task: task, Exec: ts.lastExec[task]})
		launched++
	}
	if launched > 0 {
		e.sched.assignAll()
	}
	return launched
}
