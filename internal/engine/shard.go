package engine

// Shard routing: which kernel owns what, and how messages cross shards.
//
// At Shards > 1 the cluster is partitioned into per-node-group kernels under
// a sim.ShardSet. The driver (scheduler, DAG manager, failure detectors,
// autoscaler) lives on shard 0's kernel; every node's devices, executor
// process, heartbeat ticker and task processes live on the node's shard.
// Control messages between the driver and an executor on another shard are
// the only cross-shard interaction, and the control latency is the shard
// lookahead, which is what lets the windowed mode run shards concurrently.
//
// Two run modes (see sim.ShardSet):
//
//   - merged: sequential global-order stepping; byte-identical to Shards=1
//     by construction, and therefore always safe. All traced, audited,
//     metered, autoscaled, shuffling or quiet runs take this path.
//
//   - windowed: shards advance concurrently through conservative lookahead
//     windows. Deterministic (repeated runs are identical) but not
//     byte-identical to serial in general, so a run must qualify: every
//     interaction that would reach across shards at zero latency — shuffle
//     fetches, remote DFS reads, cross-node failover — must be absent from
//     the plan. shardWindowsEligible encodes the exact rule.

import (
	"sae/internal/sim"
)

// kernelOf returns the kernel owning node's events: the node's shard kernel
// at Shards > 1, the engine kernel otherwise.
func (e *Engine) kernelOf(node int) *sim.Kernel {
	if e.ss == nil {
		return e.k
	}
	return e.ss.Shard(e.shardOf[node])
}

// shardFor returns the shard owning node (0 when unsharded — everything
// lives on the one kernel).
func (e *Engine) shardFor(node int) int {
	if e.shardOf == nil {
		return 0
	}
	return e.shardOf[node]
}

// sendDriver posts an executor→driver control message after the control
// latency. In a windowed run a message from a non-zero shard crosses to the
// driver's shard through the coordinator — the latency is served on the
// sending side of the lookahead barrier and the message lands in the
// driver's mailbox in deterministic (time, source shard, source seq) order.
func (e *Engine) sendDriver(srcShard int, msg driverMsg) {
	if e.windowed && srcShard != 0 {
		e.ss.Send(srcShard, 0, e.cluster.ControlLatency(), func() { e.toDriver.Put(msg) })
		return
	}
	e.toDriver.Send(e.cluster.ControlLatency(), msg)
}

// sendExec posts a driver→executor control message after the control
// latency, crossing shards through the coordinator when the run is windowed
// and the executor lives off the driver's shard.
func (e *Engine) sendExec(ex *Executor, msg execMsg) {
	if e.windowed && ex.shard != 0 {
		e.ss.Send(0, ex.shard, e.cluster.ControlLatency(), func() { ex.inbox.Put(msg) })
		return
	}
	ex.inbox.Send(e.cluster.ControlLatency(), msg)
}

// FiredEvents returns the number of events fired across the whole run —
// summed over every shard kernel at Shards > 1.
func (e *Engine) FiredEvents() uint64 {
	if e.ss != nil {
		return e.ss.FiredEvents()
	}
	return e.k.FiredEvents()
}

// Windowed reports whether the last Wait advanced shards concurrently
// (windowed mode) rather than through the merged sequential path.
func (e *Engine) Windowed() bool { return e.windowed }

// shardWindowsEligible reports whether this run may advance shards
// concurrently (windowed mode). The rule is conservative: everything that
// could touch state on another shard at below the control latency — or that
// promises byte-identical output — forces the merged path.
//
//   - Trace, Audit and Metrics promise byte-identical output, which only the
//     merged path preserves.
//   - Quiet plans (no faults) are the golden-scenario surface; they stay
//     merged for the same reason.
//   - Autoscale decommission drains and capacity activation mutate executor
//     state from driver context.
//   - Crashes flip ex.alive, which the driver-side DFS fault model and
//     restart accounting read.
//   - Replica corruption re-routes DFS reads to other nodes' replicas.
//   - Replication > 0 places block replicas on a subset of nodes, so a task
//     may read a remote disk directly.
//   - Shuffle output, shuffle input and DFS output all reach across nodes
//     from task context (fetches, registry updates, output writes).
//
// Slowdowns, partitions and transient task I/O faults are shard-local or
// pure, so grayfail matrices — the perf target — qualify.
func (e *Engine) shardWindowsEligible() bool {
	if e.ss == nil || e.windowedUnsafe() {
		return false
	}
	return true
}

func (e *Engine) windowedUnsafe() bool {
	o := &e.opts
	if o.Trace != nil || o.Audit != nil || o.Metrics != nil || o.Autoscale != nil {
		return true
	}
	// OnSetup hooks typically attach samplers on the driver kernel that
	// read executor and node state engine-wide.
	if o.OnSetup != nil {
		return true
	}
	if o.Replication != 0 {
		return true
	}
	plan := o.Faults
	if plan.Empty() {
		return true
	}
	if len(plan.Crashes) > 0 || plan.CorruptRate > 0 {
		return true
	}
	for _, js := range e.jobs {
		for _, st := range js.spec.Stages {
			if st.ShuffleWriteBytes > 0 || len(st.ShuffleFrom) > 0 || st.OutputFile != "" || st.Work != nil {
				return true
			}
		}
	}
	return false
}
