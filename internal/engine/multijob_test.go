package engine

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"sae/internal/chaos"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine/job"
)

// pipelineJob is a map+reduce job reading its own input file, sized so two
// of them keep a 4-node cluster busy long enough to overlap.
func pipelineJob(name string, blocks int) (*job.JobSpec, Input) {
	in := int64(blocks) * 64 * device.MiB
	shuffle := in / 2
	out := in / 4
	spec := &job.JobSpec{
		Name: name,
		Stages: []*job.StageSpec{
			{ID: 0, Name: "map", InputFile: name + "/in", CPUSecondsPerTask: 0.15,
				ShuffleWriteBytes: shuffle},
			{ID: 1, Name: "reduce", NumTasks: 2 * blocks, ShuffleFrom: []int{0},
				CPUSecondsPerTask: 0.1, OutputFile: name + "/out", OutputBytes: out},
		},
	}
	return spec, Input{Name: name + "/in", Size: in}
}

// runTwoJobs runs two pipeline jobs concurrently and returns their reports.
func runTwoJobs(t *testing.T, opts Options) [2]*JobReport {
	t.Helper()
	specA, inA := pipelineJob("alpha", 16)
	specB, inB := pipelineJob("beta", 16)
	opts.Inputs = append(opts.Inputs, inA, inB)
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := e.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := e.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	var reps [2]*JobReport
	for i, h := range []*JobHandle{ha, hb} {
		rep, err := h.Report()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		reps[i] = rep
	}
	return reps
}

// TestMultiJobDeterminism replays two concurrent jobs under chaos and
// speculation and demands byte-identical reports and traces — the refactor's
// non-negotiable: the multi-job scheduler must stay fully deterministic.
func TestMultiJobDeterminism(t *testing.T) {
	run := func() ([2]*JobReport, []byte) {
		var trace bytes.Buffer
		opts := testOptions(4, core.DefaultDynamic())
		opts.Trace = &trace
		opts.Speculation = true
		opts.Faults = &chaos.Plan{
			Name: "multistorm", Seed: 11,
			TaskFaultRate: 0.05, FetchFaultRate: 0.05,
			Crashes: []chaos.Crash{{Exec: 1, At: 20 * time.Second, RestartAfter: 30 * time.Second}},
		}
		return runTwoJobs(t, opts), trace.Bytes()
	}
	reps1, trace1 := run()
	reps2, trace2 := run()
	for i := range reps1 {
		if !reflect.DeepEqual(reps1[i], reps2[i]) {
			t.Errorf("job %d report differs between identical runs:\n%v\nvs\n%v",
				i, reps1[i], reps2[i])
		}
	}
	if !bytes.Equal(trace1, trace2) {
		t.Error("traces differ between identical runs")
	}
}

// TestPolicyConservation is the property check: whichever inter-job policy
// carves up the executor slots, each job still runs every task and moves
// every byte exactly once.
func TestPolicyConservation(t *testing.T) {
	var got [2][2]*JobReport
	for i, pol := range []InterJobPolicy{FIFO{}, Fair{}} {
		opts := testOptions(4, core.Default{})
		opts.JobPolicy = pol
		got[i] = runTwoJobs(t, opts)
	}
	for j := 0; j < 2; j++ {
		fifo, fair := got[0][j], got[1][j]
		if fifo.Sched != "FIFO" || fair.Sched != "FAIR" {
			t.Fatalf("job %d: Sched = %q / %q", j, fifo.Sched, fair.Sched)
		}
		for s := range fifo.Stages {
			tf, tr := 0, 0
			for _, e := range fifo.Stages[s].Execs {
				tf += e.Tasks
			}
			for _, e := range fair.Stages[s].Execs {
				tr += e.Tasks
			}
			if tf != tr {
				t.Errorf("job %d stage %d: %d tasks under FIFO, %d under FAIR", j, s, tf, tr)
			}
		}
		if fifo.DiskReadBytes != fair.DiskReadBytes || fifo.DiskWriteBytes != fair.DiskWriteBytes {
			t.Errorf("job %d: I/O differs across policies: read %d/%d write %d/%d",
				j, fifo.DiskReadBytes, fair.DiskReadBytes, fifo.DiskWriteBytes, fair.DiskWriteBytes)
		}
	}
}

// TestPerJobIOAttribution pins the per-job I/O accounting: with two jobs
// sharing the cluster, each job's report must count exactly its own bytes —
// input + shuffle fetch on the read side, shuffle spill + output on the
// write side — not the cluster-wide deltas of the old single-job driver.
func TestPerJobIOAttribution(t *testing.T) {
	reps := runTwoJobs(t, testOptions(4, core.Default{}))
	for i, rep := range reps {
		in := int64(16) * 64 * device.MiB
		shuffle, out := in/2, in/4
		if rep.DiskReadBytes != in+shuffle {
			t.Errorf("job %d disk read = %d, want %d", i, rep.DiskReadBytes, in+shuffle)
		}
		if rep.DiskWriteBytes != shuffle+out {
			t.Errorf("job %d disk write = %d, want %d", i, rep.DiskWriteBytes, shuffle+out)
		}
	}
}

// diamondJob has two independent map stages feeding one join stage — the
// smallest DAG where concurrent stage execution is observable.
func diamondJob(dep bool) (*job.JobSpec, []Input) {
	in := int64(8) * 64 * device.MiB
	left := &job.StageSpec{ID: 0, Name: "left", InputFile: "d/left",
		CPUSecondsPerTask: 0.2, ShuffleWriteBytes: in / 2}
	right := &job.StageSpec{ID: 1, Name: "right", InputFile: "d/right",
		CPUSecondsPerTask: 0.2, ShuffleWriteBytes: in / 2}
	if dep {
		right.DependsOn = []int{0}
	}
	join := &job.StageSpec{ID: 2, Name: "join", NumTasks: 16, ShuffleFrom: []int{0, 1},
		CPUSecondsPerTask: 0.1}
	spec := &job.JobSpec{Name: "diamond", Stages: []*job.StageSpec{left, right, join}}
	return spec, []Input{{Name: "d/left", Size: in}, {Name: "d/right", Size: in}}
}

// TestDAGRunsIndependentStagesConcurrently checks that sibling stages with
// no edge between them overlap on the cluster, and that the join still
// waits for both.
func TestDAGRunsIndependentStagesConcurrently(t *testing.T) {
	spec, inputs := diamondJob(false)
	opts := testOptions(4, core.Default{})
	opts.Inputs = inputs
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	l, r, j := rep.Stages[0], rep.Stages[1], rep.Stages[2]
	if l.Start != r.Start {
		t.Errorf("independent root stages started at %v and %v, want together", l.Start, r.Start)
	}
	if r.Start >= l.End {
		t.Errorf("stage windows do not overlap: right starts %v, left ends %v", r.Start, l.End)
	}
	if j.Start < l.End || j.Start < r.End {
		t.Errorf("join started %v before both parents ended (%v, %v)", j.Start, l.End, r.End)
	}
}

// TestDependsOnSerializesStages checks that a control-dependency edge (no
// shuffle) forces strict ordering.
func TestDependsOnSerializesStages(t *testing.T) {
	spec, inputs := diamondJob(true)
	opts := testOptions(4, core.Default{})
	opts.Inputs = inputs
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[1].Start < rep.Stages[0].End {
		t.Errorf("DependsOn violated: stage 1 started %v before stage 0 ended %v",
			rep.Stages[1].Start, rep.Stages[0].End)
	}
}

// TestFairSharePrefersLightJobs pits a long job against a short one
// submitted together: under FIFO the short job queues behind the long one's
// task backlog; under Fair it gets its share of slots and finishes earlier.
func TestFairSharePrefersLightJobs(t *testing.T) {
	shortRuntime := func(pol InterJobPolicy) time.Duration {
		long, inLong := pipelineJob("long", 64)
		short, inShort := pipelineJob("short", 4)
		// Static{4} caps the cluster at 16 slots so the long job's task
		// backlog actually queues — with ample slots the policies tie.
		opts := testOptions(4, core.Static{IOThreads: 4})
		opts.JobPolicy = pol
		opts.Inputs = []Input{inLong, inShort}
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Submit(long); err != nil {
			t.Fatal(err)
		}
		h, err := e.Submit(short)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Wait(); err != nil {
			t.Fatal(err)
		}
		rep, err := h.Report()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Runtime
	}
	fifo := shortRuntime(FIFO{})
	fair := shortRuntime(Fair{})
	if fair >= fifo {
		t.Errorf("short job: %v under FAIR, %v under FIFO — fair share should help it", fair, fifo)
	}
}

// TestSubmitAtStaggersAdmission checks that a job submitted mid-run is
// admitted at its submission time and its runtime is measured from there.
func TestSubmitAtStaggersAdmission(t *testing.T) {
	specA, inA := pipelineJob("alpha", 16)
	specB, inB := pipelineJob("beta", 4)
	opts := testOptions(4, core.Default{})
	opts.Inputs = []Input{inA, inB}
	var trace bytes.Buffer
	opts.Trace = &trace
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(specA); err != nil {
		t.Fatal(err)
	}
	late := 30 * time.Second
	h, err := e.SubmitAt(late, specB)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	rep, err := h.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages[0].Start < late {
		t.Errorf("late job started at %v, before its submission time %v", rep.Stages[0].Start, late)
	}
	if got := rep.Stages[len(rep.Stages)-1].End - late; got != rep.Runtime {
		t.Errorf("runtime = %v, want measured from submission: %v", rep.Runtime, got)
	}
	events, err := ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	starts := map[int]float64{}
	for _, ev := range events {
		if ev.Type == TraceJobStart {
			starts[ev.Job] = ev.At
		}
	}
	if len(starts) != 2 || starts[1] != late.Seconds() {
		t.Errorf("job_start events = %v, want job 1 at %v", starts, late.Seconds())
	}
}

// TestJobFailureIsolated checks that one job aborting does not take down
// its neighbours on the same engine.
func TestJobFailureIsolated(t *testing.T) {
	good, inGood := pipelineJob("good", 8)
	bad := &job.JobSpec{
		Name: "bad",
		Stages: []*job.StageSpec{{
			ID: 0, Name: "explode", NumTasks: 8,
			Work: func(task int) job.Work {
				return job.WorkFunc(func(tc job.TaskContext) error {
					tc.Compute(0.05)
					return fmt.Errorf("boom")
				})
			},
		}},
	}
	opts := testOptions(4, core.Default{})
	opts.Inputs = []Input{inGood}
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := e.Submit(good)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := e.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatalf("engine failed wholesale: %v", err)
	}
	if _, err := hb.Report(); err == nil {
		t.Fatal("failing job reported success")
	}
	rep, err := hg.Report()
	if err != nil {
		t.Fatalf("healthy job dragged down by its neighbour: %v", err)
	}
	if rep.Runtime <= 0 {
		t.Fatal("healthy job has no runtime")
	}
}
