package engine

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"sae/internal/chaos"
	"sae/internal/conf"
	"sae/internal/core"
	"sae/internal/engine/job"
)

// grayOptions tightens the heartbeat protocol so gray-failure scenarios
// play out within the short test jobs: beats every second, suspicion after
// two silent beats, loss declared at six seconds of silence.
func grayOptions(nodes int, policy job.Policy) Options {
	opts := testOptions(nodes, policy)
	opts.HeartbeatInterval = time.Second
	opts.HeartbeatMissedBeats = 2
	opts.HeartbeatTimeout = 6 * time.Second
	return opts
}

// TestHeartbeatFalsePositiveFencesExecutor drives the detector through its
// false-positive path: executor 1 is partitioned (heartbeats drop, its
// tasks keep running) for longer than the heartbeat timeout, so the driver
// suspects it, declares it lost and requeues its work. When the partition
// heals, the next beat from the declared-lost incarnation must fence it —
// order it onto a fresh epoch — and re-admit it through the join path, with
// no task result double-counted and no slot double-released.
func TestHeartbeatFalsePositiveFencesExecutor(t *testing.T) {
	quiet := calibrate(t, core.Static{IOThreads: 4})
	partAt := quiet.Stages[0].End / 4

	run := func() (*JobReport, []byte) {
		var trace bytes.Buffer
		spec, inputs := twoStageJob()
		opts := grayOptions(4, core.Static{IOThreads: 4})
		opts.Inputs = inputs
		opts.Trace = &trace
		opts.Faults = chaos.PartitionAt(1, partAt, 10*time.Second)
		rep, err := Run(opts, spec)
		if err != nil {
			t.Fatalf("job did not survive the partition false positive: %v", err)
		}
		return rep, trace.Bytes()
	}
	rep, traceA := run()

	if rep.Suspected == 0 {
		t.Fatal("partition raised no heartbeat suspicion")
	}
	if rep.LostExecutors != 1 {
		t.Fatalf("LostExecutors = %d, want 1 (the false positive)", rep.LostExecutors)
	}
	if rep.Fenced != 1 {
		t.Fatalf("Fenced = %d, want 1", rep.Fenced)
	}
	events, err := ReadTrace(bytes.NewReader(traceA))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var lostAt, fenceAt float64
	for _, ev := range events {
		if ev.Exec != 1 {
			continue
		}
		switch ev.Type {
		case TraceExecSuspect, TraceExecLost, TraceExecFence, TraceExecCrash:
			seen[ev.Type] = true
			if ev.Type == TraceExecLost {
				lostAt = ev.At
			}
			if ev.Type == TraceExecFence {
				fenceAt = ev.At
			}
		}
	}
	for _, want := range []string{TraceExecSuspect, TraceExecLost, TraceExecFence} {
		if !seen[want] {
			t.Fatalf("trace missing %s for the partitioned executor", want)
		}
	}
	if seen[TraceExecCrash] {
		t.Fatal("false positive traced as a physical crash")
	}
	if fenceAt <= lostAt {
		t.Fatalf("fence at %v not after loss declaration at %v", fenceAt, lostAt)
	}
	// Every task counted exactly once despite the requeue + late results
	// from the declared-lost incarnation (its reports are dropped by the
	// aliveness filter, so accepted completions per stage == NumTasks).
	for _, st := range rep.Stages {
		var tasks int
		for _, e := range st.Execs {
			tasks += e.Tasks
		}
		if tasks != 32 {
			t.Fatalf("stage %d accepted completions = %d, want exactly 32", st.ID, tasks)
		}
	}

	// The false-positive path is fully deterministic.
	rep2, traceB := run()
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatalf("reports differ across identical runs:\nA: %+v\nB: %+v", rep, rep2)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("trace streams differ across identical runs")
	}
}

// TestCrashDetectedByHeartbeatSilence checks that with the oracle gone, a
// physical crash is still detected — via heartbeat silence — and that
// detection happens at the configured timeout, not instantly.
func TestCrashDetectedByHeartbeatSilence(t *testing.T) {
	quiet := calibrate(t, core.Static{IOThreads: 4})
	crashAt := quiet.Stages[0].End * 2 / 5

	var trace bytes.Buffer
	spec, inputs := twoStageJob()
	opts := grayOptions(4, core.Static{IOThreads: 4})
	opts.Inputs = inputs
	opts.Trace = &trace
	opts.Faults = chaos.CrashAt(1, crashAt)
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatalf("job did not recover from the crash: %v", err)
	}
	if rep.LostExecutors != 1 {
		t.Fatalf("LostExecutors = %d, want 1", rep.LostExecutors)
	}
	events, err := ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	var crashT, lostT float64 = -1, -1
	for _, ev := range events {
		if ev.Exec != 1 {
			continue
		}
		if ev.Type == TraceExecCrash && crashT < 0 {
			crashT = ev.At
		}
		if ev.Type == TraceExecLost && lostT < 0 {
			lostT = ev.At
		}
	}
	if crashT < 0 || lostT < 0 {
		t.Fatalf("missing crash (%v) or loss (%v) event", crashT, lostT)
	}
	// Loss is declared only after the heartbeat timeout elapses — with a
	// beat accepted up to one interval before the crash, the declaration
	// lands in (timeout - interval, timeout + slack] after the crash.
	gap := time.Duration(float64(time.Second) * (lostT - crashT))
	if gap < opts.HeartbeatTimeout-opts.HeartbeatInterval {
		t.Fatalf("loss declared %v after crash, before the heartbeat timeout %v could elapse",
			gap, opts.HeartbeatTimeout)
	}
	if gap > opts.HeartbeatTimeout+2*time.Second {
		t.Fatalf("loss declared %v after crash, long past the heartbeat timeout %v", gap, opts.HeartbeatTimeout)
	}
}

// TestChaosMatrixDeterminism runs the new gray-failure chaos modes — node
// slowdown, network partition, replica corruption, and all three combined —
// and requires byte-identical reports and traces across repeated runs of
// each, with the job completing every time.
func TestChaosMatrixDeterminism(t *testing.T) {
	quiet := calibrate(t, core.DefaultDynamic())
	at := quiet.Runtime / 4
	plans := []*chaos.Plan{
		chaos.SlowAt(1, at, 4),
		chaos.PartitionAt(2, at, 10*time.Second),
		chaos.Corrupt(0.3, 11),
		{
			Name:        "graymix",
			Seed:        11,
			Slows:       []chaos.Slow{{Exec: 1, At: at, Factor: 4}},
			Partitions:  []chaos.Partition{{Exec: 2, At: at, Duration: 10 * time.Second}},
			CorruptRate: 0.3,
		},
	}
	for _, plan := range plans {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			run := func() (*JobReport, []byte) {
				var trace bytes.Buffer
				spec, inputs := twoStageJob()
				opts := grayOptions(4, core.DefaultDynamic())
				opts.Inputs = inputs
				opts.Trace = &trace
				opts.Faults = plan
				rep, err := Run(opts, spec)
				if err != nil {
					t.Fatalf("job failed under %s: %v", plan.Name, err)
				}
				return rep, trace.Bytes()
			}
			repA, traceA := run()
			repB, traceB := run()
			if !reflect.DeepEqual(repA, repB) {
				t.Fatalf("reports differ across identical %s runs", plan.Name)
			}
			if !bytes.Equal(traceA, traceB) {
				t.Fatalf("traces differ across identical %s runs", plan.Name)
			}
			if plan.CorruptRate > 0 && repA.ChecksumFailovers == 0 {
				t.Fatalf("%s: corruption rate %g produced no checksum failovers", plan.Name, plan.CorruptRate)
			}
		})
	}
}

// TestFetchRetriesAbsorbTransients checks the wired
// shuffle.io.maxRetries/retryWait path: with retries enabled, injected
// transient fetch failures are mostly absorbed by backoff-and-retry instead
// of surfacing as failed attempts.
func TestFetchRetriesAbsorbTransients(t *testing.T) {
	spec, inputs := twoStageJob()
	opts := testOptions(4, core.Default{})
	opts.Inputs = inputs
	opts.Faults = &chaos.Plan{Name: "fetchstorm", Seed: 5, FetchFaultRate: 0.4}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatalf("fetch storm aborted the job: %v", err)
	}
	if rep.FetchRetries == 0 {
		t.Fatal("40% fetch-fault rate produced no bounded retries")
	}

	// The same storm with retries disabled must surface more failed
	// attempts at the scheduler.
	specB, inputsB := twoStageJob()
	optsB := testOptions(4, core.Default{})
	optsB.Inputs = inputsB
	optsB.FetchMaxRetries = -1
	optsB.Faults = &chaos.Plan{Name: "fetchstorm", Seed: 5, FetchFaultRate: 0.4}
	repB, err := Run(optsB, specB)
	if err != nil {
		t.Fatalf("fetch storm without retries aborted the job: %v", err)
	}
	if repB.FetchRetries != 0 {
		t.Fatalf("retries disabled but FetchRetries = %d", repB.FetchRetries)
	}
	retries := func(r *JobReport) int {
		n := 0
		for _, st := range r.Stages {
			n += st.Retries
		}
		return n
	}
	if retries(rep) >= retries(repB) {
		t.Fatalf("bounded fetch retries did not reduce failed attempts: %d with vs %d without",
			retries(rep), retries(repB))
	}
}

// TestHeartbeatConfigWiring checks executor.heartbeatInterval,
// shuffle.io.maxRetries and shuffle.io.retryWait flow from the registry
// into the engine options.
func TestHeartbeatConfigWiring(t *testing.T) {
	newTestRegistry := func(t *testing.T, kv map[string]string) *conf.Registry {
		t.Helper()
		reg := conf.New()
		for k, v := range kv {
			if err := reg.Set(k, v); err != nil {
				t.Fatal(err)
			}
		}
		return reg
	}
	reg := newTestRegistry(t, map[string]string{
		"executor.heartbeatInterval": "2s",
		"shuffle.io.maxRetries":      "7",
		"shuffle.io.retryWait":       "250ms",
	})
	var opts Options
	if err := ApplyConfig(&opts, reg); err != nil {
		t.Fatal(err)
	}
	if opts.HeartbeatInterval != 2*time.Second {
		t.Fatalf("HeartbeatInterval = %v, want 2s", opts.HeartbeatInterval)
	}
	if opts.FetchMaxRetries != 7 {
		t.Fatalf("FetchMaxRetries = %d, want 7", opts.FetchMaxRetries)
	}
	if opts.FetchRetryWait != 250*time.Millisecond {
		t.Fatalf("FetchRetryWait = %v, want 250ms", opts.FetchRetryWait)
	}

	reg = newTestRegistry(t, map[string]string{"shuffle.io.maxRetries": "0"})
	opts = Options{}
	if err := ApplyConfig(&opts, reg); err != nil {
		t.Fatal(err)
	}
	if opts.FetchMaxRetries != -1 {
		t.Fatalf("maxRetries=0 should disable retries (-1), got %d", opts.FetchMaxRetries)
	}
}

// TestQuietTraceDeterminism is the quiet-plan (no faults) counterpart of the
// chaos matrix: engine traces must be byte-identical across repeated runs,
// and a run executing concurrently with other engines on separate goroutines
// — the sae-exp -parallel path — must produce the very same bytes, because
// every run owns its entire simulated world.
func TestQuietTraceDeterminism(t *testing.T) {
	run := func() (*JobReport, []byte, error) {
		var trace bytes.Buffer
		spec, inputs := twoStageJob()
		opts := grayOptions(4, core.DefaultDynamic())
		opts.Inputs = inputs
		opts.Trace = &trace
		rep, err := Run(opts, spec)
		return rep, trace.Bytes(), err
	}
	repA, traceA, errA := run()
	repB, traceB, errB := run()
	if errA != nil || errB != nil {
		t.Fatalf("quiet run failed: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Fatal("reports differ across identical quiet runs")
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("traces differ across identical quiet runs")
	}
	// Four engines at once, each on its own goroutine with its own kernel.
	const n = 4
	traces := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, tr, err := run()
			if err != nil {
				t.Errorf("concurrent quiet run %d failed: %v", i, err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i, tr := range traces {
		if tr == nil {
			continue
		}
		if !bytes.Equal(tr, traceA) {
			t.Fatalf("concurrent run %d trace differs from solo run", i)
		}
	}
}
