package engine

import (
	"fmt"

	"sae/internal/conf"
)

// ApplyConfig folds the wired parameters of a configuration registry into
// the engine options, mirroring how the paper's drop-in executor honours
// the stock Spark configuration surface (Table 1). Only parameters marked
// Wired in the catalogue have an effect; everything else is accepted for
// compatibility.
func ApplyConfig(opts *Options, reg *conf.Registry) error {
	cores, err := reg.GetInt("executor.cores")
	if err != nil {
		return err
	}
	if cores > 0 {
		// Virtual cores are SMT pairs over physical cores, as on the
		// paper's nodes (32 virtual / 16 physical).
		opts.Cluster.CPU.VirtualCores = cores
		opts.Cluster.CPU.PhysicalCores = max(1, cores/2)
	}
	if opts.BlockSize, err = reg.GetBytes("files.maxPartitionBytes"); err != nil {
		return err
	}
	overhead, err := reg.GetInt("executor.taskOverheadMillis")
	if err != nil {
		return err
	}
	opts.TaskOverheadCPUSeconds = float64(overhead) / 1000
	if opts.TaskMaxFailures, err = reg.GetInt("task.maxFailures"); err != nil {
		return err
	}
	if opts.Speculation, err = reg.GetBool("speculation"); err != nil {
		return err
	}
	if opts.SpeculationQuantile, err = reg.GetFloat("speculation.quantile"); err != nil {
		return err
	}
	if opts.SpeculationMultiplier, err = reg.GetFloat("speculation.multiplier"); err != nil {
		return err
	}
	if opts.SpeculationMultiplier <= 1 {
		return fmt.Errorf("engine: speculation.multiplier must exceed 1, got %v", opts.SpeculationMultiplier)
	}
	mode, err := reg.Get("scheduler.mode")
	if err != nil {
		return err
	}
	switch mode {
	case "FIFO":
		opts.JobPolicy = FIFO{}
	case "FAIR":
		opts.JobPolicy = Fair{}
	default:
		return fmt.Errorf("engine: scheduler.mode must be FIFO or FAIR, got %q", mode)
	}
	streak, err := reg.GetInt("blacklist.stage.maxFailedTasksPerExecutor")
	if err != nil {
		return err
	}
	if streak <= 0 {
		opts.BlacklistAfter = -1 // disabled
	} else {
		opts.BlacklistAfter = streak
	}
	if opts.HeartbeatInterval, err = reg.GetDuration("executor.heartbeatInterval"); err != nil {
		return err
	}
	if opts.HeartbeatInterval <= 0 {
		return fmt.Errorf("engine: executor.heartbeatInterval must be positive, got %v", opts.HeartbeatInterval)
	}
	retries, err := reg.GetInt("shuffle.io.maxRetries")
	if err != nil {
		return err
	}
	if retries <= 0 {
		opts.FetchMaxRetries = -1 // disabled
	} else {
		opts.FetchMaxRetries = retries
	}
	if opts.FetchRetryWait, err = reg.GetDuration("shuffle.io.retryWait"); err != nil {
		return err
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
