package engine

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"sae/internal/core"
	"sae/internal/telemetry"
)

// telemetryScenario runs a fixed autoscaling job with a fresh registry and
// returns the Prometheus and JSONL exports plus the report runtime.
func telemetryScenario(t *testing.T) (prom, jsonl []byte, runtime time.Duration) {
	t.Helper()
	spec, in := pipelineJob("teljob", 24)
	opts := testOptions(4, core.Default{})
	opts.Inputs = []Input{in}
	opts.Autoscale = &AutoscaleConfig{
		Policy:          &scriptPolicy{targets: []int{2, 4}},
		Interval:        5 * time.Second,
		InitialNodes:    2,
		MinNodes:        2,
		ProvisionDelay:  2 * time.Second,
		ScaleUpCooldown: time.Second,
	}
	reg := telemetry.NewRegistry()
	opts.Metrics = reg
	opts.MetricsInterval = time.Second
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	var pb, jb bytes.Buffer
	if err := reg.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), jb.Bytes(), rep.Runtime
}

// TestTelemetryExportsDeterministic is the PR's acceptance gate in
// miniature: the same seed and scenario must export byte-identical
// Prometheus and JSONL dumps on every run.
func TestTelemetryExportsDeterministic(t *testing.T) {
	prom1, jsonl1, rt1 := telemetryScenario(t)
	prom2, jsonl2, rt2 := telemetryScenario(t)
	if rt1 != rt2 {
		t.Fatalf("runtimes differ: %s vs %s", rt1, rt2)
	}
	if !bytes.Equal(prom1, prom2) {
		t.Error("Prometheus exports differ between identical runs")
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Error("JSONL exports differ between identical runs")
	}
	if len(prom1) == 0 || len(jsonl1) == 0 {
		t.Fatal("exports are empty")
	}
}

// TestTelemetryParallelRunsIdentical runs the scenario on concurrent
// goroutines — each with its own kernel and registry, as -parallel sweeps
// do — and checks every copy exports the same bytes as a sequential run.
func TestTelemetryParallelRunsIdentical(t *testing.T) {
	wantProm, wantJSONL, _ := telemetryScenario(t)
	const n = 4
	proms := make([][]byte, n)
	jsonls := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			proms[i], jsonls[i], _ = telemetryScenario(t)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if !bytes.Equal(proms[i], wantProm) {
			t.Errorf("goroutine %d Prometheus export differs from sequential run", i)
		}
		if !bytes.Equal(jsonls[i], wantJSONL) {
			t.Errorf("goroutine %d JSONL export differs from sequential run", i)
		}
	}
}

// TestMetricsDoNotPerturbTrace attaches a registry and checks the v1 event
// log stays byte-identical to a run without telemetry: observation must not
// change the simulation.
func TestMetricsDoNotPerturbTrace(t *testing.T) {
	runTrace := func(withMetrics bool) []byte {
		spec, in := pipelineJob("quietjob", 16)
		opts := testOptions(4, core.Default{})
		opts.Inputs = []Input{in}
		var buf bytes.Buffer
		opts.Trace = &buf
		if withMetrics {
			opts.Metrics = telemetry.NewRegistry()
			opts.MetricsInterval = time.Second
		}
		if _, err := Run(opts, spec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	bare := runTrace(false)
	observed := runTrace(true)
	if !bytes.Equal(bare, observed) {
		t.Error("attaching a metrics registry changed the event log")
	}
}

// TestTelemetryCoreSeries spot-checks that the registry's series carry the
// values the run report agrees with.
func TestTelemetryCoreSeries(t *testing.T) {
	spec, in := pipelineJob("seriesjob", 16)
	opts := testOptions(4, core.Default{})
	opts.Inputs = []Input{in}
	reg := telemetry.NewRegistry()
	opts.Metrics = reg
	opts.MetricsInterval = time.Second
	if _, err := Run(opts, spec); err != nil {
		t.Fatal(err)
	}
	tasks := 16 + 32 // map blocks + 2*blocks reduce tasks
	if v, ok := reg.Value("sae_tasks_done_total"); !ok || v != float64(tasks) {
		t.Errorf("sae_tasks_done_total = %v (ok=%v), want %d", v, ok, tasks)
	}
	if v, ok := reg.Value("sae_jobs_completed"); !ok || v != 1 {
		t.Errorf("sae_jobs_completed = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := reg.Value("sae_jobs_running"); !ok || v != 0 {
		t.Errorf("sae_jobs_running = %v (ok=%v), want 0 after Wait", v, ok)
	}
	if v, ok := reg.Value("sae_events_total", "type", "task_launch"); !ok || v < float64(tasks) {
		t.Errorf("sae_events_total{type=task_launch} = %v (ok=%v), want >= %d", v, ok, tasks)
	}
	// The final sample lands at the end of the run, so the queue-delay
	// histogram must have seen every task that ever waited.
	series, ok := reg.Series("sae_scheduler_queue_delay_seconds_count")
	if !ok || len(series.Points) == 0 {
		t.Fatalf("queue delay histogram missing (ok=%v)", ok)
	}
	last := series.Points[len(series.Points)-1]
	if last.Value <= 0 {
		t.Errorf("queue delay histogram empty at end of run: %+v", last)
	}
}
