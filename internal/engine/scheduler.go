package engine

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sae/internal/cluster"
	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/psres"
)

// setKey identifies one task set cluster-wide: stage IDs are only unique
// within a job, so everything shared between jobs (task sets, shuffle
// registry, executor controllers) is keyed by (job, stage).
type setKey struct {
	job   int
	stage int
}

// JobSnapshot is the scheduler's view of one runnable job, handed to the
// inter-job policy for ordering decisions.
type JobSnapshot struct {
	// ID is the job's submission index.
	ID int
	// SubmittedAt is the job's admission time on the sim clock.
	SubmittedAt time.Duration
	// Running counts the job's in-flight task attempts across the
	// cluster — its current share of the executor slots.
	Running int
	// Priority is the job's tenant priority (higher is more urgent; only
	// the Priority policy consults it).
	Priority int
}

// InterJobPolicy orders jobs competing for executor slots, like Spark's
// FIFO/FAIR scheduler pools. Before must be a strict total order (break
// ties by ID) so scheduling stays deterministic.
type InterJobPolicy interface {
	Name() string
	// Before reports whether job a should be offered free slots before
	// job b.
	Before(a, b JobSnapshot) bool
}

// FIFO serves jobs strictly in submission order: an earlier job takes every
// slot it can use before a later job sees any.
type FIFO struct{}

// Name implements InterJobPolicy.
func (FIFO) Name() string { return "FIFO" }

// Before implements InterJobPolicy.
func (FIFO) Before(a, b JobSnapshot) bool {
	if a.SubmittedAt != b.SubmittedAt {
		return a.SubmittedAt < b.SubmittedAt
	}
	return a.ID < b.ID
}

// Fair offers free slots to the job with the fewest running tasks, evening
// out each job's share of the executor pool (Spark's FAIR pools with equal
// weights).
type Fair struct{}

// Name implements InterJobPolicy.
func (Fair) Name() string { return "FAIR" }

// Before implements InterJobPolicy.
func (Fair) Before(a, b JobSnapshot) bool {
	if a.Running != b.Running {
		return a.Running < b.Running
	}
	return a.ID < b.ID
}

// Priority serves the highest-priority job first (tenant classes carry a
// priority), falling back to FIFO order within a priority level.
type Priority struct{}

// Name implements InterJobPolicy.
func (Priority) Name() string { return "PRIORITY" }

// Before implements InterJobPolicy.
func (Priority) Before(a, b JobSnapshot) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return FIFO{}.Before(a, b)
}

// taskSet tracks one set of runnable tasks at the driver: a stage's
// primary task wave, or a lineage-recovery subset regenerating lost map
// outputs of an earlier stage.
type taskSet struct {
	key   setKey
	js    *jobState
	stage *job.StageSpec
	// recovery marks a resubmitted parent map stage; recovery sets skip
	// speculation and stage statistics, and run under whatever controller
	// settings the executors' active stages chose.
	recovery bool
	// only restricts a recovery set to specific task indices.
	only map[int]bool

	pending []int // task indices not yet assigned
	splits  [][]dfs.Block
	total   int
	done    int

	taskDone map[int]bool
	attempts map[int]int // failed attempts per task (abort threshold)
	launches map[int]int // total launches per task (chaos attempt index)
	// copies[task] lists executors currently running an attempt.
	copies map[int][]int

	// Speculation bookkeeping (primary sets only).
	launchAt   map[int]time.Duration // first launch per task
	lastExec   map[int]int           // latest executor per task
	noExec     map[int]int           // executor to avoid (retries, speculative copies)
	speculated map[int]bool
	durations  []time.Duration

	retries     int
	speculative int

	// Stage-window snapshots (primary sets only; see activateStage).
	start      time.Duration
	usage0     []cluster.Usage
	disk0      []psres.Stats
	read0      int64
	write0     int64
	net0       int64
	lost0      int
	resub0     int
	requeue0   int
	recovered0 int64
	stats      []ExecutorStageStats
}

func newTaskSet(key setKey, js *jobState, stage *job.StageSpec, recovery bool, only []int) *taskSet {
	ts := &taskSet{
		key:        key,
		js:         js,
		stage:      stage,
		recovery:   recovery,
		taskDone:   make(map[int]bool),
		attempts:   make(map[int]int),
		launches:   make(map[int]int),
		copies:     make(map[int][]int),
		launchAt:   make(map[int]time.Duration),
		lastExec:   make(map[int]int),
		noExec:     make(map[int]int),
		speculated: make(map[int]bool),
	}
	if recovery {
		ts.only = make(map[int]bool, len(only))
		for _, t := range only {
			ts.only[t] = true
			ts.pending = append(ts.pending, t)
		}
		ts.total = len(only)
	} else {
		for i := 0; i < stage.NumTasks; i++ {
			ts.pending = append(ts.pending, i)
		}
		ts.total = stage.NumTasks
	}
	return ts
}

// contains reports whether task belongs to this set's domain.
func (ts *taskSet) contains(task int) bool {
	if ts.only != nil {
		return ts.only[task]
	}
	return task >= 0 && task < ts.stage.NumTasks
}

// addTask extends a recovery set with another lost task.
func (ts *taskSet) addTask(task int) {
	if ts.only[task] {
		return
	}
	ts.only[task] = true
	ts.pending = append(ts.pending, task)
	ts.total++
}

// inFlight reports whether any attempt of task is currently running.
func (ts *taskSet) inFlight(task int) bool { return len(ts.copies[task]) > 0 }

// isPending reports whether task is queued for assignment.
func (ts *taskSet) isPending(task int) bool {
	for _, t := range ts.pending {
		if t == task {
			return true
		}
	}
	return false
}

// dropCopy removes one running attempt of task on exec.
func (ts *taskSet) dropCopy(task, exec int) {
	execs := ts.copies[task]
	for i, e := range execs {
		if e == exec {
			ts.copies[task] = append(execs[:i], execs[i+1:]...)
			return
		}
	}
}

// tasksOn returns the sorted task indices with a running attempt on exec.
func (ts *taskSet) tasksOn(exec int) []int {
	var tasks []int
	for task, execs := range ts.copies {
		for _, e := range execs {
			if e == exec {
				tasks = append(tasks, task)
				break
			}
		}
	}
	sort.Ints(tasks)
	return tasks
}

// taskScheduler places tasks from every job's active sets onto executor
// slots: the TaskScheduler half of the split driver. The inter-job policy
// decides which job's sets are offered a free slot first; within a job,
// sets are served in ascending stage order so lineage-recovery sets
// (earlier stages) run before the stages that wait on them.
type taskScheduler struct {
	eng    *Engine
	policy InterJobPolicy
	// sets holds every running task set, keyed by (job, stage).
	sets map[setKey]*taskSet
	// deferAssign suppresses assignAll while a same-instant admission
	// batch is in progress, so every job in the batch has its task sets
	// registered before the first slot is offered (see Engine.Wait).
	deferAssign bool
}

func newTaskScheduler(eng *Engine, policy InterJobPolicy) *taskScheduler {
	return &taskScheduler{eng: eng, policy: policy, sets: make(map[setKey]*taskSet)}
}

// primaryActive counts the active non-recovery task sets.
func (s *taskScheduler) primaryActive() int {
	n := 0
	for _, ts := range s.sets {
		if !ts.recovery {
			n++
		}
	}
	return n
}

// activeKeys returns the running sets' keys: jobs in policy order, stages
// ascending within each job. Policies are strict total orders, so the
// result is deterministic.
func (s *taskScheduler) activeKeys() []setKey {
	stagesOf := make(map[int][]int)
	for key := range s.sets {
		stagesOf[key.job] = append(stagesOf[key.job], key.stage)
	}
	jobs := make([]int, 0, len(stagesOf))
	for id := range stagesOf {
		jobs = append(jobs, id)
	}
	sort.Slice(jobs, func(i, j int) bool {
		return s.policy.Before(s.eng.snapshotJob(jobs[i]), s.eng.snapshotJob(jobs[j]))
	})
	keys := make([]setKey, 0, len(s.sets))
	for _, id := range jobs {
		stages := stagesOf[id]
		sort.Ints(stages)
		for _, st := range stages {
			keys = append(keys, setKey{job: id, stage: st})
		}
	}
	return keys
}

// snapshotJob builds the policy's view of one job.
func (e *Engine) snapshotJob(id int) JobSnapshot {
	js := e.jobs[id]
	return JobSnapshot{ID: id, SubmittedAt: js.submitAt, Running: js.running, Priority: js.spec.Priority}
}

// handleTaskDone routes a completion to its task set by (job, stage).
func (s *taskScheduler) handleTaskDone(m *taskDoneMsg) {
	e := s.eng
	em := e.em
	if !em.alive[m.exec] || m.epoch != em.epochs[m.exec] {
		// A stale incarnation's message, or a result from an executor the
		// failure detector declared lost (possibly a false positive whose
		// epochs still match — it has not been fenced yet). Either way its
		// slots were reclaimed at loss detection and its tasks requeued:
		// accepting the result would double-count it and double-release
		// the slot.
		return
	}
	em.completed(m.exec, m.job)
	js := e.jobs[m.job]
	if !js.done {
		// Task-level I/O attribution: every attempt reported while the
		// job runs charges the job, including failed and losing
		// speculative attempts — they occupied the devices on the job's
		// behalf.
		js.diskReadB += m.metrics.DiskReadBytes
		js.diskWriteB += m.metrics.DiskWriteBytes
		js.netB += m.metrics.NetBytes
		js.fetchRetries += m.metrics.FetchRetries
		js.checksumFailovers += m.metrics.ChecksumFailovers
		e.tel.onTaskMetrics(m.metrics)
		if e.aud != nil {
			e.aud.TaskAccepted(m.job, m.metrics)
		}
	}
	ts := s.sets[setKey{job: m.job, stage: m.metrics.Stage}]
	if ts == nil {
		// A zombie from a finished stage or job (e.g. a losing
		// speculative copy); its executor slot frees now.
		s.assign(m.exec)
		return
	}
	idx := m.metrics.Index
	ts.dropCopy(idx, m.exec)

	if m.err != nil {
		e.trace(TraceEvent{Type: TraceTaskFail, Job: m.job, Stage: ts.stage.ID, Task: idx, Exec: m.exec, Detail: m.err.Error()})
		if ts.taskDone[idx] {
			// The other attempt already won; nothing to redo.
			s.assign(m.exec)
			return
		}
		var ff *fetchFailedError
		if errors.As(m.err, &ff) {
			// Real map output died with a node. Not the task's fault:
			// requeue without charging an attempt, and resubmit the
			// lost parent map tasks (lineage).
			ts.pending = append(ts.pending, idx)
			js.requeues++
			s.ensureParents(ts)
			s.assignAll()
			return
		}
		ts.attempts[idx]++
		if ts.attempts[idx] >= e.opts.TaskMaxFailures {
			e.failJob(js, ts.stage.ID, fmt.Errorf("task %d failed %d times, last on executor %d: %w",
				idx, ts.attempts[idx], m.exec, m.err))
			s.assignAll()
			return
		}
		ts.retries++
		// Retry genuinely avoids the executor that just failed it.
		ts.noExec[idx] = m.exec
		em.noteFailure(m.exec, m.job, ts.stage.ID)
		ts.pending = append(ts.pending, idx)
		for i := range e.executors {
			s.assign((m.exec + 1 + i) % len(e.executors))
		}
		return
	}

	em.failStreak[m.exec] = 0
	if ts.taskDone[idx] {
		// The other attempt already won the race.
		s.assign(m.exec)
		return
	}
	ts.taskDone[idx] = true
	ts.done++
	e.tasksDone++
	e.trace(TraceEvent{Type: TraceTaskEnd, Job: m.job, Stage: ts.stage.ID, Task: idx, Exec: m.exec})
	if !ts.recovery {
		ts.durations = append(ts.durations, m.metrics.Duration())
		st := &ts.stats[m.exec]
		st.Tasks++
		if m.metrics.Local {
			st.LocalTasks++
		}
		st.BlockedIO += m.metrics.BlockedIO
		st.Bytes += m.metrics.BytesMoved
		ts.speculative += s.speculate(ts)
	}
	if ts.recovery && ts.done >= ts.total {
		// The lost map outputs are regenerated; dependents unblock.
		delete(s.sets, ts.key)
		e.trace(TraceEvent{Type: TraceStageEnd, Job: m.job, Stage: ts.stage.ID, Task: -1, Exec: -1, Detail: "recovery complete"})
		s.assignAll()
		return
	}
	if !ts.recovery && ts.done >= ts.total {
		e.completeStage(ts)
		s.assignAll()
		return
	}
	s.assign(m.exec)
}

// handleThreads applies a ThreadCountUpdate to the slot table.
func (s *taskScheduler) handleThreads(m *threadsMsg) {
	em := s.eng.em
	if !em.alive[m.exec] || m.epoch != em.epochs[m.exec] {
		return
	}
	s.eng.trace(TraceEvent{Type: TraceResize, Job: m.job, Stage: m.stage, Task: -1, Exec: m.exec, Threads: m.threads})
	em.limits[m.exec] = m.threads
	s.assign(m.exec)
}

// handleExecLost reacts to the failure detector declaring an executor lost
// (heartbeat timeout). The detector posts through the driver mailbox, so by
// the time this runs a beat or a crash may have raced ahead of the
// declaration — the aliveness/epoch guard drops those stale declarations.
func (s *taskScheduler) handleExecLost(m *execLostMsg) {
	em := s.eng.em
	if !em.alive[m.exec] || m.epoch != em.epochs[m.exec] {
		return
	}
	s.processLoss(m.exec, "heartbeat timeout")
}

// processLoss declares one executor incarnation lost: reclaim its slots,
// drop its map outputs from the shuffle registry, requeue its in-flight
// attempts in every job, un-complete tasks whose registered map output died
// with the node, and resubmit lost parent outputs other sets depend on.
func (s *taskScheduler) processLoss(exec int, reason string) {
	e := s.eng
	em := e.em
	em.markLost(exec, em.epochs[exec])
	// Spark-style pessimism: a lost executor's map outputs are unreachable
	// whether the process died or merely fell silent, so invalidate them at
	// declaration time.
	e.removeShuffleNode(e.executors[exec].node.ID)
	e.trace(TraceEvent{Type: TraceExecLost, Job: -1, Stage: -1, Task: -1, Exec: exec, Detail: reason})
	for _, js := range e.jobs {
		if js.started && !js.done {
			js.lostExecs++
		}
	}

	s.reclaimNode(exec)
	if !em.anyAssignable() && !e.restartPending() {
		e.fatal = fmt.Errorf("all executors lost at %s", e.k.Now())
		return
	}
	s.assignAll()
}

// reclaimNode repairs every active set after an executor's work and shuffle
// output left the cluster — by crash, loss declaration or graceful
// decommission: requeue its in-flight attempts, un-complete tasks whose
// registered output died with the node, and resubmit lost parent outputs
// other sets depend on. The caller has already dropped the node from the
// shuffle registry.
func (s *taskScheduler) reclaimNode(exec int) {
	e := s.eng
	keys := s.activeKeys()
	for _, key := range keys {
		ts := s.sets[key]
		// Requeue attempts that were running on the dead executor.
		for _, task := range ts.tasksOn(exec) {
			ts.dropCopy(task, exec)
			if !ts.taskDone[task] && !ts.inFlight(task) && !ts.isPending(task) {
				ts.pending = append(ts.pending, task)
				ts.js.requeues++
			}
		}
		// Un-complete tasks whose shuffle output lived on the dead
		// node: their results are gone even though they finished.
		for _, task := range e.shuffle.lostTasks(key) {
			if ts.contains(task) && ts.taskDone[task] {
				ts.taskDone[task] = false
				ts.done--
				if !ts.inFlight(task) && !ts.isPending(task) {
					ts.pending = append(ts.pending, task)
				}
				ts.js.requeues++
			}
		}
	}
	// Dependencies of running sets may now have holes in earlier stages.
	for _, key := range keys {
		if ts := s.sets[key]; ts != nil {
			s.ensureParents(ts)
		}
	}
}

// handleExecJoin re-admits a restarted (or fenced-and-rejoined) executor:
// fresh slot count from the policy's initial threads (cmin for the dynamic
// policy) and the active primary stages re-sent so its fresh per-stage
// controllers start new hill climbs. A join can arrive while the driver
// still believes the previous incarnation is alive — the restart raced
// ahead of the failure detector — in which case the old incarnation is
// declared lost first, so its in-flight work is requeued rather than
// black-holed against the new epoch.
func (s *taskScheduler) handleExecJoin(m *execJoinMsg) {
	e := s.eng
	em := e.em
	if m.epoch <= em.epochs[m.exec] {
		// Duplicate or stale join announcement.
		return
	}
	if em.alive[m.exec] {
		s.processLoss(m.exec, "superseded by restarted incarnation")
		if e.fatal != nil {
			return
		}
	}
	em.markJoined(m.exec, m.epoch)
	ex := e.executors[m.exec]
	limit := 0
	for _, key := range s.activeKeys() {
		ts := s.sets[key]
		if ts.recovery {
			continue
		}
		init := e.opts.Policy.InitialThreads(ex.info, ts.stage.Meta())
		if limit == 0 || init < limit {
			limit = init
		}
		e.sendExec(ex, execMsg{stageStart: &stageStartMsg{job: key.job, stage: ts.stage}})
	}
	em.limits[m.exec] = limit
	s.assign(m.exec)
}

// handleHeartbeat feeds one executor beat to the failure detector. A beat
// from an executor already declared lost is the false-positive signature —
// the process was slow or partitioned, not dead — and since its tasks were
// requeued at declaration, the incarnation must be fenced: it is ordered to
// adopt a fresh epoch (turning its in-flight work into zombies) and rejoin
// through the normal join path.
func (s *taskScheduler) handleHeartbeat(m *heartbeatMsg) {
	e := s.eng
	em := e.em
	if em.alive[m.exec] {
		if m.epoch != em.epochs[m.exec] {
			return
		}
		em.noteBeat(m)
		return
	}
	if m.epoch != em.epochs[m.exec] || em.fencing[m.exec] {
		// A truly dead incarnation's last gasp, or the fence order is
		// already in flight.
		return
	}
	em.fencing[m.exec] = true
	for _, js := range e.jobs {
		if js.started && !js.done {
			js.fenced++
		}
	}
	e.sendExec(e.executors[m.exec],
		execMsg{fence: &fenceMsg{epoch: em.epochs[m.exec] + 1}})
}

// ensureParents resubmits lost map outputs of every upstream stage ts
// fetches from (recursively — a recovery set can itself depend on an even
// earlier stage). Already-running recovery sets are extended in place.
func (s *taskScheduler) ensureParents(ts *taskSet) {
	e := s.eng
	for _, parent := range ts.stage.ShuffleFrom {
		pkey := setKey{job: ts.key.job, stage: parent}
		lost := e.shuffle.lostTasks(pkey)
		if len(lost) == 0 {
			continue
		}
		if ps := s.sets[pkey]; ps != nil {
			if ps.recovery {
				for _, task := range lost {
					if !ps.contains(task) {
						ps.addTask(task)
					}
				}
			}
			// A non-recovery active parent is still running its
			// primary wave; handleExecLost already requeued its lost
			// tasks.
			continue
		}
		spec := ts.js.specs[parent]
		rs := newTaskSet(pkey, ts.js, spec, true, lost)
		if spec.InputFile != "" {
			if f, err := e.fs.Open(spec.InputFile); err == nil {
				rs.splits = dfs.Splits(f, spec.NumTasks)
			}
		}
		s.sets[pkey] = rs
		ts.js.resubmissions++
		e.trace(TraceEvent{Type: TraceStageResubmit, Job: ts.key.job, Stage: parent, Task: -1, Exec: -1,
			Detail: fmt.Sprintf("%d lost map outputs, wanted by stage %d", len(lost), ts.stage.ID)})
		s.ensureParents(rs)
	}
}

// blocked reports whether ts must wait for upstream recovery: launching its
// reduce tasks now would plan around the lost outputs and under-fetch.
func (s *taskScheduler) blocked(ts *taskSet) bool {
	return len(ts.stage.ShuffleFrom) > 0 && s.eng.shuffle.missing(ts.key.job, ts.stage.ShuffleFrom)
}

// pendingTotal sums queued task attempts across active sets — for one job,
// or engine-wide with job < 0 (the autoscaler's backlog gauge). Sets are
// read from the map directly: a sum is iteration-order independent.
func (s *taskScheduler) pendingTotal(job int) int {
	n := 0
	for key, ts := range s.sets {
		if job < 0 || key.job == job {
			n += len(ts.pending)
		}
	}
	return n
}

func (s *taskScheduler) assignAll() {
	if s.deferAssign {
		return
	}
	for i := range s.eng.executors {
		s.assign(i)
	}
}

// assign hands pending tasks to executor i while it has free slots,
// serving jobs in policy order (and recovery sets before the waves that
// wait on them), preferring tasks whose DFS split is local to the
// executor's node and honouring per-task executor exclusions.
func (s *taskScheduler) assign(i int) {
	em := s.eng.em
	if !em.assignable(i) {
		return
	}
	s.eng.tel.onSlotOffer()
	for em.inflight[i] < em.limits[i] {
		ts, pick := s.pickTask(i)
		if ts == nil {
			return
		}
		s.launch(ts, pick, i)
	}
}

// pickTask selects the next pending task executor i should run: first a
// local non-excluded task, then any non-excluded task, scanning task sets
// in policy order. If no other executor has free slots, exclusions against
// i are cleared rather than letting work stall.
func (s *taskScheduler) pickTask(i int) (*taskSet, int) {
	ex := s.eng.executors[i]
	keys := s.activeKeys()
	for _, key := range keys {
		ts := s.sets[key]
		if len(ts.pending) == 0 || s.blocked(ts) {
			continue
		}
		// First pass: local tasks without an exclusion against i.
		for j, t := range ts.pending {
			if excl, ok := ts.noExec[t]; ok && excl == i {
				continue
			}
			if ts.splits != nil {
				blocks := ts.splits[t]
				if len(blocks) > 0 && !blocks[0].LocalTo(ex.node.ID) {
					continue
				}
			}
			return ts, j
		}
		// Second pass: any task not excluded from i.
		for j, t := range ts.pending {
			if excl, ok := ts.noExec[t]; ok && excl == i {
				continue
			}
			return ts, j
		}
	}
	if !s.eng.em.otherFree(i) {
		// Everything pending is excluded from i, but i is the only
		// executor with free slots: drop the exclusions.
		for _, key := range keys {
			ts := s.sets[key]
			if len(ts.pending) == 0 || s.blocked(ts) {
				continue
			}
			for j, t := range ts.pending {
				if excl, ok := ts.noExec[t]; ok && excl == i {
					delete(ts.noExec, t)
					return ts, j
				}
			}
		}
	}
	return nil, -1
}

// launch sends ts.pending[pick] to executor i with a freshly-computed
// input plan.
func (s *taskScheduler) launch(ts *taskSet, pick, i int) {
	e := s.eng
	ex := e.executors[i]
	task := ts.pending[pick]
	ts.pending = append(ts.pending[:pick], ts.pending[pick+1:]...)
	e.em.launched(i, ts.key.job)
	if ts.js.firstLaunch < 0 {
		ts.js.firstLaunch = e.k.Now()
		e.tel.onJobLaunched(e.k.Now() - ts.js.submitAt)
	}
	ts.copies[task] = append(ts.copies[task], i)
	if _, seen := ts.launchAt[task]; !seen {
		ts.launchAt[task] = e.k.Now()
		if !ts.recovery {
			e.tel.onTaskQueued(e.k.Now() - ts.start)
		}
	}
	ts.lastExec[task] = i
	detail := ""
	if ts.recovery {
		detail = "recovery"
	}
	e.trace(TraceEvent{Type: TraceTaskLaunch, Job: ts.key.job, Stage: ts.stage.ID, Task: task, Exec: i, Detail: detail})

	lm := &launchMsg{job: ts.key.job, stage: ts.stage, index: task, attempt: ts.launches[task], epoch: e.em.epochs[i]}
	ts.launches[task]++
	if ts.splits != nil {
		lm.blocks = ts.splits[task]
		for _, b := range lm.blocks {
			lm.inputTotal += b.Size
		}
	}
	if len(ts.stage.ShuffleFrom) > 0 {
		lm.segments = e.shuffle.reducePlan(ts.key.job, ts.stage.ShuffleFrom, ts.stage.NumTasks, task)
		for _, seg := range lm.segments {
			lm.inputTotal += seg.bytes
		}
	}
	e.sendExec(ex, execMsg{launch: lm})
}

// speculate launches backup copies of stragglers once the stage is mostly
// done (Spark's speculation): tasks still running past Multiplier× the
// median completed duration are re-queued for a different executor. Each
// task is speculated at most once. It returns the number of copies queued.
// Tasks are scanned in sorted index order — launchAt is a map, and Go's
// random map order would otherwise queue simultaneous stragglers in a
// different order every run, breaking determinism.
func (s *taskScheduler) speculate(ts *taskSet) int {
	e := s.eng
	if !e.opts.Speculation || len(ts.durations) == 0 {
		return 0
	}
	if float64(ts.done) < e.opts.SpeculationQuantile*float64(ts.stage.NumTasks) {
		return 0
	}
	sorted := append([]time.Duration(nil), ts.durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	threshold := time.Duration(float64(median) * e.opts.SpeculationMultiplier)
	tasks := make([]int, 0, len(ts.launchAt))
	for task := range ts.launchAt {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	launched := 0
	for _, task := range tasks {
		if ts.taskDone[task] || ts.speculated[task] || !ts.inFlight(task) {
			continue
		}
		if e.k.Now()-ts.launchAt[task] <= threshold {
			continue
		}
		ts.speculated[task] = true
		ts.noExec[task] = ts.lastExec[task]
		ts.pending = append(ts.pending, task)
		e.trace(TraceEvent{Type: TraceSpeculate, Job: ts.key.job, Stage: ts.stage.ID, Task: task, Exec: ts.lastExec[task]})
		launched++
	}
	if launched > 0 {
		s.assignAll()
	}
	return launched
}
