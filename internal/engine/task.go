package engine

import (
	"fmt"
	"time"

	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/sim"
)

// taskContext implements job.TaskContext: it executes one task's I/O and
// compute against the owning node's simulated devices and accounts the
// monitor's raw inputs.
//
// ε accounting: each disk operation contributes its elapsed time scaled by
// the device's contention factor at issue (device.DiskSpec.Overload). At or
// below the device's best operating point, readahead and command queuing
// hide service latency from the application — read() returns from cache —
// so epoll-style blocked time is the contention-induced share of the wait.
// This is what makes ε grow steeply with thread count on saturated HDDs
// (Fig. 7) while staying near zero on SSDs (§6.3) and on CPU-heavy stages.
//
// Fault paths: a sim process cannot be cancelled while parked in a device
// queue, so a task whose executor crashed keeps running as a zombie — every
// subsequent device charge no-ops (failed is set to errExecutorLost) and it
// fast-forwards to completion, where the executor drops its report. Chaos
// plans additionally inject transient I/O faults (the task aborts partway
// through its input) and fetch failures; stale fetch plans against lost map
// output abort with fetchFailedError, the driver's lineage-recovery signal.
type taskContext struct {
	eng     *Engine
	p       *sim.Proc
	ex      *Executor
	jobID   int
	stage   *job.StageSpec
	index   int
	attempt int
	// epoch is the executor incarnation that launched this task; when it
	// differs from the executor's current epoch the task is a zombie.
	epoch int

	// failed aborts all further device activity once set.
	failed error
	// faultAt, if ≥ 0, injects a transient I/O fault once bytesMoved
	// crosses it.
	faultAt int64
	// fetchFault injects one transient shuffle-fetch failure.
	fetchFault bool

	// input plan
	blocks   []dfs.Block // remaining DFS blocks (first partially consumed)
	blockOff int64       // bytes already consumed of blocks[0]
	// blockSrc is the verified replica the current block streams from
	// (-1 = not yet picked for blocks[0]).
	blockSrc int
	segments []segment // remaining shuffle fetch segments
	segOff   int64

	inputTotal int64

	// accounting
	blockedIO  time.Duration
	bytesMoved int64
	shuffleOut int64
	// diskReadB/diskWriteB/netB mirror every device charge this task
	// issues (including spill amplification and remote-node reads), so
	// the driver can attribute device traffic to the owning job without
	// cluster-global counter deltas that double-count under concurrency.
	diskReadB    int64
	diskWriteB   int64
	netB         int64
	allLocal     bool
	computeSpent float64
	// Gray-failure accounting for the attempt.
	fetchRetries      int
	checksumFailovers int
}

var _ job.TaskContext = (*taskContext)(nil)

func (tc *taskContext) Node() int             { return tc.ex.node.ID }
func (tc *taskContext) Executor() int         { return tc.ex.id }
func (tc *taskContext) Stage() *job.StageSpec { return tc.stage }
func (tc *taskContext) Index() int            { return tc.index }
func (tc *taskContext) InputBytes() int64     { return tc.inputTotal }

// aborted reports (and latches) whether the task must stop charging
// devices: either a fault struck or its executor crashed underneath it.
func (tc *taskContext) aborted() bool {
	if tc.failed != nil {
		return true
	}
	if tc.ex.epoch != tc.epoch {
		tc.failed = errExecutorLost
		return true
	}
	return false
}

// diskRead reads bytes from node's disk, attributing contention wait to ε.
func (tc *taskContext) diskRead(node int, bytes int64) {
	d := tc.eng.cluster.Node(node).Disk
	ov := d.OverloadAhead()
	t0 := tc.p.Now()
	d.Read(tc.p, bytes)
	tc.blockedIO += time.Duration(float64(tc.p.Now()-t0) * ov)
	tc.diskReadB += bytes
}

// diskWrite writes bytes to node's disk, attributing contention wait to ε.
func (tc *taskContext) diskWrite(node int, bytes int64) {
	d := tc.eng.cluster.Node(node).Disk
	ov := d.OverloadAhead()
	t0 := tc.p.Now()
	d.Write(tc.p, bytes)
	tc.blockedIO += time.Duration(float64(tc.p.Now()-t0) * ov)
	tc.diskWriteB += bytes
}

// transfer moves bytes across the network (free when src == dst), counting
// them toward the task's attributed network traffic.
func (tc *taskContext) transfer(src, dst int, bytes int64) {
	tc.eng.cluster.Transfer(tc.p, src, dst, bytes)
	if src != dst {
		tc.netB += bytes
	}
}

// ReadInput implements job.TaskContext: consume up to max bytes of the
// task's DFS split, then of its shuffle fetch plan.
func (tc *taskContext) ReadInput(max int64) int64 {
	if max <= 0 || tc.aborted() {
		return 0
	}
	var read int64
	for read < max && len(tc.blocks) > 0 {
		if tc.aborted() {
			break
		}
		b := tc.blocks[0]
		if tc.blockSrc < 0 {
			src, err := tc.pickBlockSrc(b)
			if err != nil {
				tc.failed = err
				break
			}
			tc.blockSrc = src
		}
		n := b.Size - tc.blockOff
		if budget := max - read; n > budget {
			n = budget
		}
		if tc.blockSrc == tc.ex.node.ID {
			tc.diskRead(tc.ex.node.ID, n)
		} else {
			tc.allLocal = false
			tc.diskRead(tc.blockSrc, n)
			tc.transfer(tc.blockSrc, tc.ex.node.ID, n)
		}
		read += n
		tc.blockOff += n
		if tc.blockOff >= b.Size {
			tc.blocks = tc.blocks[1:]
			tc.blockOff = 0
			tc.blockSrc = -1
		}
		if tc.injectFault(read) {
			break
		}
	}
	for read < max && len(tc.segments) > 0 {
		if tc.aborted() {
			break
		}
		s := tc.segments[0]
		if tc.segOff == 0 {
			// Opening a segment: the fetch may fail transiently (chaos
			// injection or a partition window) and is retried with
			// bounded exponential backoff before surfacing.
			if err := tc.fetchReady(s); err != nil {
				tc.failed = err
				break
			}
		} else if !tc.eng.shuffle.segmentValid(s) {
			// The plan predates a node loss mid-segment: the map output
			// this segment points at is gone (FetchFailedException).
			tc.failed = &fetchFailedError{node: s.node}
			break
		}
		n := s.bytes - tc.segOff
		if budget := max - read; n > budget {
			n = budget
		}
		// Shuffle fetch: the map output is read from the source node's
		// disk; remote segments additionally cross the network
		// (Spark's shuffle block fetch).
		tc.diskRead(s.node, n)
		tc.transfer(s.node, tc.ex.node.ID, n)
		read += n
		tc.segOff += n
		if tc.segOff >= s.bytes {
			tc.segments = tc.segments[1:]
			tc.segOff = 0
		}
		if tc.injectFault(read) {
			break
		}
	}
	tc.bytesMoved += read
	return read
}

// pickBlockSrc selects the replica the current block will stream from:
// nearest live replica first (local, then ascending node distance), falling
// over to the next-closest when a replica's checksum does not verify. A
// corrupted replica is only discovered after pulling the whole block, so
// the wasted read (and transfer, for remote replicas) is charged to the
// devices without counting toward task input. It fails only when every
// replica is unreachable or corrupt — a permanent error that rides the
// normal task-failure path.
func (tc *taskContext) pickBlockSrc(b dfs.Block) (int, error) {
	e := tc.eng
	reader := tc.ex.node.ID
	bad := make(map[int]bool, len(b.Replicas))
	for {
		src, ok := e.fs.PickReplica(b, reader, bad)
		if !ok {
			return -1, fmt.Errorf("block %d: all %d replicas unreachable or corrupt", b.Index, len(b.Replicas))
		}
		if src != reader && e.partitionedNow(tc.ex.id) {
			// The reader's own node is inside a partition window: every
			// remote replica is out of reach from this side.
			bad[src] = true
			continue
		}
		if e.fs.ReadSum(b, src) != b.Sum {
			tc.diskRead(src, b.Size)
			tc.transfer(src, reader, b.Size)
			tc.checksumFailovers++
			e.trace(TraceEvent{Type: TraceChecksum, Job: tc.jobID, Stage: tc.stage.ID, Task: tc.index, Exec: tc.ex.id,
				Detail: fmt.Sprintf("replica on node %d failed checksum", src)})
			bad[src] = true
			continue
		}
		return src, nil
	}
}

// fetchReady gates the opening of one shuffle segment: a fetch drops while
// either endpoint is partitioned or when the chaos plan injects a transient
// failure, and dropped fetches are retried with bounded exponential backoff
// (Spark's spark.shuffle.io.maxRetries / retryWait). Exhausting the budget
// surfaces errInjectedFetch for injected transients (charged to the
// attempt) or fetchFailedError for partitions (requeued without charge). A
// segment whose map output is gone fails immediately — no retry can bring
// it back; only lineage recovery can.
func (tc *taskContext) fetchReady(s segment) error {
	e := tc.eng
	f := e.opts.Faults
	budget := e.opts.TaskMaxFailures - 1
	for try := 0; ; try++ {
		if tc.aborted() {
			return tc.failed
		}
		if !e.shuffle.segmentValid(s) {
			return &fetchFailedError{node: s.node}
		}
		if try > 0 && tc.fetchFault && f != nil {
			// Transients may clear between tries: re-roll this try.
			tc.fetchFault = f.FetchFaultTry(tc.stage.ID, tc.index, tc.attempt, try, budget)
		}
		partitioned := e.partitionedNow(tc.ex.id) || e.partitionedNow(s.node)
		if !partitioned && !tc.fetchFault {
			return nil
		}
		if try >= e.opts.FetchMaxRetries {
			if tc.fetchFault {
				tc.fetchFault = false
				return errInjectedFetch
			}
			return &fetchFailedError{node: s.node}
		}
		tc.fetchRetries++
		tc.p.Sleep(e.opts.FetchRetryWait << try)
	}
}

// injectFault fires the scheduled transient I/O fault once the task's
// cumulative input crosses the fault point.
func (tc *taskContext) injectFault(pendingRead int64) bool {
	if tc.faultAt < 0 || tc.bytesMoved+pendingRead < tc.faultAt {
		return false
	}
	tc.faultAt = -1
	tc.failed = errInjectedIO
	return true
}

// Compute implements job.TaskContext. Memory pressure inflates the charge
// with the executor's current concurrency (see job.StageSpec.MemPressure).
func (tc *taskContext) Compute(seconds float64) {
	if seconds <= 0 || tc.aborted() {
		return
	}
	if mp := tc.stage.MemPressure; mp > 0 {
		vcores := tc.ex.node.CPU.Spec().VirtualCores
		if vcores > 1 {
			seconds *= 1 + mp*float64(tc.ex.running-1)/float64(vcores-1)
		}
	}
	tc.computeSpent += seconds
	tc.ex.node.CPU.Compute(tc.p, seconds)
}

// WriteShuffle implements job.TaskContext: spill map output to local disk.
func (tc *taskContext) WriteShuffle(bytes int64) {
	if bytes <= 0 || tc.aborted() {
		return
	}
	tc.diskWrite(tc.ex.node.ID, bytes)
	tc.bytesMoved += bytes
	tc.shuffleOut += bytes
}

// WriteOutput implements job.TaskContext: write DFS output.
func (tc *taskContext) WriteOutput(bytes int64) {
	if bytes <= 0 || tc.stage.OutputFile == "" || tc.aborted() {
		return
	}
	ov := tc.ex.node.Disk.OverloadAhead()
	t0 := tc.p.Now()
	tc.eng.fs.Write(tc.p, tc.ex.node.ID, tc.stage.OutputFile, bytes)
	tc.blockedIO += time.Duration(float64(tc.p.Now()-t0) * ov)
	tc.bytesMoved += bytes
	// DFS writes charge the writer's local disk (see dfs.FS.Write).
	tc.diskWriteB += bytes
}

// Spill implements job.TaskContext: write temporary data to local disk and
// merge it back. Spill traffic occupies the device and blocks the task, but
// is deliberately NOT counted in bytesMoved: the monitor's µ is built from
// task input/output metrics (as in Spark's metric system), and counting
// work amplification as goodput would reward exactly the contention the
// controller exists to avoid.
func (tc *taskContext) Spill(bytes int64) {
	if bytes <= 0 || tc.aborted() {
		return
	}
	tc.diskWrite(tc.ex.node.ID, bytes)
	tc.diskRead(tc.ex.node.ID, bytes)
}

// Concurrency implements job.TaskContext.
func (tc *taskContext) Concurrency() int { return tc.ex.running }

// VirtualCores implements job.TaskContext.
func (tc *taskContext) VirtualCores() int { return tc.ex.node.CPU.Spec().VirtualCores }

// run executes the task's work and returns its metrics.
func (tc *taskContext) run(work job.Work) (job.TaskMetrics, error) {
	start := tc.p.Now()
	disk0 := tc.ex.node.Disk.Snapshot()
	tc.faultAt = -1
	tc.blockSrc = -1
	if f := tc.eng.opts.Faults; f != nil {
		budget := tc.eng.opts.TaskMaxFailures - 1
		if ok, frac := f.TaskFault(tc.stage.ID, tc.index, tc.attempt, budget); ok {
			tc.faultAt = int64(frac * float64(tc.inputTotal))
		}
		if len(tc.segments) > 0 {
			tc.fetchFault = f.FetchFault(tc.stage.ID, tc.index, tc.attempt, budget)
		}
	}
	// Task launch overhead: deserialization and setup burn a little CPU,
	// as in Spark.
	tc.Compute(tc.eng.opts.TaskOverheadCPUSeconds)
	err := work.Execute(tc)
	if err == nil {
		err = tc.failed
	}
	if tc.shuffleOut > 0 && err == nil && tc.ex.epoch == tc.epoch {
		out := tc.eng.shuffle.addMapOutput(setKey{job: tc.jobID, stage: tc.stage.ID}, tc.index, tc.ex.node.ID, tc.shuffleOut)
		if a := tc.eng.aud; a != nil {
			a.ShuffleRegistered(tc.jobID, tc.stage.ID, tc.index, tc.ex.node.ID, out)
		}
	}
	disk1 := tc.ex.node.Disk.Snapshot()
	busyFrac := 0.0
	if win := (disk1.At - disk0.At).Seconds(); win > 0 {
		busyFrac = (disk1.Busy - disk0.Busy).Seconds() / win
	}
	return job.TaskMetrics{
		Stage:             tc.stage.ID,
		Index:             tc.index,
		Start:             start,
		End:               tc.p.Now(),
		BlockedIO:         tc.blockedIO,
		BytesMoved:        tc.bytesMoved,
		DiskReadBytes:     tc.diskReadB,
		DiskWriteBytes:    tc.diskWriteB,
		NetBytes:          tc.netB,
		DiskBusyFrac:      busyFrac,
		Local:             tc.allLocal,
		FetchRetries:      tc.fetchRetries,
		ChecksumFailovers: tc.checksumFailovers,
	}, err
}
