package engine

import "sae/internal/engine/job"

// ShuffleOutcome classifies one map-output registration against the shuffle
// registry: first registration, idempotent duplicate (a speculative or
// zombie re-run of an attempt whose output is already live), recovery of an
// output previously invalidated by node loss, or an empty (zero-byte)
// registration that the registry ignores.
type ShuffleOutcome int

const (
	ShuffleAccepted ShuffleOutcome = iota
	ShuffleDuplicate
	ShuffleRecovered
	ShuffleEmpty
)

func (o ShuffleOutcome) String() string {
	switch o {
	case ShuffleAccepted:
		return "accepted"
	case ShuffleDuplicate:
		return "duplicate"
	case ShuffleRecovered:
		return "recovered"
	case ShuffleEmpty:
		return "empty"
	}
	return "unknown"
}

// Audit observes the engine's structural transitions so an external checker
// (see internal/invariant) can verify invariants online — slot
// conservation, per-job byte conservation, exactly-once shuffle emission,
// epoch monotonicity, assignment and heartbeat state-machine legality —
// without participating in the simulation. Implementations must be purely
// observational: they are called synchronously from engine code on the sim
// clock and must not block, schedule events, or mutate engine state. The
// engine guarantees the event log is byte-identical with and without an
// auditor attached.
//
// All hooks fire in deterministic simulation order. Event receives every
// trace event (with At populated) exactly as the sink would emit it; the
// remaining hooks expose transitions that either precede their trace event
// (SlotsReclaimed fires inside loss handling, before the exec_lost event)
// or have no event at all (per-slot launch/release accounting).
type Audit interface {
	// BeginRun fires once per engine, after assembly and before any event
	// can run. active[i] reports driver-view liveness of executor i at
	// t=0 (autoscale capacity not yet activated is inactive).
	BeginRun(active []bool)
	// EndRun fires when Wait completes cleanly (no fatal error).
	EndRun()
	// Event mirrors every trace event in emission order.
	Event(ev TraceEvent)
	// SlotLaunched fires when the driver books a task onto exec's slot
	// table for jobID, immediately before the task_launch event.
	SlotLaunched(exec, jobID int)
	// SlotReleased fires when the driver accepts a task completion and
	// releases its slot.
	SlotReleased(exec, jobID int)
	// SlotsReclaimed fires when the driver declares exec lost (failure
	// detector or decommission) and reclaims its inflight booked slots.
	SlotsReclaimed(exec, inflight int)
	// ExecutorEpoch fires when exec (re)joins at a new incarnation epoch.
	ExecutorEpoch(exec, epoch int)
	// ShuffleRegistered fires for every map-output registration attempt
	// with the registry's verdict.
	ShuffleRegistered(jobID, stage, task, node int, outcome ShuffleOutcome)
	// ShuffleNodeLost fires when a node's map outputs are invalidated
	// (crash, declared loss, or decommission).
	ShuffleNodeLost(node int)
	// TaskAccepted fires when the driver folds a completed task's metrics
	// into its job's report accounting.
	TaskAccepted(jobID int, m job.TaskMetrics)
	// JobFinished fires with the job's final report, after accounting is
	// closed and before the job's shuffle outputs are dropped.
	JobFinished(rep *JobReport)
}

// removeShuffleNode invalidates node's map outputs and mirrors the loss
// into the audit plane. All shuffle-invalidation paths (crash, declared
// loss, decommission) go through here so the auditor's exactly-once mirror
// stays in lockstep with the registry.
func (e *Engine) removeShuffleNode(node int) {
	e.shuffle.removeNode(node)
	if e.aud != nil {
		e.aud.ShuffleNodeLost(node)
	}
}
