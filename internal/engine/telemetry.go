package engine

import (
	"strconv"
	"time"

	"sae/internal/engine/job"
	"sae/internal/sim"
	"sae/internal/telemetry"
)

// Queue-delay histogram buckets in seconds, spanning sub-second slot grabs
// to multi-minute open-loop backlogs.
var delayBuckets = []float64{0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600}

// engineTelemetry wires the engine into a telemetry.Registry: gauges read
// live driver state at each sampler tick, counters mirror the event log and
// task metrics, and a kernel timer drives Registry.Sample on the sim clock
// so same-seed runs export byte-identical series. A nil *engineTelemetry
// (no Options.Metrics) is valid and makes every hook a no-op, keeping the
// zero-config path untouched.
type engineTelemetry struct {
	eng *Engine
	reg *telemetry.Registry

	// events counts trace events by type, registered lazily per type —
	// one family covers crashes, suspicions, fences, checksum failovers,
	// autoscale actions and the rest of the event vocabulary.
	events map[string]*telemetry.Counter

	slotOffers        *telemetry.Counter
	diskRead          *telemetry.Counter
	diskWrite         *telemetry.Counter
	netBytes          *telemetry.Counter
	fetchRetries      *telemetry.Counter
	checksumFailovers *telemetry.Counter
	taskQueueDelay    *telemetry.Histogram
	jobQueueDelay     *telemetry.Histogram
}

func newEngineTelemetry(e *Engine) *engineTelemetry {
	reg := e.opts.Metrics
	t := &engineTelemetry{
		eng:    e,
		reg:    reg,
		events: map[string]*telemetry.Counter{},

		slotOffers: reg.Counter("sae_scheduler_slot_offers_total",
			"Free-slot offers made to assignable executors."),
		diskRead: reg.Counter("sae_disk_read_bytes_total",
			"Disk bytes read by task attempts."),
		diskWrite: reg.Counter("sae_disk_write_bytes_total",
			"Disk bytes written by task attempts."),
		netBytes: reg.Counter("sae_net_bytes_total",
			"Network bytes moved by task attempts (shuffle fetches and remote reads)."),
		fetchRetries: reg.Counter("sae_fetch_retries_total",
			"Bounded shuffle-fetch retries across task attempts."),
		checksumFailovers: reg.Counter("sae_checksum_failovers_total",
			"DFS reads that failed a checksum and fell over to another replica."),
		taskQueueDelay: reg.Histogram("sae_scheduler_queue_delay_seconds",
			"Stage activation to first launch, per task.", delayBuckets),
		jobQueueDelay: reg.Histogram("sae_job_queue_delay_seconds",
			"Submission to first task launch, per job.", delayBuckets),
	}

	reg.CounterFunc("sae_tasks_done_total",
		"Winning task completions engine-wide.",
		func() float64 { return float64(e.tasksDone) })
	reg.GaugeFunc("sae_jobs_completed",
		"Jobs that have finished or failed.",
		func() float64 { return float64(e.completed) })
	reg.GaugeFunc("sae_jobs_running",
		"Jobs admitted and not yet finished.",
		func() float64 {
			n := 0
			for _, js := range e.jobs {
				if js.started && !js.done {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("sae_slots_total",
		"Thread-pool slots across assignable executors.",
		func() float64 {
			n := 0
			for i := range e.executors {
				if e.em.alive[i] {
					n += e.em.limits[i]
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("sae_slots_busy",
		"Task attempts in flight across executors.",
		func() float64 {
			n := 0
			for i := range e.executors {
				n += e.em.inflight[i]
			}
			return float64(n)
		})
	reg.GaugeFunc("sae_execmgr_suspected",
		"Executors currently suspected by the heartbeat detector.",
		func() float64 {
			n := 0
			for _, s := range e.em.suspected {
				if s {
					n++
				}
			}
			return float64(n)
		})
	reg.CounterFunc("sae_shuffle_bytes_total",
		"Currently-valid registered map-output bytes.",
		func() float64 { return float64(e.shuffle.registeredBytes()) })

	t.registerExecutors()
	if e.auto != nil {
		t.registerAutoscale()
	}
	return t
}

// registerExecutors attaches per-executor gauges plus the windowed ζ
// congestion gauge, which differentiates the cumulative ε and byte counters
// over each sampling interval (µ = Δbytes/Δt, ζ = Δε/µ — the same index
// the per-executor MAPE-K monitor computes per tuning interval).
func (t *engineTelemetry) registerExecutors() {
	e := t.eng
	n := len(e.executors)
	zeta := make([]*telemetry.Gauge, n)
	lastBytes := make([]int64, n)
	lastBlocked := make([]time.Duration, n)
	var lastTick time.Duration
	for i, ex := range e.executors {
		i, ex := i, ex
		label := strconv.Itoa(i)
		t.reg.GaugeFunc("sae_executor_pool_size",
			"Current worker-pool size (thread limit).",
			func() float64 { return float64(ex.limit) }, "exec", label)
		t.reg.GaugeFunc("sae_executor_running_tasks",
			"Task attempts currently running on the executor.",
			func() float64 { return float64(ex.running) }, "exec", label)
		t.reg.GaugeFunc("sae_executor_alive",
			"1 while the executor process is alive.",
			func() float64 {
				if ex.alive {
					return 1
				}
				return 0
			}, "exec", label)
		t.reg.GaugeFunc("sae_executor_heartbeat_age_seconds",
			"Virtual time since the driver accepted the executor's last heartbeat.",
			func() float64 { return (e.k.Now() - e.em.lastBeat[i]).Seconds() }, "exec", label)
		t.reg.CounterFunc("sae_executor_bytes_total",
			"Cumulative bytes moved by the executor's winning and losing attempts.",
			func() float64 { return float64(ex.cumBytes) }, "exec", label)
		t.reg.CounterFunc("sae_executor_blocked_io_seconds_total",
			"Cumulative ε: task time spent blocked on I/O completions.",
			func() float64 { return ex.cumBlockedIO.Seconds() }, "exec", label)
		zeta[i] = t.reg.Gauge("sae_executor_zeta",
			"Congestion index ζ = ε/µ over the last sampling interval.", "exec", label)
	}
	t.reg.OnSample(func(at time.Duration) {
		dt := (at - lastTick).Seconds()
		if dt <= 0 {
			return
		}
		for i, ex := range e.executors {
			db := ex.cumBytes - lastBytes[i]
			de := (ex.cumBlockedIO - lastBlocked[i]).Seconds()
			z := 0.0
			if db > 0 {
				z = de / (float64(db) / dt)
			}
			zeta[i].Set(z)
			lastBytes[i] = ex.cumBytes
			lastBlocked[i] = ex.cumBlockedIO
		}
		lastTick = at
	})
}

// registerAutoscale attaches the elastic-cluster gauges: node counts by
// administrative state and the backlog the scaling policy reacts to.
func (t *engineTelemetry) registerAutoscale() {
	e := t.eng
	countState := func(want adminState) func() float64 {
		return func() float64 {
			n := 0
			for i, st := range e.em.admin {
				if st == want && !(want == adminDown && e.auto.pendingNode[i]) {
					n++
				}
			}
			return float64(n)
		}
	}
	t.reg.GaugeFunc("sae_autoscale_nodes",
		"Nodes by administrative state.", countState(adminActive), "state", "active")
	t.reg.GaugeFunc("sae_autoscale_nodes",
		"Nodes by administrative state.", countState(adminDraining), "state", "draining")
	t.reg.GaugeFunc("sae_autoscale_nodes",
		"Nodes by administrative state.", countState(adminDown), "state", "down")
	t.reg.GaugeFunc("sae_autoscale_nodes",
		"Nodes by administrative state.",
		func() float64 { return float64(e.auto.pending) }, "state", "pending")
	t.reg.GaugeFunc("sae_autoscale_backlog_tasks",
		"Pending task attempts across every active task set.",
		func() float64 { return float64(e.sched.pendingTotal(-1)) })
}

// arm takes the t=0 baseline sample and schedules the periodic sampler on
// the sim clock; the tick cancels itself when the last job completes, and
// Wait takes one final end-of-run sample (merge-last-wins if it lands on a
// tick).
func (t *engineTelemetry) arm() {
	e := t.eng
	t.reg.Sample(0)
	var tick sim.Event
	tick = e.k.Every(e.opts.MetricsInterval, func() {
		if e.done.Load() {
			tick.Cancel()
			return
		}
		t.reg.Sample(e.k.Now())
	})
}

// registerJob attaches the per-job scheduler gauges at admission.
func (t *engineTelemetry) registerJob(js *jobState) {
	if t == nil {
		return
	}
	e := t.eng
	label := strconv.Itoa(js.id)
	t.reg.GaugeFunc("sae_scheduler_pending_tasks",
		"Queued (unassigned) task attempts of the job.",
		func() float64 { return float64(e.sched.pendingTotal(js.id)) }, "job", label)
	t.reg.GaugeFunc("sae_scheduler_running_tasks",
		"In-flight task attempts of the job.",
		func() float64 { return float64(js.running) }, "job", label)
}

// onEvent mirrors one trace event into the per-type counter family.
func (t *engineTelemetry) onEvent(typ string) {
	if t == nil {
		return
	}
	c, ok := t.events[typ]
	if !ok {
		c = t.reg.Counter("sae_events_total", "Engine trace events by type.", "type", typ)
		t.events[typ] = c
	}
	c.Inc()
}

// onTaskMetrics accumulates a reported attempt's I/O and gray-failure
// activity (all attempts that charge their job, matching JobReport).
func (t *engineTelemetry) onTaskMetrics(m job.TaskMetrics) {
	if t == nil {
		return
	}
	t.diskRead.Add(float64(m.DiskReadBytes))
	t.diskWrite.Add(float64(m.DiskWriteBytes))
	t.netBytes.Add(float64(m.NetBytes))
	t.fetchRetries.Add(float64(m.FetchRetries))
	t.checksumFailovers.Add(float64(m.ChecksumFailovers))
}

// onSlotOffer counts one free-slot offer to an assignable executor.
func (t *engineTelemetry) onSlotOffer() {
	if t == nil {
		return
	}
	t.slotOffers.Inc()
}

// onTaskQueued records a task's stage-activation→launch delay.
func (t *engineTelemetry) onTaskQueued(d time.Duration) {
	if t == nil {
		return
	}
	t.taskQueueDelay.Observe(d.Seconds())
}

// onJobLaunched records a job's submission→first-launch delay.
func (t *engineTelemetry) onJobLaunched(d time.Duration) {
	if t == nil {
		return
	}
	t.jobQueueDelay.Observe(d.Seconds())
}
