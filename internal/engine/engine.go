// Package engine is the mini dataflow engine the adaptive executors plug
// into: a driver with a stage-ordered task scheduler, per-node executors
// with resizable worker pools, an HDFS-like input layer and a shuffle
// subsystem, all running on the deterministic cluster simulator. It
// reproduces the Spark mechanics the paper modifies — per-stage task waves,
// slot accounting in the driver, and the executor→scheduler thread-count
// update protocol.
package engine

import (
	"errors"
	"fmt"
	"io"
	"time"

	"sae/internal/chaos"
	"sae/internal/cluster"
	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/sim"
)

// Input declares a pre-loaded DFS input file.
type Input struct {
	Name string
	Size int64
}

// Options configures a single job run.
type Options struct {
	// Cluster describes the simulated hardware.
	Cluster cluster.Config
	// BlockSize is the DFS block size (0 = 128 MiB).
	BlockSize int64
	// Replication is the DFS replication factor (0 = all nodes, the
	// paper's locality-maximizing setup).
	Replication int
	// Policy sizes executor thread pools. Required.
	Policy job.Policy
	// TaskOverheadCPUSeconds is each task's launch overhead (negative
	// disables; 0 selects the default 20ms).
	TaskOverheadCPUSeconds float64
	// TaskMaxFailures is how many attempts a task gets before the job
	// aborts, as Spark's task.maxFailures (0 selects 4).
	TaskMaxFailures int
	// Speculation enables speculative execution: once
	// SpeculationQuantile of a stage's tasks have finished, stragglers
	// running longer than SpeculationMultiplier× the median task
	// duration get a backup copy on another executor; the first
	// completion wins (Spark's spark.speculation).
	Speculation           bool
	SpeculationQuantile   float64 // 0 selects 0.75
	SpeculationMultiplier float64 // 0 selects 1.5
	// Faults, if set, is a deterministic chaos schedule: executor crashes
	// (optionally with restart), transient task I/O faults and shuffle
	// fetch failures, all driven off the sim clock (see package chaos).
	Faults *chaos.Plan
	// Inputs are created in the DFS before the job starts.
	Inputs []Input
	// OnSetup, if set, runs after the engine is assembled and before the
	// simulation starts — use it to attach samplers.
	OnSetup func(e *Engine)
	// Trace, if set, receives the engine's event log as JSON lines (the
	// Spark event-log analogue; see TraceEvent and ReadTrace).
	Trace io.Writer
}

// Engine wires the simulated cluster, DFS, shuffle registry and executors
// for one job run.
type Engine struct {
	k         *sim.Kernel
	opts      Options
	cluster   *cluster.Cluster
	fs        *dfs.FS
	shuffle   *shuffleRegistry
	executors []*Executor
	toDriver  *sim.Mailbox[driverMsg]
	sink      *traceSink
	sched     *scheduler
	done      bool
}

// Run executes spec on a fresh simulated cluster and returns its report.
func Run(opts Options, spec *job.JobSpec) (*JobReport, error) {
	if opts.Policy == nil {
		return nil, errors.New("engine: Options.Policy is required")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.TaskOverheadCPUSeconds == 0 {
		opts.TaskOverheadCPUSeconds = 0.02
	} else if opts.TaskOverheadCPUSeconds < 0 {
		opts.TaskOverheadCPUSeconds = 0
	}
	if opts.TaskMaxFailures <= 0 {
		opts.TaskMaxFailures = 4
	}
	if opts.SpeculationQuantile <= 0 || opts.SpeculationQuantile > 1 {
		opts.SpeculationQuantile = 0.75
	}
	if opts.SpeculationMultiplier <= 1 {
		opts.SpeculationMultiplier = 1.5
	}

	k := sim.NewKernel()
	e := &Engine{
		k:        k,
		opts:     opts,
		cluster:  cluster.New(k, opts.Cluster),
		shuffle:  newShuffleRegistry(),
		toDriver: sim.NewMailbox[driverMsg](k),
	}
	e.sink = newTraceSink(opts.Trace)
	e.fs = dfs.New(e.cluster, opts.BlockSize)
	for _, in := range opts.Inputs {
		if _, err := e.fs.Create(in.Name, in.Size, opts.Replication); err != nil {
			return nil, fmt.Errorf("engine: create input: %w", err)
		}
	}
	for i, node := range e.cluster.Nodes() {
		ex := newExecutor(e, i, node, opts.Policy)
		e.executors = append(e.executors, ex)
		k.Go(fmt.Sprintf("executor-%d", i), ex.main)
	}
	if !opts.Faults.Empty() {
		e.scheduleFaults(opts.Faults)
	}

	var report *JobReport
	var runErr error
	k.Go("driver", func(p *sim.Proc) {
		report, runErr = e.runJob(p, spec)
		e.done = true
	})
	if opts.OnSetup != nil {
		opts.OnSetup(e)
	}
	k.Run()
	if runErr != nil {
		return nil, runErr
	}
	if report == nil {
		return nil, errors.New("engine: job did not complete")
	}
	if err := e.sink.flushErr(); err != nil {
		return nil, err
	}
	return report, nil
}

// Kernel returns the simulation kernel.
func (e *Engine) Kernel() *sim.Kernel { return e.k }

// Cluster returns the simulated cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// FS returns the distributed file system.
func (e *Engine) FS() *dfs.FS { return e.fs }

// Executors returns the engine's executors, one per node.
func (e *Engine) Executors() []*Executor { return e.executors }

// Done reports whether the job has finished (for sampler processes).
func (e *Engine) Done() bool { return e.done }

// InjectDiskInterference starts `streams` background readers hammering
// node's disk with chunk-sized reads from `from` until the job completes —
// a co-located tenant, in the paper's L4 terms. Call from Options.OnSetup.
func (e *Engine) InjectDiskInterference(node int, from time.Duration, streams int, chunk int64) {
	if chunk <= 0 {
		chunk = 32 << 20
	}
	disk := e.cluster.Node(node).Disk
	for i := 0; i < streams; i++ {
		e.k.Go(fmt.Sprintf("interference-%d-%d", node, i), func(p *sim.Proc) {
			p.Sleep(from)
			for !e.done {
				disk.Read(p, chunk)
			}
		})
	}
}
