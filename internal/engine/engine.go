// Package engine is the mini dataflow engine the adaptive executors plug
// into: a DAG-driven driver with a multi-job task scheduler, per-node
// executors with resizable worker pools, an HDFS-like input layer and a
// shuffle subsystem, all running on the deterministic cluster simulator. It
// reproduces the Spark mechanics the paper modifies — per-stage task waves,
// slot accounting in the driver, and the executor→scheduler thread-count
// update protocol — and, like Spark, splits the driver into a stage-DAG
// manager (dag.go), a task scheduler with pluggable FIFO/Fair inter-job
// policies (scheduler.go), and an executor manager (execmgr.go).
package engine

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"sae/internal/chaos"
	"sae/internal/cluster"
	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/sim"
	"sae/internal/telemetry"
)

// Input declares a pre-loaded DFS input file.
type Input struct {
	Name string
	Size int64
}

// Options configures an engine instance (shared by every job submitted to
// it).
type Options struct {
	// Cluster describes the simulated hardware.
	Cluster cluster.Config
	// BlockSize is the DFS block size (0 = 128 MiB).
	BlockSize int64
	// Replication is the DFS replication factor (0 = all nodes, the
	// paper's locality-maximizing setup).
	Replication int
	// Policy sizes executor thread pools. Required.
	Policy job.Policy
	// JobPolicy orders concurrent jobs competing for executor slots
	// (nil = FIFO).
	JobPolicy InterJobPolicy
	// TaskOverheadCPUSeconds is each task's launch overhead (negative
	// disables; 0 selects the default 20ms).
	TaskOverheadCPUSeconds float64
	// TaskMaxFailures is how many attempts a task gets before the job
	// aborts, as Spark's task.maxFailures (0 selects 4).
	TaskMaxFailures int
	// BlacklistAfter is how many consecutive task failures on one
	// executor get it blacklisted (Spark's spark.blacklist analogue;
	// 0 selects 3, negative disables blacklisting). A success resets the
	// streak; a crash/restart clears the blacklist.
	BlacklistAfter int
	// Speculation enables speculative execution: once
	// SpeculationQuantile of a stage's tasks have finished, stragglers
	// running longer than SpeculationMultiplier× the median task
	// duration get a backup copy on another executor; the first
	// completion wins (Spark's spark.speculation).
	Speculation           bool
	SpeculationQuantile   float64 // 0 selects 0.75
	SpeculationMultiplier float64 // 0 selects 1.5
	// Faults, if set, is a deterministic chaos schedule: executor crashes
	// (optionally with restart), transient task I/O faults, shuffle fetch
	// failures, node slowdowns, network partitions and replica corruption,
	// all driven off the sim clock (see package chaos).
	Faults *chaos.Plan
	// HeartbeatInterval is how often each executor beats to the driver
	// (0 selects 10s; Spark's spark.executor.heartbeatInterval).
	HeartbeatInterval time.Duration
	// HeartbeatMissedBeats is how many silent intervals before the driver
	// suspects an executor and stops assigning it work (0 selects 3).
	HeartbeatMissedBeats int
	// HeartbeatTimeout is how long without a beat before a suspected
	// executor is declared lost (0 selects 2× the suspicion delay; values
	// at or below the suspicion delay are raised just past it).
	HeartbeatTimeout time.Duration
	// FetchMaxRetries bounds transient shuffle-fetch retries per attempt
	// before the failure surfaces (0 selects 3, negative disables retries;
	// Spark's spark.shuffle.io.maxRetries).
	FetchMaxRetries int
	// FetchRetryWait is the base backoff between fetch retries, doubled
	// each retry (0 selects 5s; Spark's spark.shuffle.io.retryWait).
	FetchRetryWait time.Duration
	// Autoscale, if set, enables elastic cluster sizing: the engine starts
	// with AutoscaleConfig.InitialNodes active executors and the policy
	// grows or shrinks the active set on a planning interval (see
	// AutoscaleConfig).
	Autoscale *AutoscaleConfig
	// Inputs are created in the DFS before the first job starts.
	Inputs []Input
	// OnSetup, if set, runs after the engine is assembled and before the
	// simulation starts — use it to attach samplers.
	OnSetup func(e *Engine)
	// Trace, if set, receives the engine's event log as JSON lines (the
	// Spark event-log analogue; see TraceEvent and ReadTrace).
	Trace io.Writer
	// TraceFormat selects the event-log encoding: 0 or 1 emits the legacy
	// flat v1 lines, byte-identical to earlier releases; 2 prefixes a
	// versioned TraceHeader, omits non-applicable fields instead of
	// writing -1/0 sentinels, and threads job→stage→task-attempt span IDs
	// through the events. ReadTrace decodes both.
	TraceFormat int
	// Metrics, if set, attaches the deterministic telemetry plane: the
	// engine registers its instruments (scheduler queues, executor pools,
	// ζ/ε, failure detector, autoscaler) in the registry and samples them
	// every MetricsInterval on the sim clock, so same-seed runs export
	// byte-identical series (see telemetry.Registry's exporters).
	Metrics *telemetry.Registry
	// MetricsInterval is the sampler period (0 selects 5s).
	MetricsInterval time.Duration
	// Audit, if set, attaches the invariant audit plane: the engine calls
	// the hooks synchronously as structural transitions happen (see the
	// Audit interface). Like Metrics, attaching an auditor provably does
	// not perturb the event log — traces stay byte-identical.
	Audit Audit
	// Shards partitions the cluster into that many per-node-group kernels
	// advanced under a shared clock (0 or 1 = the classic single kernel).
	// Runs whose plans qualify (see DESIGN.md "Sharded simulation") advance
	// the shards concurrently through conservative lookahead windows; all
	// other runs — including every traced, audited or quiet run — take the
	// deterministic merge path, which is byte-identical to Shards=1 by
	// construction. Requires a positive Cluster.ControlLatency, the
	// lookahead bound.
	Shards int
}

// Engine wires the simulated cluster, DFS, shuffle registry and executors,
// and schedules any number of submitted jobs over them.
type Engine struct {
	k *sim.Kernel
	// ss is the shard coordinator (nil at Shards<=1). shardOf maps node →
	// owning shard; windowed is decided in Wait once the job set is known.
	ss        *sim.ShardSet
	shardOf   []int
	windowed  bool
	opts      Options
	cluster   *cluster.Cluster
	fs        *dfs.FS
	shuffle   *shuffleRegistry
	executors []*Executor
	toDriver  *sim.Mailbox[driverMsg]
	sink      *traceSink
	// tel is the telemetry instrumentation (nil without Options.Metrics;
	// every hook is nil-safe so the default path stays untouched).
	tel *engineTelemetry
	// aud is the invariant audit plane (nil without Options.Audit; every
	// call site nil-guards so the default path stays untouched).
	aud Audit

	em    *execManager
	sched *taskScheduler
	// auto is the elastic-cluster controller (nil without Options.Autoscale).
	auto *autoCtl

	jobs      []*jobState
	completed int
	// tasksDone counts winning task completions engine-wide — the
	// cumulative throughput counter the adaptive autoscale policy
	// differentiates.
	tasksDone int
	// fatal aborts every job (e.g. the whole cluster died with no restart
	// pending); per-job failures live on the jobState instead.
	fatal   error
	started bool
	// done flips when the driver finishes; atomic because in windowed runs
	// per-shard housekeeping events (heartbeats, interference streams,
	// slowdown timers) read it from their shard's goroutine.
	done atomic.Bool
}

// JobHandle refers to one submitted job; its report becomes available after
// Engine.Wait returns.
type JobHandle struct {
	js *jobState
}

// ID returns the job's submission index.
func (h *JobHandle) ID() int { return h.js.id }

// Report returns the job's report, or the error that failed it. It is only
// valid after Engine.Wait has returned.
func (h *JobHandle) Report() (*JobReport, error) {
	if h.js.err != nil {
		return nil, h.js.err
	}
	if h.js.report == nil {
		return nil, fmt.Errorf("engine: job %s did not complete", h.js.spec.Name)
	}
	return h.js.report, nil
}

// NewEngine assembles a fresh simulated cluster ready to accept jobs.
func NewEngine(opts Options) (*Engine, error) {
	if opts.Policy == nil {
		return nil, errors.New("engine: Options.Policy is required")
	}
	if opts.JobPolicy == nil {
		opts.JobPolicy = FIFO{}
	}
	if opts.TaskOverheadCPUSeconds == 0 {
		opts.TaskOverheadCPUSeconds = 0.02
	} else if opts.TaskOverheadCPUSeconds < 0 {
		opts.TaskOverheadCPUSeconds = 0
	}
	if opts.TaskMaxFailures <= 0 {
		opts.TaskMaxFailures = 4
	}
	if opts.BlacklistAfter == 0 {
		opts.BlacklistAfter = 3
	} else if opts.BlacklistAfter < 0 {
		opts.BlacklistAfter = 0 // disabled
	}
	if opts.SpeculationQuantile <= 0 || opts.SpeculationQuantile > 1 {
		opts.SpeculationQuantile = 0.75
	}
	if opts.SpeculationMultiplier <= 1 {
		opts.SpeculationMultiplier = 1.5
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 10 * time.Second
	}
	if opts.HeartbeatMissedBeats <= 0 {
		opts.HeartbeatMissedBeats = 3
	}
	suspectAfter := time.Duration(opts.HeartbeatMissedBeats) * opts.HeartbeatInterval
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 2 * suspectAfter
	} else if opts.HeartbeatTimeout <= suspectAfter {
		opts.HeartbeatTimeout = suspectAfter + opts.HeartbeatInterval
	}
	if opts.FetchMaxRetries == 0 {
		opts.FetchMaxRetries = 3
	} else if opts.FetchMaxRetries < 0 {
		opts.FetchMaxRetries = 0 // disabled
	}
	if opts.FetchRetryWait <= 0 {
		opts.FetchRetryWait = 5 * time.Second
	}
	if opts.MetricsInterval <= 0 {
		opts.MetricsInterval = 5 * time.Second
	}

	nshards := opts.Shards
	if nshards < 1 {
		nshards = 1
	}
	if nshards > opts.Cluster.Nodes {
		nshards = opts.Cluster.Nodes
	}
	var (
		k  *sim.Kernel
		ss *sim.ShardSet
		cl *cluster.Cluster
	)
	var shardOf []int
	if nshards > 1 {
		if opts.Cluster.ControlLatency <= 0 {
			return nil, errors.New("engine: Shards > 1 needs a positive Cluster.ControlLatency (the shard lookahead bound)")
		}
		// Contiguous shard assignment: node i → shard i*n/nodes. Keeps
		// executor IDs within a shard consecutive, so per-shard iteration
		// order matches global ID order.
		ss = sim.NewShardSet(nshards, opts.Cluster.ControlLatency)
		shardOf = make([]int, opts.Cluster.Nodes)
		kernels := make([]*sim.Kernel, nshards)
		for i := range kernels {
			kernels[i] = ss.Shard(i)
		}
		for i := range shardOf {
			shardOf[i] = i * nshards / opts.Cluster.Nodes
		}
		// The driver lives on shard 0's kernel.
		k = ss.Shard(0)
		cl = cluster.NewSharded(kernels, func(i int) int { return shardOf[i] }, opts.Cluster)
	} else {
		k = sim.NewKernel()
		cl = cluster.New(k, opts.Cluster)
	}
	e := &Engine{
		k:        k,
		ss:       ss,
		shardOf:  shardOf,
		opts:     opts,
		cluster:  cl,
		shuffle:  newShuffleRegistry(),
		toDriver: sim.NewMailbox[driverMsg](k),
		aud:      opts.Audit,
	}
	e.sink = newTraceSink(opts.Trace, opts.TraceFormat)
	e.fs = dfs.New(e.cluster, opts.BlockSize)
	for _, in := range opts.Inputs {
		if _, err := e.fs.Create(in.Name, in.Size, opts.Replication); err != nil {
			return nil, fmt.Errorf("engine: create input: %w", err)
		}
	}
	e.em = newExecManager(e, e.cluster.Size(), opts.BlacklistAfter)
	e.sched = newTaskScheduler(e, opts.JobPolicy)
	for i, node := range e.cluster.Nodes() {
		ex := newExecutor(e, i, node, opts.Policy)
		e.executors = append(e.executors, ex)
		ex.k.Go(fmt.Sprintf("executor-%d", i), ex.main)
	}
	// Executors and DFS datanodes are co-located 1:1, so a node's replicas
	// are unreachable exactly when its executor process is dead or the node
	// is inside a partition window, and replica rot follows the chaos
	// plan's corruption rolls.
	e.fs.SetFaultModel(dfs.FaultModel{
		Unreachable: func(node int) bool {
			return !e.executors[node].alive || e.partitionedNow(node)
		},
		Rotten: func(sum uint32, node int) bool {
			return e.opts.Faults.CorruptReplica(sum, node)
		},
	})
	// Each executor beats to the driver on the heartbeat interval; beats
	// from dead or partitioned executors are dropped at the source. The
	// beat is a periodic kernel event rescheduled in place — one queue
	// entry per executor for the whole run — rather than a process that
	// re-arms a fresh sleep timer per beat.
	// The ticker lives on the executor's own shard kernel, so the beat
	// reads executor state and the shard-local clock without crossing
	// shards; only the resulting message travels.
	for i, ex := range e.executors {
		i, ex := i, ex
		var tick sim.Event
		tick = ex.k.Every(e.opts.HeartbeatInterval, func() {
			if e.done.Load() {
				tick.Cancel()
				return
			}
			if !ex.alive || e.opts.Faults.Partitioned(i, ex.k.Now()) {
				return
			}
			e.sendDriver(ex.shard, driverMsg{heartbeat: &heartbeatMsg{
				exec:      i,
				epoch:     ex.epoch,
				running:   ex.running,
				limit:     ex.limit,
				tasksDone: ex.totalTasks,
			}})
		})
	}
	if opts.Autoscale != nil {
		auto, err := newAutoCtl(e, *opts.Autoscale)
		if err != nil {
			return nil, err
		}
		e.auto = auto
	}
	// Decommissioned executors (autoscale capacity not yet activated) get no
	// detector: they are administratively down, not suspiciously silent.
	// Activation arms theirs through the normal join path.
	for i := range e.executors {
		if e.em.alive[i] {
			e.em.armDetector(i)
		}
	}
	if opts.Metrics != nil {
		// After the autoscaler exists (its gauges read it) and before any
		// event can fire, so the t=0 baseline sample sees assembled state.
		e.tel = newEngineTelemetry(e)
		e.tel.arm()
	}
	if e.aud != nil {
		// After autoscale assembly so t=0 aliveness (including capacity
		// not yet activated) is final, before any event can fire.
		active := make([]bool, len(e.executors))
		copy(active, e.em.alive)
		e.aud.BeginRun(active)
	}
	if !opts.Faults.Empty() {
		e.scheduleFaults(opts.Faults)
	}
	return e, nil
}

// partitionedNow reports whether exec's node is inside a chaos partition
// window at the current virtual time.
func (e *Engine) partitionedNow(exec int) bool {
	return e.opts.Faults.Partitioned(exec, e.k.Now())
}

// Submit registers spec to start at time zero. It must be called before
// Wait.
func (e *Engine) Submit(spec *job.JobSpec) (*JobHandle, error) {
	return e.SubmitAt(0, spec)
}

// SubmitAt registers spec to be admitted at the given virtual time,
// modelling a tenant arriving mid-run. It must be called before Wait.
func (e *Engine) SubmitAt(at time.Duration, spec *job.JobSpec) (*JobHandle, error) {
	if e.started {
		return nil, errors.New("engine: Submit after Wait")
	}
	if at < 0 {
		return nil, errors.New("engine: negative submission time")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	js := newJobState(len(e.jobs), spec, at)
	e.jobs = append(e.jobs, js)
	return &JobHandle{js: js}, nil
}

// Wait runs the simulation until every submitted job has finished or
// failed. It returns only engine-fatal errors (no executors left, broken
// trace sink); per-job outcomes are read from the handles.
func (e *Engine) Wait() error {
	if e.started {
		return errors.New("engine: Wait called twice")
	}
	e.started = true
	if len(e.jobs) == 0 {
		return errors.New("engine: no jobs submitted")
	}
	// With the full job set known, decide between the windowed and merged
	// shard paths (no-op at Shards<=1).
	e.windowed = e.shardWindowsEligible()
	// Admit jobs in batches per distinct submission instant, in submission
	// order within a batch. Task assignment is deferred until the whole
	// batch is admitted: with per-job admission the first job's activation
	// would grab every free slot before the second job's task sets exist,
	// making same-instant admission FIFO regardless of the policy. One
	// assignAll after the batch lets Fair actually share the first wave.
	batches := make(map[time.Duration][]*jobState, len(e.jobs))
	var instants []time.Duration
	for _, js := range e.jobs {
		if _, ok := batches[js.submitAt]; !ok {
			instants = append(instants, js.submitAt)
		}
		batches[js.submitAt] = append(batches[js.submitAt], js)
	}
	sort.Slice(instants, func(i, j int) bool { return instants[i] < instants[j] })
	for _, at := range instants {
		batch := batches[at]
		e.k.At(at, func() {
			e.sched.deferAssign = true
			for _, js := range batch {
				e.startJob(js)
			}
			e.sched.deferAssign = false
			e.sched.assignAll()
		})
	}
	e.k.Go("driver", func(p *sim.Proc) {
		for e.completed < len(e.jobs) && e.fatal == nil {
			msg := e.toDriver.Recv(p)
			switch {
			case msg.taskDone != nil:
				e.sched.handleTaskDone(msg.taskDone)
			case msg.threads != nil:
				e.sched.handleThreads(msg.threads)
			case msg.execLost != nil:
				e.sched.handleExecLost(msg.execLost)
			case msg.execJoin != nil:
				e.sched.handleExecJoin(msg.execJoin)
			case msg.heartbeat != nil:
				e.sched.handleHeartbeat(msg.heartbeat)
			}
		}
		// Housekeeping events (heartbeat tickers, interference streams) see
		// done on their next firing and wind down, draining the queues —
		// the same post-completion drain in all run modes.
		e.done.Store(true)
	})
	if e.opts.OnSetup != nil {
		e.opts.OnSetup(e)
	}
	switch {
	case e.ss == nil:
		e.k.Run()
	case e.windowed:
		e.ss.RunWindows()
	default:
		e.ss.Run()
	}
	if e.auto != nil {
		// Close the node-seconds integral at the end of virtual time.
		e.auto.account()
	}
	if e.tel != nil {
		// Capture the end-of-run state; if the last sampler tick landed on
		// this instant the registry merges last-wins instead of duplicating.
		e.tel.reg.Sample(e.k.Now())
	}
	if e.fatal != nil {
		return e.fatal
	}
	if e.completed < len(e.jobs) {
		return errors.New("engine: jobs did not complete")
	}
	if e.aud != nil {
		e.aud.EndRun()
	}
	return e.sink.flushErr()
}

// Run executes a single job on a fresh simulated cluster and returns its
// report — the one-job convenience wrapper over NewEngine/Submit/Wait.
func Run(opts Options, spec *job.JobSpec) (*JobReport, error) {
	e, err := NewEngine(opts)
	if err != nil {
		return nil, err
	}
	h, err := e.Submit(spec)
	if err != nil {
		return nil, err
	}
	if err := e.Wait(); err != nil {
		return nil, err
	}
	return h.Report()
}

// Kernel returns the simulation kernel.
func (e *Engine) Kernel() *sim.Kernel { return e.k }

// Cluster returns the simulated cluster.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// FS returns the distributed file system.
func (e *Engine) FS() *dfs.FS { return e.fs }

// Executors returns the engine's executors, one per node.
func (e *Engine) Executors() []*Executor { return e.executors }

// Done reports whether every job has finished (for sampler processes).
func (e *Engine) Done() bool { return e.done.Load() }

// InjectDiskInterference starts `streams` background readers hammering
// node's disk with chunk-sized reads from `from` until every job completes —
// a co-located tenant, in the paper's L4 terms. Call from Options.OnSetup.
func (e *Engine) InjectDiskInterference(node int, from time.Duration, streams int, chunk int64) {
	if chunk <= 0 {
		chunk = 32 << 20
	}
	disk := e.cluster.Node(node).Disk
	for i := 0; i < streams; i++ {
		// The stream runs on the node's shard kernel — it hammers a
		// node-local device.
		e.kernelOf(node).Go(fmt.Sprintf("interference-%d-%d", node, i), func(p *sim.Proc) {
			p.Sleep(from)
			for !e.done.Load() {
				disk.Read(p, chunk)
			}
		})
	}
}
