package engine

import (
	"fmt"
	"sort"
	"time"

	"sae/internal/cluster"
	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/metrics"
	"sae/internal/psres"
)

// jobState is the driver's per-job DAG bookkeeping: which stages wait on
// which, which have finished, and the job's attributed I/O and fault
// counters. It is the DAGScheduler half of the split driver — stage
// dependencies and lifecycle live here, while slot accounting and task
// placement live in taskScheduler/execManager.
type jobState struct {
	id       int
	spec     *job.JobSpec
	specs    map[int]*job.StageSpec
	submitAt time.Duration

	// parents[s] is the sorted, deduplicated union of ShuffleFrom and
	// DependsOn edges; children is its transpose; waiting[s] counts
	// unfinished parents. A stage activates when waiting hits zero, so
	// stages with no path between them run concurrently.
	parents  map[int][]int
	children map[int][]int
	waiting  map[int]int

	finished int
	// stageReports is indexed by stage ID, filled as stages complete.
	stageReports []StageReport

	// running counts the job's in-flight task attempts cluster-wide — the
	// Fair policy's share measure.
	running int

	// firstLaunch is when the job's first task attempt left the driver
	// (-1 until then); firstLaunch − submitAt is the job's queueing delay.
	firstLaunch time.Duration

	// Per-job fault counters (window-sliced into StageReports).
	lostExecs     int
	resubmissions int
	requeues      int

	// Gray-failure counters: executors suspected by the heartbeat detector
	// while the job ran, false-positive incarnations fenced, bounded
	// shuffle-fetch retries and DFS checksum-mismatch replica failovers
	// summed from the job's task attempts.
	suspected         int
	fenced            int
	fetchRetries      int
	checksumFailovers int

	// Task-attributed I/O totals: summed from TaskMetrics of every
	// attempt reported while the job ran, so concurrent jobs never
	// double-count each other's device traffic (unlike cluster-global
	// counter deltas).
	diskReadB  int64
	diskWriteB int64
	netB       int64

	report  *JobReport
	err     error
	started bool
	done    bool
}

func newJobState(id int, spec *job.JobSpec, submitAt time.Duration) *jobState {
	js := &jobState{
		id:           id,
		spec:         spec,
		specs:        make(map[int]*job.StageSpec, len(spec.Stages)),
		submitAt:     submitAt,
		parents:      make(map[int][]int, len(spec.Stages)),
		children:     make(map[int][]int, len(spec.Stages)),
		waiting:      make(map[int]int, len(spec.Stages)),
		stageReports: make([]StageReport, len(spec.Stages)),
		firstLaunch:  -1,
	}
	for _, st := range spec.Stages {
		js.specs[st.ID] = st
		deps := append([]int(nil), st.ShuffleFrom...)
		deps = append(deps, st.DependsOn...)
		sort.Ints(deps)
		uniq := deps[:0]
		for i, d := range deps {
			if i == 0 || d != deps[i-1] {
				uniq = append(uniq, d)
			}
		}
		js.parents[st.ID] = uniq
		js.waiting[st.ID] = len(uniq)
		for _, d := range uniq {
			js.children[d] = append(js.children[d], st.ID)
		}
	}
	return js
}

// roots returns the stage IDs with no dependencies, in ascending order.
func (js *jobState) roots() []int {
	var ids []int
	for _, st := range js.spec.Stages {
		if js.waiting[st.ID] == 0 {
			ids = append(ids, st.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

// startJob admits a job at its scheduled time (event context): resolve
// every stage's task count up front, then activate the DAG's root stages.
func (e *Engine) startJob(js *jobState) {
	js.started = true
	e.tel.registerJob(js)
	e.trace(TraceEvent{Type: TraceJobStart, Job: js.id, Stage: -1, Task: -1, Exec: -1, Detail: js.spec.Name})
	for _, st := range js.spec.Stages {
		if err := e.resolveTasks(st); err != nil {
			e.failJob(js, st.ID, err)
			return
		}
	}
	for _, id := range js.roots() {
		e.activateStage(js, id)
		if js.done {
			return
		}
	}
}

// activateStage starts one runnable stage: build its task set, snapshot the
// cluster counters for the stage window, broadcast the stage to live
// executors and assign the first task wave.
func (e *Engine) activateStage(js *jobState, id int) {
	spec := js.specs[id]
	key := setKey{job: js.id, stage: id}
	ts := newTaskSet(key, js, spec, false, nil)
	if spec.InputFile != "" {
		f, err := e.fs.Open(spec.InputFile)
		if err != nil {
			e.failJob(js, id, err)
			return
		}
		ts.splits = dfs.Splits(f, spec.NumTasks)
	}
	// Does any other primary stage share the pool right now? If so the
	// executors' effective limit is the minimum over the active stages'
	// controller choices, and the slot table must follow the same rule.
	shared := e.sched.primaryActive() > 0
	e.sched.sets[key] = ts

	meta := spec.Meta()
	for i, ex := range e.executors {
		if !e.em.alive[i] {
			e.em.limits[i] = 0
			continue
		}
		init := e.opts.Policy.InitialThreads(ex.info, meta)
		if shared && e.em.limits[i] < init {
			// Keep the tighter limit another active stage's controller
			// already chose; the executor computes the same minimum.
		} else {
			e.em.limits[i] = init
		}
		e.sendExec(ex, execMsg{stageStart: &stageStartMsg{job: js.id, stage: spec}})
	}

	// Stage-boundary snapshots for the utilization window. Under
	// concurrent stages/jobs the windows overlap on the shared cluster —
	// the percentages then describe the cluster during this stage, not
	// this stage's own traffic (per-job traffic is task-attributed).
	// A windowed sharded run skips the snapshots: node meters and device
	// counters advance concurrently on their shards, and reading them
	// mid-window would be both racy and nondeterministic. Those runs
	// report zero utilization columns (see DESIGN.md "Sharded simulation").
	ts.start = e.k.Now()
	ts.usage0 = make([]cluster.Usage, e.cluster.Size())
	ts.disk0 = make([]psres.Stats, e.cluster.Size())
	if !e.windowed {
		for i, n := range e.cluster.Nodes() {
			ts.usage0[i] = n.Usage()
			ts.disk0[i] = n.Disk.Snapshot()
			r, w := n.Disk.Counters()
			ts.read0 += r
			ts.write0 += w
			ts.net0 += n.NIC.BytesMoved()
		}
	}
	ts.lost0, ts.resub0, ts.requeue0 = js.lostExecs, js.resubmissions, js.requeues
	ts.recovered0 = e.shuffle.recoveredBytes(js.id)

	ts.stats = make([]ExecutorStageStats, len(e.executors))
	for i, ex := range e.executors {
		ts.stats[i] = ExecutorStageStats{
			Executor:       i,
			Node:           ex.node.ID,
			InitialThreads: e.em.limits[i],
		}
	}

	e.trace(TraceEvent{Type: TraceStageStart, Job: js.id, Stage: id, Task: -1, Exec: -1,
		Detail: fmt.Sprintf("%s (%d tasks)", spec.Name, spec.NumTasks)})
	// Map outputs lost to crashes during earlier stages must be
	// regenerated before this stage's reduce tasks can fetch.
	e.sched.ensureParents(ts)
	e.sched.assignAll()
}

// completeStage closes a finished primary stage: build its StageReport,
// retire the executors' per-stage controllers, and activate any children
// whose dependencies are now all met.
func (e *Engine) completeStage(ts *taskSet) {
	js := ts.js
	id := ts.key.stage
	delete(e.sched.sets, ts.key)
	e.trace(TraceEvent{Type: TraceStageEnd, Job: js.id, Stage: id, Task: -1, Exec: -1})
	for i, ex := range e.executors {
		if e.em.alive[i] {
			e.sendExec(ex, execMsg{stageEnd: &stageEndMsg{job: js.id, stage: id}})
		}
	}

	sr := StageReport{
		ID:                id,
		Name:              ts.stage.Name,
		IOMarked:          ts.stage.IOMarked(),
		Start:             ts.start,
		End:               e.k.Now(),
		Retries:           ts.retries,
		Speculative:       ts.speculative,
		LostExecutors:     js.lostExecs - ts.lost0,
		ResubmittedStages: js.resubmissions - ts.resub0,
		Requeued:          js.requeues - ts.requeue0,
		RecoveredBytes:    e.shuffle.recoveredBytes(js.id) - ts.recovered0,
	}
	if len(ts.durations) > 0 {
		q := metrics.Quantiles(ts.durations, 0.5, 0.95, 1)
		sr.TaskP50, sr.TaskP95, sr.TaskMax = q[0], q[1], q[2]
	}
	vcores := e.opts.Cluster.CPU.VirtualCores
	if !e.windowed {
		for i, n := range e.cluster.Nodes() {
			u := n.Usage()
			d := n.Disk.Snapshot()
			sr.CPUPercent += cluster.CPUPercent(ts.usage0[i], u, vcores)
			sr.IowaitPercent += cluster.IowaitPercent(ts.usage0[i], u, vcores)
			sr.DiskUtilPercent += cluster.DiskUtilization(ts.disk0[i], d)
			r, w := n.Disk.Counters()
			sr.DiskReadBytes += r
			sr.DiskWriteBytes += w
			sr.NetBytes += n.NIC.BytesMoved()
		}
		nn := float64(e.cluster.Size())
		sr.CPUPercent /= nn
		sr.IowaitPercent /= nn
		sr.DiskUtilPercent /= nn
		sr.DiskReadBytes -= ts.read0
		sr.DiskWriteBytes -= ts.write0
		sr.NetBytes -= ts.net0
	}
	for i, ex := range e.executors {
		limit := ex.limit
		if e.windowed {
			// The executor's pool size lives on its shard; report the
			// driver's slot-table view, which the ThreadCountUpdate
			// protocol keeps current.
			limit = e.em.limits[i]
		}
		ts.stats[i].FinalThreads = limit
		sr.ThreadsTotal += limit
		sr.MaxThreadsTotal += ex.info.MaxThreads
	}
	sr.Execs = ts.stats
	js.stageReports[id] = sr

	js.finished++
	if js.finished == len(js.spec.Stages) {
		e.finishJob(js)
		return
	}
	for _, child := range js.children[id] {
		js.waiting[child]--
		if js.waiting[child] == 0 {
			e.activateStage(js, child)
			if js.done {
				return
			}
		}
	}
}

// finishJob assembles the job's report and releases its shuffle state.
func (e *Engine) finishJob(js *jobState) {
	js.done = true
	queueDelay := time.Duration(0)
	if js.firstLaunch >= 0 {
		queueDelay = js.firstLaunch - js.submitAt
	}
	report := &JobReport{
		ID:                js.id,
		Job:               js.spec.Name,
		Policy:            e.opts.Policy.Name(),
		Sched:             e.sched.policy.Name(),
		Tenant:            js.spec.Tenant,
		Priority:          js.spec.Priority,
		SubmittedAt:       js.submitAt,
		QueueDelay:        queueDelay,
		Runtime:           e.k.Now() - js.submitAt,
		Stages:            js.stageReports,
		DiskReadBytes:     js.diskReadB,
		DiskWriteBytes:    js.diskWriteB,
		NetBytes:          js.netB,
		LostExecutors:     js.lostExecs,
		ResubmittedStages: js.resubmissions,
		RecoveredBytes:    e.shuffle.recoveredBytes(js.id),
		Suspected:         js.suspected,
		Fenced:            js.fenced,
		FetchRetries:      js.fetchRetries,
		ChecksumFailovers: js.checksumFailovers,
	}
	for _, ex := range e.executors {
		report.Decisions = append(report.Decisions, ex.jobDecisions(js.id))
		report.ThreadLogs = append(report.ThreadLogs, append([]ThreadChange(nil), ex.threadLog...))
	}
	js.report = report
	if e.aud != nil {
		// Before dropJob so the auditor can close out the job's shuffle
		// mirror alongside the registry.
		e.aud.JobFinished(report)
	}
	e.shuffle.dropJob(js.id)
	e.completed++
	e.trace(TraceEvent{Type: TraceJobEnd, Job: js.id, Stage: -1, Task: -1, Exec: -1, Detail: js.spec.Name})
	e.wakeDriver()
	// Draining nodes may have been serving only this job's shuffle output;
	// with its registrations dropped they can finally decommission.
	e.auto.flushDrains()
}

// failJob aborts one job without touching the others: its task sets are
// dropped (in-flight attempts complete as no-ops) and its error is held for
// the job's handle.
func (e *Engine) failJob(js *jobState, stage int, err error) {
	js.err = fmt.Errorf("job %s stage %d: %w", js.spec.Name, stage, err)
	js.done = true
	for key := range e.sched.sets {
		if key.job == js.id {
			delete(e.sched.sets, key)
		}
	}
	e.completed++
	e.trace(TraceEvent{Type: TraceJobEnd, Job: js.id, Stage: stage, Task: -1, Exec: -1, Detail: js.err.Error()})
	e.wakeDriver()
}

// wakeDriver nudges the driver loop so it re-checks its completion count.
// The zero-value message matches no handler and is ignored.
func (e *Engine) wakeDriver() {
	e.toDriver.Send(0, driverMsg{})
}

// resolveTasks fills in the stage's task count from its input layout.
func (e *Engine) resolveTasks(stage *job.StageSpec) error {
	if stage.NumTasks > 0 {
		return nil
	}
	if stage.InputFile == "" {
		return fmt.Errorf("stage %d has neither tasks nor input", stage.ID)
	}
	f, err := e.fs.Open(stage.InputFile)
	if err != nil {
		return err
	}
	stage.NumTasks = len(f.Blocks)
	if stage.NumTasks == 0 {
		stage.NumTasks = 1
	}
	return nil
}
