package engine

import (
	"fmt"
	"sort"
)

// mapOutput is one map task's registered shuffle output.
type mapOutput struct {
	task  int
	node  int
	bytes int64
	// lost marks output that died with its node (executor crash) and has
	// not been regenerated yet.
	lost bool
}

// shuffleRegistry tracks map-output placement per (job, stage) task set,
// like Spark's MapOutputTracker: each completed map task registers how many
// bytes of shuffle data it spilled on which node; reduce tasks of downstream
// stages fetch their share from each source node. Keys carry the job ID so
// concurrent jobs with identical stage IDs never alias each other's output.
// When an executor is lost, every output on its node is invalidated and the
// driver resubmits the owning map tasks (lineage recovery); regenerated
// registrations replace the lost entries and are counted as recovered bytes,
// attributed to the owning job.
type shuffleRegistry struct {
	// outputs[key] lists registered map outputs in registration order.
	outputs map[setKey][]mapOutput
	// index[key][task] locates a task's entry in outputs[key].
	index map[setKey]map[int]int
	// nodeGen[node] counts losses on node; fetch plans snapshot it so a
	// plan computed before a loss fails validation even after the lost
	// outputs were regenerated elsewhere.
	nodeGen map[int]int
	// recovered[job] is the total bytes re-registered for lost outputs of
	// that job.
	recovered map[int]int64
}

func newShuffleRegistry() *shuffleRegistry {
	return &shuffleRegistry{
		outputs:   make(map[setKey][]mapOutput),
		index:     make(map[setKey]map[int]int),
		nodeGen:   make(map[int]int),
		recovered: make(map[int]int64),
	}
}

// addMapOutput registers bytes of shuffle output that task of key spilled
// on node, and reports the registry's verdict. The first successful
// registration wins (a losing speculative copy's duplicate is dropped); a
// registration for a lost entry replaces it and counts as recovery.
func (r *shuffleRegistry) addMapOutput(key setKey, task, node int, bytes int64) ShuffleOutcome {
	if bytes <= 0 {
		return ShuffleEmpty
	}
	idx := r.index[key]
	if idx == nil {
		idx = make(map[int]int)
		r.index[key] = idx
	}
	if slot, ok := idx[task]; ok {
		out := &r.outputs[key][slot]
		if !out.lost {
			return ShuffleDuplicate // an earlier attempt already won
		}
		r.recovered[key.job] += bytes
		*out = mapOutput{task: task, node: node, bytes: bytes}
		return ShuffleRecovered
	}
	idx[task] = len(r.outputs[key])
	r.outputs[key] = append(r.outputs[key], mapOutput{task: task, node: node, bytes: bytes})
	return ShuffleAccepted
}

// totalBytes returns the key's total currently-valid shuffle output.
func (r *shuffleRegistry) totalBytes(key setKey) int64 {
	var total int64
	for _, out := range r.outputs[key] {
		if !out.lost {
			total += out.bytes
		}
	}
	return total
}

// registeredBytes returns the currently-valid shuffle output registered
// across every task set — the telemetry plane's cluster-wide shuffle gauge.
// The sum is iteration-order independent, so ranging the map is safe.
func (r *shuffleRegistry) registeredBytes() int64 {
	var total int64
	for key := range r.outputs {
		total += r.totalBytes(key)
	}
	return total
}

// removeNode invalidates every registered map output on node (the node's
// executor crashed, taking its local shuffle files with it) and bumps the
// node's generation so outstanding fetch plans go stale.
func (r *shuffleRegistry) removeNode(node int) {
	r.nodeGen[node]++
	for key := range r.outputs {
		outs := r.outputs[key]
		for i := range outs {
			if outs[i].node == node {
				outs[i].lost = true
			}
		}
	}
}

// hasOutput reports whether node still holds any valid registered map
// output. Finished jobs' registrations are dropped (dropJob), so a true
// result means taking the node away would cost an unfinished job data.
func (r *shuffleRegistry) hasOutput(node int) bool {
	for _, outs := range r.outputs {
		for _, out := range outs {
			if !out.lost && out.node == node {
				return true
			}
		}
	}
	return false
}

// dropJob forgets a finished job's registrations (its shuffle files are
// cleaned up, as Spark does at application end).
func (r *shuffleRegistry) dropJob(job int) {
	for key := range r.outputs {
		if key.job == job {
			delete(r.outputs, key)
			delete(r.index, key)
		}
	}
}

// lostTasks returns the sorted task indices of key whose registered output
// is currently lost.
func (r *shuffleRegistry) lostTasks(key setKey) []int {
	var tasks []int
	for _, out := range r.outputs[key] {
		if out.lost {
			tasks = append(tasks, out.task)
		}
	}
	sort.Ints(tasks)
	return tasks
}

// missing reports whether any of the given stages of job has lost output,
// i.e. whether a reduce task fetching from them would under-read.
func (r *shuffleRegistry) missing(job int, from []int) bool {
	for _, stage := range from {
		for _, out := range r.outputs[setKey{job, stage}] {
			if out.lost {
				return true
			}
		}
	}
	return false
}

// recoveredBytes returns the total bytes regenerated for lost outputs of
// job.
func (r *shuffleRegistry) recoveredBytes(job int) int64 { return r.recovered[job] }

// segment is one reduce-side fetch from a source node. gen snapshots the
// node's loss generation at plan time; segmentValid compares it at fetch
// time, so a reduce task holding a plan from before a crash fails its fetch
// instead of silently reading a dead node's data.
type segment struct {
	node  int
	bytes int64
	gen   int
}

// segmentValid reports whether a fetch plan segment is still current.
func (r *shuffleRegistry) segmentValid(s segment) bool {
	return r.nodeGen[s.node] == s.gen
}

// reducePlan returns the per-source-node fetch plan for reduce task idx of
// numTasks, pulling from the given upstream stages of job. Shares divide
// evenly with remainders to the lowest task indices, and segments are
// ordered by node for determinism. Lost outputs are excluded — the driver
// must not launch reduce tasks while any upstream output is missing (see
// shuffleRegistry.missing).
func (r *shuffleRegistry) reducePlan(job int, from []int, numTasks, idx int) []segment {
	if numTasks <= 0 {
		panic(fmt.Sprintf("engine: reducePlan with %d tasks", numTasks))
	}
	byNode := make(map[int]int64)
	for _, st := range from {
		for _, out := range r.outputs[setKey{job, st}] {
			if out.lost {
				continue
			}
			base := out.bytes / int64(numTasks)
			if int64(idx) < out.bytes%int64(numTasks) {
				base++
			}
			byNode[out.node] += base
		}
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	plan := make([]segment, 0, len(nodes))
	for _, n := range nodes {
		if byNode[n] > 0 {
			plan = append(plan, segment{node: n, bytes: byNode[n], gen: r.nodeGen[n]})
		}
	}
	return plan
}
