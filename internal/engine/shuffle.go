package engine

import (
	"fmt"
	"sort"
)

// shuffleRegistry tracks map-output placement, like Spark's
// MapOutputTracker: each completed map task registers how many bytes of
// shuffle data it spilled on which node; reduce tasks of downstream stages
// fetch their share from each source node.
type shuffleRegistry struct {
	// perNode[stage][node] is the total map-output bytes stage left on node.
	perNode map[int]map[int]int64
	total   map[int]int64
}

func newShuffleRegistry() *shuffleRegistry {
	return &shuffleRegistry{perNode: make(map[int]map[int]int64), total: make(map[int]int64)}
}

// addMapOutput registers bytes of stage's shuffle output spilled on node.
func (r *shuffleRegistry) addMapOutput(stage, node int, bytes int64) {
	if bytes <= 0 {
		return
	}
	m := r.perNode[stage]
	if m == nil {
		m = make(map[int]int64)
		r.perNode[stage] = m
	}
	m[node] += bytes
	r.total[stage] += bytes
}

// totalBytes returns stage's total registered shuffle output.
func (r *shuffleRegistry) totalBytes(stage int) int64 { return r.total[stage] }

// segment is one reduce-side fetch from a source node.
type segment struct {
	node  int
	bytes int64
}

// reducePlan returns the per-source-node fetch plan for reduce task idx of
// numTasks, pulling from the given upstream stages. Shares divide evenly
// with remainders to the lowest task indices, and segments are ordered by
// node for determinism.
func (r *shuffleRegistry) reducePlan(from []int, numTasks, idx int) []segment {
	if numTasks <= 0 {
		panic(fmt.Sprintf("engine: reducePlan with %d tasks", numTasks))
	}
	byNode := make(map[int]int64)
	for _, st := range from {
		for node, bytes := range r.perNode[st] {
			base := bytes / int64(numTasks)
			if int64(idx) < bytes%int64(numTasks) {
				base++
			}
			byNode[node] += base
		}
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	plan := make([]segment, 0, len(nodes))
	for _, n := range nodes {
		if byNode[n] > 0 {
			plan = append(plan, segment{node: n, bytes: byNode[n]})
		}
	}
	return plan
}
