package engine

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"sae/internal/autoscale"
	"sae/internal/chaos"
	"sae/internal/core"
	"sae/internal/device"
	"sae/internal/engine/job"
)

// scriptPolicy returns a fixed target per planning tick (the last one
// repeats), so tests can force exact scale decisions.
type scriptPolicy struct {
	targets []int
	i       int
}

func (p *scriptPolicy) Name() string { return "script" }

func (p *scriptPolicy) Target(s autoscale.Snapshot) (int, string) {
	t := p.targets[len(p.targets)-1]
	if p.i < len(p.targets) {
		t = p.targets[p.i]
		p.i++
	}
	return t, "scripted"
}

// countTrace tallies trace event types, optionally for one executor.
func countTrace(t *testing.T, buf *bytes.Buffer) map[string]int {
	t.Helper()
	events, err := ReadTrace(buf)
	if err != nil {
		t.Fatal(err)
	}
	n := map[string]int{}
	for _, ev := range events {
		n[ev.Type]++
	}
	return n
}

// TestDrainNeverTripsFailureDetector is the drain/detector contract: a
// gracefully drained node must finish its in-flight tasks, decommission,
// and never appear in LostExecutors or Suspected — the failure detector has
// nothing to detect.
func TestDrainNeverTripsFailureDetector(t *testing.T) {
	spec, in := pipelineJob("drainjob", 16)
	opts := testOptions(4, core.Default{})
	opts.Inputs = []Input{in}
	var trace bytes.Buffer
	opts.Trace = &trace
	opts.Autoscale = &AutoscaleConfig{
		Policy:            &scriptPolicy{targets: []int{4, 2}},
		Interval:          5 * time.Second,
		MinNodes:          2,
		ScaleDownCooldown: time.Second,
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostExecutors != 0 {
		t.Errorf("LostExecutors = %d, want 0: a drain is not a loss", rep.LostExecutors)
	}
	if rep.Suspected != 0 {
		t.Errorf("Suspected = %d, want 0: drained nodes stop beating only after decommission", rep.Suspected)
	}
	n := countTrace(t, &trace)
	if n[TraceDrain] != 2 || n[TraceDecommission] != 2 {
		t.Errorf("drains/decommissions = %d/%d, want 2/2", n[TraceDrain], n[TraceDecommission])
	}
	if n[TraceExecLost] != 0 || n[TraceExecSuspect] != 0 || n[TraceExecCrash] != 0 {
		t.Errorf("failure-path events during graceful drain: %v", n)
	}
	// A graceful drain keeps serving registered map output until its
	// consumers finish — it must never force a lineage resubmission.
	if n[TraceStageResubmit] != 0 || rep.ResubmittedStages != 0 {
		t.Errorf("graceful drain destroyed referenced shuffle output: %d resubmit event(s), report %d",
			n[TraceStageResubmit], rep.ResubmittedStages)
	}
}

// TestScaleUpActivatesNodes starts small and scales out: the activated
// nodes join through the exec-join path and run tasks.
func TestScaleUpActivatesNodes(t *testing.T) {
	spec, in := pipelineJob("growjob", 32)
	opts := testOptions(4, core.Default{})
	opts.Inputs = []Input{in}
	var trace bytes.Buffer
	opts.Trace = &trace
	opts.Autoscale = &AutoscaleConfig{
		Policy:          &scriptPolicy{targets: []int{4}},
		Interval:        5 * time.Second,
		InitialNodes:    1,
		ProvisionDelay:  2 * time.Second,
		ScaleUpCooldown: time.Second,
	}
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	rep, err := h.Report()
	if err != nil {
		t.Fatal(err)
	}
	ar := e.AutoscaleReport()
	if ar == nil || ar.Activations != 3 {
		t.Fatalf("autoscale report = %+v, want 3 activations", ar)
	}
	if ar.PeakNodes != 4 || ar.FinalNodes != 4 {
		t.Errorf("peak/final nodes = %d/%d, want 4/4", ar.PeakNodes, ar.FinalNodes)
	}
	if ar.NodeSeconds <= 0 {
		t.Error("node-seconds not accounted")
	}
	if rep.LostExecutors != 0 || rep.Suspected != 0 {
		t.Errorf("scale-up produced losses: lost=%d suspected=%d", rep.LostExecutors, rep.Suspected)
	}
	// The late joiners must actually have run work in some stage.
	ran := map[int]bool{}
	for _, st := range rep.Stages {
		for _, es := range st.Execs {
			if es.Tasks > 0 {
				ran[es.Executor] = true
			}
		}
	}
	if len(ran) < 2 {
		t.Errorf("only executors %v ran tasks; scaled-up nodes never joined", ran)
	}
	if n := countTrace(t, &trace); n[TraceScaleUp] != 3 {
		t.Errorf("scale_up events = %d, want 3", n[TraceScaleUp])
	}
}

// TestCrashMidDrainStillRecovers kills a node after its drain begins but
// before it quiesces: the crash must flow through the normal loss/lineage
// machinery — its registered map output is regenerated and the job still
// completes correctly.
func TestCrashMidDrainStillRecovers(t *testing.T) {
	// Short map, long reduce: every node holds registered map output when
	// the drain starts at the t=6s tick, so the draining node is still
	// obligated (in-flight reduce tasks plus shuffle data) when the crash at
	// t=7s kills it — it can never quiesce gracefully.
	in := int64(16) * 64 * device.MiB
	spec := &job.JobSpec{
		Name: "midcrash",
		Stages: []*job.StageSpec{
			{ID: 0, Name: "map", InputFile: "mc/in", CPUSecondsPerTask: 0.05,
				ShuffleWriteBytes: in / 2},
			{ID: 1, Name: "reduce", NumTasks: 48, ShuffleFrom: []int{0},
				CPUSecondsPerTask: 1.5, OutputFile: "mc/out", OutputBytes: in / 4},
		},
	}
	opts := testOptions(4, core.Static{IOThreads: 4})
	opts.Inputs = []Input{{Name: "mc/in", Size: in}}
	var trace bytes.Buffer
	opts.Trace = &trace
	opts.Autoscale = &AutoscaleConfig{
		Policy:            &scriptPolicy{targets: []int{3}},
		Interval:          6 * time.Second,
		MinNodes:          1,
		ScaleDownCooldown: time.Second,
	}
	opts.Faults = &chaos.Plan{
		Name:    "draincrash",
		Crashes: []chaos.Crash{{Exec: 3, At: 7 * time.Second}},
	}
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	n := countTrace(t, &trace)
	if n[TraceDrain] != 1 {
		t.Fatalf("drain events = %d, want 1 (node 3 draining at t=8s)", n[TraceDrain])
	}
	if n[TraceExecCrash] != 1 {
		t.Fatalf("crash events = %d, want 1 (node 3 dying mid-drain)", n[TraceExecCrash])
	}
	if n[TraceDecommission] != 0 {
		t.Errorf("decommission events = %d, want 0: the node died before quiescing", n[TraceDecommission])
	}
	if rep.ResubmittedStages == 0 {
		t.Errorf("no lineage resubmission: the crashed node's registered map output was never regenerated (report: %+v)", rep)
	}
}

// TestAutoscaleDeterminism replays a full elastic run — staggered tenant
// arrivals, adaptive policy, scale-ups and drains — and demands
// byte-identical traces and reports.
func TestAutoscaleDeterminism(t *testing.T) {
	run := func() ([]*JobReport, []byte, *AutoscaleReport) {
		var trace bytes.Buffer
		opts := testOptions(6, core.Default{})
		opts.Trace = &trace
		opts.JobPolicy = Fair{}
		opts.Autoscale = &AutoscaleConfig{
			Policy:            autoscale.DefaultAdaptive(),
			Interval:          10 * time.Second,
			InitialNodes:      2,
			MinNodes:          1,
			ProvisionDelay:    5 * time.Second,
			ScaleUpCooldown:   5 * time.Second,
			ScaleDownCooldown: 20 * time.Second,
		}
		var handles []*JobHandle
		specs := make([]*job.JobSpec, 0, 4)
		for i := 0; i < 4; i++ {
			spec, in := pipelineJob([]string{"a", "b", "c", "d"}[i], 8)
			spec.Tenant = []string{"interactive", "batch", "interactive", "batch"}[i]
			specs = append(specs, spec)
			opts.Inputs = append(opts.Inputs, in)
		}
		eng, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, spec := range specs {
			h, err := eng.SubmitAt(time.Duration(i)*25*time.Second, spec)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		if err := eng.Wait(); err != nil {
			t.Fatal(err)
		}
		var reps []*JobReport
		for _, h := range handles {
			rep, err := h.Report()
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, rep)
		}
		return reps, trace.Bytes(), eng.AutoscaleReport()
	}
	reps1, trace1, ar1 := run()
	reps2, trace2, ar2 := run()
	for i := range reps1 {
		if !reflect.DeepEqual(reps1[i], reps2[i]) {
			t.Errorf("job %d report differs between identical elastic runs", i)
		}
	}
	if !bytes.Equal(trace1, trace2) {
		t.Error("traces differ between identical elastic runs")
	}
	if !reflect.DeepEqual(ar1, ar2) {
		t.Errorf("autoscale reports differ: %+v vs %+v", ar1, ar2)
	}
	for _, rep := range reps1 {
		if rep.Tenant == "" {
			t.Error("tenant label lost on report")
		}
		if rep.QueueDelay < 0 {
			t.Errorf("negative queue delay %v", rep.QueueDelay)
		}
	}
}

// TestSameInstantAdmissionOrder is the SubmitAt regression test: two jobs
// submitted at the same sim instant are admitted in submission-sequence
// order under both FIFO and Fair, and Fair actually shares the first slot
// wave between them instead of letting the first admission grab everything.
func TestSameInstantAdmissionOrder(t *testing.T) {
	firstWave := func(pol InterJobPolicy) (order []int, wave map[int]int) {
		specA, inA := pipelineJob("alpha", 16)
		specB, inB := pipelineJob("beta", 16)
		// 2 threads × 4 nodes = 8 slots < 16+16 tasks, so the first wave
		// is contended and the admission order is observable.
		opts := testOptions(4, core.Static{IOThreads: 2})
		opts.JobPolicy = pol
		opts.Inputs = []Input{inA, inB}
		var trace bytes.Buffer
		opts.Trace = &trace
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.SubmitAt(10*time.Second, specA); err != nil {
			t.Fatal(err)
		}
		if _, err := e.SubmitAt(10*time.Second, specB); err != nil {
			t.Fatal(err)
		}
		if err := e.Wait(); err != nil {
			t.Fatal(err)
		}
		events, err := ReadTrace(&trace)
		if err != nil {
			t.Fatal(err)
		}
		wave = map[int]int{}
		for _, ev := range events {
			switch ev.Type {
			case TraceJobStart:
				order = append(order, ev.Job)
			case TraceTaskLaunch:
				if ev.At == 10.0 {
					wave[ev.Job]++
				}
			}
		}
		return order, wave
	}
	for _, pol := range []InterJobPolicy{FIFO{}, Fair{}} {
		order, wave := firstWave(pol)
		if len(order) != 2 || order[0] != 0 || order[1] != 1 {
			t.Errorf("%s: job_start order = %v, want [0 1] (submission sequence)", pol.Name(), order)
		}
		switch pol.(type) {
		case FIFO:
			if wave[1] != 0 || wave[0] == 0 {
				t.Errorf("FIFO first wave = %v, want all slots on job 0", wave)
			}
		case Fair:
			if wave[0] == 0 || wave[1] == 0 {
				t.Errorf("FAIR first wave = %v, want both same-instant jobs sharing slots", wave)
			}
		}
	}
}

// TestPriorityPolicyPrefersUrgentJobs checks the Priority inter-job policy:
// a high-priority job submitted at the same instant as a low-priority one
// gets the contended first wave.
func TestPriorityPolicyPrefersUrgentJobs(t *testing.T) {
	specA, inA := pipelineJob("low", 16)
	specB, inB := pipelineJob("high", 16)
	specB.Priority = 5
	opts := testOptions(4, core.Static{IOThreads: 2})
	opts.JobPolicy = Priority{}
	opts.Inputs = []Input{inA, inB}
	var trace bytes.Buffer
	opts.Trace = &trace
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(specA); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(specB); err != nil {
		t.Fatal(err)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	wave := map[int]int{}
	for _, ev := range events {
		if ev.Type == TraceTaskLaunch && ev.At == 0 {
			wave[ev.Job]++
		}
	}
	if wave[1] == 0 || wave[0] != 0 {
		t.Errorf("first wave = %v, want every contended slot on the high-priority job 1", wave)
	}
}
