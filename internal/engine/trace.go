package engine

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one line of the engine's event log — the analogue of
// Spark's event-log JSON, usable for timeline visualization and debugging.
// Times are virtual seconds since job start.
type TraceEvent struct {
	At   float64 `json:"t"`
	Type string  `json:"type"`
	// Job is the job ID (submission index; -1 for engine-wide events
	// such as executor crashes).
	Job int `json:"job"`
	// Stage is the stage ID (-1 when not applicable).
	Stage int `json:"stage"`
	// Task is the task index (-1 when not applicable).
	Task int `json:"task"`
	// Exec is the executor ID (-1 when not applicable).
	Exec int `json:"exec"`
	// Threads is the pool size for resize events (0 otherwise).
	Threads int `json:"threads"`
	// Span and Parent are the event's span ID and its parent's — populated
	// only in v2 traces (see TraceFormat), 0 otherwise. Starts and ends of
	// the same job/stage/task attempt share one span ID; task spans parent
	// to their stage span, stage spans to their job span.
	Span   int64  `json:"span,omitempty"`
	Parent int64  `json:"parent,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Trace event types.
const (
	TraceJobStart   = "job_start"
	TraceJobEnd     = "job_end"
	TraceStageStart = "stage_start"
	TraceStageEnd   = "stage_end"
	TraceTaskLaunch = "task_launch"
	TraceTaskEnd    = "task_end"
	TraceTaskFail   = "task_fail"
	TraceResize     = "resize"
	TraceSpeculate  = "speculate"
	// Fault-path events (chaos schedules and recovery). TraceExecCrash
	// marks the physical process death; TraceExecLost marks the driver
	// *declaring* the executor lost (heartbeat timeout), which under the
	// failure detector happens strictly later.
	TraceExecCrash     = "exec_crash"
	TraceExecLost      = "exec_lost"
	TraceExecRestart   = "exec_restart"
	TraceStageResubmit = "stage_resubmit"
	TraceBlacklist     = "blacklist"
	// Gray-failure events: suspicion raised/cleared by the heartbeat
	// detector, a false-positive incarnation fenced, a node throttled by
	// the chaos plan, a partition window opening/healing, and a DFS block
	// checksum mismatch triggering replica failover.
	TraceExecSuspect = "exec_suspect"
	TraceExecFence   = "exec_fence"
	TraceExecSlow    = "exec_slow"
	TracePartition   = "partition"
	TraceChecksum    = "checksum"
	// Elasticity events: the autoscaler provisioning a node (it joins
	// ProvisionDelay later via exec-join), starting a graceful drain, and
	// decommissioning the quiesced node. A drain that ends in exec_crash /
	// exec_lost instead of decommission is a node dying mid-drain.
	TraceScaleUp      = "scale_up"
	TraceDrain        = "drain"
	TraceDecommission = "decommission"
)

// traceSink serializes events to the configured writer. The v1 format
// (TraceFormat <= 1) is the legacy flat encoding, kept byte-identical so
// existing readers and golden traces keep working; v2 prefixes a versioned
// header, encodes sentinels consistently (absent fields are omitted rather
// than written as -1/0) and threads span IDs through the events.
type traceSink struct {
	enc   *json.Encoder
	err   error
	v2    bool
	wrote bool
	spans *spanTracker
}

func newTraceSink(w io.Writer, format int) *traceSink {
	if w == nil {
		return nil
	}
	t := &traceSink{enc: json.NewEncoder(w)}
	if format >= 2 {
		t.v2 = true
		t.spans = newSpanTracker()
	}
	return t
}

// emit writes one event; encoding errors are remembered and surfaced once
// at job end rather than failing tasks mid-flight.
func (t *traceSink) emit(ev TraceEvent) {
	if t == nil || t.err != nil {
		return
	}
	if !t.v2 {
		t.err = t.enc.Encode(ev)
		return
	}
	if !t.wrote {
		t.wrote = true
		if t.err = t.enc.Encode(newTraceHeader()); t.err != nil {
			return
		}
	}
	t.spans.annotate(&ev)
	t.err = t.enc.Encode(encodeV2(ev))
}

func (t *traceSink) flushErr() error {
	if t == nil || t.err == nil {
		return nil
	}
	return fmt.Errorf("engine: trace log: %w", t.err)
}

// trace emits an event if tracing is enabled, mirrors it into the
// telemetry event counters if a metrics registry is attached, and into the
// audit plane if an auditor is attached. The auditor sees exactly the
// bytes-equivalent event the sink would emit (At populated), in emission
// order, whether or not a sink exists.
func (e *Engine) trace(ev TraceEvent) {
	e.tel.onEvent(ev.Type)
	if e.aud == nil && e.sink == nil {
		return
	}
	ev.At = e.k.Now().Seconds()
	if e.aud != nil {
		e.aud.Event(ev)
	}
	if e.sink != nil {
		e.sink.emit(ev)
	}
}

// ReadTrace decodes a trace log produced via Options.Trace, accepting both
// the legacy flat v1 format and v2 logs with a header (the header line is
// skipped; see ReadTraceWithHeader to inspect it).
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	_, evs, err := ReadTraceWithHeader(r)
	return evs, err
}
