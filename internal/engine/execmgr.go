package engine

import "fmt"

// execManager owns the driver-side view of the executor fleet: the slot
// table (limit − inflight per executor, following the executors'
// ThreadCountUpdate messages), incarnation epochs, consecutive-failure
// streaks and the blacklist. It is cluster-scoped — one instance serves
// every job on the engine — so an executor lost while job A runs is still
// gone when job B's stages schedule, exactly like Spark's
// TaskSchedulerImpl-level executor tracking.
type execManager struct {
	eng *Engine

	// limits is the driver's copy of each executor's pool size; inflight
	// counts assignments not yet reported done. limit − inflight is the
	// executor's free slot count.
	limits   []int
	inflight []int
	// inflightJob breaks inflight down per job, so a crash can return the
	// dead executor's slots to the right jobs' fair-share accounts.
	inflightJob []map[int]int
	// epochs mirrors each executor's incarnation counter; messages from an
	// older incarnation are stale and dropped.
	epochs     []int
	failStreak []int
	alive      []bool
	// blacklisted marks executors with blacklistAfter consecutive task
	// failures; they receive no new work until a crash/restart clears the
	// flag.
	blacklisted []bool

	// blacklistAfter is the consecutive-failure threshold (Spark's
	// spark.blacklist analogue; 0 disables blacklisting).
	blacklistAfter int
}

func newExecManager(eng *Engine, n, blacklistAfter int) *execManager {
	m := &execManager{
		eng:            eng,
		limits:         make([]int, n),
		inflight:       make([]int, n),
		inflightJob:    make([]map[int]int, n),
		epochs:         make([]int, n),
		failStreak:     make([]int, n),
		alive:          make([]bool, n),
		blacklisted:    make([]bool, n),
		blacklistAfter: blacklistAfter,
	}
	for i := range m.alive {
		m.alive[i] = true
		m.inflightJob[i] = make(map[int]int)
	}
	return m
}

// assignable reports whether executor i may receive new tasks.
func (m *execManager) assignable(i int) bool { return m.alive[i] && !m.blacklisted[i] }

// anyAssignable reports whether any executor can still receive tasks.
func (m *execManager) anyAssignable() bool {
	for i := range m.alive {
		if m.assignable(i) {
			return true
		}
	}
	return false
}

// otherFree reports whether any executor besides i has a free slot.
func (m *execManager) otherFree(i int) bool {
	for j := range m.alive {
		if j != i && m.assignable(j) && m.inflight[j] < m.limits[j] {
			return true
		}
	}
	return false
}

// launched records one task assignment to executor i on behalf of jobID.
func (m *execManager) launched(i, jobID int) {
	m.inflight[i]++
	m.inflightJob[i][jobID]++
	m.eng.jobs[jobID].running++
}

// completed records one reported attempt completion from executor i.
func (m *execManager) completed(i, jobID int) {
	m.inflight[i]--
	m.inflightJob[i][jobID]--
	m.eng.jobs[jobID].running--
}

// noteFailure advances the executor's failure streak and blacklists it
// after blacklistAfter consecutive failures — provided at least one other
// executor remains assignable.
func (m *execManager) noteFailure(exec, jobID, stage int) {
	m.failStreak[exec]++
	if m.blacklistAfter <= 0 || m.blacklisted[exec] || m.failStreak[exec] < m.blacklistAfter {
		return
	}
	for i := range m.alive {
		if i != exec && m.assignable(i) {
			m.blacklisted[exec] = true
			m.eng.trace(TraceEvent{Type: TraceBlacklist, Job: jobID, Stage: stage, Task: -1, Exec: exec,
				Detail: fmt.Sprintf("%d consecutive failures", m.failStreak[exec])})
			return
		}
	}
}

// markLost resets the dead executor's driver-side state, returning its
// in-flight slots to the owning jobs' running counts. Iteration over the
// per-job counts is unordered but commutative, so the resulting state is
// deterministic.
func (m *execManager) markLost(exec, epoch int) {
	m.alive[exec] = false
	m.epochs[exec] = epoch
	m.limits[exec] = 0
	m.inflight[exec] = 0
	for jobID, n := range m.inflightJob[exec] {
		m.eng.jobs[jobID].running -= n
	}
	m.inflightJob[exec] = make(map[int]int)
	m.failStreak[exec] = 0
	m.blacklisted[exec] = false
}

// markJoined re-admits a restarted executor with a clean record.
func (m *execManager) markJoined(exec, epoch int) {
	m.alive[exec] = true
	m.epochs[exec] = epoch
	m.failStreak[exec] = 0
	m.blacklisted[exec] = false
}
