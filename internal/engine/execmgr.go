package engine

import (
	"fmt"
	"time"

	"sae/internal/sim"
)

// execManager owns the driver-side view of the executor fleet: the slot
// table (limit − inflight per executor, following the executors'
// ThreadCountUpdate messages), incarnation epochs, consecutive-failure
// streaks and the blacklist. It is cluster-scoped — one instance serves
// every job on the engine — so an executor lost while job A runs is still
// gone when job B's stages schedule, exactly like Spark's
// TaskSchedulerImpl-level executor tracking.
type execManager struct {
	eng *Engine

	// limits is the driver's copy of each executor's pool size; inflight
	// counts assignments not yet reported done. limit − inflight is the
	// executor's free slot count.
	limits   []int
	inflight []int
	// inflightJob breaks inflight down per job, so a crash can return the
	// dead executor's slots to the right jobs' fair-share accounts.
	inflightJob []map[int]int
	// epochs mirrors each executor's incarnation counter; messages from an
	// older incarnation are stale and dropped.
	epochs     []int
	failStreak []int
	alive      []bool
	// blacklisted marks executors with blacklistAfter consecutive task
	// failures; they receive no new work until a crash/restart clears the
	// flag.
	blacklisted []bool
	// admin is the autoscaler's administrative state per executor
	// (active/draining/down), orthogonal to liveness. Without an
	// autoscaler every executor stays adminActive for the whole run. Admin
	// transitions belong to the autoscale controller only — markJoined
	// deliberately leaves them alone, so a fenced-and-rejoined incarnation
	// cannot un-drain its node.
	admin []adminState

	// blacklistAfter is the consecutive-failure threshold (Spark's
	// spark.blacklist analogue; 0 disables blacklisting).
	blacklistAfter int

	// Failure-detector state. The driver learns of executor loss only from
	// heartbeat silence: lastBeat records each executor's most recent
	// accepted beat; suspected marks executors whose beats stopped
	// suspectAfter ago (no new work until a beat clears it); fencing marks
	// declared-lost executors that turned out to be alive and were ordered
	// to adopt a fresh epoch. suspectEv/lostEv are the armed timers.
	lastBeat  []time.Duration
	suspected []bool
	fencing   []bool
	suspectEv []sim.Event
	lostEv    []sim.Event
	// onSuspectFn/onLostFn hold the per-executor timer callbacks, built once
	// at construction so re-arming a detector never allocates a closure.
	onSuspectFn []func()
	onLostFn    []func()
	// lastProgress mirrors the latest beat's task-progress payload, for
	// introspection and debugging.
	lastProgress []int
}

func newExecManager(eng *Engine, n, blacklistAfter int) *execManager {
	m := &execManager{
		eng:            eng,
		limits:         make([]int, n),
		inflight:       make([]int, n),
		inflightJob:    make([]map[int]int, n),
		epochs:         make([]int, n),
		failStreak:     make([]int, n),
		alive:          make([]bool, n),
		blacklisted:    make([]bool, n),
		admin:          make([]adminState, n),
		blacklistAfter: blacklistAfter,
		lastBeat:       make([]time.Duration, n),
		suspected:      make([]bool, n),
		fencing:        make([]bool, n),
		suspectEv:      make([]sim.Event, n),
		lostEv:         make([]sim.Event, n),
		onSuspectFn:    make([]func(), n),
		onLostFn:       make([]func(), n),
		lastProgress:   make([]int, n),
	}
	for i := range m.alive {
		m.alive[i] = true
		m.inflightJob[i] = make(map[int]int)
		i := i
		m.onSuspectFn[i] = func() { m.onSuspect(i) }
		m.onLostFn[i] = func() { m.onLost(i) }
	}
	return m
}

// suspectAfter is how long without a beat before an executor is suspected.
func (m *execManager) suspectAfter() time.Duration {
	o := &m.eng.opts
	return time.Duration(o.HeartbeatMissedBeats) * o.HeartbeatInterval
}

// armDetector (re)starts the failure-detector timer for executor i from the
// current instant, as if a beat had just been accepted. The suspect deadline
// is pushed back in place on every beat — the kernel-queue churn of
// cancelling and reallocating a timer per heartbeat is what the indexed
// event queue exists to avoid.
func (m *execManager) armDetector(i int) {
	m.lostEv[i].Cancel()
	m.lostEv[i] = sim.Event{}
	m.lastBeat[i] = m.eng.k.Now()
	if m.suspectEv[i].Active() {
		m.suspectEv[i].Reschedule(m.eng.k.Now() + m.suspectAfter())
	} else {
		m.suspectEv[i] = m.eng.k.After(m.suspectAfter(), m.onSuspectFn[i])
	}
}

func (m *execManager) cancelTimers(i int) {
	m.suspectEv[i].Cancel()
	m.suspectEv[i] = sim.Event{}
	m.lostEv[i].Cancel()
	m.lostEv[i] = sim.Event{}
}

// noteBeat accepts a heartbeat from a live executor: record progress, clear
// any standing suspicion (the slow node caught up) and re-arm the timer.
func (m *execManager) noteBeat(b *heartbeatMsg) {
	i := b.exec
	m.lastProgress[i] = b.tasksDone
	if m.suspected[i] {
		m.suspected[i] = false
		m.eng.trace(TraceEvent{Type: TraceExecSuspect, Job: -1, Stage: -1, Task: -1, Exec: i,
			Detail: "cleared by heartbeat"})
		m.eng.sched.assign(i)
	}
	m.armDetector(i)
}

// onSuspect fires when suspectAfter passes with no beat: the executor stops
// receiving new work, and the loss timer starts. Runs in event context.
func (m *execManager) onSuspect(i int) {
	m.suspectEv[i] = sim.Event{}
	if m.eng.done.Load() || !m.alive[i] {
		return
	}
	m.suspected[i] = true
	m.eng.trace(TraceEvent{Type: TraceExecSuspect, Job: -1, Stage: -1, Task: -1, Exec: i,
		Detail: fmt.Sprintf("no heartbeat for %s", m.eng.k.Now()-m.lastBeat[i])})
	for _, js := range m.eng.jobs {
		if js.started && !js.done {
			js.suspected++
		}
	}
	wait := m.eng.opts.HeartbeatTimeout - m.suspectAfter()
	m.lostEv[i] = m.eng.k.After(wait, m.onLostFn[i])
}

// onLost fires at the heartbeat timeout: declare the incarnation lost. The
// declaration goes through the driver mailbox so every scheduler mutation
// happens in the driver loop, in deterministic message order.
func (m *execManager) onLost(i int) {
	m.lostEv[i] = sim.Event{}
	if m.eng.done.Load() || !m.alive[i] {
		return
	}
	m.eng.toDriver.Send(0, driverMsg{execLost: &execLostMsg{exec: i, epoch: m.epochs[i]}})
}

// assignable reports whether executor i may receive new tasks. Draining and
// decommissioned nodes are excluded here — one check covers every
// assignment path — while their in-flight tasks keep completing normally.
func (m *execManager) assignable(i int) bool {
	return m.alive[i] && !m.blacklisted[i] && !m.suspected[i] && m.admin[i] == adminActive
}

// anyAssignable reports whether any executor can still receive tasks.
func (m *execManager) anyAssignable() bool {
	for i := range m.alive {
		if m.assignable(i) {
			return true
		}
	}
	return false
}

// otherFree reports whether any executor besides i has a free slot.
func (m *execManager) otherFree(i int) bool {
	for j := range m.alive {
		if j != i && m.assignable(j) && m.inflight[j] < m.limits[j] {
			return true
		}
	}
	return false
}

// launched records one task assignment to executor i on behalf of jobID.
func (m *execManager) launched(i, jobID int) {
	if a := m.eng.aud; a != nil {
		a.SlotLaunched(i, jobID)
	}
	m.inflight[i]++
	m.inflightJob[i][jobID]++
	m.eng.jobs[jobID].running++
}

// completed records one reported attempt completion from executor i. A
// draining node whose last in-flight task just finished has quiesced; the
// autoscaler is told, and defers the decommission to a same-instant kernel
// event so it never mutates scheduler state mid-completion-handler.
func (m *execManager) completed(i, jobID int) {
	if a := m.eng.aud; a != nil {
		a.SlotReleased(i, jobID)
	}
	m.inflight[i]--
	m.inflightJob[i][jobID]--
	m.eng.jobs[jobID].running--
	if m.inflight[i] == 0 && m.admin[i] == adminDraining && m.eng.auto != nil {
		m.eng.auto.drainQuiesced(i)
	}
}

// noteFailure advances the executor's failure streak and blacklists it
// after blacklistAfter consecutive failures — provided at least one other
// executor remains assignable.
func (m *execManager) noteFailure(exec, jobID, stage int) {
	m.failStreak[exec]++
	if m.blacklistAfter <= 0 || m.blacklisted[exec] || m.failStreak[exec] < m.blacklistAfter {
		return
	}
	for i := range m.alive {
		if i != exec && m.assignable(i) {
			m.blacklisted[exec] = true
			m.eng.trace(TraceEvent{Type: TraceBlacklist, Job: jobID, Stage: stage, Task: -1, Exec: exec,
				Detail: fmt.Sprintf("%d consecutive failures", m.failStreak[exec])})
			return
		}
	}
}

// markLost resets the dead executor's driver-side state, returning its
// in-flight slots to the owning jobs' running counts. Iteration over the
// per-job counts is unordered but commutative, so the resulting state is
// deterministic.
func (m *execManager) markLost(exec, epoch int) {
	if m.eng.auto != nil {
		// Bill the elapsed interval at the old live count before it drops.
		m.eng.auto.account()
		// A node dying mid-drain will never quiesce; it leaves the billed
		// set now, and its loss (requeue + lineage) is processed by the
		// caller exactly as for any crash.
		if m.admin[exec] == adminDraining {
			m.admin[exec] = adminDown
		}
	}
	m.alive[exec] = false
	m.epochs[exec] = epoch
	m.limits[exec] = 0
	if testBug != bugSkipSlotReclaim {
		if a := m.eng.aud; a != nil {
			a.SlotsReclaimed(exec, m.inflight[exec])
		}
		m.inflight[exec] = 0
		for jobID, n := range m.inflightJob[exec] {
			m.eng.jobs[jobID].running -= n
		}
		m.inflightJob[exec] = make(map[int]int)
	}
	m.failStreak[exec] = 0
	m.blacklisted[exec] = false
	m.suspected[exec] = false
	m.fencing[exec] = false
	m.cancelTimers(exec)
}

// markJoined re-admits a restarted (or fenced-and-rejoined) executor with a
// clean record and a freshly armed failure detector.
func (m *execManager) markJoined(exec, epoch int) {
	if m.eng.auto != nil {
		m.eng.auto.account()
	}
	m.alive[exec] = true
	m.epochs[exec] = epoch
	if a := m.eng.aud; a != nil {
		a.ExecutorEpoch(exec, epoch)
	}
	m.failStreak[exec] = 0
	m.blacklisted[exec] = false
	m.suspected[exec] = false
	m.fencing[exec] = false
	m.armDetector(exec)
}
