package engine

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceVersion is the version stamped into v2 trace headers.
const TraceVersion = 2

// TraceHeaderType is the Type of the header line a v2 trace starts with.
const TraceHeaderType = "trace_header"

// TraceHeader is the first line of a v2 trace log. Pre-v2 logs have no
// header; readers treat a missing header as the legacy flat format.
type TraceHeader struct {
	Type    string `json:"type"`
	Version int    `json:"version"`
	// Format documents the line encoding: flat events with span IDs
	// threaded through job/stage/task lifecycles.
	Format string `json:"format,omitempty"`
}

func newTraceHeader() TraceHeader {
	return TraceHeader{Type: TraceHeaderType, Version: TraceVersion, Format: "flat+spans"}
}

// traceEventV2 is the v2 wire form of TraceEvent. Unlike v1 — where
// Job/Stage/Task/Exec are always written (-1 when not applicable) while
// Threads is always written as 0 — v2 is omitempty-consistent: a field
// that does not apply is absent. Pointers make "0" and "absent"
// distinguishable both ways; struct field order fixes the encoding.
type traceEventV2 struct {
	At      float64 `json:"t"`
	Type    string  `json:"type"`
	Job     *int    `json:"job,omitempty"`
	Stage   *int    `json:"stage,omitempty"`
	Task    *int    `json:"task,omitempty"`
	Exec    *int    `json:"exec,omitempty"`
	Threads *int    `json:"threads,omitempty"`
	Span    int64   `json:"span,omitempty"`
	Parent  int64   `json:"parent,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

func encodeV2(ev TraceEvent) traceEventV2 {
	opt := func(v, sentinel int) *int {
		if v == sentinel {
			return nil
		}
		return &v
	}
	return traceEventV2{
		At:      ev.At,
		Type:    ev.Type,
		Job:     opt(ev.Job, -1),
		Stage:   opt(ev.Stage, -1),
		Task:    opt(ev.Task, -1),
		Exec:    opt(ev.Exec, -1),
		Threads: opt(ev.Threads, 0),
		Span:    ev.Span,
		Parent:  ev.Parent,
		Detail:  ev.Detail,
	}
}

// event converts back to the in-memory form, restoring the v1 sentinels so
// analysis code sees one representation regardless of trace version.
func (v traceEventV2) event() TraceEvent {
	val := func(p *int, sentinel int) int {
		if p == nil {
			return sentinel
		}
		return *p
	}
	return TraceEvent{
		At:      v.At,
		Type:    v.Type,
		Job:     val(v.Job, -1),
		Stage:   val(v.Stage, -1),
		Task:    val(v.Task, -1),
		Exec:    val(v.Exec, -1),
		Threads: val(v.Threads, 0),
		Span:    v.Span,
		Parent:  v.Parent,
		Detail:  v.Detail,
	}
}

// taskSpanKey identifies one task attempt: at most one attempt of a task
// runs on a given executor at a time, and speculative copies run elsewhere.
type taskSpanKey struct {
	job, stage, task, exec int
}

// spanTracker assigns deterministic span IDs to job→stage→task-attempt
// lifecycles as events stream through the sink. IDs are allocated in event
// order, so same-seed runs produce identical span graphs.
type spanTracker struct {
	next   int64
	jobs   map[int]int64
	stages map[setKey]int64
	tasks  map[taskSpanKey]int64
}

func newSpanTracker() *spanTracker {
	return &spanTracker{
		jobs:   map[int]int64{},
		stages: map[setKey]int64{},
		tasks:  map[taskSpanKey]int64{},
	}
}

func (s *spanTracker) open() int64 {
	s.next++
	return s.next
}

// annotate threads span/parent IDs through ev. Start events open a span,
// matching end events close it, and every other event is parented to the
// most specific live span it references (task attempt, else stage, else
// job) so timeline tools can fold auxiliary events into the span tree.
func (s *spanTracker) annotate(ev *TraceEvent) {
	switch ev.Type {
	case TraceJobStart:
		ev.Span = s.open()
		s.jobs[ev.Job] = ev.Span
	case TraceJobEnd:
		ev.Span = s.jobs[ev.Job]
		delete(s.jobs, ev.Job)
	case TraceStageStart:
		ev.Span = s.open()
		ev.Parent = s.jobs[ev.Job]
		s.stages[setKey{job: ev.Job, stage: ev.Stage}] = ev.Span
	case TraceStageEnd:
		key := setKey{job: ev.Job, stage: ev.Stage}
		ev.Span = s.stages[key]
		ev.Parent = s.jobs[ev.Job]
		delete(s.stages, key)
	case TraceTaskLaunch:
		ev.Span = s.open()
		ev.Parent = s.stages[setKey{job: ev.Job, stage: ev.Stage}]
		s.tasks[taskSpanKey{ev.Job, ev.Stage, ev.Task, ev.Exec}] = ev.Span
	case TraceTaskEnd, TraceTaskFail:
		key := taskSpanKey{ev.Job, ev.Stage, ev.Task, ev.Exec}
		ev.Span = s.tasks[key]
		ev.Parent = s.stages[setKey{job: ev.Job, stage: ev.Stage}]
		delete(s.tasks, key)
	default:
		if ev.Job < 0 {
			return
		}
		if ev.Stage >= 0 {
			if ev.Task >= 0 && ev.Exec >= 0 {
				if sp, ok := s.tasks[taskSpanKey{ev.Job, ev.Stage, ev.Task, ev.Exec}]; ok {
					ev.Parent = sp
					return
				}
			}
			if sp, ok := s.stages[setKey{job: ev.Job, stage: ev.Stage}]; ok {
				ev.Parent = sp
				return
			}
		}
		ev.Parent = s.jobs[ev.Job]
	}
}

// ReadTraceWithHeader decodes a trace log and returns its header (nil for
// legacy pre-v2 logs). v1 lines decode exactly as they always have; v2
// lines have their omitted fields restored to the in-memory sentinels
// (Job/Stage/Task/Exec -1, Threads 0).
func ReadTraceWithHeader(r io.Reader) (*TraceHeader, []TraceEvent, error) {
	dec := json.NewDecoder(r)
	var hdr *TraceHeader
	var out []TraceEvent
	first := true
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return hdr, out, fmt.Errorf("engine: decode trace: %w", err)
		}
		if first {
			first = false
			var h TraceHeader
			if err := json.Unmarshal(raw, &h); err == nil && h.Type == TraceHeaderType {
				hdr = &h
				continue
			}
		}
		if hdr != nil {
			var v2 traceEventV2
			if err := json.Unmarshal(raw, &v2); err != nil {
				return hdr, out, fmt.Errorf("engine: decode trace: %w", err)
			}
			out = append(out, v2.event())
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return hdr, out, fmt.Errorf("engine: decode trace: %w", err)
		}
		out = append(out, ev)
	}
	return hdr, out, nil
}
