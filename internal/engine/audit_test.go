package engine

import (
	"testing"

	"sae/internal/chaos"
	"sae/internal/core"
	"sae/internal/engine/job"
)

// countingAudit records every hook so tests can check the engine feeds the
// audit plane a consistent transition stream.
type countingAudit struct {
	beginRuns, endRuns int
	initialActive      []bool
	events             []TraceEvent
	launches, releases int
	reclaimedSlots     int
	reclaimCalls       int
	epochs             map[int][]int
	shuffleOutcomes    map[ShuffleOutcome]int
	shuffleNodeLosses  int
	tasksAccepted      int
	jobsFinished       []*JobReport
}

func newCountingAudit() *countingAudit {
	return &countingAudit{epochs: map[int][]int{}, shuffleOutcomes: map[ShuffleOutcome]int{}}
}

func (c *countingAudit) BeginRun(active []bool) { c.beginRuns++; c.initialActive = active }
func (c *countingAudit) EndRun()                { c.endRuns++ }
func (c *countingAudit) Event(ev TraceEvent)    { c.events = append(c.events, ev) }
func (c *countingAudit) SlotLaunched(exec, jobID int) {
	c.launches++
}
func (c *countingAudit) SlotReleased(exec, jobID int) { c.releases++ }
func (c *countingAudit) SlotsReclaimed(exec, inflight int) {
	c.reclaimCalls++
	c.reclaimedSlots += inflight
}
func (c *countingAudit) ExecutorEpoch(exec, epoch int) {
	c.epochs[exec] = append(c.epochs[exec], epoch)
}
func (c *countingAudit) ShuffleRegistered(jobID, stage, task, node int, out ShuffleOutcome) {
	c.shuffleOutcomes[out]++
}
func (c *countingAudit) ShuffleNodeLost(node int)                  { c.shuffleNodeLosses++ }
func (c *countingAudit) TaskAccepted(jobID int, m job.TaskMetrics) { c.tasksAccepted++ }
func (c *countingAudit) JobFinished(rep *JobReport)                { c.jobsFinished = append(c.jobsFinished, rep) }

// TestAuditHooksQuietRun checks the hook stream of a fault-free run: one
// begin/end pair, a balanced slot ledger with no reclaims, every trace
// event mirrored with At set even without a sink, and per-task metrics
// summing to the job report.
func TestAuditHooksQuietRun(t *testing.T) {
	aud := newCountingAudit()
	spec, inputs := twoStageJob()
	opts := testOptions(4, core.Static{IOThreads: 4})
	opts.Inputs = inputs
	opts.Audit = aud
	rep, err := Run(opts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if aud.beginRuns != 1 || aud.endRuns != 1 {
		t.Fatalf("BeginRun/EndRun = %d/%d, want 1/1", aud.beginRuns, aud.endRuns)
	}
	if len(aud.initialActive) != 4 {
		t.Fatalf("initial active set has %d executors, want 4", len(aud.initialActive))
	}
	for i, up := range aud.initialActive {
		if !up {
			t.Fatalf("executor %d inactive at t=0 without autoscale", i)
		}
	}
	if aud.launches == 0 || aud.launches != aud.releases {
		t.Fatalf("slot ledger launches=%d releases=%d, want equal and non-zero", aud.launches, aud.releases)
	}
	if aud.reclaimedSlots != 0 {
		t.Fatalf("reclaimed %d slots on a quiet run", aud.reclaimedSlots)
	}
	if len(aud.events) == 0 {
		t.Fatal("no trace events mirrored to the auditor")
	}
	last := 0.0
	for _, ev := range aud.events {
		if ev.At < last {
			t.Fatalf("event %s at %.3f out of order (prev %.3f)", ev.Type, ev.At, last)
		}
		last = ev.At
	}
	if aud.shuffleOutcomes[ShuffleAccepted] == 0 {
		t.Fatal("no accepted shuffle registrations on a shuffle job")
	}
	if aud.tasksAccepted == 0 {
		t.Fatal("no TaskAccepted hooks")
	}
	if len(aud.jobsFinished) != 1 || aud.jobsFinished[0].ID != rep.ID {
		t.Fatalf("JobFinished reports = %v, want the run's report", aud.jobsFinished)
	}
}

// TestAuditHooksCrashRun checks loss accounting: the declared loss
// reclaims exactly the slots still booked, epochs stay visible, and the
// shuffle node loss is mirrored.
func TestAuditHooksCrashRun(t *testing.T) {
	quiet := calibrate(t, core.Static{IOThreads: 4})
	aud := newCountingAudit()
	spec, inputs := twoStageJob()
	opts := testOptions(4, core.Static{IOThreads: 4})
	opts.Inputs = inputs
	opts.Faults = chaos.CrashAt(1, quiet.Stages[0].End*2/5)
	opts.Audit = aud
	if _, err := Run(opts, spec); err != nil {
		t.Fatal(err)
	}
	if aud.reclaimCalls != 1 {
		t.Fatalf("SlotsReclaimed calls = %d, want 1 (one declared loss)", aud.reclaimCalls)
	}
	if aud.launches != aud.releases+aud.reclaimedSlots {
		t.Fatalf("slot ledger launches=%d != releases=%d + reclaimed=%d",
			aud.launches, aud.releases, aud.reclaimedSlots)
	}
	// The node's outputs are invalidated twice: at physical crash time and
	// again (pessimistically) when the failure detector declares the loss.
	if aud.shuffleNodeLosses != 2 {
		t.Fatalf("ShuffleNodeLost calls = %d, want 2 (crash + declaration)", aud.shuffleNodeLosses)
	}
}

// TestEnableTestBugSkipSlotReclaim checks the mutation-test seam: with the
// bug enabled, a declared loss leaks its booked slots (no reclaim hook)
// — the defect internal/invariant and sae-hunt must catch.
func TestEnableTestBugSkipSlotReclaim(t *testing.T) {
	restore := EnableTestBug("skip-slot-reclaim")
	defer restore()
	quiet := calibrate(t, core.Static{IOThreads: 4})
	aud := newCountingAudit()
	spec, inputs := twoStageJob()
	opts := testOptions(4, core.Static{IOThreads: 4})
	opts.Inputs = inputs
	opts.Faults = chaos.CrashAt(1, quiet.Stages[0].End*2/5)
	opts.Audit = aud
	if _, err := Run(opts, spec); err != nil {
		t.Fatal(err)
	}
	if aud.reclaimCalls != 0 {
		t.Fatalf("SlotsReclaimed fired %d time(s) with the reclaim bug enabled", aud.reclaimCalls)
	}
	if aud.launches == aud.releases {
		t.Fatal("crash victim's slots were all released — the injected leak did not engage")
	}
}
