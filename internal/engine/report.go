package engine

import (
	"fmt"
	"strings"
	"time"

	"sae/internal/engine/job"
)

// ExecutorStageStats aggregates one executor's activity within one stage.
type ExecutorStageStats struct {
	Executor   int
	Node       int
	Tasks      int
	LocalTasks int
	// BlockedIO is the summed ε of the executor's tasks in this stage.
	BlockedIO time.Duration
	// Bytes is the summed bytes moved (µ numerator).
	Bytes int64
	// InitialThreads and FinalThreads bracket the pool size over the
	// stage; for the dynamic policy Final is the hill-climb's choice.
	InitialThreads int
	FinalThreads   int
}

// Throughput returns the executor's average stage throughput in bytes/s.
func (s ExecutorStageStats) Throughput(stage StageReport) float64 {
	d := stage.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(s.Bytes) / d
}

// StageReport summarizes one executed stage.
type StageReport struct {
	ID       int
	Name     string
	IOMarked bool
	Start    time.Duration
	End      time.Duration
	Execs    []ExecutorStageStats

	// Cluster-averaged percentages over the stage window (Fig. 1/5).
	CPUPercent      float64
	IowaitPercent   float64
	DiskUtilPercent float64

	// Byte deltas over the stage window across all nodes.
	DiskReadBytes  int64
	DiskWriteBytes int64
	NetBytes       int64

	// ThreadsTotal is the sum of final per-executor thread counts, and
	// MaxThreadsTotal the sum of core counts — the paper's "14/128"
	// stage annotations in Fig. 8.
	ThreadsTotal    int
	MaxThreadsTotal int

	// Retries counts failed task attempts that were rescheduled.
	Retries int
	// Speculative counts backup copies launched for stragglers.
	Speculative int

	// TaskP50/TaskP95/TaskMax summarize winning-task durations.
	TaskP50 time.Duration
	TaskP95 time.Duration
	TaskMax time.Duration

	// Fault-recovery activity during the stage window.
	LostExecutors     int
	ResubmittedStages int
	// Requeued counts task attempts put back in the queue by executor
	// loss or stale fetch plans (distinct from Retries, which are the
	// task's own failures).
	Requeued int
	// RecoveredBytes is shuffle output re-registered by lineage recovery.
	RecoveredBytes int64
}

// Duration returns the stage's wall time.
func (sr StageReport) Duration() time.Duration { return sr.End - sr.Start }

// BlockedIO returns the stage's summed ε across executors.
func (sr StageReport) BlockedIO() time.Duration {
	var total time.Duration
	for _, e := range sr.Execs {
		total += e.BlockedIO
	}
	return total
}

// Bytes returns the stage's summed bytes moved across executors.
func (sr StageReport) Bytes() int64 {
	var total int64
	for _, e := range sr.Execs {
		total += e.Bytes
	}
	return total
}

// ThreadsLabel renders the paper's "used/total" stage annotation.
func (sr StageReport) ThreadsLabel() string {
	return fmt.Sprintf("%d/%d", sr.ThreadsTotal, sr.MaxThreadsTotal)
}

// JobReport summarizes one job run.
type JobReport struct {
	// ID is the job's submission index on its engine.
	ID int
	// Job is the job's name; Policy the executor sizing policy; Sched the
	// inter-job scheduling policy (FIFO/FAIR) the run used.
	Job    string
	Policy string
	Sched  string
	// Tenant is the submitting tenant class ("" for single-tenant runs);
	// Priority its inter-job priority.
	Tenant   string
	Priority int
	// SubmittedAt is the job's admission instant; Runtime its sojourn time
	// (submission to completion), the per-tenant SLO latency. QueueDelay is
	// how long the job waited for its first task launch — the open-loop
	// queueing delay an overloaded cluster accumulates.
	SubmittedAt time.Duration
	QueueDelay  time.Duration
	Runtime     time.Duration
	// Stages is indexed by stage ID. Under concurrent stages the
	// utilization percentages describe the whole cluster during each
	// stage's window, not that stage's own traffic.
	Stages []StageReport

	// DiskReadBytes/DiskWriteBytes/NetBytes are the job's whole-run
	// device totals (Table 2's "I/O activity"), attributed from
	// task-level metrics — concurrent jobs on one cluster never count
	// each other's traffic.
	DiskReadBytes  int64
	DiskWriteBytes int64
	NetBytes       int64

	// Fault-recovery totals for the run.
	LostExecutors     int
	ResubmittedStages int
	RecoveredBytes    int64

	// Gray-failure totals: Suspected counts heartbeat suspicions raised
	// while the job ran, Fenced counts false-positive incarnations ordered
	// to re-join under a fresh epoch, FetchRetries the bounded shuffle
	// fetch retries, and ChecksumFailovers the DFS reads that fell over to
	// another replica after a checksum mismatch.
	Suspected         int
	Fenced            int
	FetchRetries      int
	ChecksumFailovers int

	// Decisions holds each executor's controller decision log.
	Decisions [][]job.Decision
	// ThreadLogs holds each executor's pool-size change history (Fig. 6).
	ThreadLogs [][]ThreadChange
}

// TotalIOBytes returns all disk traffic of the run.
func (jr *JobReport) TotalIOBytes() int64 { return jr.DiskReadBytes + jr.DiskWriteBytes }

// Stage returns the report for stage id.
func (jr *JobReport) Stage(id int) StageReport { return jr.Stages[id] }

// FinalThreads returns, per stage, each executor's final thread count.
func (jr *JobReport) FinalThreads() [][]int {
	out := make([][]int, len(jr.Stages))
	for i, st := range jr.Stages {
		for _, e := range st.Execs {
			out[i] = append(out[i], e.FinalThreads)
		}
	}
	return out
}

// String renders a compact human-readable summary.
func (jr *JobReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]: runtime %.1fs, %d stages, %.2f GiB disk I/O\n",
		jr.Job, jr.Policy, jr.Runtime.Seconds(), len(jr.Stages),
		float64(jr.TotalIOBytes())/(1<<30))
	if jr.Tenant != "" {
		fmt.Fprintf(&b, "  tenant %s: submitted %.1fs, queue delay %.1fs\n",
			jr.Tenant, jr.SubmittedAt.Seconds(), jr.QueueDelay.Seconds())
	}
	for _, st := range jr.Stages {
		fmt.Fprintf(&b, "  stage %d %-12s %8.1fs  threads %-8s cpu %5.1f%% iowait %5.1f%% disk %5.1f%%\n",
			st.ID, st.Name, st.Duration().Seconds(), st.ThreadsLabel(),
			st.CPUPercent, st.IowaitPercent, st.DiskUtilPercent)
	}
	if jr.LostExecutors > 0 || jr.ResubmittedStages > 0 || jr.RecoveredBytes > 0 {
		fmt.Fprintf(&b, "  faults: %d executor(s) lost, %d stage(s) resubmitted, %.2f GiB recovered\n",
			jr.LostExecutors, jr.ResubmittedStages, float64(jr.RecoveredBytes)/(1<<30))
	}
	if jr.Suspected > 0 || jr.Fenced > 0 || jr.FetchRetries > 0 || jr.ChecksumFailovers > 0 {
		fmt.Fprintf(&b, "  gray: %d suspicion(s), %d fenced, %d fetch retries, %d checksum failover(s)\n",
			jr.Suspected, jr.Fenced, jr.FetchRetries, jr.ChecksumFailovers)
	}
	return b.String()
}
