package engine

import (
	"time"

	"sae/internal/cluster"
	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/sim"
)

// Executor runs tasks on one node with a resizable worker pool, mirroring
// the paper's drop-in Spark executor replacement. The pool limit is set by
// the sizing policy's controller; when the controller resizes it, the
// executor applies the change locally (the paper's setMaximumPoolSize) and
// notifies the driver so its slot table follows (the paper's messaging
// protocol extension). Tasks assigned beyond the current limit — e.g. ones
// already in flight from the driver when the pool shrank — wait in a local
// queue, exactly the integrity concern §5.3 discusses.
//
// Executors can crash (chaos schedules): a crash bumps the incarnation
// epoch and drops the local queue. The sim kernel cannot cancel a parked
// process, so tasks already running become zombies — their remaining I/O
// and compute no-op (see taskContext) and their completions are never
// reported. A restarted executor keeps its ID and node but gets a fresh
// controller, so the MAPE-K loop re-bootstraps from cmin.
type Executor struct {
	id   int
	node *cluster.Node
	eng  *Engine
	info job.ExecutorInfo
	ctrl job.Controller

	inbox *sim.Mailbox[execMsg]

	stage   *job.StageSpec
	limit   int
	running int
	queue   []*launchMsg

	// alive is false between a crash and the matching restart; epoch
	// counts crashes, so tasks launched before a crash can be told apart
	// from the current incarnation's.
	alive    bool
	epoch    int
	restarts int
	// decisionsPrefix preserves the decision logs of pre-crash
	// controller incarnations.
	decisionsPrefix []job.Decision

	threadLog  []ThreadChange
	cumBytes   int64
	totalTasks int
}

// execMsg is a driver→executor control message (exactly one field set).
type execMsg struct {
	stageStart *stageStartMsg
	launch     *launchMsg
}

type stageStartMsg struct {
	stage *job.StageSpec
}

// launchMsg carries one task assignment with its input plan. epoch is the
// executor incarnation the driver assigned it to: a message crossing a
// crash or restart in flight is dropped on arrival.
type launchMsg struct {
	stage      *job.StageSpec
	index      int
	attempt    int
	epoch      int
	blocks     []dfs.Block
	segments   []segment
	inputTotal int64
}

// driverMsg is an executor→driver message (exactly one field set).
type driverMsg struct {
	taskDone *taskDoneMsg
	threads  *threadsMsg
	execLost *execLostMsg
	execJoin *execJoinMsg
}

type taskDoneMsg struct {
	exec    int
	epoch   int
	metrics job.TaskMetrics
	err     error
}

// threadsMsg is the paper's ThreadCountUpdate: the executor informs the
// scheduler of its new pool size.
type threadsMsg struct {
	exec    int
	epoch   int
	threads int
}

// execLostMsg notifies the driver that an executor crashed (the heartbeat
// loss signal).
type execLostMsg struct {
	exec  int
	epoch int
}

// execJoinMsg notifies the driver that a restarted executor is back.
type execJoinMsg struct {
	exec  int
	epoch int
}

// ThreadChange records one pool-size change for reporting (Fig. 6). A
// crash logs a change to 0 threads; the restart's fresh controller logs the
// climb restarting at cmin.
type ThreadChange struct {
	At      time.Duration
	Stage   int
	Threads int
}

func newExecutor(eng *Engine, id int, node *cluster.Node, policy job.Policy) *Executor {
	info := job.ExecutorInfo{
		ID:         id,
		Node:       node.ID,
		MaxThreads: node.CPU.Spec().VirtualCores,
	}
	return &Executor{
		id:    id,
		node:  node,
		eng:   eng,
		info:  info,
		ctrl:  policy.NewController(info),
		inbox: sim.NewMailbox[execMsg](eng.k),
		limit: info.MaxThreads,
		alive: true,
	}
}

// ID returns the executor's ID.
func (ex *Executor) ID() int { return ex.id }

// Node returns the node the executor runs on.
func (ex *Executor) Node() *cluster.Node { return ex.node }

// Threads returns the current pool limit.
func (ex *Executor) Threads() int { return ex.limit }

// Alive reports whether the executor is currently up.
func (ex *Executor) Alive() bool { return ex.alive }

// Restarts returns how many times the executor came back after a crash.
func (ex *Executor) Restarts() int { return ex.restarts }

// CumulativeBytes returns the total bytes all tasks of this executor have
// moved so far — the quantity the throughput sampler differentiates for the
// Fig. 12 time series.
func (ex *Executor) CumulativeBytes() int64 { return ex.cumBytes }

// ThreadLog returns the pool-size change history.
func (ex *Executor) ThreadLog() []ThreadChange { return ex.threadLog }

// Decisions returns the controller's decision log, including pre-crash
// incarnations.
func (ex *Executor) Decisions() []job.Decision {
	if len(ex.decisionsPrefix) == 0 {
		return ex.ctrl.Decisions()
	}
	out := append([]job.Decision(nil), ex.decisionsPrefix...)
	return append(out, ex.ctrl.Decisions()...)
}

// main is the executor's control loop process.
func (ex *Executor) main(p *sim.Proc) {
	for {
		msg := ex.inbox.Recv(p)
		switch {
		case msg.stageStart != nil:
			if !ex.alive {
				continue // a dead executor ignores stage broadcasts
			}
			ex.stage = msg.stageStart.stage
			n := ex.ctrl.StageStart(ex.stage.Meta())
			ex.setLimit(n)
			ex.drain()
		case msg.launch != nil:
			if !ex.alive || msg.launch.epoch != ex.epoch {
				continue // assignment crossed a crash in flight
			}
			if ex.running < ex.limit {
				ex.start(msg.launch)
			} else {
				ex.queue = append(ex.queue, msg.launch)
			}
		}
	}
}

func (ex *Executor) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	if n == ex.limit && len(ex.threadLog) > 0 {
		return
	}
	ex.limit = n
	ex.threadLog = append(ex.threadLog, ThreadChange{At: ex.eng.k.Now(), Stage: ex.stageID(), Threads: n})
}

func (ex *Executor) stageID() int {
	if ex.stage == nil {
		return -1
	}
	return ex.stage.ID
}

// start launches one task as its own process.
func (ex *Executor) start(lm *launchMsg) {
	ex.running++
	epoch := ex.epoch
	ex.eng.k.Go("task", func(p *sim.Proc) {
		tc := &taskContext{
			eng:        ex.eng,
			p:          p,
			ex:         ex,
			stage:      lm.stage,
			index:      lm.index,
			attempt:    lm.attempt,
			epoch:      epoch,
			blocks:     lm.blocks,
			segments:   lm.segments,
			inputTotal: lm.inputTotal,
			allLocal:   true,
		}
		var work job.Work = job.AnalyticWork{}
		if lm.stage.Work != nil {
			work = lm.stage.Work(lm.index)
		}
		tm, err := tc.run(work)
		ex.running--
		if ex.epoch != epoch {
			// Zombie of a crashed incarnation: the driver already
			// requeued this task at loss detection; report nothing.
			return
		}
		ex.totalTasks++
		ex.cumBytes += tm.BytesMoved

		// Failed attempts carry no usable monitor signal; only
		// successful completions feed the MAPE-K loop.
		threads, changed := ex.limit, false
		if err == nil {
			threads, changed = ex.ctrl.TaskDone(tm)
		}
		if changed {
			ex.setLimit(threads)
			ex.eng.toDriver.Send(ex.eng.cluster.ControlLatency(), driverMsg{
				threads: &threadsMsg{exec: ex.id, epoch: ex.epoch, threads: threads},
			})
		}
		ex.eng.toDriver.Send(ex.eng.cluster.ControlLatency(), driverMsg{
			taskDone: &taskDoneMsg{exec: ex.id, epoch: ex.epoch, metrics: tm, err: err},
		})
		ex.drain()
	})
}

// drain starts queued tasks while slots are free.
func (ex *Executor) drain() {
	for ex.running < ex.limit && len(ex.queue) > 0 {
		lm := ex.queue[0]
		ex.queue = ex.queue[1:]
		ex.start(lm)
	}
}
