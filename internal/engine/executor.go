package engine

import (
	"fmt"
	"sort"
	"time"

	"sae/internal/cluster"
	"sae/internal/dfs"
	"sae/internal/engine/job"
	"sae/internal/sim"
)

// Executor runs tasks on one node with a resizable worker pool, mirroring
// the paper's drop-in Spark executor replacement. Each active (job, stage)
// gets its own MAPE-K controller; the pool limit applied locally (the
// paper's setMaximumPoolSize) is the minimum over the active controllers'
// choices, so one saturated stage's clamp protects the shared disk even
// while a CPU-bound stage of another job would tolerate more threads. When
// the effective limit changes in a way the driver cannot derive itself, the
// executor notifies it so the slot table follows (the paper's messaging
// protocol extension). Tasks assigned beyond the current limit — e.g. ones
// already in flight from the driver when the pool shrank — wait in a local
// queue, exactly the integrity concern §5.3 discusses.
//
// Executors can crash (chaos schedules): a crash bumps the incarnation
// epoch, drops the local queue and retires every controller (their decision
// logs are kept per job). The sim kernel cannot cancel a parked process, so
// tasks already running become zombies — their remaining I/O and compute
// no-op (see taskContext) and their completions are never reported. A
// restarted executor keeps its ID and node; the driver re-sends the active
// stages so fresh controllers re-bootstrap the MAPE-K loop from cmin.
type Executor struct {
	id   int
	node *cluster.Node
	eng  *Engine
	// k is the kernel owning this executor's events — the node's shard
	// kernel at Shards > 1, the engine kernel otherwise; shard is its
	// index. All executor-local work (control loop, tasks, heartbeats,
	// thread-log timestamps) runs on k.
	k      *sim.Kernel
	shard  int
	info   job.ExecutorInfo
	policy job.Policy

	inbox *sim.Mailbox[execMsg]

	// ctrls/choice/stages track one controller per active (job, stage);
	// activeKeys lists their keys sorted by (job, stage) for
	// deterministic iteration.
	ctrls      map[setKey]job.Controller
	choice     map[setKey]int
	stages     map[setKey]*job.StageSpec
	activeKeys []setKey
	// curStage labels thread-log entries and crash traces with the stage
	// that last (re)configured the pool.
	curStage int

	limit   int
	running int
	queue   []*launchMsg

	// alive is false between a crash and the matching restart; epoch
	// counts crashes, so tasks launched before a crash can be told apart
	// from the current incarnation's.
	alive    bool
	epoch    int
	restarts int
	// decisionsByJob collects retired controllers' decision logs (stage
	// ends and crashes) per job, in chronological order.
	decisionsByJob map[int][]job.Decision

	threadLog []ThreadChange
	cumBytes  int64
	// cumBlockedIO is the cumulative ε across the executor's reported
	// attempts — the numerator the telemetry plane's windowed ζ gauge
	// differentiates.
	cumBlockedIO time.Duration
	totalTasks   int
}

// execMsg is a driver→executor control message (exactly one field set).
type execMsg struct {
	stageStart *stageStartMsg
	stageEnd   *stageEndMsg
	launch     *launchMsg
	fence      *fenceMsg
}

// fenceMsg orders a still-alive executor that the driver declared lost (a
// failure-detector false positive, e.g. after a network partition) to adopt
// a fresh incarnation epoch. Everything the old incarnation still has in
// flight becomes a zombie — its completions are never reported — so the
// driver's requeued copies of those tasks are the only ones that count.
type fenceMsg struct {
	epoch int
}

type stageStartMsg struct {
	job   int
	stage *job.StageSpec
}

// stageEndMsg retires the (job, stage) controller; the executor folds its
// decision log into the per-job archive and relaxes the pool limit if that
// stage's controller was the binding minimum.
type stageEndMsg struct {
	job   int
	stage int
}

// launchMsg carries one task assignment with its input plan. epoch is the
// executor incarnation the driver assigned it to: a message crossing a
// crash or restart in flight is dropped on arrival.
type launchMsg struct {
	job        int
	stage      *job.StageSpec
	index      int
	attempt    int
	epoch      int
	blocks     []dfs.Block
	segments   []segment
	inputTotal int64
}

// driverMsg is an executor→driver message (exactly one field set; the
// zero value is a wake-up nudge that matches no handler).
type driverMsg struct {
	taskDone  *taskDoneMsg
	threads   *threadsMsg
	execLost  *execLostMsg
	execJoin  *execJoinMsg
	heartbeat *heartbeatMsg
}

// heartbeatMsg is an executor's periodic liveness beacon, carrying its task
// progress and pool size (the paper's executors heartbeat through Spark's
// stock protocol). The driver's failure detector times out on its absence;
// it never drives scheduling directly, so quiet-plan runs are unperturbed.
type heartbeatMsg struct {
	exec      int
	epoch     int
	running   int
	limit     int
	tasksDone int
}

type taskDoneMsg struct {
	exec    int
	epoch   int
	job     int
	metrics job.TaskMetrics
	err     error
}

// threadsMsg is the paper's ThreadCountUpdate: the executor informs the
// scheduler of its new effective pool size. job/stage identify the stage
// whose controller triggered the change (for trace labelling).
type threadsMsg struct {
	exec    int
	epoch   int
	job     int
	stage   int
	threads int
}

// execLostMsg declares an executor lost. It is posted by the driver's own
// failure detector when the executor's heartbeats time out; epoch is the
// incarnation being declared dead.
type execLostMsg struct {
	exec  int
	epoch int
}

// execJoinMsg notifies the driver that a restarted executor is back.
type execJoinMsg struct {
	exec  int
	epoch int
}

// ThreadChange records one pool-size change for reporting (Fig. 6). A
// crash logs a change to 0 threads; the restart's fresh controller logs the
// climb restarting at cmin.
type ThreadChange struct {
	At      time.Duration
	Stage   int
	Threads int
}

func newExecutor(eng *Engine, id int, node *cluster.Node, policy job.Policy) *Executor {
	info := job.ExecutorInfo{
		ID:         id,
		Node:       node.ID,
		MaxThreads: node.CPU.Spec().VirtualCores,
	}
	return &Executor{
		id:             id,
		node:           node,
		eng:            eng,
		k:              eng.kernelOf(node.ID),
		shard:          eng.shardFor(node.ID),
		info:           info,
		policy:         policy,
		inbox:          sim.NewMailbox[execMsg](eng.kernelOf(node.ID)),
		ctrls:          make(map[setKey]job.Controller),
		choice:         make(map[setKey]int),
		stages:         make(map[setKey]*job.StageSpec),
		curStage:       -1,
		decisionsByJob: make(map[int][]job.Decision),
		limit:          info.MaxThreads,
		alive:          true,
	}
}

// ID returns the executor's ID.
func (ex *Executor) ID() int { return ex.id }

// Node returns the node the executor runs on.
func (ex *Executor) Node() *cluster.Node { return ex.node }

// Threads returns the current pool limit.
func (ex *Executor) Threads() int { return ex.limit }

// Alive reports whether the executor is currently up.
func (ex *Executor) Alive() bool { return ex.alive }

// Restarts returns how many times the executor came back after a crash.
func (ex *Executor) Restarts() int { return ex.restarts }

// CumulativeBytes returns the total bytes all tasks of this executor have
// moved so far — the quantity the throughput sampler differentiates for the
// Fig. 12 time series.
func (ex *Executor) CumulativeBytes() int64 { return ex.cumBytes }

// ThreadLog returns the pool-size change history.
func (ex *Executor) ThreadLog() []ThreadChange { return ex.threadLog }

// Decisions returns every controller decision this executor has logged,
// across all jobs and incarnations, grouped by job ID.
func (ex *Executor) Decisions() []job.Decision {
	jobs := make([]int, 0, len(ex.decisionsByJob))
	for id := range ex.decisionsByJob {
		jobs = append(jobs, id)
	}
	for _, key := range ex.activeKeys {
		if _, ok := ex.decisionsByJob[key.job]; !ok {
			jobs = append(jobs, key.job)
		}
	}
	sort.Ints(jobs)
	var out []job.Decision
	seen := make(map[int]bool, len(jobs))
	for _, id := range jobs {
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, ex.jobDecisions(id)...)
	}
	return out
}

// jobDecisions returns the decision logs of one job's controllers on this
// executor: retired ones first (chronological), then any still live.
func (ex *Executor) jobDecisions(jobID int) []job.Decision {
	out := append([]job.Decision(nil), ex.decisionsByJob[jobID]...)
	for _, key := range ex.activeKeys {
		if key.job == jobID {
			out = append(out, ex.ctrls[key].Decisions()...)
		}
	}
	return out
}

// main is the executor's control loop process.
func (ex *Executor) main(p *sim.Proc) {
	for {
		msg := ex.inbox.Recv(p)
		switch {
		case msg.stageStart != nil:
			if !ex.alive {
				continue // a dead executor ignores stage broadcasts
			}
			ex.stageStart(msg.stageStart)
		case msg.stageEnd != nil:
			ex.stageEnd(msg.stageEnd)
		case msg.launch != nil:
			if !ex.alive || msg.launch.epoch != ex.epoch {
				continue // assignment crossed a crash in flight
			}
			if ex.running < ex.limit {
				ex.start(msg.launch)
			} else {
				ex.queue = append(ex.queue, msg.launch)
			}
		case msg.fence != nil:
			if !ex.alive || msg.fence.epoch <= ex.epoch {
				continue // a crash got there first, or a duplicate order
			}
			ex.fence(msg.fence.epoch)
		}
	}
}

// retireControllers archives every active controller's decision log per job
// and clears the controller tables — the shared teardown of crashes, fences
// and decommissions. Fresh controllers arrive with re-sent stages on rejoin.
func (ex *Executor) retireControllers() {
	for _, key := range ex.activeKeys {
		ex.decisionsByJob[key.job] = append(ex.decisionsByJob[key.job], ex.ctrls[key].Decisions()...)
	}
	ex.ctrls = make(map[setKey]job.Controller)
	ex.choice = make(map[setKey]int)
	ex.stages = make(map[setKey]*job.StageSpec)
	ex.activeKeys = nil
}

// shutdown stops the executor process at the current instant: the
// incarnation epoch bumps (tasks still running become zombies and in-flight
// control messages go stale on arrival), the local queue drops, and the
// controllers retire. Shared by chaos crashes and graceful decommission —
// the difference between the two is entirely driver-side.
func (ex *Executor) shutdown() {
	ex.alive = false
	ex.epoch++
	ex.queue = nil
	ex.retireControllers()
	ex.threadLog = append(ex.threadLog, ThreadChange{At: ex.k.Now(), Stage: ex.curStage, Threads: 0})
}

// fence makes a still-alive executor that was declared lost adopt a fresh
// incarnation: its queue is dropped, its controllers retire, and every task
// still running becomes a zombie whose completion is never reported — the
// in-flight work the driver already requeued must not be double-counted.
// The new incarnation then rejoins through the normal execJoin path.
func (ex *Executor) fence(epoch int) {
	ex.epoch = epoch
	ex.queue = nil
	ex.retireControllers()
	ex.threadLog = append(ex.threadLog, ThreadChange{At: ex.k.Now(), Stage: ex.curStage, Threads: 0})
	ex.eng.trace(TraceEvent{Type: TraceExecFence, Job: -1, Stage: ex.curStage, Task: -1, Exec: ex.id,
		Detail: fmt.Sprintf("epoch %d fenced, rejoining as %d", epoch-1, epoch)})
	ex.eng.sendDriver(ex.shard, driverMsg{
		execJoin: &execJoinMsg{exec: ex.id, epoch: ex.epoch},
	})
}

// stageStart installs a fresh controller for the (job, stage) and applies
// its initial choice to the shared pool. The driver updates its slot table
// with the same min-over-active-stages rule, so no ThreadCountUpdate is
// needed here.
func (ex *Executor) stageStart(m *stageStartMsg) {
	key := setKey{job: m.job, stage: m.stage.ID}
	if old, ok := ex.ctrls[key]; ok {
		// A duplicate broadcast (stage re-sent around a crash/restart
		// race): retire the old incarnation's log and start over.
		ex.decisionsByJob[key.job] = append(ex.decisionsByJob[key.job], old.Decisions()...)
		ex.removeKey(key)
	}
	ctrl := ex.policy.NewController(ex.info)
	ex.ctrls[key] = ctrl
	ex.stages[key] = m.stage
	ex.choice[key] = ctrl.StageStart(m.stage.Meta())
	ex.activeKeys = append(ex.activeKeys, key)
	sort.Slice(ex.activeKeys, func(i, j int) bool {
		a, b := ex.activeKeys[i], ex.activeKeys[j]
		if a.job != b.job {
			return a.job < b.job
		}
		return a.stage < b.stage
	})
	ex.curStage = m.stage.ID
	if n, ok := ex.effectiveChoice(); ok {
		ex.setLimit(n, m.stage.ID)
	}
	ex.drain()
}

// stageEnd retires the (job, stage) controller. If its choice was the
// binding minimum, the pool relaxes and the driver is told — it cannot
// derive the surviving controllers' choices itself.
func (ex *Executor) stageEnd(m *stageEndMsg) {
	key := setKey{job: m.job, stage: m.stage}
	ctrl := ex.ctrls[key]
	if ctrl == nil {
		return // already retired (e.g. by a crash)
	}
	ex.decisionsByJob[m.job] = append(ex.decisionsByJob[m.job], ctrl.Decisions()...)
	ex.removeKey(key)
	if n, ok := ex.effectiveChoice(); ok && ex.applyAndNotify(n, m.job, m.stage) {
		ex.drain()
	}
}

// removeKey drops a (job, stage) from the active controller tables.
func (ex *Executor) removeKey(key setKey) {
	delete(ex.ctrls, key)
	delete(ex.choice, key)
	delete(ex.stages, key)
	for i, k := range ex.activeKeys {
		if k == key {
			ex.activeKeys = append(ex.activeKeys[:i], ex.activeKeys[i+1:]...)
			break
		}
	}
}

// effectiveChoice returns the minimum over active controllers' choices.
// With no active stage it reports ok=false: the pool keeps its last limit
// (there is nothing to run anyway).
func (ex *Executor) effectiveChoice() (int, bool) {
	if len(ex.activeKeys) == 0 {
		return 0, false
	}
	n := -1
	for _, key := range ex.activeKeys {
		if c := ex.choice[key]; n < 0 || c < n {
			n = c
		}
	}
	return n, true
}

// applyAndNotify applies a new effective limit and, if it actually changed,
// sends the driver a ThreadCountUpdate. Returns whether it changed.
func (ex *Executor) applyAndNotify(n, jobID, stage int) bool {
	if n < 1 {
		n = 1
	}
	if n == ex.limit {
		return false
	}
	ex.setLimit(n, stage)
	ex.eng.sendDriver(ex.shard, driverMsg{
		threads: &threadsMsg{exec: ex.id, epoch: ex.epoch, job: jobID, stage: stage, threads: n},
	})
	return true
}

func (ex *Executor) setLimit(n, stage int) {
	if n < 1 {
		n = 1
	}
	if n == ex.limit && len(ex.threadLog) > 0 {
		return
	}
	ex.limit = n
	ex.curStage = stage
	ex.threadLog = append(ex.threadLog, ThreadChange{At: ex.k.Now(), Stage: stage, Threads: n})
}

// start launches one task as its own process.
func (ex *Executor) start(lm *launchMsg) {
	ex.running++
	epoch := ex.epoch
	ex.k.Go("task", func(p *sim.Proc) {
		tc := &taskContext{
			eng:        ex.eng,
			p:          p,
			ex:         ex,
			jobID:      lm.job,
			stage:      lm.stage,
			index:      lm.index,
			attempt:    lm.attempt,
			epoch:      epoch,
			blocks:     lm.blocks,
			segments:   lm.segments,
			inputTotal: lm.inputTotal,
			allLocal:   true,
		}
		var work job.Work = job.AnalyticWork{}
		if lm.stage.Work != nil {
			work = lm.stage.Work(lm.index)
		}
		tm, err := tc.run(work)
		ex.running--
		if ex.epoch != epoch {
			// Zombie of a crashed incarnation: the driver already
			// requeued this task at loss detection; report nothing.
			return
		}
		ex.totalTasks++
		ex.cumBytes += tm.BytesMoved
		ex.cumBlockedIO += tm.BlockedIO

		// Failed attempts carry no usable monitor signal; only
		// successful completions of a stage with a live controller feed
		// the MAPE-K loop (recovery-set tasks run under other stages'
		// settings, as before the DAG split).
		key := setKey{job: lm.job, stage: lm.stage.ID}
		if err == nil {
			if ctrl := ex.ctrls[key]; ctrl != nil {
				if threads, changed := ctrl.TaskDone(tm); changed {
					ex.choice[key] = threads
					if n, ok := ex.effectiveChoice(); ok {
						ex.applyAndNotify(n, key.job, key.stage)
					}
				}
			}
		}
		ex.eng.sendDriver(ex.shard, driverMsg{
			taskDone: &taskDoneMsg{exec: ex.id, epoch: ex.epoch, job: lm.job, metrics: tm, err: err},
		})
		ex.drain()
	})
}

// drain starts queued tasks while slots are free.
func (ex *Executor) drain() {
	for ex.running < ex.limit && len(ex.queue) > 0 {
		lm := ex.queue[0]
		ex.queue = ex.queue[1:]
		ex.start(lm)
	}
}
