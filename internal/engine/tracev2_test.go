package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sae/internal/core"
)

// TestReadTraceLegacyCompat locks the reader's pre-v2 behavior: a headerless
// log written before the versioned header existed must decode exactly as it
// always did — sentinels preserved, no header reported.
func TestReadTraceLegacyCompat(t *testing.T) {
	legacy := `{"t":0,"type":"job_start","job":0,"stage":-1,"task":-1,"exec":-1,"threads":0,"detail":"terasort"}
{"t":0,"type":"stage_start","job":0,"stage":0,"task":-1,"exec":-1,"threads":0,"detail":"sample (18 tasks)"}
{"t":1.5,"type":"task_launch","job":0,"stage":0,"task":3,"exec":2,"threads":0}
{"t":2.25,"type":"resize","job":0,"stage":0,"task":-1,"exec":1,"threads":12,"detail":"zeta rising"}
`
	header, events, err := ReadTraceWithHeader(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if header != nil {
		t.Fatalf("legacy log reported header %+v, want nil", header)
	}
	if len(events) != 4 {
		t.Fatalf("decoded %d events, want 4", len(events))
	}
	js := events[0]
	if js.Stage != -1 || js.Task != -1 || js.Exec != -1 || js.Detail != "terasort" {
		t.Errorf("job_start sentinels mangled: %+v", js)
	}
	rz := events[3]
	if rz.At != 2.25 || rz.Threads != 12 || rz.Exec != 1 {
		t.Errorf("resize event mangled: %+v", rz)
	}
	// ReadTrace is the historical entry point and must agree.
	evs2, err := ReadTrace(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs2) != len(events) || evs2[0] != events[0] {
		t.Errorf("ReadTrace disagrees with ReadTraceWithHeader")
	}
}

// TestV1ByteFormatLocked pins the exact v1 wire format: new fields on
// TraceEvent must never change the bytes a v1 sink writes.
func TestV1ByteFormatLocked(t *testing.T) {
	var buf bytes.Buffer
	sink := newTraceSink(&buf, 0)
	sink.emit(TraceEvent{At: 0, Type: TraceJobStart, Job: 0, Stage: -1, Task: -1, Exec: -1, Detail: "terasort"})
	sink.emit(TraceEvent{At: 1.5, Type: TraceTaskLaunch, Job: 0, Stage: 0, Task: 3, Exec: 2})
	if err := sink.flushErr(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":0,"type":"job_start","job":0,"stage":-1,"task":-1,"exec":-1,"threads":0,"detail":"terasort"}
{"t":1.5,"type":"task_launch","job":0,"stage":0,"task":3,"exec":2,"threads":0}
`
	if got := buf.String(); got != want {
		t.Errorf("v1 bytes changed:\ngot  %q\nwant %q", got, want)
	}
}

// TestV2SentinelOmission checks the v2 encoding drops sentinel-valued
// fields instead of writing -1/0 placeholders.
func TestV2SentinelOmission(t *testing.T) {
	b, err := json.Marshal(encodeV2(TraceEvent{
		At: 3, Type: TraceExecCrash, Job: -1, Stage: -1, Task: -1, Exec: 1, Detail: "crash",
	}))
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	for _, absent := range []string{`"job"`, `"stage"`, `"task"`, `"threads"`} {
		if strings.Contains(got, absent) {
			t.Errorf("v2 encoding of crash event contains %s: %s", absent, got)
		}
	}
	if !strings.Contains(got, `"exec":1`) {
		t.Errorf("v2 encoding lost exec field: %s", got)
	}
	// Legitimate zeros survive: job 0 / stage 0 / task 0 are real IDs.
	b, err = json.Marshal(encodeV2(TraceEvent{At: 1, Type: TraceTaskEnd, Job: 0, Stage: 0, Task: 0, Exec: 0}))
	if err != nil {
		t.Fatal(err)
	}
	got = string(b)
	for _, present := range []string{`"job":0`, `"stage":0`, `"task":0`, `"exec":0`} {
		if !strings.Contains(got, present) {
			t.Errorf("v2 encoding dropped real zero ID %s: %s", present, got)
		}
	}
}

// TestV2RoundTrip runs the same deterministic job in v1 and v2 format and
// checks (a) the v2 header, (b) the events match the v1 run exactly once
// span annotations are stripped, and (c) span parentage links task → stage
// → job.
func TestV2RoundTrip(t *testing.T) {
	runTrace := func(format int) []byte {
		spec, in := pipelineJob("spanjob", 8)
		opts := testOptions(4, core.Default{})
		opts.Inputs = []Input{in}
		var buf bytes.Buffer
		opts.Trace = &buf
		opts.TraceFormat = format
		if _, err := Run(opts, spec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	v1 := runTrace(0)
	v2 := runTrace(2)

	header, events, err := ReadTraceWithHeader(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if header == nil || header.Version != TraceVersion || header.Format != "flat+spans" {
		t.Fatalf("v2 header = %+v", header)
	}
	v1events, err := ReadTrace(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(v1events) {
		t.Fatalf("v2 decoded %d events, v1 %d", len(events), len(v1events))
	}
	jobSpan := map[int]int64{}
	stageSpan := map[[2]int]int64{}
	for i, ev := range events {
		flat := ev
		flat.Span, flat.Parent = 0, 0
		if flat != v1events[i] {
			t.Fatalf("event %d differs from v1 run:\nv2 %+v\nv1 %+v", i, flat, v1events[i])
		}
		switch ev.Type {
		case TraceJobStart:
			if ev.Span == 0 || ev.Parent != 0 {
				t.Errorf("job_start span/parent = %d/%d", ev.Span, ev.Parent)
			}
			jobSpan[ev.Job] = ev.Span
		case TraceStageStart:
			if ev.Parent != jobSpan[ev.Job] {
				t.Errorf("stage %d parent %d, want job span %d", ev.Stage, ev.Parent, jobSpan[ev.Job])
			}
			stageSpan[[2]int{ev.Job, ev.Stage}] = ev.Span
		case TraceTaskLaunch:
			if ev.Parent != stageSpan[[2]int{ev.Job, ev.Stage}] {
				t.Errorf("task %d/%d parent %d, want stage span %d",
					ev.Stage, ev.Task, ev.Parent, stageSpan[[2]int{ev.Job, ev.Stage}])
			}
		case TraceJobEnd:
			if ev.Span != jobSpan[ev.Job] {
				t.Errorf("job_end span %d, want %d (start and end share the span)", ev.Span, jobSpan[ev.Job])
			}
		}
	}
	// Determinism: a repeat v2 run is byte-identical.
	if again := runTrace(2); !bytes.Equal(v2, again) {
		t.Error("repeated v2 run produced different bytes")
	}
}
