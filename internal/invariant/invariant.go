// Package invariant is the engine's audit plane: an engine.Audit
// implementation that mirrors the driver's structural state machines from
// the hook stream and flags any transition the design forbids. It is the
// runtime oracle behind internal/hunt — the committed invariants
// (conservation, exactly-once, epoch fencing, detector legality) become
// checkable properties of *any* scenario, not just the hand-written tests.
//
// The auditor is purely observational. It never touches the kernel, the
// trace sink, or engine state, so attaching it cannot perturb a run: the
// event log is byte-identical with audit on and off (regression-tested).
//
// Rules checked online:
//
//   - slot-conservation: every launch is matched by exactly one release or
//     one loss-time reclaim; the driver's reclaim count equals the mirror's
//     in-flight count; an exec_lost/decommission event may not leave booked
//     slots behind.
//   - assignment-legality: no task is booked onto a dead, suspected,
//     blacklisted, draining, or decommissioned executor.
//   - epoch-monotonic: every (re)join carries a strictly increasing
//     incarnation epoch.
//   - suspect-legality: suspicion is raised only on live unsuspected
//     executors and cleared only when standing.
//   - heartbeat-legality: a "heartbeat timeout" loss declaration requires
//     standing suspicion (or a clear at the same instant — the benign
//     beat-vs-declaration mailbox race); fences are ordered only for
//     executors the driver already declared dead.
//   - drain-legality: drain targets an active executor; decommission
//     requires a draining executor with zero booked slots.
//   - shuffle-exactly-once: per (job, stage, task), a first registration
//     is accepted once, duplicates are only verdicted against a live
//     registration, and recovery only replaces an output lost to a node.
//   - byte-conservation: the job report's I/O totals equal the sum of the
//     accepted per-task metrics.
//
// Scenario expect/SLO assertions join the same stream via Flag (the
// scenario compiler calls it for each failed check when the setup carries
// an auditor), so hunt treats SLO breaches and structural violations
// uniformly.
package invariant

import (
	"fmt"
	"sort"

	"sae/internal/engine"
	"sae/internal/engine/job"
)

// Violation is one observed breach of a structural invariant.
type Violation struct {
	// Rule names the invariant ("slot-conservation", "epoch-monotonic",
	// "expect:max_runtime_sec", ...).
	Rule string
	// Run is the 1-based engine run (matrix scenarios run many engines
	// through one auditor).
	Run int
	// Offset is the 0-based trace-event index within the run at which the
	// violation was detected (-1 when flagged outside the event stream,
	// e.g. a hook with no event or a post-run expect failure).
	Offset int
	// At is the virtual time of the most recent trace event.
	At float64
	// Exec and Job locate the violation where applicable (-1 otherwise).
	Exec, Job int
	// Detail is the human-readable account of what was observed.
	Detail string
}

func (v Violation) String() string {
	where := ""
	if v.Exec >= 0 {
		where = fmt.Sprintf(" exec %d", v.Exec)
	}
	if v.Job >= 0 {
		where += fmt.Sprintf(" job %d", v.Job)
	}
	return fmt.Sprintf("run %d offset %d @%.3fs%s: %s: %s", v.Run, v.Offset, v.At, where, v.Rule, v.Detail)
}

// maxViolations caps recorded violations per auditor; a broken invariant
// can otherwise fire on every subsequent event. The total count is still
// tracked.
const maxViolations = 256

const (
	adminActive = iota
	adminDraining
	adminDown
)

// execMirror is the auditor's driver-view model of one executor.
type execMirror struct {
	alive       bool
	suspected   bool
	blacklisted bool
	admin       int
	epoch       int
	inflight    int
	// clearedAt records the instant of the last suspicion clear, to admit
	// the benign beat-vs-declaration same-instant mailbox race.
	clearedAt  float64
	hasCleared bool
}

type jobMirror struct {
	diskRead, diskWrite, net     int64
	fetchRetries, checksumFailed int
	tasks                        int
}

type shuffleKey struct{ job, stage, task int }

type shuffleMirror struct {
	node int
	lost bool
}

// Auditor implements engine.Audit. One auditor may observe many sequential
// engine runs (a matrix scenario); per-run mirrors reset at BeginRun while
// violations and coverage accumulate. It is not safe for concurrent
// engines.
type Auditor struct {
	run     int
	offset  int
	at      float64
	dropped int

	violations []Violation
	coverage   map[string]struct{}

	execs   []execMirror
	jobs    map[int]*jobMirror
	shuffle map[shuffleKey]*shuffleMirror
}

var _ engine.Audit = (*Auditor)(nil)

// New returns an empty auditor ready to attach via Options.Audit (or
// exp.Setup.Audit / scenario compilation).
func New() *Auditor {
	return &Auditor{coverage: map[string]struct{}{}}
}

// Violations returns a copy of the recorded violations in detection order.
func (a *Auditor) Violations() []Violation {
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Dropped reports violations beyond the recording cap.
func (a *Auditor) Dropped() int { return a.dropped }

// Coverage returns the sorted set of behavior signals observed so far:
// every reached trace-event type plus audit-plane state transitions
// ("slot:reclaim", "shuffle:recovered", "epoch:rejoin", ...). hunt uses it
// as the corpus-keeping signal.
func (a *Auditor) Coverage() []string {
	out := make([]string, 0, len(a.coverage))
	for s := range a.coverage {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Flag records an externally detected violation (scenario expect/SLO
// assertion failures) into the same stream as the structural rules.
func (a *Auditor) Flag(rule, detail string) {
	a.violate(rule, -1, -1, "%s", detail)
}

func (a *Auditor) cover(sig string) { a.coverage[sig] = struct{}{} }

func (a *Auditor) violate(rule string, exec, jobID int, format string, args ...any) {
	if len(a.violations) >= maxViolations {
		a.dropped++
		return
	}
	off := a.offset - 1 // index of the event being processed, if any
	if off < 0 {
		off = -1
	}
	a.violations = append(a.violations, Violation{
		Rule:   rule,
		Run:    a.run,
		Offset: off,
		At:     a.at,
		Exec:   exec,
		Job:    jobID,
		Detail: fmt.Sprintf(format, args...),
	})
}

// BeginRun implements engine.Audit.
func (a *Auditor) BeginRun(active []bool) {
	a.run++
	a.offset = 0
	a.at = 0
	a.execs = make([]execMirror, len(active))
	for i, up := range active {
		if up {
			a.execs[i] = execMirror{alive: true}
		} else {
			a.execs[i] = execMirror{admin: adminDown}
		}
	}
	a.jobs = map[int]*jobMirror{}
	a.shuffle = map[shuffleKey]*shuffleMirror{}
}

// EndRun implements engine.Audit.
func (a *Auditor) EndRun() {}

// Event implements engine.Audit: it advances the mirrors through the
// driver-visible state machines and checks transition legality.
func (a *Auditor) Event(ev engine.TraceEvent) {
	a.offset++
	a.at = ev.At
	a.cover("event:" + ev.Type)
	if ev.Exec < 0 || ev.Exec >= len(a.execs) {
		return
	}
	x := &a.execs[ev.Exec]
	switch ev.Type {
	case engine.TraceExecSuspect:
		if ev.Detail == "cleared by heartbeat" {
			if !x.suspected {
				a.violate("suspect-legality", ev.Exec, -1, "suspicion cleared with none standing")
			}
			x.suspected = false
			x.clearedAt = ev.At
			x.hasCleared = true
			a.cover("suspect:clear")
		} else {
			if !x.alive {
				a.violate("suspect-legality", ev.Exec, -1, "suspicion raised on executor already declared dead")
			}
			if x.suspected {
				a.violate("suspect-legality", ev.Exec, -1, "suspicion raised while already suspected")
			}
			x.suspected = true
			a.cover("suspect:raise")
		}
	case engine.TraceExecLost:
		if ev.Detail == "heartbeat timeout" && !x.suspected && !(x.hasCleared && x.clearedAt == ev.At) {
			a.violate("heartbeat-legality", ev.Exec, -1,
				"loss declared by heartbeat timeout without standing suspicion")
		}
		if x.inflight != 0 {
			a.violate("slot-conservation", ev.Exec, -1,
				"executor declared lost with %d booked slots never reclaimed", x.inflight)
			x.inflight = 0
		}
		x.alive = false
		x.suspected = false
		a.cover("lost:" + ev.Detail)
	case engine.TraceExecFence:
		if x.alive {
			a.violate("heartbeat-legality", ev.Exec, -1, "fence ordered for an executor the driver considers live")
		}
		a.cover("fence")
	case engine.TraceBlacklist:
		x.blacklisted = true
		a.cover("blacklist")
	case engine.TraceDrain:
		if x.admin != adminActive {
			a.violate("drain-legality", ev.Exec, -1, "drain ordered for a non-active executor")
		}
		x.admin = adminDraining
		a.cover("drain")
	case engine.TraceDecommission:
		if x.admin != adminDraining {
			a.violate("drain-legality", ev.Exec, -1, "decommission of an executor that was not draining")
		}
		if x.inflight != 0 {
			a.violate("slot-conservation", ev.Exec, -1,
				"executor decommissioned with %d booked slots never reclaimed", x.inflight)
			x.inflight = 0
		}
		x.admin = adminDown
		a.cover("decommission")
	case engine.TraceScaleUp:
		if x.admin != adminDown {
			a.violate("drain-legality", ev.Exec, -1, "scale-up provisioning of an executor not decommissioned")
		}
		a.cover("scale-up")
	}
}

// SlotLaunched implements engine.Audit.
func (a *Auditor) SlotLaunched(exec, jobID int) {
	x := &a.execs[exec]
	switch {
	case !x.alive:
		a.violate("assignment-legality", exec, jobID, "task booked onto a dead executor")
	case x.suspected:
		a.violate("assignment-legality", exec, jobID, "task booked onto a suspected executor")
	case x.blacklisted:
		a.violate("assignment-legality", exec, jobID, "task booked onto a blacklisted executor")
	case x.admin != adminActive:
		a.violate("assignment-legality", exec, jobID, "task booked onto a draining or decommissioned executor")
	}
	x.inflight++
	a.cover("slot:launch")
}

// SlotReleased implements engine.Audit.
func (a *Auditor) SlotReleased(exec, jobID int) {
	x := &a.execs[exec]
	if x.inflight == 0 {
		a.violate("slot-conservation", exec, jobID, "slot released with no matching launch")
		return
	}
	x.inflight--
	a.cover("slot:release")
}

// SlotsReclaimed implements engine.Audit.
func (a *Auditor) SlotsReclaimed(exec, inflight int) {
	x := &a.execs[exec]
	if inflight != x.inflight {
		a.violate("slot-conservation", exec, -1,
			"driver reclaimed %d slots but the launch/release ledger holds %d", inflight, x.inflight)
	}
	x.inflight = 0
	x.alive = false
	if inflight > 0 {
		a.cover("slot:reclaim")
	}
}

// ExecutorEpoch implements engine.Audit.
func (a *Auditor) ExecutorEpoch(exec, epoch int) {
	x := &a.execs[exec]
	if epoch <= x.epoch {
		a.violate("epoch-monotonic", exec, -1,
			"executor rejoined at epoch %d, not above the last seen epoch %d", epoch, x.epoch)
	}
	if x.epoch > 0 || epoch > 1 {
		a.cover("epoch:rejoin")
	}
	x.epoch = epoch
	x.alive = true
	x.suspected = false
	x.blacklisted = false
	if x.admin == adminDown {
		// Autoscale activation: the only legal join of a decommissioned
		// executor readmits it to active duty.
		x.admin = adminActive
	}
}

// ShuffleRegistered implements engine.Audit.
func (a *Auditor) ShuffleRegistered(jobID, stage, task, node int, outcome engine.ShuffleOutcome) {
	key := shuffleKey{job: jobID, stage: stage, task: task}
	m := a.shuffle[key]
	switch outcome {
	case engine.ShuffleAccepted:
		if m != nil && !m.lost {
			a.violate("shuffle-exactly-once", -1, jobID,
				"stage %d task %d: second registration accepted over a live output", stage, task)
		}
		if m != nil && m.lost {
			a.violate("shuffle-exactly-once", -1, jobID,
				"stage %d task %d: lost output replaced without recovery accounting", stage, task)
		}
		a.shuffle[key] = &shuffleMirror{node: node}
		a.cover("shuffle:accepted")
	case engine.ShuffleDuplicate:
		if m == nil {
			a.violate("shuffle-exactly-once", -1, jobID,
				"stage %d task %d: duplicate verdict for an output never registered", stage, task)
		} else if m.lost {
			a.violate("shuffle-exactly-once", -1, jobID,
				"stage %d task %d: duplicate verdict while the registered output is lost", stage, task)
		}
		a.cover("shuffle:duplicate")
	case engine.ShuffleRecovered:
		if m == nil || !m.lost {
			a.violate("shuffle-exactly-once", -1, jobID,
				"stage %d task %d: recovery verdict without a lost registration", stage, task)
		}
		a.shuffle[key] = &shuffleMirror{node: node}
		a.cover("shuffle:recovered")
	case engine.ShuffleEmpty:
	}
}

// ShuffleNodeLost implements engine.Audit. Map mutation order is
// irrelevant: marking entries lost is commutative and emits nothing.
func (a *Auditor) ShuffleNodeLost(node int) {
	for _, m := range a.shuffle {
		if m.node == node {
			m.lost = true
		}
	}
	a.cover("shuffle:node-lost")
}

// TaskAccepted implements engine.Audit.
func (a *Auditor) TaskAccepted(jobID int, m job.TaskMetrics) {
	jm := a.jobs[jobID]
	if jm == nil {
		jm = &jobMirror{}
		a.jobs[jobID] = jm
	}
	jm.diskRead += m.DiskReadBytes
	jm.diskWrite += m.DiskWriteBytes
	jm.net += m.NetBytes
	jm.fetchRetries += m.FetchRetries
	jm.checksumFailed += m.ChecksumFailovers
	jm.tasks++
}

// JobFinished implements engine.Audit: the report's accumulated I/O must
// equal the sum of the per-task metrics the driver accepted.
func (a *Auditor) JobFinished(rep *engine.JobReport) {
	jm := a.jobs[rep.ID]
	if jm == nil {
		jm = &jobMirror{}
	}
	check := func(what string, got, want int64) {
		if got != want {
			a.violate("byte-conservation", -1, rep.ID,
				"report %s %d does not equal the %d task-attributed total %d", what, got, jm.tasks, want)
		}
	}
	check("disk-read bytes", rep.DiskReadBytes, jm.diskRead)
	check("disk-write bytes", rep.DiskWriteBytes, jm.diskWrite)
	check("network bytes", rep.NetBytes, jm.net)
	check("fetch retries", int64(rep.FetchRetries), int64(jm.fetchRetries))
	check("checksum failovers", int64(rep.ChecksumFailovers), int64(jm.checksumFailed))
	delete(a.jobs, rep.ID)
	for key := range a.shuffle {
		if key.job == rep.ID {
			delete(a.shuffle, key)
		}
	}
}
