package invariant

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"sae/internal/chaos"
	"sae/internal/conf"
	"sae/internal/core"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/exp"
	"sae/internal/scenario"
	"sae/internal/workloads"
)

// crashSetup is the canonical audited fault run: terasort at small scale
// with a tight failure detector, so the crash at 8s is declared lost
// mid-run with tasks in flight.
func crashSetup(t *testing.T) exp.Setup {
	t.Helper()
	s := exp.Default().WithScale(0.02)
	reg := conf.New()
	if err := reg.Set("executor.heartbeatInterval", "2s"); err != nil {
		t.Fatal(err)
	}
	s.Config = reg
	plan, err := chaos.Parse("crash1@8s")
	if err != nil {
		t.Fatal(err)
	}
	s.Faults = plan
	return s
}

func runTerasort(t *testing.T, s exp.Setup) {
	t.Helper()
	w, err := workloads.ByName("terasort", workloads.Config{Nodes: s.Nodes, Scale: s.Scale})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(w, core.DefaultDynamic(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestZeroPerturbation is the audit plane's core guarantee: attaching an
// auditor leaves the engine event log byte-identical, on quiet and on
// fault-injected runs.
func TestZeroPerturbation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		setup func(t *testing.T) exp.Setup
	}{
		{"quiet", func(t *testing.T) exp.Setup { return exp.Default().WithScale(0.02) }},
		{"crash", crashSetup},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var plain, audited bytes.Buffer

			s := tc.setup(t)
			s.Trace = &plain
			runTerasort(t, s)

			s = tc.setup(t)
			s.Trace = &audited
			aud := New()
			s.Audit = aud
			runTerasort(t, s)

			if !bytes.Equal(plain.Bytes(), audited.Bytes()) {
				t.Fatalf("event log differs with audit attached (%d vs %d bytes)", plain.Len(), audited.Len())
			}
			if vs := aud.Violations(); len(vs) != 0 {
				t.Fatalf("unexpected violations: %v", vs)
			}
			if len(aud.Coverage()) == 0 {
				t.Fatal("auditor observed no coverage signals")
			}
		})
	}
}

// TestGoldenScenariosClean audits every committed scenario spec at the CI
// smoke setup (scale 0.05, seed 7): all invariants must hold and every
// expect assertion must pass (a failed expect would Flag into the stream).
func TestGoldenScenariosClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every committed scenario")
	}
	paths, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed scenario specs found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sp, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			s := sp.BaseSetup().WithScale(0.05)
			s.Seed = 7
			aud := New()
			s.Audit = aud
			c, err := sp.Compile(s)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Run(); err != nil {
				t.Fatal(err)
			}
			for _, v := range aud.Violations() {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestSkipSlotReclaimDetected is the oracle's mutation test: with the
// slot-reclaim bug injected into the engine, the audited crash run must
// produce a slot-conservation violation.
func TestSkipSlotReclaimDetected(t *testing.T) {
	restore := engine.EnableTestBug("skip-slot-reclaim")
	defer restore()
	s := crashSetup(t)
	aud := New()
	s.Audit = aud
	runTerasort(t, s)
	var got []string
	for _, v := range aud.Violations() {
		got = append(got, v.Rule)
		if v.Rule == "slot-conservation" {
			if !strings.Contains(v.Detail, "never reclaimed") {
				t.Errorf("unexpected detail: %s", v.Detail)
			}
			if v.Offset < 0 || v.At <= 0 {
				t.Errorf("violation lacks a trace location: %s", v)
			}
			return
		}
	}
	t.Fatalf("slot-conservation violation not detected; got rules %v", got)
}

// --- direct hook-level rule tests ---------------------------------------

func fresh(execs int) *Auditor {
	a := New()
	active := make([]bool, execs)
	for i := range active {
		active[i] = true
	}
	a.BeginRun(active)
	return a
}

func rules(a *Auditor) []string {
	var out []string
	for _, v := range a.Violations() {
		out = append(out, v.Rule)
	}
	return out
}

func wantRule(t *testing.T, a *Auditor, rule string) {
	t.Helper()
	for _, v := range a.Violations() {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("rule %s not flagged; got %v", rule, rules(a))
}

func wantClean(t *testing.T, a *Auditor) {
	t.Helper()
	if vs := a.Violations(); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func ev(typ string, exec int, at float64, detail string) engine.TraceEvent {
	return engine.TraceEvent{At: at, Type: typ, Job: -1, Stage: -1, Task: -1, Exec: exec, Detail: detail}
}

func TestRuleEpochMonotonic(t *testing.T) {
	a := fresh(2)
	a.ExecutorEpoch(0, 1)
	a.ExecutorEpoch(0, 2)
	wantClean(t, a)
	a.ExecutorEpoch(0, 2)
	wantRule(t, a, "epoch-monotonic")
}

func TestRuleReleaseWithoutLaunch(t *testing.T) {
	a := fresh(1)
	a.SlotReleased(0, 0)
	wantRule(t, a, "slot-conservation")
}

func TestRuleReclaimMismatch(t *testing.T) {
	a := fresh(1)
	a.SlotLaunched(0, 0)
	a.SlotsReclaimed(0, 3)
	wantRule(t, a, "slot-conservation")
}

func TestRuleLostWithBookedSlots(t *testing.T) {
	a := fresh(2)
	a.SlotLaunched(1, 0)
	a.Event(ev(engine.TraceExecSuspect, 1, 5, "missed heartbeats"))
	a.Event(ev(engine.TraceExecLost, 1, 10, "heartbeat timeout"))
	wantRule(t, a, "slot-conservation")
}

func TestRuleAssignmentLegality(t *testing.T) {
	a := fresh(2)
	a.Event(ev(engine.TraceExecSuspect, 1, 5, "missed heartbeats"))
	a.Event(ev(engine.TraceExecLost, 1, 10, "heartbeat timeout"))
	a.SlotLaunched(1, 0)
	wantRule(t, a, "assignment-legality")

	a = fresh(2)
	a.Event(ev(engine.TraceExecSuspect, 0, 5, "missed heartbeats"))
	a.SlotLaunched(0, 0)
	wantRule(t, a, "assignment-legality")

	a = fresh(2)
	a.Event(ev(engine.TraceBlacklist, 0, 5, ""))
	a.SlotLaunched(0, 0)
	wantRule(t, a, "assignment-legality")

	a = fresh(2)
	a.Event(ev(engine.TraceDrain, 0, 5, ""))
	a.SlotLaunched(0, 0)
	wantRule(t, a, "assignment-legality")
}

func TestRuleSuspectLegality(t *testing.T) {
	a := fresh(1)
	a.Event(ev(engine.TraceExecSuspect, 0, 5, "cleared by heartbeat"))
	wantRule(t, a, "suspect-legality")

	a = fresh(1)
	a.Event(ev(engine.TraceExecSuspect, 0, 5, "missed heartbeats"))
	a.Event(ev(engine.TraceExecSuspect, 0, 6, "missed heartbeats"))
	wantRule(t, a, "suspect-legality")
}

func TestRuleHeartbeatLegality(t *testing.T) {
	a := fresh(1)
	a.Event(ev(engine.TraceExecLost, 0, 10, "heartbeat timeout"))
	wantRule(t, a, "heartbeat-legality")

	// Fence on a live executor.
	a = fresh(1)
	a.Event(ev(engine.TraceExecFence, 0, 10, ""))
	wantRule(t, a, "heartbeat-legality")

	// The benign mailbox race: the beat clears suspicion at the exact
	// instant the detector declares the loss. Legal.
	a = fresh(1)
	a.Event(ev(engine.TraceExecSuspect, 0, 5, "missed heartbeats"))
	a.Event(ev(engine.TraceExecSuspect, 0, 10, "cleared by heartbeat"))
	a.Event(ev(engine.TraceExecLost, 0, 10, "heartbeat timeout"))
	wantClean(t, a)

	// A clear at an earlier instant does not excuse the declaration.
	a = fresh(1)
	a.Event(ev(engine.TraceExecSuspect, 0, 5, "missed heartbeats"))
	a.Event(ev(engine.TraceExecSuspect, 0, 9, "cleared by heartbeat"))
	a.Event(ev(engine.TraceExecLost, 0, 10, "heartbeat timeout"))
	wantRule(t, a, "heartbeat-legality")
}

func TestRuleDrainLegality(t *testing.T) {
	a := fresh(1)
	a.Event(ev(engine.TraceDecommission, 0, 10, ""))
	wantRule(t, a, "drain-legality")

	a = fresh(1)
	a.Event(ev(engine.TraceDrain, 0, 5, ""))
	a.Event(ev(engine.TraceDrain, 0, 6, ""))
	wantRule(t, a, "drain-legality")

	a = fresh(1)
	a.Event(ev(engine.TraceScaleUp, 0, 5, ""))
	wantRule(t, a, "drain-legality")

	// Decommission with booked slots leaks them.
	a = fresh(1)
	a.SlotLaunched(0, 0)
	a.Event(ev(engine.TraceDrain, 0, 5, ""))
	a.Event(ev(engine.TraceDecommission, 0, 6, ""))
	wantRule(t, a, "slot-conservation")

	// The legal lifecycle: drain, release, decommission, scale-up, rejoin.
	a = fresh(1)
	a.SlotLaunched(0, 0)
	a.Event(ev(engine.TraceDrain, 0, 5, ""))
	a.SlotReleased(0, 0)
	a.Event(ev(engine.TraceDecommission, 0, 6, ""))
	a.Event(ev(engine.TraceScaleUp, 0, 9, ""))
	a.ExecutorEpoch(0, 1)
	a.SlotLaunched(0, 0)
	a.SlotReleased(0, 0)
	wantClean(t, a)
}

func TestRuleShuffleExactlyOnce(t *testing.T) {
	a := fresh(1)
	a.ShuffleRegistered(0, 0, 3, 0, engine.ShuffleAccepted)
	a.ShuffleRegistered(0, 0, 3, 1, engine.ShuffleAccepted)
	wantRule(t, a, "shuffle-exactly-once")

	a = fresh(1)
	a.ShuffleRegistered(0, 0, 3, 0, engine.ShuffleDuplicate)
	wantRule(t, a, "shuffle-exactly-once")

	a = fresh(1)
	a.ShuffleRegistered(0, 0, 3, 0, engine.ShuffleRecovered)
	wantRule(t, a, "shuffle-exactly-once")

	// The legal recovery cycle.
	a = fresh(1)
	a.ShuffleRegistered(0, 0, 3, 0, engine.ShuffleAccepted)
	a.ShuffleRegistered(0, 0, 3, 0, engine.ShuffleDuplicate)
	a.ShuffleNodeLost(0)
	a.ShuffleRegistered(0, 0, 3, 1, engine.ShuffleRecovered)
	a.ShuffleRegistered(0, 0, 3, 1, engine.ShuffleDuplicate)
	wantClean(t, a)
}

func TestRuleByteConservation(t *testing.T) {
	a := fresh(1)
	a.TaskAccepted(0, job.TaskMetrics{DiskReadBytes: 100, NetBytes: 40})
	a.TaskAccepted(0, job.TaskMetrics{DiskReadBytes: 50})
	rep := &engine.JobReport{ID: 0, DiskReadBytes: 150, NetBytes: 40}
	a.JobFinished(rep)
	wantClean(t, a)

	a = fresh(1)
	a.TaskAccepted(0, job.TaskMetrics{DiskReadBytes: 100})
	a.JobFinished(&engine.JobReport{ID: 0, DiskReadBytes: 90})
	wantRule(t, a, "byte-conservation")
}

func TestFlagAndViolationCap(t *testing.T) {
	a := fresh(1)
	a.Flag("expect:max_runtime_sec", "observed 12, threshold 10")
	wantRule(t, a, "expect:max_runtime_sec")
	if v := a.Violations()[0]; v.Offset != -1 || v.Exec != -1 {
		t.Fatalf("flagged violation should carry no trace location: %+v", v)
	}

	for i := 0; i < maxViolations+10; i++ {
		a.SlotReleased(0, 0)
	}
	if n := len(a.Violations()); n != maxViolations {
		t.Fatalf("recorded %d violations, cap is %d", n, maxViolations)
	}
	if a.Dropped() == 0 {
		t.Fatal("dropped counter did not advance past the cap")
	}
}
