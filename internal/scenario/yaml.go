// Package scenario turns experiments into data: a versioned YAML/JSON spec
// that composes cluster shape, workload mix, executor sizing policies,
// conf overrides, chaos clauses, arrival patterns, autoscale configs and
// SLO assertions, and compiles to the same exp.Runner primitives the
// hand-coded Go experiments use — so a same-seed scenario run is
// byte-identical to its Go equivalent.
//
// The vocabulary follows PlantD's Experiment / LoadPattern / Scenario
// resource split: the cluster block is the environment, the arrival block
// the load pattern, and the spec as a whole the scenario that binds them.
// Parsing is strict — unknown fields, duplicate keys and unknown versions
// are rejected with positional errors — which is what makes fuzzing whole
// scenarios (FuzzScenarioSpec) meaningful rather than decorative.
package scenario

import (
	"fmt"
	"strings"
)

// nodeKind discriminates the parse tree.
type nodeKind int

const (
	scalarNode nodeKind = iota
	mappingNode
	sequenceNode
)

// node is one vertex of the parsed document, annotated with its source
// line so every decode error can point at the offending field.
type node struct {
	kind nodeKind
	line int
	// val holds a scalar's text.
	val string
	// keys preserves a mapping's declaration order; children its entries.
	keys     []string
	children map[string]*node
	// seq holds a sequence's items.
	seq []*node
}

func (n *node) kindName() string {
	switch n.kind {
	case mappingNode:
		return "mapping"
	case sequenceNode:
		return "sequence"
	default:
		return "scalar"
	}
}

// yline is one significant source line: its 1-based number, indentation in
// spaces, and content with indentation and comments stripped.
type yline struct {
	num    int
	indent int
	text   string
}

// parseYAML parses the supported YAML subset: block mappings and sequences
// nested by space indentation, plain/quoted scalars, flow sequences
// ("[a, b]"), and '#' comments. Tabs, flow mappings, anchors, multi-line
// scalars and multi-document streams are rejected — scenario specs are
// data, and a small grammar keeps strict round-trip parsing tractable.
func parseYAML(data []byte) (*node, error) {
	var lines []yline
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		if strings.ContainsRune(raw, '\t') {
			return nil, fmt.Errorf("line %d: tabs are not allowed (indent with spaces)", num)
		}
		text, err := stripComment(raw, num)
		if err != nil {
			return nil, err
		}
		trimmed := strings.TrimLeft(text, " ")
		if trimmed == "" {
			continue
		}
		if trimmed == "---" {
			if len(lines) > 0 {
				return nil, fmt.Errorf("line %d: multi-document streams are not supported", num)
			}
			continue
		}
		lines = append(lines, yline{
			num:    num,
			indent: len(text) - len(trimmed),
			text:   strings.TrimRight(trimmed, " "),
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &yparser{lines: lines}
	n, err := p.block(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
	}
	return n, nil
}

// stripComment removes a trailing '#' comment, respecting quoted strings.
func stripComment(s string, num int) (string, error) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#':
			if i == 0 || s[i-1] == ' ' {
				return s[:i], nil
			}
		}
	}
	if quote != 0 {
		return "", fmt.Errorf("line %d: unterminated %q quote", num, string(quote))
	}
	return s, nil
}

type yparser struct {
	lines []yline
	pos   int
}

func (p *yparser) cur() yline { return p.lines[p.pos] }

// block parses the mapping or sequence whose items sit at exactly indent.
func (p *yparser) block(indent int) (*node, error) {
	l := p.cur()
	if l.indent != indent {
		return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.sequence(indent)
	}
	return p.mapping(indent)
}

func (p *yparser) mapping(indent int) (*node, error) {
	n := &node{kind: mappingNode, line: p.cur().num, children: map[string]*node{}}
	for p.pos < len(p.lines) {
		l := p.cur()
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("line %d: sequence item in mapping", l.num)
		}
		key, rest, err := splitKey(l.text, l.num)
		if err != nil {
			return nil, err
		}
		if _, dup := n.children[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		var child *node
		if rest != "" {
			if child, err = parseScalar(rest, l.num); err != nil {
				return nil, err
			}
		} else {
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: key %q has no value", l.num, key)
			}
			if child, err = p.block(p.lines[p.pos].indent); err != nil {
				return nil, err
			}
		}
		n.keys = append(n.keys, key)
		n.children[key] = child
	}
	return n, nil
}

func (p *yparser) sequence(indent int) (*node, error) {
	n := &node{kind: sequenceNode, line: p.cur().num}
	for p.pos < len(p.lines) {
		l := p.cur()
		if l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			if l.indent > indent {
				return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
			}
			break
		}
		if l.text == "-" {
			// Item body nested on the following lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: empty sequence item", l.num)
			}
			item, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			n.seq = append(n.seq, item)
			continue
		}
		rest := strings.TrimLeft(l.text[2:], " ")
		if rest == "" {
			return nil, fmt.Errorf("line %d: empty sequence item", l.num)
		}
		if isMappingStart(rest) {
			// "- key: value": the item is a mapping whose first entry sits
			// on the dash line and whose remaining entries are indented
			// past the dash. Rewrite the line as that first entry and
			// parse a mapping block at the entry's column.
			inner := l.indent + (len(l.text) - len(rest))
			p.lines[p.pos] = yline{num: l.num, indent: inner, text: rest}
			item, err := p.mapping(inner)
			if err != nil {
				return nil, err
			}
			n.seq = append(n.seq, item)
			continue
		}
		item, err := parseScalar(rest, l.num)
		if err != nil {
			return nil, err
		}
		n.seq = append(n.seq, item)
		p.pos++
	}
	return n, nil
}

// isMappingStart reports whether a sequence item's inline text opens a
// mapping ("name: x") rather than a plain scalar ("crash1@45%").
func isMappingStart(s string) bool {
	if s[0] == '"' || s[0] == '\'' || s[0] == '[' {
		return false
	}
	_, _, err := splitKey(s, 0)
	return err == nil
}

// splitKey splits "key: value" or "key:"; keys are bare words (letters,
// digits, '.', '_', '-') as in every conf parameter and spec field.
func splitKey(s string, num int) (key, rest string, err error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("line %d: expected \"key: value\", got %q", num, s)
	}
	key = s[:i]
	for _, c := range []byte(key) {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-'
		if !ok {
			return "", "", fmt.Errorf("line %d: bad key %q", num, key)
		}
	}
	rest = s[i+1:]
	if rest != "" && rest[0] != ' ' {
		return "", "", fmt.Errorf("line %d: missing space after %q:", num, key)
	}
	return key, strings.TrimLeft(rest, " "), nil
}

// parseScalar parses a scalar or flow sequence value.
func parseScalar(s string, num int) (*node, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("line %d: unterminated flow sequence %q", num, s)
		}
		n := &node{kind: sequenceNode, line: num}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return n, nil
		}
		for _, item := range splitFlow(body) {
			item = strings.TrimSpace(item)
			if item == "" {
				return nil, fmt.Errorf("line %d: empty flow sequence item in %q", num, s)
			}
			child, err := parseScalar(item, num)
			if err != nil {
				return nil, err
			}
			if child.kind != scalarNode {
				return nil, fmt.Errorf("line %d: nested flow sequences are not supported", num)
			}
			n.seq = append(n.seq, child)
		}
		return n, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("line %d: flow mappings are not supported (use a block mapping)", num)
	}
	val, err := unquote(s, num)
	if err != nil {
		return nil, err
	}
	return &node{kind: scalarNode, line: num, val: val}, nil
}

// splitFlow splits a flow-sequence body on commas outside quotes.
func splitFlow(s string) []string {
	var out []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// unquote resolves quoted scalars; plain scalars pass through verbatim.
// Single-quoted scalars follow YAML's doubling escape (” → ').
func unquote(s string, num int) (string, error) {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') {
		if s[len(s)-1] != s[0] {
			return "", fmt.Errorf("line %d: unterminated quote in %q", num, s)
		}
		body := s[1 : len(s)-1]
		if s[0] == '\'' {
			body = strings.ReplaceAll(body, "''", "'")
		}
		return body, nil
	}
	if len(s) > 0 && (s[0] == '"' || s[0] == '\'') {
		return "", fmt.Errorf("line %d: unterminated quote in %q", num, s)
	}
	return s, nil
}
