package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// parseJSON decodes a JSON document into the same node tree the YAML
// parser builds, so JSON specs flow through the identical strict decoder.
// JSON carries no line information; errors fall back to field-path
// positions.
func parseJSON(data []byte) (*node, error) {
	d := json.NewDecoder(bytes.NewReader(data))
	d.UseNumber()
	var v any
	if err := d.Decode(&v); err != nil {
		return nil, fmt.Errorf("json: %w", err)
	}
	// A second value after the document is as malformed as a YAML
	// multi-document stream.
	if d.More() {
		return nil, fmt.Errorf("json: trailing data after document")
	}
	return jsonNode(v)
}

func jsonNode(v any) (*node, error) {
	switch t := v.(type) {
	case map[string]any:
		n := &node{kind: mappingNode, children: map[string]*node{}}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			child, err := jsonNode(t[k])
			if err != nil {
				return nil, err
			}
			n.keys = append(n.keys, k)
			n.children[k] = child
		}
		return n, nil
	case []any:
		n := &node{kind: sequenceNode}
		for _, item := range t {
			child, err := jsonNode(item)
			if err != nil {
				return nil, err
			}
			n.seq = append(n.seq, child)
		}
		return n, nil
	case string:
		return &node{kind: scalarNode, val: t}, nil
	case json.Number:
		return &node{kind: scalarNode, val: t.String()}, nil
	case bool:
		if t {
			return &node{kind: scalarNode, val: "true"}, nil
		}
		return &node{kind: scalarNode, val: "false"}, nil
	case nil:
		return nil, fmt.Errorf("json: null values are not allowed")
	default:
		return nil, fmt.Errorf("json: unsupported value %T", v)
	}
}
