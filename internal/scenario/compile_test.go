package scenario

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sae/internal/chaos"
	"sae/internal/conf"
	"sae/internal/exp"
	"sae/internal/workloads"
)

func loadGolden(t *testing.T, name string) *Spec {
	t.Helper()
	sp, err := Load(filepath.Join("..", "..", "scenarios", name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return sp
}

func runScenario(t *testing.T, sp *Spec, s exp.Setup) fmt.Stringer {
	t.Helper()
	c, err := sp.Compile(s)
	if err != nil {
		t.Fatalf("compile %s: %v", sp.Name, err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("run %s: %v", sp.Name, err)
	}
	return res
}

// requireIdentical asserts a scenario result matches its hand-coded Go
// equivalent byte for byte: rendered report and CSV series.
func requireIdentical(t *testing.T, name string, goRes, scRes fmt.Stringer) {
	t.Helper()
	if goRes.String() != scRes.String() {
		t.Errorf("%s: scenario report differs from the Go experiment\n--- go ---\n%s--- scenario ---\n%s",
			name, goRes.String(), scRes.String())
	}
	goTab, ok1 := goRes.(exp.Tabular)
	scTab, ok2 := scRes.(exp.Tabular)
	if !ok1 || !ok2 {
		t.Fatalf("%s: results must both be Tabular (go %v, scenario %v)", name, ok1, ok2)
	}
	if !reflect.DeepEqual(goTab.CSVTables(), scTab.CSVTables()) {
		t.Errorf("%s: scenario CSV series differ from the Go experiment", name)
	}
}

// TestFaultsScenarioByteIdentical runs scenarios/faults.yaml and the Go
// faults experiment at the same seed and asserts report, CSV and trace
// bytes all match.
func TestFaultsScenarioByteIdentical(t *testing.T) {
	sp := loadGolden(t, "faults.yaml")
	var goTrace, scTrace bytes.Buffer

	goSetup := sp.BaseSetup().WithScale(0.04)
	goSetup.Trace = &goTrace
	goRes, err := exp.Faults(goSetup)
	if err != nil {
		t.Fatalf("exp.Faults: %v", err)
	}

	scSetup := sp.BaseSetup().WithScale(0.04)
	scSetup.Trace = &scTrace
	scRes := runScenario(t, sp, scSetup)

	requireIdentical(t, "faults", goRes, scRes)
	if !bytes.Equal(goTrace.Bytes(), scTrace.Bytes()) {
		t.Errorf("faults: scenario trace differs from the Go experiment (%d vs %d bytes)",
			goTrace.Len(), scTrace.Len())
	}
}

func TestGrayFailScenarioByteIdentical(t *testing.T) {
	sp := loadGolden(t, "grayfail.yaml")
	goRes, err := exp.GrayFail(sp.BaseSetup().WithScale(0.04))
	if err != nil {
		t.Fatalf("exp.GrayFail: %v", err)
	}
	scRes := runScenario(t, sp, sp.BaseSetup().WithScale(0.04))
	requireIdentical(t, "grayfail", goRes, scRes)
}

func TestMultiTenantScenarioByteIdentical(t *testing.T) {
	sp := loadGolden(t, "multitenant.yaml")
	goRes, err := exp.MultiTenant(sp.BaseSetup().WithScale(0.02))
	if err != nil {
		t.Fatalf("exp.MultiTenant: %v", err)
	}
	scRes := runScenario(t, sp, sp.BaseSetup().WithScale(0.02))
	requireIdentical(t, "multitenant", goRes, scRes)
}

func TestAutoscaleScenarioByteIdentical(t *testing.T) {
	sp := loadGolden(t, "autoscale.yaml")
	goSetup := sp.BaseSetup().WithScale(0.05)
	goSetup.Seed = 7
	goRes, err := exp.Autoscale(goSetup)
	if err != nil {
		t.Fatalf("exp.Autoscale: %v", err)
	}
	scSetup := sp.BaseSetup().WithScale(0.05)
	scSetup.Seed = 7
	scRes := runScenario(t, sp, scSetup)
	requireIdentical(t, "autoscale", goRes, scRes)
}

// TestSingleScenario runs scenarios/terasort-crash.yaml against the
// hand-built equivalent setup and checks the assertions pass.
func TestSingleScenario(t *testing.T) {
	sp := loadGolden(t, "terasort-crash.yaml")
	s := sp.BaseSetup().WithScale(0.05)

	// Hand-coded equivalent: same conf override, same chaos plan.
	reg := conf.New()
	if err := reg.Set("shuffle.io.maxRetries", "6"); err != nil {
		t.Fatal(err)
	}
	goSetup := s
	goSetup.Config = reg
	goSetup = goSetup.WithFaults(chaos.CrashAt(1, 90*time.Second))
	w, err := workloads.ByName("terasort", workloads.Config{Nodes: s.Nodes, Scale: s.Scale})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := exp.PolicyByName("dynamic")
	if err != nil {
		t.Fatal(err)
	}
	goRep, err := goSetup.Run(w, pol, nil)
	if err != nil {
		t.Fatal(err)
	}

	res := runScenario(t, sp, s)
	single, ok := res.(*SingleResult)
	if !ok {
		t.Fatalf("single scenario returned %T", res)
	}
	if single.Report.String() != goRep.String() {
		t.Errorf("single: scenario report differs from the hand-coded run\n--- go ---\n%s--- scenario ---\n%s",
			goRep, single.Report)
	}
	if fails := single.Failures(); len(fails) > 0 {
		t.Errorf("single: expect assertions failed: %v", fails)
	}
	if len(single.Checks) != 2 {
		t.Errorf("single: want 2 checks, got %d", len(single.Checks))
	}
}

// TestScenarioConfCLIOverride checks CLI-set conf values beat the spec's.
func TestScenarioConfCLIOverride(t *testing.T) {
	sp := loadGolden(t, "terasort-crash.yaml")
	s := sp.BaseSetup()
	reg := conf.New()
	if err := reg.Set("shuffle.io.maxRetries", "9"); err != nil {
		t.Fatal(err)
	}
	s.Config = reg
	c, err := sp.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Setup.Config.Get("shuffle.io.maxRetries")
	if err != nil {
		t.Fatal(err)
	}
	if got != "9" {
		t.Errorf("CLI conf override lost: shuffle.io.maxRetries = %q, want 9", got)
	}
}

// TestPercentScheduleMath pins the percentage-time resolution to the exact
// integer math the Go experiments use.
func TestPercentScheduleMath(t *testing.T) {
	quiet := 151200 * time.Millisecond
	cases := []struct {
		clause string
		want   *chaos.Plan
	}{
		{"crash1@45%", chaos.CrashAt(1, quiet*45/100)},
		{"crash1@45%+20%", chaos.CrashRestart(1, quiet*45/100, quiet*20/100)},
		{"slow1@25%x4", chaos.SlowAt(1, quiet/4, 4)},
		{"partition1@25%+20%", chaos.PartitionAt(1, quiet/4, quiet*20/100)},
		{"flaky:0.02", chaos.Flaky(0.02, 7)},
		{"corrupt:0.05", chaos.Corrupt(0.05, 7)},
	}
	for _, c := range cases {
		gen, err := parseScheduleSpec(c.clause)
		if err != nil {
			t.Fatalf("%s: %v", c.clause, err)
		}
		got := gen(quiet, 7)
		if got.String() != c.want.String() {
			t.Errorf("%s: plan name %q, want %q", c.clause, got, c.want)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: plan differs from the constructor-built equivalent", c.clause)
		}
	}
}
