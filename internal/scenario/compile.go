package scenario

import (
	"fmt"
	"time"

	"sae/internal/arrival"
	"sae/internal/autoscale"
	"sae/internal/chaos"
	"sae/internal/conf"
	"sae/internal/engine"
	"sae/internal/engine/job"
	"sae/internal/exp"
	"sae/internal/workloads"
)

// BaseSetup returns the exp.Setup the spec's cluster block describes.
// Unset fields inherit the paper defaults (4 nodes, scale 1, seed 1, HDD);
// callers typically layer explicit CLI overrides on top of the result.
func (sp *Spec) BaseSetup() exp.Setup {
	s := exp.Default()
	if sp.Cluster.Nodes > 0 {
		s.Nodes = sp.Cluster.Nodes
	}
	if sp.Cluster.Scale > 0 {
		s.Scale = sp.Cluster.Scale
	}
	if sp.Cluster.Seed != 0 {
		s.Seed = sp.Cluster.Seed
	}
	if sp.Cluster.Disk == "ssd" {
		s = s.WithSSD()
	}
	return s
}

// Compiled is a scenario bound to a concrete setup, ready to run. The
// compile step resolves every name — workloads, policies, schedulers,
// chaos clauses, arrival processes — into the same constructs the
// hand-coded experiments build, so the run that follows is byte-identical
// to its Go equivalent at the same setup.
type Compiled struct {
	Spec  *Spec
	Setup exp.Setup
	run   func() (fmt.Stringer, error)
}

// Compile binds the spec to a setup. Spec conf overrides are folded into
// the setup's registry without displacing values already set there, so CLI
// -conf flags win over the spec's conf block.
func (sp *Spec) Compile(s exp.Setup) (*Compiled, error) {
	if sp.Version != Version {
		return nil, fmt.Errorf("scenario %s: unsupported spec version %d (this build supports version %d)",
			sp.Name, sp.Version, Version)
	}
	if len(sp.Conf) > 0 {
		reg := s.Config
		if reg == nil {
			reg = conf.New()
		}
		for _, k := range sortedConfKeys(sp.Conf) {
			if reg.IsSet(k) {
				continue
			}
			if err := reg.Set(k, sp.Conf[k]); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
			}
		}
		s.Config = reg
	}
	c := &Compiled{Spec: sp, Setup: s}
	var err error
	switch sp.Kind {
	case KindSingle:
		err = c.compileSingle()
	case KindChaosMatrix:
		err = c.compileChaosMatrix()
	case KindTenantMatrix:
		err = c.compileTenantMatrix()
	case KindArrivalMatrix:
		err = c.compileArrivalMatrix()
	default:
		err = fmt.Errorf("unknown kind %q", sp.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
	}
	return c, nil
}

// Run executes the compiled scenario and returns its printable result.
// Matrix kinds return the same result types the Go experiments return
// (implementing exp.Tabular); the single kind returns a *SingleResult.
func (c *Compiled) Run() (fmt.Stringer, error) {
	return c.run()
}

func (c *Compiled) workloadConfig() workloads.Config {
	return workloads.Config{Nodes: c.Setup.Nodes, Scale: c.Setup.Scale}
}

// Check is one expect-assertion verdict of a single run.
type Check struct {
	// Name is the expect-assertion key ("max_runtime_sec", ...) — the
	// metric being asserted.
	Name   string
	OK     bool
	Detail string
	// Observed and Threshold are the structured form of the comparison:
	// the measured value and the spec's bound, in the assertion's own
	// unit (seconds, executors, GiB).
	Observed  float64
	Threshold float64
}

// SingleResult is a single scenario run: the engine report plus the
// expect-assertion verdicts.
type SingleResult struct {
	Scenario string
	Report   *engine.JobReport
	Checks   []Check
}

// Failures lists the failed assertions (empty on a passing run), naming
// for each the metric, the observed value, and the threshold it broke.
func (r *SingleResult) Failures() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, fmt.Sprintf("assertion %s failed: observed %g, threshold %g (%s)",
				c.Name, c.Observed, c.Threshold, c.Detail))
		}
	}
	return out
}

func (r *SingleResult) String() string {
	s := r.Report.String()
	for _, c := range r.Checks {
		verdict := "pass"
		if !c.OK {
			verdict = "FAIL"
		}
		s += fmt.Sprintf("  expect %s: %s (%s)\n", c.Name, verdict, c.Detail)
	}
	return s
}

func (c *Compiled) compileSingle() error {
	sp := c.Spec
	w, err := workloads.ByName(sp.Workload, c.workloadConfig())
	if err != nil {
		return err
	}
	pol, err := exp.PolicyByName(sp.Policy)
	if err != nil {
		return err
	}
	s := c.Setup
	if sp.Chaos != "" {
		gen, err := parseScheduleSpec(sp.Chaos)
		if err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		// Single-run clauses are absolute-time (Parse enforces it), so the
		// quiet runtime the generator receives is irrelevant.
		s = s.WithFaults(gen(0, s.Seed))
	}
	c.run = func() (fmt.Stringer, error) {
		rep, err := s.Run(w, pol, nil)
		if err != nil {
			return nil, err
		}
		res := &SingleResult{Scenario: sp.Name, Report: rep}
		if e := sp.Expect; e != nil {
			if e.MaxRuntimeSec > 0 {
				sec := rep.Runtime.Seconds()
				res.Checks = append(res.Checks, Check{
					Name: "max_runtime_sec", OK: sec <= e.MaxRuntimeSec,
					Detail:   fmt.Sprintf("runtime %.1fs, limit %.1fs", sec, e.MaxRuntimeSec),
					Observed: sec, Threshold: e.MaxRuntimeSec,
				})
			}
			if e.MaxLostExecutors != nil {
				res.Checks = append(res.Checks, Check{
					Name: "max_lost_executors", OK: rep.LostExecutors <= *e.MaxLostExecutors,
					Detail:   fmt.Sprintf("lost %d, limit %d", rep.LostExecutors, *e.MaxLostExecutors),
					Observed: float64(rep.LostExecutors), Threshold: float64(*e.MaxLostExecutors),
				})
			}
			if e.MinRecoveredGiB > 0 {
				got := workloads.GiB(rep.RecoveredBytes)
				res.Checks = append(res.Checks, Check{
					Name: "min_recovered_gib", OK: got >= e.MinRecoveredGiB,
					Detail:   fmt.Sprintf("recovered %.2f GiB, floor %.2f GiB", got, e.MinRecoveredGiB),
					Observed: got, Threshold: e.MinRecoveredGiB,
				})
			}
		}
		// A setup carrying an auditor folds expect/SLO breaches into the
		// same violation stream as the structural invariants, so the
		// chaos hunter treats both uniformly.
		if fl, ok := s.Audit.(interface{ Flag(rule, detail string) }); ok {
			for _, ch := range res.Checks {
				if !ch.OK {
					fl.Flag("expect:"+ch.Name, ch.Detail)
				}
			}
		}
		return res, nil
	}
	return nil
}

func (c *Compiled) compileChaosMatrix() error {
	sp := c.Spec
	w, err := workloads.ByName(sp.Workload, c.workloadConfig())
	if err != nil {
		return err
	}
	policies, err := c.policies(sp.Policies)
	if err != nil {
		return err
	}
	gens := make([]scheduleGen, len(sp.Schedules))
	for i, s := range sp.Schedules {
		if gens[i], err = parseScheduleSpec(s); err != nil {
			return fmt.Errorf("schedules[%d]: %w", i, err)
		}
	}
	s := c.Setup
	seed := s.Seed
	schedules := func(quiet time.Duration) []*chaos.Plan {
		plans := make([]*chaos.Plan, len(gens))
		for i, gen := range gens {
			plans[i] = gen(quiet, seed)
		}
		return plans
	}
	report := sp.Report
	c.run = func() (fmt.Stringer, error) {
		cells, err := exp.Runner{Setup: s, Label: sp.Name}.ChaosMatrix(w, policies, schedules)
		if err != nil {
			return nil, err
		}
		if report == "grayfail" {
			return exp.NewGrayFailResult(cells), nil
		}
		return exp.NewFaultsResult(cells), nil
	}
	return nil
}

func (c *Compiled) compileTenantMatrix() error {
	sp := c.Spec
	cfg := c.workloadConfig()
	// Resolve every workload name up front; Make closures then rebuild
	// fresh specs per run, as the hand-coded mixes do.
	mixes := make([]exp.Mix, len(sp.Mixes))
	for i, m := range sp.Mixes {
		names := m.Workloads
		for _, name := range names {
			if _, err := workloads.ByName(name, cfg); err != nil {
				return fmt.Errorf("mix %s: %w", m.Name, err)
			}
		}
		mixes[i] = exp.Mix{Name: m.Name, Make: func() []*workloads.Spec {
			ws := make([]*workloads.Spec, len(names))
			for j, name := range names {
				ws[j], _ = workloads.ByName(name, cfg)
			}
			return ws
		}}
	}
	scheds := make([]engine.InterJobPolicy, len(sp.Schedulers))
	for i, name := range sp.Schedulers {
		var err error
		if scheds[i], err = exp.SchedulerByName(name); err != nil {
			return err
		}
	}
	policies, err := c.policies(sp.Policies)
	if err != nil {
		return err
	}
	s := c.Setup
	c.run = func() (fmt.Stringer, error) {
		cells, err := exp.Runner{Setup: s, Label: sp.Name}.TenantMatrix(mixes, scheds, policies)
		if err != nil {
			return nil, err
		}
		return exp.NewMultiTenantResult(cells), nil
	}
	return nil
}

func (c *Compiled) compileArrivalMatrix() error {
	sp := c.Spec
	m := sp.Arrival
	if m == nil {
		return fmt.Errorf("arrival-matrix spec has no arrival block")
	}
	s := c.Setup
	n, perNode, err := parseCapacity(m.Capacity)
	if err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	capacity := n
	if perNode {
		capacity = n * s.Nodes
	}
	small := (capacity + 2) / 3
	if small < 2 {
		small = 2
	}

	em := exp.ArrivalMatrix{
		Capacity:  capacity,
		Horizon:   m.Horizon,
		MaxJobs:   exp.ScaleCount(m.MaxJobs, s.Scale, max(m.MinJobs, 1)),
		SLOFactor: m.SLOFactor,
		Baseline:  m.Baseline,
	}
	for _, t := range m.Tenants {
		em.Tenants = append(em.Tenants, exp.ArrivalTenant{
			Class:  arrival.Class{Name: t.Name, Weight: t.Weight, Priority: t.Priority},
			Blocks: exp.ScaleCount(t.Blocks, s.Scale, max(t.MinBlocks, 1)),
		})
	}
	for _, p := range m.Arrivals {
		proc, err := buildProcess(p)
		if err != nil {
			return err
		}
		em.Scenarios = append(em.Scenarios, exp.ArrivalScenario{Name: p.Name, Proc: proc})
	}
	for _, cfgSpec := range m.Configs {
		cfg, err := buildProvision(cfgSpec, capacity, small)
		if err != nil {
			return err
		}
		em.Configs = append(em.Configs, cfg)
	}
	c.run = func() (fmt.Stringer, error) {
		return exp.Runner{Setup: s, Label: sp.Name}.ArrivalMatrix(em)
	}
	return nil
}

func buildProcess(p ArrivalProcSpec) (arrival.Process, error) {
	switch p.Process {
	case "poisson":
		return arrival.Poisson{RatePerSec: p.Rate}, nil
	case "bursty":
		return arrival.Bursty{OnRate: p.OnRate, OffRate: p.OffRate, On: p.On, Off: p.Off}, nil
	case "diurnal":
		return arrival.Diurnal{Period: p.Period, Rates: p.Rates}, nil
	default:
		return nil, fmt.Errorf("arrival %s: unknown process %q", p.Name, p.Process)
	}
}

func buildProvision(c ProvisionSpec, capacity, small int) (exp.ArrivalConfig, error) {
	cfg := exp.ArrivalConfig{Name: c.Name}
	switch c.Initial {
	case "small":
		cfg.Initial = small
	case "capacity":
		cfg.Initial = capacity
	default:
		if _, err := fmt.Sscanf(c.Initial, "%d", &cfg.Initial); err != nil || cfg.Initial <= 0 {
			return cfg, fmt.Errorf("config %s: bad initial fleet %q", c.Name, c.Initial)
		}
	}
	switch c.Policy {
	case "static":
		cfg.Policy = func() autoscale.Policy { return autoscale.Static{} }
	case "reactive":
		cfg.Policy = func() autoscale.Policy { return autoscale.DefaultReactive() }
	case "adaptive":
		alpha, drain, headroom, sample := c.Alpha, c.DrainTarget, c.Headroom, c.MinSamplePeriod
		cfg.Policy = func() autoscale.Policy {
			return &autoscale.Adaptive{
				Alpha:           alpha,
				DrainTarget:     drain,
				Headroom:        headroom,
				MinSamplePeriod: sample,
			}
		}
	default:
		return cfg, fmt.Errorf("config %s: unknown autoscale policy %q", c.Name, c.Policy)
	}
	return cfg, nil
}

func (c *Compiled) policies(names []string) ([]job.Policy, error) {
	out := make([]job.Policy, len(names))
	for i, name := range names {
		var err error
		if out[i], err = exp.PolicyByName(name); err != nil {
			return nil, err
		}
	}
	return out, nil
}
