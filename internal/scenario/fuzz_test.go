package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioSpec drives the parse → validate → re-serialize loop: any
// input must either fail with an error (no panics), or decode to a spec
// whose canonical form re-parses to a deep-equal spec and is a Marshal
// fixpoint. The committed golden scenarios seed the corpus.
func FuzzScenarioSpec(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	for _, path := range paths {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("version: 1\nname: x\nkind: single\nworkload: terasort\npolicy: dynamic\n"))
	f.Add([]byte(`{"version": 1, "name": "x", "kind": "single", "workload": "terasort", "policy": "dynamic"}`))
	f.Add([]byte("version: 2\n"))
	f.Add([]byte("a:\n  - b\n  - c: d\n"))
	f.Add([]byte("s: 'it''s'\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse("fuzz.yaml", data)
		if err != nil {
			return
		}
		out := Marshal(sp)
		sp2, err := Parse("fuzz.yaml", out)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n--- input ---\n%s\n--- marshalled ---\n%s", err, data, out)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("round trip changed the spec\n--- input ---\n%s\n--- marshalled ---\n%s", data, out)
		}
		if again := Marshal(sp2); string(again) != string(out) {
			t.Fatalf("Marshal is not a fixpoint\n--- first ---\n%s\n--- second ---\n%s", out, again)
		}
	})
}
