package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sae/internal/chaos"
)

// scheduleGen builds one chaos plan given the policy's quiet runtime and
// the cluster seed. A nil plan is the quiet schedule.
type scheduleGen func(quiet time.Duration, seed int64) *chaos.Plan

// parseScheduleSpec parses one schedule entry of a chaos matrix (or a
// single run's chaos field). On top of the chaos grammar it accepts
// percentage times — "crash1@45%" lands the crash at 45% of the policy's
// quiet runtime, resolved per policy after the calibration run, exactly as
// the hand-coded experiments compute quiet*45/100. Clause forms:
//
//	quiet | none          no faults
//	crash[N]@T[+R]        fail-stop crash (optional restart after R)
//	slow[N]@TxF           devices degrade to 1/F from T
//	partition[N]@T+D      network drops for [T, T+D)
//	flaky[:RATE]          transient task I/O faults
//	fetch[:RATE]          transient shuffle-fetch failures
//	corrupt[:RATE]        bit-rotten DFS replicas
//	mayhem@T              crash-restart mid-horizon plus low-rate faults
//
// where T, R and D are durations ("45s") or percentages ("45%"). Plans are
// built through the chaos constructors, so plan names — the schedule keys
// in every report — match the Go experiments byte for byte. Multi-clause
// comma specs are passed to chaos.Parse and may not use percentages.
func parseScheduleSpec(s string) (scheduleGen, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "quiet" || s == "none" {
		return func(time.Duration, int64) *chaos.Plan { return nil }, nil
	}
	if strings.ContainsRune(s, ',') {
		if strings.ContainsRune(s, '%') {
			return nil, fmt.Errorf("clause %q: percentage times are only valid in single-clause schedules", s)
		}
		plan, err := chaos.Parse(s)
		if err != nil {
			return nil, err
		}
		return func(time.Duration, int64) *chaos.Plan { return plan }, nil
	}
	switch {
	case strings.HasPrefix(s, "crash"):
		return parseCrashClause(s)
	case strings.HasPrefix(s, "slow"):
		return parseSlowClause(s)
	case strings.HasPrefix(s, "partition"):
		return parsePartitionClause(s)
	case strings.HasPrefix(s, "flaky"):
		return parseRateClause(s, "flaky", 0.05, chaos.Flaky)
	case strings.HasPrefix(s, "fetch"):
		return parseRateClause(s, "fetch", 0.1, chaos.FetchStorm)
	case strings.HasPrefix(s, "corrupt"):
		return parseRateClause(s, "corrupt", 0.01, chaos.Corrupt)
	case strings.HasPrefix(s, "mayhem@"):
		t, err := parsePctDur(s[len("mayhem@"):])
		if err != nil {
			return nil, fmt.Errorf("clause %q: bad horizon: %w", s, err)
		}
		return func(quiet time.Duration, seed int64) *chaos.Plan {
			return chaos.Mayhem(t.resolve(quiet), seed)
		}, nil
	default:
		return nil, fmt.Errorf("unknown chaos clause %q (want quiet, crash[N]@T[+R], slow[N]@TxF, partition[N]@T+D, flaky:R, fetch:R, corrupt:R or mayhem@T)", s)
	}
}

// pctDur is a schedule instant: absolute, or a percentage of the quiet
// runtime.
type pctDur struct {
	pct   int64
	dur   time.Duration
	isPct bool
}

// resolve computes the instant. Percentage math is integer on nanoseconds
// (quiet*pct/100), matching the hand-coded experiments exactly.
func (t pctDur) resolve(quiet time.Duration) time.Duration {
	if t.isPct {
		return quiet * time.Duration(t.pct) / 100
	}
	return t.dur
}

func parsePctDur(s string) (pctDur, error) {
	if strings.HasSuffix(s, "%") {
		n, err := strconv.ParseInt(s[:len(s)-1], 10, 64)
		if err != nil || n < 0 {
			return pctDur{}, fmt.Errorf("%q is not a percentage (want e.g. 45%%)", s)
		}
		if n > 100 {
			return pctDur{}, fmt.Errorf("percentage %q is out of range (times are fractions of the quiet runtime; want 0%%-100%%)", s)
		}
		return pctDur{pct: n, isPct: true}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return pctDur{}, fmt.Errorf("%q is not a duration or percentage", s)
	}
	return pctDur{dur: d}, nil
}

// splitExec splits the executor number off a clause head: "crash1@…" →
// (1, "…"). The executor defaults to 1; a ':' separator is accepted as in
// the chaos grammar ("slow:1@…").
func splitExec(s, head string) (int, string, error) {
	rest := strings.TrimPrefix(s, head)
	rest = strings.TrimPrefix(rest, ":")
	at := strings.IndexByte(rest, '@')
	if at < 0 {
		return 0, "", fmt.Errorf("clause %q: missing @T", s)
	}
	exec := 1
	if at > 0 {
		n, err := strconv.Atoi(rest[:at])
		if err != nil || n < 0 {
			return 0, "", fmt.Errorf("clause %q: bad executor %q", s, rest[:at])
		}
		exec = n
	}
	return exec, rest[at+1:], nil
}

func parseCrashClause(s string) (scheduleGen, error) {
	exec, times, err := splitExec(s, "crash")
	if err != nil {
		return nil, err
	}
	if plus := strings.IndexByte(times, '+'); plus >= 0 {
		at, err := parsePctDur(times[:plus])
		if err != nil {
			return nil, fmt.Errorf("clause %q: bad crash time: %w", s, err)
		}
		after, err := parsePctDur(times[plus+1:])
		if err != nil {
			return nil, fmt.Errorf("clause %q: bad restart delay: %w", s, err)
		}
		return func(quiet time.Duration, _ int64) *chaos.Plan {
			return chaos.CrashRestart(exec, at.resolve(quiet), after.resolve(quiet))
		}, nil
	}
	at, err := parsePctDur(times)
	if err != nil {
		return nil, fmt.Errorf("clause %q: bad crash time: %w", s, err)
	}
	return func(quiet time.Duration, _ int64) *chaos.Plan {
		return chaos.CrashAt(exec, at.resolve(quiet))
	}, nil
}

func parseSlowClause(s string) (scheduleGen, error) {
	exec, times, err := splitExec(s, "slow")
	if err != nil {
		return nil, err
	}
	factor := 2.0
	if x := strings.IndexByte(times, 'x'); x >= 0 {
		f, err := strconv.ParseFloat(times[x+1:], 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("clause %q: bad factor %q", s, times[x+1:])
		}
		factor = f
		times = times[:x]
	}
	at, err := parsePctDur(times)
	if err != nil {
		return nil, fmt.Errorf("clause %q: bad time: %w", s, err)
	}
	return func(quiet time.Duration, _ int64) *chaos.Plan {
		return chaos.SlowAt(exec, at.resolve(quiet), factor)
	}, nil
}

func parsePartitionClause(s string) (scheduleGen, error) {
	exec, times, err := splitExec(s, "partition")
	if err != nil {
		return nil, err
	}
	plus := strings.IndexByte(times, '+')
	if plus < 0 {
		return nil, fmt.Errorf("clause %q: want partition[N]@T+D", s)
	}
	at, err := parsePctDur(times[:plus])
	if err != nil {
		return nil, fmt.Errorf("clause %q: bad start time: %w", s, err)
	}
	dur, err := parsePctDur(times[plus+1:])
	if err != nil {
		return nil, fmt.Errorf("clause %q: bad duration: %w", s, err)
	}
	return func(quiet time.Duration, _ int64) *chaos.Plan {
		return chaos.PartitionAt(exec, at.resolve(quiet), dur.resolve(quiet))
	}, nil
}

func parseRateClause(s, name string, def float64, mk func(rate float64, seed int64) *chaos.Plan) (scheduleGen, error) {
	rest := strings.TrimPrefix(s, name)
	rate := def
	if rest != "" {
		if !strings.HasPrefix(rest, ":") {
			return nil, fmt.Errorf("unknown chaos clause %q (want %s[:RATE])", s, name)
		}
		f, err := strconv.ParseFloat(rest[1:], 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("clause %q: bad rate %q (want a fraction in (0, 1])", s, rest[1:])
		}
		rate = f
	}
	return func(_ time.Duration, seed int64) *chaos.Plan {
		return mk(rate, seed)
	}, nil
}
