package scenario

import (
	"strconv"
	"strings"
	"time"
)

// Marshal renders the spec as canonical YAML: fixed field order, sorted
// conf keys, zero-valued optional fields omitted. Parse(Marshal(sp))
// yields a spec reflect.DeepEqual to sp — the property FuzzScenarioSpec
// drives — so specs survive load → edit → save round trips losslessly.
func Marshal(sp *Spec) []byte {
	var b strings.Builder
	w := &yw{b: &b}
	w.kv(0, "version", strconv.Itoa(sp.Version))
	w.str(0, "name", sp.Name)
	if sp.Description != "" {
		w.str(0, "description", sp.Description)
	}
	w.str(0, "kind", sp.Kind)
	marshalCluster(w, sp.Cluster)
	if len(sp.Conf) > 0 {
		w.key(0, "conf")
		for _, k := range sortedConfKeys(sp.Conf) {
			w.str(1, k, sp.Conf[k])
		}
	}
	switch sp.Kind {
	case KindSingle:
		w.str(0, "workload", sp.Workload)
		w.str(0, "policy", sp.Policy)
		if sp.Chaos != "" {
			w.str(0, "chaos", sp.Chaos)
		}
		marshalExpect(w, sp.Expect)
	case KindChaosMatrix:
		w.str(0, "workload", sp.Workload)
		w.strSeq(0, "policies", sp.Policies)
		w.strSeq(0, "schedules", sp.Schedules)
		w.str(0, "report", sp.Report)
	case KindTenantMatrix:
		w.key(0, "mixes")
		for _, m := range sp.Mixes {
			w.item(1)
			w.str(2, "name", m.Name)
			w.strSeq(2, "workloads", m.Workloads)
		}
		w.strSeq(0, "schedulers", sp.Schedulers)
		w.strSeq(0, "policies", sp.Policies)
	case KindArrivalMatrix:
		marshalArrival(w, sp.Arrival)
	}
	return []byte(b.String())
}

func marshalCluster(w *yw, c ClusterSpec) {
	if c == (ClusterSpec{}) {
		return
	}
	w.key(0, "cluster")
	if c.Nodes != 0 {
		w.kv(1, "nodes", strconv.Itoa(c.Nodes))
	}
	if c.Scale != 0 {
		w.kv(1, "scale", ftog(c.Scale))
	}
	if c.Seed != 0 {
		w.kv(1, "seed", strconv.FormatInt(c.Seed, 10))
	}
	if c.Disk != "" {
		w.str(1, "disk", c.Disk)
	}
}

func marshalExpect(w *yw, e *ExpectSpec) {
	if e == nil {
		return
	}
	w.key(0, "expect")
	if e.MaxRuntimeSec != 0 {
		w.kv(1, "max_runtime_sec", ftog(e.MaxRuntimeSec))
	}
	if e.MaxLostExecutors != nil {
		w.kv(1, "max_lost_executors", strconv.Itoa(*e.MaxLostExecutors))
	}
	if e.MinRecoveredGiB != 0 {
		w.kv(1, "min_recovered_gib", ftog(e.MinRecoveredGiB))
	}
}

func marshalArrival(w *yw, m *ArrivalMatrixSpec) {
	if m == nil {
		return
	}
	w.key(0, "arrival")
	w.key(1, "tenants")
	for _, t := range m.Tenants {
		w.item(2)
		w.str(3, "name", t.Name)
		w.kv(3, "weight", ftog(t.Weight))
		if t.Priority != 0 {
			w.kv(3, "priority", strconv.Itoa(t.Priority))
		}
		w.kv(3, "blocks", strconv.Itoa(t.Blocks))
		if t.MinBlocks != 0 {
			w.kv(3, "min_blocks", strconv.Itoa(t.MinBlocks))
		}
	}
	w.key(1, "arrivals")
	for _, p := range m.Arrivals {
		w.item(2)
		w.str(3, "name", p.Name)
		w.str(3, "process", p.Process)
		switch p.Process {
		case "poisson":
			w.kv(3, "rate", ftog(p.Rate))
		case "bursty":
			w.kv(3, "on_rate", ftog(p.OnRate))
			if p.OffRate != 0 {
				w.kv(3, "off_rate", ftog(p.OffRate))
			}
			w.kv(3, "on", dtos(p.On))
			w.kv(3, "off", dtos(p.Off))
		case "diurnal":
			w.kv(3, "period", dtos(p.Period))
			rates := make([]string, len(p.Rates))
			for i, r := range p.Rates {
				rates[i] = ftog(r)
			}
			w.flowSeq(3, "rates", rates)
		}
	}
	w.key(1, "configs")
	for _, c := range m.Configs {
		w.item(2)
		w.str(3, "name", c.Name)
		w.str(3, "policy", c.Policy)
		w.str(3, "initial", c.Initial)
		if c.Alpha != 0 {
			w.kv(3, "alpha", ftog(c.Alpha))
		}
		if c.DrainTarget != 0 {
			w.kv(3, "drain_target", dtos(c.DrainTarget))
		}
		if c.Headroom != 0 {
			w.kv(3, "headroom", ftog(c.Headroom))
		}
		if c.MinSamplePeriod != 0 {
			w.kv(3, "min_sample_period", dtos(c.MinSamplePeriod))
		}
	}
	w.str(1, "capacity", m.Capacity)
	w.kv(1, "horizon", dtos(m.Horizon))
	w.kv(1, "max_jobs", strconv.Itoa(m.MaxJobs))
	if m.MinJobs != 0 {
		w.kv(1, "min_jobs", strconv.Itoa(m.MinJobs))
	}
	w.key(1, "slo")
	if m.SLOFactor != 0 {
		w.kv(2, "factor", ftog(m.SLOFactor))
	}
	w.str(2, "baseline", m.Baseline)
}

// yw is the canonical YAML writer. Sequence items are emitted as "- " with
// the first mapping entry inline, matching the parser's dash handling.
type yw struct {
	b *strings.Builder
	// pendingItem makes the next kv/str land on a "- " dash line.
	pendingItem int
}

func (w *yw) indent(level int) {
	if w.pendingItem > 0 {
		// The dash occupies the two columns before the item's inner
		// indent, so continuation fields (one level deeper) line up
		// with the field riding the dash line.
		w.b.WriteString(strings.Repeat("  ", w.pendingItem))
		w.b.WriteString("- ")
		w.pendingItem = 0
		return
	}
	w.b.WriteString(strings.Repeat("  ", level))
}

// key opens a nested block ("cluster:").
func (w *yw) key(level int, key string) {
	w.indent(level)
	w.b.WriteString(key)
	w.b.WriteString(":\n")
}

// item starts a sequence item whose first field rides the dash line.
func (w *yw) item(level int) { w.pendingItem = level }

// kv writes "key: value" with the value already rendered.
func (w *yw) kv(level int, key, value string) {
	w.indent(level)
	w.b.WriteString(key)
	w.b.WriteString(": ")
	w.b.WriteString(value)
	w.b.WriteByte('\n')
}

// str writes a string value, quoting when the plain form would not parse
// back verbatim.
func (w *yw) str(level int, key, value string) {
	w.kv(level, key, quoteScalar(value, false))
}

// strSeq writes a flow sequence ("[a, b]") of strings.
func (w *yw) strSeq(level int, key string, values []string) {
	quoted := make([]string, len(values))
	for i, v := range values {
		quoted[i] = quoteScalar(v, true)
	}
	w.flowSeq(level, key, quoted)
}

func (w *yw) flowSeq(level int, key string, rendered []string) {
	w.kv(level, key, "["+strings.Join(rendered, ", ")+"]")
}

// quoteScalar renders a string scalar. Plain wherever the parser would
// read it back verbatim; single-quoted (with ” doubling) otherwise.
// inFlow additionally guards the flow-sequence delimiters.
func quoteScalar(s string, inFlow bool) string {
	if plainSafe(s, inFlow) {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func plainSafe(s string, inFlow bool) bool {
	if s == "" {
		return false
	}
	if strings.ContainsAny(s, "'\"#\t\n") {
		return false
	}
	if s[0] == ' ' || s[len(s)-1] == ' ' || s[0] == '[' || s[0] == '{' || s[0] == '&' || s[0] == '*' {
		return false
	}
	if inFlow && strings.ContainsAny(s, ",[]{}") {
		return false
	}
	return true
}

func ftog(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func dtos(d time.Duration) string { return d.String() }
