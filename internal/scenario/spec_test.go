package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// parseErr parses a document expected to fail and returns the error text.
func parseErr(t *testing.T, doc string) string {
	t.Helper()
	_, err := Parse("spec.yaml", []byte(doc))
	if err == nil {
		t.Fatalf("Parse accepted invalid spec:\n%s", doc)
	}
	return err.Error()
}

// requireErr asserts the error is positional (names the file and a line)
// and mentions every given fragment.
func requireErr(t *testing.T, msg string, wantLine string, fragments ...string) {
	t.Helper()
	if !strings.HasPrefix(msg, "spec.yaml:"+wantLine+":") {
		t.Errorf("error %q does not carry position spec.yaml:%s:", msg, wantLine)
	}
	for _, f := range fragments {
		if !strings.Contains(msg, f) {
			t.Errorf("error %q does not mention %q", msg, f)
		}
	}
}

const validSingle = `version: 1
name: demo
kind: single
workload: terasort
policy: dynamic
`

func TestParseValidSingle(t *testing.T) {
	sp, err := Parse("spec.yaml", []byte(validSingle))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != KindSingle || sp.Workload != "terasort" || sp.Policy != "dynamic" {
		t.Errorf("bad decode: %+v", sp)
	}
}

func TestUnsupportedVersion(t *testing.T) {
	msg := parseErr(t, "version: 2\nname: x\nkind: single\nworkload: terasort\npolicy: dynamic\n")
	requireErr(t, msg, "1", "unsupported spec version 2", "supports version 1")
}

func TestMissingVersion(t *testing.T) {
	msg := parseErr(t, "name: x\nkind: single\nworkload: terasort\npolicy: dynamic\n")
	if !strings.Contains(msg, `missing required field "version"`) {
		t.Errorf("error %q does not name the missing version field", msg)
	}
}

func TestUnknownField(t *testing.T) {
	msg := parseErr(t, validSingle+"polcy: dynamic\n")
	requireErr(t, msg, "6", `unknown field "polcy"`)
}

func TestUnknownConfKey(t *testing.T) {
	doc := `version: 1
name: demo
kind: single
conf:
  shuffle.io.maxRetries: 6
  shuffle.io.maxRetreis: 6
workload: terasort
policy: dynamic
`
	msg := parseErr(t, doc)
	requireErr(t, msg, "6", `unknown parameter "shuffle.io.maxRetreis"`)
}

func TestMalformedChaosClause(t *testing.T) {
	doc := `version: 1
name: demo
kind: chaos-matrix
workload: terasort
policies: [default]
schedules:
  - quiet
  - crash1@45%%
report: faults
`
	msg := parseErr(t, doc)
	requireErr(t, msg, "8", "schedules[1]", "crash1@45%%")
}

func TestUnknownChaosClause(t *testing.T) {
	doc := `version: 1
name: demo
kind: chaos-matrix
workload: terasort
policies: [default]
schedules: [explode]
report: faults
`
	msg := parseErr(t, doc)
	requireErr(t, msg, "6", "schedules[0]", "unknown chaos clause")
}

func TestOverlappingTenantClasses(t *testing.T) {
	doc := `version: 1
name: demo
kind: arrival-matrix
arrival:
  tenants:
    - name: batch
      weight: 3
      blocks: 8
    - name: batch
      weight: 1
      blocks: 8
  arrivals:
    - name: poisson
      process: poisson
      rate: 0.1
  configs:
    - name: static
      policy: static
      initial: capacity
  capacity: 2x
  horizon: 6m
  max_jobs: 10
  slo:
    baseline: static
`
	msg := parseErr(t, doc)
	requireErr(t, msg, "9", "duplicate tenant class", "must not overlap")
}

func TestNonPositiveTenantWeight(t *testing.T) {
	doc := `version: 1
name: demo
kind: arrival-matrix
arrival:
  tenants:
    - name: batch
      weight: 0
      blocks: 8
  arrivals:
    - name: poisson
      process: poisson
      rate: 0.1
  configs:
    - name: static
      policy: static
      initial: capacity
  capacity: 2x
  horizon: 6m
  max_jobs: 10
  slo:
    baseline: static
`
	msg := parseErr(t, doc)
	requireErr(t, msg, "7", `field "weight" must be positive`)
}

func TestUnknownPolicy(t *testing.T) {
	doc := `version: 1
name: demo
kind: chaos-matrix
workload: terasort
policies:
  - default
  - statik
schedules: [quiet]
report: faults
`
	msg := parseErr(t, doc)
	requireErr(t, msg, "7", "policies[1]", `unknown policy "statik"`)
}

func TestUnknownBaseline(t *testing.T) {
	doc := `version: 1
name: demo
kind: arrival-matrix
arrival:
  tenants:
    - name: batch
      weight: 1
      blocks: 8
  arrivals:
    - name: poisson
      process: poisson
      rate: 0.1
  configs:
    - name: static
      policy: static
      initial: capacity
  capacity: 2x
  horizon: 6m
  max_jobs: 10
  slo:
    baseline: static-large
`
	msg := parseErr(t, doc)
	requireErr(t, msg, "21", `config "static-large" is not in the config list`)
}

func TestDuplicateKey(t *testing.T) {
	msg := parseErr(t, "version: 1\nversion: 1\n")
	requireErr(t, msg, "2", `duplicate key "version"`)
}

func TestTabsRejected(t *testing.T) {
	msg := parseErr(t, "version: 1\n\tname: x\n")
	requireErr(t, msg, "2", "tabs are not allowed")
}

// TestGoldenRoundTrip re-serializes every committed scenario and checks
// Parse(Marshal(sp)) is a deep-equal fixpoint.
func TestGoldenRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden scenarios found: %v", err)
	}
	for _, path := range paths {
		sp, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out := Marshal(sp)
		sp2, err := Parse(path+" (marshalled)", out)
		if err != nil {
			t.Fatalf("%s: re-parse failed: %v\n%s", path, err, out)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Errorf("%s: round trip changed the spec\n--- marshalled ---\n%s", path, out)
		}
		if again := Marshal(sp2); string(again) != string(out) {
			t.Errorf("%s: Marshal is not a fixpoint", path)
		}
	}
}

// TestJSONSpec checks a JSON document decodes to the same spec as its
// YAML equivalent.
func TestJSONSpec(t *testing.T) {
	jsonDoc := `{
  "version": 1,
  "name": "demo",
  "kind": "single",
  "workload": "terasort",
  "policy": "dynamic",
  "expect": {"max_runtime_sec": 600}
}`
	yamlDoc := `version: 1
name: demo
kind: single
workload: terasort
policy: dynamic
expect:
  max_runtime_sec: 600
`
	js, err := Parse("spec.json", []byte(jsonDoc))
	if err != nil {
		t.Fatal(err)
	}
	ys, err := Parse("spec.yaml", []byte(yamlDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(js, ys) {
		t.Errorf("JSON and YAML decode differ:\n%+v\n%+v", js, ys)
	}
}

func TestJSONUnknownField(t *testing.T) {
	_, err := Parse("spec.json", []byte(`{"version": 1, "name": "x", "kind": "single", "workload": "terasort", "policy": "dynamic", "polcy": "x"}`))
	if err == nil || !strings.Contains(err.Error(), `unknown field "polcy"`) {
		t.Errorf("JSON unknown field not rejected: %v", err)
	}
}

// TestGoldenDescriptions makes sure every committed scenario carries the
// one-line description sae-exp -list shows.
func TestGoldenDescriptions(t *testing.T) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	for _, path := range paths {
		sp, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if sp.Description == "" {
			t.Errorf("%s: missing description", path)
		}
		if sp.Name != strings.TrimSuffix(filepath.Base(path), ".yaml") {
			t.Errorf("%s: spec name %q does not match the file name", path, sp.Name)
		}
	}
}

// TestQuotedScalars exercises the quoting corners of the YAML subset.
func TestQuotedScalars(t *testing.T) {
	doc := "version: 1\nname: demo\ndescription: 'it''s #1: a \"test\"'\nkind: single\nworkload: terasort\npolicy: dynamic\n"
	sp, err := Parse("spec.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := `it's #1: a "test"`
	if sp.Description != want {
		t.Errorf("description %q, want %q", sp.Description, want)
	}
	out := Marshal(sp)
	sp2, err := Parse("spec.yaml", out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if sp2.Description != want {
		t.Errorf("round-tripped description %q, want %q", sp2.Description, want)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(os.TempDir(), "definitely-missing.yaml")); err == nil {
		t.Error("Load of a missing file succeeded")
	}
}

func TestPercentageOutOfRange(t *testing.T) {
	doc := `version: 1
name: demo
kind: chaos-matrix
workload: terasort
policies: [default]
schedules:
  - crash1@150%
report: faults
`
	msg := parseErr(t, doc)
	requireErr(t, msg, "7", "schedules[0]", `"150%"`, "out of range", "0%-100%")
}

func TestNonPositiveSlowFactor(t *testing.T) {
	for _, factor := range []string{"0", "-1.5"} {
		doc := `version: 1
name: demo
kind: chaos-matrix
workload: terasort
policies: [default]
schedules:
  - slow1@30%x` + factor + `
report: faults
`
		msg := parseErr(t, doc)
		requireErr(t, msg, "7", "schedules[0]", "bad factor", `"`+factor+`"`)
	}
}
