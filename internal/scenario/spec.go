package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sae/internal/conf"
	"sae/internal/exp"
	"sae/internal/workloads"
)

// Version is the spec schema version this build reads and writes.
const Version = 1

// Spec kinds. Each kind selects one of the exp.Runner matrix primitives
// (or a single engine run) and fixes which fields the spec may carry.
const (
	KindSingle        = "single"
	KindChaosMatrix   = "chaos-matrix"
	KindTenantMatrix  = "tenant-matrix"
	KindArrivalMatrix = "arrival-matrix"
)

// Spec is one declarative scenario: the environment, the load, and the
// question, as data. A Spec is pure data — parsing attaches no positions,
// so Parse(Marshal(sp)) round-trips to a reflect.DeepEqual spec.
type Spec struct {
	// Version pins the schema; unknown versions are rejected.
	Version int
	// Name labels the scenario in errors, listings and reports.
	Name string
	// Description is the one-line summary `sae-exp -list` shows.
	Description string
	// Kind selects the execution shape (see the Kind constants).
	Kind string
	// Cluster shapes the simulated environment; zero fields inherit the
	// paper defaults (4 nodes, scale 1, seed 1, HDD).
	Cluster ClusterSpec
	// Conf holds configuration overrides, validated against the catalogue.
	Conf map[string]string

	// Workload names the job for single and chaos-matrix kinds.
	Workload string
	// Policy is the sizing policy of a single run.
	Policy string
	// Chaos is a single run's absolute-time chaos spec (chaos.Parse grammar).
	Chaos string
	// Expect holds a single run's output assertions.
	Expect *ExpectSpec

	// Policies and Schedules span the chaos matrix; Report selects its
	// result preset ("faults" or "grayfail").
	Policies  []string
	Schedules []string
	Report    string

	// Mixes and Schedulers span the tenant matrix (with Policies).
	Mixes      []MixSpec
	Schedulers []string

	// Arrival spans the arrival matrix.
	Arrival *ArrivalMatrixSpec
}

// ClusterSpec shapes the simulated cluster. Zero values inherit defaults.
type ClusterSpec struct {
	Nodes int
	Scale float64
	Seed  int64
	// Disk is "hdd" (default) or "ssd".
	Disk string
}

// ExpectSpec is a single run's assertion block; nil pointers are unchecked.
type ExpectSpec struct {
	// MaxRuntimeSec bounds the job runtime (0 = unchecked).
	MaxRuntimeSec float64
	// MaxLostExecutors bounds executor losses (nil = unchecked; 0 asserts
	// a loss-free run).
	MaxLostExecutors *int
	// MinRecoveredGiB asserts the recovery machinery actually engaged.
	MinRecoveredGiB float64
}

// MixSpec is one named workload mix of a tenant matrix.
type MixSpec struct {
	Name      string
	Workloads []string
}

// ArrivalMatrixSpec spans the open-loop elasticity comparison.
type ArrivalMatrixSpec struct {
	Tenants  []TenantSpec
	Arrivals []ArrivalProcSpec
	Configs  []ProvisionSpec
	// Capacity is the physical fleet size: an integer, or "Nx" for N times
	// the cluster node count.
	Capacity string
	// Horizon bounds each generated schedule.
	Horizon time.Duration
	// MaxJobs caps arrivals at cluster scale 1; it scales with the cluster
	// scale, never below MinJobs.
	MaxJobs int
	MinJobs int
	// SLOFactor and Baseline define the p99 verdicts (0 selects 1.5).
	SLOFactor float64
	Baseline  string
}

// TenantSpec is one tenant class with its workload shape. Blocks is the
// per-job input in 64 MiB blocks at cluster scale 1; it scales with the
// cluster scale, never below MinBlocks.
type TenantSpec struct {
	Name      string
	Weight    float64
	Priority  int
	Blocks    int
	MinBlocks int
}

// ArrivalProcSpec is one named arrival process.
type ArrivalProcSpec struct {
	Name string
	// Process is "poisson", "bursty" or "diurnal".
	Process string
	// Rate is the Poisson rate (jobs/sec).
	Rate float64
	// OnRate/OffRate/On/Off shape the bursty process.
	OnRate  float64
	OffRate float64
	On      time.Duration
	Off     time.Duration
	// Period/Rates shape the diurnal process.
	Period time.Duration
	Rates  []float64
}

// ProvisionSpec is one provisioning configuration.
type ProvisionSpec struct {
	Name string
	// Policy is "static", "reactive" or "adaptive".
	Policy string
	// Initial is the starting fleet: an integer, "capacity", or "small"
	// (a third of capacity, at least 2).
	Initial string
	// Adaptive planner knobs (zero = the planner's zero value, matching
	// the Go experiment's explicit struct literal).
	Alpha           float64
	DrainTarget     time.Duration
	Headroom        float64
	MinSamplePeriod time.Duration
}

// Load reads and parses the scenario file at path.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

// Parse decodes and validates one scenario document. name prefixes every
// error ("faults.yaml:12: ..."); errors are positional down to the field.
// YAML is the native syntax; a document whose first byte is '{' is decoded
// as JSON (with field-path rather than line positions).
func Parse(name string, data []byte) (*Spec, error) {
	var root *node
	var err error
	if isJSON(data) {
		root, err = parseJSON(data)
	} else {
		root, err = parseYAML(data)
	}
	if err != nil {
		return nil, posErr(name, err)
	}
	d := &dec{file: name}
	sp, err := d.spec(root)
	if err != nil {
		return nil, err
	}
	return sp, nil
}

// posErr prefixes a parser error with the file name, folding the parser's
// "line N: msg" form into the decoder's "file:N: msg" position format.
func posErr(name string, err error) error {
	msg := err.Error()
	if rest, ok := strings.CutPrefix(msg, "line "); ok {
		if i := strings.Index(rest, ": "); i > 0 {
			if _, aerr := strconv.Atoi(rest[:i]); aerr == nil {
				return fmt.Errorf("%s:%s:%s", name, rest[:i], rest[i+1:])
			}
		}
	}
	return fmt.Errorf("%s: %s", name, msg)
}

func isJSON(data []byte) bool {
	for _, c := range data {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

// dec decodes a node tree into a Spec, validating as it goes so every
// error points at the offending field.
type dec struct {
	file string
}

func (d *dec) errf(n *node, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if n != nil && n.line > 0 {
		return fmt.Errorf("%s:%d: %s", d.file, n.line, msg)
	}
	return fmt.Errorf("%s: %s", d.file, msg)
}

// fields wraps one mapping node, tracking which keys the decoder consumed
// so leftovers are rejected as unknown fields.
type fields struct {
	d    *dec
	n    *node
	ctx  string
	used map[string]bool
}

func (d *dec) fields(n *node, ctx string) (*fields, error) {
	if n.kind != mappingNode {
		return nil, d.errf(n, "%s must be a mapping, got a %s", ctx, n.kindName())
	}
	return &fields{d: d, n: n, ctx: ctx, used: map[string]bool{}}, nil
}

// finish rejects the first unconsumed key, in declaration order.
func (f *fields) finish() error {
	for _, key := range f.n.keys {
		if !f.used[key] {
			return f.d.errf(f.n.children[key], "unknown field %q in %s", key, f.ctx)
		}
	}
	return nil
}

func (f *fields) get(key string) (*node, bool) {
	n, ok := f.n.children[key]
	if ok {
		f.used[key] = true
	}
	return n, ok
}

func (f *fields) scalar(key string) (*node, bool, error) {
	n, ok := f.get(key)
	if !ok {
		return nil, false, nil
	}
	if n.kind != scalarNode {
		return nil, false, f.d.errf(n, "field %q must be a scalar, got a %s", key, n.kindName())
	}
	return n, true, nil
}

func (f *fields) str(key string) (string, *node, error) {
	n, ok, err := f.scalar(key)
	if err != nil || !ok {
		return "", nil, err
	}
	return n.val, n, nil
}

// reqStr returns a required string field.
func (f *fields) reqStr(key string) (string, *node, error) {
	v, n, err := f.str(key)
	if err != nil {
		return "", nil, err
	}
	if n == nil || v == "" {
		return "", nil, f.d.errf(f.n, "%s: missing required field %q", f.ctx, key)
	}
	return v, n, nil
}

func (f *fields) integer(key string) (int64, *node, error) {
	n, ok, err := f.scalar(key)
	if err != nil || !ok {
		return 0, nil, err
	}
	v, perr := strconv.ParseInt(n.val, 10, 64)
	if perr != nil {
		return 0, nil, f.d.errf(n, "field %q: %q is not an integer", key, n.val)
	}
	return v, n, nil
}

func (f *fields) float(key string) (float64, *node, error) {
	n, ok, err := f.scalar(key)
	if err != nil || !ok {
		return 0, nil, err
	}
	v, perr := strconv.ParseFloat(n.val, 64)
	if perr != nil {
		return 0, nil, f.d.errf(n, "field %q: %q is not a number", key, n.val)
	}
	return v, n, nil
}

func (f *fields) duration(key string) (time.Duration, *node, error) {
	n, ok, err := f.scalar(key)
	if err != nil || !ok {
		return 0, nil, err
	}
	v, perr := time.ParseDuration(n.val)
	if perr != nil {
		return 0, nil, f.d.errf(n, "field %q: %q is not a duration (want e.g. 45s, 6m)", key, n.val)
	}
	return v, n, nil
}

// strings decodes a sequence-of-scalars field.
func (f *fields) strings(key string) ([]string, *node, error) {
	n, ok := f.get(key)
	if !ok {
		return nil, nil, nil
	}
	if n.kind != sequenceNode {
		return nil, nil, f.d.errf(n, "field %q must be a sequence, got a %s", key, n.kindName())
	}
	var out []string
	for _, item := range n.seq {
		if item.kind != scalarNode {
			return nil, nil, f.d.errf(item, "field %q items must be scalars, got a %s", key, item.kindName())
		}
		out = append(out, item.val)
	}
	return out, n, nil
}

func (f *fields) sequence(key string) ([]*node, *node, error) {
	n, ok := f.get(key)
	if !ok {
		return nil, nil, nil
	}
	if n.kind != sequenceNode {
		return nil, nil, f.d.errf(n, "field %q must be a sequence, got a %s", key, n.kindName())
	}
	return n.seq, n, nil
}

// spec decodes and validates the document root.
func (d *dec) spec(root *node) (*Spec, error) {
	f, err := d.fields(root, "scenario spec")
	if err != nil {
		return nil, err
	}
	sp := &Spec{}

	// Version gates everything else: a future schema may change any field,
	// so nothing is interpreted before the version is known good.
	v, vn, err := f.integer("version")
	if err != nil {
		return nil, err
	}
	if vn == nil {
		return nil, d.errf(root, "missing required field \"version\" (this build supports version %d)", Version)
	}
	if v != Version {
		return nil, d.errf(vn, "unsupported spec version %d (this build supports version %d)", v, Version)
	}
	sp.Version = int(v)

	if sp.Name, _, err = f.reqStr("name"); err != nil {
		return nil, err
	}
	if sp.Description, _, err = f.str("description"); err != nil {
		return nil, err
	}
	kind, kn, err := f.reqStr("kind")
	if err != nil {
		return nil, err
	}
	sp.Kind = kind

	if cn, ok := f.get("cluster"); ok {
		if err := d.cluster(cn, &sp.Cluster); err != nil {
			return nil, err
		}
	}
	if cn, ok := f.get("conf"); ok {
		if sp.Conf, err = d.conf(cn); err != nil {
			return nil, err
		}
	}

	switch kind {
	case KindSingle:
		err = d.single(f, sp)
	case KindChaosMatrix:
		err = d.chaosMatrix(f, sp)
	case KindTenantMatrix:
		err = d.tenantMatrix(f, sp)
	case KindArrivalMatrix:
		err = d.arrivalMatrix(f, sp)
	default:
		return nil, d.errf(kn, "unknown kind %q (want %s, %s, %s or %s)",
			kind, KindSingle, KindChaosMatrix, KindTenantMatrix, KindArrivalMatrix)
	}
	if err != nil {
		return nil, err
	}
	if err := f.finish(); err != nil {
		return nil, err
	}
	return sp, nil
}

func (d *dec) cluster(n *node, c *ClusterSpec) error {
	f, err := d.fields(n, "cluster")
	if err != nil {
		return err
	}
	v, vn, err := f.integer("nodes")
	if err != nil {
		return err
	}
	if vn != nil {
		if v <= 0 {
			return d.errf(vn, "field \"nodes\": must be positive, got %d", v)
		}
		c.Nodes = int(v)
	}
	s, sn, err := f.float("scale")
	if err != nil {
		return err
	}
	if sn != nil {
		if s <= 0 {
			return d.errf(sn, "field \"scale\": must be positive, got %v", s)
		}
		c.Scale = s
	}
	if c.Seed, _, err = f.integer("seed"); err != nil {
		return err
	}
	disk, dn, err := f.str("disk")
	if err != nil {
		return err
	}
	if dn != nil {
		if disk != "hdd" && disk != "ssd" {
			return d.errf(dn, "field \"disk\": unknown device %q (want hdd or ssd)", disk)
		}
		c.Disk = disk
	}
	return f.finish()
}

func (d *dec) conf(n *node) (map[string]string, error) {
	if n.kind != mappingNode {
		return nil, d.errf(n, "conf must be a mapping of parameter overrides, got a %s", n.kindName())
	}
	catalogue := conf.New()
	out := make(map[string]string, len(n.keys))
	for _, key := range n.keys {
		vn := n.children[key]
		if vn.kind != scalarNode {
			return nil, d.errf(vn, "conf %q must be a scalar, got a %s", key, vn.kindName())
		}
		// Validate against the catalogue the way the engine will: unknown
		// keys fail here, at the spec, not mid-run.
		if err := catalogue.Set(key, vn.val); err != nil {
			return nil, d.errf(vn, "conf: unknown parameter %q", key)
		}
		out[key] = vn.val
	}
	return out, nil
}

func (d *dec) single(f *fields, sp *Spec) error {
	var err error
	var wn *node
	if sp.Workload, wn, err = f.reqStr("workload"); err != nil {
		return err
	}
	if err := d.checkWorkload(sp.Workload, wn); err != nil {
		return err
	}
	pol, pn, err := f.reqStr("policy")
	if err != nil {
		return err
	}
	if _, perr := exp.PolicyByName(pol); perr != nil {
		return d.errf(pn, "field \"policy\": unknown policy %q (want default, static[:N] or dynamic)", pol)
	}
	sp.Policy = pol
	chaosSpec, cn, err := f.str("chaos")
	if err != nil {
		return err
	}
	if cn != nil {
		// Single runs take the absolute-time chaos grammar verbatim;
		// percentage times need a quiet calibration run, which only the
		// chaos matrix performs.
		if strings.Contains(chaosSpec, "%") {
			return d.errf(cn, "field \"chaos\": percentage times are only valid in chaos-matrix schedules")
		}
		if _, perr := parseScheduleSpec(chaosSpec); perr != nil {
			return d.errf(cn, "field \"chaos\": %v", perr)
		}
		sp.Chaos = chaosSpec
	}
	if en, ok := f.get("expect"); ok {
		if sp.Expect, err = d.expect(en); err != nil {
			return err
		}
	}
	return nil
}

func (d *dec) expect(n *node) (*ExpectSpec, error) {
	f, err := d.fields(n, "expect")
	if err != nil {
		return nil, err
	}
	e := &ExpectSpec{}
	v, vn, err := f.float("max_runtime_sec")
	if err != nil {
		return nil, err
	}
	if vn != nil {
		if v <= 0 {
			return nil, d.errf(vn, "field \"max_runtime_sec\": must be positive, got %v", v)
		}
		e.MaxRuntimeSec = v
	}
	lost, ln, err := f.integer("max_lost_executors")
	if err != nil {
		return nil, err
	}
	if ln != nil {
		if lost < 0 {
			return nil, d.errf(ln, "field \"max_lost_executors\": must be non-negative, got %d", lost)
		}
		n := int(lost)
		e.MaxLostExecutors = &n
	}
	if e.MinRecoveredGiB, _, err = f.float("min_recovered_gib"); err != nil {
		return nil, err
	}
	return e, f.finish()
}

func (d *dec) chaosMatrix(f *fields, sp *Spec) error {
	var err error
	var wn *node
	if sp.Workload, wn, err = f.reqStr("workload"); err != nil {
		return err
	}
	if err := d.checkWorkload(sp.Workload, wn); err != nil {
		return err
	}
	if err := d.policies(f, sp, true); err != nil {
		return err
	}
	schedules, sn, err := f.strings("schedules")
	if err != nil {
		return err
	}
	if len(schedules) == 0 {
		return d.errf(f.n, "%s: missing required field \"schedules\"", f.ctx)
	}
	for i, s := range schedules {
		if _, perr := parseScheduleSpec(s); perr != nil {
			return d.errf(schedulePos(sn, i), "schedules[%d]: %v", i, perr)
		}
	}
	sp.Schedules = schedules
	report, rn, err := f.reqStr("report")
	if err != nil {
		return err
	}
	if report != "faults" && report != "grayfail" {
		return d.errf(rn, "field \"report\": unknown chaos-matrix preset %q (want faults or grayfail)", report)
	}
	sp.Report = report
	return nil
}

// schedulePos returns the node of a sequence item for error positions.
func schedulePos(seq *node, i int) *node {
	if seq != nil && i < len(seq.seq) {
		return seq.seq[i]
	}
	return seq
}

func (d *dec) policies(f *fields, sp *Spec, required bool) error {
	policies, pn, err := f.strings("policies")
	if err != nil {
		return err
	}
	if len(policies) == 0 {
		if !required {
			return nil
		}
		return d.errf(f.n, "%s: missing required field \"policies\"", f.ctx)
	}
	for i, p := range policies {
		if _, perr := exp.PolicyByName(p); perr != nil {
			return d.errf(schedulePos(pn, i), "policies[%d]: unknown policy %q (want default, static[:N] or dynamic)", i, p)
		}
	}
	sp.Policies = policies
	return nil
}

func (d *dec) tenantMatrix(f *fields, sp *Spec) error {
	mixes, mn, err := f.sequence("mixes")
	if err != nil {
		return err
	}
	if len(mixes) == 0 {
		return d.errf(f.n, "%s: missing required field \"mixes\"", f.ctx)
	}
	_ = mn
	seen := map[string]bool{}
	for i, item := range mixes {
		mf, err := d.fields(item, fmt.Sprintf("mixes[%d]", i))
		if err != nil {
			return err
		}
		var mix MixSpec
		var nn *node
		if mix.Name, nn, err = mf.reqStr("name"); err != nil {
			return err
		}
		if seen[mix.Name] {
			return d.errf(nn, "mixes[%d]: duplicate mix name %q", i, mix.Name)
		}
		seen[mix.Name] = true
		ws, wn, err := mf.strings("workloads")
		if err != nil {
			return err
		}
		if len(ws) == 0 {
			return d.errf(item, "mixes[%d] (%s): missing required field \"workloads\"", i, mix.Name)
		}
		for j, w := range ws {
			if err := d.checkWorkload(w, schedulePos(wn, j)); err != nil {
				return err
			}
		}
		mix.Workloads = ws
		if err := mf.finish(); err != nil {
			return err
		}
		sp.Mixes = append(sp.Mixes, mix)
	}
	scheds, sn, err := f.strings("schedulers")
	if err != nil {
		return err
	}
	if len(scheds) == 0 {
		return d.errf(f.n, "%s: missing required field \"schedulers\"", f.ctx)
	}
	for i, s := range scheds {
		if _, perr := exp.SchedulerByName(s); perr != nil {
			return d.errf(schedulePos(sn, i), "schedulers[%d]: unknown scheduler %q (want fifo or fair)", i, s)
		}
	}
	sp.Schedulers = scheds
	return d.policies(f, sp, true)
}

func (d *dec) arrivalMatrix(f *fields, sp *Spec) error {
	an, ok := f.get("arrival")
	if !ok {
		return d.errf(f.n, "%s: missing required field \"arrival\"", f.ctx)
	}
	af, err := d.fields(an, "arrival")
	if err != nil {
		return err
	}
	m := &ArrivalMatrixSpec{}

	tenants, _, err := af.sequence("tenants")
	if err != nil {
		return err
	}
	if len(tenants) == 0 {
		return d.errf(an, "arrival: missing required field \"tenants\"")
	}
	seen := map[string]bool{}
	for i, item := range tenants {
		t, err := d.tenant(item, i, seen)
		if err != nil {
			return err
		}
		m.Tenants = append(m.Tenants, t)
	}

	arrivals, _, err := af.sequence("arrivals")
	if err != nil {
		return err
	}
	if len(arrivals) == 0 {
		return d.errf(an, "arrival: missing required field \"arrivals\"")
	}
	seenArr := map[string]bool{}
	for i, item := range arrivals {
		p, err := d.arrivalProc(item, i, seenArr)
		if err != nil {
			return err
		}
		m.Arrivals = append(m.Arrivals, p)
	}

	configs, _, err := af.sequence("configs")
	if err != nil {
		return err
	}
	if len(configs) == 0 {
		return d.errf(an, "arrival: missing required field \"configs\"")
	}
	seenCfg := map[string]bool{}
	for i, item := range configs {
		c, err := d.provision(item, i, seenCfg)
		if err != nil {
			return err
		}
		m.Configs = append(m.Configs, c)
	}

	capStr, capN, err := af.reqStr("capacity")
	if err != nil {
		return err
	}
	if _, _, perr := parseCapacity(capStr); perr != nil {
		return d.errf(capN, "field \"capacity\": %v", perr)
	}
	m.Capacity = capStr

	horizon, hn, err := af.duration("horizon")
	if err != nil {
		return err
	}
	if hn == nil || horizon <= 0 {
		return d.errf(an, "arrival: missing required field \"horizon\"")
	}
	m.Horizon = horizon

	maxJobs, mn, err := af.integer("max_jobs")
	if err != nil {
		return err
	}
	if mn == nil || maxJobs <= 0 {
		return d.errf(an, "arrival: missing required field \"max_jobs\"")
	}
	m.MaxJobs = int(maxJobs)
	minJobs, _, err := af.integer("min_jobs")
	if err != nil {
		return err
	}
	m.MinJobs = int(minJobs)

	sn, ok := af.get("slo")
	if !ok {
		return d.errf(an, "arrival: missing required field \"slo\"")
	}
	{
		sf, err := d.fields(sn, "slo")
		if err != nil {
			return err
		}
		v, vn, err := sf.float("factor")
		if err != nil {
			return err
		}
		if vn != nil && v <= 0 {
			return d.errf(vn, "field \"factor\": must be positive, got %v", v)
		}
		m.SLOFactor = v
		baseline, bn, err := sf.reqStr("baseline")
		if err != nil {
			return err
		}
		if !seenCfg[baseline] {
			return d.errf(bn, "field \"baseline\": config %q is not in the config list", baseline)
		}
		m.Baseline = baseline
		if err := sf.finish(); err != nil {
			return err
		}
	}
	if err := af.finish(); err != nil {
		return err
	}
	sp.Arrival = m
	return nil
}

func (d *dec) tenant(n *node, i int, seen map[string]bool) (TenantSpec, error) {
	f, err := d.fields(n, fmt.Sprintf("tenants[%d]", i))
	if err != nil {
		return TenantSpec{}, err
	}
	var t TenantSpec
	var nn *node
	if t.Name, nn, err = f.reqStr("name"); err != nil {
		return t, err
	}
	// Tenant classes must not overlap: the generator draws by class name,
	// and a duplicate would silently split one tenant's weight in two.
	if seen[t.Name] {
		return t, d.errf(nn, "tenants[%d]: duplicate tenant class %q (tenant classes must not overlap)", i, t.Name)
	}
	seen[t.Name] = true
	w, wn, err := f.float("weight")
	if err != nil {
		return t, err
	}
	if wn == nil || w <= 0 {
		return t, d.errf(pick(wn, n), "tenants[%d] (%s): field \"weight\" must be positive", i, t.Name)
	}
	t.Weight = w
	pri, _, err := f.integer("priority")
	if err != nil {
		return t, err
	}
	t.Priority = int(pri)
	blocks, bn, err := f.integer("blocks")
	if err != nil {
		return t, err
	}
	if bn == nil || blocks <= 0 {
		return t, d.errf(pick(bn, n), "tenants[%d] (%s): field \"blocks\" must be positive", i, t.Name)
	}
	t.Blocks = int(blocks)
	minBlocks, _, err := f.integer("min_blocks")
	if err != nil {
		return t, err
	}
	t.MinBlocks = int(minBlocks)
	return t, f.finish()
}

func pick(n, fallback *node) *node {
	if n != nil {
		return n
	}
	return fallback
}

func (d *dec) arrivalProc(n *node, i int, seen map[string]bool) (ArrivalProcSpec, error) {
	f, err := d.fields(n, fmt.Sprintf("arrivals[%d]", i))
	if err != nil {
		return ArrivalProcSpec{}, err
	}
	var p ArrivalProcSpec
	var nn *node
	if p.Name, nn, err = f.reqStr("name"); err != nil {
		return p, err
	}
	if seen[p.Name] {
		return p, d.errf(nn, "arrivals[%d]: duplicate arrival name %q", i, p.Name)
	}
	seen[p.Name] = true
	proc, pn, err := f.reqStr("process")
	if err != nil {
		return p, err
	}
	p.Process = proc
	switch proc {
	case "poisson":
		rate, rn, err := f.float("rate")
		if err != nil {
			return p, err
		}
		if rn == nil || rate <= 0 {
			return p, d.errf(pick(rn, n), "arrivals[%d] (%s): poisson needs a positive \"rate\"", i, p.Name)
		}
		p.Rate = rate
	case "bursty":
		if p.OnRate, _, err = f.float("on_rate"); err != nil {
			return p, err
		}
		if p.OffRate, _, err = f.float("off_rate"); err != nil {
			return p, err
		}
		var onN, offN *node
		if p.On, onN, err = f.duration("on"); err != nil {
			return p, err
		}
		if p.Off, offN, err = f.duration("off"); err != nil {
			return p, err
		}
		if p.OnRate <= 0 || onN == nil || offN == nil || p.On <= 0 || p.Off <= 0 {
			return p, d.errf(n, "arrivals[%d] (%s): bursty needs positive \"on_rate\", \"on\" and \"off\"", i, p.Name)
		}
	case "diurnal":
		var prN *node
		if p.Period, prN, err = f.duration("period"); err != nil {
			return p, err
		}
		rates, rn, err := f.strings("rates")
		if err != nil {
			return p, err
		}
		if prN == nil || p.Period <= 0 || len(rates) == 0 {
			return p, d.errf(n, "arrivals[%d] (%s): diurnal needs a positive \"period\" and a \"rates\" list", i, p.Name)
		}
		for j, r := range rates {
			v, perr := strconv.ParseFloat(r, 64)
			if perr != nil || v < 0 {
				return p, d.errf(schedulePos(rn, j), "arrivals[%d] (%s): rates[%d]: %q is not a non-negative number", i, p.Name, j, r)
			}
			p.Rates = append(p.Rates, v)
		}
	default:
		return p, d.errf(pn, "arrivals[%d]: unknown process %q (want poisson, bursty or diurnal)", i, proc)
	}
	return p, f.finish()
}

func (d *dec) provision(n *node, i int, seen map[string]bool) (ProvisionSpec, error) {
	f, err := d.fields(n, fmt.Sprintf("configs[%d]", i))
	if err != nil {
		return ProvisionSpec{}, err
	}
	var c ProvisionSpec
	var nn *node
	if c.Name, nn, err = f.reqStr("name"); err != nil {
		return c, err
	}
	if seen[c.Name] {
		return c, d.errf(nn, "configs[%d]: duplicate config name %q", i, c.Name)
	}
	seen[c.Name] = true
	pol, pn, err := f.reqStr("policy")
	if err != nil {
		return c, err
	}
	if pol != "static" && pol != "reactive" && pol != "adaptive" {
		return c, d.errf(pn, "configs[%d]: unknown autoscale policy %q (want static, reactive or adaptive)", i, pol)
	}
	c.Policy = pol
	initial, in, err := f.reqStr("initial")
	if err != nil {
		return c, err
	}
	if initial != "small" && initial != "capacity" {
		v, perr := strconv.Atoi(initial)
		if perr != nil || v <= 0 {
			return c, d.errf(in, "configs[%d] (%s): field \"initial\": want small, capacity or a positive integer, got %q", i, c.Name, initial)
		}
	}
	c.Initial = initial
	if pol == "adaptive" {
		if c.Alpha, _, err = f.float("alpha"); err != nil {
			return c, err
		}
		if c.DrainTarget, _, err = f.duration("drain_target"); err != nil {
			return c, err
		}
		if c.Headroom, _, err = f.float("headroom"); err != nil {
			return c, err
		}
		if c.MinSamplePeriod, _, err = f.duration("min_sample_period"); err != nil {
			return c, err
		}
	}
	return c, f.finish()
}

func (d *dec) checkWorkload(name string, n *node) error {
	if _, err := workloads.ByName(name, workloads.Paper()); err != nil {
		return d.errf(n, "unknown workload %q", name)
	}
	return nil
}

// parseCapacity parses the fleet size: "8" or "2x" (times cluster nodes).
func parseCapacity(s string) (n int, perNode bool, err error) {
	if strings.HasSuffix(s, "x") {
		v, err := strconv.Atoi(s[:len(s)-1])
		if err != nil || v <= 0 {
			return 0, false, fmt.Errorf("want a positive integer or \"Nx\" (times cluster nodes), got %q", s)
		}
		return v, true, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, false, fmt.Errorf("want a positive integer or \"Nx\" (times cluster nodes), got %q", s)
	}
	return v, false, nil
}

// sortedConfKeys returns the conf override keys in stable order.
func sortedConfKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
