// Package arrival generates deterministic open-loop job traffic for the
// simulator. An open-loop generator decides submission instants independently
// of system state — jobs arrive whether or not the cluster keeps up — which is
// what exposes queueing delay and tail latency under load (a closed loop that
// waits for completions hides exactly the overload the autoscaler must
// handle). Because arrivals are system-independent, the whole schedule can be
// drawn up front from one seeded PRNG: the engine then admits each job at its
// scheduled sim instant and same-seed runs stay byte-identical.
//
// Rate processes compose from a small vocabulary: Poisson(λ) for steady load,
// Bursty for on/off modulation, and Diurnal for piecewise day-shaped rates.
// Non-homogeneous processes are sampled by Lewis–Shedler thinning of a
// homogeneous Poisson process at the peak rate.
package arrival

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sae/internal/sim"
)

// Process is a (possibly time-varying) arrival-rate function. Rate reports
// the instantaneous rate in jobs/second at sim time t; Peak bounds Rate from
// above and is the envelope rate used for thinning.
type Process interface {
	Rate(t time.Duration) float64
	Peak() float64
	Name() string
}

// Poisson is a homogeneous Poisson process: constant rate, exponential
// inter-arrival times.
type Poisson struct {
	// RatePerSec is λ in jobs/second.
	RatePerSec float64
}

func (p Poisson) Rate(time.Duration) float64 { return p.RatePerSec }
func (p Poisson) Peak() float64              { return p.RatePerSec }
func (p Poisson) Name() string               { return fmt.Sprintf("poisson(%.3g/s)", p.RatePerSec) }

// Bursty modulates a Poisson process with an on/off square wave: OnRate for
// the first On of every On+Off period, OffRate for the rest. It models flash
// crowds and batch windows — sustained bursts a mean-rate provisioner
// underestimates.
type Bursty struct {
	OnRate, OffRate float64
	On, Off         time.Duration
}

func (b Bursty) Rate(t time.Duration) float64 {
	period := b.On + b.Off
	if period <= 0 {
		return b.OnRate
	}
	if t%period < b.On {
		return b.OnRate
	}
	return b.OffRate
}

func (b Bursty) Peak() float64 { return math.Max(b.OnRate, b.OffRate) }

func (b Bursty) Name() string {
	return fmt.Sprintf("bursty(%.3g/s×%v on, %.3g/s×%v off)", b.OnRate, b.On, b.OffRate, b.Off)
}

// Diurnal is a piecewise-constant rate repeating with the given period: Rates
// divides the period into equal slots (e.g. 24 hourly rates over a day). It
// models the day/night shape autoscalers are built to track.
type Diurnal struct {
	Period time.Duration
	Rates  []float64
}

func (d Diurnal) Rate(t time.Duration) float64 {
	if len(d.Rates) == 0 || d.Period <= 0 {
		return 0
	}
	slot := d.Period / time.Duration(len(d.Rates))
	i := int((t % d.Period) / slot)
	if i >= len(d.Rates) {
		i = len(d.Rates) - 1
	}
	return d.Rates[i]
}

func (d Diurnal) Peak() float64 {
	var m float64
	for _, r := range d.Rates {
		m = math.Max(m, r)
	}
	return m
}

func (d Diurnal) Name() string { return fmt.Sprintf("diurnal(%d slots/%v)", len(d.Rates), d.Period) }

// Class is one tenant class in the traffic mix. The generator picks a class
// per arrival by weight; the caller maps the class name to a concrete
// workload (family, input size, conf overrides) when building the JobSpec.
type Class struct {
	// Name labels the tenant class in reports ("interactive", "batch").
	Name string
	// Weight is the class's share of arrivals (relative, need not sum to 1).
	Weight float64
	// Priority is carried onto the generated job (higher = more urgent).
	Priority int
}

// Arrival is one generated job submission.
type Arrival struct {
	// Seq is the submission sequence number (0-based, schedule order).
	Seq int
	// At is the submission instant on the sim clock.
	At time.Duration
	// Class is the tenant class drawn for this arrival.
	Class Class
}

// Spec configures one traffic generation run.
type Spec struct {
	// Proc is the arrival-rate process.
	Proc Process
	// Classes is the tenant mix; weights are normalized internally. Empty
	// means every arrival gets the zero Class.
	Classes []Class
	// Seed fixes the PRNG; equal specs with equal seeds generate identical
	// schedules.
	Seed int64
	// Horizon bounds generation: no arrivals at or after this instant.
	Horizon time.Duration
	// MaxJobs, if > 0, caps the number of arrivals even before the horizon.
	MaxJobs int
}

// Generate draws the full arrival schedule. Thinning (Lewis–Shedler): draw
// candidate instants from a homogeneous Poisson process at the peak rate,
// accept each with probability Rate(t)/Peak. For a homogeneous process every
// candidate is accepted and this reduces to exponential inter-arrivals. The
// returned schedule is sorted by time with ties impossible (continuous
// inter-arrival draws) and Seq numbering in time order.
func (s Spec) Generate() []Arrival {
	if s.Proc == nil || s.Proc.Peak() <= 0 || s.Horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(s.Seed))
	peak := s.Proc.Peak()
	var (
		out []Arrival
		t   time.Duration
	)
	for {
		// Exponential gap at the envelope rate, in float seconds.
		gap := rng.ExpFloat64() / peak
		t += time.Duration(gap * float64(time.Second))
		if t >= s.Horizon {
			break
		}
		if accept := s.Proc.Rate(t) / peak; rng.Float64() >= accept {
			continue
		}
		out = append(out, Arrival{Seq: len(out), At: t, Class: s.pickClass(rng)})
		if s.MaxJobs > 0 && len(out) >= s.MaxJobs {
			break
		}
	}
	return out
}

// pickClass draws one tenant class by weight. Exactly one variate is
// consumed per arrival regardless of the class list, so the arrival
// *instants* of a schedule depend only on (Proc, Seed, Horizon) — changing
// the tenant mix relabels jobs without moving them.
func (s Spec) pickClass(rng *rand.Rand) Class {
	x := rng.Float64()
	var total float64
	for _, c := range s.Classes {
		if c.Weight > 0 {
			total += c.Weight
		}
	}
	if total <= 0 {
		if len(s.Classes) == 1 {
			return s.Classes[0]
		}
		return Class{}
	}
	x *= total
	for _, c := range s.Classes {
		if c.Weight <= 0 {
			continue
		}
		if x < c.Weight {
			return c
		}
		x -= c.Weight
	}
	return s.Classes[len(s.Classes)-1]
}

// Pump schedules fn(a) on the kernel at each arrival's instant, modelling the
// generator as a live traffic source on the sim clock. Callers that must
// submit before the engine starts (the engine freezes its job table at Wait)
// use Generate directly; Pump is for components that consume arrivals as sim
// events — benchmarks, future admission-control work.
func Pump(k *sim.Kernel, sched []Arrival, fn func(Arrival)) {
	for _, a := range sched {
		a := a
		k.At(a.At, func() { fn(a) })
	}
}

// Stats summarizes a schedule for logs and sanity checks.
type Stats struct {
	Jobs    int
	ByClass map[string]int
	// MeanGap is the mean inter-arrival time (0 with < 2 arrivals).
	MeanGap time.Duration
	// PeakMinuteJobs is the largest number of arrivals in any aligned
	// 60-second window — the burstiness headline.
	PeakMinuteJobs int
}

// Summarize computes schedule statistics.
func Summarize(sched []Arrival) Stats {
	st := Stats{Jobs: len(sched), ByClass: map[string]int{}}
	minutes := map[int64]int{}
	for _, a := range sched {
		st.ByClass[a.Class.Name]++
		minutes[int64(a.At/time.Minute)]++
	}
	for _, n := range minutes {
		if n > st.PeakMinuteJobs {
			st.PeakMinuteJobs = n
		}
	}
	if len(sched) >= 2 {
		st.MeanGap = (sched[len(sched)-1].At - sched[0].At) / time.Duration(len(sched)-1)
	}
	return st
}

// SortBySeq restores schedule order after callers reorder a copy.
func SortBySeq(sched []Arrival) {
	sort.Slice(sched, func(i, j int) bool { return sched[i].Seq < sched[j].Seq })
}
