package arrival

import (
	"math"
	"testing"
	"time"

	"sae/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{
		Proc: Poisson{RatePerSec: 0.5},
		Classes: []Class{
			{Name: "interactive", Weight: 3, Priority: 1},
			{Name: "batch", Weight: 1},
		},
		Seed:    42,
		Horizon: time.Hour,
	}
	a, b := spec.Generate(), spec.Generate()
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	spec.Seed = 43
	c := spec.Generate()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].At != c[i].At {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	spec := Spec{Proc: Poisson{RatePerSec: 2}, Seed: 1, Horizon: 2 * time.Hour}
	sched := spec.Generate()
	got := float64(len(sched)) / spec.Horizon.Seconds()
	if math.Abs(got-2) > 0.1 {
		t.Fatalf("empirical rate %.3f/s, want ≈2/s", got)
	}
	for i := 1; i < len(sched); i++ {
		if sched[i].At <= sched[i-1].At {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v",
				i, sched[i-1].At, sched[i].At)
		}
		if sched[i].Seq != i {
			t.Fatalf("seq %d at index %d", sched[i].Seq, i)
		}
	}
}

func TestBurstyConcentratesInOnWindows(t *testing.T) {
	proc := Bursty{OnRate: 2, OffRate: 0.05, On: time.Minute, Off: 4 * time.Minute}
	spec := Spec{Proc: proc, Seed: 7, Horizon: 2 * time.Hour}
	sched := spec.Generate()
	var on, off int
	for _, a := range sched {
		if proc.Rate(a.At) == proc.OnRate {
			on++
		} else {
			off++
		}
	}
	if on == 0 || off == 0 {
		t.Fatalf("on=%d off=%d: both phases should see arrivals", on, off)
	}
	// On-rate is 40× off-rate over 1/4 the time: expect ~10× the arrivals.
	if on < 5*off {
		t.Fatalf("on=%d off=%d: bursts not concentrated", on, off)
	}
}

func TestDiurnalRate(t *testing.T) {
	d := Diurnal{Period: 24 * time.Hour, Rates: []float64{1, 2, 3}}
	if got := d.Rate(0); got != 1 {
		t.Fatalf("rate(0h) = %v", got)
	}
	if got := d.Rate(9 * time.Hour); got != 2 {
		t.Fatalf("rate(9h) = %v", got)
	}
	if got := d.Rate(23 * time.Hour); got != 3 {
		t.Fatalf("rate(23h) = %v", got)
	}
	if got := d.Rate(25 * time.Hour); got != 1 {
		t.Fatalf("rate(25h) = %v, want wraparound", got)
	}
	if d.Peak() != 3 {
		t.Fatalf("peak = %v", d.Peak())
	}
}

func TestClassMixDoesNotMoveArrivals(t *testing.T) {
	base := Spec{Proc: Poisson{RatePerSec: 1}, Seed: 5, Horizon: time.Hour}
	mixed := base
	mixed.Classes = []Class{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}}
	sa, sb := base.Generate(), mixed.Generate()
	if len(sa) != len(sb) {
		t.Fatalf("lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].At != sb[i].At {
			t.Fatalf("arrival %d moved: %v vs %v", i, sa[i].At, sb[i].At)
		}
	}
	var a, b int
	for _, x := range sb {
		switch x.Class.Name {
		case "a":
			a++
		case "b":
			b++
		default:
			t.Fatalf("unexpected class %q", x.Class.Name)
		}
	}
	if a == 0 || b == 0 {
		t.Fatalf("class mix not drawn: a=%d b=%d", a, b)
	}
}

func TestMaxJobsAndHorizon(t *testing.T) {
	spec := Spec{Proc: Poisson{RatePerSec: 10}, Seed: 3, Horizon: time.Hour, MaxJobs: 25}
	sched := spec.Generate()
	if len(sched) != 25 {
		t.Fatalf("len = %d, want 25", len(sched))
	}
	spec.MaxJobs = 0
	for _, a := range spec.Generate() {
		if a.At >= spec.Horizon {
			t.Fatalf("arrival at %v beyond horizon %v", a.At, spec.Horizon)
		}
	}
}

func TestPumpFiresOnSimClock(t *testing.T) {
	spec := Spec{Proc: Poisson{RatePerSec: 1}, Seed: 11, Horizon: 10 * time.Minute}
	sched := spec.Generate()
	if len(sched) < 2 {
		t.Fatalf("want ≥ 2 arrivals, got %d", len(sched))
	}
	k := sim.NewKernel()
	var got []Arrival
	var times []time.Duration
	Pump(k, sched, func(a Arrival) {
		got = append(got, a)
		times = append(times, k.Now())
	})
	k.Run()
	if len(got) != len(sched) {
		t.Fatalf("fired %d of %d arrivals", len(got), len(sched))
	}
	for i := range got {
		if got[i].Seq != sched[i].Seq || times[i] != sched[i].At {
			t.Fatalf("arrival %d fired at %v as seq %d, want %v seq %d",
				i, times[i], got[i].Seq, sched[i].At, sched[i].Seq)
		}
	}
}

func TestSummarize(t *testing.T) {
	sched := []Arrival{
		{Seq: 0, At: 10 * time.Second, Class: Class{Name: "a"}},
		{Seq: 1, At: 20 * time.Second, Class: Class{Name: "a"}},
		{Seq: 2, At: 30 * time.Second, Class: Class{Name: "b"}},
		{Seq: 3, At: 90 * time.Second, Class: Class{Name: "b"}},
	}
	st := Summarize(sched)
	if st.Jobs != 4 || st.ByClass["a"] != 2 || st.ByClass["b"] != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PeakMinuteJobs != 3 {
		t.Fatalf("peak minute = %d, want 3", st.PeakMinuteJobs)
	}
	if st.MeanGap != (80*time.Second)/3 {
		t.Fatalf("mean gap = %v", st.MeanGap)
	}
}
