// Package prof is the one place the CLI binaries set up their pprof and
// execution-trace flags, so sae-exp and sae-run share identical profiling
// behavior instead of duplicating the boilerplate.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// Start enables the requested profiles; an empty path skips that profile.
// It returns a stop function that flushes and closes everything started —
// call it exactly once (typically deferred), even on error paths, so CPU
// profiles and execution traces end cleanly. The heap profile is written at
// stop time, after a GC, matching the usual -memprofile semantics.
func Start(cpuFile, memFile, traceFile string) (stop func() error, err error) {
	var stops []func() error
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]() //nolint:errcheck // best-effort unwind
		}
		return nil, err
	}
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpu profile: %w", err))
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return fail(err)
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("execution trace: %w", err))
		}
		stops = append(stops, func() error {
			rtrace.Stop()
			return f.Close()
		})
	}
	if memFile != "" {
		f, err := os.Create(memFile)
		if err != nil {
			return fail(err)
		}
		stops = append(stops, func() error {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("heap profile: %w", err)
			}
			return f.Close()
		})
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
