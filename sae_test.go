package sae

import (
	"strings"
	"testing"
)

func TestPublicRunTerasort(t *testing.T) {
	rep, err := Run(DAS5().WithScale(0.1), Terasort(ScaledDown(0.1)), Adaptive())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "dynamic" {
		t.Fatalf("policy = %q", rep.Policy)
	}
	if len(rep.Stages) != 3 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
	if rep.Runtime <= 0 {
		t.Fatal("no runtime")
	}
}

func TestPublicPolicies(t *testing.T) {
	cases := []struct {
		p    Policy
		name string
	}{
		{Default(), "default"},
		{Static(8), "static-8"},
		{Adaptive(), "dynamic"},
		{AdaptiveWith(4, 0.2), "dynamic-cmin4"},
		{BestFit(map[int]int{0: 4}), "static-bestfit"},
	}
	for _, c := range cases {
		if c.p.Name() != c.name {
			t.Errorf("policy name = %q, want %q", c.p.Name(), c.name)
		}
	}
}

func TestPublicWorkloadByName(t *testing.T) {
	for _, name := range []string{"terasort", "pagerank", "aggregation", "join", "scan", "bayes", "lda", "nweight", "svm"} {
		w, err := WorkloadByName(name, ScaledDown(0.05))
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != name {
			t.Fatalf("got %q", w.Name)
		}
	}
	if _, err := WorkloadByName("nope", PaperScale()); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if len(AllWorkloads(ScaledDown(0.05))) != 9 {
		t.Fatal("AllWorkloads != 9")
	}
}

func TestPublicDataflow(t *testing.T) {
	ctx, err := NewContext(ContextOptions{Policy: Default()})
	if err != nil {
		t.Fatal(err)
	}
	text := TextFile(ctx, "t/in", []string{"a b", "b c c"}, 2)
	words := FlatMap(text, func(l string) []string { return strings.Fields(l) })
	pairs := MapData(words, func(w string) Pair[string, int] { return Pair[string, int]{Key: w, Value: 1} })
	counts := ReduceByKey(pairs, func(a, b int) int { return a + b }, 2)
	out, rep, err := Collect(counts)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range out {
		got[p.Key] = p.Value
	}
	if got["a"] != 1 || got["b"] != 2 || got["c"] != 2 {
		t.Fatalf("counts = %v", got)
	}
	if rep == nil || len(rep.Stages) != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPublicDataflowExtendedOps(t *testing.T) {
	ctx, err := NewContext(ContextOptions{Policy: Default()})
	if err != nil {
		t.Fatal(err)
	}
	a := Parallelize(ctx, []int{1, 2, 2, 3}, 2)
	b := Parallelize(ctx, []int{3, 4}, 1)
	u := Distinct(Union(a, b, 3), 2)
	n, _, err := CountData(u)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("distinct(union) = %d, want 4", n)
	}
	first2, _, err := Take(CacheData(u), 2)
	if err != nil || len(first2) != 2 {
		t.Fatalf("take = %v, %v", first2, err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != len(Experiments()) {
		t.Fatalf("ids = %d, experiments = %d", len(ids), len(Experiments()))
	}
	// Presentation order: tables, figures in numeric order, extensions.
	if ids[0] != "table1" || ids[1] != "table2" || ids[2] != "fig1" {
		t.Fatalf("order = %v", ids[:3])
	}
	if last := ids[len(ids)-1]; last != "multitenant" {
		t.Fatalf("extensions should sort last alphabetically, got %q", last)
	}
	// fig10 after fig9 (numeric, not lexicographic).
	var i9, i10 int
	for i, id := range ids {
		if id == "fig9" {
			i9 = i
		}
		if id == "fig10" {
			i10 = i
		}
	}
	if i10 != i9+1 {
		t.Fatalf("fig10 should follow fig9: %v", ids)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", DAS5()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	res, err := RunExperiment("table1", DAS5())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "117") {
		t.Fatalf("table1 output missing total: %s", res)
	}
}

func TestDeviceProfilesExported(t *testing.T) {
	hb, hn := HDD().Peak()
	sb, sn := SSD().Peak()
	if hb >= sb {
		t.Fatal("SSD should out-peak HDD")
	}
	if hn != 4 {
		t.Fatalf("HDD peak at %d streams, want 4", hn)
	}
	if sn < 8 {
		t.Fatalf("SSD peak at %d streams", sn)
	}
}
