package sae

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sae/internal/exp"
)

// Experiment identifies one reproducible table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(Setup) (fmt.Stringer, error)
}

// multiResult adapts multi-part experiments to a single Stringer.
type multiResult []fmt.Stringer

func (m multiResult) String() string {
	var b strings.Builder
	for _, r := range m {
		b.WriteString(r.String())
	}
	return b.String()
}

// CSVTables implements exp.Tabular by merging the parts' tables.
func (m multiResult) CSVTables() map[string][][]string {
	out := map[string][][]string{}
	for _, r := range m {
		if tab, ok := r.(exp.Tabular); ok {
			for name, rows := range tab.CSVTables() {
				out[name] = rows
			}
		}
	}
	return out
}

// Experiments returns the full per-experiment index, keyed by ID
// ("table1", "table2", "fig1" … "fig12").
func Experiments() map[string]Experiment {
	return map[string]Experiment{
		"table1": {
			ID: "table1", Title: "Functional parameters by category",
			Run: func(Setup) (fmt.Stringer, error) { return exp.Table1(), nil },
		},
		"table2": {
			ID: "table2", Title: "I/O activity relative to input size",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Table2(s) },
		},
		"fig1": {
			ID: "fig1", Title: "Per-stage CPU usage and disk I/O wait",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure1(s) },
		},
		"fig2": {
			ID: "fig2", Title: "Static sweep: Terasort and PageRank",
			Run: func(s Setup) (fmt.Stringer, error) {
				ts, pr, err := exp.Figure2(s)
				if err != nil {
					return nil, err
				}
				return multiResult{ts, pr}, nil
			},
		},
		"fig3": {
			ID: "fig3", Title: "Per-node I/O variability (44 nodes)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure3(s) },
		},
		"fig4": {
			ID: "fig4", Title: "Static sweep: SQL applications",
			Run: func(s Setup) (fmt.Stringer, error) {
				agg, join, err := exp.Figure4(s)
				if err != nil {
					return nil, err
				}
				return multiResult{agg, join}, nil
			},
		},
		"fig5": {
			ID: "fig5", Title: "Disk utilization across thread counts",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure5(s) },
		},
		"fig6": {
			ID: "fig6", Title: "Dynamic thread selection per executor",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure6(s) },
		},
		"fig7": {
			ID: "fig7", Title: "ε, µ and ζ vs thread count",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure7(s) },
		},
		"fig8": {
			ID: "fig8", Title: "Default vs static-BestFit vs dynamic",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure8(s) },
		},
		"fig9": {
			ID: "fig9", Title: "Terasort scalability (4 vs 16 nodes)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure9(s) },
		},
		"fig10": {
			ID: "fig10", Title: "Static sweep on HDD vs SSD",
			Run: func(s Setup) (fmt.Stringer, error) {
				hdd, ssd, err := exp.Figure10(s)
				if err != nil {
					return nil, err
				}
				return multiResult{hdd, ssd}, nil
			},
		},
		"fig11": {
			ID: "fig11", Title: "Dynamic solution on SSDs",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure11(s) },
		},
		"fig12": {
			ID: "fig12", Title: "I/O throughput time series (HDD vs SSD)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Figure12(s) },
		},
		"ablation": {
			ID: "ablation", Title: "Controller design-choice ablations (§5.2)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Ablation(s) },
		},
		"interference": {
			ID: "interference", Title: "Co-located tenant mid-run (L4 / outlook extension)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Interference(s) },
		},
		"faults": {
			ID: "faults", Title: "Terasort under chaos schedules (fault-tolerance extension)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Faults(s) },
		},
		"grayfail": {
			ID: "grayfail", Title: "Terasort under gray failures — slow node, partition, corrupt replicas (robustness extension)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.GrayFail(s) },
		},
		"multitenant": {
			ID: "multitenant", Title: "Concurrent job mixes under FIFO/FAIR (multi-tenancy extension)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.MultiTenant(s) },
		},
		"autoscale": {
			ID: "autoscale", Title: "Open-loop arrivals under static vs elastic provisioning (elasticity extension)",
			Run: func(s Setup) (fmt.Stringer, error) { return exp.Autoscale(s) },
		},
	}
}

// ExperimentIDs lists valid experiment IDs in presentation order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(Experiments()))
	for id := range Experiments() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		rank := func(s string) (int, int) {
			if strings.HasPrefix(s, "table") {
				return 0, int(s[len(s)-1] - '0')
			}
			if !strings.HasPrefix(s, "fig") {
				return 2, 0
			}
			var n int
			fmt.Sscanf(strings.TrimPrefix(s, "fig"), "%d", &n)
			return 1, n
		}
		ci, ni := rank(ids[i])
		cj, nj := rank(ids[j])
		if ci != cj {
			return ci < cj
		}
		if ni != nj {
			return ni < nj
		}
		// Extensions all rank equal: alphabetical keeps the listing
		// deterministic.
		return ids[i] < ids[j]
	})
	return ids
}

// RunExperiment runs one table/figure by ID and returns its printable
// result.
func RunExperiment(id string, s Setup) (fmt.Stringer, error) {
	e, ok := Experiments()[id]
	if !ok {
		return nil, fmt.Errorf("sae: unknown experiment %q (valid: %s)", id, strings.Join(ExperimentIDs(), ", "))
	}
	return e.Run(s)
}

// ExperimentResult is the outcome of one experiment in a sweep.
type ExperimentResult struct {
	ID     string
	Result fmt.Stringer
	Err    error
	// Wall is the host wall-clock time the experiment took.
	Wall time.Duration
}

// RunExperiments runs the given experiments, fanning the sweep out across up
// to parallel worker goroutines (<=1 runs sequentially). Every run builds
// its own kernel, cluster and engine from the shared (value-typed) Setup, so
// concurrent runs share no mutable state and the results — returned in the
// order the IDs were given, regardless of completion order — are identical
// to a sequential sweep. The shared sinks would be Setup.Trace and
// Setup.Metrics, so a non-nil Trace or Metrics forces sequential execution
// rather than interleaving output from concurrent runs.
func RunExperiments(ids []string, s Setup, parallel int) ([]ExperimentResult, error) {
	exps := Experiments()
	tasks := make([]exp.Task, len(ids))
	for i, id := range ids {
		e, ok := exps[id]
		if !ok {
			return nil, fmt.Errorf("sae: unknown experiment %q (valid: %s)", id, strings.Join(ExperimentIDs(), ", "))
		}
		run := e.Run
		tasks[i] = exp.Task{ID: id, Run: func() (fmt.Stringer, error) { return run(s) }}
	}
	if s.Trace != nil || s.Metrics != nil {
		parallel = 1
	}
	rs := exp.RunParallel(parallel, tasks)
	out := make([]ExperimentResult, len(rs))
	for i, r := range rs {
		out[i] = ExperimentResult{ID: r.ID, Result: r.Result, Err: r.Err, Wall: r.Wall}
	}
	return out, nil
}
