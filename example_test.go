package sae_test

import (
	"fmt"
	"strings"

	"sae"
)

// Example runs a word count with self-adaptive executors on the simulated
// cluster. The simulation is deterministic, so the output is stable.
func Example() {
	ctx, err := sae.NewContext(sae.ContextOptions{Policy: sae.Adaptive()})
	if err != nil {
		panic(err)
	}
	text := sae.TextFile(ctx, "docs", []string{
		"adaptive executors tune threads",
		"threads contend on disks",
	}, 2)
	words := sae.FlatMap(text, func(l string) []string { return strings.Fields(l) })
	ones := sae.MapData(words, func(w string) sae.Pair[string, int] {
		return sae.Pair[string, int]{Key: w, Value: 1}
	})
	counts := sae.ReduceByKey(ones, func(a, b int) int { return a + b }, 2)

	out, report, err := sae.Collect(counts)
	if err != nil {
		panic(err)
	}
	total := 0
	for _, p := range out {
		total += p.Value
	}
	fmt.Println("words:", total, "stages:", len(report.Stages), "policy:", report.Policy)
	// Output: words: 8 stages: 2 policy: dynamic
}

// ExampleRun executes the paper's Terasort benchmark under the static
// solution at reduced scale.
func ExampleRun() {
	report, err := sae.Run(sae.DAS5().WithScale(0.1), sae.Terasort(sae.ScaledDown(0.1)), sae.Static(8))
	if err != nil {
		panic(err)
	}
	fmt.Println("stages:", len(report.Stages), "policy:", report.Policy)
	// Output: stages: 3 policy: static-8
}
