package sae

import (
	"sae/internal/engine"
	"sae/internal/rdd"
)

// The typed dataflow (RDD-style) API, re-exported from the internal layer.
// Transformations build a lineage plan; actions compile it into stages at
// shuffle boundaries and execute it with real data on the simulated
// cluster, under whichever sizing policy the context was built with.

type (
	// Context owns a dataflow plan and executes actions.
	Context = rdd.Context
	// ContextOptions configures a Context.
	ContextOptions = rdd.Options
	// Dataset is a typed, lazily evaluated distributed collection.
	Dataset[T any] = rdd.Dataset[T]
	// Pair is a key/value record for shuffled transformations.
	Pair[K comparable, V any] = rdd.Pair[K, V]
	// JoinedRow is one inner-join match.
	JoinedRow[A, B any] = rdd.JoinedRow[A, B]
)

// NewContext returns a dataflow context (ContextOptions.Policy required).
func NewContext(opts ContextOptions) (*Context, error) { return rdd.NewContext(opts) }

// Parallelize distributes an in-memory slice over partitions.
func Parallelize[T any](c *Context, data []T, partitions int) *Dataset[T] {
	return rdd.Parallelize(c, data, partitions)
}

// TextFile registers lines as a DFS-backed text file; reading it charges
// real (simulated) disk I/O, and marks its stage as I/O for the static
// solution.
func TextFile(c *Context, name string, lines []string, partitions int) *Dataset[string] {
	return rdd.TextFile(c, name, lines, partitions)
}

// MapData applies f to every record. (Named MapData to avoid colliding with
// the builtin map in user code completions; semantics are Spark's map.)
func MapData[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] { return rdd.Map(d, f) }

// Filter keeps records satisfying pred.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] { return rdd.Filter(d, pred) }

// FlatMap expands every record into zero or more records.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] { return rdd.FlatMap(d, f) }

// KeyBy turns records into pairs keyed by f.
func KeyBy[K comparable, T any](d *Dataset[T], f func(T) K) *Dataset[Pair[K, T]] {
	return rdd.KeyBy(d, f)
}

// ReduceByKey merges all values of each key (associative, commutative).
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], merge func(V, V) V, partitions int) *Dataset[Pair[K, V]] {
	return rdd.ReduceByKey(d, merge, partitions)
}

// GroupByKey gathers all values of each key.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]], partitions int) *Dataset[Pair[K, []V]] {
	return rdd.GroupByKey(d, partitions)
}

// InnerJoin joins two keyed datasets on equal keys.
func InnerJoin[K comparable, A, B any](left *Dataset[Pair[K, A]], right *Dataset[Pair[K, B]], partitions int) *Dataset[Pair[K, JoinedRow[A, B]]] {
	return rdd.Join(left, right, partitions)
}

// RepartitionByRange shuffles records into range partitions (see Bounds)
// and sorts each partition, yielding a globally sorted Collect.
func RepartitionByRange[T any](d *Dataset[T], bounds []T, less func(a, b T) bool) *Dataset[T] {
	return rdd.RepartitionByRange(d, bounds, less)
}

// SortWithinPartitions sorts every partition locally.
func SortWithinPartitions[T any](d *Dataset[T], less func(a, b T) bool) *Dataset[T] {
	return rdd.SortWithinPartitions(d, less)
}

// Sample draws ~n records (a Spark-style sample pass for sort bounds).
func Sample[T any](d *Dataset[T], n int) ([]T, *engine.JobReport, error) { return rdd.Sample(d, n) }

// Bounds derives range-partition upper bounds from a sample.
func Bounds[T any](sample []T, partitions int, less func(a, b T) bool) []T {
	return rdd.Bounds(sample, partitions, less)
}

// Collect materializes the dataset on the driver.
func Collect[T any](d *Dataset[T]) ([]T, *JobReport, error) { return rdd.Collect(d) }

// CountData returns the number of records.
func CountData[T any](d *Dataset[T]) (int64, *JobReport, error) { return rdd.Count(d) }

// ReduceData folds all records.
func ReduceData[T any](d *Dataset[T], merge func(T, T) T) (T, *JobReport, error) {
	return rdd.Reduce(d, merge)
}

// SaveAsTextFile writes the dataset to a DFS output file (I/O-marked).
func SaveAsTextFile[T any](d *Dataset[T], name string, format func(T) string) (*JobReport, error) {
	return rdd.SaveAsTextFile(d, name, format)
}

// MapValues transforms values, keeping keys.
func MapValues[K comparable, V, W any](d *Dataset[Pair[K, V]], f func(V) W) *Dataset[Pair[K, W]] {
	return rdd.MapValues(d, f)
}

// Keys projects the keys of a keyed dataset.
func Keys[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[K] { return rdd.Keys(d) }

// Values projects the values of a keyed dataset.
func Values[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[V] { return rdd.Values(d) }

// Union concatenates two datasets (no deduplication).
func Union[T any](a, b *Dataset[T], partitions int) *Dataset[T] { return rdd.Union(a, b, partitions) }

// Distinct removes duplicate records.
func Distinct[T comparable](d *Dataset[T], partitions int) *Dataset[T] {
	return rdd.Distinct(d, partitions)
}

// Take materializes the first n records in partition order.
func Take[T any](d *Dataset[T], n int) ([]T, *JobReport, error) { return rdd.Take(d, n) }

// CacheData pins the dataset's partitions in memory after first
// materialization, like Spark's MEMORY_ONLY persist.
func CacheData[T any](d *Dataset[T]) *Dataset[T] { return rdd.Cache(d) }
