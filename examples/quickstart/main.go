// Quickstart: count words with the typed dataflow API on the simulated
// cluster, once with stock executors and once with the paper's self-adaptive
// executors, and compare the (virtual) runtimes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sae"
)

func main() {
	// Generate a synthetic corpus: ~40k lines of skewed words.
	rng := rand.New(rand.NewSource(42))
	vocab := []string{"spark", "executor", "thread", "disk", "shuffle", "adaptive", "stage", "task"}
	lines := make([]string, 40000)
	for i := range lines {
		n := 4 + rng.Intn(8)
		ws := make([]string, n)
		for j := range ws {
			ws[j] = vocab[rng.Intn(len(vocab))]
		}
		lines[i] = strings.Join(ws, " ")
	}

	for _, policy := range []struct {
		name string
		p    sae.Policy
	}{
		{"default (one thread per core)", sae.Default()},
		{"self-adaptive (MAPE-K)", sae.Adaptive()},
	} {
		ctx, err := sae.NewContext(sae.ContextOptions{Policy: policy.p})
		if err != nil {
			log.Fatal(err)
		}
		text := sae.TextFile(ctx, "corpus/lines", lines, 64)
		words := sae.FlatMap(text, func(l string) []string { return strings.Fields(l) })
		pairs := sae.MapData(words, func(w string) sae.Pair[string, int] {
			return sae.Pair[string, int]{Key: w, Value: 1}
		})
		counts := sae.ReduceByKey(pairs, func(a, b int) int { return a + b }, 32)

		out, report, err := sae.Collect(counts)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", policy.name)
		fmt.Printf("virtual runtime: %.2fs over %d stages\n", report.Runtime.Seconds(), len(report.Stages))
		for _, st := range report.Stages {
			fmt.Printf("  stage %-8s %7.2fs  threads %s\n", st.Name, st.Duration().Seconds(), st.ThreadsLabel())
		}
		total := 0
		for _, p := range out {
			total += p.Value
		}
		fmt.Printf("distinct words: %d, total count: %d\n\n", len(out), total)
	}
}
